// Package media generates deterministic synthetic inputs for the benchmark
// suite — the substitution for the paper's proprietary media assets (images,
// video streams, point sets). Every generator is seeded, so all benchmark
// variants consume bit-identical inputs.
package media

import (
	"math"
	"math/rand"

	"ompssgo/internal/img"
)

// Image synthesizes a W×H RGB image with smooth gradients, disks, and noise
// — enough structure that rotation and color conversion produce non-trivial
// outputs.
func Image(w, h int, seed int64) *img.RGB {
	rng := rand.New(rand.NewSource(seed))
	im := img.NewRGB(w, h)
	type disk struct {
		cx, cy, r  float64
		cr, cg, cb uint8
	}
	disks := make([]disk, 8)
	for i := range disks {
		disks[i] = disk{
			cx: rng.Float64() * float64(w),
			cy: rng.Float64() * float64(h),
			r:  (0.05 + 0.15*rng.Float64()) * float64(w),
			cr: uint8(rng.Intn(256)), cg: uint8(rng.Intn(256)), cb: uint8(rng.Intn(256)),
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := uint8(255 * x / max(1, w-1))
			g := uint8(255 * y / max(1, h-1))
			b := uint8((x + y) % 256)
			for _, d := range disks {
				dx, dy := float64(x)-d.cx, float64(y)-d.cy
				if dx*dx+dy*dy < d.r*d.r {
					r, g, b = d.cr, d.cg, d.cb
				}
			}
			im.Set(x, y, r, g, b)
		}
	}
	return im
}

// GrayImage synthesizes a W×H grayscale image (gradient plus disks).
func GrayImage(w, h int, seed int64) *img.Gray {
	rgb := Image(w, h, seed)
	g := img.NewGray(w, h)
	for i := 0; i < w*h; i++ {
		r, gg, b := int(rgb.Pix[3*i]), int(rgb.Pix[3*i+1]), int(rgb.Pix[3*i+2])
		g.Pix[i] = uint8((299*r + 587*gg + 114*b) / 1000)
	}
	return g
}

// Video synthesizes n luma frames of a scene with moving objects over a
// static background — the input for the H.264-style codec (motion estimation
// finds real matches) and the bodytrack observations.
func Video(n, w, h int, seed int64) []*img.Gray {
	rng := rand.New(rand.NewSource(seed))
	bg := GrayImage(w, h, seed+1)
	type obj struct {
		x, y, vx, vy, r float64
		shade           uint8
	}
	objs := make([]obj, 4)
	for i := range objs {
		objs[i] = obj{
			x: rng.Float64() * float64(w), y: rng.Float64() * float64(h),
			vx: (rng.Float64() - 0.5) * 6, vy: (rng.Float64() - 0.5) * 6,
			r:     (0.04 + 0.08*rng.Float64()) * float64(w),
			shade: uint8(64 + rng.Intn(192)),
		}
	}
	frames := make([]*img.Gray, n)
	for f := 0; f < n; f++ {
		fr := bg.Clone()
		for i := range objs {
			o := &objs[i]
			for y := int(o.y - o.r); y <= int(o.y+o.r); y++ {
				if y < 0 || y >= h {
					continue
				}
				for x := int(o.x - o.r); x <= int(o.x+o.r); x++ {
					if x < 0 || x >= w {
						continue
					}
					dx, dy := float64(x)-o.x, float64(y)-o.y
					if dx*dx+dy*dy < o.r*o.r {
						fr.Set(x, y, o.shade)
					}
				}
			}
			o.x += o.vx
			o.y += o.vy
			if o.x < 0 || o.x >= float64(w) {
				o.vx = -o.vx
			}
			if o.y < 0 || o.y >= float64(h) {
				o.vy = -o.vy
			}
		}
		frames[f] = fr
	}
	return frames
}

// Points synthesizes n points in dim dimensions drawn from k Gaussian
// clusters (for kmeans and streamcluster). Returns the flattened points
// (n×dim) and the ground-truth cluster centers.
func Points(n, dim, k int, seed int64) (pts []float64, centers []float64) {
	rng := rand.New(rand.NewSource(seed))
	centers = make([]float64, k*dim)
	for i := range centers {
		centers[i] = rng.Float64() * 100
	}
	pts = make([]float64, n*dim)
	for p := 0; p < n; p++ {
		c := p % k
		for d := 0; d < dim; d++ {
			pts[p*dim+d] = centers[c*dim+d] + rng.NormFloat64()*3
		}
	}
	return pts, centers
}

// Buffers synthesizes nbuf deterministic pseudo-random byte buffers of the
// given size (the md5 benchmark input).
func Buffers(nbuf, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	bufs := make([][]byte, nbuf)
	for i := range bufs {
		b := make([]byte, size)
		// rand.Read on math/rand is deterministic for a seeded source.
		for j := 0; j < size; j += 8 {
			v := rng.Uint64()
			for k := 0; k < 8 && j+k < size; k++ {
				b[j+k] = byte(v >> (8 * k))
			}
		}
		bufs[i] = b
	}
	return bufs
}

// PoseSequence generates a smooth ground-truth pose trajectory for the
// bodytrack benchmark: nframes poses, each `dof` angles/offsets evolving as
// bounded random walks.
func PoseSequence(nframes, dof int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	poses := make([][]float64, nframes)
	cur := make([]float64, dof)
	for d := range cur {
		cur[d] = rng.Float64()*0.6 - 0.3
	}
	for f := 0; f < nframes; f++ {
		p := make([]float64, dof)
		for d := range cur {
			cur[d] += rng.NormFloat64() * 0.05
			cur[d] = math.Max(-0.9, math.Min(0.9, cur[d]))
			p[d] = cur[d]
		}
		poses[f] = p
	}
	return poses
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
