package media

import (
	"math"
	"testing"
)

func TestImageDeterministic(t *testing.T) {
	a := Image(64, 48, 7)
	b := Image(64, 48, 7)
	if a.Checksum() != b.Checksum() {
		t.Fatal("same seed must give identical images")
	}
	c := Image(64, 48, 8)
	if a.Checksum() == c.Checksum() {
		t.Fatal("different seeds should differ")
	}
}

func TestVideoFramesMove(t *testing.T) {
	frames := Video(5, 64, 48, 3)
	if len(frames) != 5 {
		t.Fatalf("frames = %d", len(frames))
	}
	same := 0
	for i := 1; i < len(frames); i++ {
		if frames[i].Checksum() == frames[i-1].Checksum() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d consecutive identical frames; objects should move", same)
	}
	// Consecutive frames should still be mostly similar (small motion) so
	// motion estimation has something to find.
	diff := 0
	a, b := frames[0], frames[1]
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			diff++
		}
	}
	if frac := float64(diff) / float64(len(a.Pix)); frac > 0.25 {
		t.Fatalf("%.0f%% of pixels changed between frames; motion too violent", frac*100)
	}
}

func TestPointsClusterAroundCenters(t *testing.T) {
	const n, dim, k = 600, 4, 3
	pts, centers := Points(n, dim, k, 11)
	if len(pts) != n*dim || len(centers) != k*dim {
		t.Fatal("bad shapes")
	}
	// Each point should be far closer to its own cluster center than to
	// the average inter-center distance.
	var within float64
	for p := 0; p < n; p++ {
		c := p % k
		var d float64
		for j := 0; j < dim; j++ {
			dd := pts[p*dim+j] - centers[c*dim+j]
			d += dd * dd
		}
		within += math.Sqrt(d)
	}
	within /= n
	if within > 15 {
		t.Fatalf("mean within-cluster distance %.1f too large", within)
	}
}

func TestBuffersDeterministic(t *testing.T) {
	a := Buffers(3, 100, 5)
	b := Buffers(3, 100, 5)
	for i := range a {
		if len(a[i]) != 100 {
			t.Fatalf("buffer %d size %d", i, len(a[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("buffers must be deterministic")
			}
		}
	}
}

func TestPoseSequenceBounded(t *testing.T) {
	poses := PoseSequence(50, 8, 9)
	if len(poses) != 50 {
		t.Fatalf("poses = %d", len(poses))
	}
	for f, p := range poses {
		if len(p) != 8 {
			t.Fatalf("frame %d dof = %d", f, len(p))
		}
		for d, v := range p {
			if v < -0.9 || v > 0.9 {
				t.Fatalf("pose[%d][%d] = %f out of bounds", f, d, v)
			}
		}
	}
	// Smoothness: consecutive poses close.
	for f := 1; f < len(poses); f++ {
		for d := range poses[f] {
			if math.Abs(poses[f][d]-poses[f-1][d]) > 0.3 {
				t.Fatalf("pose jump at frame %d dof %d", f, d)
			}
		}
	}
}
