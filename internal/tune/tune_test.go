package tune

import (
	"testing"

	"ompssgo/internal/core"
	"ompssgo/internal/obs"
)

// scripted builds a controller whose engine counters are test-owned
// variables, so each Step sees exactly the deltas the test wrote.
func scripted(cfg Config, sched *core.SchedStats, graph *core.GraphStats) (*Controller, *core.Tunables) {
	tn := &core.Tunables{}
	cfg.SchedStats = func() core.SchedStats { return *sched }
	cfg.GraphStats = func() core.GraphStats { return *graph }
	return New(cfg, tn, obs.NewAggregator(0)), tn
}

func TestBackoffSetpoints(t *testing.T) {
	var ss core.SchedStats
	var gs core.GraphStats
	c, tn := scripted(Config{Workers: 2, Backoff: true}, &ss, &gs)
	if got := tn.SpinYields.Load(); got != DefaultSpinYields {
		t.Fatalf("seeded SpinYields = %d, want %d", got, DefaultSpinYields)
	}
	if got := tn.SleepCapNS.Load(); got != DefaultSleepCapNS {
		t.Fatalf("seeded SleepCapNS = %d, want %d", got, DefaultSleepCapNS)
	}

	// 100 probes, 2 steals: 98% failure — deepen: yields halve, cap doubles.
	ss.StealTries, ss.Steals = 100, 2
	c.Step()
	if got := tn.SpinYields.Load(); got != DefaultSpinYields/2 {
		t.Errorf("after high-failure tick: SpinYields = %d, want %d", got, DefaultSpinYields/2)
	}
	if got := tn.SleepCapNS.Load(); got != 2*DefaultSleepCapNS {
		t.Errorf("after high-failure tick: SleepCapNS = %d, want %d", got, 2*DefaultSleepCapNS)
	}

	// Sustained failure clamps at the floor/ceiling, never past.
	for i := 0; i < 10; i++ {
		ss.StealTries += 100
		ss.Steals += 2
		c.Step()
	}
	if got := tn.SpinYields.Load(); got != MinSpinYields {
		t.Errorf("clamped SpinYields = %d, want %d", got, MinSpinYields)
	}
	if got := tn.SleepCapNS.Load(); got != MaxSleepCapNS {
		t.Errorf("clamped SleepCapNS = %d, want %d", got, MaxSleepCapNS)
	}

	// 100 probes, 80 steals: 20% failure — sharpen back toward latency.
	ss.StealTries += 100
	ss.Steals += 80
	c.Step()
	if got := tn.SpinYields.Load(); got != 2*MinSpinYields {
		t.Errorf("after low-failure tick: SpinYields = %d, want %d", got, 2*MinSpinYields)
	}
	if got := tn.SleepCapNS.Load(); got != MaxSleepCapNS/2 {
		t.Errorf("after low-failure tick: SleepCapNS = %d, want %d", got, MaxSleepCapNS/2)
	}
}

func TestBackoffHysteresisAndWindow(t *testing.T) {
	var ss core.SchedStats
	var gs core.GraphStats
	c, tn := scripted(Config{Workers: 2, Backoff: true}, &ss, &gs)

	// In-band failure rate (70%): hold both setpoints.
	ss.StealTries, ss.Steals = 100, 30
	c.Step()
	if got := tn.SpinYields.Load(); got != DefaultSpinYields {
		t.Errorf("in-band tick moved SpinYields to %d, want hold at %d", got, DefaultSpinYields)
	}

	// Fewer than minProbeWindow probes: no signal, hold even at 100% failure.
	ss.StealTries += minProbeWindow - 1
	c.Step()
	if got := tn.SpinYields.Load(); got != DefaultSpinYields {
		t.Errorf("thin-window tick moved SpinYields to %d, want hold at %d", got, DefaultSpinYields)
	}
	if got := tn.SleepCapNS.Load(); got != DefaultSleepCapNS {
		t.Errorf("thin-window tick moved SleepCapNS to %d, want hold at %d", got, DefaultSleepCapNS)
	}
}

func TestRenameCapSetpoints(t *testing.T) {
	var ss core.SchedStats
	var gs core.GraphStats
	const base = 8
	c, tn := scripted(Config{Workers: 2, RenameCap: true, BaseRenameCap: base}, &ss, &gs)
	if got := tn.RenameCap.Load(); got != base {
		t.Fatalf("seeded RenameCap = %d, want %d", got, base)
	}

	// Fallback pressure doubles the cap each tick up to the ceiling.
	for i, want := range []int32{16, 32, 64, 64} {
		gs.RenameFallbacks += 5
		c.Step()
		if got := tn.RenameCap.Load(); got != want {
			t.Errorf("pressure tick %d: RenameCap = %d, want %d", i+1, got, want)
		}
	}
	if MaxRenameCap != 64 {
		t.Fatalf("ceiling moved (%d); update the expectations above", MaxRenameCap)
	}

	// Decay: capDecayTicks calm ticks halve the cap once, repeating down to
	// base, never below.
	for i, want := range []int32{64, 64, 64, 32} {
		c.Step()
		if got := tn.RenameCap.Load(); got != want {
			t.Errorf("calm tick %d: RenameCap = %d, want %d", i+1, got, want)
		}
	}
	for i := 0; i < 3*capDecayTicks; i++ {
		c.Step()
	}
	if got := tn.RenameCap.Load(); got != base {
		t.Errorf("fully decayed RenameCap = %d, want base %d", got, base)
	}

	// New pressure restarts the widening from the decayed value.
	gs.RenameFallbacks += 1
	c.Step()
	if got := tn.RenameCap.Load(); got != 2*base {
		t.Errorf("re-pressure: RenameCap = %d, want %d", got, 2*base)
	}
}

func TestChunkFor(t *testing.T) {
	var ss core.SchedStats
	var gs core.GraphStats
	c, _ := scripted(Config{Workers: 2, Grain: true}, &ss, &gs)

	// Before any measurement: the workers-derived heuristic, n/(4·workers).
	if got, want := c.ChunkFor("L", 1024), 1024/(4*2); got != want {
		t.Errorf("cold ChunkFor = %d, want heuristic %d", got, want)
	}
	if got := c.ChunkFor("L", 1); got != 1 {
		t.Errorf("ChunkFor(n=1) = %d, want 1", got)
	}

	// First sample seeds the EWMA exactly: 100µs over 100 iters = 1µs/iter;
	// 200µs target / 1µs = 200 per chunk.
	c.TaskDone("L", 100_000, 100, false, false)
	if got := c.ChunkFor("L", 10_000); got != 200 {
		t.Errorf("measured ChunkFor = %d, want %d (target %d / per-iter 1000)", got, 200, DefaultTargetChunkNS)
	}

	// The per-worker clamp keeps at least two chunks per worker (a separate
	// label: the clamped answer would pollute L's hysteresis memory).
	c.TaskDone("K", 100_000, 100, false, false)
	if got, want := c.ChunkFor("K", 100), 100/(2*2); got != want {
		t.Errorf("clamped ChunkFor = %d, want n/(2w) = %d", got, want)
	}

	// Hysteresis: an ideal within ±25% of the last answer holds it. A second
	// sample at 1.2µs/iter moves the EWMA to 1.05µs (alpha 0.25), ideal
	// 190 — inside the band around 200, so the answer stays 200.
	c.TaskDone("L", 120_000, 100, false, false)
	if got := c.ChunkFor("L", 10_000); got != 200 {
		t.Errorf("hysteresis ChunkFor = %d, want held 200", got)
	}

	// A big cost shift escapes the band: per-iter EWMA jumps to ~8.3µs
	// after two 10µs/iter samples, ideal ~24 — well outside 150..250.
	c.TaskDone("L", 1_000_000, 100, false, false)
	c.TaskDone("L", 1_000_000, 100, false, false)
	got := c.ChunkFor("L", 10_000)
	if got >= 150 || got < 1 {
		t.Errorf("post-shift ChunkFor = %d, want a re-sized chunk well below 150", got)
	}

	// Labels are independent: an unmeasured label still gets the heuristic.
	if got, want := c.ChunkFor("M", 1024), 1024/(4*2); got != want {
		t.Errorf("other-label ChunkFor = %d, want heuristic %d", got, want)
	}
}

func TestChunkForGrainDisabled(t *testing.T) {
	var ss core.SchedStats
	var gs core.GraphStats
	c, _ := scripted(Config{Workers: 4, Grain: false}, &ss, &gs)
	c.TaskDone("L", 100_000, 100, false, false)
	// With the grain loop off, measurements never override the heuristic.
	if got, want := c.ChunkFor("L", 1024), 1024/(4*4); got != want {
		t.Errorf("grain-off ChunkFor = %d, want heuristic %d", got, want)
	}
}

func TestTickCadence(t *testing.T) {
	var ss core.SchedStats
	var gs core.GraphStats
	c, _ := scripted(Config{Workers: 2, Backoff: true, TickEvery: 8}, &ss, &gs)
	for i := 0; i < 7; i++ {
		c.TaskDone("L", 1000, 0, false, false)
	}
	if got := c.Steps(); got != 0 {
		t.Fatalf("after 7 completions: %d ticks, want 0", got)
	}
	c.TaskDone("L", 1000, 0, false, false)
	if got := c.Steps(); got != 1 {
		t.Fatalf("after 8 completions: %d ticks, want 1", got)
	}
	for i := 0; i < 16; i++ {
		c.TaskDone("L", 1000, 0, false, false)
	}
	if got := c.Steps(); got != 3 {
		t.Fatalf("after 24 completions: %d ticks, want 3", got)
	}
}

func TestAggregatorSnapshot(t *testing.T) {
	a := obs.NewAggregator(0.25)
	a.Note("b", 100, 0, false, false)
	a.Note("a", 200, 10, true, false)
	a.Note("a", 400, 10, false, true)
	snap := a.Snapshot()
	if len(snap) != 2 || snap[0].Label != "a" || snap[1].Label != "b" {
		t.Fatalf("snapshot order = %+v, want labels [a b]", snap)
	}
	ag := snap[0]
	if ag.Count != 2 || ag.Iters != 20 || ag.Renames != 1 || ag.Fallbacks != 1 {
		t.Errorf("label a counters = %+v, want count 2, iters 20, renames 1, fallbacks 1", ag)
	}
	if ag.ExecNS != 600 || ag.MeanNS != 300 {
		t.Errorf("label a exec/mean = %d/%d, want 600/300", ag.ExecNS, ag.MeanNS)
	}
	// EWMA: seed 200, then 0.75*200 + 0.25*400 = 250. Per-iter: seed 20,
	// then 0.75*20 + 0.25*40 = 25.
	if ag.EWMANS != 250 {
		t.Errorf("label a EWMA = %d, want 250", ag.EWMANS)
	}
	if ag.PerIterNS != 25 {
		t.Errorf("label a per-iter EWMA = %d, want 25", ag.PerIterNS)
	}
}
