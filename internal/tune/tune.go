// Package tune closes the measurement→configuration loop the paper's §4
// analysis motivates: grain size and schedule choice dominate scaling, so
// instead of hand-picking them per call site, a feedback controller
// consumes the runtime's own telemetry (the obs streaming aggregator plus
// the scheduler's steal counters and the dependence tracker's rename
// fallback counters) and writes setpoints back into the engine through the
// core.Tunables atomics seam.
//
// Three control loops, all clamped and hysteretic so a noisy sample cannot
// whipsaw the runtime:
//
//   - Grain: TaskLoop auto-chunking. ChunkFor sizes a chunk so its body
//     runs for about the target execution-time window, derived from the
//     label's measured per-iteration cost EWMA (the h264dec GroupRows
//     discipline, applied online). Until the first measurement arrives, a
//     workers-derived heuristic seeds the loop.
//   - Backoff: polling idle-throttle adaptation from the steal matrix. A
//     high failed-probe rate (oversubscribed lanes spinning on nothing)
//     deepens the idle sleep and cuts the yield budget; a low rate sharpens
//     it back toward low release latency. Native-only: the simulator's idle
//     waiting is event-driven and has no spin loop to tune.
//   - RenameCap: the per-datum live-version cap widens ×2 under sustained
//     rename fallbacks and decays back toward the configured cap after
//     quiet ticks, keeping version memory proportional to measured demand.
//
// The controller ticks inline, on every TickEvery-th task completion, on
// whichever worker finished that task — no background goroutine, so under
// the simulator's serialized event loop every decision is deterministic.
// The tick path is allocation-free and lock-free (a TryLock guards tick
// state; a contended tick is simply skipped).
package tune

import (
	"sync"
	"sync/atomic"

	"ompssgo/internal/core"
	"ompssgo/internal/obs"
)

// Defaults for the controller's setpoints and guardrails.
const (
	// DefaultTargetChunkNS is the per-chunk execution-time window the
	// grain loop aims for: long enough to amortize per-task overhead
	// (submit + dispatch are ~µs), short enough to keep many chunks per
	// worker for load balancing.
	DefaultTargetChunkNS = 200_000
	// DefaultTickEvery is the task-completion period of the control tick.
	DefaultTickEvery = 32

	// Idle-throttle guardrails (see ompss's polling spinner: yields of the
	// scheduler slice, then linearly growing sleeps up to the cap).
	DefaultSpinYields = 64
	MinSpinYields     = 8
	MaxSpinYields     = 256
	DefaultSleepCapNS = 100_000 // 100µs, the static spinner's cap
	MinSleepCapNS     = 25_000
	MaxSleepCapNS     = 1_000_000 // 1ms: bounded staleness even fully backed off

	// Rename-cap guardrails: the adaptive cap never exceeds this many live
	// instances per datum regardless of fallback pressure.
	MaxRenameCap = 64

	// Steal-failure hysteresis band: above the high mark the backoff
	// deepens, below the low mark it sharpens, in between it holds.
	failHigh = 0.90
	failLow  = 0.50
	// minProbeWindow is the minimum steal probes per tick window for the
	// failure rate to be trusted (fewer probes = the lanes were busy, not
	// idle — no signal).
	minProbeWindow = 64
	// capDecayTicks is the number of consecutive fallback-free ticks
	// before the widened rename cap decays one step.
	capDecayTicks = 4
)

// Config selects the active control loops and their inputs.
type Config struct {
	// Workers is the lane count chunk sizing balances across.
	Workers int
	// Grain/Backoff/RenameCap enable the three loops independently (each
	// maps to one Auto field of the public Tuning profile).
	Grain     bool
	Backoff   bool
	RenameCap bool
	// TargetChunkNS overrides DefaultTargetChunkNS (0 = default).
	TargetChunkNS int64
	// TickEvery overrides DefaultTickEvery (0 = default).
	TickEvery uint64
	// BaseRenameCap is the configured per-datum version cap the adaptive
	// cap starts from and decays back to (0 = core.DefaultMaxVersions).
	BaseRenameCap int
	// SchedStats/GraphStats supply the cumulative engine counters the tick
	// differentiates (nil disables the loops that need them).
	SchedStats func() core.SchedStats
	GraphStats func() core.GraphStats
	// Event, when set, is called every time a control loop actually moves a
	// setpoint: loop is the constant loop name ("grain", "spin-yields",
	// "sleep-cap", "rename-cap"), old and new the setpoint values. Called
	// inline on the tick path (under the tick mutex, on whatever worker
	// finished the triggering task), so it must be cheap and allocation-free
	// — the runtime wires it to the observability recorder's EvTune emit.
	Event func(loop string, old, new int64)
}

// Controller is the feedback controller. Create with New, feed completions
// with TaskDone, read chunk decisions with ChunkFor; setpoints flow to the
// engine through the core.Tunables block it was constructed around.
type Controller struct {
	cfg Config
	tn  *core.Tunables
	agg *obs.Aggregator

	finishes atomic.Uint64

	// mu guards the tick's differentiation state and the per-label chunk
	// hysteresis. The tick path TryLocks (skip on contention); ChunkFor —
	// submit-side, not per-task — takes it.
	mu            sync.Mutex
	lastTries     uint64
	lastSteals    uint64
	lastFallbacks uint64
	calmTicks     int
	steps         uint64
	lastChunk     map[string]int
}

// New builds a controller writing into tn and aggregating into agg, and
// seeds tn with the static defaults for every enabled loop (so engine
// readers see the configured baseline before the first tick).
func New(cfg Config, tn *core.Tunables, agg *obs.Aggregator) *Controller {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.TargetChunkNS <= 0 {
		cfg.TargetChunkNS = DefaultTargetChunkNS
	}
	if cfg.TickEvery == 0 {
		cfg.TickEvery = DefaultTickEvery
	}
	if cfg.BaseRenameCap <= 0 {
		cfg.BaseRenameCap = core.DefaultMaxVersions
	}
	c := &Controller{cfg: cfg, tn: tn, agg: agg, lastChunk: make(map[string]int)}
	tn.GrainTargetNS.Store(cfg.TargetChunkNS)
	if cfg.Backoff {
		tn.SpinYields.Store(DefaultSpinYields)
		tn.SleepCapNS.Store(DefaultSleepCapNS)
	}
	if cfg.RenameCap {
		tn.RenameCap.Store(int32(cfg.BaseRenameCap))
	}
	return c
}

// Aggregator returns the controller's input aggregator (the per-label
// stats surface Runtime/Session Stats expose).
func (c *Controller) Aggregator() *obs.Aggregator { return c.agg }

// TaskDone feeds one task completion: label, measured execution time,
// loop-iteration count (0 for ordinary tasks), and the task's rename
// attribution. Every TickEvery-th completion runs one control tick inline;
// a tick that would contend with another worker's is skipped (the next
// period retries), so this path never blocks and never allocates.
func (c *Controller) TaskDone(label string, execNS int64, iters int, renamed, fallback bool) {
	c.agg.Note(label, execNS, iters, renamed, fallback)
	if c.finishes.Add(1)%c.cfg.TickEvery == 0 {
		if c.mu.TryLock() {
			c.step()
			c.mu.Unlock()
		}
	}
}

// Step runs one control tick synchronously (tests and drain points; the
// runtime's ticks arrive through TaskDone).
func (c *Controller) Step() {
	c.mu.Lock()
	c.step()
	c.mu.Unlock()
}

// step differentiates the engine counters since the last tick and moves
// the enabled setpoints. Called with mu held.
func (c *Controller) step() {
	c.steps++
	if c.cfg.Backoff && c.cfg.SchedStats != nil {
		st := c.cfg.SchedStats()
		dTries := st.StealTries - c.lastTries
		dSteals := st.Steals - c.lastSteals
		c.lastTries, c.lastSteals = st.StealTries, st.Steals
		if dTries >= minProbeWindow {
			fail := float64(dTries-dSteals) / float64(dTries)
			switch {
			case fail > failHigh:
				// Mostly failed probes: lanes are idle-spinning against
				// each other (the oversubscribed w>cores regime). Deepen
				// the backoff so spare lanes get off the cores.
				c.moveSpinYields(c.tn.SpinYields.Load() / 2)
				c.moveSleepCap(c.tn.SleepCapNS.Load() * 2)
			case fail < failLow:
				// Probes mostly land: work is flowing, favor release
				// latency again.
				c.moveSpinYields(c.tn.SpinYields.Load() * 2)
				c.moveSleepCap(c.tn.SleepCapNS.Load() / 2)
			}
			// Inside the band: hold (hysteresis).
		}
	}
	if c.cfg.RenameCap && c.cfg.GraphStats != nil {
		gs := c.cfg.GraphStats()
		dFB := gs.RenameFallbacks - c.lastFallbacks
		c.lastFallbacks = gs.RenameFallbacks
		cur := int(c.tn.RenameCap.Load())
		if cur <= 0 {
			cur = c.cfg.BaseRenameCap
		}
		if dFB > 0 {
			c.calmTicks = 0
			if cur < MaxRenameCap {
				c.moveRenameCap(cur, min(cur*2, MaxRenameCap))
			}
		} else if cur > c.cfg.BaseRenameCap {
			c.calmTicks++
			if c.calmTicks >= capDecayTicks {
				c.calmTicks = 0
				c.moveRenameCap(cur, max(c.cfg.BaseRenameCap, cur/2))
			}
		}
	}
}

// moveSpinYields clamps and stores a new yield budget, reporting an actual
// move through the Event hook. Loop names are package-level constants so
// the hook path allocates nothing.
func (c *Controller) moveSpinYields(want int32) {
	old := c.tn.SpinYields.Load()
	nv := clamp32(want, MinSpinYields, MaxSpinYields)
	if nv == old {
		return
	}
	c.tn.SpinYields.Store(nv)
	if c.cfg.Event != nil {
		c.cfg.Event("spin-yields", int64(old), int64(nv))
	}
}

// moveSleepCap clamps and stores a new idle-sleep cap, reporting a move.
func (c *Controller) moveSleepCap(wantNS int64) {
	old := c.tn.SleepCapNS.Load()
	nv := clamp64(wantNS, MinSleepCapNS, MaxSleepCapNS)
	if nv == old {
		return
	}
	c.tn.SleepCapNS.Store(nv)
	if c.cfg.Event != nil {
		c.cfg.Event("sleep-cap", old, nv)
	}
}

// moveRenameCap stores a new live-version cap, reporting a move.
func (c *Controller) moveRenameCap(old, nv int) {
	c.tn.RenameCap.Store(int32(nv))
	if nv != old && c.cfg.Event != nil {
		c.cfg.Event("rename-cap", int64(old), int64(nv))
	}
}

// Setpoints is a snapshot of the controller's actuator values — what the
// feedback loops currently command, readable by a metrics scrape without
// touching the tick path.
type Setpoints struct {
	GrainTargetNS int64
	SpinYields    int
	SleepCapNS    int64
	RenameCap     int
}

// Setpoints reads the current setpoints off the controlled Tunables
// (atomic loads; safe from any goroutine).
func (c *Controller) Setpoints() Setpoints {
	return Setpoints{
		GrainTargetNS: c.tn.GrainTargetNS.Load(),
		SpinYields:    int(c.tn.SpinYields.Load()),
		SleepCapNS:    c.tn.SleepCapNS.Load(),
		RenameCap:     int(c.tn.RenameCap.Load()),
	}
}

// Steps returns the number of control ticks run so far.
func (c *Controller) Steps() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}

// ChunkFor sizes one TaskLoop chunk for a label over an n-iteration space:
// target window ÷ measured per-iteration cost, clamped to keep at least two
// chunks per worker (load balancing) and at least one iteration. Before the
// label's first measurement — or with the grain loop disabled — it falls
// back to n/(4·workers). Repeated calls for one label hold the previous
// answer while the ideal stays within ±25% (hysteresis), so a converged
// loop does not jitter between adjacent chunk sizes.
func (c *Controller) ChunkFor(label string, n int) int {
	if n <= 1 {
		return 1
	}
	w := c.cfg.Workers
	maxChunk := n / (2 * w)
	if maxChunk < 1 {
		maxChunk = 1
	}
	heuristic := clampInt(n/(4*w), 1, maxChunk)
	if !c.cfg.Grain {
		return heuristic
	}
	per := c.agg.PerIterNS(label)
	if per <= 0 {
		return heuristic
	}
	ideal := clampInt(int(float64(c.tn.GrainTargetNS.Load())/per), 1, maxChunk)
	c.mu.Lock()
	defer c.mu.Unlock()
	last, had := c.lastChunk[label]
	if had {
		lo, hi := last-last/4, last+last/4
		if ideal >= lo && ideal <= hi {
			return last
		}
	}
	c.lastChunk[label] = ideal
	if had && ideal != last && c.cfg.Event != nil {
		c.cfg.Event("grain", int64(last), int64(ideal))
	}
	return ideal
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
