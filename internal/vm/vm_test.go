package vm

import (
	"strings"
	"testing"
	"testing/quick"
)

func newVM(cores int) *VM {
	return New(Config{Cores: cores, Sockets: (cores + 7) / 8, Seed: 1})
}

func TestSingleThreadCompute(t *testing.T) {
	v := newVM(1)
	v.Go("w", 0, func(th *Thread) { th.Compute(100 * Microsecond) })
	st, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 100*Microsecond + v.Cost().ThreadSpawn
	if st.Time != want {
		t.Fatalf("makespan = %v, want %v", st.Time, want)
	}
	if st.Cores[0].Busy != 100*Microsecond {
		t.Fatalf("busy = %v, want 100µs", st.Cores[0].Busy)
	}
}

func TestParallelThreadsOnDistinctCores(t *testing.T) {
	v := newVM(4)
	for i := 0; i < 4; i++ {
		v.Go("w", i, func(th *Thread) { th.Compute(Millisecond) })
	}
	st, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := Millisecond + v.Cost().ThreadSpawn
	if st.Time != want {
		t.Fatalf("parallel makespan = %v, want %v", st.Time, want)
	}
}

func TestOversubscribedCoreSerializes(t *testing.T) {
	v := newVM(1)
	for i := 0; i < 3; i++ {
		v.Go("w", 0, func(th *Thread) { th.Compute(Millisecond) })
	}
	st, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Time < 3*Millisecond {
		t.Fatalf("oversubscribed makespan = %v, want ≥ 3ms", st.Time)
	}
	// Context switches should add measurable but bounded overhead.
	if st.Time > 4*Millisecond {
		t.Fatalf("oversubscribed makespan = %v, unreasonably large", st.Time)
	}
}

func TestQuantumPreemptionInterleaves(t *testing.T) {
	// A long compute must not starve a short thread sharing the core.
	v := newVM(1)
	var shortDone, longDone Time
	v.Go("long", 0, func(th *Thread) {
		th.Compute(50 * Millisecond)
		longDone = th.Now()
	})
	v.Go("short", 0, func(th *Thread) {
		th.Compute(Millisecond)
		shortDone = th.Now()
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if shortDone >= longDone {
		t.Fatalf("short thread finished at %v, after long thread at %v", shortDone, longDone)
	}
	if shortDone > 10*Millisecond {
		t.Fatalf("short thread starved until %v", shortDone)
	}
}

func TestSharedMemoryVisibility(t *testing.T) {
	// Real Go code runs inside virtual threads; increments under a mutex
	// must all be observed (the simulator serializes real execution).
	v := newVM(8)
	var m Mutex
	counter := 0
	for i := 0; i < 8; i++ {
		v.Go("w", i, func(th *Thread) {
			for j := 0; j < 100; j++ {
				th.Lock(&m)
				counter++
				th.Unlock(&m)
			}
		})
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 800 {
		t.Fatalf("counter = %d, want 800", counter)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		v := New(Config{Cores: 8, Sockets: 2, Seed: 42})
		var b Barrier
		b.N = 8
		for i := 0; i < 8; i++ {
			i := i
			v.Go("w", i, func(th *Thread) {
				th.Compute(Time(i+1) * 100 * Microsecond)
				th.BarrierWait(&b)
				th.Compute(Time(8-i) * 50 * Microsecond)
			})
		}
		st, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Events != b.Events {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestDeadlockDetection(t *testing.T) {
	v := newVM(2)
	var m1, m2 Mutex
	v.Go("a", 0, func(th *Thread) {
		th.Lock(&m1)
		th.Compute(Microsecond)
		th.Lock(&m2)
	})
	v.Go("b", 1, func(th *Thread) {
		th.Lock(&m2)
		th.Compute(2 * Microsecond)
		th.Lock(&m1)
	})
	_, err := v.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestSleepAdvancesTime(t *testing.T) {
	v := newVM(1)
	var woke Time
	v.Go("s", 0, func(th *Thread) {
		th.Sleep(7 * Millisecond)
		woke = th.Now()
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if woke < 7*Millisecond {
		t.Fatalf("woke at %v, want ≥ 7ms", woke)
	}
}

func TestChargeAccumulates(t *testing.T) {
	v := newVM(1)
	v.Go("c", 0, func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Charge(100 * Nanosecond)
		}
		th.Flush()
	})
	st, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 100*Microsecond + v.Cost().ThreadSpawn
	if st.Time != want {
		t.Fatalf("accumulated charges: makespan %v, want %v", st.Time, want)
	}
}

func TestMemCostWarmth(t *testing.T) {
	v := New(Config{Cores: 16, Sockets: 2, Seed: 1})
	key := new(int)
	const bytes = 1 << 20

	cold := v.MemCost(0, key, bytes, true) // first write: cold, homes on core 0
	warm := v.MemCost(0, key, bytes, false)
	if warm >= cold {
		t.Fatalf("same-core warm (%v) should beat cold (%v)", warm, cold)
	}
	v2 := New(Config{Cores: 16, Sockets: 2, Seed: 1})
	v2.MemCost(0, key, bytes, true)
	sameSocket := v2.MemCost(1, key, bytes, false) // cores 0..7 = socket 0
	if sameSocket >= cold || sameSocket <= warm {
		t.Fatalf("same-socket %v should sit between same-core %v and cold %v", sameSocket, warm, cold)
	}
	v3 := New(Config{Cores: 16, Sockets: 2, Seed: 1})
	v3.MemCost(0, key, bytes, true)
	remote := v3.MemCost(8, key, bytes, false) // socket 1
	if remote <= cold {
		t.Fatalf("cross-socket %v should exceed cold %v", remote, cold)
	}
}

func TestMemCostDecay(t *testing.T) {
	v := newVM(2)
	key := new(int)
	v.MemCost(0, key, 1<<20, true)
	v.now += v.Cost().CacheDecay + 1 // advance past warmth window
	stale := v.MemCost(0, key, 1<<20, false)
	cold := Time(float64(1<<20) * v.Cost().NsPerByte)
	if stale != cold {
		t.Fatalf("stale access = %v, want cold %v", stale, cold)
	}
}

func TestUtilizationAndOccupancy(t *testing.T) {
	v := newVM(2)
	var sb SpinBarrier
	sb.N = 2
	v.Go("fast", 0, func(th *Thread) {
		th.Compute(Microsecond)
		th.SpinBarrierWait(&sb) // spins ~10ms waiting for slow
	})
	v.Go("slow", 1, func(th *Thread) {
		th.Compute(10 * Millisecond)
		th.SpinBarrierWait(&sb)
	})
	st, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Occupancy() <= st.Utilization() {
		t.Fatalf("occupancy %.3f should exceed utilization %.3f when spinning",
			st.Occupancy(), st.Utilization())
	}
	if st.Cores[0].Spin < 9*Millisecond {
		t.Fatalf("fast core spin = %v, want ≈10ms", st.Cores[0].Spin)
	}
}

func TestNestedThreadSpawn(t *testing.T) {
	v := newVM(4)
	total := 0
	v.Go("parent", 0, func(th *Thread) {
		done := 0
		var dw WaitSet
		for i := 1; i < 4; i++ {
			th.Go("child", i, func(c *Thread) {
				c.Compute(Millisecond)
				total++
				done++
				dw.WakeAll(c.VM())
			})
		}
		th.SpinUntil(&dw, func() bool { return done == 3 })
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("children run = %d, want 3", total)
	}
}

func TestDeterminismProperty(t *testing.T) {
	// For arbitrary small workloads, two runs with identical seeds must
	// produce identical makespans and event counts.
	f := func(seed int64, n uint8, w uint16) bool {
		threads := int(n%8) + 1
		work := Time(w%1000+1) * Microsecond
		run := func() Stats {
			v := New(Config{Cores: 4, Sockets: 2, Seed: seed})
			var m Mutex
			shared := 0
			for i := 0; i < threads; i++ {
				i := i
				v.Go("w", i%4, func(th *Thread) {
					th.Compute(work * Time(i+1) / 2)
					th.Lock(&m)
					shared++
					th.Unlock(&m)
					th.Compute(work)
				})
			}
			st, err := v.Run()
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		a, b := run(), run()
		return a.Time == b.Time && a.Events == b.Events
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5 * Nanosecond:          "5ns",
		3 * Microsecond:         "3.000µs",
		2500 * Microsecond:      "2.500ms",
		1500 * Millisecond:      "1.500s",
		Time(42):                "42ns",
		Time(1001) * Nanosecond: "1.001µs",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Cores != 1 || c.Sockets != 1 || c.Quantum != Millisecond {
		t.Fatalf("bad defaults: %+v", c)
	}
	if c.Cost.TaskSpawn == 0 {
		t.Fatal("zero cost model not replaced with defaults")
	}
	c2 := Config{Cores: 4, Sockets: 9}.withDefaults()
	if c2.Sockets != 4 {
		t.Fatalf("sockets should clamp to cores, got %d", c2.Sockets)
	}
}

func TestSocketLayout(t *testing.T) {
	v := New(Config{Cores: 32, Sockets: 4})
	for i := 0; i < 32; i++ {
		if want := i / 8; v.Socket(i) != want {
			t.Fatalf("core %d socket = %d, want %d", i, v.Socket(i), want)
		}
	}
}
