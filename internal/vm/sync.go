package vm

// This file implements the synchronization vocabulary of the simulated
// machine. Two families exist, mirroring the distinction the paper draws in
// §4 (rgbcmy) and §5:
//
//   - blocking primitives (Mutex, Cond, Barrier): waiters release their core
//     and pay an OS wake latency (CondWake, staggered BarrierWake) when
//     released — the Pthreads default.
//   - polling primitives (SpinBarrier, SpinVar, SpinUntil): waiters keep
//     their core busy and observe releases within PollInterval — the OmpSs
//     runtime style. Occupied-but-idle time is accounted as Spin so the §5
//     occupancy observation can be measured.
//
// Spinners are timesliced when their core is oversubscribed, so polling code
// still makes progress on fewer cores than threads (this matters for the
// 1-core column of Table 1).

// WaitSet tracks virtual threads parked inside a busy-wait loop. Producers
// call WakeAll after changing the watched state; each waiter re-evaluates its
// predicate. The zero value is ready to use.
type WaitSet struct {
	parked []*Thread
}

func (ws *WaitSet) park(t *Thread) {
	t.parkedOn = ws
	ws.parked = append(ws.parked, t)
}

func (ws *WaitSet) remove(t *Thread) {
	for i, w := range ws.parked {
		if w == t {
			ws.parked = append(ws.parked[:i], ws.parked[i+1:]...)
			return
		}
	}
}

// WakeAll releases every parked waiter. Each resumes after the machine's
// PollInterval (the expected latency of a busy-wait loop noticing a store)
// and re-evaluates its wait predicate.
func (ws *WaitSet) WakeAll(v *VM) {
	for _, w := range ws.parked {
		t := w
		t.parkedOn = nil
		v.at(v.now+v.cfg.Cost.PollInterval, func() { v.transfer(t) })
	}
	ws.parked = nil
}

// SpinUntil busy-waits until check() reports true, keeping the thread's core
// occupied (accounted as Spin). ws must be woken (WakeAll) by whoever makes
// check() true. If other threads are queued on the same core, the spinner is
// timesliced like a preemptively scheduled OS thread, so spin loops cannot
// starve producers on oversubscribed cores.
func (t *Thread) SpinUntil(ws *WaitSet, check func() bool) {
	cm := &t.vm.cfg.Cost
	t.Charge(cm.PollCheck)
	for {
		t.flush()
		if check() {
			return
		}
		if len(t.core.runq) == 0 {
			start := t.vm.now
			t.state = "spinning"
			ws.park(t)
			t.yield()
			t.core.Spin += t.vm.now - start
		} else {
			t.advance(t.vm.cfg.Quantum, true)
			t.preempt()
		}
		t.Charge(cm.PollCheck)
	}
}

// Block parks the thread (releasing its core) until another thread wakes it
// with VM.WakeAt. A wake that arrives while the thread is still running is
// remembered and consumed by the next Block (futex-style saved wakeup).
func (t *Thread) Block(state string) { t.block(state) }

// WakeAt makes t runnable at the given virtual time. Use together with
// Thread.Block.
func (vm *VM) WakeAt(t *Thread, at Time) { vm.wakeAt(t, at) }

// Mutex is a blocking lock with FIFO handoff. The zero value is unlocked.
type Mutex struct {
	locked bool
	owner  *Thread
	q      []*Thread
}

// Lock acquires m, blocking (off-core) while contended. An uncontended
// acquire costs MutexFast; a contended one additionally pays MutexSlow +
// CondWake before the waiter resumes with ownership.
func (t *Thread) Lock(m *Mutex) {
	t.Charge(t.vm.cfg.Cost.MutexFast)
	t.flush()
	if !m.locked {
		m.locked = true
		m.owner = t
		return
	}
	m.q = append(m.q, t)
	t.block("mutex")
}

// Unlock releases m, handing ownership to the oldest waiter if any.
func (t *Thread) Unlock(m *Mutex) {
	t.flush()
	if m.owner != t {
		panic("vm: Unlock of mutex not owned by thread " + t.Name)
	}
	if len(m.q) == 0 {
		m.locked = false
		m.owner = nil
		return
	}
	next := m.q[0]
	m.q = m.q[1:]
	m.owner = next
	t.vm.wakeAt(next, t.vm.now+t.vm.cfg.Cost.MutexSlow+t.vm.cfg.Cost.CondWake)
}

// Cond is a blocking condition variable used with a Mutex.
type Cond struct {
	q []*Thread
}

// CondWait atomically releases m and blocks until signalled, then reacquires
// m before returning (pthread_cond_wait semantics, including the usual
// requirement that callers re-check their predicate in a loop).
func (t *Thread) CondWait(c *Cond, m *Mutex) {
	c.q = append(c.q, t)
	t.Unlock(m)
	t.block("cond")
	t.Lock(m)
}

// CondSignal wakes the oldest waiter, if any.
func (t *Thread) CondSignal(c *Cond) {
	t.flush()
	if len(c.q) == 0 {
		return
	}
	w := c.q[0]
	c.q = c.q[1:]
	t.vm.wakeAt(w, t.vm.now+t.vm.cfg.Cost.CondWake)
}

// CondBroadcast wakes all waiters, staggered by the machine's wake cost
// (futex broadcasts wake serially).
func (t *Thread) CondBroadcast(c *Cond) {
	t.flush()
	for i, w := range c.q {
		t.vm.wakeAt(w, t.vm.now+t.vm.cfg.Cost.CondWake+Time(i)*t.vm.cfg.Cost.BarrierWake)
	}
	c.q = nil
}

// Barrier is a blocking thread barrier for N participants. Waiters sleep
// off-core; the release is staggered per waiter (BarrierWake), which is what
// makes blocking barriers expensive at high core counts for short phases —
// the paper's rgbcmy observation. The zero value is invalid; set N.
type Barrier struct {
	N       int
	arrived int
	q       []*Thread
}

// BarrierWait blocks until N threads have arrived. Returns true on the last
// arriver (the "serial thread", as in pthread_barrier_wait).
func (t *Thread) BarrierWait(b *Barrier) bool {
	cm := &t.vm.cfg.Cost
	t.Charge(cm.MutexFast)
	t.flush()
	b.arrived++
	if b.arrived < b.N {
		b.q = append(b.q, t)
		t.block("barrier")
		return false
	}
	b.arrived = 0
	for i, w := range b.q {
		t.vm.wakeAt(w, t.vm.now+cm.CondWake+Time(i)*cm.BarrierWake)
	}
	b.q = nil
	return true
}

// SpinBarrier is a polling (busy-wait) barrier for N participants. Waiters
// keep their cores and observe the release within PollInterval — the OmpSs
// task-barrier style. The zero value is invalid; set N.
type SpinBarrier struct {
	N       int
	arrived int
	gen     uint64
	ws      WaitSet
}

// SpinBarrierWait busy-waits until N threads have arrived. Returns true on
// the last arriver.
func (t *Thread) SpinBarrierWait(b *SpinBarrier) bool {
	t.Charge(t.vm.cfg.Cost.PollCheck)
	t.flush()
	b.arrived++
	if b.arrived == b.N {
		b.arrived = 0
		b.gen++
		b.ws.WakeAll(t.vm)
		return true
	}
	gen := b.gen
	t.SpinUntil(&b.ws, func() bool { return b.gen != gen })
	return false
}

// SpinVar is an atomic progress counter with efficient simulated busy-wait
// observers. It models the per-line decoded-macroblock counters used by
// optimized wavefront decoders (Chi & Juurlink's line decoding, paper §4).
// The zero value holds 0.
type SpinVar struct {
	val int64
	ws  WaitSet
}

// SpinStore publishes a new value and wakes watchers.
func (t *Thread) SpinStore(v *SpinVar, x int64) {
	t.Charge(t.vm.cfg.Cost.PollCheck)
	t.flush()
	v.val = x
	v.ws.WakeAll(t.vm)
}

// SpinAdd atomically adds delta, wakes watchers, and returns the new value.
func (t *Thread) SpinAdd(v *SpinVar, delta int64) int64 {
	t.Charge(t.vm.cfg.Cost.PollCheck)
	t.flush()
	v.val += delta
	v.ws.WakeAll(t.vm)
	return v.val
}

// SpinLoad reads the current value.
func (t *Thread) SpinLoad(v *SpinVar) int64 {
	t.Charge(t.vm.cfg.Cost.PollCheck)
	return v.val
}

// SpinWaitGE busy-waits until the variable reaches at least x.
func (t *Thread) SpinWaitGE(v *SpinVar, x int64) {
	t.SpinUntil(&v.ws, func() bool { return v.val >= x })
}
