// Package vm implements a deterministic discrete-event simulator of a
// multi-socket, cache-coherent NUMA chip multiprocessor.
//
// The simulator stands in for the 4-socket, 32-core cc-NUMA machine used in
// the paper's evaluation (see DESIGN.md §1). It executes *real* Go code: each
// virtual thread is a goroutine that exchanges a scheduling token with the
// simulator loop, so exactly one virtual thread runs at any real instant and
// all virtual threads observe shared memory in virtual-time order. Results
// computed inside the simulation are therefore bit-identical to a native run,
// while wall-clock behaviour (core occupancy, synchronization latency, cache
// warmth, NUMA penalties) is modeled by the CostModel.
//
// The engine is a classic event-heap DES: events are (time, seq, action)
// triples, processed in (time, seq) order, so identical configurations replay
// identically. Virtual threads are pinned to virtual cores; a core runs one
// thread at a time and timeslices (quantum + context-switch cost) when
// oversubscribed, like a preemptive OS scheduler.
package vm

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// Config describes the simulated machine.
type Config struct {
	// Cores is the number of virtual cores (≥1).
	Cores int
	// Sockets is the number of NUMA sockets. Cores are split into
	// contiguous, equally sized blocks, mirroring the paper's 4×8 layout.
	// Values that do not divide Cores are rounded so every core has a
	// socket. Zero means 1.
	Sockets int
	// Quantum is the preemption timeslice used when a core is
	// oversubscribed. Zero selects the default (1 ms).
	Quantum Time
	// Seed seeds the deterministic RNG available to schedulers (e.g. for
	// steal-victim selection).
	Seed int64
	// Cost is the machine cost model. Zero value selects DefaultCostModel.
	Cost CostModel
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.Sockets <= 0 {
		c.Sockets = 1
	}
	if c.Sockets > c.Cores {
		c.Sockets = c.Cores
	}
	if c.Quantum <= 0 {
		c.Quantum = Millisecond
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	return c
}

// event is a scheduled action. seq breaks time ties FIFO so runs replay
// deterministically.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (Time, bool) { // earliest event time
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Core is one virtual processor.
type Core struct {
	ID     int
	Socket int

	cur  *Thread   // thread currently owning the core (running or spinning)
	runq []*Thread // ready threads waiting for the core

	// accounting
	Busy Time // time spent executing useful work
	Spin Time // time spent busy-waiting (polling); a subset of occupancy
	// Busy+Spin vs final time gives idle time.
}

// VM is a simulated machine instance. Create with New, populate with Go, and
// drive to completion with Run. A VM is not safe for concurrent use from
// multiple real goroutines except through its own virtual threads.
type VM struct {
	cfg     Config
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	cores   []*Core
	threads []*Thread
	live    int // threads not yet finished
	nevents uint64

	yielded chan struct{} // virtual thread -> VM: "I have yielded"
	running bool

	datums map[any]*datumState // memory warmth tracking
}

// New creates a simulated machine.
func New(cfg Config) *VM {
	cfg = cfg.withDefaults()
	vm := &VM{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		yielded: make(chan struct{}),
		datums:  make(map[any]*datumState),
	}
	per := (cfg.Cores + cfg.Sockets - 1) / cfg.Sockets
	for i := 0; i < cfg.Cores; i++ {
		vm.cores = append(vm.cores, &Core{ID: i, Socket: i / per})
	}
	return vm
}

// Now returns the current virtual time.
func (vm *VM) Now() Time { return vm.now }

// Cores returns the number of virtual cores.
func (vm *VM) Cores() int { return len(vm.cores) }

// Socket returns the socket index of a core.
func (vm *VM) Socket(core int) int { return vm.cores[core].Socket }

// Cost returns the machine's cost model.
func (vm *VM) Cost() *CostModel { return &vm.cfg.Cost }

// Rand returns a deterministic RNG owned by the machine. Only use from
// virtual-thread or event context.
func (vm *VM) Rand() *rand.Rand { return vm.rng }

// at schedules fn to run in VM context at time `at` (clamped to now).
func (vm *VM) at(at Time, fn func()) {
	if at < vm.now {
		at = vm.now
	}
	vm.seq++
	heap.Push(&vm.events, event{at: at, seq: vm.seq, fn: fn})
}

// Stats summarizes a finished run.
type Stats struct {
	Time    Time   // virtual makespan
	Events  uint64 // DES events processed
	Cores   []CoreStats
	Threads int
}

// CoreStats is per-core occupancy accounting.
type CoreStats struct {
	Busy Time // useful execution
	Spin Time // busy-wait occupancy
}

// Utilization returns the fraction of core-time spent on useful work.
func (s Stats) Utilization() float64 {
	if s.Time == 0 || len(s.Cores) == 0 {
		return 0
	}
	var busy Time
	for _, c := range s.Cores {
		busy += c.Busy
	}
	return float64(busy) / (float64(s.Time) * float64(len(s.Cores)))
}

// Occupancy returns the fraction of core-time during which cores were held
// (useful work + spinning). The paper's §5 responsiveness remark is about
// occupancy exceeding utilization under polling runtimes.
func (s Stats) Occupancy() float64 {
	if s.Time == 0 || len(s.Cores) == 0 {
		return 0
	}
	var occ Time
	for _, c := range s.Cores {
		occ += c.Busy + c.Spin
	}
	return float64(occ) / (float64(s.Time) * float64(len(s.Cores)))
}

// Run processes events until every virtual thread has finished. It returns an
// error when the simulation deadlocks (live threads but no pending events).
func (vm *VM) Run() (Stats, error) {
	if vm.running {
		return Stats{}, fmt.Errorf("vm: Run called twice")
	}
	vm.running = true
	for vm.live > 0 {
		if len(vm.events) == 0 {
			return vm.stats(), fmt.Errorf("vm: deadlock at %v: %s", vm.now, vm.dumpThreads())
		}
		ev := heap.Pop(&vm.events).(event)
		vm.now = ev.at
		vm.nevents++
		ev.fn()
	}
	return vm.stats(), nil
}

func (vm *VM) stats() Stats {
	s := Stats{Time: vm.now, Events: vm.nevents, Threads: len(vm.threads)}
	for _, c := range vm.cores {
		s.Cores = append(s.Cores, CoreStats{Busy: c.Busy, Spin: c.Spin})
	}
	return s
}

func (vm *VM) dumpThreads() string {
	var parts []string
	for _, t := range vm.threads {
		if !t.finished {
			parts = append(parts, fmt.Sprintf("%s[%s]", t.Name, t.state))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// Go creates a virtual thread pinned to the given core, running fn. It may be
// called before Run (root threads) or from another virtual thread
// (pthread_create-style). The thread becomes runnable after the configured
// thread-spawn latency.
func (vm *VM) Go(name string, core int, fn func(*Thread)) *Thread {
	if core < 0 || core >= len(vm.cores) {
		core = 0
	}
	t := &Thread{
		vm:      vm,
		ID:      len(vm.threads),
		Name:    name,
		core:    vm.cores[core],
		resume:  make(chan struct{}),
		fn:      fn,
		state:   "new",
		blocked: true, // a new thread is woken by its start event
	}
	vm.threads = append(vm.threads, t)
	vm.live++
	go t.main()
	vm.at(vm.now+vm.cfg.Cost.ThreadSpawn, func() { vm.makeReady(t) })
	return t
}

// makeReady queues t on its core, granting the core immediately if free.
// Must run in VM/virtual-thread context. A wake delivered while t is still
// running is saved (futex-style) and consumed by t's next block. Primitives
// wake a thread exactly once per grant, so a saved wake can never go stale.
func (vm *VM) makeReady(t *Thread) {
	if !t.blocked {
		t.wakePending = true
		return
	}
	t.blocked = false
	c := t.core
	if c.cur == nil {
		c.cur = t
		vm.resumeSoon(t)
		return
	}
	c.runq = append(c.runq, t)
	t.state = "ready"
	// If the core is held by a parked spinner, boot it so the incoming
	// thread is not starved: the spinner resumes, notices the queued peer,
	// and downgrades to timesliced spinning (preemptive-OS behaviour).
	if cur := c.cur; cur != nil && cur.parkedOn != nil {
		ws := cur.parkedOn
		cur.parkedOn = nil
		ws.remove(cur)
		booted := cur
		vm.at(vm.now, func() { vm.transfer(booted) })
	}
}

// resumeSoon schedules the token handoff to t at the current time.
func (vm *VM) resumeSoon(t *Thread) {
	vm.at(vm.now, func() { vm.transfer(t) })
}

// transfer hands the execution token to t and waits for it to yield. Only
// ever invoked from the Run loop (event context).
func (vm *VM) transfer(t *Thread) {
	t.state = "running"
	t.resume <- struct{}{}
	<-vm.yielded
}

// releaseCore gives up t's core and dispatches the next queued thread, if
// any, charging a context switch.
func (vm *VM) releaseCore(t *Thread) {
	c := t.core
	if c.cur != t {
		return
	}
	c.cur = nil
	if len(c.runq) > 0 {
		next := c.runq[0]
		c.runq = c.runq[1:]
		c.cur = next
		vm.at(vm.now+vm.cfg.Cost.ContextSwitch, func() { vm.transfer(next) })
	}
}

// Thread is a virtual thread of execution. All methods must be called from
// the thread's own body function.
type Thread struct {
	vm   *VM
	ID   int
	Name string
	core *Core

	resume   chan struct{}
	fn       func(*Thread)
	state    string
	finished bool

	blocked     bool     // parked off-core, waiting for makeReady
	wakePending bool     // a wake arrived while still running
	parkedOn    *WaitSet // non-nil while parked in a spin loop (core held)

	acc Time // accumulated small charges, folded into the next advance
}

// main is the real goroutine backing the virtual thread.
func (t *Thread) main() {
	<-t.resume // wait for first dispatch
	t.fn(t)
	t.flush()
	t.finished = true
	t.state = "done"
	t.vm.live--
	t.vm.releaseCore(t)
	t.vm.yielded <- struct{}{}
}

// yield returns the token to the VM loop and blocks until redispatched.
func (t *Thread) yield() {
	t.vm.yielded <- struct{}{}
	<-t.resume
}

// VM returns the owning machine.
func (t *Thread) VM() *VM { return t.vm }

// Core returns the ID of the core the thread is pinned to.
func (t *Thread) Core() int { return t.core.ID }

// Socket returns the socket of the thread's core.
func (t *Thread) Socket() int { return t.core.Socket }

// Now returns current virtual time.
func (t *Thread) Now() Time { return t.vm.now }

// Charge accrues a small cost without an immediate context interaction. The
// accumulated amount is folded into the next Compute, blocking operation, or
// Flush. Use it for cheap bookkeeping costs (uncontended lock/unlock, queue
// operations) to keep the event count low.
func (t *Thread) Charge(d Time) {
	if d > 0 {
		t.acc += d
	}
}

// flush converts accumulated charges into real virtual-time advance.
func (t *Thread) flush() {
	if t.acc > 0 {
		d := t.acc
		t.acc = 0
		t.advance(d, false)
	}
}

// Flush forces accumulated charges to take effect now. Needed before reading
// shared state whose ordering matters.
func (t *Thread) Flush() { t.flush() }

// advance occupies the core for d nanoseconds. spin selects whether the time
// counts as useful work or busy-waiting. The thread keeps core ownership.
func (t *Thread) advance(d Time, spin bool) {
	if d <= 0 {
		return
	}
	t.state = "computing"
	t.vm.at(t.vm.now+d, func() { t.vm.transfer(t) })
	t.yield()
	if spin {
		t.core.Spin += d
	} else {
		t.core.Busy += d
	}
}

// Compute models d nanoseconds of computation on the thread's core. When the
// core is oversubscribed, the computation is timesliced at the machine
// quantum, paying context switches, like a preemptive OS.
func (t *Thread) Compute(d Time) {
	d += t.acc
	t.acc = 0
	q := t.vm.cfg.Quantum
	for d > 0 {
		step := d
		if len(t.core.runq) > 0 && step > q {
			step = q
		}
		t.advance(step, false)
		d -= step
		if d > 0 && len(t.core.runq) > 0 {
			t.preempt()
		}
	}
}

// preempt moves the thread to the back of its core's run queue and hands the
// core to the next ready thread, blocking until the core is regained.
func (t *Thread) preempt() {
	c := t.core
	if len(c.runq) == 0 {
		return
	}
	next := c.runq[0]
	c.runq = c.runq[1:]
	c.runq = append(c.runq, t)
	c.cur = next
	t.state = "preempted"
	t.vm.at(t.vm.now+t.vm.cfg.Cost.ContextSwitch, func() { t.vm.transfer(next) })
	t.yield()
}

// Sleep blocks the thread (releasing its core) for d nanoseconds.
func (t *Thread) Sleep(d Time) {
	t.flush()
	t.vm.at(t.vm.now+d, func() { t.vm.makeReady(t) })
	t.block("sleep")
}

// block parks the thread off-core with the given state label, unless a wake
// was saved while it was still running (which it then consumes).
func (t *Thread) block(state string) {
	t.flush()
	if t.wakePending {
		t.wakePending = false
		return
	}
	t.blocked = true
	t.state = "blocked:" + state
	t.vm.releaseCore(t)
	t.yield()
}

// wakeAt schedules t to become runnable at the given virtual time.
func (vm *VM) wakeAt(t *Thread, at Time) {
	vm.at(at, func() { vm.makeReady(t) })
}

// Go spawns a child virtual thread pinned to the given core. The caller
// pays only the serial issue cost; the child's start latency overlaps with
// further parent execution (clone() returns before the child is scheduled).
func (t *Thread) Go(name string, core int, fn func(*Thread)) *Thread {
	t.Charge(t.vm.cfg.Cost.ThreadSpawnIssue)
	t.flush()
	return t.vm.Go(name, core, fn)
}

// Yield voluntarily reschedules the thread behind any queued peers on its
// core (sched_yield).
func (t *Thread) Yield() {
	t.flush()
	if len(t.core.runq) > 0 {
		t.preempt()
	}
}
