package vm

import "testing"

func TestYieldRotatesOversubscribedCore(t *testing.T) {
	v := newVM(1)
	var order []string
	v.Go("a", 0, func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Compute(10 * Microsecond)
			order = append(order, "a")
			th.Yield()
		}
	})
	v.Go("b", 0, func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Compute(10 * Microsecond)
			order = append(order, "b")
			th.Yield()
		}
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	// With cooperative yields, neither thread should finish all three
	// slices before the other starts.
	if order[0] == order[1] && order[1] == order[2] {
		t.Fatalf("yield did not interleave: %v", order)
	}
}

func TestCustomCostModel(t *testing.T) {
	cm := DefaultCostModel()
	cm.ThreadSpawn = 100 * Microsecond
	v := New(Config{Cores: 1, Cost: cm})
	v.Go("w", 0, func(th *Thread) { th.Compute(Microsecond) })
	st, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Time != 101*Microsecond {
		t.Fatalf("custom spawn cost ignored: %v", st.Time)
	}
}

func TestBandwidthContentionScalesWithActiveCores(t *testing.T) {
	// The same cold access costs more when other cores are computing.
	quiet := New(Config{Cores: 8, Sockets: 1, Seed: 1})
	soloCost := quiet.MemCost(0, new(int), 1<<20, true)

	busy := New(Config{Cores: 8, Sockets: 1, Seed: 1})
	for i := 0; i < 8; i++ {
		busy.Go("w", i, func(th *Thread) { th.Compute(10 * Millisecond) })
	}
	// Let the run start so cores become active, then sample MemCost from
	// a fresh key inside a probe thread.
	var contended Time
	probe := New(Config{Cores: 8, Sockets: 1, Seed: 1})
	for i := 1; i < 8; i++ {
		probe.Go("load", i, func(th *Thread) { th.Compute(10 * Millisecond) })
	}
	probe.Go("probe", 0, func(th *Thread) {
		th.Compute(Millisecond) // others are mid-compute now
		contended = th.TouchCost(new(int), 1<<20, true)
	})
	if _, err := probe.Run(); err != nil {
		t.Fatal(err)
	}
	if contended <= soloCost {
		t.Fatalf("contended access (%v) should exceed solo (%v)", contended, soloCost)
	}
}

func TestSpinDoesNotPressureBandwidth(t *testing.T) {
	// Parked spinners are not "active": a cold access while 7 cores spin
	// costs the same as solo.
	v := New(Config{Cores: 8, Sockets: 1, Seed: 1})
	solo := v.MemCost(0, new(int), 1<<20, true)
	var sv SpinVar
	var measured Time
	for i := 1; i < 8; i++ {
		v.Go("spinner", i, func(th *Thread) { th.SpinWaitGE(&sv, 1) })
	}
	v.Go("worker", 0, func(th *Thread) {
		th.Compute(Millisecond) // spinners have parked by now
		measured = th.TouchCost(new(int), 1<<20, true)
		th.SpinStore(&sv, 1)
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if measured != solo {
		t.Fatalf("spinners inflated memory cost: %v vs %v", measured, solo)
	}
}
