package vm

import (
	"testing"
)

func TestMutexMutualExclusionOrdering(t *testing.T) {
	v := newVM(4)
	var m Mutex
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		v.Go("w", i, func(th *Thread) {
			th.Compute(Time(i) * 10 * Microsecond) // arrive in index order
			th.Lock(&m)
			order = append(order, i)
			th.Compute(100 * Microsecond) // hold long enough to force contention
			th.Unlock(&m)
		})
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("FIFO handoff violated: %v", order)
		}
	}
}

func TestMutexContentionCostsMore(t *testing.T) {
	uncontended := func() Time {
		v := newVM(2)
		var m Mutex
		v.Go("a", 0, func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.Lock(&m)
				th.Compute(Microsecond)
				th.Unlock(&m)
			}
		})
		st, _ := v.Run()
		return st.Time
	}()
	contended := func() Time {
		v := newVM(2)
		var m Mutex
		for i := 0; i < 2; i++ {
			v.Go("w", i, func(th *Thread) {
				for j := 0; j < 50; j++ {
					th.Lock(&m)
					th.Compute(Microsecond)
					th.Unlock(&m)
				}
			})
		}
		st, _ := v.Run()
		return st.Time
	}()
	// Same total critical work (100µs), but the contended version pays
	// wake latencies on nearly every handoff.
	if contended <= uncontended {
		t.Fatalf("contended %v should exceed uncontended %v", contended, uncontended)
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	v := newVM(1)
	var m Mutex
	panicked := false
	v.Go("bad", 0, func(th *Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		th.Unlock(&m)
	})
	v.Run() //nolint:errcheck // thread panics internally; recover handles it
	if !panicked {
		t.Fatal("Unlock by non-owner should panic")
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	v := newVM(4)
	var m Mutex
	var c Cond
	ready := 0
	woken := 0
	for i := 0; i < 3; i++ {
		v.Go("waiter", i, func(th *Thread) {
			th.Lock(&m)
			ready++
			th.CondWait(&c, &m)
			woken++
			th.Unlock(&m)
		})
	}
	v.Go("signaler", 3, func(th *Thread) {
		// Wait until all three block, then signal one at a time.
		for {
			th.Compute(100 * Microsecond)
			th.Lock(&m)
			r := ready
			th.Unlock(&m)
			if r == 3 {
				break
			}
		}
		for i := 0; i < 3; i++ {
			th.Lock(&m)
			th.CondSignal(&c)
			th.Unlock(&m)
			th.Compute(100 * Microsecond)
		}
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	v := newVM(8)
	var m Mutex
	var c Cond
	blocked := 0
	woken := 0
	for i := 0; i < 7; i++ {
		v.Go("waiter", i, func(th *Thread) {
			th.Lock(&m)
			blocked++
			th.CondWait(&c, &m)
			woken++
			th.Unlock(&m)
		})
	}
	v.Go("b", 7, func(th *Thread) {
		for {
			th.Compute(50 * Microsecond)
			th.Lock(&m)
			n := blocked
			th.Unlock(&m)
			if n == 7 {
				break
			}
		}
		th.Lock(&m)
		th.CondBroadcast(&c)
		th.Unlock(&m)
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 7 {
		t.Fatalf("woken = %d, want 7", woken)
	}
}

func TestBlockingBarrierRounds(t *testing.T) {
	const n = 8
	v := newVM(n)
	var b Barrier
	b.N = n
	phase := make([]int, n)
	lastCount := 0
	for i := 0; i < n; i++ {
		i := i
		v.Go("w", i, func(th *Thread) {
			for round := 0; round < 5; round++ {
				th.Compute(Time(i+1) * 20 * Microsecond)
				if th.BarrierWait(&b) {
					lastCount++
				}
				phase[i] = round + 1
				// Everyone must observe all peers at the same phase
				// boundary; a stale phase would mean the barrier leaked.
				for j := 0; j < n; j++ {
					if phase[j] < round {
						t.Errorf("thread %d saw stale phase[%d]=%d in round %d", i, j, phase[j], round)
					}
				}
			}
		})
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if lastCount != 5 {
		t.Fatalf("serial-thread returns = %d, want 5", lastCount)
	}
}

func TestSpinBarrierRounds(t *testing.T) {
	const n = 6
	v := newVM(n)
	var b SpinBarrier
	b.N = n
	sum := 0
	for i := 0; i < n; i++ {
		i := i
		v.Go("w", i, func(th *Thread) {
			for round := 0; round < 4; round++ {
				th.Compute(Time(i+1) * 10 * Microsecond)
				sum++
				th.SpinBarrierWait(&b)
			}
		})
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != n*4 {
		t.Fatalf("sum = %d, want %d", sum, n*4)
	}
}

func TestSpinBarrierFasterThanBlockingForShortPhases(t *testing.T) {
	// The rgbcmy mechanism: many short phases separated by barriers. The
	// polling barrier avoids per-waiter wake latency and should win.
	const n, rounds = 16, 50
	blocking := func() Time {
		v := New(Config{Cores: n, Sockets: 2, Seed: 1})
		var b Barrier
		b.N = n
		for i := 0; i < n; i++ {
			v.Go("w", i, func(th *Thread) {
				for r := 0; r < rounds; r++ {
					th.Compute(20 * Microsecond)
					th.BarrierWait(&b)
				}
			})
		}
		st, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Time
	}()
	polling := func() Time {
		v := New(Config{Cores: n, Sockets: 2, Seed: 1})
		var b SpinBarrier
		b.N = n
		for i := 0; i < n; i++ {
			v.Go("w", i, func(th *Thread) {
				for r := 0; r < rounds; r++ {
					th.Compute(20 * Microsecond)
					th.SpinBarrierWait(&b)
				}
			})
		}
		st, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Time
	}()
	if polling >= blocking {
		t.Fatalf("polling barrier (%v) should beat blocking barrier (%v) for short phases", polling, blocking)
	}
}

func TestSpinVarProducerConsumer(t *testing.T) {
	v := newVM(2)
	var progress SpinVar
	data := make([]int, 10)
	consumed := make([]int, 0, 10)
	v.Go("producer", 0, func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Compute(50 * Microsecond)
			data[i] = i * i
			th.SpinStore(&progress, int64(i+1))
		}
	})
	v.Go("consumer", 1, func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.SpinWaitGE(&progress, int64(i+1))
			consumed = append(consumed, data[i])
			th.Compute(10 * Microsecond)
		}
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range consumed {
		if got != i*i {
			t.Fatalf("consumed[%d] = %d, want %d", i, got, i*i)
		}
	}
}

func TestSpinWaitSharedCoreProgress(t *testing.T) {
	// Spinner and producer share one core: the spinner must be timesliced
	// so the producer can make the awaited progress (no livelock). This is
	// the 1-core column of Table 1 for spin-synced benchmarks.
	v := newVM(1)
	var progress SpinVar
	done := false
	v.Go("spinner", 0, func(th *Thread) {
		th.SpinWaitGE(&progress, 5)
		done = true
	})
	v.Go("producer", 0, func(th *Thread) {
		for i := 1; i <= 5; i++ {
			th.Compute(2 * Millisecond)
			th.SpinStore(&progress, int64(i))
		}
	})
	st, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("spinner never observed progress")
	}
	if st.Time < 10*Millisecond {
		t.Fatalf("makespan %v too small for 10ms of producer work", st.Time)
	}
}

func TestSpinAddAndLoad(t *testing.T) {
	v := newVM(2)
	var sv SpinVar
	var got int64
	v.Go("a", 0, func(th *Thread) {
		th.SpinAdd(&sv, 3)
		th.SpinAdd(&sv, 4)
		got = th.SpinLoad(&sv)
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("SpinLoad = %d, want 7", got)
	}
}

func TestBlockWakePendingIsSaved(t *testing.T) {
	// A wake that races with the transition to blocked must not be lost.
	v := newVM(2)
	var target *Thread
	reached := false
	target = v.Go("sleeper", 0, func(th *Thread) {
		th.Compute(5 * Millisecond) // the waker fires mid-compute
		th.Block("test")            // must consume the saved wake
		reached = true
	})
	v.Go("waker", 1, func(th *Thread) {
		th.Compute(Millisecond)
		th.VM().WakeAt(target, th.Now())
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatal("saved wake was lost")
	}
}
