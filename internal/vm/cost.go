package vm

// CostModel parameterizes the simulated machine. All values are calibrated to
// a circa-2012 multi-socket x86 server (the paper's evaluation platform
// class); EXPERIMENTS.md documents the calibration rationale. The defaults
// matter only in ratio: both programming models execute on the same machine,
// so Table-1-style comparisons depend on the relative magnitudes of task
// overhead, synchronization latency, and memory locality, not on absolutes.
type CostModel struct {
	// Thread and task management.
	ThreadSpawnIssue Time // serial cost the parent pays to issue a clone()
	ThreadSpawn      Time // latency until the new thread runs (overlappable)
	TaskSpawn        Time // creating a task object and inserting it in the graph
	DepEdge          Time // registering/resolving one dependence edge
	TaskDispatch     Time // popping a ready task and setting up execution
	TaskFinish       Time // completion bookkeeping (successor updates excluded)
	StealAttempt     Time // one work-stealing probe (successful or not)
	// QueueContention scales the task-queue operations (spawn, dispatch)
	// by (1 + QueueContention×(threads−1)): the central ready-queue lock
	// of the 2012-era runtime becomes a measurable serialization point at
	// high core counts.
	QueueContention float64

	// Locks and waiting.
	MutexFast     Time // uncontended lock+unlock pair
	MutexSlow     Time // additional latency for a contended acquire
	CondWake      Time // waking one blocked thread (futex wake + sched-in)
	BarrierWake   Time // per-waiter stagger when a blocking barrier releases
	PollInterval  Time // busy-wait loop period (poll latency upper bound)
	PollCheck     Time // cost of one poll-loop iteration
	ContextSwitch Time

	// Memory system. A task or thread touching `bytes` of data pays
	// bytes×NsPerByte scaled by a warmth factor that depends on where the
	// data was last written and how long ago.
	NsPerByte      float64 // cold/DRAM streaming cost per byte
	WarmSameCore   float64 // factor when reusing data recently produced on the same core
	WarmSameSocket float64 // factor when the producer ran on the same socket (shared LLC)
	CrossSocket    float64 // factor for cc-NUMA remote-socket access
	CacheDecay     Time    // how long produced data stays warm
	// BWContention models shared memory-bandwidth saturation: accesses
	// that miss the local cache (factor above WarmSameCore) additionally
	// scale by (1 + BWContention×(activeCores−1)). This is what makes
	// cache-warm scheduling increasingly valuable at high core counts on
	// the paper's machine — a warm hit dodges a saturated memory system.
	BWContention float64
}

// DefaultCostModel returns the calibrated machine parameters used throughout
// the evaluation.
func DefaultCostModel() CostModel {
	return CostModel{
		ThreadSpawnIssue: 2500 * Nanosecond,
		ThreadSpawn:      12 * Microsecond,
		TaskSpawn:        800 * Nanosecond,
		DepEdge:          120 * Nanosecond,
		TaskDispatch:     300 * Nanosecond,
		TaskFinish:       250 * Nanosecond,
		StealAttempt:     450 * Nanosecond,
		QueueContention:  0.035,

		MutexFast:     45 * Nanosecond,
		MutexSlow:     1500 * Nanosecond,
		CondWake:      4 * Microsecond,
		BarrierWake:   1000 * Nanosecond,
		PollInterval:  250 * Nanosecond,
		PollCheck:     25 * Nanosecond,
		ContextSwitch: 3 * Microsecond,

		// Effective per-byte cost for benchmark-style access patterns
		// (strided/indirect, coherence-visible) on a 2012 4-socket part:
		// ≈2 GB/s per core, far below peak streaming bandwidth. This is
		// what makes producer→consumer cache warmth measurable, as it was
		// on the paper's machine.
		NsPerByte:      0.5,
		WarmSameCore:   0.30,
		WarmSameSocket: 0.65,
		CrossSocket:    1.40,
		CacheDecay:     2 * Millisecond,
		BWContention:   0.12,
	}
}

// datumState tracks where a datum was last produced, for the warmth model.
type datumState struct {
	core   int
	socket int
	at     Time
	valid  bool
}

// MemCost returns the virtual time needed for a thread on `core` to stream
// `bytes` of the datum identified by `key`, given where the datum was last
// written. When write is true the datum's home moves to this core.
// A nil key models untracked (always-cold) data.
func (vm *VM) MemCost(core int, key any, bytes int64, write bool) Time {
	if bytes <= 0 {
		return 0
	}
	cm := &vm.cfg.Cost
	factor := 1.0
	if key != nil {
		if ds, ok := vm.datums[key]; ok && ds.valid {
			fresh := vm.now-ds.at <= cm.CacheDecay
			switch {
			case fresh && ds.core == core:
				factor = cm.WarmSameCore
			case fresh && ds.socket == vm.cores[core].Socket:
				factor = cm.WarmSameSocket
			case ds.socket != vm.cores[core].Socket:
				factor = cm.CrossSocket
			}
		}
		if write {
			ds := vm.datums[key]
			if ds == nil {
				ds = &datumState{}
				vm.datums[key] = ds
			}
			ds.core = core
			ds.socket = vm.cores[core].Socket
			ds.at = vm.now
			ds.valid = true
		} else if ds, ok := vm.datums[key]; ok && ds.valid {
			// A read pulls a copy into this core's cache; subsequent
			// same-core reads are warm. Model by re-homing reads too
			// (MESI shared-line approximation) without changing time.
			ds.core = core
			ds.socket = vm.cores[core].Socket
			ds.at = vm.now
		}
	}
	// Anything that misses the local cache competes for shared memory
	// bandwidth with every other actively computing core.
	if factor > cm.WarmSameCore && cm.BWContention > 0 {
		if act := vm.activeCores(); act > 1 {
			factor *= 1 + cm.BWContention*float64(act-1)
		}
	}
	return Time(float64(bytes) * cm.NsPerByte * factor)
}

// activeCores counts cores whose current thread is actually computing
// (spin-waiters poll cached lines and do not pressure DRAM).
func (vm *VM) activeCores() int {
	n := 0
	for _, c := range vm.cores {
		if c.cur != nil && c.cur.parkedOn == nil {
			n++
		}
	}
	return n
}

// TouchCost is MemCost from thread context, using the thread's core.
func (t *Thread) TouchCost(key any, bytes int64, write bool) Time {
	return t.vm.MemCost(t.core.ID, key, bytes, write)
}

// ComputeMem charges cpu nanoseconds plus the memory cost of touching the
// given datum. Convenience for benchmark variants.
func (t *Thread) ComputeMem(cpu Time, key any, bytes int64, write bool) {
	t.Compute(cpu + t.TouchCost(key, bytes, write))
}
