package img

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRGBAtSetRoundtrip(t *testing.T) {
	im := NewRGB(7, 5)
	im.Set(3, 2, 10, 20, 30)
	r, g, b := im.At(3, 2)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("At = %d,%d,%d", r, g, b)
	}
}

func TestRGBRowAliasesPixels(t *testing.T) {
	im := NewRGB(4, 3)
	row := im.Row(1)
	row[3], row[4], row[5] = 9, 8, 7 // pixel (1,1)
	r, g, b := im.At(1, 1)
	if r != 9 || g != 8 || b != 7 {
		t.Fatal("Row must alias the backing pixels")
	}
}

func TestChecksumDetectsChange(t *testing.T) {
	a := NewRGB(8, 8)
	b := a.Clone()
	if a.Checksum() != b.Checksum() {
		t.Fatal("clones must share checksum")
	}
	b.Set(0, 0, 1, 0, 0)
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum must change with content")
	}
}

func TestGrayCloneIndependent(t *testing.T) {
	a := NewGray(4, 4)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("clone must not share storage")
	}
}

func TestWritePPMHeader(t *testing.T) {
	im := NewRGB(2, 3)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n2 3\n255\n") {
		t.Fatalf("bad PPM header: %q", buf.String()[:12])
	}
	if buf.Len() != 11+2*3*3 {
		t.Fatalf("PPM size = %d", buf.Len())
	}
}

func TestWritePGMHeader(t *testing.T) {
	im := NewGray(4, 2)
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n4 2\n255\n") {
		t.Fatalf("bad PGM header: %q", buf.String())
	}
}

func TestPSNR(t *testing.T) {
	a := NewGray(16, 16)
	b := a.Clone()
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("identical images must have +Inf PSNR")
	}
	for i := range b.Pix {
		b.Pix[i] = a.Pix[i] + 2
	}
	small := PSNR(a, b)
	for i := range b.Pix {
		b.Pix[i] = a.Pix[i] + 40
	}
	large := PSNR(a, b)
	if small <= large {
		t.Fatalf("PSNR should fall with distortion: +2→%.1f dB, +40→%.1f dB", small, large)
	}
	if small < 40 || small > 50 {
		t.Fatalf("uniform +2 distortion should be ≈42 dB, got %.1f", small)
	}
}
