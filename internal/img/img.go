// Package img provides the planar image types shared by the benchmark
// kernels (ray tracing, rotation, color conversion, video coding), plus
// PPM/PGM serialization and content checksums used to verify that the
// sequential, Pthreads, and OmpSs variants of every benchmark compute
// identical results.
package img

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// RGB is an 8-bit interleaved RGB image (3 bytes per pixel, row-major).
type RGB struct {
	W, H int
	Pix  []uint8 // len = 3*W*H
}

// NewRGB allocates a black RGB image.
func NewRGB(w, h int) *RGB { return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)} }

// At returns the pixel at (x, y).
func (im *RGB) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*im.W + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the pixel at (x, y).
func (im *RGB) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*im.W + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Row returns the pixel row y as a subslice (3*W bytes).
func (im *RGB) Row(y int) []uint8 { return im.Pix[3*y*im.W : 3*(y+1)*im.W] }

// Clone returns a deep copy.
func (im *RGB) Clone() *RGB {
	c := NewRGB(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Checksum returns an FNV-1a hash of the dimensions and pixels.
func (im *RGB) Checksum() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%dx%d:", im.W, im.H)
	h.Write(im.Pix)
	return h.Sum64()
}

// WritePPM serializes the image as binary PPM (P6).
func (im *RGB) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	_, err := w.Write(im.Pix)
	return err
}

// Gray is an 8-bit single-channel image (1 byte per pixel, row-major). The
// video codec uses it for luma planes; the color kernel for output planes.
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray allocates a black grayscale image.
func NewGray(w, h int) *Gray { return &Gray{W: w, H: h, Pix: make([]uint8, w*h)} }

// At returns the pixel at (x, y).
func (im *Gray) At(x, y int) uint8 { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Gray) Set(x, y int, v uint8) { im.Pix[y*im.W+x] = v }

// Row returns pixel row y as a subslice.
func (im *Gray) Row(y int) []uint8 { return im.Pix[y*im.W : (y+1)*im.W] }

// Clone returns a deep copy.
func (im *Gray) Clone() *Gray {
	c := NewGray(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Checksum returns an FNV-1a hash of the dimensions and pixels.
func (im *Gray) Checksum() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%dx%d:", im.W, im.H)
	h.Write(im.Pix)
	return h.Sum64()
}

// WritePGM serializes the image as binary PGM (P5).
func (im *Gray) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	_, err := w.Write(im.Pix)
	return err
}

// PSNR computes the peak signal-to-noise ratio between two same-sized gray
// images, in dB (+Inf for identical images). Used by the codec tests.
func PSNR(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		return 0
	}
	var se float64
	for i := range a.Pix {
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		se += d * d
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := se / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse)
}
