package rotcc

import (
	"testing"

	"ompssgo/internal/img"
	kcolor "ompssgo/internal/kernels/color"
	krot "ompssgo/internal/kernels/rotate"
)

func TestPipelineMatchesManualComposition(t *testing.T) {
	in := New(Small())
	// Recompute frame 0 by hand and compare against the suite's fold
	// input structure.
	rot := img.NewRGB(in.W.W, in.W.H)
	krot.Rotate(rot, in.srcs[0], in.W.Angle)
	out := kcolor.NewCMYK(in.W.W, in.W.H)
	kcolor.RGBToCMYK(out, rot)
	rots, outs := in.newFrames()
	krot.Rotate(rots[0], in.srcs[0], in.W.Angle)
	kcolor.RGBToCMYK(outs[0], rots[0])
	if out.Checksum() != outs[0].Checksum() {
		t.Fatal("suite stage composition diverges from manual composition")
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "rot-cc" || in.Class() != "workload" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
