// Package rotcc is the rot-cc benchmark of the suite: rotation feeding
// RGB→CMYK color conversion over a frame set — the same producer→consumer
// pipeline shape as ray-rot but with a cheaper consumer, so the locality
// advantage is present but smaller (paper Table 1 mean 1.08).
package rotcc

import (
	"ompssgo/internal/check"
	"ompssgo/internal/img"
	kcolor "ompssgo/internal/kernels/color"
	krot "ompssgo/internal/kernels/rotate"
	"ompssgo/internal/media"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	Frames int
	W, H   int
	Angle  float64
	Seed   int64
}

// Default is the harness workload.
func Default() Workload { return Workload{Frames: 48, W: 320, H: 240, Angle: 0.15, Seed: 9} }

// Small is the test workload.
func Small() Workload { return Workload{Frames: 6, W: 64, H: 48, Angle: 0.15, Seed: 9} }

// Instance is a prepared benchmark instance.
type Instance struct {
	W    Workload
	srcs []*img.RGB
}

// New generates one source image per frame.
func New(w Workload) *Instance {
	in := &Instance{W: w}
	for f := 0; f < w.Frames; f++ {
		in.srcs = append(in.srcs, media.Image(w.W, w.H, w.Seed+int64(f)))
	}
	return in
}

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "rot-cc" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "workload" }

func (in *Instance) fold(out []*kcolor.CMYK) uint64 {
	sums := make([]uint64, len(out))
	for i, p := range out {
		sums[i] = p.Checksum()
	}
	return check.Combine(sums)
}

func (in *Instance) newFrames() (rot []*img.RGB, out []*kcolor.CMYK) {
	rot = make([]*img.RGB, in.W.Frames)
	out = make([]*kcolor.CMYK, in.W.Frames)
	for f := range rot {
		rot[f] = img.NewRGB(in.W.W, in.W.H)
		out[f] = kcolor.NewCMYK(in.W.W, in.W.H)
	}
	return rot, out
}

// RunSeq rotates then converts each frame in order.
func (in *Instance) RunSeq() uint64 {
	rot, out := in.newFrames()
	for f := 0; f < in.W.Frames; f++ {
		krot.Rotate(rot[f], in.srcs[f], in.W.Angle)
		kcolor.RGBToCMYK(out[f], rot[f])
	}
	return in.fold(out)
}

// RunPthreads runs rotation and conversion as barrier-separated phases.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	rot, out := in.newFrames()
	api := main.API()
	bar := api.NewBarrier(api.Threads())
	frameBytes := int64(3 * in.W.W * in.W.H)
	main.Parallel(func(t *pthread.Thread) {
		p := t.API().Threads()
		for f := t.ID(); f < in.W.Frames; f += p {
			krot.Rotate(rot[f], in.srcs[f], in.W.Angle)
			t.Compute(krot.RowsCost(in.W.W * in.W.H))
			t.Touch(&rot[f].Pix[0], frameBytes, true)
		}
		t.Barrier(bar)
		for f := t.ID(); f < in.W.Frames; f += p {
			kcolor.RGBToCMYK(out[f], rot[f])
			t.Compute(kcolor.RowsCost(in.W.W * in.W.H))
			t.Touch(&rot[f].Pix[0], frameBytes, false)
			t.Touch(&out[f].C.Pix[0], int64(4*in.W.W*in.W.H), true)
		}
	})
	return in.fold(out)
}

// RunOmpSs chains rotate→convert task pairs per frame.
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	rot, out := in.newFrames()
	frameBytes := int64(3 * in.W.W * in.W.H)
	for f := 0; f < in.W.Frames; f++ {
		f := f
		// The intermediate frame links producer to consumer: one handle
		// serves both ends of the chain.
		mid := rt.Register(&rot[f].Pix[0])
		rt.Task(func(*ompss.TC) { krot.Rotate(rot[f], in.srcs[f], in.W.Angle) },
			ompss.OutSized(mid, frameBytes),
			ompss.Cost(krot.RowsCost(in.W.W*in.W.H)),
			ompss.Label("rotate"))
		rt.Task(func(*ompss.TC) { kcolor.RGBToCMYK(out[f], rot[f]) },
			ompss.InSized(mid, frameBytes),
			ompss.OutSized(&out[f].C.Pix[0], int64(4*in.W.W*in.W.H)),
			ompss.Cost(kcolor.RowsCost(in.W.W*in.W.H)),
			ompss.Label("cmyk"))
	}
	rt.Taskwait()
	return in.fold(out)
}
