// Package bodytrack is the bodytrack benchmark of the suite: an annealed
// particle filter tracking an articulated figure through synthetic
// silhouette observations (application class; paper Table 1 mean 1.00 —
// the two models tie). Per annealing layer, particle likelihoods evaluate
// in parallel over fixed chunks; the resample step is serial.
package bodytrack

import (
	"ompssgo/internal/blocks"
	"ompssgo/internal/check"
	"ompssgo/internal/img"
	kern "ompssgo/internal/kernels/bodytrack"
	"ompssgo/internal/media"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	W, H      int
	Frames    int
	Particles int
	Layers    int
	Seed      int64
	Chunk     int // particles per parallel chunk
}

// Default is the harness workload.
func Default() Workload {
	return Workload{W: 128, H: 128, Frames: 12, Particles: 2048, Layers: 3, Seed: 11, Chunk: 64}
}

// Small is the test workload.
func Small() Workload {
	return Workload{W: 64, H: 64, Frames: 3, Particles: 80, Layers: 2, Seed: 11, Chunk: 20}
}

// Instance is a prepared benchmark instance.
type Instance struct {
	W     Workload
	model *kern.Model
	obs   []*img.Gray
	truth [][]float64
}

// New renders the observation sequence from a ground-truth pose walk.
func New(w Workload) *Instance {
	m := kern.DefaultModel(w.W, w.H, w.Particles, w.Layers, w.Seed)
	truth := media.PoseSequence(w.Frames, kern.DOF, w.Seed+1)
	obs := make([]*img.Gray, w.Frames)
	for i, pose := range truth {
		obs[i] = m.RenderSilhouette(pose)
	}
	return &Instance{W: w, model: m, obs: obs, truth: truth}
}

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "bodytrack" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "application" }

// track runs the filter, with weigh phases delegated to `weigh`, which must
// evaluate WeighRange over every chunk and synchronize before returning.
func (in *Instance) track(f *kern.Filter, weigh func(obs *img.Gray)) uint64 {
	estimates := make([]float64, 0, in.W.Frames*kern.DOF)
	for _, obs := range in.obs {
		for layer := 0; layer < in.model.Layers; layer++ {
			weigh(obs)
			f.ResampleAndPerturb(layer)
		}
		weigh(obs)
		estimates = append(estimates, f.Estimate()...)
	}
	return check.Floats(estimates)
}

// RunSeq tracks sequentially over the same chunk structure.
func (in *Instance) RunSeq() uint64 {
	f := kern.NewFilter(in.model)
	ranges := blocks.Ranges(in.W.Particles, in.W.Chunk)
	return in.track(f, func(obs *img.Gray) {
		for _, r := range ranges {
			f.WeighRange(obs, r[0], r[1])
		}
	})
}

// RunPthreads keeps one SPMD team alive; each weigh phase partitions the
// chunks statically and meets a barrier, then thread 0 runs the serial
// filter steps between phases.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	f := kern.NewFilter(in.model)
	api := main.API()
	bar := api.NewBarrier(api.Threads())
	ranges := blocks.Ranges(in.W.Particles, in.W.Chunk)
	chunkCost := in.model.RangeCost(in.W.Chunk)
	var out uint64
	var current *img.Gray // observation being weighed; set by thread 0 between barriers
	main.Parallel(func(t *pthread.Thread) {
		nt := t.API().Threads()
		if t.ID() == 0 {
			// Thread 0 drives the filter; the weigh callback farms the
			// chunks to the team via the shared current-observation slot.
			out = in.track(f, func(obs *img.Gray) {
				current = obs
				t.Barrier(bar) // release the team into the weigh phase
				for i := 0; i < len(ranges); i += nt {
					f.WeighRange(obs, ranges[i][0], ranges[i][1])
					t.Compute(chunkCost)
					t.Touch(&obs.Pix[0], int64(len(obs.Pix)), false)
				}
				t.Barrier(bar) // wait for team completion
			})
			current = nil
			t.Barrier(bar) // final release with nil = done
			return
		}
		for {
			t.Barrier(bar)
			obs := current
			if obs == nil {
				return
			}
			for i := t.ID(); i < len(ranges); i += nt {
				f.WeighRange(obs, ranges[i][0], ranges[i][1])
				t.Compute(chunkCost)
				t.Touch(&obs.Pix[0], int64(len(obs.Pix)), false)
			}
			t.Barrier(bar)
		}
	})
	return out
}

// RunOmpSs spawns one weigh task per chunk per layer and taskwaits before
// the serial resample.
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	f := kern.NewFilter(in.model)
	ranges := blocks.Ranges(in.W.Particles, in.W.Chunk)
	chunkCost := in.model.RangeCost(in.W.Chunk)
	// The per-chunk weight keys recur every frame: register them once.
	weights := make([]*ompss.Datum, len(ranges))
	for i, r := range ranges {
		weights[i] = rt.Register(&f.Weights[r[0]])
	}
	return in.track(f, func(obs *img.Gray) {
		// One handle per observation frame, shared by all chunk tasks.
		obsD := rt.Register(&obs.Pix[0])
		for i, r := range ranges {
			r := r
			rt.Task(func(*ompss.TC) { f.WeighRange(obs, r[0], r[1]) },
				ompss.InSized(obsD, int64(len(obs.Pix))),
				ompss.OutSized(weights[i], int64(8*(r[1]-r[0]))),
				ompss.Cost(chunkCost),
				ompss.Label("weigh"))
		}
		rt.Taskwait()
	})
}
