package bodytrack

import (
	"testing"

	"ompssgo/internal/img"
	kern "ompssgo/internal/kernels/bodytrack"
)

func TestObservationsMatchTruth(t *testing.T) {
	in := New(Small())
	if len(in.obs) != in.W.Frames || len(in.truth) != in.W.Frames {
		t.Fatal("observation/truth length mismatch")
	}
	// The true pose must score near-perfectly against its own silhouette.
	for f, pose := range in.truth {
		if ll := in.model.LogLikelihood(pose, in.obs[f]); ll < 7 {
			t.Fatalf("frame %d: truth likelihood %.2f", f, ll)
		}
	}
}

func TestTrackedErrorBeatsStatic(t *testing.T) {
	in := New(Small())
	f := kern.NewFilter(in.model)
	in.track(f, func(obs *img.Gray) {
		f.WeighRange(obs, 0, len(f.Particles))
	})
	// track already ran the filter; compare the final estimate against
	// the last ground-truth pose vs the zero pose.
	est := f.Estimate()
	last := in.truth[len(in.truth)-1]
	zero := make([]float64, kern.DOF)
	if kern.PoseError(est, last) >= kern.PoseError(zero, last)+0.1 {
		t.Fatalf("tracking (%.3f) much worse than static guess (%.3f)",
			kern.PoseError(est, last), kern.PoseError(zero, last))
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "bodytrack" || in.Class() != "application" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
