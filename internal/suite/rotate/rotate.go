// Package rotate is the rotate benchmark of the suite: bilinear rotation of
// a synthetic image, parallelized over destination row blocks (kernel class;
// paper Table 1 mean 1.01 — a wash, with Pthreads ahead at 32 cores where
// task overhead on the tiny per-row work bites).
package rotate

import (
	"ompssgo/internal/blocks"
	"ompssgo/internal/img"
	kern "ompssgo/internal/kernels/rotate"
	"ompssgo/internal/media"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	W, H     int
	Angle    float64
	Seed     int64
	RowBlock int
}

// Default is the harness workload.
func Default() Workload { return Workload{W: 1024, H: 768, Angle: 0.5, Seed: 4, RowBlock: 16} }

// Small is the test workload.
func Small() Workload { return Workload{W: 96, H: 64, Angle: 0.5, Seed: 4, RowBlock: 8} }

// Instance is a prepared benchmark instance.
type Instance struct {
	W   Workload
	src *img.RGB
}

// New generates the source image.
func New(w Workload) *Instance { return &Instance{W: w, src: media.Image(w.W, w.H, w.Seed)} }

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "rotate" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "kernel" }

// RunSeq rotates sequentially.
func (in *Instance) RunSeq() uint64 {
	dst := img.NewRGB(in.W.W, in.W.H)
	kern.Rotate(dst, in.src, in.W.Angle)
	return dst.Checksum()
}

// RunPthreads rotates with a static interleaved row-block partition.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	dst := img.NewRGB(in.W.W, in.W.H)
	bl := blocks.Ranges(in.W.H, in.W.RowBlock)
	main.Parallel(func(t *pthread.Thread) {
		p := t.API().Threads()
		for b := t.ID(); b < len(bl); b += p {
			lo, hi := bl[b][0], bl[b][1]
			kern.Rows(dst, in.src, in.W.Angle, lo, hi)
			t.Compute(kern.RowsCost((hi - lo) * in.W.W))
			t.Touch(&in.src.Pix[0], int64(3*(hi-lo)*in.W.W), false)
			t.Touch(&dst.Pix[3*lo*in.W.W], int64(3*(hi-lo)*in.W.W), true)
		}
	})
	return dst.Checksum()
}

// RunOmpSs rotates with one task per destination row block. The shared
// source image is a registered data handle: every block task reads it, so
// the handle takes the key hash and shard lookup off each submission.
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	dst := img.NewRGB(in.W.W, in.W.H)
	src := rt.Register(&in.src.Pix[0])
	for _, b := range blocks.Ranges(in.W.H, in.W.RowBlock) {
		lo, hi := b[0], b[1]
		rows := hi - lo
		rt.Task(func(*ompss.TC) { kern.Rows(dst, in.src, in.W.Angle, lo, hi) },
			ompss.InSized(src, int64(3*rows*in.W.W)),
			ompss.OutSized(&dst.Pix[3*lo*in.W.W], int64(3*rows*in.W.W)),
			ompss.Cost(kern.RowsCost(rows*in.W.W)),
			ompss.Label("rotate"))
	}
	rt.Taskwait()
	return dst.Checksum()
}

// LoopUnits returns the flat iteration-space size (destination rows).
func (in *Instance) LoopUnits() int { return in.W.H }

// RunOmpSsLoop rotates as one TaskLoop over destination rows: the chunk
// argument — not the workload's RowBlock — decides task granularity, which
// is what the grain-ablation harness sweeps (chunk == ompss.Auto hands the
// decision to the runtime's grain controller). Simulated compute and
// memory costs are charged per chunk through the task context, since Cost
// clauses cannot vary across a TaskLoop's chunks.
func (in *Instance) RunOmpSsLoop(rt ompss.API, chunk int) uint64 {
	dst := img.NewRGB(in.W.W, in.W.H)
	rt.TaskLoop(in.W.H, chunk, func(tc *ompss.TC, lo, hi int) {
		kern.Rows(dst, in.src, in.W.Angle, lo, hi)
		tc.Compute(kern.RowsCost((hi - lo) * in.W.W))
		tc.Touch(&in.src.Pix[0], int64(3*(hi-lo)*in.W.W), false)
		tc.Touch(&dst.Pix[3*lo*in.W.W], int64(3*(hi-lo)*in.W.W), true)
	}, ompss.Label("rotate"))
	rt.Taskwait()
	return dst.Checksum()
}
