package rotate

import "testing"

func TestRotationChangesImage(t *testing.T) {
	in := New(Small())
	if in.RunSeq() == in.src.Checksum() {
		t.Fatal("rotated output should differ from the source")
	}
}

func TestZeroAngleIdentity(t *testing.T) {
	w := Small()
	w.Angle = 0
	in := New(w)
	if in.RunSeq() != in.src.Checksum() {
		t.Fatal("zero-angle rotation must be the identity")
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "rotate" || in.Class() != "kernel" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
