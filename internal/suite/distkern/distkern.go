// Package distkern adapts suite benchmarks to the distributed execution
// domain: each workload's task bodies become registered kernels
// (dist.RegisterKernel) operating on opaque byte payloads, and a RunX
// driver submits the same task structure RunOmpSs uses against a
// *dist.RT. Checksums are bit-identical to the in-process RunSeq
// reference: images and digests are byte payloads as-is, and kmeans
// encodes float64/int64 values with math.Float64bits round-trips, which
// preserve every bit.
//
// Any binary that drives these workloads (tests, cmd/ompss-bench) must
// import this package in the worker path too — the same import registers
// the kernels in the spawned worker processes, since they re-exec the
// same binary.
package distkern

import (
	"encoding/binary"
	"fmt"
	"math"

	"ompssgo/internal/blocks"
	"ompssgo/internal/check"
	"ompssgo/internal/dist"
	"ompssgo/internal/img"
	colorkern "ompssgo/internal/kernels/color"
	kmkern "ompssgo/internal/kernels/kmeans"
	md5kern "ompssgo/internal/kernels/md5"
	rotkern "ompssgo/internal/kernels/rotate"
	"ompssgo/internal/media"
	"ompssgo/internal/suite/kmeans"
	"ompssgo/internal/suite/md5"
	"ompssgo/internal/suite/rgbcmy"
	"ompssgo/internal/suite/rotate"
)

// ---- wire encoding helpers (little-endian, bit-exact floats) ----

func putU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func getU32(b []byte) (uint32, []byte) { return binary.LittleEndian.Uint32(b), b[4:] }

func putF64(b []byte, v float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(b, tmp[:]...)
}

func encodeFloats(vals []float64) []byte {
	b := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		b = putF64(b, v)
	}
	return b
}

func decodeFloats(b []byte) []float64 {
	vals := make([]float64, len(b)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vals
}

func encodeInts(vals []int) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(int64(v)))
	}
	return b
}

func decodeInts(b []byte) []int {
	vals := make([]int, len(b)/8)
	for i := range vals {
		vals[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return vals
}

// encodePartial lays out a kmeans partial as K×Dim sums, K counts, moved.
func encodePartial(pa *kmkern.Partial) []byte {
	b := make([]byte, 0, 8*(len(pa.Sums)+len(pa.Counts)+1))
	for _, v := range pa.Sums {
		b = putF64(b, v)
	}
	for _, c := range pa.Counts {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(int64(c)))
		b = append(b, tmp[:]...)
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(int64(pa.Moved)))
	return append(b, tmp[:]...)
}

func decodePartial(b []byte, k, dim int) *kmkern.Partial {
	pa := &kmkern.Partial{Sums: decodeFloats(b[:8*k*dim]), Counts: make([]int, k)}
	rest := b[8*k*dim:]
	for i := 0; i < k; i++ {
		pa.Counts[i] = int(int64(binary.LittleEndian.Uint64(rest[8*i:])))
	}
	pa.Moved = int(int64(binary.LittleEndian.Uint64(rest[8*k:])))
	return pa
}

func partialBytes(k, dim int) int64 { return int64(8 * (k*dim + k + 1)) }

// ---- kernel registration ----

func init() {
	// rotate: args = w, h, lo, hi (u32) + angle (f64); in[0] the full
	// source image; out[0] the destination rows [lo, hi).
	dist.RegisterKernel("suite.rotate", func(args []byte, in, out [][]byte) error {
		w, args := getU32(args)
		h, args := getU32(args)
		lo, args := getU32(args)
		hi, args := getU32(args)
		angle := math.Float64frombits(binary.LittleEndian.Uint64(args))
		src := &img.RGB{W: int(w), H: int(h), Pix: in[0]}
		dst := img.NewRGB(int(w), int(h))
		rotkern.Rows(dst, src, angle, int(lo), int(hi))
		copy(out[0], dst.Pix[3*int(lo)*int(w):3*int(hi)*int(w)])
		return nil
	})

	// rgbcmy: args = w, h, lo, hi (u32); in[0] the full source; out[0..2]
	// the C, M, Y plane rows [lo, hi).
	dist.RegisterKernel("suite.rgbcmy", func(args []byte, in, out [][]byte) error {
		w, args := getU32(args)
		h, args := getU32(args)
		lo, args := getU32(args)
		hi, _ := getU32(args)
		src := &img.RGB{W: int(w), H: int(h), Pix: in[0]}
		dst := colorkern.NewCMY(int(w), int(h))
		colorkern.RGBToCMYRows(dst, src, int(lo), int(hi))
		a, b := int(lo)*int(w), int(hi)*int(w)
		copy(out[0], dst.C.Pix[a:b])
		copy(out[1], dst.M.Pix[a:b])
		copy(out[2], dst.Y.Pix[a:b])
		return nil
	})

	// md5: in[0] the buffer; out[0] its 16-byte digest.
	dist.RegisterKernel("suite.md5", func(args []byte, in, out [][]byte) error {
		d := md5kern.Sum(in[0])
		copy(out[0], d[:])
		return nil
	})

	// kmeans-assign: args = k, dim, npts (u32); in[0] centroids, in[1] the
	// chunk's points; out[0] (InOut) the chunk's assignment as int64s,
	// out[1] the encoded partial. Chunk-local indices: arithmetic and
	// accumulation order match AssignRange over the global arrays exactly.
	dist.RegisterKernel("suite.kmeans-assign", func(args []byte, in, out [][]byte) error {
		k, args := getU32(args)
		dim, args := getU32(args)
		npts, _ := getU32(args)
		cent := decodeFloats(in[0])
		prob := &kmkern.Problem{Points: decodeFloats(in[1]), N: int(npts), Dim: int(dim), K: int(k)}
		assign := decodeInts(out[0])
		pa := prob.NewPartial()
		prob.AssignRange(cent, assign, pa, 0, int(npts))
		copy(out[0], encodeInts(assign))
		copy(out[1], encodePartial(pa))
		return nil
	})

	// kmeans-reduce: args = k, dim (u32); in[*] the chunk partials in
	// chunk order; out[0] (InOut) the centroids, out[1] the moved count.
	dist.RegisterKernel("suite.kmeans-reduce", func(args []byte, in, out [][]byte) error {
		k, args := getU32(args)
		dim, _ := getU32(args)
		prob := &kmkern.Problem{Dim: int(dim), K: int(k)}
		merged := prob.NewPartial()
		for _, pb := range in {
			merged.Merge(decodePartial(pb, int(k), int(dim)))
		}
		cent := decodeFloats(out[0])
		moved := prob.UpdateCentroids(cent, merged)
		copy(out[0], encodeFloats(cent))
		binary.LittleEndian.PutUint64(out[1], uint64(int64(moved)))
		return nil
	})
}

// ---- drivers ----

// RunRotate runs the rotate workload on the distributed domain: one task
// per destination row block, all reading the migrated source image.
// Returns the destination checksum (compare against rotate RunSeq).
func RunRotate(rt *dist.RT, w rotate.Workload) (uint64, error) {
	src := media.Image(w.W, w.H, w.Seed)
	srcD := rt.Register(src.Pix)
	bl := blocks.Ranges(w.H, w.RowBlock)
	dstD := make([]*dist.Datum, len(bl))
	for i, b := range bl {
		lo, hi := b[0], b[1]
		args := putU32(putU32(putU32(putU32(nil, uint32(w.W)), uint32(w.H)), uint32(lo)), uint32(hi))
		args = putF64(args, w.Angle)
		dstD[i] = rt.Register(make([]byte, 3*(hi-lo)*w.W))
		rt.Task("suite.rotate", args, dist.In(srcD), dist.Out(dstD[i]))
	}
	if err := rt.Taskwait(); err != nil {
		return 0, err
	}
	dst := img.NewRGB(w.W, w.H)
	for i, b := range bl {
		copy(dst.Pix[3*b[0]*w.W:], rt.Read(dstD[i]))
	}
	return dst.Checksum(), nil
}

// RunRGBCMY runs the rgbcmy workload: Iters rounds of row-block
// conversion tasks with no taskwait between rounds — dependence renaming
// breaks the WAW chains on the output blocks, and the source image stays
// cache-resident on the workers across rounds. Returns the CMY checksum.
func RunRGBCMY(rt *dist.RT, w rgbcmy.Workload) (uint64, error) {
	src := media.Image(w.W, w.H, w.Seed)
	srcD := rt.Register(src.Pix)
	bl := blocks.Ranges(w.H, w.RowBlock)
	type planes struct{ c, m, y *dist.Datum }
	pl := make([]planes, len(bl))
	for i, b := range bl {
		n := (b[1] - b[0]) * w.W
		pl[i] = planes{
			c: rt.Register(make([]byte, n)),
			m: rt.Register(make([]byte, n)),
			y: rt.Register(make([]byte, n)),
		}
	}
	for it := 0; it < w.Iters; it++ {
		for i, b := range bl {
			args := putU32(putU32(putU32(putU32(nil, uint32(w.W)), uint32(w.H)), uint32(b[0])), uint32(b[1]))
			rt.Task("suite.rgbcmy", args,
				dist.In(srcD), dist.Out(pl[i].c), dist.Out(pl[i].m), dist.Out(pl[i].y))
		}
	}
	if err := rt.Taskwait(); err != nil {
		return 0, err
	}
	dst := colorkern.NewCMY(w.W, w.H)
	for i, b := range bl {
		a := b[0] * w.W
		copy(dst.C.Pix[a:], rt.Read(pl[i].c))
		copy(dst.M.Pix[a:], rt.Read(pl[i].m))
		copy(dst.Y.Pix[a:], rt.Read(pl[i].y))
	}
	return dst.Checksum(), nil
}

// RunMD5 runs the md5 workload: one hashing task per migrated buffer.
// Returns the folded digest checksum.
func RunMD5(rt *dist.RT, w md5.Workload) (uint64, error) {
	bufs := media.Buffers(w.NBuf, w.BufSize, w.Seed)
	digD := make([]*dist.Datum, len(bufs))
	for i, b := range bufs {
		bufD := rt.Register(b)
		digD[i] = rt.Register(make([]byte, md5kern.Size))
		rt.Task("suite.md5", nil, dist.In(bufD), dist.Out(digD[i]))
	}
	if err := rt.Taskwait(); err != nil {
		return 0, err
	}
	sums := make([]uint64, len(bufs))
	for i := range bufs {
		sums[i] = check.Bytes(rt.Read(digD[i]))
	}
	return check.Combine(sums), nil
}

// RunKMeans runs the kmeans workload: per iteration, one assignment task
// per point chunk (centroids migrate out, assignment blocks live on the
// workers via InOut version chains) and one reduction task merging the
// partials in chunk order, with a taskwait per Lloyd iteration as
// in-process. Returns check.Floats(centroids) ^ check.Ints(assign).
func RunKMeans(rt *dist.RT, w kmeans.Workload) (uint64, error) {
	pts, _ := media.Points(w.N, w.Dim, w.K, w.Seed)
	prob := &kmkern.Problem{Points: pts, N: w.N, Dim: w.Dim, K: w.K}
	centD := rt.Register(encodeFloats(prob.InitCentroids()))
	movedD := rt.Register(make([]byte, 8))
	ranges := blocks.Ranges(w.N, w.Chunk)

	ptsD := make([]*dist.Datum, len(ranges))
	assignD := make([]*dist.Datum, len(ranges))
	partD := make([]*dist.Datum, len(ranges))
	for c, r := range ranges {
		ptsD[c] = rt.Register(encodeFloats(pts[r[0]*w.Dim : r[1]*w.Dim]))
		init := make([]int, r[1]-r[0])
		for i := range init {
			init[i] = -1
		}
		assignD[c] = rt.Register(encodeInts(init))
		partD[c] = rt.Register(make([]byte, partialBytes(w.K, w.Dim)))
	}

	redArgs := putU32(putU32(nil, uint32(w.K)), uint32(w.Dim))
	for it := 0; it < w.MaxIter; it++ {
		for c, r := range ranges {
			args := putU32(putU32(putU32(nil, uint32(w.K)), uint32(w.Dim)), uint32(r[1]-r[0]))
			rt.Task("suite.kmeans-assign", args,
				dist.In(centD), dist.In(ptsD[c]), dist.InOut(assignD[c]), dist.Out(partD[c]))
		}
		clauses := make([]dist.Clause, 0, len(ranges)+2)
		for c := range ranges {
			clauses = append(clauses, dist.In(partD[c]))
		}
		clauses = append(clauses, dist.InOut(centD), dist.Out(movedD))
		rt.Task("suite.kmeans-reduce", redArgs, clauses...)
		if err := rt.Taskwait(); err != nil {
			return 0, err
		}
		moved := int(int64(binary.LittleEndian.Uint64(rt.Read(movedD))))
		if moved == 0 {
			break
		}
	}

	cent := decodeFloats(rt.Read(centD))
	assign := make([]int, 0, w.N)
	for c := range ranges {
		assign = append(assign, decodeInts(rt.Read(assignD[c]))...)
	}
	return check.Floats(cent) ^ check.Ints(assign), nil
}

// Workloads maps workload names to (driver, sequential-reference) pairs
// at the Small scale — what the dist-smoke CI leg and the tests iterate.
type Workload struct {
	Name string
	Run  func(*dist.RT) (uint64, error)
	Seq  func() uint64
}

// Small returns the test-scale workload set.
func Small() []Workload {
	return []Workload{
		{"rotate",
			func(rt *dist.RT) (uint64, error) { return RunRotate(rt, rotate.Small()) },
			func() uint64 { return rotate.New(rotate.Small()).RunSeq() }},
		{"rgbcmy",
			func(rt *dist.RT) (uint64, error) { return RunRGBCMY(rt, rgbcmy.Small()) },
			func() uint64 { return rgbcmy.New(rgbcmy.Small()).RunSeq() }},
		{"md5",
			func(rt *dist.RT) (uint64, error) { return RunMD5(rt, md5.Small()) },
			func() uint64 { return md5.New(md5.Small()).RunSeq() }},
		{"kmeans",
			func(rt *dist.RT) (uint64, error) { return RunKMeans(rt, kmeans.Small()) },
			func() uint64 { return kmeans.New(kmeans.Small()).RunSeq() }},
	}
}

// Default returns the bench-scale workload set.
func Default() []Workload {
	return []Workload{
		{"rotate",
			func(rt *dist.RT) (uint64, error) { return RunRotate(rt, rotate.Default()) },
			func() uint64 { return rotate.New(rotate.Default()).RunSeq() }},
		{"rgbcmy",
			func(rt *dist.RT) (uint64, error) { return RunRGBCMY(rt, rgbcmy.Default()) },
			func() uint64 { return rgbcmy.New(rgbcmy.Default()).RunSeq() }},
		{"md5",
			func(rt *dist.RT) (uint64, error) { return RunMD5(rt, md5.Default()) },
			func() uint64 { return md5.New(md5.Default()).RunSeq() }},
		{"kmeans",
			func(rt *dist.RT) (uint64, error) { return RunKMeans(rt, kmeans.Default()) },
			func() uint64 { return kmeans.New(kmeans.Default()).RunSeq() }},
	}
}

// Verify runs every workload in ws on rt and checks each checksum against
// its sequential reference, returning a descriptive error on mismatch.
func Verify(rt *dist.RT, ws []Workload) error {
	for _, w := range ws {
		got, err := w.Run(rt)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		if want := w.Seq(); got != want {
			return fmt.Errorf("%s: checksum %#x != sequential reference %#x", w.Name, got, want)
		}
	}
	return nil
}
