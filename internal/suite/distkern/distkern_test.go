package distkern

import (
	"os"
	"testing"

	"ompssgo/internal/dist"
	"ompssgo/internal/suite/rgbcmy"
	"ompssgo/ompss"
)

func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

// TestDistMatchesSequential is the acceptance proof: every adapted suite
// workload, run across two worker processes, produces a checksum
// identical to the in-process sequential reference.
func TestDistMatchesSequential(t *testing.T) {
	for _, w := range Small() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var got uint64
			stats, err := ompss.RunDist(2, func(rt *dist.RT) error {
				var err error
				got, err = w.Run(rt)
				return err
			})
			if err != nil {
				t.Fatalf("RunDist: %v", err)
			}
			if want := w.Seq(); got != want {
				t.Fatalf("checksum %#x, sequential reference %#x", got, want)
			}
			if stats.Tasks == 0 || stats.BytesFromWorkers == 0 {
				t.Fatalf("implausible stats: %+v", stats)
			}
			t.Logf("%s: %d tasks, %d B out, %d B back, %d transfers avoided (%d B)",
				w.Name, stats.Tasks, stats.BytesToWorkers, stats.BytesFromWorkers,
				stats.TransfersAvoided, stats.BytesAvoided)
		})
	}
}

// TestRGBCMYCacheReuse: the source image must migrate to each worker once
// and stay cached across all iterations — the distributed analogue of the
// paper's observation that rgbcmy is dominated by inter-iteration
// overheads, not recomputation.
func TestRGBCMYCacheReuse(t *testing.T) {
	stats, err := ompss.RunDist(2, func(rt *dist.RT) error {
		_, err := RunRGBCMY(rt, rgbcmy.Small())
		return err
	})
	if err != nil {
		t.Fatalf("RunDist: %v", err)
	}
	// Every task after the first on each worker reads the source from its
	// version cache: at most 2 source transfers (one per worker) may miss.
	if stats.TransfersAvoided == 0 {
		t.Fatalf("no cache reuse across iterations: %+v", stats)
	}
	if stats.BytesAvoided <= stats.BytesToWorkers {
		t.Logf("note: avoided %d B vs shipped %d B", stats.BytesAvoided, stats.BytesToWorkers)
	}
}
