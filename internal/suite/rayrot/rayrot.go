// Package rayrot is the ray-rot benchmark of the suite: the c-ray kernel
// renders animation frames and the rotate kernel produces several rotated
// views of each (workload class). The paper credits OmpSs's lead here
// (Table 1 mean 1.27, peaking at 1.65 on 16 cores) to locality-aware
// scheduling: dependent render→rotate task chains run back-to-back on the
// producing core and read warm data, dodging the saturated memory system,
// while the phase-structured Pthreads variant separates the stages with a
// barrier, by which time the producer's frames have cooled (and every
// rotation streams from contended DRAM).
package rayrot

import (
	"ompssgo/internal/check"
	"ompssgo/internal/img"
	kcray "ompssgo/internal/kernels/cray"
	krot "ompssgo/internal/kernels/rotate"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	Frames  int
	Rots    int // rotated views produced per rendered frame
	W, H    int
	Spheres int
	Angle   float64 // rotation step between views
	Seed    int64
}

// Default is the harness workload: render cost and total rotation cost are
// of the same order, as in the original benchmark pairing.
func Default() Workload {
	return Workload{Frames: 36, Rots: 12, W: 96, H: 72, Spheres: 4, Angle: 0.25, Seed: 8}
}

// Small is the test workload.
func Small() Workload {
	return Workload{Frames: 4, Rots: 3, W: 48, H: 32, Spheres: 4, Angle: 0.25, Seed: 8}
}

// Instance is a prepared benchmark instance.
type Instance struct {
	W      Workload
	scenes []*kcray.Scene
}

// New generates one scene per frame (a camera sweep).
func New(w Workload) *Instance {
	in := &Instance{W: w}
	for f := 0; f < w.Frames; f++ {
		in.scenes = append(in.scenes, kcray.GenScene(w.Spheres, w.Seed+int64(f)))
	}
	return in
}

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "ray-rot" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "workload" }

func (in *Instance) frameBytes() int64 { return int64(3 * in.W.W * in.W.H) }

// rotReadBytes is the rotate kernel's declared input traffic: the diagonal
// walk of inverse mapping touches cache lines with poor spatial locality, so
// effective traffic is about twice the frame size.
func (in *Instance) rotReadBytes() int64 { return 2 * in.frameBytes() }

func (in *Instance) fold(rot []*img.RGB) uint64 {
	sums := make([]uint64, len(rot))
	for i, im := range rot {
		sums[i] = im.Checksum()
	}
	return check.Combine(sums)
}

func (in *Instance) newFrames() (src, rot []*img.RGB) {
	src = make([]*img.RGB, in.W.Frames)
	rot = make([]*img.RGB, in.W.Frames*in.W.Rots)
	for f := range src {
		src[f] = img.NewRGB(in.W.W, in.W.H)
	}
	for i := range rot {
		rot[i] = img.NewRGB(in.W.W, in.W.H)
	}
	return src, rot
}

func (in *Instance) angle(j int) float64 { return in.W.Angle * float64(j+1) }

// RunSeq renders each frame, then produces its rotated views, in order.
func (in *Instance) RunSeq() uint64 {
	src, rot := in.newFrames()
	for f := 0; f < in.W.Frames; f++ {
		in.scenes[f].Render(src[f])
		for j := 0; j < in.W.Rots; j++ {
			krot.Rotate(rot[f*in.W.Rots+j], src[f], in.angle(j))
		}
	}
	return in.fold(rot)
}

// RunPthreads runs the two kernels as separate data-parallel phases over
// the frame set, separated by a barrier (the PARSEC-style structure the
// paper's Pthreads variant uses): first all renders, then all rotations.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	src, rot := in.newFrames()
	api := main.API()
	bar := api.NewBarrier(api.Threads())
	main.Parallel(func(t *pthread.Thread) {
		p := t.API().Threads()
		for f := t.ID(); f < in.W.Frames; f += p {
			in.scenes[f].Render(src[f])
			t.Compute(kcray.RowsCost(in.W.W*in.W.H, in.W.Spheres))
			t.Touch(&src[f].Pix[0], in.frameBytes(), true)
		}
		t.Barrier(bar)
		for i := t.ID(); i < len(rot); i += p {
			f, j := i/in.W.Rots, i%in.W.Rots
			krot.Rotate(rot[i], src[f], in.angle(j))
			t.Compute(krot.RowsCost(in.W.W * in.W.H))
			t.Touch(&src[f].Pix[0], in.rotReadBytes(), false)
			t.Touch(&rot[i].Pix[0], in.frameBytes(), true)
		}
	})
	return in.fold(rot)
}

// RunOmpSs spawns a render task per frame and its dependent rotate tasks;
// the runtime's locality policy chains the consumers onto the producer's
// core while the frame is still cache-resident.
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	src, rot := in.newFrames()
	for f := 0; f < in.W.Frames; f++ {
		f := f
		// One registered handle per source frame: the producing render and
		// its Rots consumers all submit through it.
		frame := rt.Register(&src[f].Pix[0])
		// Affinity pins each frame's chain near the frame's home lane: the
		// render is mailed there at submission, and its rotates — released
		// when the render finishes — either chain on the producing core
		// (locality policy) or return to the frame's home (affinity policy
		// with locality off), so the chain reads warm data either way.
		rt.Task(func(*ompss.TC) { in.scenes[f].Render(src[f]) },
			ompss.OutSized(frame, in.frameBytes()),
			ompss.Cost(kcray.RowsCost(in.W.W*in.W.H, in.W.Spheres)),
			ompss.Affinity(frame),
			ompss.Label("render"))
		for j := 0; j < in.W.Rots; j++ {
			j := j
			i := f*in.W.Rots + j
			rt.Task(func(*ompss.TC) { krot.Rotate(rot[i], src[f], in.angle(j)) },
				ompss.InSized(frame, in.rotReadBytes()),
				ompss.OutSized(&rot[i].Pix[0], in.frameBytes()),
				ompss.Cost(krot.RowsCost(in.W.W*in.W.H)),
				ompss.Affinity(frame),
				ompss.Label("rotate"))
		}
	}
	rt.Taskwait()
	return in.fold(rot)
}
