package rayrot

import "testing"

func TestScenesDifferPerFrame(t *testing.T) {
	in := New(Small())
	if len(in.scenes) != in.W.Frames {
		t.Fatalf("scenes = %d", len(in.scenes))
	}
	// Different seeds per frame: at least spheres must differ.
	a, b := in.scenes[0].Spheres, in.scenes[1].Spheres
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("frames should render distinct scenes")
	}
}

func TestOutputCountsAndDeterminism(t *testing.T) {
	in := New(Small())
	if got := in.RunSeq(); got != New(Small()).RunSeq() {
		t.Fatal("not deterministic")
	}
	_, rot := in.newFrames()
	if len(rot) != in.W.Frames*in.W.Rots {
		t.Fatalf("rotated outputs = %d, want %d", len(rot), in.W.Frames*in.W.Rots)
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "ray-rot" || in.Class() != "workload" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
