package suite

import (
	"runtime"
	"testing"

	"ompssgo/ompss"
	"ompssgo/pthread"
)

// goldenSmall pins the result checksum of every benchmark's Small instance,
// computed once from the sequential reference (see TestGoldenMatchesSeq).
// TestAllVariantsComputeIdenticalResults already checks that all variants
// agree with RunSeq *at runtime*; the golden table additionally detects the
// failure mode where a change corrupts the sequential reference itself (or
// corrupts data identically in every variant) — then all variants still
// agree with each other and only a checked-in constant fails loudly.
//
// The kernels do float64 math, so the constants are pinned per architecture
// family: Go evaluates IEEE-754 operations exactly, but architectures with
// fused multiply-add may contract expressions differently. The values below
// were produced on amd64 (the CI architecture); other GOARCHes skip.
var goldenSmall = map[string]uint64{
	"c-ray":         0x2c647efd82d4094b,
	"rotate":        0x4fb014c39194b520,
	"rgbcmy":        0x94dfc188964046a9,
	"md5":           0xb4e80f66c7abd17e,
	"kmeans":        0x0b04afdfd2e34e5e,
	"ray-rot":       0x61c999bff6540303,
	"rot-cc":        0x3bb7fa02b0196635,
	"streamcluster": 0xcc7aa802860fbd1f,
	"bodytrack":     0x4304430f170721cd,
	"h264dec":       0x7609aac59dfab851,
}

func skipUnlessGoldenArch(t *testing.T) {
	t.Helper()
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden checksums are pinned for amd64; GOARCH=%s may contract FP differently", runtime.GOARCH)
	}
}

// TestGoldenMatchesSeq checks the sequential reference of every benchmark
// against its checked-in checksum.
func TestGoldenMatchesSeq(t *testing.T) {
	skipUnlessGoldenArch(t)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			in, err := New(name, Small)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := goldenSmall[name]
			if !ok {
				t.Fatalf("no golden checksum recorded for %q — add it", name)
			}
			if got := in.RunSeq(); got != want {
				t.Errorf("sequential %s = %#016x, golden %#016x", name, got, want)
			}
		})
	}
}

// TestGoldenSurvivesSchedulingPolicies runs every benchmark's OmpSs variant
// natively under each scheduling-policy configuration and checks the result
// against the golden checksum: a policy change that corrupts data — not
// just reorders it — fails against a constant, not against a possibly
// equally-corrupted reference rerun.
func TestGoldenSurvivesSchedulingPolicies(t *testing.T) {
	skipUnlessGoldenArch(t)
	policies := []struct {
		name string
		opts []ompss.Option
	}{
		{"default", nil},
		{"fifo", []ompss.Option{ompss.Locality(false), ompss.AffinitySched(false)}},
		{"domains2", []ompss.Option{ompss.Domains(2)}},
		{"blocking-affinity", []ompss.Option{ompss.Wait(ompss.Blocking), ompss.Domains(2)}},
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			want := goldenSmall[name]
			for _, pol := range policies {
				in, err := New(name, Small)
				if err != nil {
					t.Fatal(err)
				}
				rt := ompss.New(append([]ompss.Option{ompss.Workers(3)}, pol.opts...)...)
				got := in.RunOmpSs(rt)
				rt.Shutdown()
				if got != want {
					t.Errorf("ompss/%s %s = %#016x, golden %#016x", pol.name, name, got, want)
				}
			}
		})
	}
}

// TestGoldenPthreads pins the Pthreads variant against the same table, so
// the manual-threading baseline cannot silently drift either.
func TestGoldenPthreads(t *testing.T) {
	skipUnlessGoldenArch(t)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			in, err := New(name, Small)
			if err != nil {
				t.Fatal(err)
			}
			api := pthread.Native(3)
			if got := in.RunPthreads(api.Main()); got != goldenSmall[name] {
				t.Errorf("pthreads %s = %#016x, golden %#016x", name, got, goldenSmall[name])
			}
		})
	}
}
