package suite

import (
	"runtime"
	"testing"

	"ompssgo/ompss"
	"ompssgo/pthread"
)

// goldenSmall pins the result checksum of every benchmark's Small instance,
// computed once from the sequential reference (see TestGoldenMatchesSeq).
// TestAllVariantsComputeIdenticalResults already checks that all variants
// agree with RunSeq *at runtime*; the golden table additionally detects the
// failure mode where a change corrupts the sequential reference itself (or
// corrupts data identically in every variant) — then all variants still
// agree with each other and only a checked-in constant fails loudly.
//
// The kernels do float64 math, so the constants are pinned per architecture
// family: Go evaluates IEEE-754 operations exactly, but architectures with
// fused multiply-add (e.g. arm64, the macos-latest CI leg) may contract
// expressions differently. Checksums live in a per-GOARCH table; an
// architecture without a recorded table skips with instructions instead of
// failing, so the CI matrix stays green while the runtime-level
// cross-variant checks (TestAllVariantsComputeIdenticalResults) still run
// everywhere.
var goldenByArch = map[string]map[string]uint64{
	"amd64": {
		"c-ray":         0x2c647efd82d4094b,
		"rotate":        0x4fb014c39194b520,
		"rgbcmy":        0x94dfc188964046a9,
		"md5":           0xb4e80f66c7abd17e,
		"kmeans":        0x0b04afdfd2e34e5e,
		"ray-rot":       0x61c999bff6540303,
		"rot-cc":        0x3bb7fa02b0196635,
		"streamcluster": 0xcc7aa802860fbd1f,
		"bodytrack":     0x4304430f170721cd,
		"h264dec":       0x7609aac59dfab851,
	},
}

// goldenSmall returns this architecture's checksum table, or skips the
// test with an explicit message when none is recorded.
func goldenSmall(t *testing.T) map[string]uint64 {
	t.Helper()
	tab, ok := goldenByArch[runtime.GOARCH]
	if !ok {
		t.Skipf("no golden checksum table recorded for GOARCH=%s (FMA contraction can change "+
			"float64 results per architecture); to pin this architecture, print RunSeq() for each "+
			"suite.Names() instance at suite.Small and add a table to goldenByArch", runtime.GOARCH)
	}
	return tab
}

// TestGoldenMatchesSeq checks the sequential reference of every benchmark
// against its checked-in checksum.
func TestGoldenMatchesSeq(t *testing.T) {
	golden := goldenSmall(t)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			in, err := New(name, Small)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := golden[name]
			if !ok {
				t.Fatalf("no golden checksum recorded for %q — add it", name)
			}
			if got := in.RunSeq(); got != want {
				t.Errorf("sequential %s = %#016x, golden %#016x", name, got, want)
			}
		})
	}
}

// TestGoldenSurvivesSchedulingPolicies runs every benchmark's OmpSs variant
// natively under each scheduling-policy configuration and checks the result
// against the golden checksum: a policy change that corrupts data — not
// just reorders it — fails against a constant, not against a possibly
// equally-corrupted reference rerun.
func TestGoldenSurvivesSchedulingPolicies(t *testing.T) {
	golden := goldenSmall(t)
	policies := []struct {
		name string
		opts []ompss.Option
	}{
		{"default", nil},
		{"fifo", []ompss.Option{ompss.Locality(false), ompss.AffinitySched(false)}},
		{"domains2", []ompss.Option{ompss.Domains(2)}},
		{"blocking-affinity", []ompss.Option{ompss.Wait(ompss.Blocking), ompss.Domains(2)}},
		// Dependence renaming on: the suite's datums never call
		// EnableRenaming, so the knob must be behaviorally invisible here —
		// identical checksums with renaming on and off is an acceptance
		// criterion of the renaming work (the renameable-datum paths are
		// value-checked by ompss/rename_test.go and the fuzz battery).
		{"renaming", []ompss.Option{ompss.WithRenaming(true)}},
		{"renaming-fifo", []ompss.Option{ompss.WithRenaming(true), ompss.Locality(false), ompss.AffinitySched(false)}},
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			want := golden[name]
			for _, pol := range policies {
				in, err := New(name, Small)
				if err != nil {
					t.Fatal(err)
				}
				rt := ompss.New(append([]ompss.Option{ompss.Workers(3)}, pol.opts...)...)
				got := in.RunOmpSs(rt)
				rt.Shutdown()
				if got != want {
					t.Errorf("ompss/%s %s = %#016x, golden %#016x", pol.name, name, got, want)
				}
			}
		})
	}
}

// TestGoldenPthreads pins the Pthreads variant against the same table, so
// the manual-threading baseline cannot silently drift either.
func TestGoldenPthreads(t *testing.T) {
	golden := goldenSmall(t)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			in, err := New(name, Small)
			if err != nil {
				t.Fatal(err)
			}
			api := pthread.Native(3)
			if got := in.RunPthreads(api.Main()); got != golden[name] {
				t.Errorf("pthreads %s = %#016x, golden %#016x", name, got, golden[name])
			}
		})
	}
}
