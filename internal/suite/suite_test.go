package suite

import (
	"testing"

	"ompssgo/machine"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// TestAllVariantsComputeIdenticalResults is the suite's central contract:
// for every benchmark, the sequential, Pthreads, and OmpSs variants — native
// and simulated, across thread counts — produce bit-identical results.
func TestAllVariantsComputeIdenticalResults(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			in, err := New(name, Small)
			if err != nil {
				t.Fatal(err)
			}
			want := in.RunSeq()

			for _, threads := range []int{1, 3} {
				api := pthread.Native(threads)
				if got := in.RunPthreads(api.Main()); got != want {
					t.Errorf("native pthreads(%d) = %#x, want %#x", threads, got, want)
				}
			}
			for _, workers := range []int{1, 3} {
				rt := ompss.New(ompss.Workers(workers))
				got := in.RunOmpSs(rt)
				rt.Shutdown()
				if got != want {
					t.Errorf("native ompss(%d) = %#x, want %#x", workers, got, want)
				}
			}

			var simP uint64
			if _, err := pthread.RunSim(machine.Paper(4), 4, func(m *pthread.Thread) {
				simP = in.RunPthreads(m)
			}); err != nil {
				t.Fatalf("sim pthreads: %v", err)
			}
			if simP != want {
				t.Errorf("sim pthreads = %#x, want %#x", simP, want)
			}

			var simO uint64
			if _, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
				simO = in.RunOmpSs(rt)
			}); err != nil {
				t.Fatalf("sim ompss: %v", err)
			}
			if simO != want {
				t.Errorf("sim ompss = %#x, want %#x", simO, want)
			}
		})
	}
}

// TestSeqDeterministic double-runs the sequential variants.
func TestSeqDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name, Small)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := New(name, Small)
		if a.RunSeq() != b.RunSeq() {
			t.Errorf("%s: sequential variant not deterministic", name)
		}
	}
}

// TestSimMakespansPositive sanity-checks that simulated runs accumulate
// virtual time in both models.
func TestSimMakespansPositive(t *testing.T) {
	in, err := New("c-ray", Small)
	if err != nil {
		t.Fatal(err)
	}
	stP, err := pthread.RunSim(machine.Paper(8), 8, func(m *pthread.Thread) { in.RunPthreads(m) })
	if err != nil {
		t.Fatal(err)
	}
	stO, err := ompss.RunSim(machine.Paper(8), func(rt *ompss.Runtime) { in.RunOmpSs(rt) })
	if err != nil {
		t.Fatal(err)
	}
	if stP.Makespan <= 0 || stO.Makespan <= 0 {
		t.Fatalf("zero makespans: pthreads %v, ompss %v", stP.Makespan, stO.Makespan)
	}
	if stO.Tasks == 0 {
		t.Fatal("ompss sim executed no tasks")
	}
}

// TestClassesMatchPaper pins the benchmark classification table.
func TestClassesMatchPaper(t *testing.T) {
	want := map[string]string{
		"c-ray": "kernel", "rotate": "kernel", "rgbcmy": "kernel", "md5": "kernel",
		"kmeans": "workload", "ray-rot": "workload", "rot-cc": "workload",
		"streamcluster": "application", "bodytrack": "application", "h264dec": "application",
	}
	for _, in := range All(Small) {
		if in.Class() != want[in.Name()] {
			t.Errorf("%s classified %s, want %s", in.Name(), in.Class(), want[in.Name()])
		}
	}
}
