package md5

import (
	cryptomd5 "crypto/md5"
	"testing"

	"ompssgo/internal/check"
	kern "ompssgo/internal/kernels/md5"
	"ompssgo/internal/media"
)

func TestSuiteDigestsMatchStdlib(t *testing.T) {
	// The suite's result checksum must be reproducible from crypto/md5
	// over the same generated buffers — pinning both the generator and
	// the kernel.
	w := Small()
	in := New(w)
	bufs := media.Buffers(w.NBuf, w.BufSize, w.Seed)
	sums := make([]uint64, len(bufs))
	for i, b := range bufs {
		d := cryptomd5.Sum(b)
		sums[i] = check.Bytes(d[:])
	}
	if in.RunSeq() != check.Combine(sums) {
		t.Fatal("suite digests diverge from crypto/md5 over the same inputs")
	}
}

func TestKernelAgreesPerBuffer(t *testing.T) {
	for _, b := range media.Buffers(4, 1000, 3) {
		if kern.Sum(b) != cryptomd5.Sum(b) {
			t.Fatal("kernel digest mismatch")
		}
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "md5" || in.Class() != "kernel" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
