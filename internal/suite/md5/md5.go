// Package md5 is the md5 benchmark of the suite: hashing a set of
// independent buffers, one buffer per unit of parallelism (kernel class;
// paper Table 1 mean 1.06).
package md5

import (
	"ompssgo/internal/check"
	kern "ompssgo/internal/kernels/md5"
	"ompssgo/internal/media"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	NBuf    int
	BufSize int
	Seed    int64
}

// Default is the harness workload.
func Default() Workload { return Workload{NBuf: 96, BufSize: 256 << 10, Seed: 6} }

// Small is the test workload.
func Small() Workload { return Workload{NBuf: 12, BufSize: 8 << 10, Seed: 6} }

// Instance is a prepared benchmark instance.
type Instance struct {
	W    Workload
	bufs [][]byte
}

// New generates the input buffers.
func New(w Workload) *Instance {
	return &Instance{W: w, bufs: media.Buffers(w.NBuf, w.BufSize, w.Seed)}
}

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "md5" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "kernel" }

func (in *Instance) fold(digests [][kern.Size]byte) uint64 {
	sums := make([]uint64, len(digests))
	for i := range digests {
		sums[i] = check.Bytes(digests[i][:])
	}
	return check.Combine(sums)
}

// RunSeq hashes all buffers in order.
func (in *Instance) RunSeq() uint64 {
	digests := make([][kern.Size]byte, len(in.bufs))
	for i, b := range in.bufs {
		digests[i] = kern.Sum(b)
	}
	return in.fold(digests)
}

// RunPthreads hashes with a static interleaved buffer partition.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	digests := make([][kern.Size]byte, len(in.bufs))
	main.Parallel(func(t *pthread.Thread) {
		p := t.API().Threads()
		for i := t.ID(); i < len(in.bufs); i += p {
			digests[i] = kern.Sum(in.bufs[i])
			t.Compute(kern.BufferCost(len(in.bufs[i])))
			t.Touch(&in.bufs[i][0], int64(len(in.bufs[i])), false)
		}
	})
	return in.fold(digests)
}

// RunOmpSs hashes with one task per buffer.
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	digests := make([][kern.Size]byte, len(in.bufs))
	for i := range in.bufs {
		i := i
		rt.Task(func(*ompss.TC) { digests[i] = kern.Sum(in.bufs[i]) },
			ompss.InSized(&in.bufs[i][0], int64(len(in.bufs[i]))),
			ompss.OutSized(&digests[i], int64(kern.Size)),
			ompss.Cost(kern.BufferCost(len(in.bufs[i]))),
			ompss.Label("md5"))
	}
	rt.Taskwait()
	return in.fold(digests)
}

// LoopUnits returns the flat iteration-space size (buffer count).
func (in *Instance) LoopUnits() int { return in.W.NBuf }

// RunOmpSsLoop hashes as one TaskLoop over the buffer set; the chunk
// argument decides how many buffers one task hashes (ompss.Auto defers to
// the grain controller). Simulated costs are charged per buffer through
// the task context.
func (in *Instance) RunOmpSsLoop(rt ompss.API, chunk int) uint64 {
	digests := make([][kern.Size]byte, len(in.bufs))
	rt.TaskLoop(len(in.bufs), chunk, func(tc *ompss.TC, lo, hi int) {
		for i := lo; i < hi; i++ {
			digests[i] = kern.Sum(in.bufs[i])
			tc.Compute(kern.BufferCost(len(in.bufs[i])))
			tc.Touch(&in.bufs[i][0], int64(len(in.bufs[i])), false)
		}
	}, ompss.Label("md5"))
	rt.Taskwait()
	return in.fold(digests)
}
