package cray

import (
	"testing"
	"time"

	"ompssgo/internal/blocks"
)

func TestBlockCostsAreHeterogeneous(t *testing.T) {
	in := New(Default())
	bl := blocks.Ranges(in.W.H, in.W.RowBlock)
	var min, max time.Duration
	for i, b := range bl {
		c := in.blockCost(b[0], b[1])
		if c <= 0 {
			t.Fatalf("non-positive block cost %v", c)
		}
		if i == 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// Rows over sphere projections must cost measurably more than sky
	// rows — the imbalance that static partitions cannot absorb.
	if float64(max) < 1.2*float64(min) {
		t.Fatalf("block costs too uniform: min %v, max %v", min, max)
	}
}

func TestSeqMatchesAcrossScales(t *testing.T) {
	// Same workload, two instances: identical output.
	a, b := New(Small()), New(Small())
	if a.RunSeq() != b.RunSeq() {
		t.Fatal("instance construction must be deterministic")
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "c-ray" || in.Class() != "kernel" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
