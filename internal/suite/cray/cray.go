// Package cray is the c-ray benchmark of the suite: ray tracing a
// procedural sphere scene, parallelized over row blocks. Classified as a
// kernel in the paper's Table 1 (mean OmpSs/Pthreads speedup 1.10 — OmpSs
// slightly ahead thanks to cheap task dispatch vs. thread create/join).
package cray

import (
	"time"

	"ompssgo/internal/blocks"
	"ompssgo/internal/img"
	kern "ompssgo/internal/kernels/cray"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	W, H     int
	Spheres  int
	Seed     int64
	RowBlock int // rows per task / per partition grain
}

// Default is the harness workload (sized so one run is milliseconds of
// virtual time, like the paper's kernels). RowBlock is small enough that
// blocks comfortably outnumber 32 threads.
func Default() Workload { return Workload{W: 256, H: 192, Spheres: 24, Seed: 3, RowBlock: 4} }

// Small is the test workload.
func Small() Workload { return Workload{W: 64, H: 48, Spheres: 8, Seed: 3, RowBlock: 8} }

// Instance is a prepared benchmark instance (immutable inputs; safe to run
// repeatedly).
type Instance struct {
	W     Workload
	scene *kern.Scene
}

// New prepares the scene.
func New(w Workload) *Instance {
	return &Instance{W: w, scene: kern.GenScene(w.Spheres, w.Seed)}
}

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "c-ray" }

// Class returns the paper's benchmark classification.
func (in *Instance) Class() string { return "kernel" }

// blockCost models the heterogeneous per-block work: rows covered by sphere
// projections pay extra shading and reflections, which is what makes static
// partitions imbalanced.
func (in *Instance) blockCost(lo, hi int) time.Duration {
	return in.scene.BlockCost(lo, hi, in.W.W, in.W.H)
}

// RunSeq renders sequentially and returns the output checksum.
func (in *Instance) RunSeq() uint64 {
	im := img.NewRGB(in.W.W, in.W.H)
	in.scene.Render(im)
	return im.Checksum()
}

// RunPthreads renders with a static interleaved row-block partition across
// the thread team (create/compute/join). Static assignment cannot react to
// the uneven per-block costs.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	im := img.NewRGB(in.W.W, in.W.H)
	bl := blocks.Ranges(in.W.H, in.W.RowBlock)
	main.Parallel(func(t *pthread.Thread) {
		p := t.API().Threads()
		for b := t.ID(); b < len(bl); b += p {
			lo, hi := bl[b][0], bl[b][1]
			in.scene.RenderRows(im, lo, hi)
			t.Compute(in.blockCost(lo, hi))
			t.Touch(&im.Pix[3*lo*in.W.W], int64(3*(hi-lo)*in.W.W), true)
		}
	})
	return im.Checksum()
}

// RunOmpSs renders with one task per row block; the runtime's queues and
// stealing balance the uneven blocks dynamically.
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	im := img.NewRGB(in.W.W, in.W.H)
	for _, b := range blocks.Ranges(in.W.H, in.W.RowBlock) {
		lo, hi := b[0], b[1]
		rt.Task(func(*ompss.TC) { in.scene.RenderRows(im, lo, hi) },
			ompss.OutSized(&im.Pix[3*lo*in.W.W], int64(3*(hi-lo)*in.W.W)),
			ompss.Cost(in.blockCost(lo, hi)),
			ompss.Label("render"))
	}
	rt.Taskwait()
	return im.Checksum()
}

// LoopUnits returns the flat iteration-space size (image rows).
func (in *Instance) LoopUnits() int { return in.W.H }

// RunOmpSsLoop renders as one TaskLoop over image rows; the chunk argument
// decides granularity (ompss.Auto defers to the grain controller). The
// heterogeneous per-block cost is charged through the task context, since
// a Cost clause cannot vary across a TaskLoop's chunks.
func (in *Instance) RunOmpSsLoop(rt ompss.API, chunk int) uint64 {
	im := img.NewRGB(in.W.W, in.W.H)
	rt.TaskLoop(in.W.H, chunk, func(tc *ompss.TC, lo, hi int) {
		in.scene.RenderRows(im, lo, hi)
		tc.Compute(in.blockCost(lo, hi))
		tc.Touch(&im.Pix[3*lo*in.W.W], int64(3*(hi-lo)*in.W.W), true)
	}, ompss.Label("render"))
	rt.Taskwait()
	return im.Checksum()
}
