// Package suite assembles the paper's 10-benchmark evaluation suite. Every
// benchmark exposes the same three variants — sequential, Pthreads, OmpSs —
// which compute bit-identical results over identical seeded inputs, exactly
// as the paper's methodology requires ("for comparability the Pthreads and
// OmpSs variants exploit the same parallelism").
package suite

import (
	"fmt"

	"ompssgo/ompss"
	"ompssgo/pthread"

	sbodytrack "ompssgo/internal/suite/bodytrack"
	scray "ompssgo/internal/suite/cray"
	sh264dec "ompssgo/internal/suite/h264dec"
	skmeans "ompssgo/internal/suite/kmeans"
	smd5 "ompssgo/internal/suite/md5"
	srayrot "ompssgo/internal/suite/rayrot"
	srgbcmy "ompssgo/internal/suite/rgbcmy"
	srotate "ompssgo/internal/suite/rotate"
	srotcc "ompssgo/internal/suite/rotcc"
	sstreamcluster "ompssgo/internal/suite/streamcluster"
)

// Instance is one prepared benchmark: immutable inputs, three runnable
// variants returning a result checksum.
type Instance interface {
	// Name is the Table 1 row label.
	Name() string
	// Class is the paper's classification: kernel, workload, or
	// application.
	Class() string
	// RunSeq runs the sequential reference.
	RunSeq() uint64
	// RunPthreads runs the manual-threading variant on the given main
	// thread (native or simulated).
	RunPthreads(*pthread.Thread) uint64
	// RunOmpSs runs the task-dataflow variant on the given runtime
	// surface (native or simulated). Taking the ompss.API interface — not
	// *ompss.Runtime — lets one kernel run against a whole runtime or a
	// request-scoped *ompss.Session unchanged; cmd/ompss-serve executes
	// each HTTP request's kernel inside its own session this way.
	RunOmpSs(ompss.API) uint64
}

// LoopInstance is the optional flat-loop surface of a benchmark: the same
// computation as RunOmpSs, but expressed as one TaskLoop over a flat
// iteration space so chunking is the runtime's decision rather than the
// benchmark's. It is the grain-ablation surface — RunOmpSsLoop with a
// static chunk sweeps the granularity axis, and chunk == ompss.Auto hands
// the choice to the grain controller (WithTuning(Tuning{Grain: Auto})).
// Results are bit-identical to RunSeq/RunOmpSs for every chunk.
type LoopInstance interface {
	Instance
	// LoopUnits returns the iteration-space size of the loop variant
	// (rows, buffers, ...).
	LoopUnits() int
	// RunOmpSsLoop runs the task-dataflow variant as a single TaskLoop of
	// LoopUnits iterations with the given chunk size.
	RunOmpSsLoop(rt ompss.API, chunk int) uint64
}

// Scale selects workload sizing.
type Scale int

const (
	// Small sizes workloads for fast tests.
	Small Scale = iota
	// Default sizes workloads for the Table 1 harness.
	Default
)

// Names lists the suite in the paper's Table 1 order.
func Names() []string {
	return []string{"c-ray", "rotate", "rgbcmy", "md5", "kmeans",
		"ray-rot", "rot-cc", "streamcluster", "bodytrack", "h264dec"}
}

// New prepares the named benchmark at the given scale.
func New(name string, s Scale) (Instance, error) {
	small := s == Small
	switch name {
	case "c-ray":
		if small {
			return scray.New(scray.Small()), nil
		}
		return scray.New(scray.Default()), nil
	case "rotate":
		if small {
			return srotate.New(srotate.Small()), nil
		}
		return srotate.New(srotate.Default()), nil
	case "rgbcmy":
		if small {
			return srgbcmy.New(srgbcmy.Small()), nil
		}
		return srgbcmy.New(srgbcmy.Default()), nil
	case "md5":
		if small {
			return smd5.New(smd5.Small()), nil
		}
		return smd5.New(smd5.Default()), nil
	case "kmeans":
		if small {
			return skmeans.New(skmeans.Small()), nil
		}
		return skmeans.New(skmeans.Default()), nil
	case "ray-rot":
		if small {
			return srayrot.New(srayrot.Small()), nil
		}
		return srayrot.New(srayrot.Default()), nil
	case "rot-cc":
		if small {
			return srotcc.New(srotcc.Small()), nil
		}
		return srotcc.New(srotcc.Default()), nil
	case "streamcluster":
		if small {
			return sstreamcluster.New(sstreamcluster.Small()), nil
		}
		return sstreamcluster.New(sstreamcluster.Default()), nil
	case "bodytrack":
		if small {
			return sbodytrack.New(sbodytrack.Small()), nil
		}
		return sbodytrack.New(sbodytrack.Default()), nil
	case "h264dec":
		if small {
			return sh264dec.New(sh264dec.Small()), nil
		}
		return sh264dec.New(sh264dec.Default()), nil
	}
	return nil, fmt.Errorf("suite: unknown benchmark %q", name)
}

// All prepares the whole suite in Table 1 order.
func All(s Scale) []Instance {
	var out []Instance
	for _, name := range Names() {
		in, err := New(name, s)
		if err != nil {
			panic(err)
		}
		out = append(out, in)
	}
	return out
}
