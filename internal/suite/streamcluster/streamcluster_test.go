package streamcluster

import "testing"

func TestSolutionOpensFacilities(t *testing.T) {
	in := New(Small())
	p := in.problem()
	s := p.NewState()
	for s.Limit < p.N {
		s.AbsorbChunk()
	}
	if len(s.Open) < 2 {
		t.Fatalf("only %d facilities for clustered data", len(s.Open))
	}
	if s.TotalCost() <= 0 {
		t.Fatal("non-positive solution cost")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	if New(Small()).RunSeq() != New(Small()).RunSeq() {
		t.Fatal("sequential run not deterministic")
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "streamcluster" || in.Class() != "application" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
