// Package streamcluster is the streamcluster benchmark of the suite:
// online k-median over a point stream, with candidate-gain evaluations
// parallelized over fixed point chunks and a synchronization point per
// candidate (application class). The many short rounds make it
// synchronization-bound; the paper's Table 1 has Pthreads slightly ahead
// (mean 0.93) — the OmpSs master respawns tasks every round, while the
// SPMD Pthreads team just re-loops through barriers.
package streamcluster

import (
	"ompssgo/internal/blocks"
	"ompssgo/internal/check"
	kern "ompssgo/internal/kernels/streamcluster"
	"ompssgo/internal/media"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	N, Dim       int
	ChunkSize    int // stream step
	FacilityCost float64
	Candidates   int
	Seed         int64
	EvalChunk    int // points per parallel evaluation chunk
}

// Default is the harness workload.
func Default() Workload {
	return Workload{N: 32768, Dim: 16, ChunkSize: 4096, FacilityCost: 2000, Candidates: 5, Seed: 10, EvalChunk: 512}
}

// Small is the test workload.
func Small() Workload {
	return Workload{N: 500, Dim: 3, ChunkSize: 125, FacilityCost: 400, Candidates: 4, Seed: 10, EvalChunk: 64}
}

// Instance is a prepared benchmark instance.
type Instance struct {
	W Workload
}

// New builds the instance (points are generated per run — the state is
// mutated as the stream is absorbed, so each run re-creates it; generation
// costs no virtual time).
func New(w Workload) *Instance { return &Instance{W: w} }

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "streamcluster" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "application" }

func (in *Instance) problem() *kern.Problem {
	pts, _ := media.Points(in.W.N, in.W.Dim, 16, in.W.Seed)
	return &kern.Problem{
		Points: pts, N: in.W.N, Dim: in.W.Dim,
		ChunkSize: in.W.ChunkSize, FacilityCost: in.W.FacilityCost,
		Candidates: in.W.Candidates, Seed: in.W.Seed,
	}
}

func result(s *kern.State) uint64 {
	return check.Floats([]float64{s.TotalCost()}) ^ check.Ints(s.Open) ^ check.Ints(s.Assign)
}

// mergeInOrder folds chunk partials in fixed order (bit-exact reduction).
func mergeInOrder(dst *kern.GainPartial, parts []*kern.GainPartial) {
	for _, pa := range parts {
		dst.Save += pa.Save
		for f := range dst.CloseSave {
			dst.CloseSave[f] += pa.CloseSave[f]
		}
	}
}

// RunSeq streams sequentially over the same chunk structure.
func (in *Instance) RunSeq() uint64 {
	p := in.problem()
	s := p.NewState()
	for s.Limit < p.N {
		s.AbsorbChunk()
		for _, c := range s.PickCandidates() {
			ranges := blocks.Ranges(s.Limit, in.W.EvalChunk)
			parts := make([]*kern.GainPartial, len(ranges))
			for i, r := range ranges {
				parts[i] = s.NewGainPartial()
				s.EvalCandidateRange(c, parts[i], r[0], r[1])
			}
			merged := s.NewGainPartial()
			mergeInOrder(merged, parts)
			s.ApplyCandidate(c, merged)
		}
	}
	return result(s)
}

// RunPthreads keeps one SPMD team alive for the whole stream: thread 0
// performs the serial absorb/pick/reduce/apply steps, the team evaluates
// gain chunks statically, and two blocking barriers bracket every candidate
// round (release into the evaluation, collect for the reduction) — the
// PARSEC pgain structure.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	p := in.problem()
	s := p.NewState()
	api := main.API()
	bar := api.NewBarrier(api.Threads())
	var (
		candidates []int
		cand       int
		ranges     [][2]int
		parts      []*kern.GainPartial
		finished   bool
	)
	evalCost := kern.RangeEvalCost(in.W.EvalChunk, in.W.Dim)
	// prepare sets up the next candidate round (serial, thread 0): apply
	// the previous round's result if any, then advance the stream or pick
	// the next candidate.
	prepare := func(t *pthread.Thread, applyPrev bool) {
		if applyPrev {
			merged := s.NewGainPartial()
			mergeInOrder(merged, parts)
			s.ApplyCandidate(cand, merged)
			t.Compute(kern.RangeEvalCost(s.Limit/8+1, in.W.Dim))
		}
		for len(candidates) == 0 {
			if s.Limit >= p.N {
				finished = true
				return
			}
			s.AbsorbChunk()
			candidates = s.PickCandidates()
			t.Compute(kern.RangeEvalCost(p.ChunkSize, in.W.Dim))
		}
		cand = candidates[0]
		candidates = candidates[1:]
		ranges = blocks.Ranges(s.Limit, in.W.EvalChunk)
		parts = make([]*kern.GainPartial, len(ranges))
		for i := range parts {
			parts[i] = s.NewGainPartial()
		}
	}
	main.Parallel(func(t *pthread.Thread) {
		nt := t.API().Threads()
		if t.ID() == 0 {
			prepare(t, false)
		}
		t.Barrier(bar)
		for {
			if finished {
				return
			}
			for i := t.ID(); i < len(ranges); i += nt {
				s.EvalCandidateRange(cand, parts[i], ranges[i][0], ranges[i][1])
				t.Compute(evalCost)
				t.Touch(&p.Points[ranges[i][0]*p.Dim],
					int64(8*(ranges[i][1]-ranges[i][0])*p.Dim), false)
			}
			t.Barrier(bar)
			if t.ID() == 0 {
				prepare(t, true)
			}
			t.Barrier(bar)
		}
	})
	return result(s)
}

// RunOmpSs has the master absorb the stream and, per candidate, spawn gain
// tasks over the chunks plus a dependent apply task, separated by taskwait.
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	p := in.problem()
	s := p.NewState()
	evalCost := kern.RangeEvalCost(in.W.EvalChunk, in.W.Dim)
	// Point-chunk keys recur across candidates and stream windows: intern a
	// handle per chunk start, on first use.
	pointD := map[int]*ompss.Datum{}
	pointsAt := func(at int) *ompss.Datum {
		d := pointD[at]
		if d == nil {
			d = rt.Register(&p.Points[at*p.Dim])
			pointD[at] = d
		}
		return d
	}
	for s.Limit < p.N {
		s.AbsorbChunk()
		rt.Task(func(tc *ompss.TC) {}, ompss.Cost(kern.RangeEvalCost(p.ChunkSize, in.W.Dim)),
			ompss.Label("absorb"), ompss.If(false)) // absorb is serial master work; charge it inline
		for _, c := range s.PickCandidates() {
			c := c
			ranges := blocks.Ranges(s.Limit, in.W.EvalChunk)
			parts := make([]*kern.GainPartial, len(ranges))
			for i := range parts {
				i := i
				r := ranges[i]
				parts[i] = s.NewGainPartial()
				rt.Task(func(*ompss.TC) { s.EvalCandidateRange(c, parts[i], r[0], r[1]) },
					ompss.OutSized(parts[i], int64(8*(1+len(parts[i].CloseSave)))),
					ompss.InSized(pointsAt(r[0]), int64(8*(r[1]-r[0])*p.Dim)),
					ompss.Cost(evalCost),
					ompss.Label("pgain"))
			}
			rt.Taskwait()
			merged := s.NewGainPartial()
			mergeInOrder(merged, parts)
			s.ApplyCandidate(c, merged)
			rt.Task(func(*ompss.TC) {}, ompss.Cost(kern.RangeEvalCost(s.Limit/8+1, in.W.Dim)),
				ompss.Label("apply"), ompss.If(false)) // serial apply charged inline
		}
	}
	return result(s)
}
