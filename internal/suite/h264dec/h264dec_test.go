package h264dec

import (
	"testing"

	"ompssgo/internal/h264"
	"ompssgo/internal/img"
	"ompssgo/internal/media"
	"ompssgo/machine"
	"ompssgo/ompss"
)

func TestNewFromStreamEquivalent(t *testing.T) {
	w := Small()
	a := New(w)
	b := NewFromStream(w, a.bs)
	if a.RunSeq() != b.RunSeq() {
		t.Fatal("NewFromStream must decode identically")
	}
}

func TestDecodedQuality(t *testing.T) {
	w := Small()
	in := New(w)
	frames, err := h264.Decode(in.bs)
	if err != nil {
		t.Fatal(err)
	}
	video := media.Video(w.Frames, w.W, w.H, w.Seed)
	for i := range frames {
		if psnr := img.PSNR(video[i], frames[i]); psnr < 28 {
			t.Fatalf("frame %d PSNR %.1f dB below floor", i, psnr)
		}
	}
}

func TestGroupRowsClamped(t *testing.T) {
	// Degenerate granularities must still decode correctly.
	for _, g := range []int{0, 1, 100} {
		w := Small()
		w.Frames = 4
		w.GroupRows = g
		in := New(w)
		want := in.RunSeq()
		var got uint64
		if _, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
			got = in.RunOmpSs(rt)
		}); err != nil {
			t.Fatalf("GroupRows=%d: %v", g, err)
		}
		if got != want {
			t.Fatalf("GroupRows=%d: wrong output", g)
		}
	}
}

func TestNBufDepthsDecodeCorrectly(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		w := Small()
		w.Frames = 6
		w.NBuf = n
		in := New(w)
		want := in.RunSeq()
		var got uint64
		if _, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
			got = in.RunOmpSs(rt)
		}); err != nil {
			t.Fatalf("NBuf=%d: %v", n, err)
		}
		if got != want {
			t.Fatalf("NBuf=%d: wrong output", n)
		}
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "h264dec" || in.Class() != "application" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
