package h264dec

import (
	"testing"
	"time"

	"ompssgo/internal/h264"
	"ompssgo/internal/img"
	"ompssgo/internal/media"
	"ompssgo/machine"
	"ompssgo/ompss"
)

func TestNewFromStreamEquivalent(t *testing.T) {
	w := Small()
	a := New(w)
	b := NewFromStream(w, a.bs)
	if a.RunSeq() != b.RunSeq() {
		t.Fatal("NewFromStream must decode identically")
	}
}

func TestDecodedQuality(t *testing.T) {
	w := Small()
	in := New(w)
	frames, err := h264.Decode(in.bs)
	if err != nil {
		t.Fatal(err)
	}
	video := media.Video(w.Frames, w.W, w.H, w.Seed)
	for i := range frames {
		if psnr := img.PSNR(video[i], frames[i]); psnr < 28 {
			t.Fatalf("frame %d PSNR %.1f dB below floor", i, psnr)
		}
	}
}

func TestGroupRowsClamped(t *testing.T) {
	// Degenerate granularities must still decode correctly.
	for _, g := range []int{0, 1, 100} {
		w := Small()
		w.Frames = 4
		w.GroupRows = g
		in := New(w)
		want := in.RunSeq()
		var got uint64
		if _, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
			got = in.RunOmpSs(rt)
		}); err != nil {
			t.Fatalf("GroupRows=%d: %v", g, err)
		}
		if got != want {
			t.Fatalf("GroupRows=%d: wrong output", g)
		}
	}
}

func TestNBufDepthsDecodeCorrectly(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		w := Small()
		w.Frames = 6
		w.NBuf = n
		in := New(w)
		want := in.RunSeq()
		var got uint64
		if _, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
			got = in.RunOmpSs(rt)
		}); err != nil {
			t.Fatalf("NBuf=%d: %v", n, err)
		}
		if got != want {
			t.Fatalf("NBuf=%d: wrong output", n)
		}
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "h264dec" || in.Class() != "application" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}

// TestNativePipelineBounded pins the DPB/PIB backpressure fix: before the
// slot-recycle gate (output k -> reconstruction head of frame k+NBuf), a
// legal native schedule could run reconstructions arbitrarily far ahead of
// outputs, exhaust the n+2-deep DPB, and — because the exhaustion panic
// fired inside Critical("dpb") — leak the critical lock and hang the
// pipeline forever. The default workload at Workers(2) reproduced this
// within a few runs. The test repeats that exact configuration across the
// scheduling policies with a deadline, so a reintroduced unbounded fetch
// fails loudly instead of hanging CI.
func TestNativePipelineBounded(t *testing.T) {
	want := New(Default()).RunSeq()
	policies := [][]ompss.Option{
		nil,
		{ompss.Locality(false), ompss.AffinitySched(false)},
		{ompss.AffinitySched(false)},
		{ompss.Wait(ompss.Blocking)},
	}
	for pi, opts := range policies {
		for it := 0; it < 3; it++ {
			done := make(chan uint64, 1)
			go func() {
				in := New(Default())
				rt := ompss.New(append([]ompss.Option{ompss.Workers(2)}, opts...)...)
				got := in.RunOmpSs(rt)
				rt.Shutdown()
				done <- got
			}()
			select {
			case got := <-done:
				if got != want {
					t.Fatalf("policy %d run %d: checksum %#x, want %#x", pi, it, got, want)
				}
			case <-time.After(120 * time.Second):
				t.Fatalf("policy %d run %d: pipeline hung (DPB/PIB backpressure regression)", pi, it)
			}
		}
	}
}
