// Package h264dec is the h264dec benchmark of the suite — the paper's §3
// case study and its Table 1 problem child (mean 0.73, collapsing to 0.42
// at 32 cores for OmpSs).
//
// Three variants decode the same toy-codec bitstream:
//
//   - RunSeq: the five stages in a plain loop.
//   - RunOmpSs: Listing 1 — one task per pipeline stage per iteration,
//     linked by inout stage-context dependences, manual renaming through
//     circular buffers of depth NBuf, `taskwait on` the read context as the
//     loop condition, and PIB/DPB recycling hidden from the dependence
//     system behind named criticals. Reconstruction granularity is
//     controlled by GroupRows (MB rows per reconstruction task): small
//     groups expose more parallelism but multiply per-task overhead —
//     the granularity dilemma of §4.
//   - RunPthreads: the optimized line-decoding design (Chi & Juurlink): a
//     driver thread performs read/parse/entropy-decode/output, worker
//     threads reconstruct macroblock lines in a 2-D wavefront synchronized
//     by per-line atomic progress counters, within and across frames.
package h264dec

import (
	"context"
	"fmt"
	"time"

	"ompssgo/internal/check"
	"ompssgo/internal/h264"
	"ompssgo/internal/img"
	"ompssgo/internal/media"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	W, H        int
	Frames      int
	QP, GOP     int
	SearchRange int
	NBuf        int // circular pipeline depth (Listing 1's N)
	GroupRows   int // OmpSs reconstruction granularity (MB rows per task)
	Seed        int64
}

// Default is the harness workload. GroupRows=1 is the finest task
// granularity that keeps per-task overhead tolerable; the granularity
// ablation sweeps coarser groupings.
func Default() Workload {
	return Workload{W: 192, H: 128, Frames: 48, QP: 26, GOP: 8, SearchRange: 4,
		NBuf: 6, GroupRows: 1, Seed: 12}
}

// Small is the test workload.
func Small() Workload {
	return Workload{W: 96, H: 64, Frames: 8, QP: 26, GOP: 4, SearchRange: 4,
		NBuf: 3, GroupRows: 2, Seed: 12}
}

// Instance is a prepared benchmark instance: the encoded bitstream.
type Instance struct {
	W       Workload
	p       h264.Params
	bs      []byte
	nframes int
	off     int
}

// New synthesizes a video and encodes it.
func New(w Workload) *Instance {
	p := h264.Params{W: w.W, H: w.H, QP: w.QP, GOP: w.GOP, SearchRange: w.SearchRange}
	frames := media.Video(w.Frames, w.W, w.H, w.Seed)
	bs, err := h264.EncodeSequence(p, frames)
	if err != nil {
		panic(fmt.Sprintf("h264dec: encode failed: %v", err))
	}
	return NewFromStream(w, bs)
}

// NewFromStream builds an instance around an existing bitstream (the codec
// CLI uses this to decode files). The workload's pipeline knobs (NBuf,
// GroupRows) still apply; the coded parameters come from the stream header.
func NewFromStream(w Workload, bs []byte) *Instance {
	in := &Instance{W: w, bs: bs}
	var err error
	in.p, in.nframes, in.off, err = h264.ParseStreamHeader(bs)
	if err != nil {
		panic(fmt.Sprintf("h264dec: stream parse failed: %v", err))
	}
	return in
}

// Stream returns the instance's encoded bitstream, reusable across
// NewFromStream instances (the serving path encodes once and re-parses per
// request).
func (in *Instance) Stream() []byte { return in.bs }

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "h264dec" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "application" }

// RunSeq decodes with the reference sequential decoder.
func (in *Instance) RunSeq() uint64 {
	frames, err := h264.Decode(in.bs)
	if err != nil {
		panic(err)
	}
	sums := make([]uint64, len(frames))
	for i, f := range frames {
		sums[i] = f.Checksum()
	}
	return check.Combine(sums)
}

// edCost is the entropy-decode cost of one frame.
func (in *Instance) edCost() int { return in.p.MBW() * in.p.MBH() }

// ---------------------------------------------------------------------------
// Pthreads variant: driver + wavefront line decoding.

// RunPthreads decodes with one driver thread (read/parse/output) and
// Threads()−1 workers that entropy-decode whole frames (distributed
// round-robin — independent frame payloads decode concurrently, unlike the
// Listing 1 task pipeline whose ED tasks chain on the ec context) and
// reconstruct macroblock lines in a wavefront. With one thread, the driver
// decodes frames serially itself.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	p := in.p
	api := main.API()
	nw := api.Threads() - 1 // ED + reconstruction workers
	mbw, mbh := p.MBW(), p.MBH()
	nf := in.nframes

	fdPool := make([]*h264.FrameData, in.W.NBuf)
	for i := range fdPool {
		fdPool[i] = h264.NewFrameData(p)
	}
	// The driver runs at most as far ahead as the DPB lets it (NBuf+2
	// pictures in flight); the PicInfo pool must cover the same depth.
	pib := h264.NewPIB(in.W.NBuf + 3)
	dpb := h264.NewDPB(in.W.NBuf+2, p)
	mu := api.NewMutex()

	pics := make([]*h264.Picture, nf) // frame -> picture (driver writes pre-publish)
	pis := make([]*h264.PicInfo, nf)
	hdrs := make([]h264.Header, nf)
	brs := make([]*h264.BitReader, nf)
	parseDone := api.NewSpinVar() // frames read+parsed (driver, in order)
	reconDone := api.NewSpinVar() // frames fully reconstructed (in order)
	rowsDone := make([]*pthread.SpinVar, nf)
	edFlag := make([]*pthread.SpinVar, nf)   // per frame: entropy decode complete
	mbProg := make([][]*pthread.SpinVar, nf) // per frame, per MB row: MBs completed
	for f := 0; f < nf; f++ {
		rowsDone[f] = api.NewSpinVar()
		edFlag[f] = api.NewSpinVar()
		mbProg[f] = make([]*pthread.SpinVar, mbh)
		for r := 0; r < mbh; r++ {
			mbProg[f][r] = api.NewSpinVar()
		}
	}
	sums := make([]uint64, nf)

	driver := func(t *pthread.Thread) {
		sr := h264.NewStreamReader(in.bs, in.off)
		out := 0
		deliver := func() {
			pic := pics[out]
			sums[out] = pic.Img.Checksum()
			t.Compute(h264.OutputFrameCost(p.W * p.H))
			t.Lock(mu)
			dpb.Release(pic) // output reference
			if out >= 1 {
				dpb.Release(pics[out-1]) // frame out's recon is done: ref use over
			}
			pib.Release(pis[out])
			t.Unlock(mu)
			out++
		}
		for f := 0; f < nf; f++ {
			payload, ok, err := sr.Next()
			if err != nil || !ok {
				panic(fmt.Sprintf("h264dec: read stage: %v", err))
			}
			t.Compute(h264.ReadFrameCost(len(payload)))
			hdr, br, err := h264.DecodeFrameHeader(payload)
			if err != nil {
				panic(err)
			}
			t.Compute(h264.ParseCost())
			t.Lock(mu)
			pi := pib.Fetch()
			t.Unlock(mu)
			if pi == nil {
				panic("h264dec: PIB exhausted") // pool sized to pipeline depth
			}
			pi.Hdr = hdr
			pis[f] = pi
			// DPB fetch; recycle by delivering finished outputs.
			for {
				t.Lock(mu)
				pic := dpb.Fetch(f, 2) // held for output + as reference
				t.Unlock(mu)
				if pic != nil {
					pics[f] = pic
					break
				}
				t.WaitGE(reconDone, int64(out+1))
				deliver()
			}
			hdrs[f], brs[f] = hdr, br
			t.Store(parseDone, int64(f+1))
			if nw == 0 {
				// Single-threaded: entropy-decode and reconstruct inline.
				fd := fdPool[f%in.W.NBuf]
				if err := h264.EntropyDecodeFrame(p, br, hdr, fd); err != nil {
					panic(err)
				}
				t.Compute(h264.EDMBCost() * time.Duration(in.edCost()))
				var ref *img.Gray
				if f > 0 {
					ref = pics[f-1].Img
				} else {
					ref = pics[f].Img
				}
				h264.ReconstructFrame(p, pics[f].Img, ref, fd)
				t.Compute(h264.ReconMBCost() * time.Duration(mbw*mbh))
				t.Store(rowsDone[f], int64(mbh))
				t.Store(reconDone, int64(f+1))
			}
			for out < nf && t.Load(reconDone) > int64(out) {
				deliver()
			}
		}
		for out < nf {
			t.WaitGE(reconDone, int64(out+1))
			deliver()
		}
		// The final frame's reference hold is never released by a
		// successor; return it to the pool.
		t.Lock(mu)
		dpb.Release(pics[nf-1])
		t.Unlock(mu)
	}

	worker := func(t *pthread.Thread, id int) {
		for f := 0; f < nf; f++ {
			fd := fdPool[f%in.W.NBuf]
			if f%nw == id {
				// This worker owns frame f's entropy decode. The ED
				// buffer slot recycles once frame f−NBuf is fully
				// reconstructed.
				t.WaitGE(parseDone, int64(f+1))
				if f >= in.W.NBuf {
					t.WaitGE(reconDone, int64(f-in.W.NBuf+1))
				}
				if err := h264.EntropyDecodeFrame(p, brs[f], hdrs[f], fd); err != nil {
					panic(err)
				}
				t.Compute(h264.EDMBCost() * time.Duration(in.edCost()))
				t.Store(edFlag[f], 1)
			} else {
				t.WaitGE(edFlag[f], 1)
			}
			rec := pics[f].Img
			var ref *img.Gray
			if f > 0 {
				ref = pics[f-1].Img
			} else {
				ref = rec
			}
			isP := fd.Hdr.Type == h264.FrameP && f > 0
			for r := id; r < mbh; r += nw {
				if isP {
					needRows := (h264.RefRowsNeeded(p, r) + h264.MBSize - 1) / h264.MBSize
					t.WaitGE(rowsDone[f-1], int64(needRows))
				}
				for mbx := 0; mbx < mbw; mbx++ {
					if r > 0 {
						t.WaitGE(mbProg[f][r-1], int64(mbx+1))
					}
					h264.ReconstructMBAt(p, rec, ref, fd, mbx, r)
					t.Compute(h264.ReconMBCost())
					t.Add(mbProg[f][r], 1)
				}
				t.Touch(&rec.Pix[r*h264.MBSize*p.W], int64(h264.MBSize*p.W), true)
				// Publish contiguous row completion (rows finish in order
				// thanks to the wavefront waits).
				t.WaitGE(rowsDone[f], int64(r))
				t.Store(rowsDone[f], int64(r+1))
				if r == mbh-1 {
					// In-order commit: an I frame can outrun its
					// predecessor, but the done-counter must only advance
					// contiguously or the output stage would read
					// unfinished pictures.
					t.WaitGE(reconDone, int64(f))
					t.Store(reconDone, int64(f+1))
				}
			}
		}
	}

	var threads []*pthread.Thread
	for w := 0; w < nw; w++ {
		w := w
		threads = append(threads, main.Spawn("recon", func(t *pthread.Thread) { worker(t, w) }))
	}
	drv := main.Spawn("driver", func(t *pthread.Thread) { driver(t) })
	main.Join(drv)
	for _, th := range threads {
		main.Join(th)
	}
	return check.Combine(sums)
}

// ---------------------------------------------------------------------------
// OmpSs variant: the Listing 1 pipeline.

// RunOmpSs decodes with one task per pipeline stage per iteration, linked
// exactly as in the paper's Listing 1: stage contexts annotated inout chain
// same-stage tasks across iterations; circular buffers of depth NBuf rename
// the per-iteration data (removing WAR/WAW serialization); `taskwait on` the
// read context gates the loop; PIB/DPB recycling happens inside named
// criticals, hidden from the dependence system. Reconstruction is split into
// GroupRows-row tasks whose dependences encode the intra wavefront (previous
// group, same frame) and motion compensation (group g+1 of the previous
// frame, which covers the ±SearchRange reference rows).
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	p := in.p
	mbw, mbh := p.MBW(), p.MBH()
	n := in.W.NBuf
	nf := in.nframes
	groupRows := in.W.GroupRows
	if groupRows < 1 {
		groupRows = 1
	}
	if groupRows > mbh {
		groupRows = mbh
	}
	ng := (mbh + groupRows - 1) / groupRows

	// Stage contexts (Listing 1's rc, nc, ec, oc) and the circular-buffer
	// keys all recur every iteration (slot reuse is the whole point of the
	// manual renaming), so the entire dependence working set is registered
	// once up front and every stage submits through handles.
	rc := rt.Register(new(int))
	pc := rt.Register(new(int))
	ec := rt.Register(new(int))
	oc := rt.Register(new(int))

	// Circular buffers (manual renaming).
	payloads := make([][]byte, n)
	hdrs := make([]h264.Header, n)
	brs := make([]*h264.BitReader, n)
	fds := make([]*h264.FrameData, n)
	payloadD := make([]*ompss.Datum, n)
	hdrD := make([]*ompss.Datum, n)
	fdD := make([]*ompss.Datum, n)
	for i := range fds {
		fds[i] = h264.NewFrameData(p)
		payloadD[i] = rt.Register(&payloads[i])
		hdrD[i] = rt.Register(&hdrs[i])
		fdD[i] = rt.Register(fds[i])
	}
	grpKeys := make([][]*ompss.Datum, n)
	for s := range grpKeys {
		grpKeys[s] = make([]*ompss.Datum, ng)
		for g := range grpKeys[s] {
			grpKeys[s][g] = rt.Register(new(int))
		}
	}
	// Slot-recycle gates: the output stage of frame k writes slotFree[slot],
	// and the reconstruction head of frame k+n — the task that fetches a
	// picture from the DPB — reads it. Without this edge nothing orders DPB
	// fetches against DPB releases (outputs), so a legal schedule that runs
	// every reconstruction before any output fetches nf pictures from an
	// n+2-deep pool: the small instances usually got lucky, the default
	// instance deadlocked the pipeline. With the gate, at most n frames are
	// fetched and not yet output, and the pool bound n+2 (outputs' holds
	// plus the previous frame's reference hold) is deterministic.
	slotFreeD := make([]*ompss.Datum, n)
	for i := range slotFreeD {
		slotFreeD[i] = rt.Register(new(int))
	}
	// Slot-relayed plumbing: each stage hands the next stage the pooled
	// resources it claimed, staying clear of slot-reuse races (the relay is
	// protected by the same WAR dependences that protect the payload data).
	pisParse := make([]*h264.PicInfo, n)
	pisED := make([]*h264.PicInfo, n)
	pics := make([]*h264.Picture, n)
	refUsed := make([]*h264.Picture, n)
	donePics := make([]*h264.Picture, n)
	doneRefs := make([]*h264.Picture, n)
	donePis := make([]*h264.PicInfo, n)

	// The parse stage can run ahead of the output stage by up to ~3N
	// iterations in the worst legal schedule: parses are throttled (via the
	// header-slot WAR) by entropy decodes N frames back, those (via the
	// frame-data WAR) by reconstructions another N back, and those (via the
	// slot-recycle gate) by outputs another N back. The PicInfo pool must
	// cover that whole depth — a PicInfo is fetched at parse and released
	// at output. Pictures are bounded by the slot-recycle gate directly.
	pib := h264.NewPIB(3*n + 2)
	dpb := h264.NewDPB(n+2, p)
	sr := h264.NewStreamReader(in.bs, in.off)
	sums := make([]uint64, nf)
	var lastPic *h264.Picture

	edMBs := mbw * mbh
	groupCost := func(g int) time.Duration {
		rows := groupRows
		if (g+1)*groupRows > mbh {
			rows = mbh - g*groupRows
		}
		return h264.ReconMBCost() * time.Duration(rows*mbw)
	}
	frameBytes := int64(p.W * p.H)

	for k := 0; k < nf; k++ {
		k := k
		slot := k % n
		prevSlot := (k - 1 + n) % n

		// Read stage. Error-returning spawn: a truncated stream becomes the
		// task's outcome and skips the dependent stages instead of
		// panicking the worker.
		rt.Go(func(tc *ompss.TC) error {
			payload, ok, err := sr.Next()
			if err != nil {
				return fmt.Errorf("h264dec: read stage: %w", err)
			}
			if !ok {
				return fmt.Errorf("h264dec: read stage: stream ended at frame %d of %d", k, nf)
			}
			payloads[slot] = payload
			tc.Compute(h264.ReadFrameCost(len(payload)))
			return nil
		}, ompss.InOut(rc), ompss.Out(payloadD[slot]), ompss.Label("read"))

		// Parse stage: header + PIB fetch under critical.
		rt.Go(func(tc *ompss.TC) error {
			hdr, br, err := h264.DecodeFrameHeader(payloads[slot])
			if err != nil {
				return err
			}
			hdrs[slot], brs[slot] = hdr, br
			tc.Critical("pib", func() {
				pi := pib.Fetch()
				if pi == nil {
					err = fmt.Errorf("h264dec: PIB exhausted at frame %d", k)
					return
				}
				pi.Hdr = hdr
				pisParse[slot] = pi
			})
			return err
		}, ompss.InOut(pc), ompss.In(payloadD[slot]), ompss.Out(hdrD[slot]),
			ompss.Cost(h264.ParseCost()), ompss.Label("parse"))

		// Entropy decode stage (serial chain via ec).
		rt.Go(func(tc *ompss.TC) error {
			if err := h264.EntropyDecodeFrame(p, brs[slot], hdrs[slot], fds[slot]); err != nil {
				return err
			}
			pisED[slot] = pisParse[slot]
			return nil
		}, ompss.InOut(ec), ompss.In(hdrD[slot]), ompss.OutSized(fdD[slot], int64(edMBs)*1064),
			ompss.Cost(h264.EDMBCost()*time.Duration(edMBs)), ompss.Label("ed"))

		// Reconstruction: ng row-group tasks forming the wavefront.
		for g := 0; g < ng; g++ {
			g := g
			clauses := []ompss.Clause{
				ompss.In(fdD[slot]),
				ompss.OutSized(grpKeys[slot][g], frameBytes/int64(ng)),
				ompss.Cost(groupCost(g)),
				ompss.Label("recon"),
			}
			if g == 0 {
				// DPB backpressure: wait for the output that recycles this
				// slot's previous picture (see slotFreeD above).
				clauses = append(clauses, ompss.In(slotFreeD[slot]))
			} else {
				clauses = append(clauses, ompss.In(grpKeys[slot][g-1]))
			}
			if k > 0 {
				gref := g + 1
				if gref > ng-1 {
					gref = ng - 1
				}
				clauses = append(clauses, ompss.In(grpKeys[prevSlot][gref]))
			}
			rt.Task(func(tc *ompss.TC) {
				if g == 0 {
					tc.Critical("dpb", func() {
						pic := dpb.Fetch(k, 2)
						if pic == nil {
							panic("h264dec: DPB exhausted")
						}
						pics[slot] = pic
						refUsed[slot] = nil
						if k > 0 {
							refUsed[slot] = pics[prevSlot]
						}
					})
				}
				rec := pics[slot].Img
				ref := rec
				if k > 0 {
					ref = refUsed[slot].Img
				}
				r0 := g * groupRows
				r1 := r0 + groupRows
				if r1 > mbh {
					r1 = mbh
				}
				h264.ReconstructRows(p, rec, ref, fds[slot], r0, r1)
				if g == ng-1 {
					// Hand the output stage race-free pointers.
					donePics[slot] = pics[slot]
					doneRefs[slot] = refUsed[slot]
					donePis[slot] = pisED[slot]
				}
			}, clauses...)
		}

		// Output stage.
		rt.Task(func(tc *ompss.TC) {
			pic := donePics[slot]
			sums[k] = pic.Img.Checksum()
			tc.Critical("dpb", func() {
				dpb.Release(pic) // output reference
				if ref := doneRefs[slot]; ref != nil {
					dpb.Release(ref) // this frame is done reading its reference
				}
			})
			tc.Critical("pib", func() { pib.Release(donePis[slot]) })
			if k == nf-1 {
				lastPic = pic
			}
		}, ompss.InOut(oc), ompss.In(grpKeys[slot][ng-1]), ompss.Out(slotFreeD[slot]),
			ompss.Cost(h264.OutputFrameCost(p.W*p.H)), ompss.Label("output"))

		// Listing 1's loop gate: the read stage must have completed before
		// the next iteration's EOF check.
		rt.TaskwaitOn(rc)
	}
	// Context-aware barrier: a stage error (bad stream, exhausted pool)
	// propagated through the graph by skipping the dependent stages; it
	// surfaces here instead of unwinding a worker mid-pipeline.
	if err := rt.TaskwaitCtx(context.Background()); err != nil {
		panic(fmt.Sprintf("h264dec: pipeline failed: %v", err))
	}
	if lastPic != nil {
		dpb.Release(lastPic) // the final frame's reference hold
	}
	return check.Combine(sums)
}
