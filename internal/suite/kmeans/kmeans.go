// Package kmeans is the kmeans benchmark of the suite: Lloyd iterations
// with a parallel assignment phase over fixed point chunks, an in-order
// partial reduction, and a barrier/taskwait per iteration (workload class;
// paper Table 1 mean 0.97).
//
// All variants accumulate into per-chunk partials merged in chunk order, so
// floating-point results are bit-identical across variants and thread
// counts.
package kmeans

import (
	"ompssgo/internal/blocks"
	"ompssgo/internal/check"
	kern "ompssgo/internal/kernels/kmeans"
	"ompssgo/internal/media"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	N, Dim, K int
	MaxIter   int
	Seed      int64
	Chunk     int // points per chunk (fixed, independent of thread count)
}

// Default is the harness workload.
func Default() Workload { return Workload{N: 16384, Dim: 8, K: 12, MaxIter: 25, Seed: 7, Chunk: 512} }

// Small is the test workload.
func Small() Workload { return Workload{N: 600, Dim: 4, K: 5, MaxIter: 10, Seed: 7, Chunk: 100} }

// Instance is a prepared benchmark instance.
type Instance struct {
	W    Workload
	prob *kern.Problem
}

// New generates the point set.
func New(w Workload) *Instance {
	pts, _ := media.Points(w.N, w.Dim, w.K, w.Seed)
	return &Instance{W: w, prob: &kern.Problem{Points: pts, N: w.N, Dim: w.Dim, K: w.K}}
}

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "kmeans" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "workload" }

type state struct {
	centroids []float64
	assign    []int
	partials  []*kern.Partial
	merged    *kern.Partial
	ranges    [][2]int
}

func (in *Instance) newState() *state {
	s := &state{
		centroids: in.prob.InitCentroids(),
		assign:    make([]int, in.W.N),
		merged:    in.prob.NewPartial(),
		ranges:    blocks.Ranges(in.W.N, in.W.Chunk),
	}
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.partials = make([]*kern.Partial, len(s.ranges))
	for i := range s.partials {
		s.partials[i] = in.prob.NewPartial()
	}
	return s
}

// reduce merges partials in chunk order and updates centroids; returns
// moved-count (0 = converged).
func (in *Instance) reduce(s *state) int {
	s.merged.Reset()
	for _, pa := range s.partials {
		s.merged.Merge(pa)
	}
	return in.prob.UpdateCentroids(s.centroids, s.merged)
}

func (in *Instance) result(s *state) uint64 {
	return check.Floats(s.centroids) ^ check.Ints(s.assign)
}

// RunSeq iterates sequentially over the same chunk structure.
func (in *Instance) RunSeq() uint64 {
	s := in.newState()
	for it := 0; it < in.W.MaxIter; it++ {
		for c, r := range s.ranges {
			s.partials[c].Reset()
			in.prob.AssignRange(s.centroids, s.assign, s.partials[c], r[0], r[1])
		}
		if in.reduce(s) == 0 {
			break
		}
	}
	return in.result(s)
}

// RunPthreads runs one SPMD region; each iteration assigns chunks
// statically, meets a barrier, thread 0 reduces, and a second barrier
// publishes the new centroids.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	s := in.newState()
	api := main.API()
	bar := api.NewBarrier(api.Threads())
	done := api.NewSpinVar()
	chunkCost := kern.RangeCost(in.W.Chunk, in.W.K, in.W.Dim)
	main.Parallel(func(t *pthread.Thread) {
		p := t.API().Threads()
		for it := 0; it < in.W.MaxIter; it++ {
			if t.Load(done) != 0 {
				break
			}
			for c := t.ID(); c < len(s.ranges); c += p {
				s.partials[c].Reset()
				in.prob.AssignRange(s.centroids, s.assign, s.partials[c], s.ranges[c][0], s.ranges[c][1])
				t.Compute(chunkCost)
				t.Touch(&in.prob.Points[s.ranges[c][0]*in.W.Dim],
					int64(8*(s.ranges[c][1]-s.ranges[c][0])*in.W.Dim), false)
			}
			if t.Barrier(bar) {
				if in.reduce(s) == 0 {
					t.Store(done, 1)
				}
				t.Compute(kern.RangeCost(len(s.ranges)*in.W.K, 1, in.W.Dim))
			}
			t.Barrier(bar)
		}
	})
	return in.result(s)
}

// RunOmpSs spawns one assignment task per chunk each iteration, taskwaits,
// and reduces on the master (the task barrier separating iterations).
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	s := in.newState()
	chunkCost := kern.RangeCost(in.W.Chunk, in.W.K, in.W.Dim)
	// Every key here recurs each iteration (centroids in every chunk task,
	// one partial per chunk, one point-range per chunk): register the whole
	// working set once, then submit through handles only.
	cent := rt.Register(&s.centroids[0])
	partials := make([]*ompss.Datum, len(s.partials))
	points := make([]*ompss.Datum, len(s.ranges))
	for c, r := range s.ranges {
		partials[c] = rt.Register(s.partials[c])
		points[c] = rt.Register(&in.prob.Points[r[0]*in.W.Dim])
	}
	for it := 0; it < in.W.MaxIter; it++ {
		for c := range s.ranges {
			c := c
			r := s.ranges[c]
			rt.Task(func(*ompss.TC) {
				s.partials[c].Reset()
				in.prob.AssignRange(s.centroids, s.assign, s.partials[c], r[0], r[1])
			},
				ompss.In(cent),
				ompss.InSized(points[c], int64(8*(r[1]-r[0])*in.W.Dim)),
				ompss.OutSized(partials[c], int64(8*in.W.K*in.W.Dim)),
				ompss.Cost(chunkCost),
				ompss.Label("assign"))
		}
		moved := -1
		rt.Task(func(tc *ompss.TC) {
			moved = in.reduce(s)
			tc.Compute(kern.RangeCost(len(s.ranges)*in.W.K, 1, in.W.Dim))
		}, append([]ompss.Clause{ompss.InOut(cent), ompss.Label("reduce")},
			insOf(partials)...)...)
		rt.Taskwait()
		if moved == 0 {
			break
		}
	}
	return in.result(s)
}

func insOf(ds []*ompss.Datum) []ompss.Clause {
	cs := make([]ompss.Clause, len(ds))
	for i, d := range ds {
		cs[i] = ompss.In(d)
	}
	return cs
}
