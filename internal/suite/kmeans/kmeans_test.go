package kmeans

import (
	"testing"

	kern "ompssgo/internal/kernels/kmeans"
	"ompssgo/internal/media"
)

func TestClusteringQuality(t *testing.T) {
	w := Small()
	in := New(w)
	s := in.newState()
	for it := 0; it < w.MaxIter; it++ {
		for c, r := range s.ranges {
			s.partials[c].Reset()
			in.prob.AssignRange(s.centroids, s.assign, s.partials[c], r[0], r[1])
		}
		if in.reduce(s) == 0 {
			break
		}
	}
	// Every cluster populated; objective far better than one centroid.
	counts := make([]int, w.K)
	for _, a := range s.assign {
		if a < 0 {
			t.Fatal("unassigned point")
		}
		counts[a]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
	pts, _ := media.Points(w.N, w.Dim, w.K, w.Seed)
	single := &kern.Problem{Points: pts, N: w.N, Dim: w.Dim, K: 1}
	c1, a1, _ := single.Run(50)
	if in.prob.Cost(s.centroids, s.assign) > single.Cost(c1, a1)/2 {
		t.Fatal("clustering barely better than a single centroid")
	}
}

func TestChunkStructureIndependentOfThreads(t *testing.T) {
	// The whole point of fixed chunks: the result must not change when
	// only the consumer (thread count) changes — already covered by the
	// integration suite; here we pin that the chunk list itself is a pure
	// function of the workload.
	a, b := New(Small()), New(Small())
	sa, sb := a.newState(), b.newState()
	if len(sa.ranges) != len(sb.ranges) {
		t.Fatal("chunking not deterministic")
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "kmeans" || in.Class() != "workload" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
