package rgbcmy

import "testing"

func TestIterationsAreIdempotent(t *testing.T) {
	// The conversion is stateless: repeating it must not change the
	// output, so the iteration count only affects timing — exactly why
	// the benchmark repeats it to stabilize measurements.
	one := Small()
	one.Iters = 1
	many := Small()
	many.Iters = 7
	if New(one).RunSeq() != New(many).RunSeq() {
		t.Fatal("iteration count changed the result")
	}
}

func TestRowBlocksCoverImage(t *testing.T) {
	w := Default()
	if w.H%w.RowBlock != 0 {
		// Uneven tails are fine, but the default should split evenly so
		// every task carries identical cost (the benchmark is about
		// barrier latency, not imbalance).
		t.Fatalf("default rows %d not divisible by block %d", w.H, w.RowBlock)
	}
}

func TestNameAndClass(t *testing.T) {
	in := New(Small())
	if in.Name() != "rgbcmy" || in.Class() != "kernel" {
		t.Fatalf("identity: %s/%s", in.Name(), in.Class())
	}
}
