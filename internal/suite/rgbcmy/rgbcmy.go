// Package rgbcmy is the rgbcmy benchmark of the suite: RGB→CMY conversion
// repeated for many iterations with a barrier between them to stabilize
// timing. One iteration is short (<20 ms on 16 cores in the paper), so the
// benchmark is dominated by barrier latency: the OmpSs polling taskwait
// beats the blocking Pthreads barrier, increasingly so at higher core counts
// (paper Table 1: 1.02 → 1.53 from 1 to 32 cores, mean 1.19).
package rgbcmy

import (
	"ompssgo/internal/blocks"
	"ompssgo/internal/img"
	kern "ompssgo/internal/kernels/color"
	"ompssgo/internal/media"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// Workload parameterizes one run.
type Workload struct {
	W, H     int
	Iters    int
	Seed     int64
	RowBlock int
}

// Default is the harness workload: very short iterations (tens of
// microseconds of parallel time at high core counts — the paper notes one
// iteration takes under 20 ms on its full-size input), many of them, so the
// per-iteration barrier/taskwait cost is what differentiates the models.
func Default() Workload { return Workload{W: 160, H: 120, Iters: 150, Seed: 5, RowBlock: 15} }

// Small is the test workload.
func Small() Workload { return Workload{W: 96, H: 64, Iters: 5, Seed: 5, RowBlock: 8} }

// Instance is a prepared benchmark instance.
type Instance struct {
	W   Workload
	src *img.RGB
}

// New generates the source image.
func New(w Workload) *Instance { return &Instance{W: w, src: media.Image(w.W, w.H, w.Seed)} }

// Name returns the Table 1 row name.
func (in *Instance) Name() string { return "rgbcmy" }

// Class returns the paper's classification.
func (in *Instance) Class() string { return "kernel" }

// RunSeq converts sequentially, Iters times.
func (in *Instance) RunSeq() uint64 {
	dst := kern.NewCMY(in.W.W, in.W.H)
	for it := 0; it < in.W.Iters; it++ {
		kern.RGBToCMY(dst, in.src)
	}
	return dst.Checksum()
}

// RunPthreads runs one SPMD region; each iteration converts a static row
// partition and meets at a blocking thread barrier — the expensive pattern
// the paper identifies.
func (in *Instance) RunPthreads(main *pthread.Thread) uint64 {
	dst := kern.NewCMY(in.W.W, in.W.H)
	api := main.API()
	bar := api.NewBarrier(api.Threads())
	bl := blocks.Ranges(in.W.H, in.W.RowBlock)
	// The working set (a few hundred KB) is LLC-resident after the first
	// iteration, so the kernel cost already includes its memory time and
	// no cold-traffic footprints are declared.
	main.Parallel(func(t *pthread.Thread) {
		p := t.API().Threads()
		for it := 0; it < in.W.Iters; it++ {
			for b := t.ID(); b < len(bl); b += p {
				lo, hi := bl[b][0], bl[b][1]
				kern.RGBToCMYRows(dst, in.src, lo, hi)
				t.Compute(kern.RowsCost((hi - lo) * in.W.W))
			}
			t.Barrier(bar)
		}
	})
	return dst.Checksum()
}

// RunOmpSs spawns row-block tasks per iteration and separates iterations
// with a polling taskwait (the OmpSs task barrier).
func (in *Instance) RunOmpSs(rt ompss.API) uint64 {
	dst := kern.NewCMY(in.W.W, in.W.H)
	bl := blocks.Ranges(in.W.H, in.W.RowBlock)
	// The source and the per-block destination keys recur every iteration:
	// register them once and submit through the handles.
	src := rt.Register(&in.src.Pix[0])
	rowKeys := make([]*ompss.Datum, len(bl))
	for i, b := range bl {
		rowKeys[i] = rt.Register(&dst.C.Pix[b[0]*in.W.W])
	}
	for it := 0; it < in.W.Iters; it++ {
		for i, b := range bl {
			lo, hi := b[0], b[1]
			rows := hi - lo
			rt.Task(func(*ompss.TC) { kern.RGBToCMYRows(dst, in.src, lo, hi) },
				ompss.In(src),
				ompss.Out(rowKeys[i]),
				ompss.Cost(kern.RowsCost(rows*in.W.W)),
				ompss.Label("rgbcmy"))
		}
		rt.Taskwait()
	}
	return dst.Checksum()
}
