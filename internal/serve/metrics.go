package serve

import (
	"net/http"

	"ompssgo/internal/obs/metrics"
)

// tenantNames maps tenantClass values (0..2) onto the label values the
// metrics plane exposes. Unknown X-Tenant headers land in "bronze", same
// as the scheduler's priority mapping.
var tenantNames = [3]string{"bronze", "silver", "gold"}

// tenantSeries holds one tenant class's live series handles. The handles
// are registered once in initMetrics; the request path only does atomic
// increments on them.
type tenantSeries struct {
	requests   *metrics.Counter
	violations *metrics.Counter
	rejections *metrics.Counter
	faults     *metrics.Counter
	latency    *metrics.Histogram
}

// initMetrics builds the server's registry: per-tenant request counters and
// latency histograms fed from the request path, plus scrape-time gauges
// over the state the runtime already keeps (engine stats, dependence
// records, tune setpoints, recorder ring drops). Called once from New,
// before the handler serves.
func (s *Server) initMetrics() {
	reg := metrics.NewRegistry()
	s.reg = reg
	for class := range tenantNames {
		l := metrics.Label{Key: "tenant", Value: tenantNames[class]}
		t := &s.tenants[class]
		t.requests = reg.Counter("ompss_requests_total",
			"Kernel requests admitted, by tenant class.", l)
		t.violations = reg.Counter("ompss_violations_total",
			"Isolation violations observed (checksum mismatch or leaked skip), by tenant class.", l)
		t.rejections = reg.Counter("ompss_rejections_total",
			"Requests answered 503 while draining, by tenant class.", l)
		t.faults = reg.Counter("ompss_faults_total",
			"Deliberate /v1/fault requests served, by tenant class.", l)
		t.latency = reg.Histogram("ompss_request_seconds",
			"Kernel request latency (session open to close).", l)
	}

	// The probe seam carries rename/writeback events straight into counters.
	// A runtime built with a trace recorder already owns that seam (the
	// recorder is the probe), so the metrics plane only claims it when no
	// recorder is attached; either way the exposed series agree, because the
	// fallback reads the same activity out of the engine's stat counters.
	var probe *metrics.Probe
	if s.cfg.Recorder == nil {
		probe = &metrics.Probe{}
		s.rt.Backend().Deps().SetProbe(probe)
	}
	reg.CounterFunc("ompss_renames_total",
		"Writes that received a fresh renamed instance instead of WAR/WAW edges.",
		func() float64 {
			if probe != nil {
				return float64(probe.Renames.Value())
			}
			return float64(s.rt.Stats().Graph.Renamed)
		})
	reg.CounterFunc("ompss_writebacks_total",
		"Renamed instances copied back onto canonical storage at chain drain.",
		func() float64 {
			if probe != nil {
				return float64(probe.Writebacks.Value())
			}
			return float64(s.rt.Stats().Graph.Writebacks)
		})

	reg.CounterFunc("ompss_tasks_finished_total",
		"Tasks retired by the shared graph, all sessions.",
		func() float64 { return float64(s.rt.Stats().Graph.Finished) })
	reg.CounterFunc("ompss_steals_total",
		"Successful task steals, any distance.",
		func() float64 { return float64(s.rt.Stats().Sched.Steals) })
	reg.CounterFunc("ompss_trace_dropped_events_total",
		"Trace-ring events overwritten before a drain (0 when no recorder is attached; a nonzero value means the ring capacity is too small).",
		func() float64 {
			if s.cfg.Recorder == nil {
				return 0
			}
			return float64(s.cfg.Recorder.DroppedTotal())
		})

	reg.GaugeFunc("ompss_sessions_live",
		"Request sessions currently open.",
		func() float64 {
			s.liveMu.Lock()
			n := s.liveN
			s.liveMu.Unlock()
			return float64(n)
		})
	reg.GaugeFunc("ompss_tasks_in_flight",
		"Tasks submitted to the shared graph and not yet retired.",
		func() float64 {
			g := s.rt.Stats().Graph
			if g.Finished > g.Submitted {
				return 0
			}
			return float64(g.Submitted - g.Finished)
		})
	reg.GaugeFunc("ompss_dep_records",
		"Live dependence records across the tracker's shards.",
		func() float64 { d, _ := s.rt.DepRecords(); return float64(d) },
		metrics.Label{Key: "kind", Value: "datum"})
	reg.GaugeFunc("ompss_dep_records",
		"", // HELP rendered once per family
		func() float64 { _, r := s.rt.DepRecords(); return float64(r) },
		metrics.Label{Key: "kind", Value: "region"})
	reg.GaugeFunc("ompss_steal_failure_rate",
		"Fraction of victim probes that found nothing to steal.",
		func() float64 {
			sc := s.rt.Stats().Sched
			if sc.StealTries == 0 {
				return 0
			}
			return 1 - float64(sc.Steals)/float64(sc.StealTries)
		})

	// Setpoint gauges exist only when the runtime actually runs a feedback
	// controller — exposing static defaults as "setpoints" would misread as
	// tuning activity.
	if _, ok := s.rt.TuneSetpoints(); ok {
		reg.GaugeFunc("ompss_tune_grain_target_ns",
			"Tune controller setpoint: TaskLoop auto-chunk execution-time target.",
			func() float64 { sp, _ := s.rt.TuneSetpoints(); return float64(sp.GrainTargetNS) })
		reg.GaugeFunc("ompss_tune_spin_yields",
			"Tune controller setpoint: idle yields before a polling worker sleeps.",
			func() float64 { sp, _ := s.rt.TuneSetpoints(); return float64(sp.SpinYields) })
		reg.GaugeFunc("ompss_tune_sleep_cap_ns",
			"Tune controller setpoint: idle sleep growth cap.",
			func() float64 { sp, _ := s.rt.TuneSetpoints(); return float64(sp.SleepCapNS) })
		reg.GaugeFunc("ompss_tune_rename_cap",
			"Tune controller setpoint: live renamed instances allowed per version chain.",
			func() float64 { sp, _ := s.rt.TuneSetpoints(); return float64(sp.RenameCap) })
	}
}

// handleMetrics is the Prometheus scrape endpoint.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
