package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"
)

// The load generator is the serving counterpart of the bench harness: it
// drives the kernel endpoints with concurrent closed-loop clients for a
// fixed duration and folds the outcome into a ServeReport — request latency
// percentiles (p50/p90/p99), request and task throughput, and the isolation
// violation count — the numbers BENCH_serve.json and EXPERIMENTS.md record.

// LoadOptions parameterizes one load run.
type LoadOptions struct {
	// Duration is how long the clients run (default 2s).
	Duration time.Duration
	// Conc is the number of closed-loop clients (default 4). Each issues
	// its next request as soon as the previous one answers.
	Conc int
	// Mix is the endpoint cycle each client walks (default rotate, rgbcmy,
	// h264dec). Entries are paths ("/v1/rotate").
	Mix []string
	// FaultEvery injects a /v1/fault request every Nth request per client
	// (0 = none): the isolation stressor.
	FaultEvery int
	// Tenants is cycled across clients as the X-Tenant header (default
	// gold/silver/bronze).
	Tenants []string
	// Target, when non-empty, load-tests a remote server at this base URL
	// over real HTTP instead of invoking the handler in-process.
	Target string
}

// EndpointLoad is the per-endpoint latency breakdown.
type EndpointLoad struct {
	Path     string `json:"path"`
	Requests int64  `json:"requests"`
	OK       int64  `json:"ok"`
	P50NS    int64  `json:"p50_ns"`
	P99NS    int64  `json:"p99_ns"`
}

// ServeReport is the BENCH_serve.json document.
type ServeReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Workers         int   `json:"workers"`
	SessionInFlight int   `json:"session_inflight"`
	GlobalInFlight  int   `json:"global_inflight"`
	Conc            int   `json:"conc"`
	DurationNS      int64 `json:"duration_ns"`

	Requests   int64  `json:"requests"`
	OK2xx      int64  `json:"ok_2xx"`
	Faults5xx  int64  `json:"faults_5xx"` // deliberate /v1/fault responses
	Errors     int64  `json:"errors"`     // unexpected non-2xx / transport errors
	Violations uint64 `json:"violations"`

	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`

	TasksFinished  uint64  `json:"tasks_finished"`
	TasksPerSec    float64 `json:"tasks_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`

	PerEndpoint []EndpointLoad `json:"per_endpoint"`
}

// sample is one client-side request measurement.
type sample struct {
	path string
	ns   int64
	code int
	err  error
}

// RunLoad drives srv with opts and returns the report. workers and
// globalInFlight are recorded in the report for provenance (the server's
// runtime already embodies them).
func RunLoad(srv *Server, opts LoadOptions, workers, globalInFlight int) *ServeReport {
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Second
	}
	if opts.Conc <= 0 {
		opts.Conc = 4
	}
	if len(opts.Mix) == 0 {
		opts.Mix = []string{"/v1/rotate", "/v1/rgbcmy", "/v1/h264dec"}
	}
	if len(opts.Tenants) == 0 {
		opts.Tenants = []string{"gold", "silver", "bronze"}
	}

	tasks0 := srv.TasksFinished()
	deadline := time.Now().Add(opts.Duration)
	results := make([][]sample, opts.Conc)
	done := make(chan int, opts.Conc)
	start := time.Now()
	for c := 0; c < opts.Conc; c++ {
		c := c
		go func() {
			var out []sample
			tenant := opts.Tenants[c%len(opts.Tenants)]
			for i := 0; time.Now().Before(deadline); i++ {
				path := opts.Mix[(c+i)%len(opts.Mix)]
				if opts.FaultEvery > 0 && i%opts.FaultEvery == opts.FaultEvery-1 {
					path = "/v1/fault"
				}
				out = append(out, issue(srv, opts.Target, path, tenant))
			}
			results[c] = out
			done <- c
		}()
	}
	for c := 0; c < opts.Conc; c++ {
		<-done
	}
	elapsed := time.Since(start)

	rep := &ServeReport{
		Schema:          "ompssgo/bench-serve/v1",
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		Workers:         workers,
		SessionInFlight: srv.cfg.SessionInFlight,
		GlobalInFlight:  globalInFlight,
		Conc:            opts.Conc,
		DurationNS:      elapsed.Nanoseconds(),
		Violations:      srv.Violations(),
	}
	var all []int64
	perPath := map[string][]int64{}
	perOK := map[string]int64{}
	for _, rs := range results {
		for _, smp := range rs {
			rep.Requests++
			switch {
			case smp.err != nil:
				rep.Errors++
			case smp.code == http.StatusOK:
				rep.OK2xx++
				perOK[smp.path]++
			case smp.path == "/v1/fault":
				rep.Faults5xx++
			default:
				rep.Errors++
			}
			all = append(all, smp.ns)
			perPath[smp.path] = append(perPath[smp.path], smp.ns)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50NS = percentile(all, 0.50)
	rep.P90NS = percentile(all, 0.90)
	rep.P99NS = percentile(all, 0.99)
	if n := len(all); n > 0 {
		rep.MaxNS = all[n-1]
	}
	rep.TasksFinished = srv.TasksFinished() - tasks0
	secs := elapsed.Seconds()
	if secs > 0 {
		rep.TasksPerSec = float64(rep.TasksFinished) / secs
		rep.RequestsPerSec = float64(rep.Requests) / secs
	}
	var paths []string
	for p := range perPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		ns := perPath[p]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		rep.PerEndpoint = append(rep.PerEndpoint, EndpointLoad{
			Path:     p,
			Requests: int64(len(ns)),
			OK:       perOK[p],
			P50NS:    percentile(ns, 0.50),
			P99NS:    percentile(ns, 0.99),
		})
	}
	return rep
}

// issue performs one request: in-process through the handler (the default —
// no sockets, so the measurement isolates runtime behavior from the network
// stack) or over HTTP when target is set.
func issue(srv *Server, target, path, tenant string) sample {
	start := time.Now()
	if target == "" {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.Header.Set("X-Tenant", tenant)
		rw := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rw, req)
		return sample{path: path, ns: time.Since(start).Nanoseconds(), code: rw.Code}
	}
	req, err := http.NewRequest(http.MethodGet, target+path, nil)
	if err != nil {
		return sample{path: path, ns: time.Since(start).Nanoseconds(), err: err}
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return sample{path: path, ns: time.Since(start).Nanoseconds(), err: err}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{path: path, ns: time.Since(start).Nanoseconds(), code: resp.StatusCode}
}

// percentile returns the q-quantile of a sorted sample (nearest-rank).
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteJSON serializes the report (stable field order, trailing newline).
func (r *ServeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as an aligned summary table.
func (r *ServeReport) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "serve load: %d clients x %v  workers=%d session-inflight=%d global-inflight=%d\n",
		r.Conc, time.Duration(r.DurationNS).Round(time.Millisecond), r.Workers, r.SessionInFlight, r.GlobalInFlight)
	fmt.Fprintf(w, "  requests %d (%.0f/s)  2xx=%d fault-5xx=%d errors=%d violations=%d\n",
		r.Requests, r.RequestsPerSec, r.OK2xx, r.Faults5xx, r.Errors, r.Violations)
	fmt.Fprintf(w, "  latency p50=%v p90=%v p99=%v max=%v\n",
		time.Duration(r.P50NS), time.Duration(r.P90NS), time.Duration(r.P99NS), time.Duration(r.MaxNS))
	fmt.Fprintf(w, "  tasks %d (%.0f/s)\n", r.TasksFinished, r.TasksPerSec)
	for _, e := range r.PerEndpoint {
		fmt.Fprintf(w, "  %-12s %6d req %6d ok  p50=%-10v p99=%v\n",
			e.Path, e.Requests, e.OK, time.Duration(e.P50NS), time.Duration(e.P99NS))
	}
}
