package serve

// Metrics-plane tests: scrape GET /metrics after known traffic and check
// the exposition parses and the per-tenant series moved by exactly the
// requests sent.

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ompssgo/ompss"
)

// scrape fetches /metrics and parses the text exposition into a
// series->value map keyed by the full sample name including labels, e.g.
// `ompss_requests_total{tenant="gold"}`. Comment lines are type-checked
// minimally (# HELP / # TYPE only).
func scrape(t *testing.T, srv *Server) map[string]float64 {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: Content-Type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("/metrics: unparseable comment line %q", line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("/metrics: unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("/metrics: bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndpoint drives mixed gold/bronze traffic plus one fault and
// asserts the scrape reflects it: per-tenant request counters move by the
// exact request counts, latency histograms record every request, the tune
// setpoint gauges are present (the runtime runs feedback loops), and the
// runtime gauges are sane.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, ompss.Workers(2),
		ompss.WithTuning(ompss.Tuning{Grain: ompss.Auto, StealBackoff: ompss.Auto}))

	const gold, bronze = 3, 2
	for i := 0; i < gold; i++ {
		if rec, _ := do(t, srv, "/v1/rotate", "gold"); rec.Code != http.StatusOK {
			t.Fatalf("gold request %d: status %d", i, rec.Code)
		}
	}
	for i := 0; i < bronze; i++ {
		if rec, _ := do(t, srv, "/v1/rgbcmy", ""); rec.Code != http.StatusOK {
			t.Fatalf("bronze request %d: status %d", i, rec.Code)
		}
	}
	do(t, srv, "/v1/fault", "silver") // answers 500 by design

	m := scrape(t, srv)
	checks := []struct {
		series string
		want   float64
	}{
		{`ompss_requests_total{tenant="gold"}`, gold},
		{`ompss_requests_total{tenant="bronze"}`, bronze},
		{`ompss_requests_total{tenant="silver"}`, 0},
		{`ompss_violations_total{tenant="gold"}`, 0},
		{`ompss_violations_total{tenant="bronze"}`, 0},
		{`ompss_faults_total{tenant="silver"}`, 1},
		{`ompss_rejections_total{tenant="gold"}`, 0},
		{`ompss_request_seconds_count{tenant="gold"}`, gold},
		{`ompss_request_seconds_count{tenant="bronze"}`, bronze},
		{`ompss_sessions_live`, 0},
		{`ompss_trace_dropped_events_total`, 0},
	}
	for _, c := range checks {
		got, ok := m[c.series]
		if !ok {
			t.Fatalf("scrape is missing %s", c.series)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.series, got, c.want)
		}
	}

	// Latency sums are positive once requests ran.
	if m[`ompss_request_seconds_sum{tenant="gold"}`] <= 0 {
		t.Errorf("gold latency sum = %v, want > 0", m[`ompss_request_seconds_sum{tenant="gold"}`])
	}
	// The histogram's +Inf bucket equals its count.
	if inf := m[`ompss_request_seconds_bucket{tenant="gold",le="+Inf"}`]; inf != gold {
		t.Errorf("gold +Inf bucket = %v, want %v", inf, gold)
	}

	// Tasks ran through the shared graph; nothing should still be in flight
	// after the sessions closed.
	if m[`ompss_tasks_finished_total`] <= 0 {
		t.Errorf("tasks_finished_total = %v, want > 0", m[`ompss_tasks_finished_total`])
	}
	if m[`ompss_tasks_in_flight`] != 0 {
		t.Errorf("tasks_in_flight = %v after drain", m[`ompss_tasks_in_flight`])
	}

	// The runtime was built with feedback loops armed: setpoint gauges exist.
	for _, g := range []string{
		"ompss_tune_grain_target_ns", "ompss_tune_spin_yields",
		"ompss_tune_sleep_cap_ns", "ompss_tune_rename_cap",
	} {
		if _, ok := m[g]; !ok {
			t.Errorf("scrape is missing tune gauge %s", g)
		}
	}
}

// TestMetricsNoTuneGauges pins the conditional: a runtime on static
// defaults exposes no setpoint gauges (a constant would misread as tuning
// activity).
func TestMetricsNoTuneGauges(t *testing.T) {
	srv, _ := newTestServer(t)
	m := scrape(t, srv)
	if _, ok := m["ompss_tune_grain_target_ns"]; ok {
		t.Fatalf("untuned runtime exposes ompss_tune_grain_target_ns")
	}
	if _, ok := m["ompss_requests_total{tenant=\"gold\"}"]; !ok {
		t.Fatalf("request counters missing from scrape")
	}
}

// TestMetricsRejections checks the draining path books its 503s per tenant.
func TestMetricsRejections(t *testing.T) {
	srv, _ := newTestServer(t)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/rotate", nil)
	req.Header.Set("X-Tenant", "gold")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d", rec.Code)
	}
	m := scrape(t, srv)
	if got := m[`ompss_rejections_total{tenant="gold"}`]; got != 1 {
		t.Fatalf(`rejections_total{tenant="gold"} = %v, want 1`, got)
	}
	if got := m[`ompss_requests_total{tenant="gold"}`]; got != 0 {
		t.Fatalf("rejected request still counted as admitted: %v", got)
	}
}
