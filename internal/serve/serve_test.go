package serve

// Server tests: per-endpoint correctness against the sequential reference,
// the deliberate-fault endpoint's containment accounting, concurrent
// mixed-tenant traffic with fault injection (zero violations is the
// isolation contract), and a short in-process load-generator run.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ompssgo/ompss"
)

func newTestServer(t *testing.T, opts ...ompss.Option) (*Server, *ompss.Runtime) {
	t.Helper()
	if len(opts) == 0 {
		opts = []ompss.Option{ompss.Workers(2)}
	}
	rt := ompss.New(opts...)
	t.Cleanup(rt.Shutdown)
	return New(rt, Config{SessionInFlight: 64, Admission: ompss.BlockOnFull}), rt
}

func do(t *testing.T, srv *Server, path, tenant string) (*httptest.ResponseRecorder, Response) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s: bad response body %q: %v", path, rec.Body.String(), err)
	}
	return rec, resp
}

// TestKernelEndpoints checks every kernel endpoint answers 200 with the
// sequential-reference checksum and a fresh session per request.
func TestKernelEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)
	seen := map[uint64]bool{}
	for _, path := range []string{"/v1/rotate", "/v1/rgbcmy", "/v1/h264dec"} {
		rec, resp := do(t, srv, path, "gold")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", path, rec.Code, rec.Body.String())
		}
		if resp.Error != "" || resp.Skipped != 0 {
			t.Fatalf("%s: error %q skipped %d", path, resp.Error, resp.Skipped)
		}
		if resp.Tasks == 0 {
			t.Fatalf("%s: response reports zero tasks", path)
		}
		if resp.Tenant != 2 {
			t.Fatalf("%s: gold request mapped to tenant class %d, want 2", path, resp.Tenant)
		}
		if seen[resp.Session] {
			t.Fatalf("%s: session ID %d reused across requests", path, resp.Session)
		}
		seen[resp.Session] = true
	}
	if srv.Served() != 3 || srv.Violations() != 0 {
		t.Fatalf("served=%d violations=%d, want 3 0", srv.Served(), srv.Violations())
	}
}

// TestRepeatedRequestsRecycle checks determinism across many sequential
// requests on one endpoint — each request re-derives the same checksum
// after the previous session's arena recycled.
func TestRepeatedRequestsRecycle(t *testing.T) {
	srv, _ := newTestServer(t)
	var sum string
	for i := 0; i < 8; i++ {
		rec, resp := do(t, srv, "/v1/rgbcmy", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, rec.Code, rec.Body.String())
		}
		if i == 0 {
			sum = resp.Checksum
		} else if resp.Checksum != sum {
			t.Fatalf("request %d: checksum %s, first request said %s", i, resp.Checksum, sum)
		}
	}
}

// TestFaultEndpoint checks the deliberate-failure endpoint: 500, the
// injected error in the body, the skip cascade contained to the request's
// session, and no violation counted.
func TestFaultEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	rec, resp := do(t, srv, "/v1/fault", "bronze")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("fault status %d, want 500", rec.Code)
	}
	if !strings.Contains(resp.Error, "injected fault") {
		t.Fatalf("fault error %q does not carry the injected failure", resp.Error)
	}
	if resp.Skipped != 4 {
		t.Fatalf("fault skipped %d tasks, want the 4 dependents", resp.Skipped)
	}
	if srv.Faulted() != 1 || srv.Violations() != 0 {
		t.Fatalf("faulted=%d violations=%d, want 1 0", srv.Faulted(), srv.Violations())
	}
	// The runtime stays healthy for the next request.
	if rec, _ := do(t, srv, "/v1/rotate", ""); rec.Code != http.StatusOK {
		t.Fatalf("request after fault: status %d", rec.Code)
	}
}

// TestConcurrentMixedTraffic is the isolation contract end to end:
// concurrent clients across all endpoints and tenant classes, with fault
// requests interleaved, must produce zero violations and all-correct
// kernel responses.
func TestConcurrentMixedTraffic(t *testing.T) {
	srv, _ := newTestServer(t, ompss.Workers(4))
	paths := []string{"/v1/rotate", "/v1/rgbcmy", "/v1/h264dec"}
	tenants := []string{"gold", "silver", "bronze"}
	const clients = 6
	const perClient = 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				path := paths[(c+i)%len(paths)]
				if i == perClient/2 {
					path = "/v1/fault"
				}
				rec, resp := do(t, srv, path, tenants[c%len(tenants)])
				if path == "/v1/fault" {
					if rec.Code != http.StatusInternalServerError {
						t.Errorf("client %d: fault status %d", c, rec.Code)
					}
					continue
				}
				if rec.Code != http.StatusOK {
					t.Errorf("client %d %s: status %d error %q", c, path, rec.Code, resp.Error)
				}
			}
		}()
	}
	wg.Wait()
	if v := srv.Violations(); v != 0 {
		t.Fatalf("%d isolation violations under mixed traffic", v)
	}
	if srv.Served() != clients*(perClient-1) || srv.Faulted() != clients {
		t.Fatalf("served=%d faulted=%d, want %d %d",
			srv.Served(), srv.Faulted(), clients*(perClient-1), clients)
	}
}

// TestStatsAndHealth checks the operational endpoints.
func TestStatsAndHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	do(t, srv, "/v1/rotate", "")

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var st statsBody
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	if st.Served != 1 || st.TasksFinished == 0 {
		t.Fatalf("stats %+v, want served=1 and nonzero tasks", st)
	}
}

// TestRunLoadSmoke runs the in-process load generator briefly and checks
// the report invariants the CI smoke job gates on.
func TestRunLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke needs wall-clock time")
	}
	srv, _ := newTestServer(t)
	// FaultEvery=2 faults each client's second request: under -race a
	// client may only complete a handful of requests in the window, and
	// the fault leg must still fire.
	rep := RunLoad(srv, LoadOptions{
		Duration:   500 * time.Millisecond,
		Conc:       3,
		Mix:        []string{"/v1/rotate", "/v1/rgbcmy"},
		FaultEvery: 2,
	}, 2, 0)
	if rep.OK2xx == 0 {
		t.Fatal("load run produced no successful responses")
	}
	if rep.Violations != 0 {
		t.Fatalf("load run observed %d violations", rep.Violations)
	}
	if rep.Faults5xx == 0 {
		t.Fatal("fault injection produced no 5xx")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d transport errors in-process", rep.Errors)
	}
	if rep.P50NS <= 0 || rep.P99NS < rep.P50NS {
		t.Fatalf("latency percentiles implausible: p50=%d p99=%d", rep.P50NS, rep.P99NS)
	}
	if rep.TasksPerSec <= 0 {
		t.Fatalf("tasks/s = %v, want > 0", rep.TasksPerSec)
	}
	if len(rep.PerEndpoint) != 3 { // the two mix endpoints plus /v1/fault
		t.Fatalf("per-endpoint rows = %d, want 3", len(rep.PerEndpoint))
	}
}

// TestDrain pins the graceful-shutdown contract: Drain flips admission off
// (new session-bearing requests answer 503 with a Retry-After derived from
// the remaining drain budget), waits for the live session to finish, and
// returns nil once the server is quiescent. A deadline that expires while a
// session is live returns the context error without abandoning the count.
func TestDrain(t *testing.T) {
	srv, _ := newTestServer(t)

	// A live "session": admission taken directly, as a handler would.
	if !srv.beginRequest() {
		t.Fatal("beginRequest refused before any drain")
	}

	// Drain in the background with an 8s budget; it must block on the live
	// session (and returns well before the deadline once it ends below).
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer drainCancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(drainCtx) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// While draining, kernel and fault endpoints refuse with 503 and a
	// Retry-After hint no longer than the drain budget itself.
	req := httptest.NewRequest(http.MethodGet, "/v1/rotate", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining kernel request: status %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("draining 503 Retry-After %q: %v", rec.Header().Get("Retry-After"), err)
	}
	if ra < 1 || ra > 8 {
		t.Fatalf("Retry-After = %d, want within the 8s drain budget", ra)
	}
	// A drain budget beyond the cap clamps to maxRetryAfter.
	srv.liveMu.Lock()
	srv.drainDeadline = time.Now().Add(10 * time.Minute)
	srv.liveMu.Unlock()
	if got, want := srv.retryAfter(), int(maxRetryAfter/time.Second); got != want {
		t.Fatalf("Retry-After for a 10m budget = %d, want capped at %d", got, want)
	}
	srv.liveMu.Lock()
	srv.drainDeadline = time.Time{}
	srv.liveMu.Unlock()
	if got := srv.retryAfter(); got != 1 {
		t.Fatalf("Retry-After for an unbounded drain = %d, want the 1s floor", got)
	}
	// Health stays up for liveness probes.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("draining health check: status %d, want 200", rec.Code)
	}

	// A second Drain with an expired deadline reports the live session.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(expired); err == nil {
		t.Fatal("Drain with cancelled ctx and a live session returned nil")
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a session still live", err)
	case <-time.After(20 * time.Millisecond):
	}

	srv.endRequest()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain after last session ended: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after the last session ended")
	}
}

// soak gates the session-churn soak: thousands of request sessions are
// slow under -race, so the leg only runs when asked for explicitly
// (make soak / the CI dist-smoke job).
var soak = flag.Bool("soak", false, "run the session-churn soak")

// TestSoakSessionChurn is the arena-leak probe: after a burst of
// session-per-request churn (kernels and faults, concurrently), the
// runtime's live dependence records must return to the pre-churn baseline —
// request sessions release their arenas at Close, so sustained serving
// cannot grow the tracker.
func TestSoakSessionChurn(t *testing.T) {
	if !*soak {
		t.Skip("session-churn soak; run with -soak")
	}
	srv, rt := newTestServer(t)

	// Baseline after one warm-up request (the reference cache and any
	// lazily-built shard state must not count as a leak).
	if rec, _ := do(t, srv, "/v1/rotate", ""); rec.Code != http.StatusOK {
		t.Fatalf("warm-up: status %d", rec.Code)
	}
	baseDatums, baseRegions := rt.DepRecords()

	const clients, perClient = 4, 60
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/v1/rotate", "/v1/rgbcmy", "/v1/h264dec", "/v1/fault"}
			tenants := []string{"gold", "silver", "bronze"}
			for i := 0; i < perClient; i++ {
				path := paths[(c+i)%len(paths)]
				req := httptest.NewRequest(http.MethodGet, path, nil)
				req.Header.Set("X-Tenant", tenants[i%len(tenants)])
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, req)
				wantFault := path == "/v1/fault"
				if wantFault && rec.Code != http.StatusInternalServerError {
					panic(fmt.Sprintf("fault request: status %d", rec.Code))
				}
				if !wantFault && rec.Code != http.StatusOK {
					panic(fmt.Sprintf("%s: status %d body %s", path, rec.Code, rec.Body.String()))
				}
			}
		}()
	}
	wg.Wait()

	if v := srv.Violations(); v != 0 {
		t.Fatalf("soak observed %d isolation violations", v)
	}
	datums, regions := rt.DepRecords()
	if datums != baseDatums || regions != baseRegions {
		t.Fatalf("dependence records grew across churn: baseline (%d datums, %d regions), after (%d, %d)",
			baseDatums, baseRegions, datums, regions)
	}
	t.Logf("soak: %d sessions churned, records steady at (%d datums, %d regions)",
		clients*perClient+1, datums, regions)
}
