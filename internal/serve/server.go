// Package serve hosts the suite's media kernels as a long-lived multi-tenant
// HTTP service on one shared ompss.Runtime — "OmpSs as a server". Every
// request opens its own ompss.Session (error domain, tenant class, admission
// budget, request-scoped arena), runs one kernel through the same RunOmpSs
// body the batch harness measures, verifies the result against a cached
// sequential reference, and closes the session. The checksum check doubles
// as the isolation oracle: a foreign failure cascade, a leaked cancellation,
// or a recycled-record mixup shows up as a wrong answer or a nonzero skip
// count in an innocent request, which the server counts as a violation.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ompssgo/internal/obs"
	"ompssgo/internal/obs/metrics"
	"ompssgo/internal/suite"
	"ompssgo/internal/suite/h264dec"
	"ompssgo/internal/suite/rgbcmy"
	"ompssgo/internal/suite/rotate"
	"ompssgo/ompss"
)

// Config parameterizes the server's session policy.
type Config struct {
	// SessionInFlight is the per-request-session MaxInFlight budget
	// (0 = unlimited).
	SessionInFlight int
	// Admission selects the full-budget behavior of request sessions.
	Admission ompss.AdmissionMode
	// Recorder is the trace recorder the hosting runtime was built with
	// (ompss.Observe), if any. The metrics plane reads its ring-drop count
	// and leaves the engine's probe seam to it; when nil, the server claims
	// the dependence-tracker probe for its own counters.
	Recorder *obs.Recorder
}

// Runner produces a fresh benchmark instance per request (request-private
// data: sessions drop their dependence records at Close, so instances are
// never shared across sessions) plus the workload's sequential reference.
type Runner struct {
	Name string
	New  func() suite.Instance
}

// Server is the HTTP front end over one shared runtime.
type Server struct {
	rt  *ompss.Runtime
	cfg Config
	mux *http.ServeMux

	served     atomic.Uint64 // 2xx responses
	faulted    atomic.Uint64 // deliberate /v1/fault 5xx responses
	violations atomic.Uint64 // checksum mismatches / unexpected skips

	// Live metrics plane (metrics.go): the registry behind GET /metrics and
	// the per-tenant-class series the request path increments.
	reg     *metrics.Registry
	tenants [3]tenantSeries

	mu      sync.Mutex
	refs    map[string]uint64 // endpoint -> cached RunSeq checksum
	runners map[string]Runner

	// Drain state: liveMu guards these fields so admission and Drain agree
	// on the draining flag and the live-session count atomically.
	liveMu        sync.Mutex
	liveCond      *sync.Cond
	liveN         int
	draining      bool
	drainDeadline time.Time // Drain ctx's deadline, zero if unbounded
}

// Workloads served per endpoint: sized between the suite's Small (too tiny
// to exercise concurrency) and Default (too slow for request latency) —
// a few milliseconds of task work per request.
func serveRotate() rotate.Workload {
	return rotate.Workload{W: 256, H: 192, Angle: 0.5, Seed: 4, RowBlock: 16}
}

func serveRGBCMY() rgbcmy.Workload {
	return rgbcmy.Workload{W: 160, H: 120, Iters: 12, Seed: 5, RowBlock: 15}
}

func serveH264() h264dec.Workload { return h264dec.Small() }

// New builds a Server over rt. The runtime is shared and long-lived; the
// caller owns its lifecycle (Shutdown after the listener stops).
func New(rt *ompss.Runtime, cfg Config) *Server {
	s := &Server{
		rt:      rt,
		cfg:     cfg,
		mux:     http.NewServeMux(),
		refs:    make(map[string]uint64),
		runners: make(map[string]Runner),
	}
	// The h264 bitstream is encoded once (expensive) and re-parsed per
	// request (cheap): the per-request instance owns only decode state.
	h264w := serveH264()
	h264bs := h264Stream(h264w)
	s.register("/v1/rotate", Runner{Name: "rotate", New: func() suite.Instance {
		return rotate.New(serveRotate())
	}})
	s.register("/v1/rgbcmy", Runner{Name: "rgbcmy", New: func() suite.Instance {
		return rgbcmy.New(serveRGBCMY())
	}})
	s.register("/v1/h264dec", Runner{Name: "h264dec", New: func() suite.Instance {
		return h264dec.NewFromStream(h264w, h264bs)
	}})
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/fault", s.handleFault)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.liveCond = sync.NewCond(&s.liveMu)
	s.initMetrics()
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// h264Stream encodes the serving sequence once.
func h264Stream(w h264dec.Workload) []byte {
	return h264dec.New(w).Stream()
}

func (s *Server) register(path string, r Runner) {
	s.runners[path] = r
	s.mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
		s.handleKernel(w, req, path)
	})
}

// Handler returns the server's HTTP handler (also usable in-process — the
// load generator drives it without a listener).
func (s *Server) Handler() http.Handler { return s.mux }

// beginRequest admits one session-bearing request. It returns false once
// the server is draining — the caller answers 503 and opens no session.
func (s *Server) beginRequest() bool {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if s.draining {
		return false
	}
	s.liveN++
	return true
}

func (s *Server) endRequest() {
	s.liveMu.Lock()
	s.liveN--
	if s.liveN == 0 {
		s.liveCond.Broadcast()
	}
	s.liveMu.Unlock()
}

// Draining reports whether the server has stopped admitting new sessions.
func (s *Server) Draining() bool {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return s.draining
}

// Drain flips the server into draining mode — new session-bearing requests
// answer 503 immediately — and waits for every live session to finish.
// It returns nil when the server is quiescent, or ctx's error if the
// deadline expires first (live sessions keep running; the caller decides
// whether to hard-stop). Idempotent: a second Drain just waits.
func (s *Server) Drain(ctx context.Context) error {
	s.liveMu.Lock()
	s.draining = true
	if dl, ok := ctx.Deadline(); ok {
		s.drainDeadline = dl
	}
	s.liveMu.Unlock()

	// The cond has no deadline-aware wait; a watcher converts ctx expiry
	// into a broadcast so the wait loop can re-check and bail.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			s.liveCond.Broadcast()
		case <-done:
		}
	}()

	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	for s.liveN > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("drain: %d sessions still live: %w", s.liveN, err)
		}
		s.liveCond.Wait()
	}
	return nil
}

// Served returns the number of 2xx kernel responses so far.
func (s *Server) Served() uint64 { return s.served.Load() }

// Faulted returns the number of deliberate /v1/fault failures so far.
func (s *Server) Faulted() uint64 { return s.faulted.Load() }

// Violations returns the number of isolation violations observed so far: a
// kernel response whose checksum diverged from the sequential reference, or
// a healthy request session that finished with skipped tasks (a skip can
// only be induced by a failure or cancellation, and a healthy session has
// neither — so any skip means another session's cascade leaked in).
func (s *Server) Violations() uint64 { return s.violations.Load() }

// TasksFinished returns the shared graph's finished-task count (all
// sessions), for throughput accounting.
func (s *Server) TasksFinished() uint64 { return s.rt.Stats().Graph.Finished }

// Response is the JSON body of a kernel endpoint.
type Response struct {
	Bench     string `json:"bench"`
	Session   uint64 `json:"session"`
	Tenant    int    `json:"tenant"`
	Checksum  string `json:"checksum"`
	Tasks     uint64 `json:"tasks"`
	Skipped   uint64 `json:"skipped"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Error     string `json:"error,omitempty"`
}

// tenantClass maps the X-Tenant header onto the scheduler's priority lanes.
func tenantClass(h string) int {
	switch h {
	case "gold":
		return 2
	case "silver":
		return 1
	default:
		return 0
	}
}

// reference returns the endpoint's sequential-reference checksum, computed
// once (the workloads are deterministic, so every request instance must
// reproduce it).
func (s *Server) reference(path string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if want, ok := s.refs[path]; ok {
		return want
	}
	want := s.runners[path].New().RunSeq()
	s.refs[path] = want
	return want
}

func (s *Server) sessionOpts(tenant int) []ompss.Option {
	opts := []ompss.Option{ompss.Tenant(tenant), ompss.Admission(s.cfg.Admission)}
	if s.cfg.SessionInFlight > 0 {
		opts = append(opts, ompss.MaxInFlight(s.cfg.SessionInFlight))
	}
	return opts
}

func (s *Server) handleKernel(w http.ResponseWriter, req *http.Request, path string) {
	tenant := tenantClass(req.Header.Get("X-Tenant"))
	if !s.beginRequest() {
		s.tenants[tenant].rejections.Inc()
		s.writeUnavailable(w)
		return
	}
	defer s.endRequest()
	s.tenants[tenant].requests.Inc()
	r := s.runners[path]
	want := s.reference(path)
	in := r.New()

	sess := s.rt.NewSession(s.sessionOpts(tenant)...)
	start := time.Now()
	got := in.RunOmpSs(sess)
	err := sess.Close()
	elapsed := time.Since(start)
	st := sess.Stats()
	s.tenants[tenant].latency.Observe(elapsed.Nanoseconds())

	resp := Response{
		Bench:     r.Name,
		Session:   sess.ID(),
		Tenant:    tenant,
		Checksum:  fmt.Sprintf("%#x", got),
		Tasks:     st.Finished,
		Skipped:   st.Skipped,
		ElapsedNS: elapsed.Nanoseconds(),
	}
	switch {
	case got != want:
		s.violations.Add(1)
		s.tenants[tenant].violations.Inc()
		resp.Error = fmt.Sprintf("isolation violation: checksum %#x, reference %#x", got, want)
		writeJSON(w, http.StatusInternalServerError, resp)
	case err != nil || st.Skipped > 0:
		s.violations.Add(1)
		s.tenants[tenant].violations.Inc()
		resp.Error = fmt.Sprintf("isolation violation: healthy session closed with err=%v skipped=%d", err, st.Skipped)
		writeJSON(w, http.StatusInternalServerError, resp)
	default:
		s.served.Add(1)
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleFault is the deliberate-failure endpoint: a small dependence chain
// whose head fails, so the session's SkipDependents cascade skips the rest.
// The request answers 500 by design — concurrent kernel requests returning
// correct checksums while this endpoint fires is the isolation demo.
func (s *Server) handleFault(w http.ResponseWriter, req *http.Request) {
	tenant := tenantClass(req.Header.Get("X-Tenant"))
	if !s.beginRequest() {
		s.tenants[tenant].rejections.Inc()
		s.writeUnavailable(w)
		return
	}
	defer s.endRequest()
	s.tenants[tenant].faults.Inc()
	sess := s.rt.NewSession(s.sessionOpts(tenant)...)
	start := time.Now()
	var x int
	sess.Go(func(*ompss.TC) error {
		return fmt.Errorf("injected fault")
	}, ompss.Out(&x), ompss.Label("fault-head"))
	for i := 0; i < 4; i++ {
		sess.Task(func(*ompss.TC) { x++ }, ompss.InOut(&x), ompss.Label("fault-dep"))
	}
	// TaskwaitCtx drains the session and reports the round's failure (a
	// plain Taskwait would consume the round and leave Close nothing to
	// return); Close then recycles a clean session.
	err := sess.TaskwaitCtx(context.Background())
	sess.Close()
	st := sess.Stats()
	s.faulted.Add(1)
	writeJSON(w, http.StatusInternalServerError, Response{
		Bench:     "fault",
		Session:   sess.ID(),
		Tenant:    tenant,
		Tasks:     st.Finished,
		Skipped:   st.Skipped,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Error:     fmt.Sprintf("%v", err),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsBody is the /v1/stats JSON document.
type statsBody struct {
	Served        uint64 `json:"served"`
	Faulted       uint64 `json:"faulted"`
	Violations    uint64 `json:"violations"`
	TasksFinished uint64 `json:"tasks_finished"`
	Steals        uint64 `json:"steals"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.rt.Stats()
	writeJSON(w, http.StatusOK, statsBody{
		Served:        s.served.Load(),
		Faulted:       s.faulted.Load(),
		Violations:    s.violations.Load(),
		TasksFinished: st.Graph.Finished,
		Steals:        st.Sched.Steals,
	})
}

// maxRetryAfter caps the drain-derived Retry-After hint: past this, a load
// balancer should have moved on to another instance anyway.
const maxRetryAfter = 30 * time.Second

// retryAfter derives the 503 Retry-After hint from the drain budget: the
// seconds left until Drain's deadline (rounded up, capped), after which the
// server is either quiescent or being hard-stopped — either way, retrying
// here sooner is pointless. An unbounded drain keeps the 1s floor.
func (s *Server) retryAfter() int {
	s.liveMu.Lock()
	dl := s.drainDeadline
	s.liveMu.Unlock()
	if dl.IsZero() {
		return 1
	}
	rem := time.Until(dl)
	if rem > maxRetryAfter {
		rem = maxRetryAfter
	}
	secs := int((rem + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeUnavailable is the draining answer: 503 with a Retry-After so load
// balancers and polite clients move on without treating it as a fault.
func (s *Server) writeUnavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfter()))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
