// Package bodytrack reimplements the PARSEC bodytrack workload in
// miniature: an annealed particle filter tracking an articulated 2-D "stick
// figure" through a sequence of binary silhouette images. The observation
// images are synthesized from a known ground-truth pose sequence (the
// substitution for PARSEC's multi-camera video, see DESIGN.md §1), so
// tracking quality is measurable. The parallel structure matches the
// original: per annealing layer, the particle likelihood evaluations
// partition across threads, followed by a barrier and a sequential resample.
package bodytrack

import (
	"math"
	"math/rand"
	"time"

	"ompssgo/internal/img"
)

// DOF is the pose dimensionality: torso x, y, torso angle, and five limb
// angles.
const DOF = 8

// Model describes the articulated figure geometry.
type Model struct {
	W, H      int     // image dimensions
	TorsoLen  float64 // torso segment length in pixels
	LimbLen   float64 // limb segment length
	Samples   int     // sample points per segment for the likelihood
	Particles int
	Layers    int // annealing layers per frame
	Seed      int64
}

// DefaultModel returns the geometry used by the benchmark.
func DefaultModel(w, h, particles, layers int, seed int64) *Model {
	return &Model{
		W: w, H: h,
		TorsoLen: float64(h) * 0.3, LimbLen: float64(h) * 0.18,
		Samples: 12, Particles: particles, Layers: layers, Seed: seed,
	}
}

// segment is a body part: attachment point selector and base orientation.
type segment struct {
	fromTop bool    // attach at torso top (arms/head) or bottom (legs)
	base    float64 // base angle offset
	dof     int     // pose index controlling this segment
}

var segments = []segment{
	{fromTop: true, base: -2.2, dof: 3},  // left arm
	{fromTop: true, base: 2.2, dof: 4},   // right arm
	{fromTop: true, base: 0, dof: 5},     // head
	{fromTop: false, base: -2.6, dof: 6}, // left leg
	{fromTop: false, base: 2.6, dof: 7},  // right leg
}

// pose layout: [0]=x offset, [1]=y offset, [2]=torso angle, [3..7]=segment
// angles; all in [-1,1], scaled internally.

// torso returns the model's torso endpoints for a pose.
func (m *Model) torso(pose []float64) (x0, y0, x1, y1 float64) {
	cx := float64(m.W)/2 + pose[0]*float64(m.W)/4
	cy := float64(m.H)/2 + pose[1]*float64(m.H)/4
	ang := pose[2] * 0.5
	dx, dy := math.Sin(ang)*m.TorsoLen/2, math.Cos(ang)*m.TorsoLen/2
	return cx - dx, cy - dy, cx + dx, cy + dy // top, bottom
}

// forEachPoint visits the model's sample points for a pose.
func (m *Model) forEachPoint(pose []float64, visit func(x, y float64)) {
	tx, ty, bx, by := m.torso(pose)
	for s := 0; s <= m.Samples; s++ {
		f := float64(s) / float64(m.Samples)
		visit(tx+(bx-tx)*f, ty+(by-ty)*f)
	}
	for _, seg := range segments {
		ox, oy := bx, by
		if seg.fromTop {
			ox, oy = tx, ty
		}
		ang := seg.base + pose[seg.dof]*1.0
		ex, ey := ox+math.Sin(ang)*m.LimbLen, oy+math.Cos(ang)*m.LimbLen
		for s := 1; s <= m.Samples; s++ {
			f := float64(s) / float64(m.Samples)
			visit(ox+(ex-ox)*f, oy+(ey-oy)*f)
		}
	}
}

// RenderSilhouette draws the pose into a binary image with thick strokes —
// used to synthesize the observation sequence from ground truth.
func (m *Model) RenderSilhouette(pose []float64) *img.Gray {
	im := img.NewGray(m.W, m.H)
	const thick = 3
	m.forEachPoint(pose, func(x, y float64) {
		for dy := -thick; dy <= thick; dy++ {
			for dx := -thick; dx <= thick; dx++ {
				px, py := int(x)+dx, int(y)+dy
				if px >= 0 && py >= 0 && px < m.W && py < m.H {
					im.Set(px, py, 255)
				}
			}
		}
	})
	return im
}

// LogLikelihood scores a pose against a silhouette: the fraction of model
// sample points landing on foreground pixels. This is the parallel work
// unit, evaluated per particle.
func (m *Model) LogLikelihood(pose []float64, obs *img.Gray) float64 {
	hits, total := 0, 0
	m.forEachPoint(pose, func(x, y float64) {
		total++
		px, py := int(x), int(y)
		if px >= 0 && py >= 0 && px < m.W && py < m.H && obs.At(px, py) > 0 {
			hits++
		}
	})
	frac := float64(hits) / float64(total)
	// Sharp exponential weighting, as the APF uses.
	return 8 * frac
}

// Filter is the annealed particle filter state.
type Filter struct {
	Model     *Model
	Particles [][]float64
	Weights   []float64
	rng       *rand.Rand
}

// NewFilter initializes particles around the origin pose.
func NewFilter(m *Model) *Filter {
	f := &Filter{
		Model:     m,
		Particles: make([][]float64, m.Particles),
		Weights:   make([]float64, m.Particles),
		rng:       rand.New(rand.NewSource(m.Seed)),
	}
	for i := range f.Particles {
		p := make([]float64, DOF)
		for d := range p {
			p[d] = f.rng.NormFloat64() * 0.1
		}
		f.Particles[i] = p
	}
	return f
}

// Sigma returns the annealing noise scale for a layer (decreasing).
func (f *Filter) Sigma(layer int) float64 {
	return 0.12 * math.Pow(0.6, float64(layer))
}

// WeighRange computes particle weights [lo, hi) against an observation — the
// parallel work unit of one annealing layer.
func (f *Filter) WeighRange(obs *img.Gray, lo, hi int) {
	for i := lo; i < hi; i++ {
		f.Weights[i] = math.Exp(f.Model.LogLikelihood(f.Particles[i], obs))
	}
}

// ResampleAndPerturb draws a new particle set proportional to the weights
// and adds annealing noise — sequential, as in the original.
func (f *Filter) ResampleAndPerturb(layer int) {
	n := len(f.Particles)
	var total float64
	for _, w := range f.Weights {
		total += w
	}
	if total <= 0 {
		total = 1
	}
	// Systematic (low-variance) resampling keeps the filter deterministic.
	newP := make([][]float64, n)
	step := total / float64(n)
	u := f.rng.Float64() * step
	acc := 0.0
	src := 0
	sigma := f.Sigma(layer)
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for acc+f.Weights[src] < target && src < n-1 {
			acc += f.Weights[src]
			src++
		}
		p := make([]float64, DOF)
		copy(p, f.Particles[src])
		for d := range p {
			p[d] += f.rng.NormFloat64() * sigma
			p[d] = math.Max(-1, math.Min(1, p[d]))
		}
		newP[i] = p
	}
	f.Particles = newP
}

// Estimate returns the weighted mean pose.
func (f *Filter) Estimate() []float64 {
	est := make([]float64, DOF)
	var total float64
	for i, p := range f.Particles {
		w := f.Weights[i]
		total += w
		for d := range est {
			est[d] += w * p[d]
		}
	}
	if total > 0 {
		for d := range est {
			est[d] /= total
		}
	}
	return est
}

// TrackSequential runs the filter over a frame sequence (reference
// variant), returning per-frame pose estimates.
func TrackSequential(m *Model, frames []*img.Gray) [][]float64 {
	f := NewFilter(m)
	out := make([][]float64, len(frames))
	for fi, obs := range frames {
		for layer := 0; layer < m.Layers; layer++ {
			f.WeighRange(obs, 0, len(f.Particles))
			f.ResampleAndPerturb(layer)
		}
		f.WeighRange(obs, 0, len(f.Particles))
		out[fi] = f.Estimate()
	}
	return out
}

// PoseError is the mean absolute difference between two poses.
func PoseError(a, b []float64) float64 {
	var s float64
	for d := range a {
		s += math.Abs(a[d] - b[d])
	}
	return s / float64(len(a))
}

// ParticleCost is the simulated cost of one particle likelihood evaluation.
func (m *Model) ParticleCost() time.Duration {
	points := (len(segments) + 1) * (m.Samples + 1)
	return time.Duration(points*14+400) * time.Nanosecond
}

// RangeCost estimates the simulated cost of weighing `particles` particles.
func (m *Model) RangeCost(particles int) time.Duration {
	return time.Duration(particles) * m.ParticleCost()
}
