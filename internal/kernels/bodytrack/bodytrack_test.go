package bodytrack

import (
	"testing"

	"ompssgo/internal/img"
	"ompssgo/internal/media"
)

func TestSilhouetteNonEmpty(t *testing.T) {
	m := DefaultModel(96, 96, 10, 2, 1)
	pose := make([]float64, DOF)
	sil := m.RenderSilhouette(pose)
	on := 0
	for _, v := range sil.Pix {
		if v > 0 {
			on++
		}
	}
	if on < 100 {
		t.Fatalf("silhouette has only %d foreground pixels", on)
	}
	if on > len(sil.Pix)/2 {
		t.Fatalf("silhouette covers %d pixels; figure should be sparse", on)
	}
}

func TestLikelihoodPrefersTruePose(t *testing.T) {
	m := DefaultModel(96, 96, 10, 2, 2)
	truth := []float64{0.1, -0.1, 0.2, 0.3, -0.2, 0.1, 0.2, -0.3}
	obs := m.RenderSilhouette(truth)
	good := m.LogLikelihood(truth, obs)
	bad := m.LogLikelihood([]float64{-0.8, 0.8, -0.9, -0.8, 0.8, -0.9, 0.9, 0.8}, obs)
	if good <= bad {
		t.Fatalf("true pose likelihood %.3f should beat wrong pose %.3f", good, bad)
	}
	if good < 7.5 {
		t.Fatalf("true pose should score near maximum (8), got %.3f", good)
	}
}

func TestWeighRangePartitionEquivalence(t *testing.T) {
	m := DefaultModel(64, 64, 60, 2, 3)
	f := NewFilter(m)
	obs := m.RenderSilhouette(make([]float64, DOF))
	f.WeighRange(obs, 0, len(f.Particles))
	full := append([]float64(nil), f.Weights...)
	for i := range f.Weights {
		f.Weights[i] = 0
	}
	for _, blk := range [][2]int{{40, 60}, {0, 15}, {15, 40}} {
		f.WeighRange(obs, blk[0], blk[1])
	}
	for i := range full {
		if full[i] != f.Weights[i] {
			t.Fatalf("weight %d differs", i)
		}
	}
}

func TestTrackingBeatsStaticGuess(t *testing.T) {
	const frames = 8
	m := DefaultModel(96, 96, 120, 3, 4)
	truth := media.PoseSequence(frames, DOF, 4)
	// Scale ground-truth into the model's comfortable range.
	obs := make([]*img.Gray, frames)
	for i, p := range truth {
		obs[i] = m.RenderSilhouette(p)
	}
	est := TrackSequential(m, obs)
	var tracked, static float64
	zero := make([]float64, DOF)
	for i := range truth {
		tracked += PoseError(est[i], truth[i])
		static += PoseError(zero, truth[i])
	}
	tracked /= frames
	static /= frames
	if tracked >= static {
		t.Fatalf("tracking error %.3f should beat static guess %.3f", tracked, static)
	}
}

func TestFilterDeterministic(t *testing.T) {
	run := func() []float64 {
		m := DefaultModel(64, 64, 40, 2, 7)
		obs := media.Video(3, 64, 64, 7)
		est := TrackSequential(m, obs)
		return est[len(est)-1]
	}
	a, b := run(), run()
	for d := range a {
		if a[d] != b[d] {
			t.Fatal("filter must be deterministic for a fixed seed")
		}
	}
}

func TestResamplePreservesCount(t *testing.T) {
	m := DefaultModel(64, 64, 30, 2, 9)
	f := NewFilter(m)
	for i := range f.Weights {
		f.Weights[i] = float64(i + 1)
	}
	f.ResampleAndPerturb(0)
	if len(f.Particles) != 30 {
		t.Fatalf("particle count changed: %d", len(f.Particles))
	}
	for _, p := range f.Particles {
		for _, v := range p {
			if v < -1 || v > 1 {
				t.Fatalf("particle out of bounds: %f", v)
			}
		}
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultModel(64, 64, 10, 2, 1)
	if m.RangeCost(100) != 100*m.ParticleCost() {
		t.Fatal("RangeCost linear")
	}
}
