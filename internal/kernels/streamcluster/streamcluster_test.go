package streamcluster

import (
	"math"
	"testing"

	"ompssgo/internal/media"
)

func problem(n int, seed int64) *Problem {
	pts, _ := media.Points(n, 3, 5, seed)
	return &Problem{
		Points: pts, N: n, Dim: 3,
		ChunkSize: 100, FacilityCost: 400, Candidates: 6, Seed: seed,
	}
}

func TestAbsorbChunkAssignsEveryPoint(t *testing.T) {
	p := problem(250, 1)
	s := p.NewState()
	for s.Limit < p.N {
		lo, hi := s.AbsorbChunk()
		if hi <= lo {
			t.Fatal("chunk did not advance")
		}
	}
	if s.Limit != p.N {
		t.Fatalf("limit = %d", s.Limit)
	}
	if len(s.Open) == 0 {
		t.Fatal("no facilities opened")
	}
	for i := 0; i < p.N; i++ {
		if s.Assign[i] < 0 || s.Assign[i] >= len(s.Open) {
			t.Fatalf("point %d unassigned", i)
		}
	}
}

func TestGainPartitionEquivalence(t *testing.T) {
	p := problem(300, 2)
	s := p.NewState()
	s.AbsorbChunk()
	s.AbsorbChunk()
	c := s.Limit / 2

	full := s.NewGainPartial()
	s.EvalCandidateRange(c, full, 0, s.Limit)

	merged := s.NewGainPartial()
	for _, blk := range [][2]int{{120, 200}, {0, 50}, {50, 120}} {
		pa := s.NewGainPartial()
		s.EvalCandidateRange(c, pa, blk[0], blk[1])
		merged.Save += pa.Save
		for f := range merged.CloseSave {
			merged.CloseSave[f] += pa.CloseSave[f]
		}
	}
	if math.Abs(full.Save-merged.Save) > 1e-9 {
		t.Fatalf("save %.9f != %.9f", full.Save, merged.Save)
	}
	for f := range full.CloseSave {
		if math.Abs(full.CloseSave[f]-merged.CloseSave[f]) > 1e-9 {
			t.Fatalf("closeSave[%d] differs", f)
		}
	}
}

func TestApplyCandidateNeverIncreasesCost(t *testing.T) {
	p := problem(400, 3)
	s := p.NewState()
	for s.Limit < p.N {
		s.AbsorbChunk()
		before := s.TotalCost()
		for _, c := range s.PickCandidates() {
			pa := s.NewGainPartial()
			s.EvalCandidateRange(c, pa, 0, s.Limit)
			gain := s.ApplyCandidate(c, pa)
			after := s.TotalCost()
			if gain > 0 && after > before+1e-6 {
				t.Fatalf("accepted candidate raised cost %.3f -> %.3f (claimed gain %.3f)",
					before, after, gain)
			}
			before = after
		}
	}
}

func TestLocalSearchImprovesOverSpeedy(t *testing.T) {
	p := problem(500, 4)
	speedyOnly := p.NewState()
	for speedyOnly.Limit < p.N {
		speedyOnly.AbsorbChunk()
	}
	refined := p.RunSequential()
	if refined.TotalCost() > speedyOnly.TotalCost() {
		t.Fatalf("local search should not be worse: %.1f vs %.1f",
			refined.TotalCost(), speedyOnly.TotalCost())
	}
}

func TestDeterministicReplay(t *testing.T) {
	a := problem(300, 5).RunSequential()
	b := problem(300, 5).RunSequential()
	if a.TotalCost() != b.TotalCost() || len(a.Open) != len(b.Open) {
		t.Fatalf("nondeterministic: %.3f/%d vs %.3f/%d",
			a.TotalCost(), len(a.Open), b.TotalCost(), len(b.Open))
	}
}

func TestCostModel(t *testing.T) {
	if RangeEvalCost(100, 3) != 100*PointEvalCost(3) {
		t.Fatal("RangeEvalCost linear")
	}
}
