// Package streamcluster reimplements the PARSEC streamcluster workload: an
// online k-median clusterer. Points arrive in chunks; for each chunk, the
// algorithm greedily opens an initial solution (speedy), then improves it
// with facility-location local search: candidate facilities are evaluated by
// computing the total cost change (gain) of opening them, an evaluation that
// parallelizes over points with partial sums and a barrier per candidate —
// the barrier-per-candidate structure is what makes the benchmark
// synchronization-bound (paper §4 places it slightly in Pthreads' favour).
package streamcluster

import (
	"math/rand"
	"time"
)

// Problem is an online k-median instance over flattened dim-dimensional
// points with unit weights.
type Problem struct {
	Points []float64
	N, Dim int
	// ChunkSize points are processed per stream step.
	ChunkSize int
	// FacilityCost is the cost z of opening a facility.
	FacilityCost float64
	// Candidates per local-search round.
	Candidates int
	Seed       int64
}

// State is the clusterer's evolving solution: open facilities (as point
// indices into the stream prefix) and each point's current assignment.
type State struct {
	Open    []int     // indices of open facilities
	Assign  []int     // point -> index into Open
	DistTo  []float64 // point -> squared distance to its facility
	Limit   int       // points processed so far
	rng     *rand.Rand
	problem *Problem
}

// NewState prepares an empty solution.
func (p *Problem) NewState() *State {
	return &State{
		Assign:  make([]int, p.N),
		DistTo:  make([]float64, p.N),
		rng:     rand.New(rand.NewSource(p.Seed)),
		problem: p,
	}
}

func (p *Problem) point(i int) []float64 { return p.Points[i*p.Dim : (i+1)*p.Dim] }

func distSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// AbsorbChunk extends the solution over the next chunk of points: each new
// point is either assigned to its nearest open facility or opens itself with
// probability dist/z (the "speedy" online rule). Sequential by nature (the
// stream order matters); cheap relative to the local search.
func (s *State) AbsorbChunk() (lo, hi int) {
	p := s.problem
	lo = s.Limit
	hi = lo + p.ChunkSize
	if hi > p.N {
		hi = p.N
	}
	for i := lo; i < hi; i++ {
		if len(s.Open) == 0 {
			s.Open = append(s.Open, i)
			s.Assign[i] = 0
			s.DistTo[i] = 0
			continue
		}
		best, bestD := s.nearestOpen(i)
		if s.rng.Float64() < bestD/p.FacilityCost {
			s.Assign[i] = len(s.Open)
			s.DistTo[i] = 0
			s.Open = append(s.Open, i)
		} else {
			s.Assign[i] = best
			s.DistTo[i] = bestD
		}
	}
	s.Limit = hi
	return lo, hi
}

func (s *State) nearestOpen(i int) (int, float64) {
	p := s.problem
	pt := p.point(i)
	best, bestD := 0, distSq(pt, p.point(s.Open[0]))
	for f := 1; f < len(s.Open); f++ {
		if d := distSq(pt, p.point(s.Open[f])); d < bestD {
			best, bestD = f, d
		}
	}
	return best, bestD
}

// GainPartial is one thread's contribution to a candidate evaluation.
type GainPartial struct {
	// Save is the total assignment-cost saving over this thread's points
	// if the candidate opens.
	Save float64
	// CloseSave[f] accumulates, for facility f, the cost delta of
	// reassigning f's remaining points to the candidate if f closes.
	CloseSave []float64
}

// NewGainPartial allocates a partial sized for the current facility count.
func (s *State) NewGainPartial() *GainPartial {
	return &GainPartial{CloseSave: make([]float64, len(s.Open))}
}

// EvalCandidateRange evaluates candidate point c over points [lo, hi) — the
// parallel work unit of the pgain phase. For each point, if switching to the
// candidate is cheaper than its current assignment, the saving accrues to
// Save; otherwise the (negative) penalty of a forced switch accrues to the
// point's current facility in CloseSave.
func (s *State) EvalCandidateRange(c int, pa *GainPartial, lo, hi int) {
	p := s.problem
	cpt := p.point(c)
	for i := lo; i < hi; i++ {
		d := distSq(p.point(i), cpt)
		if d < s.DistTo[i] {
			pa.Save += s.DistTo[i] - d
		} else {
			pa.CloseSave[s.Assign[i]] += s.DistTo[i] - d
		}
	}
}

// ApplyCandidate decides, from the merged partials, whether opening c pays
// for itself (including closing facilities whose remaining points are
// cheaper served by c), and if so rewrites the assignment. Returns the gain
// (0 if rejected). Sequential decision, as in pFL.
func (s *State) ApplyCandidate(c int, merged *GainPartial) float64 {
	p := s.problem
	gain := merged.Save - p.FacilityCost
	var toClose []int
	for f := range s.Open {
		// Closing f saves z but forces its points to the candidate.
		if delta := merged.CloseSave[f] + p.FacilityCost; delta > 0 {
			gain += delta
			toClose = append(toClose, f)
		}
	}
	if gain <= 0 {
		return 0
	}
	closing := make(map[int]bool, len(toClose))
	for _, f := range toClose {
		closing[f] = true
	}
	// Rewrite: candidate becomes a new facility; points move if cheaper or
	// if their facility closes.
	cpt := p.point(c)
	newIdx := -1
	var kept []int
	remap := make([]int, len(s.Open))
	for f, pt := range s.Open {
		if closing[f] {
			remap[f] = -1
			continue
		}
		remap[f] = len(kept)
		kept = append(kept, pt)
	}
	kept = append(kept, c)
	newIdx = len(kept) - 1
	for i := 0; i < s.Limit; i++ {
		d := distSq(p.point(i), cpt)
		if d < s.DistTo[i] || remap[s.Assign[i]] == -1 {
			s.Assign[i] = newIdx
			s.DistTo[i] = d
		} else {
			s.Assign[i] = remap[s.Assign[i]]
		}
	}
	s.Open = kept
	return gain
}

// PickCandidates draws the next local-search candidate set (deterministic
// for a seeded state).
func (s *State) PickCandidates() []int {
	p := s.problem
	out := make([]int, 0, p.Candidates)
	for len(out) < p.Candidates && s.Limit > 0 {
		out = append(out, s.rng.Intn(s.Limit))
	}
	return out
}

// TotalCost returns the current solution cost (assignment + facility costs).
func (s *State) TotalCost() float64 {
	cost := float64(len(s.Open)) * s.problem.FacilityCost
	for i := 0; i < s.Limit; i++ {
		cost += s.DistTo[i]
	}
	return cost
}

// RunSequential executes the full stream sequentially (reference variant):
// absorb each chunk, then one local-search round per chunk.
func (p *Problem) RunSequential() *State {
	s := p.NewState()
	for s.Limit < p.N {
		s.AbsorbChunk()
		for _, c := range s.PickCandidates() {
			pa := s.NewGainPartial()
			s.EvalCandidateRange(c, pa, 0, s.Limit)
			s.ApplyCandidate(c, pa)
		}
	}
	return s
}

// PointEvalCost is the simulated per-point cost of one candidate evaluation.
func PointEvalCost(dim int) time.Duration {
	return time.Duration(2*dim+12) * time.Nanosecond
}

// RangeEvalCost estimates the simulated cost of evaluating `points` points.
func RangeEvalCost(points, dim int) time.Duration {
	return time.Duration(points) * PointEvalCost(dim)
}
