// Package cray is a from-scratch reimplementation of the c-ray benchmark
// kernel: a small recursive ray tracer over a procedurally generated sphere
// scene with Phong shading and specular reflections. The unit of parallel
// work is a block of image rows, exactly as in the original benchmark.
package cray

import (
	"math"
	"math/rand"
	"time"

	"ompssgo/internal/img"
)

// Vec3 is a 3-component float vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a − b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a × s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Norm returns a normalized.
func (a Vec3) Norm() Vec3 {
	l := math.Sqrt(a.Dot(a))
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Sphere is a scene object.
type Sphere struct {
	Center Vec3
	R      float64
	Color  Vec3    // diffuse color, components in [0,1]
	Refl   float64 // reflectivity in [0,1]
	Spec   float64 // specular exponent
}

// Scene is a renderable collection of spheres and point lights.
type Scene struct {
	Spheres []Sphere
	Lights  []Vec3
	// Camera: at origin looking down −Z with a simple pinhole model.
	FOV float64
}

// MaxDepth is the reflection recursion limit (as in c-ray).
const MaxDepth = 5

// GenScene procedurally generates a scene with n spheres and 3 lights.
func GenScene(n int, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	s := &Scene{FOV: math.Pi / 4}
	// A large floor sphere grounds the scene.
	s.Spheres = append(s.Spheres, Sphere{
		Center: Vec3{0, -1004, -20}, R: 1000,
		Color: Vec3{0.6, 0.6, 0.6}, Refl: 0.1, Spec: 20,
	})
	for i := 1; i < n; i++ {
		s.Spheres = append(s.Spheres, Sphere{
			Center: Vec3{rng.Float64()*16 - 8, rng.Float64()*6 - 2, -12 - rng.Float64()*16},
			R:      0.6 + rng.Float64()*1.8,
			Color:  Vec3{0.2 + 0.8*rng.Float64(), 0.2 + 0.8*rng.Float64(), 0.2 + 0.8*rng.Float64()},
			Refl:   rng.Float64() * 0.6,
			Spec:   10 + rng.Float64()*90,
		})
	}
	s.Lights = []Vec3{{-20, 30, 10}, {15, 25, -5}, {0, 40, -30}}
	return s
}

// intersect returns the nearest hit of ray (o, d) with sph, or false.
func (sp *Sphere) intersect(o, d Vec3) (float64, bool) {
	oc := o.Sub(sp.Center)
	b := 2 * d.Dot(oc)
	c := oc.Dot(oc) - sp.R*sp.R
	disc := b*b - 4*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	t1, t2 := (-b-sq)/2, (-b+sq)/2
	const eps = 1e-6
	if t1 > eps {
		return t1, true
	}
	if t2 > eps {
		return t2, true
	}
	return 0, false
}

// trace returns the color seen along ray (o, d).
func (s *Scene) trace(o, d Vec3, depth int) Vec3 {
	var best float64 = math.MaxFloat64
	var hit *Sphere
	for i := range s.Spheres {
		if t, ok := s.Spheres[i].intersect(o, d); ok && t < best {
			best = t
			hit = &s.Spheres[i]
		}
	}
	if hit == nil {
		// Sky gradient.
		t := 0.5 * (d.Y + 1)
		return Vec3{0.15, 0.2, 0.3}.Scale(1 - t).Add(Vec3{0.4, 0.55, 0.8}.Scale(t))
	}
	p := o.Add(d.Scale(best))
	n := p.Sub(hit.Center).Norm()
	col := hit.Color.Scale(0.08) // ambient
	for _, l := range s.Lights {
		ldir := l.Sub(p).Norm()
		// Shadow test.
		shadowed := false
		for i := range s.Spheres {
			if &s.Spheres[i] == hit {
				continue
			}
			if _, ok := s.Spheres[i].intersect(p, ldir); ok {
				shadowed = true
				break
			}
		}
		if shadowed {
			continue
		}
		if diff := n.Dot(ldir); diff > 0 {
			col = col.Add(hit.Color.Scale(diff * 0.5))
		}
		refl := n.Scale(2 * n.Dot(ldir)).Sub(ldir)
		if spec := refl.Dot(d.Scale(-1)); spec > 0 {
			col = col.Add(Vec3{1, 1, 1}.Scale(0.4 * math.Pow(spec, hit.Spec)))
		}
	}
	if hit.Refl > 0 && depth < MaxDepth {
		rdir := d.Sub(n.Scale(2 * d.Dot(n))).Norm()
		col = col.Add(s.trace(p, rdir, depth+1).Scale(hit.Refl))
	}
	return col
}

// RenderRows renders image rows [y0, y1) of im — the parallel work unit.
func (s *Scene) RenderRows(im *img.RGB, y0, y1 int) {
	w, h := im.W, im.H
	aspect := float64(w) / float64(h)
	tanf := math.Tan(s.FOV / 2)
	for y := y0; y < y1; y++ {
		for x := 0; x < w; x++ {
			px := (2*(float64(x)+0.5)/float64(w) - 1) * tanf * aspect
			py := (1 - 2*(float64(y)+0.5)/float64(h)) * tanf
			d := Vec3{px, py, -1}.Norm()
			c := s.trace(Vec3{0, 0, 0}, d, 0)
			im.Set(x, y, clamp8(c.X), clamp8(c.Y), clamp8(c.Z))
		}
	}
}

// Render renders the full image sequentially (the reference variant).
func (s *Scene) Render(im *img.RGB) { s.RenderRows(im, 0, im.H) }

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

// PixelCost estimates the simulated cost of tracing one pixel for a scene
// with n spheres: every primary ray tests all spheres, shading tests shadows
// against all spheres per light, and reflections multiply the ray count.
// Calibrated against the original c-ray's throughput class on a ~2 GHz core.
func PixelCost(nspheres int) time.Duration {
	perRay := 30 + 22*nspheres // ns: intersection sweep + shading
	rays := 2.2                // primary + expected reflection continuations
	return time.Duration(float64(perRay)*rays) * time.Nanosecond
}

// RowsCost estimates the simulated cost of rendering rows of the given
// total pixel count.
func RowsCost(pixels, nspheres int) time.Duration {
	return time.Duration(pixels) * PixelCost(nspheres)
}

// RowCost estimates the simulated cost of rendering one image row: the
// primary intersection sweep is uniform, but rows covered by sphere
// projections additionally pay shadow tests and reflection continuations.
// This heterogeneity is what makes static row partitions imbalanced (and
// dynamic task scheduling profitable) in the real benchmark.
func (s *Scene) RowCost(y, w, h int) time.Duration {
	n := len(s.Spheres)
	base := float64(w) * float64(30+22*n)
	frac := s.rowHitFraction(y, w, h)
	shade := frac * float64(w) * float64(22*n) * (float64(len(s.Lights)) + 1.5)
	return time.Duration(base+shade) * time.Nanosecond
}

// BlockCost sums RowCost over rows [y0, y1).
func (s *Scene) BlockCost(y0, y1, w, h int) time.Duration {
	var total time.Duration
	for y := y0; y < y1; y++ {
		total += s.RowCost(y, w, h)
	}
	return total
}

// rowHitFraction estimates how much of row y is covered by projected
// spheres (coarse screen-space bound; the floor sphere covers the lower
// half).
func (s *Scene) rowHitFraction(y, w, h int) float64 {
	tanf := math.Tan(s.FOV / 2)
	py := (1 - 2*(float64(y)+0.5)/float64(h)) * tanf
	covered := 0.0
	for i := range s.Spheres {
		sp := &s.Spheres[i]
		if sp.Center.Z >= 0 {
			continue
		}
		depth := -sp.Center.Z
		cy := sp.Center.Y / depth
		half := sp.R / depth
		if py >= cy-half && py <= cy+half {
			// Horizontal extent as a fraction of the screen width.
			aspect := float64(w) / float64(h)
			frac := 2 * half / (2 * tanf * aspect)
			covered += math.Min(1, frac)
		}
	}
	return math.Min(1, covered)
}
