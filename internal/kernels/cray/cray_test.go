package cray

import (
	"math"
	"testing"

	"ompssgo/internal/img"
)

func TestVecOps(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) || b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("add/sub")
	}
	if a.Dot(b) != 32 {
		t.Fatal("dot")
	}
	n := Vec3{3, 0, 4}.Norm()
	if math.Abs(n.Dot(n)-1) > 1e-12 {
		t.Fatal("norm not unit")
	}
}

func TestSphereIntersection(t *testing.T) {
	s := Sphere{Center: Vec3{0, 0, -10}, R: 2}
	if d, ok := s.intersect(Vec3{}, Vec3{0, 0, -1}); !ok || math.Abs(d-8) > 1e-9 {
		t.Fatalf("head-on hit: d=%v ok=%v", d, ok)
	}
	if _, ok := s.intersect(Vec3{}, Vec3{0, 1, 0}); ok {
		t.Fatal("miss reported as hit")
	}
	// Ray starting inside hits the far surface.
	if d, ok := s.intersect(Vec3{0, 0, -10}, Vec3{0, 0, -1}); !ok || math.Abs(d-2) > 1e-9 {
		t.Fatalf("inside hit: d=%v ok=%v", d, ok)
	}
}

func TestSceneDeterministic(t *testing.T) {
	a := GenScene(8, 3)
	b := GenScene(8, 3)
	if len(a.Spheres) != len(b.Spheres) {
		t.Fatal("scene sizes differ")
	}
	for i := range a.Spheres {
		if a.Spheres[i] != b.Spheres[i] {
			t.Fatal("scene must be deterministic")
		}
	}
}

func TestRenderProducesStructure(t *testing.T) {
	s := GenScene(6, 1)
	im := img.NewRGB(64, 48)
	s.Render(im)
	// The image must not be flat: count distinct pixel values.
	seen := map[[3]uint8]bool{}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			seen[[3]uint8{r, g, b}] = true
		}
	}
	if len(seen) < 50 {
		t.Fatalf("only %d distinct colors; scene not rendering", len(seen))
	}
}

func TestRowPartitionEquivalence(t *testing.T) {
	// The parallel decomposition contract: rendering in row blocks in any
	// order must be identical to a full render.
	s := GenScene(7, 2)
	full := img.NewRGB(48, 36)
	s.Render(full)
	parts := img.NewRGB(48, 36)
	for _, blk := range [][2]int{{24, 36}, {0, 7}, {7, 24}} {
		s.RenderRows(parts, blk[0], blk[1])
	}
	if full.Checksum() != parts.Checksum() {
		t.Fatal("row-partitioned render differs from full render")
	}
}

func TestReflectionsTerminate(t *testing.T) {
	// Two facing mirrors: recursion must stop at MaxDepth.
	s := &Scene{
		FOV: math.Pi / 4,
		Spheres: []Sphere{
			{Center: Vec3{0, 0, -6}, R: 2, Color: Vec3{1, 1, 1}, Refl: 1, Spec: 10},
			{Center: Vec3{0, 0, 6}, R: 2, Color: Vec3{1, 1, 1}, Refl: 1, Spec: 10},
		},
		Lights: []Vec3{{0, 10, 0}},
	}
	im := img.NewRGB(16, 16)
	s.Render(im) // would hang or overflow the stack without the depth cap
}

func TestPixelCostScalesWithSpheres(t *testing.T) {
	if PixelCost(32) <= PixelCost(4) {
		t.Fatal("cost should grow with scene size")
	}
	if RowsCost(100, 8) != 100*PixelCost(8) {
		t.Fatal("RowsCost should be linear in pixels")
	}
}
