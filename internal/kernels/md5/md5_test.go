package md5

import (
	cryptomd5 "crypto/md5"
	"math/rand"
	"testing"
	"testing/quick"
)

// Known RFC 1321 test vectors.
func TestRFC1321Vectors(t *testing.T) {
	vectors := map[string]string{
		"":                           "d41d8cd98f00b204e9800998ecf8427e",
		"a":                          "0cc175b9c0f1b6a831c399e269772661",
		"abc":                        "900150983cd24fb0d6963f7d28e17f72",
		"message digest":             "f96b697d7cb7938d525a2f31aaf161d0",
		"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
		"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789":                   "d174ab98d277d9f5a5611c2c9f419d9f",
		"12345678901234567890123456789012345678901234567890123456789012345678901234567890": "57edf4a22be3c955ac49da2e2107b67a",
	}
	for in, want := range vectors {
		got := hex(Sum([]byte(in)))
		if got != want {
			t.Errorf("MD5(%q) = %s, want %s", in, got, want)
		}
	}
}

func hex(d [Size]byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 32)
	for i, b := range d {
		out[2*i] = digits[b>>4]
		out[2*i+1] = digits[b&0xf]
	}
	return string(out)
}

// TestBoundaryLengths exercises the padding logic at every interesting
// length around the 64-byte block size.
func TestBoundaryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 1000} {
		buf := make([]byte, n)
		rng.Read(buf)
		want := cryptomd5.Sum(buf)
		got := Sum(buf)
		if got != want {
			t.Fatalf("length %d: %x != crypto/md5 %x", n, got, want)
		}
	}
}

// TestAgainstCryptoMD5Property cross-checks random inputs against the
// stdlib implementation.
func TestAgainstCryptoMD5Property(t *testing.T) {
	f := func(data []byte) bool {
		return Sum(data) == cryptomd5.Sum(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingEqualsOneShot verifies chunked Write produces the same
// digest regardless of chunk boundaries.
func TestStreamingEqualsOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 10_000)
	rng.Read(data)
	want := Sum(data)
	for _, chunk := range []int{1, 3, 63, 64, 65, 1024} {
		d := New()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			d.Write(data[off:end])
		}
		if got := d.Sum16(); got != want {
			t.Fatalf("chunk %d: digest mismatch", chunk)
		}
	}
}

// TestSum16DoesNotMutate ensures Sum16 can be called mid-stream.
func TestSum16DoesNotMutate(t *testing.T) {
	d := New()
	d.Write([]byte("hello "))
	first := d.Sum16()
	second := d.Sum16()
	if first != second {
		t.Fatal("Sum16 must not mutate the digest state")
	}
	d.Write([]byte("world"))
	if d.Sum16() != Sum([]byte("hello world")) {
		t.Fatal("continuing after Sum16 must work")
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	if hex(d.Sum16()) != "900150983cd24fb0d6963f7d28e17f72" {
		t.Fatal("Reset must restore the initial state")
	}
}

func TestCostModel(t *testing.T) {
	if BufferCost(1000) != 1000*ByteCost() {
		t.Fatal("BufferCost should be linear")
	}
}
