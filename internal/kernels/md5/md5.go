// Package md5 is a from-scratch implementation of the MD5 message digest
// (RFC 1321), reproducing the md5 benchmark kernel: hashing a large set of
// independent buffers, one buffer per unit of parallel work. The stdlib
// crypto/md5 is deliberately not used for the kernel itself (the benchmark's
// work must live in this repository); the tests cross-check against it.
package md5

import "time"

// Size is the digest length in bytes.
const Size = 16

// table of per-round addition constants: floor(2^32 × abs(sin(i+1))).
var k = [64]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
	0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
	0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
	0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
	0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
	0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
	0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
}

// per-round left-rotation amounts.
var s = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

// Digest is a streaming MD5 state. The zero value is not valid; use New.
type Digest struct {
	h   [4]uint32
	buf [64]byte
	n   int    // bytes buffered
	len uint64 // total message length
}

// New returns an initialized Digest.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset restores the initial chaining values.
func (d *Digest) Reset() {
	d.h = [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	d.n = 0
	d.len = 0
}

// Write absorbs p into the digest state. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == 64 {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	for len(p) >= 64 {
		d.block(p[:64])
		p = p[64:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

// Sum16 finalizes a copy of the state and returns the digest.
func (d *Digest) Sum16() [Size]byte {
	c := *d
	// Padding: 0x80, zeros, then the 64-bit bit length little-endian.
	var pad [72]byte
	pad[0] = 0x80
	rem := int((c.len + 1 + 8) % 64)
	padLen := 1
	if rem != 0 {
		padLen = 1 + (64-rem+64)%64
	}
	bitLen := c.len * 8
	var lenb [8]byte
	for i := 0; i < 8; i++ {
		lenb[i] = byte(bitLen >> (8 * i))
	}
	c.Write(pad[:padLen]) //nolint:errcheck // cannot fail
	c.Write(lenb[:])      //nolint:errcheck // cannot fail
	var out [Size]byte
	for i, v := range c.h {
		out[4*i] = byte(v)
		out[4*i+1] = byte(v >> 8)
		out[4*i+2] = byte(v >> 16)
		out[4*i+3] = byte(v >> 24)
	}
	return out
}

// Sum computes the MD5 digest of data in one call.
func Sum(data []byte) [Size]byte {
	d := New()
	d.Write(data) //nolint:errcheck // cannot fail
	return d.Sum16()
}

// block processes one 64-byte block.
func (d *Digest) block(p []byte) {
	var m [16]uint32
	for i := 0; i < 16; i++ {
		m[i] = uint32(p[4*i]) | uint32(p[4*i+1])<<8 | uint32(p[4*i+2])<<16 | uint32(p[4*i+3])<<24
	}
	a, b, c, dd := d.h[0], d.h[1], d.h[2], d.h[3]
	for i := 0; i < 64; i++ {
		var f uint32
		var g int
		switch {
		case i < 16:
			f = (b & c) | (^b & dd)
			g = i
		case i < 32:
			f = (dd & b) | (^dd & c)
			g = (5*i + 1) % 16
		case i < 48:
			f = b ^ c ^ dd
			g = (3*i + 5) % 16
		default:
			f = c ^ (b | ^dd)
			g = (7 * i) % 16
		}
		f += a + k[i] + m[g]
		a = dd
		dd = c
		c = b
		b += (f << s[i]) | (f >> (32 - s[i]))
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
}

// ByteCost is the simulated per-byte hashing cost (MD5 runs ≈5 cycles/byte
// on a ~2 GHz core of the paper's era).
func ByteCost() time.Duration { return 3 * time.Nanosecond }

// BufferCost estimates the simulated cost of hashing one buffer.
func BufferCost(size int) time.Duration { return time.Duration(size) * ByteCost() }
