// Package rotate reimplements the rotate benchmark kernel: rotation of an
// RGB image by an arbitrary angle about its center with bilinear
// interpolation. The parallel work unit is a block of destination rows,
// as in the original benchmark.
package rotate

import (
	"math"
	"time"

	"ompssgo/internal/img"
)

// Rows rotates src by angle (radians, counter-clockwise) into the
// destination rows [y0, y1) of dst. dst and src must have equal dimensions;
// samples falling outside src are black. Inverse mapping with bilinear
// interpolation.
func Rows(dst, src *img.RGB, angle float64, y0, y1 int) {
	w, h := src.W, src.H
	cx, cy := float64(w-1)/2, float64(h-1)/2
	sin, cos := math.Sin(-angle), math.Cos(-angle)
	for y := y0; y < y1; y++ {
		dy := float64(y) - cy
		drow := dst.Row(y)
		for x := 0; x < w; x++ {
			dx := float64(x) - cx
			sx := cos*dx - sin*dy + cx
			sy := sin*dx + cos*dy + cy
			r, g, b := bilinear(src, sx, sy)
			i := 3 * x
			drow[i], drow[i+1], drow[i+2] = r, g, b
		}
	}
}

// Rotate rotates the whole image sequentially (the reference variant).
func Rotate(dst, src *img.RGB, angle float64) { Rows(dst, src, angle, 0, src.H) }

func bilinear(src *img.RGB, x, y float64) (uint8, uint8, uint8) {
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	fx, fy := x-float64(x0), y-float64(y0)
	var acc [3]float64
	for dy := 0; dy <= 1; dy++ {
		for dx := 0; dx <= 1; dx++ {
			wgt := (1 - math.Abs(float64(dx)-fx)) * (1 - math.Abs(float64(dy)-fy))
			px, py := x0+dx, y0+dy
			if px < 0 || py < 0 || px >= src.W || py >= src.H {
				continue
			}
			r, g, b := src.At(px, py)
			acc[0] += wgt * float64(r)
			acc[1] += wgt * float64(g)
			acc[2] += wgt * float64(b)
		}
	}
	return uint8(acc[0] + 0.5), uint8(acc[1] + 0.5), uint8(acc[2] + 0.5)
}

// PixelCost is the simulated per-pixel cost of the inverse mapping plus
// 4-tap bilinear filter.
func PixelCost() time.Duration { return 16 * time.Nanosecond }

// RowsCost estimates the simulated cost of rotating `pixels` destination
// pixels.
func RowsCost(pixels int) time.Duration { return time.Duration(pixels) * PixelCost() }
