package rotate

import (
	"math"
	"testing"

	"ompssgo/internal/img"
	"ompssgo/internal/media"
)

func TestRotateZeroIsIdentity(t *testing.T) {
	src := media.Image(32, 24, 1)
	dst := img.NewRGB(32, 24)
	Rotate(dst, src, 0)
	if dst.Checksum() != src.Checksum() {
		t.Fatal("rotation by 0 must be the identity")
	}
}

func TestRowPartitionEquivalence(t *testing.T) {
	src := media.Image(40, 40, 2)
	full := img.NewRGB(40, 40)
	Rotate(full, src, 0.7)
	parts := img.NewRGB(40, 40)
	for _, blk := range [][2]int{{30, 40}, {0, 13}, {13, 30}} {
		Rows(parts, src, 0.7, blk[0], blk[1])
	}
	if full.Checksum() != parts.Checksum() {
		t.Fatal("row-partitioned rotate differs from full rotate")
	}
}

func TestQuarterTurnExactOnSquare(t *testing.T) {
	// For a square image and a 90° turn, sampling falls on exact pixel
	// centers: (x,y) in the destination reads (y, W-1-x)-ish from source.
	src := media.Image(31, 31, 3)
	dst := img.NewRGB(31, 31)
	Rotate(dst, src, math.Pi/2)
	r0, g0, b0 := dst.At(15, 15)
	r1, g1, b1 := src.At(15, 15)
	if r0 != r1 || g0 != g1 || b0 != b1 {
		t.Fatal("center pixel must be fixed under rotation")
	}
	// Spot-check a known mapping: dst(x,y) = src(cx + (y-cy)... ) — verify
	// via double rotation instead of deriving signs here.
	back := img.NewRGB(31, 31)
	Rotate(back, dst, -math.Pi/2)
	// Interior pixels (away from corners clipped by the first rotation)
	// must return exactly.
	for y := 8; y < 23; y++ {
		for x := 8; x < 23; x++ {
			br, bg, bb := back.At(x, y)
			sr, sg, sb := src.At(x, y)
			if br != sr || bg != sg || bb != sb {
				t.Fatalf("pixel (%d,%d) not restored by ±90°", x, y)
			}
		}
	}
}

func TestRotationMovesMass(t *testing.T) {
	src := media.Image(64, 64, 4)
	dst := img.NewRGB(64, 64)
	Rotate(dst, src, 0.3)
	if dst.Checksum() == src.Checksum() {
		t.Fatal("rotation by 0.3 rad should change the image")
	}
}

func TestOutOfBoundsBlack(t *testing.T) {
	src := media.Image(32, 32, 5)
	dst := img.NewRGB(32, 32)
	Rotate(dst, src, math.Pi/4)
	// The extreme corner of a 45° rotation samples outside: must be black.
	r, g, b := dst.At(0, 0)
	if r != 0 || g != 0 || b != 0 {
		t.Fatalf("corner should be black, got %d,%d,%d", r, g, b)
	}
}
