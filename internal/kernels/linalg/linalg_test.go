package linalg

import (
	"math"
	"testing"
)

func TestPOTRFSmallKnown(t *testing.T) {
	// A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]].
	b := NewBlock(2)
	b.Set(0, 0, 4)
	b.Set(0, 1, 2)
	b.Set(1, 0, 2)
	b.Set(1, 1, 3)
	POTRF(b)
	if math.Abs(b.At(0, 0)-2) > 1e-12 || math.Abs(b.At(1, 0)-1) > 1e-12 ||
		math.Abs(b.At(1, 1)-math.Sqrt(2)) > 1e-12 || b.At(0, 1) != 0 {
		t.Fatalf("POTRF wrong: %+v", b.Data)
	}
}

func TestCholeskyResidual(t *testing.T) {
	for _, cfg := range []struct{ nb, bs int }{{1, 8}, {3, 4}, {4, 6}} {
		m := NewMatrix(cfg.nb, cfg.bs)
		m.GenSPD(42)
		orig := NewMatrix(cfg.nb, cfg.bs)
		orig.GenSPD(42)
		CholeskySequential(m)
		if r := ResidualL(m, orig); r > 1e-8 {
			t.Fatalf("nb=%d bs=%d residual %g", cfg.nb, cfg.bs, r)
		}
	}
}

func TestBlockedMatchesUnblocked(t *testing.T) {
	// Factor the same matrix as 1×(n) blocks and as k×k blocks; compare
	// all lower-triangle entries.
	one := NewMatrix(1, 12)
	one.GenSPD(7)
	CholeskySequential(one)
	blk := NewMatrix(3, 4)
	blk.GenSPD(7)
	CholeskySequential(blk)
	for i := 0; i < 12; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(one.Get(i, j)-blk.Get(i, j)) > 1e-9 {
				t.Fatalf("L(%d,%d): %g vs %g", i, j, one.Get(i, j), blk.Get(i, j))
			}
		}
	}
}

func TestGEMMSpotCheck(t *testing.T) {
	a, b, c := NewBlock(2), NewBlock(2), NewBlock(2)
	// a = [[1,2],[3,4]], b = [[5,6],[7,8]], c starts zero:
	// c -= a·bᵀ = [[17,23],[39,53]].
	vals := []float64{1, 2, 3, 4}
	copy(a.Data, vals)
	copy(b.Data, []float64{5, 6, 7, 8})
	GEMM(a, b, c)
	want := []float64{-17, -23, -39, -53}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("GEMM[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestSYRKSymmetric(t *testing.T) {
	a, c := NewBlock(3), NewBlock(3)
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
	}
	for i := 0; i < 3; i++ {
		c.Set(i, i, 100)
	}
	SYRK(a, c)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != c.At(j, i) {
				t.Fatal("SYRK result not symmetric")
			}
		}
	}
}

func TestGenSPDDeterministic(t *testing.T) {
	a := NewMatrix(2, 3)
	a.GenSPD(5)
	b := NewMatrix(2, 3)
	b.GenSPD(5)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if a.Get(i, j) != b.Get(i, j) {
				t.Fatal("GenSPD must be deterministic")
			}
		}
	}
	if a.Get(1, 0) != a.Get(0, 1) {
		t.Fatal("GenSPD must be symmetric")
	}
}

func TestBlockOpCostCubic(t *testing.T) {
	if BlockOpCost(8) >= BlockOpCost(16) {
		t.Fatal("cost should grow cubically with block size")
	}
}
