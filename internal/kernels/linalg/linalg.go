// Package linalg provides blocked dense linear algebra (Cholesky
// factorization and its block kernels) used by the dataflow example — the
// classic OmpSs demonstration of out-of-order task execution beyond
// pipelines — and by scheduler stress tests.
package linalg

import (
	"math"
	"math/rand"
	"time"
)

// Block is a bs×bs column of a blocked matrix, stored row-major.
type Block struct {
	BS   int
	Data []float64
}

// NewBlock allocates a zero block.
func NewBlock(bs int) *Block { return &Block{BS: bs, Data: make([]float64, bs*bs)} }

// At returns element (i, j).
func (b *Block) At(i, j int) float64 { return b.Data[i*b.BS+j] }

// Set writes element (i, j).
func (b *Block) Set(i, j int, v float64) { b.Data[i*b.BS+j] = v }

// Matrix is an n×n blocked matrix of nb×nb blocks of size bs.
type Matrix struct {
	NB, BS int
	Blocks [][]*Block // Blocks[i][j], lower-triangular use
}

// NewMatrix allocates an nb×nb grid of bs×bs zero blocks.
func NewMatrix(nb, bs int) *Matrix {
	m := &Matrix{NB: nb, BS: bs, Blocks: make([][]*Block, nb)}
	for i := range m.Blocks {
		m.Blocks[i] = make([]*Block, nb)
		for j := range m.Blocks[i] {
			m.Blocks[i][j] = NewBlock(bs)
		}
	}
	return m
}

// GenSPD fills the matrix with a random symmetric positive-definite value
// (A = B·Bᵀ + n·I), deterministically from seed.
func (m *Matrix) GenSPD(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := m.NB * m.BS
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.Float64()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			m.set(i, j, s)
		}
	}
}

func (m *Matrix) set(i, j int, v float64) {
	m.Blocks[i/m.BS][j/m.BS].Set(i%m.BS, j%m.BS, v)
}

// Get returns element (i, j) of the full matrix.
func (m *Matrix) Get(i, j int) float64 {
	return m.Blocks[i/m.BS][j/m.BS].At(i%m.BS, j%m.BS)
}

// POTRF factors a diagonal block in place: A = L·Lᵀ (unblocked Cholesky).
func POTRF(a *Block) {
	bs := a.BS
	for j := 0; j < bs; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= a.At(j, k) * a.At(j, k)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < bs; i++ {
			v := a.At(i, j)
			for k := 0; k < j; k++ {
				v -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, v/d)
		}
		for i := 0; i < j; i++ {
			a.Set(i, j, 0)
		}
	}
}

// TRSM solves B ← B·L⁻ᵀ for a factored diagonal block L.
func TRSM(l, b *Block) {
	bs := l.BS
	for i := 0; i < bs; i++ {
		for j := 0; j < bs; j++ {
			v := b.At(i, j)
			for k := 0; k < j; k++ {
				v -= b.At(i, k) * l.At(j, k)
			}
			b.Set(i, j, v/l.At(j, j))
		}
	}
}

// SYRK updates a diagonal block: C ← C − A·Aᵀ.
func SYRK(a, c *Block) {
	bs := a.BS
	for i := 0; i < bs; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < bs; k++ {
				s += a.At(i, k) * a.At(j, k)
			}
			c.Set(i, j, c.At(i, j)-s)
			if i != j {
				c.Set(j, i, c.At(j, i)-s)
			}
		}
	}
}

// GEMM updates an off-diagonal block: C ← C − A·Bᵀ.
func GEMM(a, b, c *Block) {
	bs := a.BS
	for i := 0; i < bs; i++ {
		for j := 0; j < bs; j++ {
			var s float64
			for k := 0; k < bs; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			c.Set(i, j, c.At(i, j)-s)
		}
	}
}

// CholeskySequential factors the matrix in place (lower triangular), the
// reference for the task-parallel example.
func CholeskySequential(m *Matrix) {
	for k := 0; k < m.NB; k++ {
		POTRF(m.Blocks[k][k])
		for i := k + 1; i < m.NB; i++ {
			TRSM(m.Blocks[k][k], m.Blocks[i][k])
		}
		for i := k + 1; i < m.NB; i++ {
			SYRK(m.Blocks[i][k], m.Blocks[i][i])
			for j := k + 1; j < i; j++ {
				GEMM(m.Blocks[i][k], m.Blocks[j][k], m.Blocks[i][j])
			}
		}
	}
}

// ResidualL computes max |(L·Lᵀ − A)(i,j)| over the lower triangle, where m
// holds the factor L and orig the original matrix.
func ResidualL(m, orig *Matrix) float64 {
	n := m.NB * m.BS
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += m.Get(i, k) * m.Get(j, k)
			}
			if d := math.Abs(s - orig.Get(i, j)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// BlockOpCost is the simulated cost of one bs³ block kernel (GEMM-class).
func BlockOpCost(bs int) time.Duration {
	return time.Duration(bs*bs*bs) * 2 * time.Nanosecond
}
