// Package kmeans reimplements the kmeans benchmark kernel: Lloyd's
// algorithm over an n×dim point set. The parallel structure matches the
// original benchmark: the assignment phase partitions points across
// threads, each producing partial centroid sums, which a reduction merges
// before the centroid update; a barrier (or taskwait) separates iterations.
package kmeans

import "time"

// Problem is one clustering instance. Points is flattened n×dim.
type Problem struct {
	Points []float64
	N, Dim int
	K      int
}

// Partial is one thread's accumulation for the reduction: per-centroid
// coordinate sums and member counts, plus the local assignment-change count.
type Partial struct {
	Sums   []float64 // K×Dim
	Counts []int
	Moved  int
}

// NewPartial allocates a zeroed partial for the problem.
func (p *Problem) NewPartial() *Partial {
	return &Partial{Sums: make([]float64, p.K*p.Dim), Counts: make([]int, p.K)}
}

// Reset zeroes the partial for the next iteration.
func (pa *Partial) Reset() {
	for i := range pa.Sums {
		pa.Sums[i] = 0
	}
	for i := range pa.Counts {
		pa.Counts[i] = 0
	}
	pa.Moved = 0
}

// Merge folds other into pa.
func (pa *Partial) Merge(other *Partial) {
	for i, v := range other.Sums {
		pa.Sums[i] += v
	}
	for i, v := range other.Counts {
		pa.Counts[i] += v
	}
	pa.Moved += other.Moved
}

// InitCentroids returns the first K points as initial centroids (the
// deterministic initialization the original benchmark uses).
func (p *Problem) InitCentroids() []float64 {
	c := make([]float64, p.K*p.Dim)
	copy(c, p.Points[:p.K*p.Dim])
	return c
}

// AssignRange performs the assignment phase for points [lo, hi): finds each
// point's nearest centroid, records it in assign, and accumulates the
// partial sums. This is the parallel work unit.
func (p *Problem) AssignRange(centroids []float64, assign []int, pa *Partial, lo, hi int) {
	for i := lo; i < hi; i++ {
		pt := p.Points[i*p.Dim : (i+1)*p.Dim]
		best, bestD := 0, distSq(pt, centroids[:p.Dim])
		for c := 1; c < p.K; c++ {
			if d := distSq(pt, centroids[c*p.Dim:(c+1)*p.Dim]); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			pa.Moved++
		}
		sums := pa.Sums[best*p.Dim : (best+1)*p.Dim]
		for d, v := range pt {
			sums[d] += v
		}
		pa.Counts[best]++
	}
}

// UpdateCentroids computes new centroids from a fully merged partial,
// returning the number of points that changed assignment this iteration.
func (p *Problem) UpdateCentroids(centroids []float64, merged *Partial) int {
	for c := 0; c < p.K; c++ {
		if merged.Counts[c] == 0 {
			continue // keep empty centroid in place
		}
		inv := 1 / float64(merged.Counts[c])
		for d := 0; d < p.Dim; d++ {
			centroids[c*p.Dim+d] = merged.Sums[c*p.Dim+d] * inv
		}
	}
	return merged.Moved
}

// Run executes Lloyd's algorithm sequentially (reference variant),
// returning the final centroids, assignment, and iteration count.
func (p *Problem) Run(maxIter int) ([]float64, []int, int) {
	centroids := p.InitCentroids()
	assign := make([]int, p.N)
	for i := range assign {
		assign[i] = -1
	}
	pa := p.NewPartial()
	iters := 0
	for it := 0; it < maxIter; it++ {
		iters++
		pa.Reset()
		p.AssignRange(centroids, assign, pa, 0, p.N)
		if moved := p.UpdateCentroids(centroids, pa); moved == 0 {
			break
		}
	}
	return centroids, assign, iters
}

// Cost returns the total squared distance of points to their assigned
// centroids (the clustering objective, for tests).
func (p *Problem) Cost(centroids []float64, assign []int) float64 {
	var sum float64
	for i := 0; i < p.N; i++ {
		c := assign[i]
		sum += distSq(p.Points[i*p.Dim:(i+1)*p.Dim], centroids[c*p.Dim:(c+1)*p.Dim])
	}
	return sum
}

func distSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// PointCost is the simulated per-point assignment cost for a problem with K
// centroids of the given dimension.
func PointCost(k, dim int) time.Duration {
	return time.Duration(k*dim*2+20) * time.Nanosecond
}

// RangeCost estimates the simulated cost of assigning `points` points.
func RangeCost(points, k, dim int) time.Duration {
	return time.Duration(points) * PointCost(k, dim)
}
