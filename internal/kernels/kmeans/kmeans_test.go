package kmeans

import (
	"math"
	"testing"

	"ompssgo/internal/media"
)

func problem(n, dim, k int, seed int64) *Problem {
	pts, _ := media.Points(n, dim, k, seed)
	return &Problem{Points: pts, N: n, Dim: dim, K: k}
}

func TestConvergesOnSeparatedClusters(t *testing.T) {
	p := problem(300, 3, 4, 1)
	centroids, assign, iters := p.Run(100)
	if iters >= 100 {
		t.Fatalf("did not converge in %d iterations", iters)
	}
	// Every cluster should be non-empty and the objective small relative
	// to a single-cluster solution.
	counts := make([]int, p.K)
	for _, a := range assign {
		counts[a]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("cluster %d empty", c)
		}
	}
	got := p.Cost(centroids, assign)
	single := problem(300, 3, 4, 1)
	single.K = 1
	c1, a1, _ := single.Run(100)
	if got >= single.Cost(c1, a1)/4 {
		t.Fatalf("k=4 cost %.1f not much better than k=1 cost %.1f", got, single.Cost(c1, a1))
	}
}

func TestLloydMonotoneNonIncreasing(t *testing.T) {
	p := problem(200, 2, 3, 2)
	centroids := p.InitCentroids()
	assign := make([]int, p.N)
	for i := range assign {
		assign[i] = -1
	}
	pa := p.NewPartial()
	prev := math.Inf(1)
	for it := 0; it < 20; it++ {
		pa.Reset()
		p.AssignRange(centroids, assign, pa, 0, p.N)
		cost := p.Cost(centroids, assign)
		if cost > prev+1e-9 {
			t.Fatalf("iteration %d: cost rose %.6f -> %.6f", it, prev, cost)
		}
		prev = cost
		if p.UpdateCentroids(centroids, pa) == 0 {
			break
		}
	}
}

func TestPartitionedAssignEquivalence(t *testing.T) {
	// The parallel decomposition contract: range-split assignment with
	// partial merge equals the full-range pass.
	p := problem(250, 3, 4, 3)
	centroids := p.InitCentroids()

	fullAssign := make([]int, p.N)
	for i := range fullAssign {
		fullAssign[i] = -1
	}
	full := p.NewPartial()
	p.AssignRange(centroids, fullAssign, full, 0, p.N)

	partAssign := make([]int, p.N)
	for i := range partAssign {
		partAssign[i] = -1
	}
	merged := p.NewPartial()
	for _, blk := range [][2]int{{100, 250}, {0, 40}, {40, 100}} {
		pa := p.NewPartial()
		p.AssignRange(centroids, partAssign, pa, blk[0], blk[1])
		merged.Merge(pa)
	}
	for i := range fullAssign {
		if fullAssign[i] != partAssign[i] {
			t.Fatalf("assignment differs at %d", i)
		}
	}
	if full.Moved != merged.Moved {
		t.Fatalf("moved %d != %d", full.Moved, merged.Moved)
	}
	for i := range full.Sums {
		if math.Abs(full.Sums[i]-merged.Sums[i]) > 1e-9 {
			t.Fatalf("sum %d differs", i)
		}
	}
	for i := range full.Counts {
		if full.Counts[i] != merged.Counts[i] {
			t.Fatalf("count %d differs", i)
		}
	}
}

func TestEmptyClusterKept(t *testing.T) {
	// Two identical points, K=2 with distinct initial centroids: one
	// centroid may end up empty and must stay in place (not NaN).
	p := &Problem{Points: []float64{0, 0, 0, 0, 9, 9}, N: 3, Dim: 2, K: 2}
	centroids, _, _ := p.Run(10)
	for _, v := range centroids {
		if math.IsNaN(v) {
			t.Fatal("NaN centroid from empty cluster")
		}
	}
}

func TestCostModelScales(t *testing.T) {
	if PointCost(8, 4) <= PointCost(2, 4) {
		t.Fatal("cost should scale with K")
	}
	if RangeCost(100, 4, 4) != 100*PointCost(4, 4) {
		t.Fatal("RangeCost linear in points")
	}
}
