package color

import (
	"testing"

	"ompssgo/internal/media"
)

func TestCMYInversion(t *testing.T) {
	src := media.Image(32, 24, 1)
	dst := NewCMY(32, 24)
	RGBToCMY(dst, src)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			r, g, b := src.At(x, y)
			if dst.C.At(x, y) != 255-r || dst.M.At(x, y) != 255-g || dst.Y.At(x, y) != 255-b {
				t.Fatalf("CMY inversion wrong at (%d,%d)", x, y)
			}
		}
	}
}

func TestCMYKUnderColorRemoval(t *testing.T) {
	src := media.Image(32, 24, 2)
	dst := NewCMYK(32, 24)
	RGBToCMYK(dst, src)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			r, g, b := src.At(x, y)
			c, m, yy, k := dst.C.At(x, y), dst.M.At(x, y), dst.Y.At(x, y), dst.K.At(x, y)
			// Reconstruction: plane + K = 255 − channel.
			if int(c)+int(k) != int(255-r) || int(m)+int(k) != int(255-g) || int(yy)+int(k) != int(255-b) {
				t.Fatalf("CMYK reconstruction wrong at (%d,%d)", x, y)
			}
			// K must be the min of the CMY components.
			if k > c+k || k > m+k || k > yy+k {
				t.Fatalf("K not minimal at (%d,%d)", x, y)
			}
		}
	}
}

func TestRowPartitionEquivalence(t *testing.T) {
	src := media.Image(40, 30, 3)
	full := NewCMY(40, 30)
	RGBToCMY(full, src)
	parts := NewCMY(40, 30)
	for _, blk := range [][2]int{{20, 30}, {0, 9}, {9, 20}} {
		RGBToCMYRows(parts, src, blk[0], blk[1])
	}
	if full.Checksum() != parts.Checksum() {
		t.Fatal("row-partitioned conversion differs")
	}
	fullK := NewCMYK(40, 30)
	RGBToCMYK(fullK, src)
	partsK := NewCMYK(40, 30)
	for _, blk := range [][2]int{{15, 30}, {0, 15}} {
		RGBToCMYKRows(partsK, src, blk[0], blk[1])
	}
	if fullK.Checksum() != partsK.Checksum() {
		t.Fatal("row-partitioned CMYK conversion differs")
	}
}

func TestChecksumSensitive(t *testing.T) {
	a, b := NewCMY(8, 8), NewCMY(8, 8)
	if a.Checksum() != b.Checksum() {
		t.Fatal("empty planes should match")
	}
	b.M.Set(1, 1, 9)
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum must see plane changes")
	}
}
