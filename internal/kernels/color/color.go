// Package color reimplements the rgbcmy benchmark kernel: per-pixel color
// space conversion from interleaved RGB to CMY planes (and the CMYK and
// grayscale variants used by the rot-cc workload). The parallel work unit is
// a block of rows; the rgbcmy benchmark repeats the conversion many times
// with a barrier between iterations to stabilize timing, which is exactly
// what makes it barrier-latency bound (paper §4).
package color

import (
	"time"

	"ompssgo/internal/img"
)

// CMY holds the three subtractive output planes.
type CMY struct {
	C, M, Y *img.Gray
}

// NewCMY allocates planes for a w×h conversion.
func NewCMY(w, h int) *CMY {
	return &CMY{C: img.NewGray(w, h), M: img.NewGray(w, h), Y: img.NewGray(w, h)}
}

// Checksum combines the plane checksums.
func (p *CMY) Checksum() uint64 {
	return p.C.Checksum()*31 ^ p.M.Checksum()*17 ^ p.Y.Checksum()
}

// RGBToCMYRows converts rows [y0, y1): C=255−R, M=255−G, Y=255−B.
func RGBToCMYRows(dst *CMY, src *img.RGB, y0, y1 int) {
	for y := y0; y < y1; y++ {
		srow := src.Row(y)
		crow, mrow, yrow := dst.C.Row(y), dst.M.Row(y), dst.Y.Row(y)
		for x := 0; x < src.W; x++ {
			crow[x] = 255 - srow[3*x]
			mrow[x] = 255 - srow[3*x+1]
			yrow[x] = 255 - srow[3*x+2]
		}
	}
}

// RGBToCMY converts the whole image sequentially.
func RGBToCMY(dst *CMY, src *img.RGB) { RGBToCMYRows(dst, src, 0, src.H) }

// CMYK holds four planes with black generation.
type CMYK struct {
	C, M, Y, K *img.Gray
}

// NewCMYK allocates planes for a w×h conversion.
func NewCMYK(w, h int) *CMYK {
	return &CMYK{C: img.NewGray(w, h), M: img.NewGray(w, h), Y: img.NewGray(w, h), K: img.NewGray(w, h)}
}

// Checksum combines the plane checksums.
func (p *CMYK) Checksum() uint64 {
	return p.C.Checksum()*31 ^ p.M.Checksum()*17 ^ p.Y.Checksum()*7 ^ p.K.Checksum()
}

// RGBToCMYKRows converts rows [y0, y1) with under-color removal: K is the
// minimum of the CMY components, subtracted from each plane.
func RGBToCMYKRows(dst *CMYK, src *img.RGB, y0, y1 int) {
	for y := y0; y < y1; y++ {
		srow := src.Row(y)
		crow, mrow, yrow, krow := dst.C.Row(y), dst.M.Row(y), dst.Y.Row(y), dst.K.Row(y)
		for x := 0; x < src.W; x++ {
			c := 255 - srow[3*x]
			m := 255 - srow[3*x+1]
			yy := 255 - srow[3*x+2]
			k := min8(c, min8(m, yy))
			crow[x], mrow[x], yrow[x], krow[x] = c-k, m-k, yy-k, k
		}
	}
}

// RGBToCMYK converts the whole image sequentially.
func RGBToCMYK(dst *CMYK, src *img.RGB) { RGBToCMYKRows(dst, src, 0, src.H) }

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

// PixelCost is the simulated per-pixel conversion cost, including the
// LLC-resident memory time of the streaming loads and stores (the rgbcmy
// working set fits in cache across its many iterations).
func PixelCost() time.Duration { return 12 * time.Nanosecond }

// RowsCost estimates the simulated compute cost of converting `pixels`
// pixels.
func RowsCost(pixels int) time.Duration { return time.Duration(pixels) * PixelCost() }
