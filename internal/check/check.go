// Package check provides the result-checksum helpers used to verify that
// the sequential, Pthreads, and OmpSs variants of every benchmark compute
// identical outputs.
package check

import (
	"hash/fnv"
	"math"
)

// Combine folds a sequence of checksums into one, order-sensitively.
func Combine(sums []uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, s := range sums {
		for i := 0; i < 8; i++ {
			b[i] = byte(s >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// Floats hashes a float64 slice bit-exactly. Benchmark decompositions are
// arranged so floating-point reduction order is identical across variants
// (fixed chunk boundaries, in-order merges), making bit-exact comparison
// valid.
func Floats(vals []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		u := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// Ints hashes an int slice.
func Ints(vals []int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// Bytes hashes a byte slice.
func Bytes(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}
