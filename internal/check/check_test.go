package check

import "testing"

func TestCombineOrderSensitive(t *testing.T) {
	a := Combine([]uint64{1, 2, 3})
	b := Combine([]uint64{3, 2, 1})
	if a == b {
		t.Fatal("combine must be order-sensitive")
	}
	if Combine([]uint64{1, 2, 3}) != a {
		t.Fatal("combine must be deterministic")
	}
}

func TestFloatsBitExact(t *testing.T) {
	a := Floats([]float64{1.0, 2.0})
	b := Floats([]float64{1.0, 2.0000000000000004}) // one ulp apart
	if a == b {
		t.Fatal("one-ulp difference must change the hash")
	}
	neg := Floats([]float64{0.0})
	negZero := Floats([]float64{negZeroF()})
	if neg == negZero {
		t.Fatal("±0 must hash differently (bit-exact)")
	}
}

func negZeroF() float64 {
	z := 0.0
	return -z
}

func TestIntsAndBytes(t *testing.T) {
	if Ints([]int{1, 2}) == Ints([]int{2, 1}) {
		t.Fatal("Ints order-sensitive")
	}
	if Bytes([]byte("abc")) == Bytes([]byte("abd")) {
		t.Fatal("Bytes content-sensitive")
	}
}
