// Package obs is the low-overhead observability subsystem: per-worker
// fixed-capacity ring buffers record a widened task-lifecycle event
// vocabulary with no shared mutex on the record path, and an offline
// analyzer merges the rings into one ordered stream and computes the
// paper-style reports — instantaneous-parallelism profile, critical path
// through the dependence graph, per-worker utilization and steal matrix,
// and top-N tasks by exclusive time. Exporters turn the same stream into
// Chrome trace-event JSON (chrome://tracing, Perfetto) and a
// Paraver-flavored CSV timeline.
//
// Record-path contract (enforced by the alloc-budget tests): emitting an
// event performs zero heap allocations and takes no lock shared between
// workers — one global atomic sequence fetch-add (the merge order), one
// per-ring atomic slot claim, and one per-slot CAS publication (uncontended
// except when a wrapped ring aliases two writers onto one slot). Timestamps
// are epoch-relative: wall-clock nanoseconds for native runs, virtual
// nanoseconds for simulated ones — the recorder never interprets them.
package obs

// Kind labels one recorded event. The vocabulary covers the full lifecycle
// the paper's evaluation reasons about: dependence structure (Submit, Edge),
// readiness and execution (Ready, Start, End, Skip), scheduler mechanics
// (Steal, IdleEnter/IdleExit), synchronization (TaskwaitEnter/TaskwaitExit),
// and dependence renaming (Rename, Writeback).
type Kind uint8

const (
	// EvSubmit records task creation; Arg is the number of unfinished
	// predecessors the task waited on, Label its Label clause.
	EvSubmit Kind = iota
	// EvEdge records one dependence edge at submission: Task is the
	// successor, Arg the predecessor's task ID.
	EvEdge
	// EvReady records a task becoming runnable (at submission, or released
	// by a finishing predecessor on the recording worker).
	EvReady
	// EvStart records dispatch onto a worker lane.
	EvStart
	// EvEnd records completion (body returned, or skip-release finished).
	EvEnd
	// EvSkip records that the executor released the task without running
	// its body (upstream failure under SkipDependents, or cancellation).
	EvSkip
	// EvSteal records a successful steal by the recording worker; Arg is
	// the victim lane.
	EvSteal
	// EvIdleEnter records a worker running out of visible work.
	EvIdleEnter
	// EvIdleExit records an idle worker obtaining work again.
	EvIdleExit
	// EvTaskwaitEnter records a thread entering taskwait/taskwait-on.
	EvTaskwaitEnter
	// EvTaskwaitExit records the matching wait completing.
	EvTaskwaitExit
	// EvRename records a write-mode access receiving a fresh renamed
	// instance instead of WAR/WAW edges (Task is the renamed writer).
	EvRename
	// EvWriteback records a drained version chain copying its last good
	// instance back onto canonical storage (Task is that instance's
	// program-order last writer, 0 when unknown).
	EvWriteback
	// EvXfer records a datum version copied to another address space (the
	// distributed backend's copy-in, or the Done-carry back): Task is the
	// task the transfer serves, Arg the byte count, Worker the lane of the
	// process the bytes moved to or from.
	EvXfer
	// EvXferHit records a transfer avoided by a per-worker version cache:
	// the (datum, version) pair was already resident. Task is the served
	// task, Arg the bytes NOT moved.
	EvXferHit
	// EvChain records the distributed coordinator pushing a task chain —
	// a ready task plus its sole-dependent successors — to one worker in
	// a single dispatch frame: Task is the chain's first link, Arg the
	// number of tasks in the chain, Worker the executing lane.
	EvChain
	// EvForward records a worker-to-worker direct transfer: the recording
	// worker pulled a (datum, version) payload straight from the peer that
	// produced it, bypassing the coordinator. Task is the served task, Arg
	// the byte count.
	EvForward
	// EvTune records the feedback controller moving a setpoint: Label
	// names the control loop ("grain", "spin-yields", "sleep-cap",
	// "rename-cap"), Arg the old value, Task the new value.
	EvTune

	numKinds = iota
)

var kindNames = [numKinds]string{
	"submit", "edge", "ready", "start", "end", "skip", "steal",
	"idle-enter", "idle-exit", "taskwait-enter", "taskwait-exit",
	"rename", "writeback", "xfer", "xfer-hit", "chain",
	"forward", "tune",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// KindFromString parses the Kind serialization used in trace files; ok is
// false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one fixed-size trace record. Seq is the global merge order (a
// recorder-wide atomic counter, 1-based; 0 marks an empty ring slot). At is
// nanoseconds since the run's epoch (wall-clock for native runs, virtual
// time for simulated ones). Worker is the recording lane; -1 stands for
// "no lane" (events emitted from dependence-tracker context, which routes
// to the overflow ring). Task and Arg carry the kind-specific payload
// documented on each Kind; Label is set on EvSubmit only.
// Sess tags the
// session (executor domain) that submitted the task; it is set on EvSubmit
// only (0 = no session / pre-session trace) — per-session views recover the
// task→session map from submissions (see Trace.FilterSession).
type Event struct {
	Seq    uint64
	At     int64
	Task   uint64
	Arg    uint64
	Sess   uint64
	Worker int32
	Kind   Kind
	Label  string
}
