package obs

import (
	"fmt"
	"io"
)

// WriteParaverCSV exports the trace as a Paraver-flavored CSV timeline:
// one `state` row per executed task (its running interval on its lane),
// one `state` row per recorded idle and taskwait interval, and one `event`
// row per punctual record (steal, skip, rename, writeback). Times are
// microseconds since the run epoch, so the file plots directly as a
// Gantt/timeline — the view the paper's authors read schedules from in
// Paraver.
//
//	record,worker,task,label,start_us,end_us
func WriteParaverCSV(w io.Writer, tr *Trace) error {
	a := Analyze(tr)
	if _, err := fmt.Fprintln(w, "record,worker,task,label,start_us,end_us"); err != nil {
		return err
	}
	row := func(kind string, worker int, task uint64, label string, from, to int64) error {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%q,%.3f,%.3f\n", kind, worker, task, label, us(from), us(to))
		return err
	}
	for _, id := range a.Order {
		t := a.Tasks[id]
		if !t.Complete() {
			continue
		}
		state := "running"
		if t.Skipped {
			state = "skipped"
		}
		if err := row(state, t.Worker, t.ID, t.Name(), t.Start, t.End); err != nil {
			return err
		}
	}
	// Idle and taskwait intervals, re-paired off the raw stream.
	open := map[int32]int64{}
	openTW := map[int32][2]int64{} // depth, enter-at
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case EvIdleEnter:
			open[ev.Worker] = ev.At
		case EvIdleExit:
			if from, ok := open[ev.Worker]; ok {
				delete(open, ev.Worker)
				if err := row("idle", int(ev.Worker), 0, "idle", from, ev.At); err != nil {
					return err
				}
			}
		case EvTaskwaitEnter:
			st := openTW[ev.Worker]
			if st[0] == 0 {
				st[1] = ev.At
			}
			st[0]++
			openTW[ev.Worker] = st
		case EvTaskwaitExit:
			st := openTW[ev.Worker]
			if st[0] > 0 {
				st[0]--
				openTW[ev.Worker] = st
				if st[0] == 0 {
					if err := row("taskwait", int(ev.Worker), 0, "taskwait", st[1], ev.At); err != nil {
						return err
					}
				}
			}
		case EvSteal:
			if err := row("steal", int(ev.Worker), ev.Task,
				fmt.Sprintf("steal from %d", ev.Arg), ev.At, ev.At); err != nil {
				return err
			}
		case EvSkip:
			if err := row("skip", int(ev.Worker), ev.Task, "skip", ev.At, ev.At); err != nil {
				return err
			}
		case EvRename:
			if err := row("rename", int(ev.Worker), ev.Task, "rename", ev.At, ev.At); err != nil {
				return err
			}
		case EvWriteback:
			if err := row("writeback", int(ev.Worker), ev.Task, "writeback", ev.At, ev.At); err != nil {
				return err
			}
		}
	}
	return nil
}
