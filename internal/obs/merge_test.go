package obs

// Deterministic merge tests: synthetic coordinator and worker streams with
// known clock offsets, checked for exact merged ordering, the exactly-once
// lifecycle rule, track metadata, and the drop-vector layout. No processes
// are spawned — this is the sim-side contract the distributed domain's
// end-to-end tests (internal/dist) build on.

import (
	"bytes"
	"testing"
)

// synthBase builds a two-lane coordinator trace from events stamped with
// explicit times and sequences.
func synthBase(events ...Event) *Trace {
	return &Trace{
		Backend:  "dist",
		Workers:  2,
		Capacity: 64,
		Dropped:  []uint64{3, 0, 7}, // lane 0, lane 1, overflow
		Events:   events,
	}
}

func ev(seq uint64, at int64, worker int32, k Kind, task uint64) Event {
	return Event{Seq: seq, At: at, Worker: worker, Kind: k, Task: task}
}

// TestMergeTracesDeterministic pins the whole merge: two worker streams
// with opposite clock skews fold into one stream whose order, lanes, and
// renumbering are exactly predictable.
func TestMergeTracesDeterministic(t *testing.T) {
	// Coordinator: submits tasks 1 and 2, then records its own dispatch
	// start/end for both (to be dropped — both execute remotely), and one
	// xfer that must survive.
	base := synthBase(
		ev(1, 100, 0, EvSubmit, 1),
		ev(2, 200, 0, EvSubmit, 2),
		ev(3, 300, 0, EvStart, 1), // dropped: task 1 ran remotely
		ev(4, 350, 1, EvXfer, 1),  // kept: dispatch structure
		ev(5, 900, 0, EvEnd, 1),   // dropped
		ev(6, 950, 1, EvStart, 2), // dropped
		ev(7, 980, 1, EvEnd, 2),   // dropped
	)

	// Worker A runs task 1; its clock started 400ns before the
	// coordinator's epoch (offset +400 brings it onto the base clock).
	wa := TrackStream{
		Slot: 0, Gen: 1, PID: 111, Offset: +400,
		Events: []Event{
			ev(1, 0, 0, EvStart, 1), // aligned to 400
			ev(2, 100, 0, EvEnd, 1), // aligned to 500
		},
		Dropped: 5,
	}
	// Worker B runs task 2; its clock started after the coordinator's
	// (offset −50), and its first event would land before the epoch —
	// clamped to 0.
	wb := TrackStream{
		Slot: 1, Gen: 2, PID: 222, Offset: -50,
		Events: []Event{
			ev(1, 10, 0, EvIdleEnter, 0), // aligned to -40 → clamped 0
			ev(2, 650, 0, EvStart, 2),    // aligned to 600
			ev(3, 750, 0, EvEnd, 2),      // aligned to 700
		},
	}

	m := MergeTraces(base, []TrackStream{wa, wb})

	if m.Workers != 4 {
		t.Fatalf("merged Workers = %d, want 4", m.Workers)
	}
	// Expected order: wb's clamped idle (0), submits (100, 200), wa start
	// (400), wa end (500), coordinator xfer @350 before them... sorted by
	// time: 0, 100, 200, 350, 400, 500, 600, 700.
	want := []struct {
		at     int64
		worker int32
		kind   Kind
		task   uint64
	}{
		{0, 3, EvIdleEnter, 0},
		{100, 0, EvSubmit, 1},
		{200, 0, EvSubmit, 2},
		{350, 1, EvXfer, 1},
		{400, 2, EvStart, 1},
		{500, 2, EvEnd, 1},
		{600, 3, EvStart, 2},
		{700, 3, EvEnd, 2},
	}
	if len(m.Events) != len(want) {
		t.Fatalf("merged %d events, want %d: %+v", len(m.Events), len(want), m.Events)
	}
	for i, w := range want {
		got := m.Events[i]
		if got.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, got.Seq, i+1)
		}
		if got.At != w.at || got.Worker != w.worker || got.Kind != w.kind || got.Task != w.task {
			t.Errorf("event %d = {At:%d Worker:%d Kind:%v Task:%d}, want %+v",
				i, got.At, got.Worker, got.Kind, got.Task, w)
		}
	}

	// Track metadata: base lanes first, then one track per stream.
	wantTracks := []Track{
		{Lane: 0, Proc: "coordinator"},
		{Lane: 1, Proc: "coordinator"},
		{Lane: 2, Proc: "worker", Slot: 0, Gen: 1, PID: 111, Label: "worker slot 0 gen 1 pid 111"},
		{Lane: 3, Proc: "worker", Slot: 1, Gen: 2, PID: 222, Label: "worker slot 1 gen 2 pid 222"},
	}
	if len(m.Tracks) != len(wantTracks) {
		t.Fatalf("merged %d tracks, want %d", len(m.Tracks), len(wantTracks))
	}
	for i, w := range wantTracks {
		if m.Tracks[i] != w {
			t.Errorf("track %d = %+v, want %+v", i, m.Tracks[i], w)
		}
	}

	// Drop vector: base lanes, stream slots, base overflow at the end.
	wantDropped := []uint64{3, 0, 5, 0, 7}
	if len(m.Dropped) != len(wantDropped) {
		t.Fatalf("dropped vector %v, want %v", m.Dropped, wantDropped)
	}
	for i, w := range wantDropped {
		if m.Dropped[i] != w {
			t.Fatalf("dropped vector %v, want %v", m.Dropped, wantDropped)
		}
	}
	if got := m.TotalDropped(); got != 15 {
		t.Errorf("TotalDropped = %d, want 15", got)
	}
}

// TestMergeTracesTieOrder pins the tie-break: at equal aligned timestamps,
// coordinator events sort first, then streams in ship order, then each
// source's own sequence.
func TestMergeTracesTieOrder(t *testing.T) {
	base := synthBase(
		ev(1, 500, 0, EvSubmit, 9),
		ev(2, 500, 1, EvReady, 9),
	)
	wa := TrackStream{Slot: 0, Gen: 1, PID: 1, Offset: 0,
		Events: []Event{ev(1, 500, 0, EvChain, 9), ev(2, 500, 0, EvXfer, 9)}}
	wb := TrackStream{Slot: 1, Gen: 1, PID: 2, Offset: 100,
		Events: []Event{ev(1, 400, 0, EvXferHit, 9)}}

	m := MergeTraces(base, []TrackStream{wa, wb})
	wantKinds := []Kind{EvSubmit, EvReady, EvChain, EvXfer, EvXferHit}
	if len(m.Events) != len(wantKinds) {
		t.Fatalf("merged %d events, want %d", len(m.Events), len(wantKinds))
	}
	for i, k := range wantKinds {
		if m.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, m.Events[i].Kind, k)
		}
		if m.Events[i].At != 500 {
			t.Errorf("event %d at = %d, want 500", i, m.Events[i].At)
		}
	}
}

// TestMergeTracesPartialLifecycle checks the exactly-once rule's guard: a
// task with only a worker-side start (its end was lost with the worker)
// keeps the coordinator's lifecycle events.
func TestMergeTracesPartialLifecycle(t *testing.T) {
	base := synthBase(
		ev(1, 100, 0, EvStart, 5),
		ev(2, 200, 0, EvEnd, 5),
	)
	w := TrackStream{Slot: 0, Gen: 1, PID: 1,
		Events: []Event{ev(1, 150, 0, EvStart, 5)}} // no end: worker died
	m := MergeTraces(base, []TrackStream{w})
	var coordLifecycle int
	for _, e := range m.Events {
		if e.Worker < 2 && (e.Kind == EvStart || e.Kind == EvEnd) {
			coordLifecycle++
		}
	}
	if coordLifecycle != 2 {
		t.Fatalf("coordinator lifecycle events = %d, want 2 (partial worker lifecycle must not suppress them)", coordLifecycle)
	}
}

// TestMergedTraceRoundTrip checks Tracks survive the JSON wire format.
func TestMergedTraceRoundTrip(t *testing.T) {
	base := synthBase(ev(1, 100, 0, EvSubmit, 1))
	m := MergeTraces(base, []TrackStream{{Slot: 0, Gen: 1, PID: 42,
		Events: []Event{ev(1, 0, 0, EvStart, 1), ev(2, 10, 0, EvEnd, 1)}}})

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(back.Tracks) != len(m.Tracks) {
		t.Fatalf("round-trip lost tracks: %d vs %d", len(back.Tracks), len(m.Tracks))
	}
	for i := range m.Tracks {
		if back.Tracks[i] != m.Tracks[i] {
			t.Fatalf("track %d round-tripped to %+v, want %+v", i, back.Tracks[i], m.Tracks[i])
		}
	}
	if len(back.Events) != len(m.Events) {
		t.Fatalf("round-trip lost events: %d vs %d", len(back.Events), len(m.Events))
	}
}
