package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceSchema identifies the raw-trace JSON document format written by
// Trace.WriteJSON and read back by ReadTrace (cmd/ompss-trace's on-disk
// format).
const TraceSchema = "ompssgo/obs-trace/v1"

// Trace is the merged, ordered event stream of one run plus the metadata
// the analyzer needs: which backend recorded it, whether timestamps are
// virtual, how many lanes there were, and exactly how many events each
// ring overwrote (so truncation is visible, never silent).
type Trace struct {
	Backend string // "native" or "sim"
	Virtual bool   // timestamps are virtual nanoseconds
	Workers int
	// Capacity is the per-ring capacity the recorder ran with.
	Capacity int
	// Dropped is the exact per-ring overwrite count, indexed by lane;
	// the last entry is the overflow ring (no-lane emitters).
	Dropped []uint64
	// Tracks carries lane identity for merged multi-process traces
	// (MergeTraces); nil for single-process traces, where every lane
	// belongs to the recording process.
	Tracks []Track
	// Events is the merged stream, ascending by Seq.
	Events []Event
}

// TotalDropped sums the per-ring drop counts.
func (t *Trace) TotalDropped() uint64 {
	var n uint64
	for _, d := range t.Dropped {
		n += d
	}
	return n
}

// Span returns the largest event timestamp (ns since the epoch).
func (t *Trace) Span() int64 {
	var max int64
	for i := range t.Events {
		if at := t.Events[i].At; at > max {
			max = at
		}
	}
	return max
}

// Snapshot merges the recorder's rings into an ordered Trace. Call after
// the run drained for a complete stream; a mid-run snapshot is safe and
// returns a consistent prefix-with-holes (in-flight slots are skipped).
func (r *Recorder) Snapshot() *Trace {
	t := &Trace{
		Backend:  r.backend,
		Virtual:  r.virtual,
		Workers:  r.workers,
		Capacity: r.capacity,
	}
	if len(r.rings) == 0 {
		return t
	}
	t.Dropped = make([]uint64, len(r.rings))
	var n int
	for i := range r.rings {
		t.Dropped[i] = r.rings[i].dropped()
		h := r.rings[i].head.Load()
		if c := uint64(len(r.rings[i].slots)); h > c {
			h = c
		}
		n += int(h)
	}
	t.Events = make([]Event, 0, n)
	for i := range r.rings {
		t.Events = r.rings[i].collect(t.Events)
	}
	sort.Slice(t.Events, func(i, j int) bool { return t.Events[i].Seq < t.Events[j].Seq })
	return t
}

// Sessions returns the distinct session IDs that submitted tasks in this
// trace, ascending, with the number of submissions per session. Traces from
// pre-session runs (or engine-level emitters) report everything under ID 0.
func (t *Trace) Sessions() ([]uint64, map[uint64]int) {
	counts := make(map[uint64]int)
	for i := range t.Events {
		if t.Events[i].Kind == EvSubmit {
			counts[t.Events[i].Sess]++
		}
	}
	ids := make([]uint64, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, counts
}

// FilterSession returns a view of the trace containing only one session's
// task-lifecycle events: submissions tagged with the session ID, every
// task-scoped event (edge/ready/start/end/skip/steal/rename) of those
// tasks, and the edges between them. Worker-scoped events (idle, taskwait)
// are dropped — they describe lanes shared by every session. Metadata
// (backend, workers, drop counts) is preserved so the analyzer's reports
// stay honest about truncation.
func (t *Trace) FilterSession(sess uint64) *Trace {
	mine := make(map[uint64]struct{})
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind == EvSubmit && ev.Sess == sess && ev.Task != 0 {
			mine[ev.Task] = struct{}{}
		}
	}
	out := &Trace{
		Backend:  t.Backend,
		Virtual:  t.Virtual,
		Workers:  t.Workers,
		Capacity: t.Capacity,
		Dropped:  t.Dropped,
	}
	for i := range t.Events {
		ev := t.Events[i]
		switch ev.Kind {
		case EvIdleEnter, EvIdleExit, EvTaskwaitEnter, EvTaskwaitExit:
			continue
		case EvEdge:
			// Keep an edge only when both endpoints are in-session; a
			// cross-session edge (shared data) would drag foreign tasks
			// into the critical-path analysis.
			if _, ok := mine[ev.Task]; !ok {
				continue
			}
			if _, ok := mine[ev.Arg]; !ok {
				continue
			}
		default:
			if _, ok := mine[ev.Task]; !ok {
				continue
			}
		}
		out.Events = append(out.Events, ev)
	}
	return out
}

// wireTrace is the JSON document layout. Events use short keys — traces
// run to hundreds of thousands of events.
type wireTrace struct {
	Schema   string      `json:"schema"`
	Backend  string      `json:"backend"`
	Virtual  bool        `json:"virtual"`
	Workers  int         `json:"workers"`
	Capacity int         `json:"capacity"`
	Dropped  []uint64    `json:"dropped"`
	Tracks   []Track     `json:"tracks,omitempty"`
	Events   []wireEvent `json:"events"`
}

type wireEvent struct {
	Seq    uint64 `json:"s"`
	At     int64  `json:"at"`
	Kind   string `json:"k"`
	Worker int32  `json:"w"`
	Task   uint64 `json:"t,omitempty"`
	Arg    uint64 `json:"a,omitempty"`
	Sess   uint64 `json:"sid,omitempty"`
	Label  string `json:"l,omitempty"`
}

// WriteJSON serializes the trace as the raw-trace document consumed by
// `ompss-trace analyze` and `ompss-trace export`.
func (t *Trace) WriteJSON(w io.Writer) error {
	wt := wireTrace{
		Schema:   TraceSchema,
		Backend:  t.Backend,
		Virtual:  t.Virtual,
		Workers:  t.Workers,
		Capacity: t.Capacity,
		Dropped:  t.Dropped,
		Tracks:   t.Tracks,
		Events:   make([]wireEvent, len(t.Events)),
	}
	for i, ev := range t.Events {
		wt.Events[i] = wireEvent{
			Seq:    ev.Seq,
			At:     ev.At,
			Kind:   ev.Kind.String(),
			Worker: ev.Worker,
			Task:   ev.Task,
			Arg:    ev.Arg,
			Sess:   ev.Sess,
			Label:  ev.Label,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&wt)
}

// ReadTrace parses a raw-trace document.
func ReadTrace(rd io.Reader) (*Trace, error) {
	var wt wireTrace
	if err := json.NewDecoder(rd).Decode(&wt); err != nil {
		return nil, fmt.Errorf("obs: parse trace: %w", err)
	}
	if wt.Schema != TraceSchema {
		return nil, fmt.Errorf("obs: unknown trace schema %q (want %s)", wt.Schema, TraceSchema)
	}
	t := &Trace{
		Backend:  wt.Backend,
		Virtual:  wt.Virtual,
		Workers:  wt.Workers,
		Capacity: wt.Capacity,
		Dropped:  wt.Dropped,
		Tracks:   wt.Tracks,
		Events:   make([]Event, len(wt.Events)),
	}
	for i, ev := range wt.Events {
		k, ok := KindFromString(ev.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: event %d: unknown kind %q", i, ev.Kind)
		}
		t.Events[i] = Event{
			Seq:    ev.Seq,
			At:     ev.At,
			Task:   ev.Task,
			Arg:    ev.Arg,
			Sess:   ev.Sess,
			Worker: ev.Worker,
			Kind:   k,
			Label:  ev.Label,
		}
	}
	sort.Slice(t.Events, func(i, j int) bool { return t.Events[i].Seq < t.Events[j].Seq })
	return t, nil
}
