package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestTraceJSONRoundTrip pins the raw-trace file format: every event field
// survives a write/read cycle.
func TestTraceJSONRoundTrip(t *testing.T) {
	in := diamondTrace()
	in.Virtual = true
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Backend != in.Backend || out.Workers != in.Workers ||
		out.Virtual != in.Virtual || out.Capacity != in.Capacity {
		t.Fatalf("meta mismatch: %+v vs %+v", out, in)
	}
	if !reflect.DeepEqual(out.Dropped, in.Dropped) {
		t.Fatalf("dropped mismatch: %v vs %v", out.Dropped, in.Dropped)
	}
	if !reflect.DeepEqual(out.Events, in.Events) {
		t.Fatalf("events do not round-trip:\n got %+v\nwant %+v", out.Events[:3], in.Events[:3])
	}
}

// TestReadTraceRejectsUnknownSchema guards against silently analyzing a
// foreign JSON file.
func TestReadTraceRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"schema":"nope","events":[]}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"schema":"` + TraceSchema + `","events":[{"s":1,"k":"bogus"}]}`)); err == nil {
		t.Fatal("unknown event kind accepted")
	}
}

// TestChromeTraceStructure validates the exported document structurally,
// the way chrome://tracing / Perfetto parse it: a traceEvents array whose
// entries all carry ph/pid/ts, complete ("X") slices with name, tid, and a
// duration, thread-name metadata for every lane, matched flow pairs
// ("s"/"f" sharing an id, the finish bound with bp:"e"), and a counter
// track.
func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, diamondTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	var slices, threadNames, counters int
	flows := map[string][2]int{} // id -> {starts, finishes}
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event %d has no ph: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d has no ts: %v", i, ev)
		}
		switch ph {
		case "X":
			slices++
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("X event %d has no dur: %v", i, ev)
			}
			if name, _ := ev["name"].(string); name == "" {
				t.Fatalf("X event %d has no name: %v", i, ev)
			}
			if _, ok := ev["tid"].(float64); !ok {
				t.Fatalf("X event %d has no tid: %v", i, ev)
			}
		case "M":
			if ev["name"] == "thread_name" {
				threadNames++
			}
		case "C":
			counters++
		case "s", "f":
			id, _ := ev["id"].(string)
			if id == "" {
				t.Fatalf("flow event %d has no id: %v", i, ev)
			}
			c := flows[id]
			if ph == "s" {
				c[0]++
			} else {
				c[1]++
				if bp, _ := ev["bp"].(string); bp != "e" {
					t.Fatalf("flow finish %d lacks bp:e: %v", i, ev)
				}
			}
			flows[id] = c
		}
	}
	if slices != 4 {
		t.Fatalf("%d X slices, want 4 (one per executed task)", slices)
	}
	if threadNames != 3 { // 2 lanes + runtime track
		t.Fatalf("%d thread_name records, want 3", threadNames)
	}
	if counters == 0 {
		t.Fatal("no parallelism counter events")
	}
	if len(flows) != 4 {
		t.Fatalf("%d flow ids, want 4 (one per dependence edge)", len(flows))
	}
	for id, c := range flows {
		if c != [2]int{1, 1} {
			t.Fatalf("flow %s has %d starts / %d finishes, want 1/1", id, c[0], c[1])
		}
	}
}

// TestParaverCSVStructure checks the CSV timeline: header, one running row
// per executed task, and well-formed rows throughout.
func TestParaverCSVStructure(t *testing.T) {
	tr := diamondTrace()
	tr.Events = append(tr.Events,
		Event{Seq: 100, At: 12, Kind: EvSteal, Worker: 1, Arg: 0, Task: 3},
		Event{Seq: 101, At: 20, Kind: EvIdleEnter, Worker: 1},
		Event{Seq: 102, At: 35, Kind: EvIdleExit, Worker: 1},
	)
	var buf bytes.Buffer
	if err := WriteParaverCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "record,worker,task,label,start_us,end_us" {
		t.Fatalf("bad header %q", lines[0])
	}
	var running, steals, idles int
	for _, ln := range lines[1:] {
		fields := strings.Split(ln, ",")
		if len(fields) != 6 {
			t.Fatalf("row %q has %d fields, want 6", ln, len(fields))
		}
		switch fields[0] {
		case "running":
			running++
		case "steal":
			steals++
		case "idle":
			idles++
		}
	}
	if running != 4 || steals != 1 || idles != 1 {
		t.Fatalf("rows: running=%d steal=%d idle=%d, want 4/1/1", running, steals, idles)
	}
}
