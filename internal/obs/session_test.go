package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// twoSessionTrace hand-builds a trace with two sessions sharing a runtime:
// session 11 submits tasks 1→2 (chained), session 22 submits task 3, and
// task 3 also depends on session 11's task 1 through shared data — the
// cross-session edge FilterSession must drop. A worker-scoped idle pair and
// a taskwait pair ride along (shared lanes, filtered from every session
// view). Task 4 is an engine-level submission with no session (Sess 0).
func twoSessionTrace() *Trace {
	seq := uint64(0)
	ev := func(at int64, k Kind, w int32, task, arg, sess uint64, label string) Event {
		seq++
		return Event{Seq: seq, At: at, Kind: k, Worker: w, Task: task, Arg: arg, Sess: sess, Label: label}
	}
	return &Trace{
		Backend: "test", Workers: 2, Capacity: 64, Dropped: []uint64{0, 1, 0},
		Events: []Event{
			ev(0, EvSubmit, 0, 1, 0, 11, "a-head"),
			ev(0, EvReady, 0, 1, 0, 0, ""),
			ev(0, EvSubmit, 0, 2, 1, 11, "a-dep"),
			ev(0, EvEdge, 0, 2, 1, 0, ""),
			ev(1, EvSubmit, 1, 3, 1, 22, "b-task"),
			ev(1, EvEdge, 1, 3, 1, 0, ""), // cross-session edge: 3 (sess 22) <- 1 (sess 11)
			ev(1, EvSubmit, 1, 4, 0, 0, "engine"),
			ev(1, EvIdleEnter, 1, 0, 0, 0, ""),
			ev(2, EvStart, 0, 1, 0, 0, ""),
			ev(5, EvEnd, 0, 1, 0, 0, ""),
			ev(5, EvReady, 0, 2, 0, 0, ""),
			ev(5, EvReady, 0, 3, 0, 0, ""),
			ev(5, EvIdleExit, 1, 0, 0, 0, ""),
			ev(5, EvStart, 0, 2, 0, 0, ""),
			ev(5, EvStart, 1, 3, 0, 0, ""),
			ev(7, EvEnd, 1, 3, 0, 0, ""),
			ev(7, EvTaskwaitEnter, 1, 0, 0, 0, ""),
			ev(9, EvEnd, 0, 2, 0, 0, ""),
			ev(9, EvTaskwaitExit, 1, 0, 0, 0, ""),
		},
	}
}

// TestSessionTagRoundTrip pins the session tag's place in the trace file
// format: Sess survives a write/read cycle alongside every other field.
func TestSessionTagRoundTrip(t *testing.T) {
	in := twoSessionTrace()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Events, in.Events) {
		t.Fatalf("session-tagged events do not round-trip:\n got %+v\nwant %+v", out.Events, in.Events)
	}
	for _, ev := range out.Events {
		if ev.Kind == EvSubmit && ev.Task == 1 && ev.Sess != 11 {
			t.Fatalf("task 1's submission lost its session tag: %+v", ev)
		}
	}
}

// TestSessionsEnumerates checks Sessions(): distinct IDs ascending with
// per-session submission counts, the no-session bucket reported under 0.
func TestSessionsEnumerates(t *testing.T) {
	ids, counts := twoSessionTrace().Sessions()
	if want := []uint64{0, 11, 22}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("session IDs %v, want %v", ids, want)
	}
	if counts[11] != 2 || counts[22] != 1 || counts[0] != 1 {
		t.Fatalf("submission counts %v, want 11:2 22:1 0:1", counts)
	}
}

// TestFilterSessionView checks the per-session view: only the session's
// tasks' lifecycle events survive, worker-scoped events (idle, taskwait)
// are dropped, the cross-session edge is dropped from both sides, and the
// trace metadata (drop counts included) is preserved.
func TestFilterSessionView(t *testing.T) {
	full := twoSessionTrace()

	a := full.FilterSession(11)
	if a.Backend != full.Backend || a.Workers != full.Workers ||
		!reflect.DeepEqual(a.Dropped, full.Dropped) {
		t.Fatalf("filter discarded trace metadata: %+v", a)
	}
	for _, ev := range a.Events {
		switch ev.Kind {
		case EvIdleEnter, EvIdleExit, EvTaskwaitEnter, EvTaskwaitExit:
			t.Fatalf("worker-scoped event leaked into session view: %+v", ev)
		}
		if ev.Task != 1 && ev.Task != 2 {
			t.Fatalf("foreign task in session 11's view: %+v", ev)
		}
	}
	kinds := map[Kind]int{}
	for _, ev := range a.Events {
		kinds[ev.Kind]++
	}
	// Tasks 1 and 2 fully: 2 submits, the 2<-1 edge, 2 readies, 2 starts,
	// 2 ends. Task 3's ready/start/end and the cross-session edge are gone.
	if kinds[EvSubmit] != 2 || kinds[EvEdge] != 1 || kinds[EvReady] != 2 ||
		kinds[EvStart] != 2 || kinds[EvEnd] != 2 {
		t.Fatalf("session 11 view kinds %v, want submit:2 edge:1 ready:2 start:2 end:2", kinds)
	}

	// Session 22's view keeps task 3 but not the edge to foreign task 1.
	b := full.FilterSession(22)
	for _, ev := range b.Events {
		if ev.Kind == EvEdge {
			t.Fatalf("cross-session edge survived in session 22's view: %+v", ev)
		}
		if ev.Task != 3 {
			t.Fatalf("foreign task in session 22's view: %+v", ev)
		}
	}
	if n := len(b.Events); n != 4 { // submit, ready, start, end
		t.Fatalf("session 22 view has %d events, want 4", n)
	}

	// The filtered view is still a valid trace for the analyzer.
	ar := Analyze(a)
	if ar.Submitted != 2 || ar.Executed != 2 || ar.Edges != 1 {
		t.Fatalf("analyzer on filtered view: submitted=%d executed=%d edges=%d, want 2 2 1",
			ar.Submitted, ar.Executed, ar.Edges)
	}

	// An unknown session filters to an empty (but well-formed) view.
	if n := len(full.FilterSession(99).Events); n != 0 {
		t.Fatalf("unknown session's view has %d events", n)
	}
}

// TestRecorderGroupAddSess checks the record path: AddSess tags the ring
// slot with the session ID, sharing the group's instant and seq range.
func TestRecorderGroupAddSess(t *testing.T) {
	r := NewRecorder(Capacity(16))
	r.Attach(1, "native", true, func() int64 { return 7 })
	g, ok := r.Group(0, 2)
	if !ok {
		t.Fatal("group claim refused")
	}
	g.AddSess(EvSubmit, 5, 0, 42, "tagged")
	g.Add(EvReady, 5, 0, "")
	tr := r.Snapshot()
	if len(tr.Events) != 2 {
		t.Fatalf("snapshot has %d events, want 2", len(tr.Events))
	}
	sub, rdy := tr.Events[0], tr.Events[1]
	if sub.Kind != EvSubmit || sub.Sess != 42 || sub.Label != "tagged" {
		t.Fatalf("AddSess event %+v, want submit with sess 42", sub)
	}
	if rdy.Sess != 0 {
		t.Fatalf("plain Add inherited a session tag: %+v", rdy)
	}
	if sub.At != rdy.At || sub.Seq+1 != rdy.Seq {
		t.Fatalf("group did not share instant/seq range: %+v vs %+v", sub, rdy)
	}
	ids, counts := tr.Sessions()
	if !reflect.DeepEqual(ids, []uint64{42}) || counts[42] != 1 {
		t.Fatalf("Sessions() = %v %v, want [42] {42:1}", ids, counts)
	}
}
