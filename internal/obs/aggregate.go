package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Aggregator is the streaming per-label view of the task-lifecycle stream:
// instead of recording events into rings for offline analysis, the executor
// feeds each task completion directly into per-label running aggregates —
// count, total/EWMA execution time, loop-iteration totals, rename and
// rename-fallback counts. It is the feedback controller's input plane
// (internal/tune) and the source of the user-visible per-label stats in
// Session/Runtime Stats, and it shares the recorder's hot-path contract:
// after a label's first sighting, Note performs zero heap allocations and
// takes no exclusive lock (an RLock for the label lookup, atomics for the
// updates). The ring-buffer trace format is untouched — this is a second,
// lossy-by-design consumer of the same lifecycle instants.
type Aggregator struct {
	alpha float64 // EWMA smoothing factor in (0, 1]

	mu     sync.RWMutex
	byName map[string]*labelStat
	order  []*labelStat // interning order, for stable snapshots
}

// labelStat is one label's live aggregate. All fields are updated with
// atomics; EWMA fields hold math.Float64bits and are advanced with a CAS
// loop (deterministic under the simulator's serialized event loop, merely
// last-writer-wins-per-sample under native contention).
type labelStat struct {
	label     string
	count     atomic.Uint64
	iters     atomic.Uint64
	renames   atomic.Uint64
	fallbacks atomic.Uint64
	execNS    atomic.Int64
	ewmaNS    atomic.Uint64 // Float64bits; per-task exec-time EWMA
	perIterNS atomic.Uint64 // Float64bits; per-iteration exec-time EWMA (loop chunks only)
}

// LabelAgg is a point-in-time copy of one label's aggregate.
type LabelAgg struct {
	Label     string
	Count     uint64
	Iters     uint64
	Renames   uint64
	Fallbacks uint64
	ExecNS    int64 // total measured execution time
	MeanNS    int64 // ExecNS / Count
	EWMANS    int64 // smoothed per-task execution time
	PerIterNS int64 // smoothed per-iteration execution time (0 when no loop chunks seen)
}

// NewAggregator creates an empty aggregator. alpha is the EWMA smoothing
// factor (weight of the newest sample); out-of-range values select 0.25.
func NewAggregator(alpha float64) *Aggregator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	return &Aggregator{alpha: alpha, byName: make(map[string]*labelStat)}
}

// stat interns and returns the label's aggregate (creating it on first
// sighting). The returned pointer is stable for the aggregator's lifetime.
func (a *Aggregator) stat(label string) *labelStat {
	a.mu.RLock()
	ls := a.byName[label]
	a.mu.RUnlock()
	if ls != nil {
		return ls
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ls = a.byName[label]; ls != nil {
		return ls
	}
	ls = &labelStat{label: label}
	a.byName[label] = ls
	a.order = append(a.order, ls)
	return ls
}

// Note records one task completion under the label: execNS of measured
// execution time, iters loop iterations (0 for ordinary tasks), and whether
// the task's wiring renamed or cap-stalled a write. Unlabeled tasks
// aggregate under "".
func (a *Aggregator) Note(label string, execNS int64, iters int, renamed, fallback bool) {
	ls := a.stat(label)
	ls.count.Add(1)
	ls.execNS.Add(execNS)
	ewmaAdvance(&ls.ewmaNS, a.alpha, float64(execNS))
	if iters > 0 {
		ls.iters.Add(uint64(iters))
		ewmaAdvance(&ls.perIterNS, a.alpha, float64(execNS)/float64(iters))
	}
	if renamed {
		ls.renames.Add(1)
	}
	if fallback {
		ls.fallbacks.Add(1)
	}
}

// ewmaAdvance folds one sample into a Float64bits-encoded EWMA. The zero
// bit pattern means "no sample yet" (the first sample seeds the average —
// an exact 0.0 sample seeds it as the next sample instead, which is fine
// for durations).
func ewmaAdvance(a *atomic.Uint64, alpha, sample float64) {
	for {
		old := a.Load()
		nv := sample
		if old != 0 {
			nv = (1-alpha)*math.Float64frombits(old) + alpha*sample
		}
		if a.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// PerIterNS returns the label's smoothed per-iteration execution time in
// nanoseconds (0 when the label has produced no loop chunks yet).
func (a *Aggregator) PerIterNS(label string) float64 {
	a.mu.RLock()
	ls := a.byName[label]
	a.mu.RUnlock()
	if ls == nil {
		return 0
	}
	return math.Float64frombits(ls.perIterNS.Load())
}

// snapshot copies one label's aggregate.
func (ls *labelStat) snapshot() LabelAgg {
	agg := LabelAgg{
		Label:     ls.label,
		Count:     ls.count.Load(),
		Iters:     ls.iters.Load(),
		Renames:   ls.renames.Load(),
		Fallbacks: ls.fallbacks.Load(),
		ExecNS:    ls.execNS.Load(),
		EWMANS:    int64(math.Float64frombits(ls.ewmaNS.Load())),
		PerIterNS: int64(math.Float64frombits(ls.perIterNS.Load())),
	}
	if agg.Count > 0 {
		agg.MeanNS = agg.ExecNS / int64(agg.Count)
	}
	return agg
}

// Snapshot returns a copy of every label's aggregate, sorted by label for
// deterministic output. Safe to call while Note runs; each label's copy is
// internally consistent only up to the atomicity of its individual fields.
func (a *Aggregator) Snapshot() []LabelAgg {
	a.mu.RLock()
	stats := make([]*labelStat, len(a.order))
	copy(stats, a.order)
	a.mu.RUnlock()
	out := make([]LabelAgg, len(stats))
	for i, ls := range stats {
		out[i] = ls.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
