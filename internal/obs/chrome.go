package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format") understood by chrome://tracing and Perfetto. Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace exports the trace as Chrome trace-event JSON: one track
// (tid) per worker lane, a complete ("X") slice per executed task, flow
// arrows ("s"/"f") along every dependence edge whose endpoints are both in
// the stream, instant markers for steals, skips, renames and writebacks,
// and a running-task counter that draws the instantaneous-parallelism
// profile. Load the file in chrome://tracing or ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, tr *Trace) error {
	a := Analyze(tr)
	doc := chromeDoc{DisplayTimeUnit: "ms"}
	add := func(ev chromeEvent) { doc.TraceEvents = append(doc.TraceEvents, ev) }

	add(chromeEvent{Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": fmt.Sprintf("ompssgo (%s)", tr.Backend)}})
	for lane := 0; lane < tr.Workers; lane++ {
		name := fmt.Sprintf("worker %d", lane)
		if lane == tr.Workers-1 {
			name = fmt.Sprintf("master (lane %d)", lane)
		}
		add(chromeEvent{Name: "thread_name", Phase: "M", PID: 0, TID: lane,
			Args: map[string]any{"name": name}})
	}
	add(chromeEvent{Name: "thread_name", Phase: "M", PID: 0, TID: tr.Workers,
		Args: map[string]any{"name": "runtime"}})

	// Task slices, in submission order for a stable document.
	for _, id := range a.Order {
		t := a.Tasks[id]
		if !t.Complete() {
			continue
		}
		d := us(t.Exec)
		cat := "task"
		if t.Skipped {
			cat = "skipped"
		}
		add(chromeEvent{Name: t.Name(), Cat: cat, Phase: "X",
			TS: us(t.Start), Dur: &d, PID: 0, TID: t.Worker,
			Args: map[string]any{"task": t.ID, "preds": len(t.Preds), "slack_us": us(t.Slack)}})
	}
	// Flow arrows along dependence edges: start at the predecessor's end,
	// finish bound to the successor slice's beginning.
	edge := 0
	for _, id := range a.Order {
		t := a.Tasks[id]
		if !t.Complete() {
			continue
		}
		for _, p := range t.Preds {
			pt := a.Tasks[p]
			if pt == nil || !pt.Complete() {
				continue
			}
			edge++
			eid := fmt.Sprintf("dep%d", edge)
			add(chromeEvent{Name: "dep", Cat: "dep", Phase: "s", ID: eid,
				TS: us(pt.End), PID: 0, TID: pt.Worker})
			add(chromeEvent{Name: "dep", Cat: "dep", Phase: "f", BP: "e", ID: eid,
				TS: us(t.Start), PID: 0, TID: t.Worker})
		}
	}
	// Instant markers and the parallelism counter, straight off the stream.
	running := 0
	for i := range tr.Events {
		ev := &tr.Events[i]
		tid := int(ev.Worker)
		if tid < 0 || tid > tr.Workers {
			tid = tr.Workers
		}
		switch ev.Kind {
		case EvStart, EvEnd:
			if t := a.Tasks[ev.Task]; t == nil || !t.Complete() {
				continue
			}
			if ev.Kind == EvStart {
				running++
			} else {
				running--
			}
			add(chromeEvent{Name: "parallelism", Phase: "C", TS: us(ev.At), PID: 0,
				Args: map[string]any{"running": running}})
		case EvSteal:
			add(chromeEvent{Name: "steal", Cat: "sched", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: 0, TID: tid,
				Args: map[string]any{"victim": ev.Arg, "task": ev.Task}})
		case EvSkip:
			add(chromeEvent{Name: "skip", Cat: "sched", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: 0, TID: tid, Args: map[string]any{"task": ev.Task}})
		case EvRename:
			add(chromeEvent{Name: "rename", Cat: "rename", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: 0, TID: tid, Args: map[string]any{"task": ev.Task}})
		case EvWriteback:
			add(chromeEvent{Name: "writeback", Cat: "rename", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: 0, TID: tid, Args: map[string]any{"task": ev.Task}})
		case EvXfer:
			add(chromeEvent{Name: "xfer", Cat: "dist", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: 0, TID: tid,
				Args: map[string]any{"task": ev.Task, "bytes": ev.Arg}})
		case EvXferHit:
			add(chromeEvent{Name: "xfer-hit", Cat: "dist", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: 0, TID: tid,
				Args: map[string]any{"task": ev.Task, "bytes": ev.Arg}})
		case EvChain:
			add(chromeEvent{Name: "chain", Cat: "dist", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: 0, TID: tid,
				Args: map[string]any{"task": ev.Task, "tasks": ev.Arg}})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}
