package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format") understood by chrome://tracing and Perfetto. Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace exports the trace as Chrome trace-event JSON: one track
// (tid) per worker lane, a complete ("X") slice per executed task, flow
// arrows ("s"/"f") along every dependence edge whose endpoints are both in
// the stream, instant markers for steals, skips, renames, writebacks,
// transfers, and tune decisions, and a running-task counter that draws the
// instantaneous-parallelism profile. A merged multi-process trace
// (Trace.Tracks set) renders each worker process as its own Chrome process
// row — pid 0 is the coordinator, each (slot, generation) worker
// incarnation gets the next pid — so remote execution sits visually beside
// the dispatch that caused it. Load the file in chrome://tracing or
// ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, tr *Trace) error {
	a := Analyze(tr)
	doc := chromeDoc{DisplayTimeUnit: "ms"}
	add := func(ev chromeEvent) { doc.TraceEvents = append(doc.TraceEvents, ev) }

	// Lane → (pid, tid) placement. Single-process traces put every lane on
	// pid 0; merged traces map each worker track onto its own pid.
	pidOf := make([]int, tr.Workers+1)
	tidOf := make([]int, tr.Workers+1)
	for i := range tidOf {
		tidOf[i] = i
	}
	add(chromeEvent{Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": fmt.Sprintf("ompssgo (%s)", tr.Backend)}})
	nextPID := 1
	for lane := 0; lane < tr.Workers; lane++ {
		if t := trackAt(tr, lane); t != nil && t.Proc != "coordinator" {
			pidOf[lane] = nextPID
			tidOf[lane] = 0
			name := t.Label
			if name == "" {
				name = fmt.Sprintf("%s slot %d gen %d", t.Proc, t.Slot, t.Gen)
			}
			add(chromeEvent{Name: "process_name", Phase: "M", PID: nextPID,
				Args: map[string]any{"name": name}})
			add(chromeEvent{Name: "thread_name", Phase: "M", PID: nextPID, TID: 0,
				Args: map[string]any{"name": "kernel"}})
			nextPID++
			continue
		}
		name := fmt.Sprintf("worker %d", lane)
		if len(tr.Tracks) == 0 && lane == tr.Workers-1 {
			name = fmt.Sprintf("master (lane %d)", lane)
		}
		add(chromeEvent{Name: "thread_name", Phase: "M", PID: 0, TID: lane,
			Args: map[string]any{"name": name}})
	}
	add(chromeEvent{Name: "thread_name", Phase: "M", PID: 0, TID: tr.Workers,
		Args: map[string]any{"name": "runtime"}})
	place := func(lane int) (int, int) {
		if lane < 0 || lane > tr.Workers {
			lane = tr.Workers
		}
		return pidOf[lane], tidOf[lane]
	}

	// Task slices, in submission order for a stable document.
	for _, id := range a.Order {
		t := a.Tasks[id]
		if !t.Complete() {
			continue
		}
		d := us(t.Exec)
		cat := "task"
		if t.Skipped {
			cat = "skipped"
		}
		pid, tid := place(t.Worker)
		add(chromeEvent{Name: t.Name(), Cat: cat, Phase: "X",
			TS: us(t.Start), Dur: &d, PID: pid, TID: tid,
			Args: map[string]any{"task": t.ID, "preds": len(t.Preds), "slack_us": us(t.Slack)}})
	}
	// Flow arrows along dependence edges: start at the predecessor's end,
	// finish bound to the successor slice's beginning.
	edge := 0
	for _, id := range a.Order {
		t := a.Tasks[id]
		if !t.Complete() {
			continue
		}
		for _, p := range t.Preds {
			pt := a.Tasks[p]
			if pt == nil || !pt.Complete() {
				continue
			}
			edge++
			eid := fmt.Sprintf("dep%d", edge)
			spid, stid := place(pt.Worker)
			fpid, ftid := place(t.Worker)
			add(chromeEvent{Name: "dep", Cat: "dep", Phase: "s", ID: eid,
				TS: us(pt.End), PID: spid, TID: stid})
			add(chromeEvent{Name: "dep", Cat: "dep", Phase: "f", BP: "e", ID: eid,
				TS: us(t.Start), PID: fpid, TID: ftid})
		}
	}
	// Instant markers and the parallelism counter, straight off the stream.
	running := 0
	for i := range tr.Events {
		ev := &tr.Events[i]
		pid, tid := place(int(ev.Worker))
		switch ev.Kind {
		case EvStart, EvEnd:
			if t := a.Tasks[ev.Task]; t == nil || !t.Complete() {
				continue
			}
			if ev.Kind == EvStart {
				running++
			} else {
				running--
			}
			add(chromeEvent{Name: "parallelism", Phase: "C", TS: us(ev.At), PID: 0,
				Args: map[string]any{"running": running}})
		case EvSteal:
			add(chromeEvent{Name: "steal", Cat: "sched", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid,
				Args: map[string]any{"victim": ev.Arg, "task": ev.Task}})
		case EvSkip:
			add(chromeEvent{Name: "skip", Cat: "sched", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid, Args: map[string]any{"task": ev.Task}})
		case EvRename:
			add(chromeEvent{Name: "rename", Cat: "rename", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid, Args: map[string]any{"task": ev.Task}})
		case EvWriteback:
			add(chromeEvent{Name: "writeback", Cat: "rename", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid, Args: map[string]any{"task": ev.Task}})
		case EvXfer:
			add(chromeEvent{Name: "xfer", Cat: "dist", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid,
				Args: map[string]any{"task": ev.Task, "bytes": ev.Arg}})
		case EvXferHit:
			add(chromeEvent{Name: "xfer-hit", Cat: "dist", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid,
				Args: map[string]any{"task": ev.Task, "bytes": ev.Arg}})
		case EvChain:
			add(chromeEvent{Name: "chain", Cat: "dist", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid,
				Args: map[string]any{"task": ev.Task, "tasks": ev.Arg}})
		case EvForward:
			add(chromeEvent{Name: "forward", Cat: "dist", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid,
				Args: map[string]any{"task": ev.Task, "bytes": ev.Arg}})
		case EvTune:
			add(chromeEvent{Name: "tune:" + ev.Label, Cat: "tune", Phase: "i", Scope: "t",
				TS: us(ev.At), PID: pid, TID: tid,
				Args: map[string]any{"loop": ev.Label, "from": ev.Arg, "to": ev.Task}})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// trackAt returns the Track metadata for a lane, nil when the trace carries
// none (single-process traces) or the lane has no entry.
func trackAt(tr *Trace, lane int) *Track {
	for i := range tr.Tracks {
		if int(tr.Tracks[i].Lane) == lane {
			return &tr.Tracks[i]
		}
	}
	return nil
}
