// Package metrics is the live half of the observability subsystem: where
// package obs records event streams for offline analysis, this package
// keeps running counters, gauges, and latency histograms that a scrape
// endpoint reads while the runtime serves. It follows the ring recorder's
// hot-path discipline — an increment or observation is a handful of atomic
// adds, takes no lock shared between workers, and performs zero heap
// allocations (enforced by the alloc-budget suite) — so attaching the
// metrics plane to a loaded server never perturbs what it measures.
//
// The exposition format is Prometheus text (version 0.0.4), hand-rendered
// so the module stays dependency-free. Durations are observed in
// nanoseconds and exposed in seconds, per Prometheus convention.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a series.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histogram bucket layout: upper bounds at 1µs·2^i for i in [0, numBuckets),
// i.e. 1µs, 2µs, 4µs … ~34s, plus the implicit +Inf bucket. Log-scale
// bounds keep the bucket index a bit-length computation — no search, no
// float math on the observe path.
const (
	numBuckets   = 26
	bucketBaseNS = 1_000 // 1µs
)

// Histogram is a fixed-bucket log-scale latency histogram. Observe takes
// nanoseconds; exposition renders seconds.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	buckets [numBuckets]atomic.Uint64 // non-cumulative; +Inf is count-sum
}

// bucketIndex maps a nanosecond observation to its bucket, or numBuckets
// for +Inf (observations above the largest finite bound).
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	// Smallest i with ns <= bucketBaseNS << i.
	q := uint64(ns) / bucketBaseNS
	if q == 0 || (q == 1 && uint64(ns) <= bucketBaseNS) {
		return 0
	}
	i := bits.Len64(q - 1) // ceil(log2(q)) for q ≥ 2
	if uint64(ns) > bucketBaseNS<<i {
		i++
	}
	if i >= numBuckets {
		return numBuckets
	}
	return i
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.count.Add(1)
	h.sumNS.Add(ns)
	if i := bucketIndex(ns); i < numBuckets {
		h.buckets[i].Add(1)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumNS returns the summed observations in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sumNS.Load() }

// series is one registered time series: exactly one of the value sources
// is set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	ser  []*series
}

// Registry holds the registered families in registration order and renders
// them on demand. Registration takes a lock; the returned Counter / Gauge /
// Histogram handles are lock-free afterwards — register once at setup,
// increment forever.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	f.ser = append(f.ser, s)
}

// Counter registers (or extends) a counter family and returns the series'
// handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", &series{labels: labels, c: c})
	return c
}

// Gauge registers a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", &series{labels: labels, g: g})
	return g
}

// GaugeFunc registers a gauge sampled at scrape time — the bridge to state
// the runtime already keeps (stats snapshots, tune setpoints) without a
// feed path.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.add(name, help, "gauge", &series{labels: labels, gf: f})
}

// CounterFunc registers a counter sampled at scrape time, for monotonic
// values another component already maintains (engine stat counters, ring
// drop counts). The caller guarantees monotonicity.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.add(name, help, "counter", &series{labels: labels, gf: f})
}

// Histogram registers a latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.add(name, help, "histogram", &series{labels: labels, h: h})
	return h
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels renders {k="v",...} including extra pairs, or "" when empty.
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered family in the text exposition
// format. Sampling each series is a point-in-time atomic read; the output
// is consistent per series, not across the whole scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.ser {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.g.Value())
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), fmtFloat(s.gf()))
		return err
	case s.h != nil:
		var cum uint64
		for i := 0; i < numBuckets; i++ {
			cum += s.h.buckets[i].Load()
			le := float64(int64(bucketBaseNS)<<i) / 1e9
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, renderLabels(s.labels, Label{"le", fmtFloat(le)}), cum); err != nil {
				return err
			}
		}
		count := s.h.Count()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, renderLabels(s.labels, Label{"le", "+Inf"}), count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, renderLabels(s.labels), fmtFloat(float64(s.h.SumNS())/1e9)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), count)
		return err
	}
	return nil
}

// Probe counts scheduler and dependence-tracker events into counters — a
// structural match for the engine's core.Probe seam, so a metrics plane can
// observe steal/rename/writeback activity without recording a trace.
type Probe struct {
	Steals     Counter
	Renames    Counter
	Writebacks Counter
}

// StealEvent implements the scheduler probe.
func (p *Probe) StealEvent(thief, victim int, task uint64) { p.Steals.Inc() }

// RenameEvent implements the dependence-tracker probe.
func (p *Probe) RenameEvent(task uint64) { p.Renames.Inc() }

// WritebackEvent implements the dependence-tracker probe.
func (p *Probe) WritebackEvent(task uint64) { p.Writebacks.Inc() }
