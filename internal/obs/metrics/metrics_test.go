package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestBucketIndexBoundaries pins the log-scale bucket map at its edges:
// bounds are inclusive (le semantics), the next nanosecond spills over.
func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 0}, {999, 0}, {1000, 0},
		{1001, 1}, {2000, 1},
		{2001, 2}, {4000, 2},
		{4001, 3},
		{bucketBaseNS << (numBuckets - 1), numBuckets - 1},
		{bucketBaseNS<<(numBuckets-1) + 1, numBuckets}, // +Inf
		{1 << 62, numBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestConcurrentHammer drives every instrument from many goroutines under
// the race detector and checks the exact totals: increments are atomic,
// nothing is lost.
func TestConcurrentHammer(t *testing.T) {
	const goroutines = 8
	const perG = 10_000

	reg := NewRegistry()
	c := reg.Counter("t_counter", "")
	g := reg.Gauge("t_gauge", "")
	h := reg.Histogram("t_hist", "")

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				// Spread observations across buckets deterministically.
				h.Observe(int64(1000 << (j % 8)))
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var wantSum int64
	for j := 0; j < perG; j++ {
		wantSum += int64(1000 << (j % 8))
	}
	wantSum *= goroutines
	if got := h.SumNS(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
}

// TestExposition renders a small registry and checks the text format:
// HELP/TYPE comments, label escaping, cumulative le buckets ending at +Inf
// with the count, and _sum in seconds.
func TestExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("req_total", "Requests.", Label{Key: "tenant", Value: `g"o\ld` + "\n"})
	c.Add(7)
	reg.GaugeFunc("live", "Live now.", func() float64 { return 3 })
	h := reg.Histogram("lat_seconds", "Latency.")
	h.Observe(500)       // le 1µs bucket
	h.Observe(1500)      // le 2µs
	h.Observe(3_000_000) // a mid bucket
	h.Observe(1 << 62)   // +Inf only

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP req_total Requests.\n",
		"# TYPE req_total counter\n",
		`req_total{tenant="g\"o\\ld\n"} 7` + "\n",
		"# TYPE live gauge\n",
		"live 3\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="1e-06"} 1` + "\n",
		`lat_seconds_bucket{le="2e-06"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 4` + "\n",
		"lat_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition is missing %q\n---\n%s", want, out)
		}
	}

	// _sum is the observation total converted to seconds.
	wantSum := float64(uint64(500)+1500+3_000_000+(1<<62)) / 1e9
	var gotSum float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "lat_seconds_sum ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, "lat_seconds_sum "), 64)
			if err != nil {
				t.Fatalf("bad sum line %q: %v", line, err)
			}
			gotSum = v
		}
	}
	if diff := gotSum - wantSum; diff > 1e-3 || diff < -1e-3 {
		t.Errorf("lat_seconds_sum = %v, want %v", gotSum, wantSum)
	}

	// Buckets are cumulative and non-decreasing through the whole family.
	prev := -1.0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts regress at %q (prev %v)", line, prev)
		}
		prev = v
	}
}

// TestCounterFunc pins the scrape-time counter: the value is sampled at
// render, and the family is typed counter.
func TestCounterFunc(t *testing.T) {
	reg := NewRegistry()
	n := 0.0
	reg.CounterFunc("sampled_total", "Sampled.", func() float64 { return n })
	n = 42
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE sampled_total counter\n") || !strings.Contains(out, "sampled_total 42\n") {
		t.Fatalf("bad CounterFunc exposition:\n%s", out)
	}
}
