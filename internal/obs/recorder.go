package obs

import "sync/atomic"

// DefaultCapacity is the default per-worker ring capacity (events). At
// ~72 bytes per slot this is ~2.4 MiB per lane; a run that outgrows it
// keeps the newest events and reports the exact drop count.
const DefaultCapacity = 1 << 15

// Option configures a Recorder.
type Option func(*Recorder)

// Capacity sets the per-worker ring capacity in events (rounded up to a
// power of two; minimum 8).
func Capacity(n int) Option {
	return func(r *Recorder) {
		if n < 8 {
			n = 8
		}
		r.capacity = n
	}
}

// Recorder collects trace events into per-worker ring buffers. Create one
// with NewRecorder, attach it to a run (ompss.Observe / ompss.Trace), and
// read the merged stream with Snapshot after the run drains. A recorder
// observes one run at a time; attaching it to a new run discards the
// previous run's events.
//
// All record-path methods are safe from any goroutine and allocate
// nothing; see the package comment for the synchronization contract.
type Recorder struct {
	capacity int
	workers  int
	backend  string
	virtual  bool
	clock    func() int64
	rings    []ring // workers+1: the extra ring absorbs no-lane emitters

	// seq sits on its own cache line: every emitter from every worker
	// fetch-adds it, and the read-mostly fields above must not ride along
	// on its invalidations.
	_   [64]byte
	seq atomic.Uint64
	_   [56]byte
}

// NewRecorder returns an idle recorder. Ring memory is allocated at
// Attach, when the lane count is known.
func NewRecorder(opts ...Option) *Recorder {
	r := &Recorder{capacity: DefaultCapacity}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Attach binds the recorder to a run: one ring per worker lane plus an
// overflow ring for no-lane emitters, a fresh sequence, and the run's
// epoch-relative clock (wall nanoseconds for native runs; virtual
// nanoseconds when virtualTime is set). Any previously recorded run is
// discarded. The executor calls this before its workers start; it is not
// safe concurrently with Emit.
func (r *Recorder) Attach(workers int, backend string, virtualTime bool, clock func() int64) {
	if workers < 1 {
		workers = 1
	}
	r.workers = workers
	r.backend = backend
	r.virtual = virtualTime
	r.clock = clock
	r.seq.Store(0)
	r.rings = make([]ring, workers+1)
	for i := range r.rings {
		r.rings[i].init(r.capacity)
	}
}

// Attached reports whether the recorder is bound to a run.
func (r *Recorder) Attached() bool { return len(r.rings) > 0 }

// ringFor maps a lane to its ring; out-of-range lanes (and -1, "no lane")
// share the overflow ring.
func (r *Recorder) ringFor(worker int) *ring {
	if worker >= 0 && worker < r.workers {
		return &r.rings[worker]
	}
	return &r.rings[r.workers]
}

// Emit records one label-less event. No-op before Attach.
func (r *Recorder) Emit(worker int, k Kind, task, arg uint64) {
	if len(r.rings) == 0 {
		return
	}
	r.ringFor(worker).put(Event{
		Seq:    r.seq.Add(1),
		At:     r.clock(),
		Task:   task,
		Arg:    arg,
		Worker: int32(worker),
		Kind:   k,
	})
}

// EmitLabel records one event carrying a label (EvSubmit).
func (r *Recorder) EmitLabel(worker int, k Kind, task, arg uint64, label string) {
	if len(r.rings) == 0 {
		return
	}
	r.ringFor(worker).put(Event{
		Seq:    r.seq.Add(1),
		At:     r.clock(),
		Task:   task,
		Arg:    arg,
		Worker: int32(worker),
		Kind:   k,
		Label:  label,
	})
}

// Group is a claim on one timestamp and a contiguous sequence range for n
// events emitted together from one instrumentation site (a submission with
// its edges, a completion with its releases). The events share the
// instant — they are the same scheduling action — so the clock read and
// the global fetch-add are paid once per site instead of once per event,
// which is what keeps the recorder-attached overhead flat on fine-grained
// task streams. A Group is a value; it must receive exactly the n Add
// calls it was sized for and must not outlive the site that claimed it.
type Group struct {
	ring *ring
	at   int64
	seq  uint64 // next seq to assign from the claimed range
	w    int32
}

// Group claims a timestamp and a seq range for n events on worker's ring.
// ok is false (and the Group inert) when the recorder is detached or n is
// not positive.
func (r *Recorder) Group(worker int, n int) (Group, bool) {
	if len(r.rings) == 0 || n <= 0 {
		return Group{}, false
	}
	return Group{
		ring: r.ringFor(worker),
		at:   r.clock(),
		seq:  r.seq.Add(uint64(n)) - uint64(n) + 1,
		w:    int32(worker),
	}, true
}

// Add records the group's next event.
func (g *Group) Add(k Kind, task, arg uint64, label string) {
	g.ring.put(Event{
		Seq:    g.seq,
		At:     g.at,
		Task:   task,
		Arg:    arg,
		Worker: g.w,
		Kind:   k,
		Label:  label,
	})
	g.seq++
}

// AddSess records the group's next event tagged with the submitting
// session's ID (EvSubmit from session-scoped executors).
func (g *Group) AddSess(k Kind, task, arg, sess uint64, label string) {
	g.ring.put(Event{
		Seq:    g.seq,
		At:     g.at,
		Task:   task,
		Arg:    arg,
		Sess:   sess,
		Worker: g.w,
		Kind:   k,
		Label:  label,
	})
	g.seq++
}

// Drain collects and removes everything recorded since Attach (or the
// previous Drain), returning the events ascending by Seq and the number of
// events the rings overwrote during the batch. The sequence counter and
// clock keep running, so successive batches stay globally ordered — this is
// the shipping primitive of the distributed workers, which drain after
// every task report. Not safe concurrently with Emit; callers drain from
// the same goroutine that records (the worker loop is serial).
func (r *Recorder) Drain() ([]Event, uint64) {
	if len(r.rings) == 0 {
		return nil, 0
	}
	var evs []Event
	var dropped uint64
	for i := range r.rings {
		dropped += r.rings[i].dropped()
		evs = r.rings[i].collect(evs)
		r.rings[i].reset()
	}
	sortEventsBySeq(evs)
	return evs, dropped
}

// DroppedTotal sums the rings' current overwrite counts without touching
// the recorded events — the live ring-drop reading a metrics scrape
// exposes while a run is still recording. Safe concurrently with Emit.
func (r *Recorder) DroppedTotal() uint64 {
	var n uint64
	for i := range r.rings {
		n += r.rings[i].dropped()
	}
	return n
}

// StealEvent implements the scheduler probe (core.Probe): a successful
// steal by thief from victim's queues.
func (r *Recorder) StealEvent(thief, victim int, task uint64) {
	r.Emit(thief, EvSteal, task, uint64(victim))
}

// RenameEvent implements the dependence-tracker probe: task received a
// fresh renamed instance instead of WAR/WAW edges. Fired under a shard
// lock from whatever goroutine is submitting, so it carries no lane.
func (r *Recorder) RenameEvent(task uint64) { r.Emit(-1, EvRename, task, 0) }

// WritebackEvent implements the dependence-tracker probe: a drained chain
// wrote its last good instance back onto canonical storage.
func (r *Recorder) WritebackEvent(task uint64) { r.Emit(-1, EvWriteback, task, 0) }
