package obs

import "sync/atomic"

// ring is one per-worker event buffer: a fixed power-of-two slot array
// written at a monotonically claimed head. When the head passes capacity
// the oldest events are overwritten — the ring keeps the newest `cap`
// events and the exact count of dropped ones (head − cap), which the
// analyzer reports so a truncated trace is never mistaken for a complete
// one.
//
// Writers claim a slot with one atomic fetch-add on head; the slot itself
// is published through a per-slot CAS latch. In the common case (one
// goroutine per lane) the latch is uncontended and costs a single
// CAS+store pair; it exists because lanes can be aliased (several
// goroutines submitting through the master TC, taskwaiters helping on a
// worker's lane), where two writers a full ring apart would otherwise race
// on one slot. Readers take the same latch per slot, so a mid-run snapshot
// is race-free too.
type ring struct {
	head  atomic.Uint64 // total events ever claimed on this ring
	slots []slot
	mask  uint64
	_     [40]byte // keep ring heads off each other's cache lines
}

type slot struct {
	latch atomic.Uint32
	ev    Event
}

func (r *ring) init(capacity int) {
	// Round up to a power of two so the claim maps to a slot with one mask.
	c := 1
	for c < capacity {
		c <<= 1
	}
	r.slots = make([]slot, c)
	r.mask = uint64(c - 1)
}

// put records ev, overwriting the oldest event when the ring is full.
func (r *ring) put(ev Event) {
	i := r.head.Add(1) - 1
	s := &r.slots[i&r.mask]
	for !s.latch.CompareAndSwap(0, 1) {
		// Another writer (aliased lane, a wrap apart) or a snapshot reader
		// holds the slot; spin — the hold is a handful of stores.
	}
	s.ev = ev
	s.latch.Store(0)
}

// dropped returns the exact number of events this ring has overwritten.
func (r *ring) dropped() uint64 {
	h := r.head.Load()
	if c := uint64(len(r.slots)); h > c {
		return h - c
	}
	return 0
}

// collect appends the ring's live events to dst. Safe concurrently with
// writers (each slot is read under its latch); a slot claimed but not yet
// published is skipped this pass.
func (r *ring) collect(dst []Event) []Event {
	for i := range r.slots {
		s := &r.slots[i]
		if !s.latch.CompareAndSwap(0, 1) {
			continue
		}
		ev := s.ev
		s.latch.Store(0)
		if ev.Seq != 0 {
			dst = append(dst, ev)
		}
	}
	return dst
}

// reset forgets all recorded events and the drop count.
func (r *ring) reset() {
	r.head.Store(0)
	for i := range r.slots {
		s := &r.slots[i]
		for !s.latch.CompareAndSwap(0, 1) {
		}
		s.ev = Event{}
		s.latch.Store(0)
	}
}
