package obs

import (
	"sync"
	"testing"
)

func testClock() func() int64 {
	var t int64
	return func() int64 { t++; return t }
}

// TestRingKeepsNewestAndCountsDropsExactly drives more events than the
// ring holds and checks the two halves of the wraparound contract: the
// drop count is exactly total−capacity, and the surviving events are
// exactly the newest `capacity` ones.
func TestRingKeepsNewestAndCountsDropsExactly(t *testing.T) {
	const capacity, total = 64, 1000
	r := NewRecorder(Capacity(capacity))
	r.Attach(1, "test", false, testClock())
	for i := 0; i < total; i++ {
		r.Emit(0, EvStart, uint64(i+1), 0)
	}
	tr := r.Snapshot()
	if got := tr.Dropped[0]; got != total-capacity {
		t.Fatalf("ring 0 dropped %d, want exactly %d", got, total-capacity)
	}
	if got := tr.TotalDropped(); got != total-capacity {
		t.Fatalf("TotalDropped %d, want %d", got, total-capacity)
	}
	if len(tr.Events) != capacity {
		t.Fatalf("kept %d events, want %d", len(tr.Events), capacity)
	}
	for i, ev := range tr.Events {
		wantSeq := uint64(total - capacity + i + 1)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: seq %d, want %d (oldest events must go first)", i, ev.Seq, wantSeq)
		}
		if ev.Task != wantSeq {
			t.Fatalf("event %d: task %d, want %d", i, ev.Task, wantSeq)
		}
	}
}

// TestRingBelowCapacityDropsNothing is the no-wrap boundary case.
func TestRingBelowCapacityDropsNothing(t *testing.T) {
	r := NewRecorder(Capacity(64))
	r.Attach(2, "test", false, testClock())
	for i := 0; i < 64; i++ {
		r.Emit(i%2, EvStart, uint64(i+1), 0)
	}
	tr := r.Snapshot()
	if d := tr.TotalDropped(); d != 0 {
		t.Fatalf("dropped %d, want 0", d)
	}
	if len(tr.Events) != 64 {
		t.Fatalf("kept %d events, want 64", len(tr.Events))
	}
}

// TestRingCapacityRoundsToPowerOfTwo pins the slot-count rounding the mask
// arithmetic depends on.
func TestRingCapacityRoundsToPowerOfTwo(t *testing.T) {
	var r ring
	r.init(100)
	if len(r.slots) != 128 {
		t.Fatalf("init(100) allocated %d slots, want 128", len(r.slots))
	}
	if r.mask != 127 {
		t.Fatalf("mask %d, want 127", r.mask)
	}
}

// TestRecorderConcurrentEmit hammers every lane — including aliased lanes
// and the overflow ring — from many goroutines while rings wrap, with a
// concurrent snapshot in flight. Under -race this verifies the slot-latch
// discipline: no unsynchronized slot write is possible even when two
// writers land a full ring apart.
func TestRecorderConcurrentEmit(t *testing.T) {
	const workers, perG, goroutines = 4, 5000, 8
	r := NewRecorder(Capacity(256))
	r.Attach(workers, "test", false, func() int64 { return 0 })
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Alias lanes deliberately; -1 exercises the overflow ring.
				r.Emit(g%workers-1, EvSteal, uint64(i), uint64(g))
			}
		}()
	}
	mid := r.Snapshot() // concurrent snapshot must be race-free too
	wg.Wait()
	_ = mid
	tr := r.Snapshot()
	var kept, total uint64
	kept = uint64(len(tr.Events))
	for i := range r.rings {
		total += r.rings[i].head.Load()
	}
	if total != goroutines*perG {
		t.Fatalf("claimed %d slots, want %d", total, goroutines*perG)
	}
	// Conservation: every claimed slot is either still holding an event or
	// counted as dropped.
	if kept+tr.TotalDropped() != total {
		t.Fatalf("conservation: kept %d + dropped %d != emitted %d", kept, tr.TotalDropped(), total)
	}
	// Seqs are unique.
	seen := make(map[uint64]bool, kept)
	for _, ev := range tr.Events {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// TestEmitBeforeAttachIsNoop pins the detached-recorder guard.
func TestEmitBeforeAttachIsNoop(t *testing.T) {
	r := NewRecorder()
	r.Emit(0, EvStart, 1, 0) // must not panic
	if r.Attached() {
		t.Fatal("recorder reports attached before Attach")
	}
	tr := r.Snapshot()
	if len(tr.Events) != 0 || tr.TotalDropped() != 0 {
		t.Fatalf("detached recorder produced events: %d/%d", len(tr.Events), tr.TotalDropped())
	}
}

// TestKindRoundTrip pins the name table used by the trace-file format.
func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d (%s) does not round-trip (got %d, ok=%v)", k, k, got, ok)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatal("unknown kind parsed")
	}
}

// TestEmitAllocationFree is the record-path half of the overhead contract:
// steady-state emission performs zero heap allocations, wrapped rings
// included.
func TestEmitAllocationFree(t *testing.T) {
	r := NewRecorder(Capacity(128))
	r.Attach(2, "test", false, func() int64 { return 42 })
	if n := testing.AllocsPerRun(2000, func() {
		r.Emit(0, EvStart, 7, 0)
		r.EmitLabel(1, EvSubmit, 7, 1, "label")
		r.StealEvent(0, 1, 7)
		r.RenameEvent(7)
		g, _ := r.Group(0, 3)
		g.Add(EvEnd, 7, 0, "")
		g.Add(EvReady, 8, 0, "")
		g.Add(EvReady, 9, 0, "")
	}); n != 0 {
		t.Fatalf("record path allocates %.1f allocs/run, want 0", n)
	}
}

// TestGroupSharesInstantAndOrdersSeq pins the group contract: all events
// of one group carry the same timestamp and consecutive seqs, and groups
// claimed later sort after.
func TestGroupSharesInstantAndOrdersSeq(t *testing.T) {
	r := NewRecorder(Capacity(64))
	r.Attach(1, "test", false, testClock())
	g1, ok := r.Group(0, 2)
	if !ok {
		t.Fatal("group claim failed on attached recorder")
	}
	g1.Add(EvEnd, 1, 0, "")
	g1.Add(EvReady, 2, 0, "")
	r.Emit(0, EvStart, 2, 0)
	tr := r.Snapshot()
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(tr.Events))
	}
	if tr.Events[0].Seq != 1 || tr.Events[1].Seq != 2 || tr.Events[2].Seq != 3 {
		t.Fatalf("seqs %d,%d,%d — want 1,2,3", tr.Events[0].Seq, tr.Events[1].Seq, tr.Events[2].Seq)
	}
	if tr.Events[0].At != tr.Events[1].At {
		t.Fatalf("group events have different timestamps: %d vs %d", tr.Events[0].At, tr.Events[1].At)
	}
	if tr.Events[2].At <= tr.Events[1].At {
		t.Fatalf("later emit did not advance the clock: %d <= %d", tr.Events[2].At, tr.Events[1].At)
	}
	if g, ok := NewRecorder().Group(0, 1); ok || g.ring != nil {
		t.Fatal("detached recorder handed out a live group")
	}
}
