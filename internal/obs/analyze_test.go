package obs

import (
	"reflect"
	"strings"
	"testing"
)

// diamondTrace hand-builds the four-task diamond with known timings (ns):
//
//	top    w0 [0,10)   — no preds
//	left   w0 [10,30)  — pred top
//	right  w1 [10,20)  — pred top
//	bottom w0 [30,35)  — preds left, right
//
// Exact expectations: span 35, total exec 45, critical path
// top→left→bottom = 35, right's slack 10, profile {1:25ns, 2:10ns}.
func diamondTrace() *Trace {
	seq := uint64(0)
	ev := func(at int64, k Kind, w int32, task, arg uint64, label string) Event {
		seq++
		return Event{Seq: seq, At: at, Kind: k, Worker: w, Task: task, Arg: arg, Label: label}
	}
	return &Trace{
		Backend: "test", Workers: 2, Capacity: 64, Dropped: []uint64{0, 0, 0},
		Events: []Event{
			ev(0, EvSubmit, 1, 1, 0, "top"),
			ev(0, EvReady, 1, 1, 0, ""),
			ev(0, EvSubmit, 1, 2, 1, "left"),
			ev(0, EvEdge, 1, 2, 1, ""),
			ev(0, EvSubmit, 1, 3, 1, "right"),
			ev(0, EvEdge, 1, 3, 1, ""),
			ev(0, EvSubmit, 1, 4, 2, "bottom"),
			ev(0, EvEdge, 1, 4, 2, ""),
			ev(0, EvEdge, 1, 4, 3, ""),
			ev(0, EvStart, 0, 1, 0, ""),
			ev(10, EvEnd, 0, 1, 0, ""),
			ev(10, EvReady, 0, 2, 0, ""),
			ev(10, EvReady, 0, 3, 0, ""),
			ev(10, EvStart, 0, 2, 0, ""),
			ev(10, EvStart, 1, 3, 0, ""),
			ev(20, EvEnd, 1, 3, 0, ""),
			ev(30, EvEnd, 0, 2, 0, ""),
			ev(30, EvReady, 0, 4, 0, ""),
			ev(30, EvStart, 0, 4, 0, ""),
			ev(35, EvEnd, 0, 4, 0, ""),
		},
	}
}

// TestAnalyzeDiamondExact asserts every analyzer number exactly on the
// hand-built diamond.
func TestAnalyzeDiamondExact(t *testing.T) {
	a := Analyze(diamondTrace())
	if a.Submitted != 4 || a.Executed != 4 || a.Skipped != 0 || a.Edges != 4 {
		t.Fatalf("counts: submitted=%d executed=%d skipped=%d edges=%d",
			a.Submitted, a.Executed, a.Skipped, a.Edges)
	}
	if a.Span != 35 {
		t.Fatalf("span %d, want 35", a.Span)
	}
	if a.TotalExec != 45 {
		t.Fatalf("total exec %d, want 45", a.TotalExec)
	}
	if a.MaxParallelism != 2 {
		t.Fatalf("max parallelism %d, want 2", a.MaxParallelism)
	}
	if want := []int64{0, 25, 10}; !reflect.DeepEqual(a.Profile, want) {
		t.Fatalf("profile %v, want %v", a.Profile, want)
	}
	if want := float64(45) / 35; a.AvgParallelism != want {
		t.Fatalf("avg parallelism %v, want %v", a.AvgParallelism, want)
	}
	if a.CPLen != 35 {
		t.Fatalf("critical path %d, want 35", a.CPLen)
	}
	var chain []string
	for _, ct := range a.CPTasks {
		chain = append(chain, ct.Label)
	}
	if want := []string{"top", "left", "bottom"}; !reflect.DeepEqual(chain, want) {
		t.Fatalf("critical-path chain %v, want %v", chain, want)
	}
	if want := float64(45) / 35; a.PotentialSpeedup != want {
		t.Fatalf("potential speedup %v, want %v", a.PotentialSpeedup, want)
	}
	// Slack: only the off-path task has any, and it is exact.
	for id, wantSlack := range map[uint64]int64{1: 0, 2: 0, 3: 10, 4: 0} {
		if got := a.Tasks[id].Slack; got != wantSlack {
			t.Fatalf("task %d slack %d, want %d", id, got, wantSlack)
		}
	}
	if a.Tasks[3].Through != 25 {
		t.Fatalf("right through %d, want 25", a.Tasks[3].Through)
	}
	// Per-worker aggregates.
	if a.ByWorker[0].Busy != 35 || a.ByWorker[0].Tasks != 3 {
		t.Fatalf("w0 busy=%d tasks=%d, want 35/3", a.ByWorker[0].Busy, a.ByWorker[0].Tasks)
	}
	if a.ByWorker[1].Busy != 10 || a.ByWorker[1].Tasks != 1 {
		t.Fatalf("w1 busy=%d tasks=%d, want 10/1", a.ByWorker[1].Busy, a.ByWorker[1].Tasks)
	}
	// Label aggregation, descending total with label tiebreak.
	var labels []string
	for _, ls := range a.ByLabel {
		labels = append(labels, ls.Label)
	}
	if want := []string{"left", "right", "top", "bottom"}; !reflect.DeepEqual(labels, want) {
		t.Fatalf("label order %v, want %v", labels, want)
	}
	if a.Truncated || a.DroppedEvents != 0 {
		t.Fatalf("complete trace flagged truncated (%d dropped)", a.DroppedEvents)
	}
	if a.Tasks[2].Ready != 10 || a.Tasks[2].Submit != 0 {
		t.Fatalf("left ready=%d submit=%d, want 10/0", a.Tasks[2].Ready, a.Tasks[2].Submit)
	}
}

// TestAnalyzeStealsIdleTaskwait pins the scheduler-side aggregations: the
// steal matrix cell, per-worker idle and taskwait spans, and the rename
// counters.
func TestAnalyzeStealsIdleTaskwait(t *testing.T) {
	tr := &Trace{
		Backend: "test", Workers: 2, Dropped: []uint64{0, 0, 0},
		Events: []Event{
			{Seq: 1, At: 0, Kind: EvIdleEnter, Worker: 1},
			{Seq: 2, At: 5, Kind: EvSteal, Worker: 1, Arg: 0, Task: 9},
			{Seq: 3, At: 5, Kind: EvIdleExit, Worker: 1},
			{Seq: 4, At: 6, Kind: EvTaskwaitEnter, Worker: 0},
			{Seq: 5, At: 7, Kind: EvTaskwaitEnter, Worker: 0}, // nested
			{Seq: 6, At: 9, Kind: EvTaskwaitExit, Worker: 0},
			{Seq: 7, At: 14, Kind: EvTaskwaitExit, Worker: 0},
			{Seq: 8, At: 15, Kind: EvRename, Worker: -1, Task: 9},
			{Seq: 9, At: 16, Kind: EvWriteback, Worker: -1, Task: 9},
		},
	}
	a := Analyze(tr)
	if a.Steals != 1 || a.StealMatrix[1][0] != 1 || a.ByWorker[1].Steals != 1 {
		t.Fatalf("steal accounting wrong: steals=%d matrix=%v", a.Steals, a.StealMatrix)
	}
	if a.ByWorker[1].Idle != 5 {
		t.Fatalf("w1 idle %d, want 5", a.ByWorker[1].Idle)
	}
	// Nested taskwait counts the outermost span only.
	if a.ByWorker[0].Taskwait != 8 {
		t.Fatalf("w0 taskwait %d, want 8 (outermost span)", a.ByWorker[0].Taskwait)
	}
	if a.Renames != 1 || a.Writebacks != 1 {
		t.Fatalf("renames=%d writebacks=%d, want 1/1", a.Renames, a.Writebacks)
	}
}

// TestAnalyzeTruncatedTrace checks drop reporting: exact count surfaced,
// truncation flagged, incomplete tasks excluded from timing aggregates,
// and the report says so.
func TestAnalyzeTruncatedTrace(t *testing.T) {
	tr := &Trace{
		Backend: "test", Workers: 1, Dropped: []uint64{7, 0},
		Events: []Event{
			// End without its start (the start was overwritten) plus one
			// complete task.
			{Seq: 50, At: 90, Kind: EvEnd, Worker: 0, Task: 3},
			{Seq: 51, At: 100, Kind: EvStart, Worker: 0, Task: 4},
			{Seq: 52, At: 110, Kind: EvEnd, Worker: 0, Task: 4},
		},
	}
	a := Analyze(tr)
	if !a.Truncated || a.DroppedEvents != 7 {
		t.Fatalf("truncation not reported: truncated=%v dropped=%d", a.Truncated, a.DroppedEvents)
	}
	if a.Executed != 1 || a.TotalExec != 10 {
		t.Fatalf("incomplete task leaked into aggregates: executed=%d exec=%d", a.Executed, a.TotalExec)
	}
	var sb strings.Builder
	if err := a.WriteReport(&sb, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "7 events overwritten") {
		t.Fatalf("report does not surface the drop count:\n%s", sb.String())
	}
}

// TestAnalyzeSkipped checks that skip-released tasks are counted and
// marked.
func TestAnalyzeSkipped(t *testing.T) {
	tr := &Trace{
		Backend: "test", Workers: 1, Dropped: []uint64{0, 0},
		Events: []Event{
			{Seq: 1, At: 0, Kind: EvSubmit, Worker: 0, Task: 1, Label: "doomed"},
			{Seq: 2, At: 1, Kind: EvStart, Worker: 0, Task: 1},
			{Seq: 3, At: 1, Kind: EvSkip, Worker: 0, Task: 1},
			{Seq: 4, At: 1, Kind: EvEnd, Worker: 0, Task: 1},
		},
	}
	a := Analyze(tr)
	if a.Skipped != 1 || !a.Tasks[1].Skipped {
		t.Fatalf("skip not recorded: skipped=%d task=%+v", a.Skipped, a.Tasks[1])
	}
}
