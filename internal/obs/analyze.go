package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TaskInfo is one task reconstructed from the stream.
type TaskInfo struct {
	ID      uint64
	Label   string
	Worker  int // executing lane, -1 if never started
	Submit  int64
	Ready   int64
	Start   int64
	End     int64
	Exec    int64 // End-Start for complete tasks, 0 otherwise
	Skipped bool
	Preds   []uint64
	Succs   []uint64
	// Critical-path annotations (complete tasks only): CPUp is the longest
	// exec-weighted dependence chain ending at this task (inclusive),
	// Through the longest chain passing through it, Slack how much the
	// task could grow without lengthening the critical path.
	CPUp    int64
	Through int64
	Slack   int64
}

// Complete reports whether both endpoints of the task's execution were
// captured (a wrapped ring can lose either).
func (t *TaskInfo) Complete() bool { return t.Start >= 0 && t.End >= 0 }

// Name returns the task's label, or "task <id>" when it has none (or its
// submit event was dropped).
func (t *TaskInfo) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return fmt.Sprintf("task %d", t.ID)
}

// WorkerStat aggregates one lane's activity.
type WorkerStat struct {
	Busy     int64 // summed task execution time
	Tasks    int
	Steals   int   // successful steals by this lane
	Idle     int64 // idle-enter → idle-exit spans
	Taskwait int64 // taskwait-enter → taskwait-exit spans (outermost)
}

// LabelStat aggregates execution time over tasks sharing a label.
type LabelStat struct {
	Label string
	Count int
	Total int64
}

// Analysis is the offline report computed from one trace: the paper-style
// instantaneous-parallelism profile, the critical path through the
// dependence graph, per-worker utilization and the steal matrix, and
// per-label execution totals.
type Analysis struct {
	Backend string
	Virtual bool
	Workers int

	Tasks  map[uint64]*TaskInfo
	Order  []uint64 // task IDs ascending (submission order)
	Edges  int
	Events int

	Submitted int // tasks with a submit event
	Executed  int // tasks with both start and end
	Skipped   int

	Span      int64 // ns from epoch to the last event
	TotalExec int64 // summed task execution time

	// Profile[l] is the time (ns) during which exactly l tasks were
	// running, 0 ≤ l ≤ MaxParallelism; the instantaneous-parallelism
	// profile integrates to Span, and its exec-weighted mean is
	// AvgParallelism = TotalExec/Span.
	Profile        []int64
	AvgParallelism float64
	MaxParallelism int

	// CPLen is the exec-weighted length of the longest dependence chain;
	// CPTasks lists that chain in execution order. PotentialSpeedup is
	// TotalExec/CPLen — the DAG's inherent parallelism, what the paper
	// reads off its dependence-structure discussions.
	CPLen            int64
	CPTasks          []*TaskInfo
	PotentialSpeedup float64

	ByWorker    []WorkerStat
	StealMatrix [][]int // [thief][victim] successful steals

	ByLabel []LabelStat // descending total exec

	Steals     int
	Renames    int
	Writebacks int

	// Distributed-backend transfer accounting (EvXfer / EvXferHit):
	// payload bytes actually moved between processes, and transfers the
	// per-worker version caches made unnecessary.
	Transfers     int
	TransferBytes int64
	TransferHits  int
	BytesAvoided  int64

	// Chain dispatches (EvChain): frames carrying several tasks to one
	// worker, and the tasks those frames covered.
	Chains       int
	ChainedTasks int

	// Worker-to-worker direct transfers (EvForward): payloads pulled
	// straight from the producing peer, bypassing the coordinator.
	Forwards     int
	ForwardBytes int64

	// Tunes counts feedback-controller setpoint moves (EvTune).
	Tunes int

	// DroppedEvents is the exact number of ring-overwritten events; when
	// non-zero the reports cover a truncated stream (Truncated is set,
	// WriteReport says so and suggests SuggestedCapacity — the smallest
	// power-of-two ring that would have held the busiest lane's stream).
	DroppedEvents     uint64
	Truncated         bool
	Capacity          int
	SuggestedCapacity int
}

// Analyze merges the trace into per-task records and computes every
// report. It never fails on a truncated stream — incomplete tasks are
// excluded from timing aggregates and the drop count is surfaced.
func Analyze(tr *Trace) *Analysis {
	a := &Analysis{
		Backend:       tr.Backend,
		Virtual:       tr.Virtual,
		Workers:       tr.Workers,
		Tasks:         map[uint64]*TaskInfo{},
		Events:        len(tr.Events),
		DroppedEvents: tr.TotalDropped(),
	}
	a.Truncated = a.DroppedEvents > 0
	a.Capacity = tr.Capacity
	if a.Truncated {
		a.SuggestedCapacity = suggestedCapacity(tr)
	}
	a.ByWorker = make([]WorkerStat, tr.Workers)
	a.StealMatrix = make([][]int, tr.Workers)
	for i := range a.StealMatrix {
		a.StealMatrix[i] = make([]int, tr.Workers)
	}

	task := func(id uint64) *TaskInfo {
		t := a.Tasks[id]
		if t == nil {
			t = &TaskInfo{ID: id, Worker: -1, Submit: -1, Ready: -1, Start: -1, End: -1}
			a.Tasks[id] = t
			a.Order = append(a.Order, id)
		}
		return t
	}
	twDepth := make([]int, tr.Workers+1)
	twEnter := make([]int64, tr.Workers+1)
	idleFrom := make([]int64, tr.Workers+1)
	for i := range idleFrom {
		idleFrom[i] = -1
	}
	lane := func(w int32) int {
		if w >= 0 && int(w) < tr.Workers {
			return int(w)
		}
		return tr.Workers
	}

	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.At > a.Span {
			a.Span = ev.At
		}
		switch ev.Kind {
		case EvSubmit:
			t := task(ev.Task)
			t.Submit = ev.At
			t.Label = ev.Label
			a.Submitted++
		case EvEdge:
			t := task(ev.Task)
			t.Preds = append(t.Preds, ev.Arg)
			task(ev.Arg).Succs = append(task(ev.Arg).Succs, ev.Task)
			a.Edges++
		case EvReady:
			task(ev.Task).Ready = ev.At
		case EvStart:
			t := task(ev.Task)
			t.Start = ev.At
			t.Worker = int(ev.Worker)
		case EvEnd:
			task(ev.Task).End = ev.At
		case EvSkip:
			t := task(ev.Task)
			if !t.Skipped {
				t.Skipped = true
				a.Skipped++
			}
		case EvSteal:
			a.Steals++
			if th := int(ev.Worker); th >= 0 && th < tr.Workers {
				a.ByWorker[th].Steals++
				if v := int(ev.Arg); v >= 0 && v < tr.Workers {
					a.StealMatrix[th][v]++
				}
			}
		case EvIdleEnter:
			idleFrom[lane(ev.Worker)] = ev.At
		case EvIdleExit:
			l := lane(ev.Worker)
			if idleFrom[l] >= 0 && l < tr.Workers {
				a.ByWorker[l].Idle += ev.At - idleFrom[l]
			}
			idleFrom[l] = -1
		case EvTaskwaitEnter:
			l := lane(ev.Worker)
			if twDepth[l] == 0 {
				twEnter[l] = ev.At
			}
			twDepth[l]++
		case EvTaskwaitExit:
			l := lane(ev.Worker)
			if twDepth[l] > 0 {
				twDepth[l]--
				if twDepth[l] == 0 && l < tr.Workers {
					a.ByWorker[l].Taskwait += ev.At - twEnter[l]
				}
			}
		case EvRename:
			a.Renames++
		case EvWriteback:
			a.Writebacks++
		case EvXfer:
			a.Transfers++
			a.TransferBytes += int64(ev.Arg)
		case EvXferHit:
			a.TransferHits++
			a.BytesAvoided += int64(ev.Arg)
		case EvChain:
			a.Chains++
			a.ChainedTasks += int(ev.Arg)
		case EvForward:
			a.Forwards++
			a.ForwardBytes += int64(ev.Arg)
		case EvTune:
			a.Tunes++
		}
	}
	sort.Slice(a.Order, func(i, j int) bool { return a.Order[i] < a.Order[j] })

	// Per-task execution, per-worker busy time, label totals.
	labels := map[string]*LabelStat{}
	for _, id := range a.Order {
		t := a.Tasks[id]
		if !t.Complete() {
			continue
		}
		a.Executed++
		t.Exec = t.End - t.Start
		a.TotalExec += t.Exec
		if t.Worker >= 0 && t.Worker < tr.Workers {
			a.ByWorker[t.Worker].Busy += t.Exec
			a.ByWorker[t.Worker].Tasks++
		}
		ls := labels[t.Name()]
		if ls == nil {
			ls = &LabelStat{Label: t.Name()}
			labels[t.Name()] = ls
		}
		ls.Count++
		ls.Total += t.Exec
	}
	for _, ls := range labels {
		a.ByLabel = append(a.ByLabel, *ls)
	}
	sort.Slice(a.ByLabel, func(i, j int) bool {
		if a.ByLabel[i].Total != a.ByLabel[j].Total {
			return a.ByLabel[i].Total > a.ByLabel[j].Total
		}
		return a.ByLabel[i].Label < a.ByLabel[j].Label
	})

	a.computeProfile(tr)
	a.computeCriticalPath()
	if a.Span > 0 {
		a.AvgParallelism = float64(a.TotalExec) / float64(a.Span)
	}
	if a.CPLen > 0 {
		a.PotentialSpeedup = float64(a.TotalExec) / float64(a.CPLen)
	}
	return a
}

// computeProfile sweeps start/end endpoints and accumulates the time spent
// at each instantaneous concurrency level.
func (a *Analysis) computeProfile(tr *Trace) {
	type point struct {
		at    int64
		delta int
	}
	var pts []point
	for _, id := range a.Order {
		t := a.Tasks[id]
		if !t.Complete() {
			continue
		}
		pts = append(pts, point{t.Start, +1}, point{t.End, -1})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].at < pts[j].at })
	// All deltas at one instant apply together, so a handoff (one task
	// ending exactly where another starts) neither dips below zero nor
	// spikes the maximum with a zero-width level.
	profile := []int64{0}
	level, prev := 0, int64(0)
	for i := 0; i < len(pts); {
		at := pts[i].at
		profile[level] += at - prev
		prev = at
		for i < len(pts) && pts[i].at == at {
			level += pts[i].delta
			i++
		}
		for len(profile) <= level {
			profile = append(profile, 0)
		}
		if level > a.MaxParallelism {
			a.MaxParallelism = level
		}
	}
	if a.Span > prev {
		profile[0] += a.Span - prev
	}
	a.Profile = profile
}

// computeCriticalPath runs the exec-weighted longest-path passes. Task IDs
// ascend in submission order and every dependence edge points from an
// earlier ID to a later one, so ascending ID order is a topological order
// even when ring drops removed some events.
func (a *Analysis) computeCriticalPath() {
	var cpEnd *TaskInfo
	for _, id := range a.Order {
		t := a.Tasks[id]
		t.CPUp = t.Exec
		for _, p := range t.Preds {
			if pt := a.Tasks[p]; pt != nil && pt.CPUp+t.Exec > t.CPUp {
				t.CPUp = pt.CPUp + t.Exec
			}
		}
		if t.CPUp > a.CPLen {
			a.CPLen = t.CPUp
			cpEnd = t
		}
	}
	// Downward pass for slack: longest chain from each task to a sink.
	tails := map[uint64]int64{}
	for i := len(a.Order) - 1; i >= 0; i-- {
		t := a.Tasks[a.Order[i]]
		tail := t.Exec
		for _, s := range t.Succs {
			if st := a.Tasks[s]; st != nil && tails[s]+t.Exec > tail {
				tail = tails[s] + t.Exec
			}
		}
		tails[t.ID] = tail
		t.Through = t.CPUp + tail - t.Exec
		t.Slack = a.CPLen - t.Through
		if t.Slack < 0 {
			t.Slack = 0
		}
	}
	// Walk the chain back from the endpoint.
	for t := cpEnd; t != nil; {
		a.CPTasks = append(a.CPTasks, t)
		var next *TaskInfo
		for _, p := range t.Preds {
			if pt := a.Tasks[p]; pt != nil && pt.CPUp == t.CPUp-t.Exec && pt.CPUp > 0 {
				next = pt
				break
			}
		}
		t = next
	}
	for i, j := 0, len(a.CPTasks)-1; i < j; i, j = i+1, j-1 {
		a.CPTasks[i], a.CPTasks[j] = a.CPTasks[j], a.CPTasks[i]
	}
}

// suggestedCapacity returns the smallest power-of-two per-ring capacity
// that would have held the busiest ring's full stream — the actual ring
// size (capacity rounds up at init) plus the worst per-ring overwrite
// count, rounded up.
func suggestedCapacity(tr *Trace) int {
	ringCap := 1
	for ringCap < tr.Capacity {
		ringCap <<= 1
	}
	var worst uint64
	for _, d := range tr.Dropped {
		if d > worst {
			worst = d
		}
	}
	need := uint64(ringCap) + worst
	c := uint64(ringCap)
	for c < need {
		c <<= 1
	}
	return int(c)
}

func dur(ns int64) time.Duration { return time.Duration(ns) }

// WriteReport renders the analysis as the text report `ompss-trace
// analyze` prints: header, parallelism profile, critical path, worker
// table, steal matrix, and the top-N label aggregation.
func (a *Analysis) WriteReport(w io.Writer, topN int) error {
	clock := "wall-clock"
	if a.Virtual {
		clock = "virtual-time"
	}
	if _, err := fmt.Fprintf(w, "trace: %s backend, %d lanes, %d events (%s)\n",
		a.Backend, a.Workers, a.Events, clock); err != nil {
		return err
	}
	if a.Truncated {
		fmt.Fprintf(w, "WARNING: %d events overwritten by ring wraparound — timings below cover a truncated stream\n",
			a.DroppedEvents)
		fmt.Fprintf(w, "WARNING: rerun with a per-worker ring capacity of %d events (current %d) for a complete trace\n",
			a.SuggestedCapacity, a.Capacity)
	}
	fmt.Fprintf(w, "tasks: %d submitted, %d executed, %d skipped, %d dependence edges\n",
		a.Submitted, a.Executed, a.Skipped, a.Edges)
	fmt.Fprintf(w, "span %v, total exec %v, avg parallelism %.2f, max %d\n",
		dur(a.Span), dur(a.TotalExec), a.AvgParallelism, a.MaxParallelism)
	fmt.Fprintf(w, "critical path %v over %d tasks — potential speedup %.2fx\n",
		dur(a.CPLen), len(a.CPTasks), a.PotentialSpeedup)
	n := len(a.CPTasks)
	if n > topN {
		n = topN
	}
	for _, t := range a.CPTasks[:n] {
		fmt.Fprintf(w, "  cp %-24s exec %-12v cum %-12v lane %d\n", t.Name(), dur(t.Exec), dur(t.CPUp), t.Worker)
	}
	if len(a.CPTasks) > n {
		fmt.Fprintf(w, "  cp ... %d more\n", len(a.CPTasks)-n)
	}
	fmt.Fprintln(w, "parallelism profile (time at each concurrency level):")
	for l, ns := range a.Profile {
		if ns == 0 {
			continue
		}
		pct := 0.0
		if a.Span > 0 {
			pct = 100 * float64(ns) / float64(a.Span)
		}
		fmt.Fprintf(w, "  %2d running: %-12v %5.1f%%\n", l, dur(ns), pct)
	}
	fmt.Fprintln(w, "workers:")
	for i := range a.ByWorker {
		ws := &a.ByWorker[i]
		util := 0.0
		if a.Span > 0 {
			util = 100 * float64(ws.Busy) / float64(a.Span)
		}
		fmt.Fprintf(w, "  lane %-3d busy %-12v %5.1f%%  tasks %-6d steals %-5d idle %-12v taskwait %v\n",
			i, dur(ws.Busy), util, ws.Tasks, ws.Steals, dur(ws.Idle), dur(ws.Taskwait))
	}
	if a.Steals > 0 {
		fmt.Fprintln(w, "steal matrix (thief row × victim column):")
		for th := range a.StealMatrix {
			fmt.Fprintf(w, "  lane %-3d", th)
			for _, n := range a.StealMatrix[th] {
				fmt.Fprintf(w, " %6d", n)
			}
			fmt.Fprintln(w)
		}
	}
	n = len(a.ByLabel)
	if n > topN {
		n = topN
	}
	if n > 0 {
		fmt.Fprintf(w, "top %d tasks by exclusive time:\n", n)
		for _, ls := range a.ByLabel[:n] {
			mean := int64(0)
			if ls.Count > 0 {
				mean = ls.Total / int64(ls.Count)
			}
			fmt.Fprintf(w, "  %-24s n=%-6d total %-12v mean %v\n", ls.Label, ls.Count, dur(ls.Total), dur(mean))
		}
	}
	if a.Renames > 0 || a.Writebacks > 0 {
		fmt.Fprintf(w, "renaming: %d renames, %d writebacks\n", a.Renames, a.Writebacks)
	}
	if a.Transfers > 0 || a.TransferHits > 0 {
		fmt.Fprintf(w, "transfers: %d moved %d bytes, %d avoided by version caches (%d bytes)\n",
			a.Transfers, a.TransferBytes, a.TransferHits, a.BytesAvoided)
	}
	if a.Forwards > 0 {
		fmt.Fprintf(w, "forwards: %d worker-to-worker transfers (%d bytes bypassed the coordinator)\n",
			a.Forwards, a.ForwardBytes)
	}
	if a.Chains > 0 {
		fmt.Fprintf(w, "chains: %d dispatch frames covering %d tasks\n", a.Chains, a.ChainedTasks)
	}
	if a.Tunes > 0 {
		fmt.Fprintf(w, "tuning: %d setpoint moves by the feedback controller\n", a.Tunes)
	}
	return nil
}
