package obs

import (
	"fmt"
	"sort"
)

// Cross-process trace merging: the distributed coordinator records its own
// dispatch-side stream while every worker process records kernel execution
// into a private recorder and ships the batches back over the wire. After
// the run drains, MergeTraces aligns each worker stream onto the
// coordinator's clock (the offset is estimated from the handshake
// round-trip, see internal/dist) and folds everything into one Trace whose
// lanes beyond the coordinator's are per-(worker-process, slot, generation)
// tracks.

// Track describes one lane of a merged trace: which process it belongs to
// and, for worker lanes, the slot/generation/PID identity of that worker
// process incarnation. Lane indexes match Event.Worker in the merged
// stream.
type Track struct {
	Lane  int32  `json:"lane"`
	Proc  string `json:"proc"` // "coordinator" or "worker"
	Slot  int    `json:"slot,omitempty"`
	Gen   int    `json:"gen,omitempty"`
	PID   int    `json:"pid,omitempty"`
	Label string `json:"label,omitempty"`
}

// TrackStream is one worker process's shipped event stream, pre-alignment:
// Events carry the worker's own epoch-relative timestamps and Offset is
// the estimated difference between the two epochs (coordinator-clock =
// worker-clock + Offset), from the handshake round-trip midpoint.
type TrackStream struct {
	Proc    string
	Slot    int
	Gen     int
	PID     int
	Offset  int64
	Events  []Event
	Dropped uint64
}

// sortEventsBySeq orders a drained batch by its recorder-local sequence.
func sortEventsBySeq(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
}

// MergeTraces merges worker streams into the coordinator's base trace. Each
// stream becomes one new lane after the base's (base lanes are untouched;
// -1 no-lane events keep routing to the merged overflow lane). Stream
// timestamps are shifted by the stream's clock offset and clamped at the
// epoch; negative-skew events cannot precede the run.
//
// Exactly-once rule: a task that has both a start and an end on a worker
// track was executed remotely, so the coordinator's own EvStart/EvEnd for
// it (which bracket the dispatch round-trip, not execution) are dropped —
// every executed task appears exactly once, on the track that ran it. The
// coordinator keeps its submit/ready/xfer/chain events, so dispatch
// structure stays visible.
//
// The merged stream is ordered by aligned timestamp (coordinator events
// first on ties, then shipping order) and renumbered from Seq 1.
func MergeTraces(base *Trace, streams []TrackStream) *Trace {
	baseW := base.Workers
	out := &Trace{
		Backend:  base.Backend,
		Virtual:  base.Virtual,
		Workers:  baseW + len(streams),
		Capacity: base.Capacity,
	}

	// Drop vector: base lanes, then one entry per stream, then the base
	// overflow lane's count on the merged overflow slot.
	out.Dropped = make([]uint64, out.Workers+1)
	for i := 0; i < baseW && i < len(base.Dropped); i++ {
		out.Dropped[i] = base.Dropped[i]
	}
	for i, s := range streams {
		out.Dropped[baseW+i] = s.Dropped
	}
	if len(base.Dropped) > baseW {
		out.Dropped[out.Workers] = base.Dropped[baseW]
	}

	// Lane identity metadata.
	out.Tracks = make([]Track, 0, out.Workers)
	for i := 0; i < baseW; i++ {
		out.Tracks = append(out.Tracks, Track{Lane: int32(i), Proc: "coordinator"})
	}
	for i, s := range streams {
		proc := s.Proc
		if proc == "" {
			proc = "worker"
		}
		out.Tracks = append(out.Tracks, Track{
			Lane: int32(baseW + i), Proc: proc,
			Slot: s.Slot, Gen: s.Gen, PID: s.PID, Label: trackLabel(s),
		})
	}

	// Tasks executed remotely: both lifecycle ends seen on a worker stream.
	started := make(map[uint64]bool)
	ended := make(map[uint64]bool)
	for _, s := range streams {
		for i := range s.Events {
			ev := &s.Events[i]
			switch ev.Kind {
			case EvStart:
				started[ev.Task] = true
			case EvEnd:
				ended[ev.Task] = true
			}
		}
	}
	remote := func(task uint64) bool { return started[task] && ended[task] }

	type merged struct {
		ev   Event
		src  int // 0 = coordinator, 1+i = stream i (tie order)
		orig uint64
	}
	all := make([]merged, 0, len(base.Events))
	for _, ev := range base.Events {
		if (ev.Kind == EvStart || ev.Kind == EvEnd) && remote(ev.Task) {
			continue
		}
		all = append(all, merged{ev: ev, src: 0, orig: ev.Seq})
	}
	for i, s := range streams {
		lane := int32(baseW + i)
		for _, ev := range s.Events {
			at := ev.At + s.Offset
			if at < 0 {
				at = 0
			}
			ev.At = at
			ev.Worker = lane
			all = append(all, merged{ev: ev, src: 1 + i, orig: ev.Seq})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.orig < b.orig
	})
	out.Events = make([]Event, len(all))
	for i := range all {
		ev := all[i].ev
		ev.Seq = uint64(i + 1)
		out.Events[i] = ev
	}
	return out
}

// trackLabel renders the worker-track display name used by the exporters.
func trackLabel(s TrackStream) string {
	return fmt.Sprintf("worker slot %d gen %d pid %d", s.Slot, s.Gen, s.PID)
}
