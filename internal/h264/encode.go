package h264

import (
	"fmt"
	"hash/fnv"

	"ompssgo/internal/img"
)

// Bitstream layout:
//
//	"TBC1" | ue(MBW) ue(MBH) ue(QP) ue(GOP) ue(SearchRange) ue(nframes)
//	per frame: 00 00 01 | len (3 bytes BE) | payload | fnv32(payload)
//
// The per-frame start code + checksum give the read stage real splitting and
// verification work, like NAL unit extraction.

var magic = []byte("TBC1")

const startCodeLen = 3

// Encoder compresses a frame sequence. It maintains the reconstructed
// previous frame so its references match the decoder's bit-exactly.
type Encoder struct {
	P      Params
	rec    *img.Gray // reconstruction of the last encoded frame
	prev   *img.Gray // reference = reconstruction of frame n−1
	frames int
}

// NewEncoder validates params and creates an encoder.
func NewEncoder(p Params) (*Encoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.SearchRange < 0 || p.SearchRange > 16 {
		return nil, fmt.Errorf("h264: search range %d out of range", p.SearchRange)
	}
	return &Encoder{P: p, rec: img.NewGray(p.W, p.H), prev: img.NewGray(p.W, p.H)}, nil
}

// EncodeSequence compresses frames into a complete bitstream.
func EncodeSequence(p Params, frames []*img.Gray) ([]byte, error) {
	enc, err := NewEncoder(p)
	if err != nil {
		return nil, err
	}
	hw := NewBitWriter()
	hw.WriteUE(uint32(p.MBW()))
	hw.WriteUE(uint32(p.MBH()))
	hw.WriteUE(uint32(p.QP))
	hw.WriteUE(uint32(p.GOP))
	hw.WriteUE(uint32(p.SearchRange))
	if p.Deblock {
		hw.WriteBits(1, 1)
	} else {
		hw.WriteBits(0, 1)
	}
	hw.WriteUE(uint32(len(frames)))
	out := append([]byte{}, magic...)
	out = append(out, hw.Bytes()...)
	for i, f := range frames {
		payload, err := enc.EncodeFrame(f)
		if err != nil {
			return nil, fmt.Errorf("h264: frame %d: %w", i, err)
		}
		out = append(out, 0, 0, 1)
		n := len(payload)
		out = append(out, byte(n>>16), byte(n>>8), byte(n))
		out = append(out, payload...)
		h := fnv.New32a()
		h.Write(payload)
		s := h.Sum32()
		out = append(out, byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	}
	return out, nil
}

// EncodeFrame compresses one frame and returns its payload. Frames must be
// fed in display order; the encoder assigns I/P types by GOP position.
func (e *Encoder) EncodeFrame(src *img.Gray) ([]byte, error) {
	if src.W != e.P.W || src.H != e.P.H {
		return nil, fmt.Errorf("h264: frame size %dx%d != %dx%d", src.W, src.H, e.P.W, e.P.H)
	}
	num := e.frames
	e.frames++
	ftype := FrameP
	if num%e.P.GOP == 0 {
		ftype = FrameI
	}
	hdr := Header{Num: num, Type: ftype, QP: e.P.QP}

	w := NewBitWriter()
	w.WriteUE(uint32(num))
	w.WriteBits(uint32(ftype), 1)
	w.WriteUE(uint32(hdr.QP))

	// The encoder builds the same FrameData the decoder will, then runs
	// the shared reconstruction on it — keeping both ends bit-identical.
	fd := NewFrameData(e.P)
	fd.Hdr = hdr
	e.prev, e.rec = e.rec, e.prev
	ref := e.prev // reconstruction of frame num−1

	for mby := 0; mby < e.P.MBH(); mby++ {
		for mbx := 0; mbx < e.P.MBW(); mbx++ {
			mb := &fd.MBs[mby*e.P.MBW()+mbx]
			e.chooseMode(src, ref, fd, mb, mbx, mby, ftype)
			e.writeMB(w, mb, ftype)
			// Reconstruct immediately: later MBs intra-predict from
			// these samples.
			reconstructMB(e.P, e.rec, ref, fd, mbx, mby)
		}
	}
	return w.Bytes(), nil
}

// Rec exposes the current reconstruction (tests compare it against the
// decoder's output).
func (e *Encoder) Rec() *img.Gray { return e.rec }

func sadBlock(src *img.Gray, x0, y0 int, pred *[MBSize * MBSize]uint8) int {
	var sad int
	for y := 0; y < MBSize; y++ {
		row := src.Row(y0 + y)
		for x := 0; x < MBSize; x++ {
			d := int(row[x0+x]) - int(pred[y*MBSize+x])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// chooseMode performs mode decision and fills mb (mode, MVs, coefficients).
func (e *Encoder) chooseMode(src, ref *img.Gray, fd *FrameData, mb *MB, mbx, mby, ftype int) {
	x0, y0 := mbx*MBSize, mby*MBSize
	var pred [MBSize * MBSize]uint8

	bestMode := uint8(ModeIntraDC)
	bestSAD := int(^uint(0) >> 1)
	for _, m := range []uint8{ModeIntraDC, ModeIntraH, ModeIntraV} {
		// Intra prediction must use the reconstruction (decoder view).
		predictIntra(&pred, e.rec, mbx, mby, m)
		if s := sadBlock(src, x0, y0, &pred); s < bestSAD {
			bestSAD, bestMode = s, m
		}
	}
	var bmvx, bmvy int
	if ftype == FrameP {
		interSAD := int(^uint(0) >> 1)
		r := e.P.SearchRange
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				predictInter(&pred, ref, mbx, mby, dx, dy)
				s := sadBlock(src, x0, y0, &pred)
				// Slight zero-MV bias for stable, compact streams.
				if dx != 0 || dy != 0 {
					s += 32
				}
				if s < interSAD {
					interSAD, bmvx, bmvy = s, dx, dy
				}
			}
		}
		if interSAD <= bestSAD {
			bestSAD, bestMode = interSAD, ModeInter
		}
	}

	mb.Mode = bestMode
	mb.MVX, mb.MVY = int8(bmvx), int8(bmvy)
	if bestMode == ModeInter {
		predictInter(&pred, ref, mbx, mby, bmvx, bmvy)
	} else {
		predictIntra(&pred, e.rec, mbx, mby, bestMode)
	}
	// Residual → transform → quantize per 4×4 block.
	nonzero := false
	for blk := 0; blk < 16; blk++ {
		bx, by := (blk%4)*4, (blk/4)*4
		var c [16]int32
		for y := 0; y < 4; y++ {
			row := src.Row(y0 + by + y)
			for x := 0; x < 4; x++ {
				pi := (by+y)*MBSize + bx + x
				c[y*4+x] = int32(row[x0+bx+x]) - int32(pred[pi])
			}
		}
		fwd4x4(&c)
		quantize(&c, fd.Hdr.QP)
		mb.Coef[blk] = c
		for _, v := range c {
			if v != 0 {
				nonzero = true
			}
		}
	}
	if bestMode == ModeInter && !nonzero {
		mb.Mode = ModeSkip
	}
}

// writeMB entropy-codes one macroblock.
func (e *Encoder) writeMB(w *BitWriter, mb *MB, ftype int) {
	if ftype == FrameP {
		switch mb.Mode {
		case ModeSkip:
			w.WriteUE(0)
		case ModeInter:
			w.WriteUE(1)
		default:
			w.WriteUE(uint32(2 + mb.Mode)) // 2,3,4 = DC,H,V
		}
		if mb.Mode == ModeSkip || mb.Mode == ModeInter {
			w.WriteSE(int32(mb.MVX))
			w.WriteSE(int32(mb.MVY))
		}
	} else {
		w.WriteUE(uint32(mb.Mode)) // 0,1,2
	}
	if mb.Mode == ModeSkip {
		return
	}
	for blk := 0; blk < 16; blk++ {
		writeCoefBlock(w, &mb.Coef[blk])
	}
}

// writeCoefBlock codes a 4×4 level block as (count, then run/level pairs in
// zigzag order) — a CAVLC-shaped run-length layer over Exp-Golomb.
func writeCoefBlock(w *BitWriter, c *[16]int32) {
	nnz := 0
	for _, v := range c {
		if v != 0 {
			nnz++
		}
	}
	w.WriteUE(uint32(nnz))
	run := 0
	for _, zi := range zigzag4 {
		v := c[zi]
		if v == 0 {
			run++
			continue
		}
		w.WriteUE(uint32(run))
		w.WriteSE(v)
		run = 0
	}
}
