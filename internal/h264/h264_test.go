package h264

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ompssgo/internal/img"
	"ompssgo/internal/media"
)

func TestExpGolombRoundtripProperty(t *testing.T) {
	fu := func(vals []uint32) bool {
		w := NewBitWriter()
		for _, v := range vals {
			w.WriteUE(v % (1 << 20))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadUE()
			if err != nil || got != v%(1<<20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fu, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	fs := func(vals []int32) bool {
		w := NewBitWriter()
		for _, v := range vals {
			w.WriteSE(v % (1 << 18))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadSE()
			if err != nil || got != v%(1<<18) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fs, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsMixedRoundtrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b1011, 4)
	w.WriteUE(0)
	w.WriteSE(-7)
	w.WriteBits(0x1ff, 9)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("bits: %b", v)
	}
	if v, _ := r.ReadUE(); v != 0 {
		t.Fatalf("ue: %d", v)
	}
	if v, _ := r.ReadSE(); v != -7 {
		t.Fatalf("se: %d", v)
	}
	if v, _ := r.ReadBits(9); v != 0x1ff {
		t.Fatalf("bits9: %x", v)
	}
}

func TestBitReaderUnderrun(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	if _, err := r.ReadBits(9); err == nil {
		t.Fatal("expected underrun error")
	}
}

func TestTransformQuantRoundtripBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, qp := range []int{0, 10, 20, 28} {
		var worst int32
		for trial := 0; trial < 200; trial++ {
			var orig, c [16]int32
			for i := range orig {
				orig[i] = int32(rng.Intn(255) - 127) // residual range
				c[i] = orig[i]
			}
			fwd4x4(&c)
			quantize(&c, qp)
			dequantize(&c, qp)
			inv4x4(&c)
			for i := range c {
				d := c[i] - orig[i]
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		// Quantization error grows with QP; the bound is loose but must
		// scale sanely and stay small at low QP.
		limit := int32(2 + qstepApprox(qp))
		if worst > limit {
			t.Fatalf("QP %d: worst reconstruction error %d > %d", qp, worst, limit)
		}
	}
}

func qstepApprox(qp int) int32 { return int32(float64(5) * math.Pow(2, float64(qp)/6.0)) }

func TestZigzagIsPermutation(t *testing.T) {
	seen := [16]bool{}
	for _, v := range zigzag4 {
		if v < 0 || v > 15 || seen[v] {
			t.Fatal("zigzag not a permutation")
		}
		seen[v] = true
	}
}

func TestPIBFetchRelease(t *testing.T) {
	p := NewPIB(3)
	a, b, c := p.Fetch(), p.Fetch(), p.Fetch()
	if a == nil || b == nil || c == nil {
		t.Fatal("pool should supply 3 entries")
	}
	if p.Fetch() != nil {
		t.Fatal("exhausted pool must return nil")
	}
	p.Release(b)
	if p.Fetch() == nil {
		t.Fatal("released entry should be reusable")
	}
	if p.Free() != 0 {
		t.Fatalf("free = %d", p.Free())
	}
}

func TestDPBRefcounting(t *testing.T) {
	d := NewDPB(2, Params{W: 16, H: 16, QP: 20, GOP: 4})
	a := d.Fetch(0, 2) // output + reference
	if a == nil {
		t.Fatal("fetch failed")
	}
	if d.Free() != 1 {
		t.Fatalf("free = %d", d.Free())
	}
	d.Release(a)
	if d.Free() != 1 {
		t.Fatal("picture still referenced")
	}
	d.Retain(a)
	d.Release(a)
	d.Release(a)
	if d.Free() != 2 {
		t.Fatal("picture should be free after all releases")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release must panic")
		}
	}()
	d.Release(a)
}

func testParams() Params {
	return Params{W: 96, H: 64, QP: 24, GOP: 4, SearchRange: 4}
}

func testStream(t *testing.T, nframes int) ([]byte, []*img.Gray, Params) {
	t.Helper()
	p := testParams()
	frames := media.Video(nframes, p.W, p.H, 5)
	bs, err := EncodeSequence(p, frames)
	if err != nil {
		t.Fatal(err)
	}
	return bs, frames, p
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	bs, frames, p := testStream(t, 6)
	dec, err := Decode(bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(dec), len(frames))
	}
	for i := range dec {
		psnr := img.PSNR(frames[i], dec[i])
		if psnr < 30 {
			t.Fatalf("frame %d PSNR %.1f dB < 30 (QP %d)", i, psnr, p.QP)
		}
	}
}

func TestDecoderMatchesEncoderReconstruction(t *testing.T) {
	// The drift-free contract: the decoder's pictures must be bit-exactly
	// the encoder's reconstructions.
	p := testParams()
	frames := media.Video(5, p.W, p.H, 6)
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	var recs []uint64
	var units [][]byte
	for _, f := range frames {
		payload, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, payload)
		recs = append(recs, enc.Rec().Checksum())
	}
	// Frame the units as EncodeSequence would.
	hw := NewBitWriter()
	hw.WriteUE(uint32(p.MBW()))
	hw.WriteUE(uint32(p.MBH()))
	hw.WriteUE(uint32(p.QP))
	hw.WriteUE(uint32(p.GOP))
	hw.WriteUE(uint32(p.SearchRange))
	hw.WriteBits(0, 1) // deblock off
	hw.WriteUE(uint32(len(units)))
	bs := append([]byte{}, magic...)
	bs = append(bs, hw.Bytes()...)
	for _, u := range units {
		bs = append(bs, 0, 0, 1, byte(len(u)>>16), byte(len(u)>>8), byte(len(u)))
		bs = append(bs, u...)
		h := fnv.New32a()
		h.Write(u)
		s := h.Sum32()
		bs = append(bs, byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	}
	dec, err := Decode(bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if dec[i].Checksum() != recs[i] {
			t.Fatalf("frame %d: decoder output differs from encoder reconstruction", i)
		}
	}
}

func TestPFramesCompress(t *testing.T) {
	p := testParams()
	frames := media.Video(8, p.W, p.H, 7)
	enc, _ := NewEncoder(p)
	var sizes []int
	for _, f := range frames {
		u, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(u))
	}
	// Frames 1..3 are P (GOP=4): P frames of slowly moving content must
	// be much smaller than the I frame.
	if sizes[1] >= sizes[0]/2 || sizes[2] >= sizes[0]/2 {
		t.Fatalf("P frames not compressing: sizes %v", sizes)
	}
}

func TestSkipMBsInStaticRegions(t *testing.T) {
	p := testParams()
	static := media.GrayImage(p.W, p.H, 8)
	enc, _ := NewEncoder(p)
	// Frame 0 (I) codes the content; frame 1 (P) refines frame 0's
	// quantization error; by frame 2 the reconstruction is a fixed point
	// and everything skips.
	for i := 0; i < 2; i++ {
		if _, err := enc.EncodeFrame(static); err != nil {
			t.Fatal(err)
		}
	}
	payload, err := enc.EncodeFrame(static)
	if err != nil {
		t.Fatal(err)
	}
	hdr, br, err := DecodeFrameHeader(payload)
	if err != nil {
		t.Fatal(err)
	}
	fd := NewFrameData(p)
	if err := EntropyDecodeFrame(p, br, hdr, fd); err != nil {
		t.Fatal(err)
	}
	skips := 0
	for i := range fd.MBs {
		if fd.MBs[i].Mode == ModeSkip {
			skips++
		}
	}
	if skips < len(fd.MBs)*9/10 {
		t.Fatalf("identical frame: only %d/%d MBs skipped", skips, len(fd.MBs))
	}
}

func TestRowReconstructionMatchesFrame(t *testing.T) {
	bs, _, p := testStream(t, 3)
	_, nframes, off, err := ParseStreamHeader(bs)
	if err != nil || nframes != 3 {
		t.Fatal(err)
	}
	sr := NewStreamReader(bs, off)
	prevA, curA := img.NewGray(p.W, p.H), img.NewGray(p.W, p.H)
	prevB, curB := img.NewGray(p.W, p.H), img.NewGray(p.W, p.H)
	fd := NewFrameData(p)
	for {
		payload, ok, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		hdr, br, _ := DecodeFrameHeader(payload)
		if err := EntropyDecodeFrame(p, br, hdr, fd); err != nil {
			t.Fatal(err)
		}
		prevA, curA = curA, prevA
		prevB, curB = curB, prevB
		ReconstructFrame(p, curA, prevA, fd)
		for row := 0; row < p.MBH(); row++ {
			ReconstructRow(p, curB, prevB, fd, row)
		}
		if curA.Checksum() != curB.Checksum() {
			t.Fatalf("frame %d: row-wise reconstruction differs", hdr.Num)
		}
	}
}

func TestStreamReaderDetectsCorruption(t *testing.T) {
	bs, _, _ := testStream(t, 2)
	_, _, off, err := ParseStreamHeader(bs)
	if err != nil {
		t.Fatal(err)
	}
	bs[off+20] ^= 0xff // flip a payload byte
	sr := NewStreamReader(bs, off)
	for {
		_, ok, err := sr.Next()
		if err != nil {
			return // checksum caught it
		}
		if !ok {
			t.Fatal("corruption not detected")
		}
	}
}

func TestReordererDeliversInOrder(t *testing.T) {
	r := NewReorderer()
	pics := []*Picture{{Num: 0}, {Num: 1}, {Num: 2}, {Num: 3}}
	if out := r.Push(pics[2]); len(out) != 0 {
		t.Fatal("frame 2 must wait")
	}
	if out := r.Push(pics[0]); len(out) != 1 || out[0].Num != 0 {
		t.Fatal("frame 0 should deliver immediately")
	}
	if out := r.Push(pics[3]); len(out) != 0 {
		t.Fatal("frame 3 must wait for 1")
	}
	if out := r.Push(pics[1]); len(out) != 3 {
		t.Fatalf("frames 1,2,3 should flush, got %d", len(out))
	}
	for i, pic := range r.Out {
		if pic.Num != i {
			t.Fatalf("out[%d].Num = %d", i, pic.Num)
		}
	}
}

func TestRefRowsNeeded(t *testing.T) {
	p := testParams()
	if got := RefRowsNeeded(p, 0); got != MBSize+p.SearchRange {
		t.Fatalf("row 0 needs %d", got)
	}
	if got := RefRowsNeeded(p, p.MBH()-1); got != p.H {
		t.Fatalf("last row needs %d, want clamp to %d", got, p.H)
	}
}

func TestParseStreamHeaderRejectsGarbage(t *testing.T) {
	if _, _, _, err := ParseStreamHeader([]byte("NOPE-----")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, _, err := ParseStreamHeader([]byte{}); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{W: 17, H: 32, QP: 20, GOP: 1},
		{W: 32, H: 32, QP: 99, GOP: 1},
		{W: 32, H: 32, QP: 20, GOP: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	if (Params{W: 32, H: 32, QP: 20, GOP: 3}).Validate() != nil {
		t.Fatal("valid params rejected")
	}
}

func TestDecodeDeterministic(t *testing.T) {
	bs, _, _ := testStream(t, 4)
	a, err := Decode(bs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Checksum() != b[i].Checksum() {
			t.Fatal("decode must be deterministic")
		}
	}
}
