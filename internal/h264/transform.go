package h264

// The H.264 4×4 integer transform pair (the real AVC core transform, without
// the norm-correction folding into quantization — we use an explicit
// post-scale instead, which keeps the pair exactly invertible in integer
// arithmetic for our quantizer).

// fwd4x4 applies the forward transform Cf·X·Cfᵀ to a 4×4 residual block.
func fwd4x4(b *[16]int32) {
	// Rows.
	for i := 0; i < 4; i++ {
		r := b[4*i : 4*i+4]
		s0 := r[0] + r[3]
		s1 := r[1] + r[2]
		s2 := r[1] - r[2]
		s3 := r[0] - r[3]
		r[0] = s0 + s1
		r[1] = 2*s3 + s2
		r[2] = s0 - s1
		r[3] = s3 - 2*s2
	}
	// Columns.
	for j := 0; j < 4; j++ {
		c0, c1, c2, c3 := b[j], b[4+j], b[8+j], b[12+j]
		s0 := c0 + c3
		s1 := c1 + c2
		s2 := c1 - c2
		s3 := c0 - c3
		b[j] = s0 + s1
		b[4+j] = 2*s3 + s2
		b[8+j] = s0 - s1
		b[12+j] = s3 - 2*s2
	}
}

// inv4x4 applies the inverse transform Ciᵀ·X·Ci with the standard >>6 final
// scaling (the forward/inverse pair gains 64× total).
func inv4x4(b *[16]int32) {
	// Rows.
	for i := 0; i < 4; i++ {
		r := b[4*i : 4*i+4]
		s0 := r[0] + r[2]
		s1 := r[0] - r[2]
		s2 := r[1]>>1 - r[3]
		s3 := r[1] + r[3]>>1
		r[0] = s0 + s3
		r[1] = s1 + s2
		r[2] = s1 - s2
		r[3] = s0 - s3
	}
	// Columns.
	for j := 0; j < 4; j++ {
		c0, c1, c2, c3 := b[j], b[4+j], b[8+j], b[12+j]
		s0 := c0 + c2
		s1 := c0 - c2
		s2 := c1>>1 - c3
		s3 := c1 + c3>>1
		b[j] = (s0 + s3 + 32) >> 6
		b[4+j] = (s1 + s2 + 32) >> 6
		b[8+j] = (s1 - s2 + 32) >> 6
		b[12+j] = (s0 - s3 + 32) >> 6
	}
}

// AVC quantization. The 4×4 integer transform is not orthonormal (row norms
// differ by position), so the standard folds position-dependent scaling into
// the quantizer: the MF multipliers on the forward path and the V rescaling
// values on the inverse path, indexed by QP%6 and the position class
// (a: both coords even, b: both odd, c: mixed). These are the real H.264
// tables.
var mfTab = [6][3]int32{
	{13107, 5243, 8066},
	{11916, 4660, 7490},
	{10082, 4194, 6554},
	{9362, 3647, 5825},
	{8192, 3355, 5243},
	{7282, 2893, 4559},
}

var vTab = [6][3]int32{
	{10, 16, 13},
	{11, 18, 14},
	{13, 20, 16},
	{14, 23, 18},
	{16, 25, 20},
	{18, 29, 23},
}

func posClass(i int) int {
	r, c := i/4, i%4
	switch {
	case r%2 == 0 && c%2 == 0:
		return 0
	case r%2 == 1 && c%2 == 1:
		return 1
	default:
		return 2
	}
}

// quantize maps transform coefficients to levels (AVC forward quantizer).
func quantize(b *[16]int32, qp int) {
	qbits := uint(15 + qp/6)
	f := int32(1) << qbits / 3
	mf := &mfTab[qp%6]
	for i := range b {
		v := b[i]
		neg := v < 0
		if neg {
			v = -v
		}
		v = (v*mf[posClass(i)] + f) >> qbits
		if neg {
			v = -v
		}
		b[i] = v
	}
}

// dequantize maps levels back to scaled coefficients (AVC inverse
// quantizer); inv4x4's >>6 completes the scaling.
func dequantize(b *[16]int32, qp int) {
	v := &vTab[qp%6]
	shift := uint(qp / 6)
	for i := range b {
		b[i] = b[i] * v[posClass(i)] << shift
	}
}

// zigzag4 is the 4×4 zigzag scan order.
var zigzag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}
