package h264

import (
	"testing"

	"ompssgo/internal/img"
	"ompssgo/internal/media"
)

func deblockParams() Params {
	p := testParams()
	p.Deblock = true
	return p
}

func TestDeblockFlagRoundtripsInHeader(t *testing.T) {
	p := deblockParams()
	frames := media.Video(2, p.W, p.H, 9)
	bs, err := EncodeSequence(p, frames)
	if err != nil {
		t.Fatal(err)
	}
	got, nf, _, err := ParseStreamHeader(bs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Deblock || nf != 2 {
		t.Fatalf("parsed %+v, nframes %d", got, nf)
	}
}

func TestDeblockDecodeDriftFree(t *testing.T) {
	// The decoder must still reproduce the encoder's reconstruction
	// bit-exactly with the in-loop filter enabled (both run the same
	// shared reconstruction path).
	p := deblockParams()
	frames := media.Video(5, p.W, p.H, 10)
	bs, err := EncodeSequence(p, frames)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 5 {
		t.Fatalf("decoded %d frames", len(dec))
	}
	a, errA := Decode(bs)
	if errA != nil {
		t.Fatal(errA)
	}
	for i := range dec {
		if dec[i].Checksum() != a[i].Checksum() {
			t.Fatal("deblocked decode not deterministic")
		}
	}
}

func TestDeblockChangesOutput(t *testing.T) {
	off := testParams()
	on := deblockParams()
	frames := media.Video(3, off.W, off.H, 11)
	bsOff, err := EncodeSequence(off, frames)
	if err != nil {
		t.Fatal(err)
	}
	bsOn, err := EncodeSequence(on, frames)
	if err != nil {
		t.Fatal(err)
	}
	decOff, err := Decode(bsOff)
	if err != nil {
		t.Fatal(err)
	}
	decOn, err := Decode(bsOn)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range decOff {
		if decOff[i].Checksum() == decOn[i].Checksum() {
			same++
		}
	}
	if same == len(decOff) {
		t.Fatal("deblocking had no effect on any frame")
	}
	// Quality must stay in the same band (the weak filter must not wreck
	// reconstruction).
	for i := range decOn {
		offPSNR := img.PSNR(frames[i], decOff[i])
		onPSNR := img.PSNR(frames[i], decOn[i])
		if onPSNR < offPSNR-2 {
			t.Fatalf("frame %d: deblock dropped PSNR %.1f -> %.1f", i, offPSNR, onPSNR)
		}
	}
}

func TestDeblockSmoothsSyntheticEdge(t *testing.T) {
	// A small artificial step across a sub-block boundary is reduced; a
	// large (real) edge is untouched.
	rec := img.NewGray(MBSize, MBSize)
	for y := 0; y < MBSize; y++ {
		for x := 0; x < MBSize; x++ {
			v := uint8(100)
			if x >= 4 {
				v = 104 // small blocking step at the x=4 edge
			}
			if x >= 8 {
				v = 200 // large real edge at x=8
			}
			rec.Set(x, y, v)
		}
	}
	deblockMB(rec, 0, 0, 26)
	if rec.At(3, 8) == 100 && rec.At(4, 8) == 104 {
		t.Fatal("small step not smoothed")
	}
	if rec.At(7, 8) != 104 && rec.At(7, 8) != 105 && rec.At(7, 8) != 103 {
		// p0 of the large edge may shift only via the x=4 filter range.
		t.Logf("x=7 value: %d", rec.At(7, 8))
	}
	if rec.At(8, 8) != 200 {
		t.Fatal("large real edge must not be filtered")
	}
}
