package h264

import "ompssgo/internal/img"

// Intra prediction operates on the *reconstructed* neighbours (left column,
// top row), which is what creates the macroblock wavefront dependence
// structure the h264dec benchmark parallelizes over.

// predictIntra fills pred (16×16, row-major) for the MB at (mbx, mby) of
// rec, using the given mode. Out-of-frame neighbours use the 128 midpoint,
// as AVC does for unavailable samples.
func predictIntra(pred *[MBSize * MBSize]uint8, rec *img.Gray, mbx, mby int, mode uint8) {
	x0, y0 := mbx*MBSize, mby*MBSize
	var top, left [MBSize]int
	haveTop, haveLeft := mby > 0, mbx > 0
	for i := 0; i < MBSize; i++ {
		if haveTop {
			top[i] = int(rec.At(x0+i, y0-1))
		} else {
			top[i] = 128
		}
		if haveLeft {
			left[i] = int(rec.At(x0-1, y0+i))
		} else {
			left[i] = 128
		}
	}
	switch mode {
	case ModeIntraDC:
		sum, n := 0, 0
		if haveTop {
			for _, v := range top {
				sum += v
			}
			n += MBSize
		}
		if haveLeft {
			for _, v := range left {
				sum += v
			}
			n += MBSize
		}
		dc := 128
		if n > 0 {
			dc = (sum + n/2) / n
		}
		for i := range pred {
			pred[i] = uint8(dc)
		}
	case ModeIntraH:
		for y := 0; y < MBSize; y++ {
			v := uint8(left[y])
			for x := 0; x < MBSize; x++ {
				pred[y*MBSize+x] = v
			}
		}
	case ModeIntraV:
		for x := 0; x < MBSize; x++ {
			v := uint8(top[x])
			for y := 0; y < MBSize; y++ {
				pred[y*MBSize+x] = v
			}
		}
	}
}

// predictInter fills pred with the full-pel motion-compensated block from
// ref at (mbx*16+mvx, mby*16+mvy), clamping to the frame borders.
func predictInter(pred *[MBSize * MBSize]uint8, ref *img.Gray, mbx, mby int, mvx, mvy int) {
	x0, y0 := mbx*MBSize+mvx, mby*MBSize+mvy
	for y := 0; y < MBSize; y++ {
		sy := clampInt(y0+y, 0, ref.H-1)
		for x := 0; x < MBSize; x++ {
			sx := clampInt(x0+x, 0, ref.W-1)
			pred[y*MBSize+x] = ref.At(sx, sy)
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// reconstructMB rebuilds one macroblock into rec: prediction (intra from
// rec's own neighbours, inter from ref) plus the dequantized inverse-
// transformed residual.
func reconstructMB(p Params, rec, ref *img.Gray, fd *FrameData, mbx, mby int) {
	mb := &fd.MBs[mby*p.MBW()+mbx]
	var pred [MBSize * MBSize]uint8
	switch mb.Mode {
	case ModeInter, ModeSkip:
		predictInter(&pred, ref, mbx, mby, int(mb.MVX), int(mb.MVY))
	default:
		predictIntra(&pred, rec, mbx, mby, mb.Mode)
	}
	x0, y0 := mbx*MBSize, mby*MBSize
	if mb.Mode == ModeSkip {
		for y := 0; y < MBSize; y++ {
			copy(rec.Row(y0 + y)[x0:x0+MBSize], pred[y*MBSize:(y+1)*MBSize])
		}
		return
	}
	qp := fd.Hdr.QP
	for blk := 0; blk < 16; blk++ {
		var c [16]int32
		c = mb.Coef[blk]
		dequantize(&c, qp)
		inv4x4(&c)
		bx, by := (blk%4)*4, (blk/4)*4
		for y := 0; y < 4; y++ {
			row := rec.Row(y0 + by + y)
			for x := 0; x < 4; x++ {
				pi := (by+y)*MBSize + bx + x
				v := int32(pred[pi]) + c[y*4+x]
				row[x0+bx+x] = clamp8i(v)
			}
		}
	}
	if p.Deblock {
		deblockMB(rec, x0, y0, qp)
	}
}

// deblockMB smooths the internal 4×4 sub-block edges of the macroblock at
// (x0, y0): a weak H.264-style filter that corrects the boundary pair when
// the step across the edge is small (blocking artifact) but leaves real
// edges alone.
func deblockMB(rec *img.Gray, x0, y0, qp int) {
	alpha := int32(6 + qp)  // edge-step activation threshold
	beta := int32(2 + qp/2) // side-flatness threshold
	c := int32(2 + qp/12)   // correction clip
	// Vertical edges at x0+4, +8, +12: filter horizontally.
	for _, ex := range [3]int{4, 8, 12} {
		for y := 0; y < MBSize; y++ {
			row := rec.Row(y0 + y)
			filterPair(row, x0+ex, 1, alpha, beta, c)
		}
	}
	// Horizontal edges at y0+4, +8, +12: filter vertically.
	for _, ey := range [3]int{4, 8, 12} {
		for x := 0; x < MBSize; x++ {
			col := rec.Pix[(y0+ey-2)*rec.W+x0+x:]
			filterPairStride(col, 2*rec.W, rec.W, alpha, beta, c)
		}
	}
}

// filterPair adjusts samples p0=buf[i-1], q0=buf[i] (with neighbours p1, q1
// at stride s) using the weak deblocking rule.
func filterPair(buf []uint8, i, s int, alpha, beta, c int32) {
	p1, p0 := int32(buf[i-2*s]), int32(buf[i-s])
	q0, q1 := int32(buf[i]), int32(buf[i+s])
	if abs32(p0-q0) >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
		return
	}
	delta := clip32((((q0-p0)<<2)+(p1-q1)+4)>>3, -c, c)
	buf[i-s] = clamp8i(p0 + delta)
	buf[i] = clamp8i(q0 - delta)
}

// filterPairStride is filterPair for a column slice starting at p1, with
// the edge between offsets `pos` and `pos+stride`.
func filterPairStride(col []uint8, pos, stride int, alpha, beta, c int32) {
	p1, p0 := int32(col[0]), int32(col[stride])
	q0, q1 := int32(col[pos]), int32(col[pos+stride])
	if abs32(p0-q0) >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
		return
	}
	delta := clip32((((q0-p0)<<2)+(p1-q1)+4)>>3, -c, c)
	col[stride] = clamp8i(p0 + delta)
	col[pos] = clamp8i(q0 - delta)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func clip32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp8i(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
