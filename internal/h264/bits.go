// Package h264 implements a complete toy block video codec with the
// structure of an H.264/AVC decoder — the substrate behind the paper's §3
// case study (Listing 1) and the h264dec benchmark.
//
// The codec is not bit-compatible with AVC, but reproduces the properties
// the evaluation depends on:
//
//   - a 5-stage decode pipeline: read (bitstream splitting), parse (headers,
//     Picture Info Buffer allocation), entropy decode (serial per frame),
//     macroblock reconstruction (intra left/top wavefront dependences, motion
//     compensation from reference pictures in the Decoded Picture Buffer),
//     and output (reordering);
//   - real H.264 building blocks: Exp-Golomb entropy coding, the 4×4
//     integer transform, DC/H/V intra prediction, full-pel motion
//     estimation/compensation, P-skip macroblocks;
//   - PIB/DPB pools recycled under explicit locking, with buffer
//     availability hidden from dependence analysis (the paper's "hidden
//     dependencies behind criticals" observation).
//
// An encoder is included to synthesize bitstreams from the deterministic
// internal/media video generator.
package h264

import "fmt"

// BitWriter writes MSB-first bits.
type BitWriter struct {
	buf []byte
	bit uint8 // bits used in the last byte (0..7)
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b int) {
	if w.bit == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.bit)
	}
	w.bit = (w.bit + 1) & 7
}

// WriteBits appends the low n bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// WriteUE appends v in unsigned Exp-Golomb code (as in H.264 ue(v)).
func (w *BitWriter) WriteUE(v uint32) {
	x := v + 1
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, n+1)
}

// WriteSE appends v in signed Exp-Golomb code (se(v)).
func (w *BitWriter) WriteSE(v int32) {
	if v <= 0 {
		w.WriteUE(uint32(-2 * v))
	} else {
		w.WriteUE(uint32(2*v - 1))
	}
}

// Bytes returns the written bytes (final partial byte zero-padded).
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader reads MSB-first bits.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader reads from buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (int, error) {
	if r.pos >= 8*len(r.buf) {
		return 0, fmt.Errorf("h264: bitstream underrun at bit %d", r.pos)
	}
	b := int(r.buf[r.pos>>3]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return b, nil
}

// ReadBits consumes n bits, MSB first.
func (r *BitReader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// ReadUE consumes an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() (uint32, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 31 {
			return 0, fmt.Errorf("h264: invalid exp-golomb code")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) + rest - 1, nil
}

// ReadSE consumes a signed Exp-Golomb code.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 0 {
		return -int32(u / 2), nil
	}
	return int32(u+1) / 2, nil
}

// BitPos returns the current read position in bits (for tests).
func (r *BitReader) BitPos() int { return r.pos }
