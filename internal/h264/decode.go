package h264

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"ompssgo/internal/img"
)

// The decoder is exposed as the five pipeline stages of the paper's §3 case
// study, so the benchmark variants can arrange them as tasks (OmpSs), as
// pipeline threads with wavefront line decoding (Pthreads), or as a plain
// loop (sequential reference):
//
//	read      — StreamReader.Next: start-code scan, split, checksum
//	parse     — DecodeFrameHeader (and PIB allocation, done by the caller)
//	entropy   — EntropyDecodeFrame into a FrameData buffer
//	recon     — ReconstructRow/ReconstructFrame (DPB pictures)
//	output    — Reorderer: frame-number ordered delivery

// ParseStreamHeader reads the sequence header, returning the coded
// parameters, the frame count, and the offset where frame units begin.
func ParseStreamHeader(bs []byte) (Params, int, int, error) {
	if len(bs) < 5 || !bytes.Equal(bs[:4], magic) {
		return Params{}, 0, 0, fmt.Errorf("h264: bad magic")
	}
	br := NewBitReader(bs[4:])
	vals := make([]uint32, 5)
	for i := range vals {
		v, err := br.ReadUE()
		if err != nil {
			return Params{}, 0, 0, fmt.Errorf("h264: truncated stream header: %w", err)
		}
		vals[i] = v
	}
	deblock, err := br.ReadBits(1)
	if err != nil {
		return Params{}, 0, 0, fmt.Errorf("h264: truncated stream header: %w", err)
	}
	nf, err := br.ReadUE()
	if err != nil {
		return Params{}, 0, 0, fmt.Errorf("h264: truncated stream header: %w", err)
	}
	p := Params{
		W: int(vals[0]) * MBSize, H: int(vals[1]) * MBSize,
		QP: int(vals[2]), GOP: int(vals[3]), SearchRange: int(vals[4]),
		Deblock: deblock == 1,
	}
	if err := p.Validate(); err != nil {
		return Params{}, 0, 0, err
	}
	off := 4 + (br.BitPos()+7)/8
	return p, int(nf), off, nil
}

// StreamReader is the read stage: it scans for start codes, splits out frame
// payloads, and verifies their checksums.
type StreamReader struct {
	buf []byte
	pos int
}

// NewStreamReader starts reading frame units at off (from
// ParseStreamHeader).
func NewStreamReader(bs []byte, off int) *StreamReader {
	return &StreamReader{buf: bs, pos: off}
}

// Next returns the next frame payload, or ok=false at end of stream.
func (r *StreamReader) Next() (payload []byte, ok bool, err error) {
	if r.pos >= len(r.buf) {
		return nil, false, nil
	}
	b := r.buf
	p := r.pos
	if p+startCodeLen+3 > len(b) || b[p] != 0 || b[p+1] != 0 || b[p+2] != 1 {
		return nil, false, fmt.Errorf("h264: missing start code at %d", p)
	}
	p += startCodeLen
	n := int(b[p])<<16 | int(b[p+1])<<8 | int(b[p+2])
	p += 3
	if p+n+4 > len(b) {
		return nil, false, fmt.Errorf("h264: truncated frame unit at %d", p)
	}
	payload = b[p : p+n]
	p += n
	want := uint32(b[p])<<24 | uint32(b[p+1])<<16 | uint32(b[p+2])<<8 | uint32(b[p+3])
	h := fnv.New32a()
	h.Write(payload)
	if h.Sum32() != want {
		return nil, false, fmt.Errorf("h264: frame checksum mismatch at %d", r.pos)
	}
	r.pos = p + 4
	return payload, true, nil
}

// DecodeFrameHeader is the parse stage: it reads the frame header and
// returns a BitReader positioned at the macroblock data.
func DecodeFrameHeader(payload []byte) (Header, *BitReader, error) {
	br := NewBitReader(payload)
	num, err := br.ReadUE()
	if err != nil {
		return Header{}, nil, err
	}
	ft, err := br.ReadBits(1)
	if err != nil {
		return Header{}, nil, err
	}
	qp, err := br.ReadUE()
	if err != nil {
		return Header{}, nil, err
	}
	if qp > 51 {
		return Header{}, nil, fmt.Errorf("h264: QP %d out of range", qp)
	}
	return Header{Num: int(num), Type: int(ft), QP: int(qp)}, br, nil
}

// EntropyDecodeFrame is the ED stage: it decodes every macroblock's syntax
// elements into fd. Serial within a frame (the bitstream is sequential),
// parallel across frames.
func EntropyDecodeFrame(p Params, br *BitReader, hdr Header, fd *FrameData) error {
	fd.Hdr = hdr
	for i := range fd.MBs {
		if err := readMB(br, &fd.MBs[i], hdr.Type); err != nil {
			return fmt.Errorf("h264: MB %d: %w", i, err)
		}
	}
	return nil
}

func readMB(br *BitReader, mb *MB, ftype int) error {
	*mb = MB{}
	if ftype == FrameP {
		code, err := br.ReadUE()
		if err != nil {
			return err
		}
		switch {
		case code == 0:
			mb.Mode = ModeSkip
		case code == 1:
			mb.Mode = ModeInter
		case code <= 4:
			mb.Mode = uint8(code - 2)
		default:
			return fmt.Errorf("bad P mode code %d", code)
		}
		if mb.Mode == ModeSkip || mb.Mode == ModeInter {
			x, err := br.ReadSE()
			if err != nil {
				return err
			}
			y, err := br.ReadSE()
			if err != nil {
				return err
			}
			mb.MVX, mb.MVY = int8(x), int8(y)
		}
	} else {
		code, err := br.ReadUE()
		if err != nil {
			return err
		}
		if code > 2 {
			return fmt.Errorf("bad I mode code %d", code)
		}
		mb.Mode = uint8(code)
	}
	if mb.Mode == ModeSkip {
		return nil
	}
	for blk := 0; blk < 16; blk++ {
		if err := readCoefBlock(br, &mb.Coef[blk]); err != nil {
			return err
		}
	}
	return nil
}

func readCoefBlock(br *BitReader, c *[16]int32) error {
	nnz, err := br.ReadUE()
	if err != nil {
		return err
	}
	if nnz > 16 {
		return fmt.Errorf("bad coefficient count %d", nnz)
	}
	zi := 0
	for k := uint32(0); k < nnz; k++ {
		run, err := br.ReadUE()
		if err != nil {
			return err
		}
		level, err := br.ReadSE()
		if err != nil {
			return err
		}
		zi += int(run)
		if zi >= 16 {
			return fmt.Errorf("coefficient run overflow")
		}
		c[zigzag4[zi]] = level
		zi++
	}
	return nil
}

// ReconstructRow is the reconstruction stage's parallel work unit: it
// rebuilds one macroblock row. Correctness requires that row mbRow−1 of
// this frame is complete (intra top dependence) and, for P frames, that the
// reference picture rows up to RefRowsNeeded(mbRow) are complete (motion
// compensation) — the wavefront contract the benchmark variants enforce
// with their own synchronization.
func ReconstructRow(p Params, rec, ref *img.Gray, fd *FrameData, mbRow int) {
	for mbx := 0; mbx < p.MBW(); mbx++ {
		reconstructMB(p, rec, ref, fd, mbx, mbRow)
	}
}

// ReconstructRows rebuilds macroblock rows [r0, r1) — the row-group task
// granularity of the OmpSs variant.
func ReconstructRows(p Params, rec, ref *img.Gray, fd *FrameData, r0, r1 int) {
	for r := r0; r < r1 && r < p.MBH(); r++ {
		ReconstructRow(p, rec, ref, fd, r)
	}
}

// ReconstructMBAt rebuilds a single macroblock — the wavefront granularity
// of the line-decoding Pthreads variant. The caller must have completed the
// left and top neighbours (intra) and the needed reference rows (inter).
func ReconstructMBAt(p Params, rec, ref *img.Gray, fd *FrameData, mbx, mby int) {
	reconstructMB(p, rec, ref, fd, mbx, mby)
}

// ReconstructFrame rebuilds a whole frame (the coarse-grain task variant).
func ReconstructFrame(p Params, rec, ref *img.Gray, fd *FrameData) {
	for mbRow := 0; mbRow < p.MBH(); mbRow++ {
		ReconstructRow(p, rec, ref, fd, mbRow)
	}
}

// RefRowsNeeded returns how many pixel rows of the reference picture must
// be reconstructed before this frame's mbRow can be motion-compensated
// (MV range is ±SearchRange full pel).
func RefRowsNeeded(p Params, mbRow int) int {
	rows := (mbRow+1)*MBSize + p.SearchRange
	if rows > p.H {
		rows = p.H
	}
	return rows
}

// Reorderer is the output stage: it delivers pictures in frame-number order
// regardless of completion order.
type Reorderer struct {
	next int
	held map[int]*Picture
	Out  []*Picture // delivered, in order
}

// NewReorderer creates an output reorder buffer starting at frame 0.
func NewReorderer() *Reorderer { return &Reorderer{held: make(map[int]*Picture)} }

// Push hands a reconstructed picture to the output stage; any newly
// contiguous prefix is delivered. Returns the pictures delivered by this
// push (their output references remain held by the caller to release).
func (r *Reorderer) Push(pic *Picture) []*Picture {
	r.held[pic.Num] = pic
	var out []*Picture
	for {
		p, ok := r.held[r.next]
		if !ok {
			break
		}
		delete(r.held, r.next)
		r.next++
		out = append(out, p)
		r.Out = append(r.Out, p)
	}
	return out
}

// Decode is the sequential reference decoder: it runs the five stages in a
// plain loop and returns the decoded frames in display order.
func Decode(bs []byte) ([]*img.Gray, error) {
	p, nframes, off, err := ParseStreamHeader(bs)
	if err != nil {
		return nil, err
	}
	sr := NewStreamReader(bs, off)
	var out []*img.Gray
	prev := img.NewGray(p.W, p.H)
	cur := img.NewGray(p.W, p.H)
	fd := NewFrameData(p)
	for i := 0; i < nframes; i++ {
		payload, ok, err := sr.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("h264: stream ended at frame %d/%d", i, nframes)
		}
		hdr, br, err := DecodeFrameHeader(payload)
		if err != nil {
			return nil, err
		}
		if err := EntropyDecodeFrame(p, br, hdr, fd); err != nil {
			return nil, err
		}
		prev, cur = cur, prev
		ReconstructFrame(p, cur, prev, fd)
		out = append(out, cur.Clone())
	}
	return out, nil
}
