package h264

import (
	"fmt"
	"time"

	"ompssgo/internal/img"
)

// MBSize is the macroblock edge length in pixels.
const MBSize = 16

// Macroblock modes.
const (
	ModeIntraDC = iota // predict from mean of top row + left column
	ModeIntraH         // predict rows from the left column
	ModeIntraV         // predict columns from the top row
	ModeInter          // full-pel motion compensation + residual
	ModeSkip           // motion compensation, zero residual
)

// Params describes a coded sequence.
type Params struct {
	W, H int // frame dimensions (multiples of 16)
	QP   int // quantization parameter (0..51)
	GOP  int // I-frame interval (1 = all-intra)
	// SearchRange is the ± full-pel motion search window.
	SearchRange int
	// Deblock enables the in-loop deblocking filter at 4×4 sub-block
	// boundaries inside each macroblock. Intra-MB only, so the decoder's
	// wavefront dependence structure is unchanged. The flag is coded in
	// the stream header; encoder and decoder apply the identical filter,
	// keeping reconstruction drift-free.
	Deblock bool
}

// MBW returns macroblock columns.
func (p Params) MBW() int { return p.W / MBSize }

// MBH returns macroblock rows.
func (p Params) MBH() int { return p.H / MBSize }

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.W%MBSize != 0 || p.H%MBSize != 0 || p.W <= 0 || p.H <= 0 {
		return fmt.Errorf("h264: dimensions %dx%d not multiples of %d", p.W, p.H, MBSize)
	}
	if p.QP < 0 || p.QP > 51 {
		return fmt.Errorf("h264: QP %d out of range", p.QP)
	}
	if p.GOP < 1 {
		return fmt.Errorf("h264: GOP %d < 1", p.GOP)
	}
	return nil
}

// Frame types.
const (
	FrameI = 0
	FrameP = 1
)

// Header is a decoded frame header (the parse stage's product).
type Header struct {
	Num  int // decode-order frame number
	Type int // FrameI or FrameP
	QP   int
}

// MB is the entropy-decode product for one macroblock: everything
// reconstruction needs.
type MB struct {
	Mode     uint8
	MVX, MVY int8
	// Coef holds the 16 4×4 blocks of quantized levels in raster order
	// within the MB.
	Coef [16][16]int32
}

// FrameData is the entropy decoder's per-frame output buffer (the paper's
// H264Mb ed_bufs entries).
type FrameData struct {
	Hdr Header
	MBs []MB // MBW*MBH, raster order
}

// NewFrameData allocates an entropy-decode buffer for the sequence.
func NewFrameData(p Params) *FrameData {
	return &FrameData{MBs: make([]MB, p.MBW()*p.MBH())}
}

// PicInfo is a Picture Info Buffer entry: frame metadata flowing down the
// pipeline (the paper's parse-stage product).
type PicInfo struct {
	Hdr   Header
	InUse bool
}

// PIB is the Picture Info Buffer: a fixed pool of PicInfo entries. Fetch and
// Release are NOT internally synchronized — callers wrap them in an omp
// critical / pthread mutex, exactly as the paper describes (the availability
// of entries cannot be expressed as task dependences, so the benchmark hides
// it from the dependence system and guards it with criticals).
type PIB struct {
	entries []PicInfo
}

// NewPIB creates a pool with n entries.
func NewPIB(n int) *PIB { return &PIB{entries: make([]PicInfo, n)} }

// Fetch claims a free entry, or returns nil when the pool is exhausted.
func (p *PIB) Fetch() *PicInfo {
	for i := range p.entries {
		if !p.entries[i].InUse {
			p.entries[i].InUse = true
			return &p.entries[i]
		}
	}
	return nil
}

// Release returns an entry to the pool.
func (p *PIB) Release(pi *PicInfo) { pi.InUse = false }

// Free counts available entries (tests).
func (p *PIB) Free() int {
	n := 0
	for i := range p.entries {
		if !p.entries[i].InUse {
			n++
		}
	}
	return n
}

// Picture is a Decoded Picture Buffer entry: a reconstructed frame plus a
// reference count (held while the picture is awaiting output and while it
// serves as a motion-compensation reference).
type Picture struct {
	Num  int
	Img  *img.Gray
	refs int
}

// DPB is the Decoded Picture Buffer: a pool of pictures. Like PIB, callers
// must wrap Fetch/Release in a critical section.
type DPB struct {
	pool []*Picture
}

// NewDPB creates a pool of n pictures sized for the sequence.
func NewDPB(n int, p Params) *DPB {
	d := &DPB{}
	for i := 0; i < n; i++ {
		d.pool = append(d.pool, &Picture{Img: img.NewGray(p.W, p.H)})
	}
	return d
}

// Fetch claims a free picture with an initial reference count, or nil when
// the pool is exhausted.
func (d *DPB) Fetch(num, refs int) *Picture {
	for _, pic := range d.pool {
		if pic.refs == 0 {
			pic.Num = num
			pic.refs = refs
			return pic
		}
	}
	return nil
}

// Release drops one reference.
func (d *DPB) Release(pic *Picture) {
	if pic.refs <= 0 {
		panic("h264: DPB release without reference")
	}
	pic.refs--
}

// Retain adds one reference.
func (d *DPB) Retain(pic *Picture) { pic.refs++ }

// Free counts available pictures (tests).
func (d *DPB) Free() int {
	n := 0
	for _, pic := range d.pool {
		if pic.refs == 0 {
			n++
		}
	}
	return n
}

// Simulated stage cost model (per DESIGN.md/EXPERIMENTS.md calibration;
// magnitudes follow the stage breakdown of optimized software decoders).

// ReadFrameCost models bitstream splitting (streaming + checksum).
func ReadFrameCost(bytes int) time.Duration {
	return time.Duration(float64(bytes)*0.6) * time.Nanosecond
}

// ParseCost models frame-header parsing and PIB bookkeeping.
func ParseCost() time.Duration { return 3 * time.Microsecond }

// EDMBCost models entropy-decoding one macroblock (serial within a frame).
// Entropy decode is ≈10% of decode time for fast CAVLC paths.
func EDMBCost() time.Duration { return time.Microsecond }

// ReconMBCost models reconstructing one macroblock (prediction + inverse
// transform + store) — the dominant, parallelizable stage.
func ReconMBCost() time.Duration { return 9 * time.Microsecond }

// OutputFrameCost models reordering plus frame delivery.
func OutputFrameCost(pixels int) time.Duration {
	return time.Duration(float64(pixels)*0.25) * time.Nanosecond
}
