package core

import (
	"sync"
	"sync/atomic"
)

// SchedStats counts scheduler activity.
type SchedStats struct {
	LocalPops  uint64
	GlobalPops uint64
	Steals     uint64
	StealTries uint64
}

// Sched is the ready-task scheduler: one Chase–Lev work-stealing deque per
// worker plus a lock-free global FIFO spawn queue, with random-victim work
// stealing.
//
// Policy knobs reproduce the mechanisms the paper's §4 analysis credits:
//
//   - Locality: a successor released by a finishing task is pushed to the
//     bottom of the finisher's own deque, so producer→consumer chains run
//     back-to-back on one core (the ray-rot cache-locality effect). With
//     Locality off, released tasks go to the global queue.
//   - Freshly submitted tasks go to the global FIFO (breadth-first spawn,
//     the Nanos++ default), keeping pipeline stages flowing in order.
//
// Concurrency model: every path is safe from any goroutine. Deque owner
// operations are guarded by a per-lane TryLock (uncontended in the normal
// one-thread-per-lane case; aliased lanes spill to the global queue instead
// of blocking); steals and global-queue operations are lock-free; the rare
// Priority>0 submissions go through a small mutex-ordered side queue. The
// simulator drives the same scheduler from its serialized event loop, where
// all the atomics are uncontended and behavior is deterministic per seed.
type Sched struct {
	workers  int
	locality bool
	lanes    []laneState // len workers+1: the extra lane absorbs stats/rng for out-of-range callers

	global mpmcQueue

	prioMu sync.Mutex
	prio   []*Task // Priority>0 submissions, priority-ordered, FIFO within a level
	prioN  atomic.Int64
}

// laneState is one worker's deque plus its private counters, padded so that
// per-lane hot counters never share a cache line across lanes.
type laneState struct {
	deque wsDeque
	owner sync.Mutex // serializes deque owner ops; TryLock only, never blocks

	rng atomic.Uint64 // xorshift64* state; racy updates only cost randomness

	localPops  atomic.Uint64
	globalPops atomic.Uint64
	steals     atomic.Uint64
	stealTries atomic.Uint64

	_ [64]byte
}

// nextRand steps the lane's xorshift64* state. Lost updates under lane
// aliasing are harmless (victim choice only needs to be well spread).
func (l *laneState) nextRand() uint64 {
	x := l.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.rng.Store(x)
	return x * 0x2545f4914f6cdd1d
}

// NewSched creates a scheduler with one deque per worker (callers may index
// workers 0..workers-1; by convention the main program uses the last index).
func NewSched(workers int, locality bool, seed int64) *Sched {
	s := &Sched{
		workers:  workers,
		locality: locality,
		lanes:    make([]laneState, workers+1),
	}
	s.global.init()
	for i := range s.lanes {
		s.lanes[i].deque.init()
		r := mix64(uint64(seed) ^ mix64(uint64(i)+1))
		if r == 0 {
			r = 0x9e3779b97f4a7c15
		}
		s.lanes[i].rng.Store(r)
	}
	return s
}

// lane returns the stats/rng lane for a caller, mapping out-of-range worker
// indices to the shared overflow slot.
func (s *Sched) lane(worker int) *laneState {
	if worker >= 0 && worker < s.workers {
		return &s.lanes[worker]
	}
	return &s.lanes[s.workers]
}

// Stats returns a snapshot of the scheduler counters.
func (s *Sched) Stats() SchedStats {
	var st SchedStats
	for i := range s.lanes {
		l := &s.lanes[i]
		st.LocalPops += l.localPops.Load()
		st.GlobalPops += l.globalPops.Load()
		st.Steals += l.steals.Load()
		st.StealTries += l.stealTries.Load()
	}
	return st
}

// Ready returns the number of queued ready tasks: exact when the scheduler
// is quiescent or serialized (the simulator), a close racy estimate under
// native concurrency — callers only gate idle waiting on it and re-check.
func (s *Sched) Ready() int {
	n := int(s.prioN.Load()) + s.global.length()
	for i := 0; i < s.workers; i++ {
		n += s.lanes[i].deque.size()
	}
	if n < 0 {
		return 0
	}
	return n
}

// Workers returns the number of deques.
func (s *Sched) Workers() int { return s.workers }

// PushSubmit enqueues a task that was ready at submission. Priority tasks
// jump the global FIFO.
func (s *Sched) PushSubmit(t *Task) {
	if t.Priority > 0 {
		s.prioMu.Lock()
		// Keep the side queue priority-ordered: insert after the last
		// task with priority >= t's (stable within a priority level).
		i := 0
		for i < len(s.prio) && s.prio[i].Priority >= t.Priority {
			i++
		}
		s.prio = append(s.prio, nil)
		copy(s.prio[i+1:], s.prio[i:])
		s.prio[i] = t
		s.prioN.Add(1)
		s.prioMu.Unlock()
		return
	}
	s.global.enqueue(t)
}

// PushReady enqueues a task released by a finishing task on `worker`. Under
// the locality policy it lands on that worker's deque bottom so it is the
// next task popped there.
func (s *Sched) PushReady(t *Task, worker int) {
	if !s.locality || worker < 0 || worker >= s.workers {
		s.PushSubmit(t)
		return
	}
	l := &s.lanes[worker]
	if !l.owner.TryLock() {
		// Another goroutine is aliasing this lane right now; spill to the
		// global queue rather than block or corrupt the deque.
		s.PushSubmit(t)
		return
	}
	l.deque.pushBottom(t)
	l.owner.Unlock()
}

// Pop returns the next task for `worker`: its own deque bottom (LIFO), then
// the priority side queue, then the global FIFO, then a steal from a random
// victim's deque top. Returns nil when no work is visible anywhere.
func (s *Sched) Pop(worker int) *Task {
	ln := s.lane(worker)
	if worker >= 0 && worker < s.workers {
		l := &s.lanes[worker]
		if l.owner.TryLock() {
			t := l.deque.popBottom()
			l.owner.Unlock()
			if t != nil {
				ln.localPops.Add(1)
				return t
			}
		}
	}
	if s.prioN.Load() > 0 {
		var t *Task
		s.prioMu.Lock()
		if len(s.prio) > 0 {
			t = s.prio[0]
			s.prio = s.prio[1:]
			s.prioN.Add(-1)
		}
		s.prioMu.Unlock()
		if t != nil {
			ln.globalPops.Add(1)
			return t
		}
	}
	if t := s.global.dequeue(); t != nil {
		ln.globalPops.Add(1)
		return t
	}
	// Steal: probe every other worker once, starting from a random victim.
	if s.workers > 1 {
		start := int(ln.nextRand() % uint64(s.workers))
		for i := 0; i < s.workers; i++ {
			v := (start + i) % s.workers
			if v == worker {
				continue
			}
			ln.stealTries.Add(1)
			t, retry := s.lanes[v].deque.steal()
			for retry {
				t, retry = s.lanes[v].deque.steal()
			}
			if t != nil {
				ln.steals.Add(1)
				return t
			}
		}
	}
	return nil
}
