package core

import (
	"sync"
	"sync/atomic"
)

// SchedStats counts scheduler activity.
type SchedStats struct {
	LocalPops    uint64 // own-deque pops (locality chains)
	PrioPops     uint64 // own high-priority lane pops
	AffinityPops uint64 // own-mailbox pops (affinity-homed tasks)
	GlobalPops   uint64 // global FIFO + priority side-queue pops
	Steals       uint64 // successful steals, any distance
	DomainSteals uint64 // steals from a same-domain victim
	StealTries   uint64 // victim probes (successful or not)
}

// Sched is the ready-task scheduler: per worker, a Chase–Lev work-stealing
// deque, a high-priority LIFO lane, and an affinity mailbox; globally, a
// lock-free FIFO spawn queue plus a priority-ordered side queue. Placement
// and victim selection are decided by the shared Policy (policy.go), so the
// native executor and the simulator exercise identical scheduling code.
//
// Dispatch order for a worker (Pop):
//
//  1. own high-priority lane (LIFO — priority successors released here)
//  2. own deque bottom (LIFO — locality chains)
//  3. priority-ordered global side queue (priority submissions)
//  4. own mailbox (FIFO — affinity-hinted tasks homed on this lane)
//  5. global FIFO (breadth-first spawn order, the Nanos++ default)
//  6. steal, probing victims in the Policy's domain order; per victim the
//     priority lane is tried first, then the mailbox, then the deque top.
//
// Concurrency model: every path is safe from any goroutine. Deque owner
// operations are guarded by a per-lane TryLock (uncontended in the normal
// one-thread-per-lane case; aliased lanes spill to the global queue instead
// of blocking); steals, mailbox and global-queue operations are lock-free;
// the rare Priority>0 submissions go through a small mutex-ordered side
// queue. The simulator drives the same scheduler from its serialized event
// loop, where all the atomics are uncontended and behavior is deterministic
// per seed.
type Sched struct {
	workers int
	pol     Policy
	probe   Probe       // observability hook (SetProbe); nil when detached
	tun     *Tunables   // controller setpoints (SetTunables); nil when static
	lanes   []laneState // len workers+1: the extra lane absorbs stats/rng for out-of-range callers

	global mpmcQueue

	prioMu sync.Mutex
	prio   []*Task // Priority>0 submissions, priority-ordered, FIFO within a level
	prioN  atomic.Int64
}

// laneState is one worker's queues plus its private counters, padded so that
// per-lane hot counters never share a cache line across lanes.
type laneState struct {
	deque    wsDeque    // locality chains: owner LIFO, stolen from the top
	prioLane wsDeque    // high-priority successors: owner LIFO, stealable
	mailbox  mpmcQueue  // affinity-homed submissions: FIFO, drainable by thieves
	owner    sync.Mutex // serializes owner ops on both deques; TryLock only, never blocks

	rng atomic.Uint64 // xorshift64* state; racy updates only cost randomness

	localPops    atomic.Uint64
	prioPops     atomic.Uint64
	affinityPops atomic.Uint64
	globalPops   atomic.Uint64
	steals       atomic.Uint64
	domainSteals atomic.Uint64
	stealTries   atomic.Uint64

	_ [64]byte
}

// nextRand steps the lane's xorshift64* state. Lost updates under lane
// aliasing are harmless (victim choice only needs to be well spread).
func (l *laneState) nextRand() uint64 {
	x := l.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.rng.Store(x)
	return x * 0x2545f4914f6cdd1d
}

// NewSched creates a scheduler with one lane per worker (callers may index
// workers 0..workers-1; by convention the main program uses the last index)
// governed by the given placement/stealing policy.
func NewSched(workers int, pol Policy, seed int64) *Sched {
	s := &Sched{
		workers: workers,
		pol:     pol,
		lanes:   make([]laneState, workers+1),
	}
	s.global.init()
	for i := range s.lanes {
		s.lanes[i].deque.init()
		s.lanes[i].prioLane.init()
		s.lanes[i].mailbox.init()
		r := mix64(uint64(seed) ^ mix64(uint64(i)+1))
		if r == 0 {
			r = 0x9e3779b97f4a7c15
		}
		s.lanes[i].rng.Store(r)
	}
	return s
}

// Policy returns the scheduler's placement/stealing policy.
func (s *Sched) Policy() Policy { return s.pol }

// lane returns the stats/rng lane for a caller, mapping out-of-range worker
// indices to the shared overflow slot.
func (s *Sched) lane(worker int) *laneState {
	if worker >= 0 && worker < s.workers {
		return &s.lanes[worker]
	}
	return &s.lanes[s.workers]
}

// Stats returns a snapshot of the scheduler counters.
func (s *Sched) Stats() SchedStats {
	var st SchedStats
	for i := range s.lanes {
		l := &s.lanes[i]
		st.LocalPops += l.localPops.Load()
		st.PrioPops += l.prioPops.Load()
		st.AffinityPops += l.affinityPops.Load()
		st.GlobalPops += l.globalPops.Load()
		st.Steals += l.steals.Load()
		st.DomainSteals += l.domainSteals.Load()
		st.StealTries += l.stealTries.Load()
	}
	return st
}

// Ready returns the number of queued ready tasks: exact when the scheduler
// is quiescent or serialized (the simulator), a close racy estimate under
// native concurrency — callers only gate idle waiting on it and re-check.
func (s *Sched) Ready() int {
	n := int(s.prioN.Load()) + s.global.length()
	for i := 0; i < s.workers; i++ {
		n += s.lanes[i].deque.size() + s.lanes[i].prioLane.size() + s.lanes[i].mailbox.length()
	}
	if n < 0 {
		return 0
	}
	return n
}

// Workers returns the number of lanes.
func (s *Sched) Workers() int { return s.workers }

// PushSubmit enqueues a task that was ready at submission. Priority tasks
// jump to the priority-ordered side queue; affinity-hinted tasks are mailed
// to their home lane (when the policy honors hints); everything else joins
// the global FIFO in breadth-first spawn order.
func (s *Sched) PushSubmit(t *Task) {
	if t.Priority > 0 {
		s.pushPrioGlobal(t)
		return
	}
	if shard, ok := t.AffinityShard(); ok && s.pol.Affinity && s.workers > 0 {
		s.lanes[s.pol.HomeLane(shard, s.workers)].mailbox.enqueue(t)
		return
	}
	s.global.enqueue(t)
}

// PushSubmitBatch enqueues a slice of submission-ready tasks, splitting off
// priority and affinity placements and appending the FIFO remainder to the
// global queue as one linked chain (a single tail CAS for the whole batch).
func (s *Sched) PushSubmitBatch(ts []*Task) {
	var fifo []*Task
	for _, t := range ts {
		if t.Priority > 0 {
			s.pushPrioGlobal(t)
			continue
		}
		if shard, ok := t.AffinityShard(); ok && s.pol.Affinity && s.workers > 0 {
			s.lanes[s.pol.HomeLane(shard, s.workers)].mailbox.enqueue(t)
			continue
		}
		fifo = append(fifo, t)
	}
	s.global.enqueueBatch(fifo)
}

// pushPrioGlobal inserts t into the priority-ordered side queue, stable
// within a priority level.
func (s *Sched) pushPrioGlobal(t *Task) {
	s.prioMu.Lock()
	i := 0
	for i < len(s.prio) && s.prio[i].Priority >= t.Priority {
		i++
	}
	s.prio = append(s.prio, nil)
	copy(s.prio[i+1:], s.prio[i:])
	s.prio[i] = t
	s.prioN.Add(1)
	s.prioMu.Unlock()
}

// PushReady enqueues a task released by a finishing task on `worker`.
// Priority successors land on that worker's high-priority lane; under the
// locality policy, ordinary successors land on its deque bottom so they are
// the next task popped there; affinity hints on released tasks re-route to
// the home mailbox when locality is off.
func (s *Sched) PushReady(t *Task, worker int) {
	if worker < 0 || worker >= s.workers {
		s.PushSubmit(t)
		return
	}
	l := &s.lanes[worker]
	if t.Priority > 0 {
		if l.owner.TryLock() {
			l.prioLane.pushBottom(t)
			l.owner.Unlock()
			return
		}
		s.pushPrioGlobal(t)
		return
	}
	if !s.pol.Locality {
		s.PushSubmit(t)
		return
	}
	if !l.owner.TryLock() {
		// Another goroutine is aliasing this lane right now; spill to the
		// global queue rather than block or corrupt the deque.
		s.PushSubmit(t)
		return
	}
	l.deque.pushBottom(t)
	l.owner.Unlock()
}

// Pop returns the next task for `worker` following the dispatch order in the
// type comment. Returns nil when no work is visible anywhere.
func (s *Sched) Pop(worker int) *Task {
	ln := s.lane(worker)
	if worker >= 0 && worker < s.workers {
		l := &s.lanes[worker]
		if l.owner.TryLock() {
			t := l.prioLane.popBottom()
			if t == nil {
				t = l.deque.popBottom()
				if t != nil {
					ln.localPops.Add(1)
				}
			} else {
				ln.prioPops.Add(1)
			}
			l.owner.Unlock()
			if t != nil {
				return t
			}
		}
	}
	if s.prioN.Load() > 0 {
		var t *Task
		s.prioMu.Lock()
		if len(s.prio) > 0 {
			t = s.prio[0]
			s.prio = s.prio[1:]
			s.prioN.Add(-1)
		}
		s.prioMu.Unlock()
		if t != nil {
			ln.globalPops.Add(1)
			return t
		}
	}
	if worker >= 0 && worker < s.workers {
		if t := s.lanes[worker].mailbox.dequeue(); t != nil {
			ln.affinityPops.Add(1)
			return t
		}
	}
	if t := s.global.dequeue(); t != nil {
		ln.globalPops.Add(1)
		return t
	}
	// Steal: probe every other worker once, in the policy's domain order
	// (same-domain victims first), iterated arithmetically so the idle spin
	// path allocates nothing at any worker count. Per victim: priority
	// lane, mailbox, deque.
	if s.workers > 0 {
		rnd := ln.nextRand()
		// Out-of-range callers (overflow lane) have no home domain: their
		// steals are never counted as domain-local.
		inRange := worker >= 0 && worker < s.workers
		homeDomain := s.pol.DomainOf(worker, s.workers)
		for i := 0; ; i++ {
			v := s.pol.Victim(i, worker, s.workers, rnd)
			if v < 0 {
				break
			}
			ln.stealTries.Add(1)
			if t := s.stealFrom(v); t != nil {
				ln.steals.Add(1)
				if inRange && s.pol.DomainOf(v, s.workers) == homeDomain {
					ln.domainSteals.Add(1)
				}
				if s.probe != nil {
					s.probe.StealEvent(worker, v, t.ID)
				}
				return t
			}
		}
	}
	return nil
}

// stealFrom takes one task from victim lane v: its priority lane first, then
// its mailbox, then the top (oldest task) of its deque.
func (s *Sched) stealFrom(v int) *Task {
	l := &s.lanes[v]
	t, retry := l.prioLane.steal()
	for retry {
		t, retry = l.prioLane.steal()
	}
	if t != nil {
		return t
	}
	if t := l.mailbox.dequeue(); t != nil {
		return t
	}
	t, retry = l.deque.steal()
	for retry {
		t, retry = l.deque.steal()
	}
	return t
}
