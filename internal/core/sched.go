package core

import "math/rand"

// SchedStats counts scheduler activity.
type SchedStats struct {
	LocalPops  uint64
	GlobalPops uint64
	Steals     uint64
	StealTries uint64
}

// Sched is the ready-task scheduler: one LIFO deque per worker plus a global
// FIFO spawn queue, with random-victim work stealing.
//
// Policy knobs reproduce the mechanisms the paper's §4 analysis credits:
//
//   - Locality: a successor released by a finishing task is pushed to the
//     head of the finisher's own deque, so producer→consumer chains run
//     back-to-back on one core (the ray-rot cache-locality effect). With
//     Locality off, released tasks go to the global queue.
//   - Freshly submitted tasks go to the global FIFO (breadth-first spawn,
//     the Nanos++ default), keeping pipeline stages flowing in order.
//
// Like Graph, Sched performs no locking; the executor serializes access.
type Sched struct {
	workers  int
	locality bool
	local    [][]*Task
	global   []*Task
	rng      *rand.Rand
	stats    SchedStats
	ready    int // total queued tasks
}

// NewSched creates a scheduler with one deque per worker (callers may index
// workers 0..workers-1; by convention the main program uses the last index).
func NewSched(workers int, locality bool, seed int64) *Sched {
	return &Sched{
		workers:  workers,
		locality: locality,
		local:    make([][]*Task, workers),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Stats returns a copy of the scheduler counters.
func (s *Sched) Stats() SchedStats { return s.stats }

// Ready returns the number of queued ready tasks.
func (s *Sched) Ready() int { return s.ready }

// Workers returns the number of deques.
func (s *Sched) Workers() int { return s.workers }

// PushSubmit enqueues a task that was ready at submission. Priority tasks
// jump the global FIFO.
func (s *Sched) PushSubmit(t *Task) {
	s.ready++
	if t.Priority > 0 {
		// Keep the global queue priority-ordered: insert after the last
		// task with priority >= t's (stable within a priority level).
		i := 0
		for i < len(s.global) && s.global[i].Priority >= t.Priority {
			i++
		}
		s.global = append(s.global, nil)
		copy(s.global[i+1:], s.global[i:])
		s.global[i] = t
		return
	}
	s.global = append(s.global, t)
}

// PushReady enqueues a task released by a finishing task on `worker`. Under
// the locality policy it lands on that worker's deque head so it is the next
// task popped there.
func (s *Sched) PushReady(t *Task, worker int) {
	if !s.locality || worker < 0 || worker >= s.workers {
		s.PushSubmit(t)
		return
	}
	s.ready++
	s.local[worker] = append([]*Task{t}, s.local[worker]...)
}

// Pop returns the next task for `worker`: its own deque head (LIFO), then
// the global FIFO, then a steal from a random victim's deque tail. Returns
// nil when no work is available anywhere.
func (s *Sched) Pop(worker int) *Task {
	if worker >= 0 && worker < s.workers && len(s.local[worker]) > 0 {
		t := s.local[worker][0]
		s.local[worker] = s.local[worker][1:]
		s.ready--
		s.stats.LocalPops++
		return t
	}
	if len(s.global) > 0 {
		t := s.global[0]
		s.global = s.global[1:]
		s.ready--
		s.stats.GlobalPops++
		return t
	}
	// Steal: probe every other worker once, starting from a random victim.
	if s.workers > 1 {
		start := s.rng.Intn(s.workers)
		for i := 0; i < s.workers; i++ {
			v := (start + i) % s.workers
			if v == worker {
				continue
			}
			s.stats.StealTries++
			if n := len(s.local[v]); n > 0 {
				t := s.local[v][n-1] // steal coldest (tail)
				s.local[v] = s.local[v][:n-1]
				s.ready--
				s.stats.Steals++
				return t
			}
		}
	}
	return nil
}
