package core

import "sync/atomic"

// Tunables is the engine's online setpoint block — the mutable counterpart
// of Probe. Where Probe carries engine events out to an observer, Tunables
// carries an observer's (feedback controller's) decisions back in. Every
// field is an atomic read on its consuming hot path and an atomic store on
// the controller's tick path, so neither direction takes a lock: the same
// discipline the observability record path follows.
//
// A nil Tunables (the default — SetTunables never called) costs one
// predictable branch per consuming site; every field's zero value means
// "use the engine's static default".
type Tunables struct {
	// GrainTargetNS is the per-chunk execution-time window the TaskLoop
	// auto-chunker aims for: chunk sizes are chosen so one chunk's body
	// runs for about this long (0 = the controller's default).
	GrainTargetNS atomic.Int64
	// SpinYields is the number of Gosched yields a polling idle thread
	// burns before it starts sleeping (0 = executor default). Raised when
	// steals mostly succeed (work is nearby), lowered when the steal
	// matrix reports mostly failed probes (oversubscription).
	SpinYields atomic.Int32
	// SleepCapNS caps the linearly growing idle sleep of a polling thread
	// (0 = executor default). Deepened under sustained steal failure so
	// oversubscribed lanes stop burning the cores doing real work.
	SleepCapNS atomic.Int64
	// RenameCap overrides the graph-wide live-renamed-instance cap per
	// datum (0 = keep the configured cap). Raised online under sustained
	// rename fallbacks, decayed back toward the configured cap when the
	// fallback counter goes quiet. An explicit per-domain (session)
	// RenameCap still wins over this value.
	RenameCap atomic.Int32
}

// SetTunables installs the scheduler's setpoint block. Call before the
// scheduler is driven (the executor does this at construction); the
// controller then updates fields while the scheduler runs.
func (s *Sched) SetTunables(tn *Tunables) { s.tun = tn }

// Tunables returns the scheduler's setpoint block (nil when none was
// installed). Executors read idle-throttle setpoints through it.
func (s *Sched) Tunables() *Tunables { return s.tun }

// SetTunables installs the dependence tracker's setpoint block. Call before
// the first submission; the rename cap check reads it under the shard lock.
func (g *Graph) SetTunables(tn *Tunables) { g.tun = tn }

// Tunables returns the graph's setpoint block (nil when none was installed).
func (g *Graph) Tunables() *Tunables { return g.tun }
