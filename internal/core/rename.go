package core

// Dependence renaming (data versioning), the StarSs/OmpSs mechanism that
// removes false dependences: a writer blocked only by WAR/WAW edges gets a
// fresh private instance of the datum instead of stalling — pending readers
// keep the old instance, the writer proceeds immediately on the new one,
// and the latest instance is copied back to the datum's canonical storage
// once every in-flight accessor has drained.
//
// The runtime cannot redirect the memory a task body captures, so renaming
// is opt-in per datum: EnableRenaming supplies the canonical payload, an
// allocator for fresh instances, and a payload copier, and bodies resolve
// the instance bound to their access through Datum.PayloadFor (surfaced as
// TC.Data in the public API). Accesses to a datum that never enabled
// renaming are untouched — zero cost on that path.
//
// All chain state is guarded by the owning dependence shard's mutex:
// version binding happens inside Submit's wiring step (shard already
// locked), and release happens at Finish, which takes the shard lock per
// binding — never while holding a task's succ lock, so the shard → task
// lock order of Submit is preserved. Both backends drive this same code,
// so native and simulated runs observe identical rename decisions for
// identical submission interleavings.

// version is one instance of a renameable datum: a payload plus the
// dependence record of the tasks accessing exactly this instance. refs
// counts submitted-but-unfinished accessors; the lists hold the same tasks
// (they are never pruned before the version drains, and addPred skips
// finished entries).
type version struct {
	payload any
	// vid is the chain-unique version number of the instance's current
	// content (1 = the canonical instance's initial value). A renamed
	// instance keeps one vid for its lifetime; the canonical instance's vid
	// advances on every in-place write and on writeback (it adopts the vid
	// of the instance copied onto it), so equal (datum, vid) pairs always
	// name bit-identical content — the invariant the distributed backend's
	// per-worker version caches key on.
	vid         uint64
	lastWriter  *Task
	readers     []*Task
	commuters   []*Task
	concurrents []*Task
	refs        int32
	// poisoned records that the version's program-order last writer
	// finished with an error (including skip-release): its payload is
	// undefined and must never be written back to canonical storage.
	poisoned bool
}

// anyUnfinished reports whether any accessor of the version other than
// `self` is still in flight — the "would this access stall?" probe behind
// the rename decision (a task never stalls on its own earlier access, so
// self is excluded, matching addPred's self-skip).
func (v *version) anyUnfinished(self *Task) bool {
	if w := v.lastWriter; w != nil && w != self && !w.Finished() {
		return true
	}
	return anyUnfinishedIn(v.readers, self) || anyUnfinishedIn(v.commuters, self) ||
		anyUnfinishedIn(v.concurrents, self)
}

func (v *version) anyUnfinishedReader(self *Task) bool { return anyUnfinishedIn(v.readers, self) }

func anyUnfinishedIn(ts []*Task, self *Task) bool {
	for _, t := range ts {
		if t != self && !t.Finished() {
			return true
		}
	}
	return false
}

// addAccessors feeds every accessor of the version to addPred — the
// conservative "order after everything live on this instance" edge set used
// when a non-chain access overlaps a renamed region, or when a write falls
// back to canonical under the in-flight cap.
func (v *version) addAccessors(addPred func(*Task)) {
	addPred(v.lastWriter)
	for _, t := range v.readers {
		addPred(t)
	}
	for _, t := range v.commuters {
		addPred(t)
	}
	for _, t := range v.concurrents {
		addPred(t)
	}
}

// verChain is the per-datum version chain: the canonical instance (the
// user's own storage, version 0) plus the renamed instances currently in
// flight. Guarded by the owning shard's mutex.
type verChain struct {
	shard     uint32
	canonical *version
	cur       *version   // instance new accesses bind to (== canonical when no rename is live)
	renamed   []*version // live renamed instances, creation order (cur is the last)
	alloc     func() any
	copyFn    func(dst, src any)
	pool      []any  // reclaimed payloads, reused before calling alloc
	nextVID   uint64 // next version number to assign (see version.vid)
	noRename  bool   // Datum.NoRename, or a region chain sealed by mixed-discipline access
}

// newVersion takes a payload from the pool (or allocates one) and appends a
// fresh live version. Pooled payloads carry stale bytes; that is sound
// because an Out writer overwrites the instance by contract and an InOut
// writer's copy-in overwrites it with its predecessor's value first.
func (ch *verChain) newVersion() *version {
	var p any
	if n := len(ch.pool); n > 0 {
		p = ch.pool[n-1]
		ch.pool[n-1] = nil
		ch.pool = ch.pool[:n-1]
	} else {
		p = ch.alloc()
	}
	v := &version{payload: p, vid: ch.nextVID}
	ch.nextVID++
	ch.renamed = append(ch.renamed, v)
	return v
}

// verBinding records that one task access observes (read) and/or produces
// (write) a specific instance of a chained datum. Bindings are appended at
// wiring time under the shard lock and released by Finish. needCopy marks a
// renamed InOut: the previous instance's value is copied into the new one
// lazily, on the body's first PayloadFor call (copied is touched only by
// the running body's goroutine).
type verBinding struct {
	chain    *verChain
	read     *version
	write    *version
	needCopy bool
	copied   bool
	// readVID/writeVID are the version numbers the access observes and
	// produces, captured at wiring time (never re-read from the live
	// version structs: an in-place write bumps the canonical vid at ITS
	// wiring, which must not relabel an earlier reader's bound content).
	// readVID is 0 for a pure Out; for an in-place InOut it names the
	// predecessor content in the same payload (read stays nil there).
	readVID  uint64
	writeVID uint64
}

// Renaming configures dependence renaming on a graph. Set once, before any
// submission (both backends do this at construction).
type Renaming struct {
	Enabled bool
	// MaxVersions bounds the live renamed instances per datum; a write that
	// would exceed it stalls on its WAR/WAW edges instead (counted as a
	// rename fallback). <= 0 selects DefaultMaxVersions.
	MaxVersions int
}

// DefaultMaxVersions is the default per-datum in-flight renamed-instance
// cap: enough to keep several rounds of a reader/writer pipeline in flight,
// small enough that a runaway submitter cannot hold unbounded payload
// copies live.
const DefaultMaxVersions = 8

// ConfigureRenaming installs the graph's renaming policy. Call before any
// task is submitted.
func (g *Graph) ConfigureRenaming(r Renaming) {
	if r.MaxVersions <= 0 {
		r.MaxVersions = DefaultMaxVersions
	}
	g.renameOn = r.Enabled
	g.renameCap = r.MaxVersions
}

// RenamingEnabled reports whether the graph breaks WAR/WAW edges on
// renameable datums.
func (g *Graph) RenamingEnabled() bool { return g.renameOn }

// EnableRenaming makes the handle's datum renameable: canonical is the
// instance behind the registered key (nil defaults to the key itself, the
// usual pointer-keyed case), alloc produces a fresh private instance, and
// cp copies one instance's value onto another (used for InOut copy-in and
// for the final writeback onto canonical). Task bodies must then access the
// datum through its bound instance (Datum.PayloadFor / TC.Data); renaming
// never fires for datums that skip this call. For region handles the chain
// is granular to the handle's exact span (a tile): renaming stays active
// only while every access overlapping the span uses that span — an
// overlapping raw-key or foreign-span access seals the chain and the
// tracker falls back to ordinary conservative edges.
func (d *Datum) EnableRenaming(canonical any, alloc func() any, cp func(dst, src any)) *Datum {
	if canonical == nil {
		canonical = d.Key
	}
	g := d.owner
	sh := &g.shards[d.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if d.chain != nil { // idempotent
		return d
	}
	// Another handle over the same record (or the same region span) may
	// have chained it already — adopt that chain, so all handles of one
	// datum agree on the instance set.
	if d.rd != nil {
		if sc := d.rd.chainAt(d.region.Lo, d.region.Hi); sc != nil {
			d.chain = sc.ch
			return d
		}
	} else if d.rec.chain != nil {
		d.chain = d.rec.chain
		return d
	}
	// A NoRename issued before any chain existed is recorded on the
	// record/region itself, so the opt-out survives no matter which handle
	// later enables renaming.
	earlyOptOut := d.rec != nil && d.rec.noRename ||
		d.rd != nil && d.rd.spanNoRename(d.region.Lo, d.region.Hi)
	ch := &verChain{shard: d.shard, alloc: alloc, copyFn: cp, nextVID: 2, noRename: earlyOptOut}
	ch.canonical = &version{payload: canonical, vid: 1}
	ch.cur = ch.canonical
	if d.rd != nil {
		// A chain overlapping an existing chain's span can never rename
		// soundly (the two would bypass each other's segment records), so
		// overlap seals both.
		for _, sc := range d.rd.chains {
			if sc.lo < d.region.Hi && d.region.Lo < sc.hi {
				sc.ch.noRename = true
				ch.noRename = true
			}
		}
		d.rd.chains = append(d.rd.chains, &spanChain{lo: d.region.Lo, hi: d.region.Hi, ch: ch})
	} else {
		// Adopt the record's existing accessors as the canonical instance's:
		// from here on the chain's current version carries the lists.
		ch.canonical.lastWriter = d.rec.lastWriter
		ch.canonical.readers = d.rec.readers
		ch.canonical.commuters = d.rec.commuters
		ch.canonical.concurrents = d.rec.concurrents
		d.rec.lastWriter = nil
		d.rec.readers = nil
		d.rec.commuters = nil
		d.rec.concurrents = nil
		d.rec.chain = ch
	}
	d.chain = ch
	return d
}

// NoRename opts the datum out of renaming (a chain keeps tracking
// accessors so PayloadFor still resolves, but writes always stall on their
// WAR/WAW edges and write the current instance in place). Idempotent; safe
// before or after EnableRenaming, from any handle of the datum — the
// opt-out sticks to the record (or the region span), not to the handle.
func (d *Datum) NoRename() *Datum {
	g := d.owner
	sh := &g.shards[d.shard]
	sh.mu.Lock()
	ch := d.chain
	if ch == nil {
		if d.rd != nil {
			if sc := d.rd.chainAt(d.region.Lo, d.region.Hi); sc != nil {
				ch = sc.ch
			}
		} else if d.rec.chain != nil {
			ch = d.rec.chain
		}
	}
	if ch != nil {
		ch.noRename = true
	} else if d.rd != nil {
		d.rd.noRenameSpans = append(d.rd.noRenameSpans, [2]int64{d.region.Lo, d.region.Hi})
	} else {
		d.rec.noRename = true
	}
	sh.mu.Unlock()
	return d
}

// Renameable reports whether the datum currently has an active (enabled,
// unsealed) version chain.
func (d *Datum) Renameable() bool {
	sh := &d.owner.shards[d.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return d.chain != nil && !d.chain.noRename
}

// PayloadFor resolves the instance of this datum that task t is bound to:
// the version its access was wired against (its private output instance
// for a renamed write — copied from the predecessor instance first for
// InOut), or the chain's canonical payload when t is nil (master thread) or
// carries no binding. For a datum without a chain it returns the key
// itself, so pointer-keyed code degrades to the raw pointer. Call from the
// bound task's own body only (the InOut copy-in is not synchronized against
// other callers).
func (d *Datum) PayloadFor(t *Task) any {
	ch := d.chain
	if ch == nil {
		return d.Key
	}
	if t != nil {
		var read *version
		for i := range t.bindings {
			b := &t.bindings[i]
			if b.chain != ch {
				continue
			}
			if b.write != nil {
				if b.needCopy && !b.copied {
					ch.copyFn(b.write.payload, b.read.payload)
					b.copied = true
				}
				return b.write.payload
			}
			if read == nil {
				read = b.read
			}
		}
		if read != nil {
			return read.payload
		}
	}
	return ch.canonical.payload
}

// shouldRename decides, under the shard lock, whether a write-mode access
// to a chained datum gets a fresh instance: only when the write would
// otherwise stall on a WAR/WAW edge (an unfinished reader for InOut — its
// RAW on the last writer is true and stays either way — or any unfinished
// accessor for Out), renaming is on, the chain is active, and the in-flight
// cap has room. The fallback path is always sound: the write joins the
// current instance with ordinary conservative edges.
func (g *Graph) shouldRename(ch *verChain, t *Task, mode Mode) bool {
	// The graph-wide policy, adapted online by the feedback controller when
	// one is installed, unless the task's domain overrides it (sessions may
	// force renaming on or off, and tighten or widen the version cap,
	// independently of the runtime default — an explicit session cap also
	// wins over the controller's).
	on, capN := g.renameOn, g.renameCap
	if tn := g.tun; tn != nil {
		if c := tn.RenameCap.Load(); c > 0 {
			capN = int(c)
		}
	}
	if d := t.Domain; d != nil {
		if d.Rename != RenameInherit {
			on = d.Rename == RenameForceOn
		}
		if d.RenameCap > 0 {
			capN = d.RenameCap
		}
	}
	if !on || ch.noRename || ch.alloc == nil {
		return false
	}
	var conflict bool
	switch mode {
	case Out:
		conflict = ch.cur.anyUnfinished(t)
	case InOut:
		conflict = ch.cur.anyUnfinishedReader(t)
	}
	if !conflict {
		return false
	}
	if len(ch.renamed) >= capN {
		g.stRenameFallbacks.Add(1)
		t.renameFB = true
		return false
	}
	return true
}

// wireChained wires one access of t against a chained datum's current
// version, renaming write-mode accesses when shouldRename approves. Called
// with the owning shard lock held. Commutative/Concurrent updaters mutate
// the current instance in place and keep their ordinary edge semantics.
func (g *Graph) wireChained(ch *verChain, t *Task, mode Mode, addPred func(*Task)) {
	cur := ch.cur
	switch mode {
	case In:
		addPred(cur.lastWriter)
		for _, c := range cur.commuters {
			addPred(c)
		}
		for _, c := range cur.concurrents {
			addPred(c)
		}
		cur.readers = append(cur.readers, t)
		t.bindRead(ch, cur)
	case Concurrent:
		addPred(cur.lastWriter)
		for _, r := range cur.readers {
			addPred(r)
		}
		for _, c := range cur.commuters {
			addPred(c)
		}
		cur.concurrents = append(cur.concurrents, t)
		t.bindRead(ch, cur)
	case Commutative:
		addPred(cur.lastWriter)
		for _, r := range cur.readers {
			addPred(r)
		}
		for _, c := range cur.concurrents {
			addPred(c)
		}
		cur.commuters = append(cur.commuters, t)
		t.bindRead(ch, cur)
	case Out, InOut:
		if g.shouldRename(ch, t, mode) {
			nv := ch.newVersion()
			if mode == InOut {
				// The RAW on the previous instance's producers is true and
				// stays; only the WAR edges on its readers are broken — they
				// keep reading the old instance while this task writes the
				// new one (seeded by copy-in at first PayloadFor).
				addPred(cur.lastWriter)
				for _, c := range cur.commuters {
					addPred(c)
				}
				for _, c := range cur.concurrents {
					addPred(c)
				}
				nv.readers = append(nv.readers, t)
				t.bindRename(ch, cur, nv, true)
			} else {
				t.bindRename(ch, nil, nv, false)
			}
			nv.lastWriter = t
			ch.cur = nv
			t.renamed = true
			g.stRenamed.Add(1)
			if g.probe != nil {
				g.probe.RenameEvent(t.ID)
			}
			return
		}
		addPred(cur.lastWriter)
		for _, r := range cur.readers {
			addPred(r)
		}
		for _, c := range cur.commuters {
			addPred(c)
		}
		for _, c := range cur.concurrents {
			addPred(c)
		}
		cur.lastWriter = t
		cur.readers = nil
		cur.commuters = nil
		cur.concurrents = nil
		// The in-place write produces new content in the same payload: the
		// instance's version number advances so the new content gets a
		// fresh identity. An InOut still observes the predecessor content,
		// so its binding records the pre-bump vid as what it reads.
		readVID := uint64(0)
		if mode == InOut {
			cur.readers = append(cur.readers, t)
			readVID = cur.vid
		}
		cur.vid = ch.nextVID
		ch.nextVID++
		t.bindWrite(ch, cur, readVID)
	}
}

// releaseBindings drops t's holds on every instance it was bound to,
// recording the writer's outcome, reclaiming drained superseded instances,
// and — when the whole chain has drained with a renamed instance current —
// copying that instance back onto the canonical storage. Called by Finish
// BEFORE successors are released and counters dropped, so a dependent (or a
// taskwaiter) that observes t finished also observes the writeback.
func (g *Graph) releaseBindings(t *Task, err error) {
	for i := range t.bindings {
		b := &t.bindings[i]
		if b.chain == nil {
			continue // released below with an earlier same-chain binding
		}
		sh := &g.shards[b.chain.shard]
		sh.mu.Lock()
		// Release every binding of this chain under one lock acquisition
		// and sweep once (a task normally binds a chain once; a renamed
		// InOut or a duplicate declaration binds it twice).
		for j := i; j < len(t.bindings); j++ {
			bj := &t.bindings[j]
			if bj.chain != b.chain {
				continue
			}
			if bj.write != nil && bj.write.lastWriter == t {
				// Program order's last writer of the instance decides
				// whether its payload is defined. Writers on one instance
				// are mutually ordered (WAW edges are kept within a
				// version), so the last writer finishes last and its
				// verdict sticks.
				bj.write.poisoned = err != nil
			}
			if bj.read != nil {
				bj.read.refs--
			}
			if bj.write != nil && bj.write != bj.read {
				bj.write.refs--
			}
			if j > i {
				bj.chain = nil
			}
		}
		g.sweepChain(b.chain)
		sh.mu.Unlock()
	}
	t.bindings = nil
}

// sweepChain publishes and reclaims the drained prefix of the version
// list. Called with the owning shard lock held.
//
// Writeback is incremental: once the canonical instance and the oldest k
// renamed instances have fully drained, the newest *successfully written*
// instance among those k is copied onto the canonical storage — program
// order's last good value so far — and the whole prefix returns its
// payloads to the pool. Reclaiming only prefixes (never a drained
// instance whose older sibling is still live) is what preserves the last
// successful value when a later writer fails: its poisoned instance is
// skipped and the canonical keeps the newest good predecessor, not the
// pre-chain value. Memory stays bounded by the rename cap either way.
// The canonical-refs guard also makes the copy race-free: nothing bound
// to the canonical instance is still running when it is overwritten.
func (g *Graph) sweepChain(ch *verChain) {
	if ch.canonical.refs != 0 || len(ch.renamed) == 0 {
		return
	}
	n := 0
	for n < len(ch.renamed) && ch.renamed[n].refs == 0 {
		n++
	}
	if n == 0 {
		return
	}
	var best *version
	for _, v := range ch.renamed[:n] {
		if !v.poisoned {
			best = v
		}
	}
	if best != nil {
		ch.copyFn(ch.canonical.payload, best.payload)
		// The canonical content now IS that instance's content: adopting
		// its vid keeps the (datum, vid) → content mapping injective, so a
		// distributed worker that cached the renamed instance's bytes gets
		// a cache hit — not a stale read — when a later reader binds the
		// written-back canonical.
		ch.canonical.vid = best.vid
		g.stWritebacks.Add(1)
		if g.probe != nil {
			var wid uint64
			if best.lastWriter != nil {
				wid = best.lastWriter.ID
			}
			g.probe.WritebackEvent(wid)
		}
	}
	for _, v := range ch.renamed[:n] {
		ch.pool = append(ch.pool, v.payload)
		v.payload = nil
	}
	ch.renamed = append(ch.renamed[:0], ch.renamed[n:]...)
	if len(ch.renamed) == 0 {
		// cur is always the newest instance, so an empty list means it
		// drained too: collapse back onto the canonical instance.
		ch.collapse()
	}
}

// VersionRef names one payload instance of a chained datum: a chain-unique
// version number plus the payload object carrying (or about to carry) that
// version's content. Equal (datum, Ver) pairs always denote bit-identical
// content, which is what makes the ref a sound cache key for a backend
// that migrates payloads out of this address space (internal/dist keys its
// per-worker byte caches on exactly this pair). The zero Ver means "no
// instance" — a pure Out binding observes nothing, a pure In produces
// nothing.
type VersionRef struct {
	Ver     uint64
	Payload any
}

// Valid reports whether the ref names an instance.
func (r VersionRef) Valid() bool { return r.Ver != 0 }

// Binding resolves the datum instances task t was wired against: read is
// what the task observes (its clause-bound input content), write what it
// produces. For an in-place write both refs share one payload — the read
// names the predecessor content that occupies it until the task's output
// lands. Zero refs mean no chain, no binding on this datum, or no access
// of that direction.
//
// Safe without locks once Submit(t) has returned and until t finishes:
// bindings and their captured vids are immutable in that window, and the
// payloads cannot be reclaimed while t holds version refs. Callers that
// import produced content into write.Payload must do so before calling
// Graph.Finish(t, ...) — Finish releases the refs and may immediately
// write the payload back onto canonical storage.
func (d *Datum) Binding(t *Task) (read, write VersionRef) {
	ch := d.chain
	if ch == nil || t == nil {
		return read, write
	}
	for i := range t.bindings {
		b := &t.bindings[i]
		if b.chain != ch {
			continue
		}
		if b.write != nil && !write.Valid() {
			write = VersionRef{Ver: b.writeVID, Payload: b.write.payload}
			if b.readVID != 0 && !read.Valid() {
				p := b.write.payload
				if b.read != nil {
					p = b.read.payload
				}
				read = VersionRef{Ver: b.readVID, Payload: p}
			}
		} else if b.read != nil && !read.Valid() {
			read = VersionRef{Ver: b.readVID, Payload: b.read.payload}
		}
	}
	return read, write
}

// Canonical returns the current canonical instance of a chained datum (the
// zero ref when renaming was never enabled). Call only from outside any
// task — e.g. the master thread after a taskwait — when no writer of the
// datum is in flight; the writeback-on-drain contract then guarantees the
// payload holds the program-order last successful value.
func (d *Datum) Canonical() VersionRef {
	sh := &d.owner.shards[d.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if d.chain == nil {
		return VersionRef{}
	}
	c := d.chain.canonical
	return VersionRef{Ver: c.vid, Payload: c.payload}
}

// collapse resets the chain to its idle state — the canonical instance is
// current and carries no accessor history. Called with the owning shard
// lock held, after (or instead of, see Forget) any writeback.
func (ch *verChain) collapse() {
	ch.canonical.lastWriter = nil
	ch.canonical.readers = nil
	ch.canonical.commuters = nil
	ch.canonical.concurrents = nil
	ch.cur = ch.canonical
	for _, v := range ch.renamed {
		if v.payload != nil {
			ch.pool = append(ch.pool, v.payload)
			v.payload = nil
		}
	}
	ch.renamed = nil
}
