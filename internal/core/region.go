package core

import "sort"

// Region identifies a half-open span [Lo, Hi) of an underlying array (the
// OmpSs array-section dependence, e.g. `input(a[lo:hi])`). Base is the
// array's identity key (typically a pointer to its first element or header);
// Lo/Hi are offsets in any consistent unit (bytes, elements). Two accesses
// conflict when their bases match exactly and their spans overlap.
type Region struct {
	Base   any
	Lo, Hi int64
}

// Len returns the span length.
func (r Region) Len() int64 { return r.Hi - r.Lo }

// segment is one disjoint span of a tracked array with its own dependence
// record. Segments are kept sorted and split on access boundaries, so every
// access operates on exactly-covered segments.
type segment struct {
	lo, hi     int64
	lastWriter *Task
	readers    []*Task
}

// regionDatum tracks all segments of one array base.
type regionDatum struct {
	segs []*segment
	// pinned marks records interned by RegisterRegion (see drec.pinned).
	pinned bool
}

// split ensures segment boundaries exist at lo and hi, creating a fresh
// untracked segment for any uncovered gap inside [lo, hi), and returns the
// segments fully covered by [lo, hi).
func (d *regionDatum) split(lo, hi int64) []*segment {
	// Cut existing segments at lo and hi.
	for _, cut := range []int64{lo, hi} {
		for i, s := range d.segs {
			if s.lo < cut && cut < s.hi {
				right := &segment{lo: cut, hi: s.hi, lastWriter: s.lastWriter,
					readers: append([]*Task(nil), s.readers...)}
				s.hi = cut
				d.segs = append(d.segs, nil)
				copy(d.segs[i+2:], d.segs[i+1:])
				d.segs[i+1] = right
				break
			}
		}
	}
	// Fill gaps inside [lo, hi) with untracked segments.
	var covered []*segment
	cursor := lo
	for _, s := range d.segs {
		if s.hi <= lo || s.lo >= hi {
			continue
		}
		if s.lo > cursor {
			covered = append(covered, &segment{lo: cursor, hi: s.lo})
		}
		covered = append(covered, s)
		cursor = s.hi
	}
	if cursor < hi {
		covered = append(covered, &segment{lo: cursor, hi: hi})
	}
	// Merge any fresh gap segments back into the sorted list.
	d.segs = mergeSegs(d.segs, covered)
	return covered
}

func mergeSegs(all, add []*segment) []*segment {
	seen := make(map[*segment]bool, len(all))
	for _, s := range all {
		seen[s] = true
	}
	for _, s := range add {
		if !seen[s] {
			all = append(all, s)
			seen[s] = true
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lo < all[j].lo })
	return all
}

// regionRec returns (creating if needed) the region record of base. Called
// with the shard lock held.
func (sh *gshard) regionRec(base any) *regionDatum {
	rd := sh.regions[base]
	if rd == nil {
		rd = &regionDatum{}
		if sh.regions == nil {
			sh.regions = make(map[any]*regionDatum)
		}
		sh.regions[base] = rd
	}
	return rd
}

// submit wires dependence edges for one region access of t and updates the
// segment records. Called with the owning shard lock held; the caller
// provides the shared edge-dedup set.
func (rd *regionDatum) submit(t *Task, a Access, r Region, addPred func(*Task)) {
	if r.Hi <= r.Lo {
		return
	}
	covered := rd.split(r.Lo, r.Hi)
	switch a.Mode {
	case In:
		for _, s := range covered {
			addPred(s.lastWriter)
			s.readers = append(s.readers, t)
		}
	case Out, InOut, Commutative, Concurrent:
		// Commutative and Concurrent over a region conservatively
		// serialize like InOut (region-level commutativity/concurrent
		// sets are not supported): updaters must still order against
		// readers and writers, so treating them as writers is the safe
		// over-approximation.
		for _, s := range covered {
			addPred(s.lastWriter)
			for _, rt := range s.readers {
				addPred(rt)
			}
			s.lastWriter = t
			s.readers = nil
			if a.Mode != Out {
				s.readers = append(s.readers, t)
			}
		}
	}
}

// regionWriters returns the unfinished tasks that are last writers of any
// segment overlapping r (the `taskwait on(a[lo:hi])` set). Takes the
// owning shard's lock.
func (g *Graph) regionWriters(r Region) []*Task {
	sh := &g.shards[shardIndex(r.Base)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rd := sh.regions[r.Base]
	if rd == nil {
		return nil
	}
	var out []*Task
	seen := map[*Task]bool{}
	for _, s := range rd.segs {
		if s.hi <= r.Lo || s.lo >= r.Hi {
			continue
		}
		if w := s.lastWriter; w != nil && !w.Finished() && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// Writers generalizes LastWriter: for a Region key it returns every
// unfinished last writer of an overlapping segment; for an exact key, the
// single last writer (or none).
func (g *Graph) Writers(key any) []*Task {
	if r, ok := key.(Region); ok {
		return g.regionWriters(r)
	}
	if w := g.LastWriter(key); w != nil {
		return []*Task{w}
	}
	return nil
}
