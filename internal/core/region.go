package core

import "sort"

// Region identifies a half-open span [Lo, Hi) of an underlying array (the
// OmpSs array-section dependence, e.g. `input(a[lo:hi])`). Base is the
// array's identity key (typically a pointer to its first element or header);
// Lo/Hi are offsets in any consistent unit (bytes, elements). Two accesses
// conflict when their bases match exactly and their spans overlap.
type Region struct {
	Base   any
	Lo, Hi int64
}

// Len returns the span length.
func (r Region) Len() int64 { return r.Hi - r.Lo }

// segment is one disjoint span of a tracked array with its own dependence
// record. Segments are kept sorted and split on access boundaries, so every
// access operates on exactly-covered segments.
type segment struct {
	lo, hi     int64
	lastWriter *Task
	readers    []*Task
}

// regionDatum tracks all segments of one array base.
type regionDatum struct {
	segs []*segment
	// pinned marks records interned by RegisterRegion (see drec.pinned).
	pinned bool
	// noRenameSpans records NoRename opt-outs issued before the span's
	// chain existed (see Datum.NoRename).
	noRenameSpans [][2]int64
	// chains holds the renameable tile spans of this base (see rename.go):
	// one version chain per exact span registered through a region handle's
	// EnableRenaming. While a chain is active, accesses with exactly its
	// span are tracked on the chain (not the segments); any overlapping
	// access with a different span seals the chain and every path falls
	// back to conservative segment tracking.
	chains []*spanChain
}

// spanChain binds a version chain to one exact tile span of a region base.
type spanChain struct {
	lo, hi int64
	ch     *verChain
}

// chainAt returns the chain registered for exactly [lo, hi), or nil.
func (rd *regionDatum) chainAt(lo, hi int64) *spanChain {
	for _, sc := range rd.chains {
		if sc.lo == lo && sc.hi == hi {
			return sc
		}
	}
	return nil
}

// spanNoRename reports whether a NoRename was issued for exactly [lo, hi)
// before its chain existed.
func (rd *regionDatum) spanNoRename(lo, hi int64) bool {
	for _, s := range rd.noRenameSpans {
		if s[0] == lo && s[1] == hi {
			return true
		}
	}
	return false
}

// observeSegments wires conservative edges from the raw-access history
// overlapping [lo, hi) without recording anything: the chain path uses it
// so a tile access stays ordered after earlier raw accesses while the tile
// itself is tracked on its version chain. mode is the access's effective
// mode (reads order after segment writers only; writes also after segment
// readers).
func (rd *regionDatum) observeSegments(lo, hi int64, mode Mode, addPred func(*Task)) {
	for _, s := range rd.segs {
		if s.hi <= lo || s.lo >= hi {
			continue
		}
		addPred(s.lastWriter)
		if mode == Out || mode == InOut {
			for _, rt := range s.readers {
				addPred(rt)
			}
		}
	}
}

// split ensures segment boundaries exist at lo and hi, creating a fresh
// untracked segment for any uncovered gap inside [lo, hi), and returns the
// segments fully covered by [lo, hi).
func (d *regionDatum) split(lo, hi int64) []*segment {
	// Cut existing segments at lo and hi.
	for _, cut := range []int64{lo, hi} {
		for i, s := range d.segs {
			if s.lo < cut && cut < s.hi {
				right := &segment{lo: cut, hi: s.hi, lastWriter: s.lastWriter,
					readers: append([]*Task(nil), s.readers...)}
				s.hi = cut
				d.segs = append(d.segs, nil)
				copy(d.segs[i+2:], d.segs[i+1:])
				d.segs[i+1] = right
				break
			}
		}
	}
	// Fill gaps inside [lo, hi) with untracked segments.
	var covered []*segment
	cursor := lo
	for _, s := range d.segs {
		if s.hi <= lo || s.lo >= hi {
			continue
		}
		if s.lo > cursor {
			covered = append(covered, &segment{lo: cursor, hi: s.lo})
		}
		covered = append(covered, s)
		cursor = s.hi
	}
	if cursor < hi {
		covered = append(covered, &segment{lo: cursor, hi: hi})
	}
	// Merge any fresh gap segments back into the sorted list.
	d.segs = mergeSegs(d.segs, covered)
	return covered
}

func mergeSegs(all, add []*segment) []*segment {
	seen := make(map[*segment]bool, len(all))
	for _, s := range all {
		seen[s] = true
	}
	for _, s := range add {
		if !seen[s] {
			all = append(all, s)
			seen[s] = true
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lo < all[j].lo })
	return all
}

// regionRec returns (creating if needed) the region record of base. Called
// with the shard lock held.
func (sh *gshard) regionRec(base any) *regionDatum {
	rd := sh.regions[base]
	if rd == nil {
		rd = &regionDatum{}
		if sh.regions == nil {
			sh.regions = make(map[any]*regionDatum)
		}
		sh.regions[base] = rd
	}
	return rd
}

// submit wires dependence edges for one region access of t and updates the
// segment records. Called with the owning shard lock held; the caller
// provides the shared edge-dedup set.
func (rd *regionDatum) submit(g *Graph, t *Task, a Access, r Region, addPred func(*Task)) {
	if r.Hi <= r.Lo {
		return
	}
	// Tile-granular renaming: an access matching an active chain's exact
	// span is tracked on the chain. It still orders after the raw-access
	// history of the span (observe-only — the access itself is recorded on
	// the chain, where later raw accesses find it through the scan below).
	// Region updaters already serialize conservatively like InOut here, so
	// they keep doing exactly that on the chain.
	if sc := rd.chainAt(r.Lo, r.Hi); sc != nil && !sc.ch.noRename {
		mode := a.Mode
		if mode == Commutative || mode == Concurrent {
			mode = InOut
		}
		rd.observeSegments(r.Lo, r.Hi, mode, addPred)
		g.wireChained(sc.ch, t, mode, addPred)
		return
	}
	// Raw/segment path: order after every live instance of any overlapping
	// chain, and seal chains whose tile discipline this access breaks (a
	// non-exact overlap). The edges guarantee the chain fully drains — and
	// writes back — before this task runs, so reading the canonical storage
	// is both race-free and current.
	for _, sc := range rd.chains {
		if sc.lo < r.Hi && r.Lo < sc.hi {
			if sc.lo != r.Lo || sc.hi != r.Hi {
				sc.ch.noRename = true
			}
			sc.ch.canonical.addAccessors(addPred)
			for _, v := range sc.ch.renamed {
				v.addAccessors(addPred)
			}
		}
	}
	covered := rd.split(r.Lo, r.Hi)
	switch a.Mode {
	case In:
		for _, s := range covered {
			addPred(s.lastWriter)
			s.readers = append(s.readers, t)
		}
	case Out, InOut, Commutative, Concurrent:
		// Commutative and Concurrent over a region conservatively
		// serialize like InOut (region-level commutativity/concurrent
		// sets are not supported): updaters must still order against
		// readers and writers, so treating them as writers is the safe
		// over-approximation.
		for _, s := range covered {
			addPred(s.lastWriter)
			for _, rt := range s.readers {
				addPred(rt)
			}
			s.lastWriter = t
			s.readers = nil
			if a.Mode != Out {
				s.readers = append(s.readers, t)
			}
		}
	}
}

// regionWriters returns the unfinished tasks that are last writers of any
// segment overlapping r (the `taskwait on(a[lo:hi])` set). Takes the
// owning shard's lock.
func (g *Graph) regionWriters(r Region) []*Task {
	sh := &g.shards[shardIndex(r.Base)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rd := sh.regions[r.Base]
	if rd == nil {
		return nil
	}
	var out []*Task
	seen := map[*Task]bool{}
	for _, s := range rd.segs {
		if s.hi <= r.Lo || s.lo >= r.Hi {
			continue
		}
		if w := s.lastWriter; w != nil && !w.Finished() && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	// Overlapping version chains: waiting must cover every live instance's
	// accessors, not just the current writer — the last of them to finish
	// performs the writeback, and `taskwait on` promises the canonical
	// storage is current afterwards.
	for _, sc := range rd.chains {
		if sc.lo < r.Hi && r.Lo < sc.hi {
			out = appendChainWaiters(out, seen, sc.ch)
		}
	}
	return out
}

// appendChainWaiters collects the unfinished accessors of every live
// instance of a chain. Called with the owning shard lock held.
func appendChainWaiters(out []*Task, seen map[*Task]bool, ch *verChain) []*Task {
	collect := func(t *Task) {
		if t != nil && !t.Finished() && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	ch.canonical.addAccessors(collect)
	for _, v := range ch.renamed {
		v.addAccessors(collect)
	}
	return out
}

// Writers generalizes LastWriter: for a Region key it returns every
// unfinished last writer of an overlapping segment (plus, for renameable
// data, every live instance accessor — so waiting flushes the rename and
// the canonical storage is current on return); for an exact key, the
// single last writer, or the chain's accessor set when the datum is
// renameable.
func (g *Graph) Writers(key any) []*Task {
	if r, ok := key.(Region); ok {
		return g.regionWriters(r)
	}
	sh := &g.shards[shardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d := sh.datums[key]
	if d == nil {
		return nil
	}
	if d.chain != nil {
		return appendChainWaiters(nil, map[*Task]bool{}, d.chain)
	}
	if w := d.lastWriter; w != nil && !w.Finished() {
		return []*Task{w}
	}
	return nil
}
