package core

// Backend is the execution-domain seam: the contract every executor that
// drives the shared dependence tracker satisfies. The engine (this package)
// owns dependence wiring, version chains, domains, and statistics; a
// backend owns dispatch — where and how a ready task's body actually runs.
//
// Three domains implement it today:
//
//   - the native goroutine executor (package ompss), which runs bodies on
//     work-stealing worker goroutines in this address space;
//   - the discrete-event simulator (package ompss), which runs the same
//     bodies under virtual time on a modeled cc-NUMA machine;
//   - the multi-process distributed coordinator (internal/dist), which
//     ships serialized datum versions to worker processes over local
//     transport and executes by registered kernel name.
//
// All three share one invariant: dependence decisions (edges, renames,
// skips, writebacks) are made by the Graph, never by the backend, so a
// program observes the same dataflow semantics no matter which domain
// executes it. The interface is deliberately the engine-facing slice of a
// backend — submission/wait surfaces differ per domain (closures natively,
// kernel names in dist) and stay on the concrete types.
type Backend interface {
	// DomainName identifies the execution domain ("native", "sim", "dist")
	// for traces and reports.
	DomainName() string
	// Deps returns the dependence tracker the backend drives. All version
	// chains, renaming decisions, and failure propagation live there.
	Deps() *Graph
	// GraphStats snapshots the tracker's dependence activity.
	GraphStats() GraphStats
}

// SoleDependents returns the successors of t whose only unfinished
// predecessor is t itself, skipping any that already carry an upstream
// failure. Call it while t is still unfinished: t then holds exactly one
// count in each successor's predecessor counter until Finish, and
// submission wiring only ever inflates the counter (the wiring guard),
// so a successor observed at NPred()==1 is fully wired with t as its
// sole gate — finishing t is all that stands between it and readiness.
//
// This is the chain-eligibility query of the distributed backend: a
// sole dependent can be speculatively dispatched behind t to the same
// worker (a task chain) without any scheduling decision left to make.
// The engine only answers the structural question; what to do with the
// answer stays in the backend.
func (g *Graph) SoleDependents(t *Task) []*Task {
	var out []*Task
	for _, s := range t.Succs() {
		if s.NPred() == 1 && s.Upstream() == nil {
			out = append(out, s)
		}
	}
	return out
}

// ShardEntries reports the live dependence records across all shards —
// exact-key datums and array-region bases. Session arenas release their
// records at Close, so a steady-state server's counts return to the
// pre-churn baseline; the session-churn soak watches exactly this pair for
// arena leaks.
func (g *Graph) ShardEntries() (datums, regions int) {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		datums += len(sh.datums)
		regions += len(sh.regions)
		sh.mu.Unlock()
	}
	return datums, regions
}
