package core

// Engine-level tests of the Domain layer (the session's engine half):
// first-wins cancellation, exact charge/credit accounting with parent
// rollup, domain-confined failure propagation along dependence edges, task
// recycling hygiene, and the Release path a session's close-time arena
// recycling depends on.

import (
	"fmt"
	"sync"
	"testing"
)

// TestDomainCancelFirstWins checks the cancellation CAS: the first cause
// sticks, later causes and nil are rejected, and the cause reads back
// stably — from many goroutines at once.
func TestDomainCancelFirstWins(t *testing.T) {
	var d Domain
	if d.CancelCause() != nil {
		t.Fatal("zero domain reports a cancellation cause")
	}
	if d.Cancel(nil) {
		t.Fatal("Cancel(nil) installed a cause")
	}
	const racers = 8
	causes := make([]error, racers)
	for i := range causes {
		causes[i] = fmt.Errorf("cause %d", i)
	}
	wins := make(chan int, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d.Cancel(causes[i]) {
				wins <- i
			}
		}()
	}
	wg.Wait()
	close(wins)
	var winners []int
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("%d Cancel calls reported installing the cause, want exactly 1", len(winners))
	}
	if got := d.CancelCause(); got != causes[winners[0]] {
		t.Fatalf("CancelCause = %v, want the winner's cause %v", got, causes[winners[0]])
	}
	if d.Cancel(fmt.Errorf("late")) {
		t.Fatal("a second cause displaced the first")
	}
}

// TestDomainAccounting checks the charge/credit arithmetic and its parent
// rollup: InFlight is exact, Uncharge rolls back a refused batch without
// trace, and finish outcomes land in the right buckets.
func TestDomainAccounting(t *testing.T) {
	var root Domain
	child := &Domain{ID: 7, Parent: &root}

	child.ChargeN(3)
	child.Charge()
	if got := child.InFlight(); got != 4 {
		t.Fatalf("child InFlight = %d, want 4", got)
	}
	if got := root.InFlight(); got != 4 {
		t.Fatalf("root InFlight = %d, want 4 (rollup)", got)
	}
	// A refused batch rolls back fully.
	child.ChargeN(2)
	child.Uncharge(2)
	st := child.Stats()
	if st.Submitted != 4 || st.InFlight != 4 {
		t.Fatalf("after Uncharge: submitted=%d inflight=%d, want 4 4", st.Submitted, st.InFlight)
	}
	if rs := root.Stats(); rs.Submitted != 4 || rs.InFlight != 4 {
		t.Fatalf("root after Uncharge: submitted=%d inflight=%d, want 4 4", rs.Submitted, rs.InFlight)
	}

	child.taskFinished(nil, false)                // success
	child.taskFinished(fmt.Errorf("boom"), false) // failure
	child.taskFinished(fmt.Errorf("skip"), true)  // skip-release
	st = child.Stats()
	if st.Finished != 3 || st.Failed != 2 || st.Skipped != 1 || st.InFlight != 1 {
		t.Fatalf("child stats %+v, want finished=3 failed=2 skipped=1 inflight=1", st)
	}
	if got := root.InFlight(); got != 1 {
		t.Fatalf("root InFlight = %d, want 1 after 3 finishes", got)
	}
	child.taskFinished(nil, false)
	if got, rgot := child.InFlight(), root.InFlight(); got != 0 || rgot != 0 {
		t.Fatalf("drained InFlight child=%d root=%d, want 0 0", got, rgot)
	}
}

// TestFinishConfinesFailureToDomain checks the engine contract the session
// isolation rides on: a dependence edge between tasks of different domains
// orders execution but never carries the failure, while a same-domain edge
// does. Both successors share the failing writer's datum.
func TestFinishConfinesFailureToDomain(t *testing.T) {
	domA, domB := &Domain{ID: 1}, &Domain{ID: 2}
	m := newMiniExec(2, true, 1)
	x := new(int)
	boom := fmt.Errorf("boom")
	head := &Task{Domain: domA, Accesses: []Access{{Key: x, Mode: Out}},
		Body: func() error { return boom }}
	sameDom := &Task{Domain: domA, Accesses: []Access{{Key: x, Mode: In}}}
	crossDom := &Task{Domain: domB, Accesses: []Access{{Key: x, Mode: In}}}
	m.submit(head)
	m.submit(sameDom)
	m.submit(crossDom)
	m.runAll()

	if got := sameDom.Upstream(); got == nil {
		t.Fatal("same-domain successor did not inherit the upstream failure")
	}
	if got := crossDom.Upstream(); got != nil {
		t.Fatalf("cross-domain successor inherited foreign failure %v", got)
	}
	if pos(m.order, head) > pos(m.order, crossDom) {
		t.Fatal("cross-domain edge did not order execution")
	}
}

// TestTaskReset checks recycling hygiene: a task that went through a full
// submit/run/finish cycle resets to a state indistinguishable from a fresh
// record for every field the engine consults.
func TestTaskReset(t *testing.T) {
	dom := &Domain{ID: 3}
	m := newMiniExec(2, true, 1)
	x := new(int)
	a := &Task{ID: 11, Label: "a", Domain: dom, Priority: 2,
		Accesses: []Access{{Key: x, Mode: Out}},
		Body:     func() error { return fmt.Errorf("boom") }}
	b := &Task{ID: 12, Label: "b", Domain: dom,
		Accesses: []Access{{Key: x, Mode: In}}}
	m.submit(a)
	m.submit(b)
	m.runAll()
	if a.Upstream() != nil || b.Upstream() == nil {
		t.Fatal("setup: expected b to carry a's failure")
	}

	for _, tk := range []*Task{a, b} {
		tk.MarkSkipped()
		tk.Reset()
		if tk.ID != 0 || tk.Label != "" || tk.Body != nil || tk.Accesses != nil ||
			tk.Priority != 0 || tk.Domain != nil || tk.Parent != nil ||
			tk.Preds != nil || tk.Upstream() != nil || tk.Skipped() || tk.Finished() {
			t.Fatalf("Reset left state behind: %+v", tk)
		}
	}
	// A recycled record must be submittable again.
	m2 := newMiniExec(1, false, 2)
	ran := false
	a.Body = func() error { ran = true; return nil }
	a.Accesses = []Access{{Key: x, Mode: InOut}}
	m2.submit(a)
	m2.runAll()
	if !ran || !a.Finished() {
		t.Fatal("recycled task did not run to completion")
	}
}

// TestGraphRelease checks the close-time arena path: Release drops the
// handle's records outright, a re-registration gets a fresh record, and a
// STALE release (the first handle, released again after the key was
// re-registered) must not delete the newer record.
func TestGraphRelease(t *testing.T) {
	m := newMiniExec(1, false, 1)
	key := new(int)

	d1 := m.g.Register(key)
	tk := &Task{Accesses: []Access{{Key: d1.Key, Mode: Out}}}
	m.submit(tk)
	m.runAll()
	m.g.Release(d1)

	d2 := m.g.Register(key)
	if d2.rec == d1.rec {
		t.Fatal("re-registration after Release returned the released record")
	}
	tk2 := &Task{Accesses: []Access{{Key: d2.Key, Mode: Out}}}
	if !m.g.Submit(tk2) {
		t.Fatal("writer on a fresh record should be ready")
	}
	m.s.PushSubmit(tk2)

	// Stale release: d1 was already released; the key now belongs to d2's
	// record, which must survive.
	m.g.Release(d1)
	if lw := m.g.LastWriter(key); lw != tk2 {
		t.Fatalf("stale Release dropped the live record (last writer %v, want tk2)", lw)
	}
	m.runAll()

	// Region records release the same way.
	base := make([]byte, 64)
	r1 := m.g.RegisterRegion(&base[0], 0, 32)
	rt := &Task{Accesses: []Access{{Key: r1.region, Mode: Out, Bytes: 32}}}
	m.submit(rt)
	m.runAll()
	m.g.Release(r1)
	r2 := m.g.RegisterRegion(&base[0], 0, 32)
	if r2.rd == r1.rd {
		t.Fatal("region re-registration returned the released record")
	}
}
