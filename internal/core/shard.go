package core

import (
	"math"
	"reflect"
)

// numShards is the dependence-tracker shard count. Power of two; 64 keeps
// per-shard collision odds low for the paper's benchmarks (tens of live
// datums) while the array of mutexes stays a few cache lines.
const numShards = 64

// ShardOf maps any dependence key to its shard index — the basis of
// affinity placement (Policy.HomeLane). Region keys shard by their base, so
// all sections of one array share a home.
func ShardOf(key any) uint32 { return shardFor(key) }

// shardIndex maps a dependence key to its shard. Equal keys must always map
// to the same shard, so hashing goes through the key's value, not its
// interface box: pointers (the normal OmpSs by-reference key) hash their
// address, integers and strings their value. Exotic comparable keys
// (structs, arrays, interfaces) all share shard 0 — consistent, merely
// unsharded.
func shardIndex(key any) uint32 {
	if key == nil {
		return 0
	}
	var h uint64
	v := reflect.ValueOf(key)
	switch v.Kind() {
	case reflect.Pointer, reflect.UnsafePointer, reflect.Chan, reflect.Map, reflect.Func:
		h = uint64(v.Pointer())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		h = uint64(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		h = v.Uint()
	case reflect.Float32, reflect.Float64:
		h = math.Float64bits(v.Float())
	case reflect.Bool:
		if v.Bool() {
			h = 1
		}
	case reflect.String:
		h = fnv64(v.String())
	default:
		return 0
	}
	return uint32(mix64(h)) & (numShards - 1)
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bit mixer, so
// pointer alignment bits do not bias shard choice.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
