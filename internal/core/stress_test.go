package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEngineConcurrentStress drives Graph+Sched the way the native executor
// does — from real goroutines with no external lock: S submitters wire
// dependent tasks over shared data with mixed In/Out/InOut/Commutative/
// Concurrent accesses while W workers pop, steal, execute, and finish.
// The invariants checked are the ones a lost race would break: every task
// runs exactly once, Submitted == Finished, and no ready task is stranded
// in any queue. Run under -race in CI.
func TestEngineConcurrentStress(t *testing.T) {
	const (
		nWorkers    = 4
		nSubmitters = 4
		perSub      = 1500
		nData       = 16
	)
	total := nSubmitters * perSub

	g := NewGraph()
	s := NewSched(nWorkers, DefaultPolicy(), 42)

	keys := make([]any, nData)
	for i := range keys {
		keys[i] = new(int64)
	}
	modes := []Mode{In, Out, InOut, Commutative, Concurrent}

	runCount := make([]atomic.Int32, total)
	var finished atomic.Int64
	var submittedAll atomic.Bool

	runOne := func(tk *Task, lane int) {
		g.MarkRunning(tk, lane)
		tk.Body()
		for _, r := range g.Finish(tk, nil) {
			s.PushReady(r, lane)
		}
		finished.Add(1)
	}

	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for {
				tk := s.Pop(lane)
				if tk == nil {
					if submittedAll.Load() && g.Unfinished() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				runOne(tk, lane)
			}
		}(w)
	}

	var sg sync.WaitGroup
	for sub := 0; sub < nSubmitters; sub++ {
		sg.Add(1)
		go func(sub int) {
			defer sg.Done()
			rng := rand.New(rand.NewSource(int64(sub) + 1))
			for i := 0; i < perSub; i++ {
				id := sub*perSub + i
				var acc []Access
				nacc := rng.Intn(3) + 1
				used := map[int]bool{}
				for j := 0; j < nacc; j++ {
					di := rng.Intn(nData)
					if used[di] {
						continue
					}
					used[di] = true
					acc = append(acc, Access{Key: keys[di], Mode: modes[rng.Intn(len(modes))]})
				}
				tk := &Task{Accesses: acc}
				tk.Body = func() error { runCount[id].Add(1); return nil }
				if g.Submit(tk) {
					s.PushSubmit(tk)
				}
			}
		}(sub)
	}
	sg.Wait()
	submittedAll.Store(true)
	wg.Wait()

	if got := finished.Load(); got != int64(total) {
		t.Fatalf("finished %d tasks, want %d", got, total)
	}
	st := g.Stats()
	if st.Submitted != uint64(total) || st.Finished != uint64(total) {
		t.Fatalf("graph imbalance: submitted=%d finished=%d want %d",
			st.Submitted, st.Finished, total)
	}
	if g.Unfinished() != 0 {
		t.Fatalf("unfinished=%d after drain", g.Unfinished())
	}
	if s.Ready() != 0 {
		t.Fatalf("ready=%d tasks stranded in queues", s.Ready())
	}
	for id := range runCount {
		if n := runCount[id].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", id, n)
		}
	}
}

// TestSubmitVsFinishRace hammers the exact window the submission guard
// protects: a two-task chain where the predecessor finishes on another
// goroutine while the successor is mid-submission. A regression here shows
// up as a double release (task runs twice) or a lost release (hang —
// bounded by the iteration count, caught as stranded ready/unfinished).
func TestSubmitVsFinishRace(t *testing.T) {
	const iters = 3000
	g := NewGraph()
	s := NewSched(2, DefaultPolicy(), 7)
	for i := 0; i < iters; i++ {
		x := new(int)
		var ran0, ran1 atomic.Int32
		t0 := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
		t0.Body = func() error { ran0.Add(1); return nil }
		if !g.Submit(t0) {
			t.Fatal("t0 should be ready")
		}

		// Finish t0 on a second goroutine while this one submits t1.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.MarkRunning(t0, 0)
			t0.Body()
			for _, r := range g.Finish(t0, nil) {
				s.PushReady(r, 0)
			}
		}()
		t1 := &Task{Accesses: []Access{{Key: x, Mode: In}}}
		t1.Body = func() error { ran1.Add(1); return nil }
		ready := g.Submit(t1)
		wg.Wait()

		if ready {
			s.PushSubmit(t1)
		}
		// Exactly one enqueue must have happened: pop until t1 executes.
		for t1.NPred() > 0 {
			// released by the finisher; nothing to do
		}
		got := s.Pop(1)
		if got != t1 {
			t.Fatalf("iter %d: popped %v, want t1", i, got)
		}
		g.MarkRunning(t1, 1)
		t1.Body()
		g.Finish(t1, nil)
		if s.Pop(1) != nil {
			t.Fatalf("iter %d: t1 enqueued twice", i)
		}
		if ran1.Load() != 1 {
			t.Fatalf("iter %d: t1 ran %d times", i, ran1.Load())
		}
		g.Forget(x)
	}
}
