// Package core implements the task-dataflow engine at the heart of the OmpSs
// programming model: task objects, per-datum dependence tracking
// (RAW/WAR/WAW), ready-task scheduling with locality-aware successor
// placement and work stealing, and the child-counting contexts behind
// taskwait.
//
// The package is a pure state machine: it performs no synchronization and no
// execution of its own. The native executor (package ompss) drives it from
// goroutines under a scheduler lock; the simulated executor drives it from
// discrete-event context where execution is already serialized. This is what
// guarantees that both evaluation modes exercise literally the same
// dependence and scheduling policies.
package core

import "sync/atomic"

// Mode is the dependence mode of one task argument, mirroring the OmpSs
// pragma clauses input/output/inout (plus the concurrent extension).
type Mode int

const (
	// In declares the task reads the datum (RAW dependence on its last
	// writer).
	In Mode = iota
	// Out declares the task overwrites the datum (WAW on the last writer,
	// WAR on readers since).
	Out
	// InOut declares the task reads and writes the datum.
	InOut
	// Concurrent declares the task updates the datum under its own
	// synchronization: concurrent tasks may overlap each other, but are
	// ordered against ordinary readers and writers like readers.
	Concurrent
	// Commutative declares the task updates the datum in an order-free
	// but mutually exclusive way: commutative tasks on the same datum are
	// unordered among themselves (the executor serializes their bodies
	// with a per-datum lock), while ordinary readers and writers are
	// ordered against all of them.
	Commutative
)

func (m Mode) String() string {
	switch m {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	case Concurrent:
		return "concurrent"
	case Commutative:
		return "commutative"
	}
	return "?"
}

// Access is one (datum, mode) pair of a task. Key identifies the datum by
// exact match — normally a pointer, as in OmpSs's by-reference dependences;
// the paper's benchmarks rely on whole-object annotations and manual
// circular-buffer renaming, which exact keys express directly. Bytes is the
// datum footprint used by the simulated machine's memory model; zero is
// valid (dependence only, no modeled traffic).
type Access struct {
	Key   any
	Mode  Mode
	Bytes int64
}

// Reads reports whether the access observes the datum's value.
func (a Access) Reads() bool {
	return a.Mode == In || a.Mode == InOut || a.Mode == Concurrent || a.Mode == Commutative
}

// Writes reports whether the access produces a new datum value.
func (a Access) Writes() bool { return a.Mode == Out || a.Mode == InOut }

// Task is one node of the dataflow graph.
type Task struct {
	ID       uint64
	Label    string
	Body     func()
	Accesses []Access
	// Priority biases dispatch order: higher-priority ready tasks are
	// popped before FIFO-ordered peers.
	Priority int
	// CPUCost is the simulated execution cost hint in nanoseconds; the
	// native executor ignores it.
	CPUCost int64
	// Parent is the context (spawning scope) whose taskwait covers this
	// task.
	Parent *Context
	// Worker records where the task executed (set by the executor).
	Worker int

	// Preds records the IDs of the tasks this one had to wait for at
	// submission (for tracing and DOT export; kept after they finish).
	Preds []uint64

	npred int32   // unfinished predecessors
	succs []*Task // tasks waiting on this one
	state int32   // atomic taskState
	done  chan struct{}
}

type taskState int32

const (
	stateCreated int32 = iota
	stateReady
	stateRunning
	stateFinished
)

// Done returns a channel closed when the task finishes. Used by native
// TaskwaitOn waiters.
func (t *Task) Done() <-chan struct{} { return t.done }

// Finished reports whether the task has completed. Safe without the engine
// lock.
func (t *Task) Finished() bool { return atomic.LoadInt32(&t.state) == stateFinished }

// NPred returns the number of unfinished predecessors (engine lock required).
func (t *Task) NPred() int { return int(t.npred) }

// Succs returns the current successor list (engine lock required; exposed for
// tracing and tests).
func (t *Task) Succs() []*Task { return t.succs }

// Context counts unfinished direct children of a spawning scope (the main
// program, or a task that spawns nested tasks). Taskwait blocks until the
// caller's context drains.
type Context struct {
	pending int64
	// Depth is 0 for the program's implicit task, +1 per nesting level.
	Depth int
}

// Pending returns the number of unfinished direct children.
func (c *Context) Pending() int64 { return atomic.LoadInt64(&c.pending) }

func (c *Context) add(n int64) { atomic.AddInt64(&c.pending, n) }
