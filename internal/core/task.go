// Package core implements the task-dataflow engine at the heart of the OmpSs
// programming model: task objects, per-datum dependence tracking
// (RAW/WAR/WAW), ready-task scheduling with locality-aware successor
// placement and work stealing, and the child-counting contexts behind
// taskwait.
//
// The engine performs no execution of its own, and it is safe for
// concurrent use without any external lock. Its locking model is
// decentralized so no single lock serializes the executor:
//
//   - Dependence records (Graph) live in key-hashed shards with per-shard
//     mutexes. Submit two-phase-locks the shards of one task's accesses in
//     ascending index order — deadlock-free, and atomic against concurrent
//     submitters sharing any datum.
//   - Task release is lock-free at the graph level: each task carries an
//     atomic unfinished-predecessor count, pre-charged with a submission
//     guard so a racing Finish can never release a half-wired task, and a
//     tiny per-task lock arbitrates the "add successor vs. finish" race.
//     Whoever decrements npred to zero owns the enqueue.
//   - Ready tasks (Sched) sit in per-worker Chase–Lev lock-free deques
//     (owner LIFO bottom, thieves steal the top) plus a Michael–Scott
//     lock-free global FIFO for breadth-first submissions; statistics are
//     per-lane padded atomics.
//
// The native executor (package ompss) drives this from goroutines with no
// lock of its own; the simulated executor drives the same code from
// discrete-event context where every lock is uncontended and scheduling
// stays deterministic per seed. This is what guarantees that both
// evaluation modes exercise literally the same dependence and scheduling
// policies.
package core

import (
	"sync"
	"sync/atomic"
)

// Mode is the dependence mode of one task argument, mirroring the OmpSs
// pragma clauses input/output/inout (plus the concurrent extension).
type Mode int

const (
	// In declares the task reads the datum (RAW dependence on its last
	// writer).
	In Mode = iota
	// Out declares the task overwrites the datum (WAW on the last writer,
	// WAR on readers since).
	Out
	// InOut declares the task reads and writes the datum.
	InOut
	// Concurrent declares the task updates the datum under its own
	// synchronization: concurrent tasks may overlap each other, but as
	// updaters they are ordered against ordinary readers, commutative
	// updaters, and writers on both sides.
	Concurrent
	// Commutative declares the task updates the datum in an order-free
	// but mutually exclusive way: commutative tasks on the same datum are
	// unordered among themselves (the executor serializes their bodies
	// with a per-datum lock), while ordinary readers and writers are
	// ordered against all of them.
	Commutative
)

func (m Mode) String() string {
	switch m {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	case Concurrent:
		return "concurrent"
	case Commutative:
		return "commutative"
	}
	return "?"
}

// Access is one (datum, mode) pair of a task. Key identifies the datum by
// exact match — normally a pointer, as in OmpSs's by-reference dependences;
// the paper's benchmarks rely on whole-object annotations and manual
// circular-buffer renaming, which exact keys express directly. Bytes is the
// datum footprint used by the simulated machine's memory model; zero is
// valid (dependence only, no modeled traffic).
type Access struct {
	Key   any
	Mode  Mode
	Bytes int64
	// Datum, when non-nil, is a pre-registered handle for Key (see
	// Graph.Register): Submit uses its cached shard index and record
	// pointer instead of hashing Key. Key must still name the same datum —
	// the clause layer fills both from the handle.
	Datum *Datum
}

// Reads reports whether the access observes the datum's value.
func (a Access) Reads() bool {
	return a.Mode == In || a.Mode == InOut || a.Mode == Concurrent || a.Mode == Commutative
}

// Writes reports whether the access produces a new datum value.
func (a Access) Writes() bool { return a.Mode == Out || a.Mode == InOut }

// Task is one node of the dataflow graph.
type Task struct {
	ID    uint64
	Label string
	// Body executes the task and returns its outcome. A nil return is
	// success; a non-nil error is recorded on the task (see Err) and, under
	// the executor's failure policy, propagates along dependence edges to
	// successors. The executor layer wraps user bodies so panics surface
	// here as errors rather than unwinding the worker.
	Body     func() error
	Accesses []Access
	// Priority biases dispatch order: higher-priority ready tasks are
	// popped before FIFO-ordered peers.
	Priority int
	// affinity is the task's placement hint, encoded as home shard + 1 so
	// the zero value (struct-literal construction) means "no hint". Set via
	// SetAffinity; the scheduler reads it through AffinityShard.
	affinity uint32
	// CPUCost is the simulated execution cost hint in nanoseconds; the
	// native executor ignores it.
	CPUCost int64
	// Iters is the number of loop iterations this task covers when it was
	// spawned as one TaskLoop chunk (0 for ordinary tasks). The feedback
	// controller divides measured execution time by it to learn per-
	// iteration cost for the task's label.
	Iters int
	// Parent is the context (spawning scope) whose taskwait covers this
	// task.
	Parent *Context
	// Domain is the failure/cancellation/accounting domain this task belongs
	// to (nil for domain-less tasks; see Domain). Set before submission.
	Domain *Domain
	// Worker records where the task executed (set by the executor).
	Worker int

	// Preds records the IDs of the tasks this one had to wait for at
	// submission (for tracing and DOT export; kept after they finish).
	Preds []uint64

	// bindings records the datum instances this task's accesses were wired
	// against (renameable datums only — see rename.go). Appended under the
	// owning shard lock during Submit, read by the body via PayloadFor,
	// released by Finish.
	bindings []verBinding

	npred  int32      // atomic: unfinished predecessors (+1 submission guard while wiring)
	succMu sync.Mutex // guards succs against the add-successor vs. finish race
	succs  []*Task    // tasks waiting on this one
	state  int32      // atomic taskState
	done   chan struct{}

	// outcome is the task's final error, written by Finish before the done
	// channel closes (so any reader that observed Done/Finished sees it).
	outcome error
	// upstream is the first error that reached this task along a dependence
	// edge from a failing predecessor, set by the predecessor's Finish
	// before it drops this task's npred. The executor consults it at
	// dispatch to decide whether to skip the body.
	upstream atomic.Pointer[errBox]
	// skipped records that the executor released this task without running
	// its body (failure policy or cancellation).
	skipped atomic.Bool

	// renamed / renameFB attribute the graph's rename decisions to this
	// task: a write-mode access received a fresh instance, or stalled only
	// because the in-flight version cap was full. Written under the owning
	// shard lock during Submit's wiring, read by the executor after the
	// task finished (ordered by the submit→ready→run→finish chain), so no
	// atomics are needed.
	renamed  bool
	renameFB bool
}

// Renamed reports whether any of the task's write-mode accesses received a
// fresh renamed instance. Valid once the task finished.
func (t *Task) Renamed() bool { return t.renamed }

// RenameFallback reports whether any of the task's write-mode accesses
// stalled on its WAR/WAW edges only because the in-flight version cap was
// full. Valid once the task finished.
func (t *Task) RenameFallback() bool { return t.renameFB }

// SetAffinity hints that the task should execute near the data of the given
// dependence shard (see Policy.HomeLane). Call before submission.
func (t *Task) SetAffinity(shard uint32) { t.affinity = shard + 1 }

// AffinityShard returns the task's affinity hint and whether one was set.
func (t *Task) AffinityShard() (uint32, bool) {
	if t.affinity == 0 {
		return 0, false
	}
	return t.affinity - 1, true
}

// bindRead records that the task observes version v of the chain. Called
// under the owning shard lock.
func (t *Task) bindRead(ch *verChain, v *version) {
	v.refs++
	t.bindings = append(t.bindings, verBinding{chain: ch, read: v, readVID: v.vid})
}

// bindWrite records that the task writes version v in place (a non-renamed
// write: the instance it reads, if any, is the same one). readVID is the
// pre-bump version number an InOut observes (0 for a pure Out); the
// caller bumps v.vid to the produced version before calling. Called under
// the owning shard lock.
func (t *Task) bindWrite(ch *verChain, v *version, readVID uint64) {
	v.refs++
	t.bindings = append(t.bindings, verBinding{chain: ch, write: v, readVID: readVID, writeVID: v.vid})
}

// bindRename records a renamed write: the task produces nv; for InOut,
// prev is the instance whose value seeds nv (copy-in) and the task holds a
// read ref on it. Called under the owning shard lock.
func (t *Task) bindRename(ch *verChain, prev, nv *version, needCopy bool) {
	nv.refs++
	b := verBinding{chain: ch, read: prev, write: nv, needCopy: needCopy, writeVID: nv.vid}
	if prev != nil {
		prev.refs++
		b.readVID = prev.vid
	}
	t.bindings = append(t.bindings, b)
}

// errBox wraps an error for atomic first-wins publication.
type errBox struct{ err error }

// noteUpstream records err as a dependence-edge failure; only the first
// error sticks.
func (t *Task) noteUpstream(err error) {
	if t.upstream.Load() != nil {
		return
	}
	t.upstream.CompareAndSwap(nil, &errBox{err})
}

// Upstream returns the first error propagated to this task along a
// dependence edge, or nil.
func (t *Task) Upstream() error {
	if b := t.upstream.Load(); b != nil {
		return b.err
	}
	return nil
}

// Err returns the task's outcome. It is nil until the task finishes; after
// Done is closed (or Finished reports true) it is the error recorded by
// Finish, nil on success.
func (t *Task) Err() error {
	if !t.Finished() {
		return nil
	}
	return t.outcome
}

// MarkSkipped flags that the executor released this task without running
// its body.
func (t *Task) MarkSkipped() { t.skipped.Store(true) }

// Skipped reports whether the executor released this task without running
// its body.
func (t *Task) Skipped() bool { return t.skipped.Load() }

// addSucc links s as a successor of t unless t already finished (then no
// edge is needed). Called by Graph.Submit with shard locks held; the
// per-task lock is a leaf, so lock order is always shards → task.
func (t *Task) addSucc(s *Task) bool {
	t.succMu.Lock()
	defer t.succMu.Unlock()
	if atomic.LoadInt32(&t.state) == stateFinished {
		return false
	}
	t.succs = append(t.succs, s)
	return true
}

// takeSuccsAndFinish atomically marks t finished and detaches its successor
// list: after it returns, addSucc refuses new edges, so Finish decrements
// exactly the successors that were wired.
func (t *Task) takeSuccsAndFinish() []*Task {
	t.succMu.Lock()
	atomic.StoreInt32(&t.state, stateFinished)
	succs := t.succs
	t.succs = nil
	t.succMu.Unlock()
	return succs
}

// Reset returns a finished task to its zero state so the executor can pool
// and reuse the object (request-scoped graph arenas recycle task records
// wholesale). The caller must guarantee the task is finished and no longer
// reachable — not held by a handle, a successor list, or a dependence
// record (see Graph.Forget / Graph.Release). Field-by-field so the mutex
// and atomics are never copied.
func (t *Task) Reset() {
	t.ID = 0
	t.Label = ""
	t.Body = nil
	t.Accesses = nil
	t.Priority = 0
	t.affinity = 0
	t.CPUCost = 0
	t.Iters = 0
	t.Parent = nil
	t.Domain = nil
	t.Worker = 0
	t.Preds = nil
	t.bindings = nil
	atomic.StoreInt32(&t.npred, 0)
	t.succs = nil
	atomic.StoreInt32(&t.state, stateCreated)
	t.done = nil
	t.outcome = nil
	t.upstream.Store(nil)
	t.skipped.Store(false)
	t.renamed = false
	t.renameFB = false
}

type taskState int32

const (
	stateCreated int32 = iota
	stateReady
	stateRunning
	stateFinished
)

// Done returns a channel closed when the task finishes. Used by native
// TaskwaitOn waiters.
func (t *Task) Done() <-chan struct{} { return t.done }

// EnsureDone pre-creates the completion channel, so an executor layer can
// hand out a live future for a task before it is submitted (batch
// submission defers Graph.Submit, which otherwise creates the channel).
// Call from the constructing goroutine only, before the task is published.
func (t *Task) EnsureDone() {
	if t.done == nil {
		t.done = make(chan struct{})
	}
}

// Finished reports whether the task has completed. Safe without the engine
// lock.
func (t *Task) Finished() bool { return atomic.LoadInt32(&t.state) == stateFinished }

// NPred returns the number of unfinished predecessors.
func (t *Task) NPred() int { return int(atomic.LoadInt32(&t.npred)) }

// Succs returns a snapshot of the successor list (exposed for tracing and
// tests).
func (t *Task) Succs() []*Task {
	t.succMu.Lock()
	defer t.succMu.Unlock()
	return append([]*Task(nil), t.succs...)
}

// Context counts unfinished direct children of a spawning scope (the main
// program, or a task that spawns nested tasks). Taskwait blocks until the
// caller's context drains.
type Context struct {
	pending int64
	// Depth is 0 for the program's implicit task, +1 per nesting level.
	Depth int

	firstErr atomic.Pointer[errBox] // first failed direct child's error
}

// Pending returns the number of unfinished direct children.
func (c *Context) Pending() int64 { return atomic.LoadInt64(&c.pending) }

func (c *Context) add(n int64) { atomic.AddInt64(&c.pending, n) }

// NoteErr records a direct-child failure of this scope; the first error
// sticks. Graph.Finish calls it for deferred tasks; the executor layer
// calls it for undeferred (inline) ones, which never enter the graph.
func (c *Context) NoteErr(err error) {
	if err == nil || c.firstErr.Load() != nil {
		return
	}
	c.firstErr.CompareAndSwap(nil, &errBox{err})
}

// Err returns the first error of a direct child that finished unsuccessfully
// in this scope (including skipped children), or nil. This is what taskwait
// reports.
func (c *Context) Err() error {
	if b := c.firstErr.Load(); b != nil {
		return b.err
	}
	return nil
}

// TakeErr returns the scope's recorded failure and clears it, so each
// taskwait round reports the failures of its own batch of children.
func (c *Context) TakeErr() error {
	if b := c.firstErr.Swap(nil); b != nil {
		return b.err
	}
	return nil
}
