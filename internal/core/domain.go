package core

import "sync/atomic"

// Domain is a failure/cancellation/accounting domain: the engine-level half
// of a session (the executor layer's request scope). Every task may carry a
// Domain pointer; tasks sharing a Domain form one error domain — failures
// propagate along dependence edges only between tasks of the same domain,
// and a domain cancellation induces skip-release only for its own tasks —
// and one admission-accounting unit: the executor charges the domain before
// submitting and Finish credits it, so InFlight is an exact
// submitted-but-unfinished count usable as a backpressure budget.
//
// The zero Domain is valid (no overrides, never cancelled). A nil Domain on
// a task means "no domain": such tasks propagate failures to, and accept
// them from, other nil-domain tasks only.
type Domain struct {
	// ID names the domain in traces (obs events tag submissions with it).
	ID uint64
	// Parent, when non-nil, receives the in-flight rollup of every charge
	// and credit, so one root domain can meter a global admission budget
	// across many child domains. One level only; Parent.Parent is ignored.
	Parent *Domain
	// Rename overrides the graph's dependence-renaming policy for this
	// domain's tasks (RenameInherit leaves the graph's setting in force);
	// RenameCap, when positive, overrides the per-datum in-flight version
	// cap the same way. Set before the first submission.
	Rename    RenameOverride
	RenameCap int
	// Quiet asks the executor to suppress per-task observability events for
	// this domain's tasks. The engine itself does not consult it.
	Quiet bool
	// Owner is an opaque executor backpointer (the session). The engine
	// never touches it.
	Owner any

	cancelled atomic.Pointer[errBox]
	inflight  atomic.Int64
	submitted atomic.Uint64
	finished  atomic.Uint64
	failed    atomic.Uint64
	skipped   atomic.Uint64
}

// RenameOverride is a per-domain tri-state override of the graph's
// dependence-renaming policy.
type RenameOverride int8

const (
	// RenameInherit keeps the graph-wide renaming setting.
	RenameInherit RenameOverride = 0
	// RenameForceOn renames for this domain's tasks even when the graph-wide
	// setting is off.
	RenameForceOn RenameOverride = 1
	// RenameForceOff never renames for this domain's tasks.
	RenameForceOff RenameOverride = -1
)

// DomainStats is a snapshot of one domain's task accounting.
type DomainStats struct {
	Submitted uint64
	Finished  uint64
	Failed    uint64 // finished with a non-nil outcome (includes skipped)
	Skipped   uint64 // released without running (cancellation / failure policy)
	InFlight  int64  // charged but not yet finished
}

// Cancel puts the domain into cancellation drain: the executor skip-releases
// every not-yet-started task of this domain, finishing each with the cause.
// Idempotent; the first cause wins. Reports whether this call installed the
// cause.
func (d *Domain) Cancel(cause error) bool {
	if cause == nil {
		return false
	}
	if d.cancelled.Load() != nil {
		return false
	}
	return d.cancelled.CompareAndSwap(nil, &errBox{cause})
}

// CancelCause returns the domain's cancellation cause, or nil when the
// domain is live.
func (d *Domain) CancelCause() error {
	if b := d.cancelled.Load(); b != nil {
		return b.err
	}
	return nil
}

// Charge records one task entering the domain (executor-side, before the
// task is submitted, so InFlight is usable as a hard admission budget) and
// rolls the in-flight count up to the parent.
func (d *Domain) Charge() { d.ChargeN(1) }

// ChargeN charges n tasks at once (batch submission).
func (d *Domain) ChargeN(n int64) {
	d.inflight.Add(n)
	d.submitted.Add(uint64(n))
	if d.Parent != nil {
		d.Parent.inflight.Add(n)
		d.Parent.submitted.Add(uint64(n))
	}
}

// Uncharge rolls back a Charge whose task was never submitted (a rejected
// batch).
func (d *Domain) Uncharge(n int64) {
	d.inflight.Add(-n)
	d.submitted.Add(^uint64(n - 1))
	if d.Parent != nil {
		d.Parent.inflight.Add(-n)
		d.Parent.submitted.Add(^uint64(n - 1))
	}
}

// taskFinished credits the domain for one finished task (called by
// Graph.Finish).
func (d *Domain) taskFinished(err error, skipped bool) {
	d.finished.Add(1)
	if err != nil {
		d.failed.Add(1)
	}
	if skipped {
		d.skipped.Add(1)
	}
	d.inflight.Add(-1)
	if d.Parent != nil {
		d.Parent.finished.Add(1)
		d.Parent.inflight.Add(-1)
	}
}

// InFlight returns the number of charged-but-unfinished tasks.
func (d *Domain) InFlight() int64 { return d.inflight.Load() }

// Stats returns a snapshot of the domain counters.
func (d *Domain) Stats() DomainStats {
	return DomainStats{
		Submitted: d.submitted.Load(),
		Finished:  d.finished.Load(),
		Failed:    d.failed.Load(),
		Skipped:   d.skipped.Load(),
		InFlight:  d.inflight.Load(),
	}
}

// sameDomain reports whether two tasks belong to one failure domain (both
// nil counts as one domain). Failure propagation along dependence edges is
// confined to a domain: a cross-domain edge still orders execution, but the
// successor never inherits the foreign failure — one session's error
// cascade cannot skip another session's tasks.
func sameDomain(a, b *Task) bool { return a.Domain == b.Domain }
