package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func reg(base any, lo, hi int64) Region { return Region{Base: base, Lo: lo, Hi: hi} }

func TestRegionDisjointWritesAreParallel(t *testing.T) {
	m := newMiniExec(4, true, 1)
	base := new(int)
	a := &Task{Accesses: []Access{{Key: reg(base, 0, 10), Mode: Out}}}
	b := &Task{Accesses: []Access{{Key: reg(base, 10, 20), Mode: Out}}}
	m.submit(a)
	m.submit(b)
	if a.NPred() != 0 || b.NPred() != 0 {
		t.Fatalf("disjoint sections must not conflict: %d, %d", a.NPred(), b.NPred())
	}
	m.runAll()
}

func TestRegionOverlapSerializes(t *testing.T) {
	m := newMiniExec(4, true, 2)
	base := new(int)
	a := &Task{Accesses: []Access{{Key: reg(base, 0, 10), Mode: Out}}}
	b := &Task{Accesses: []Access{{Key: reg(base, 5, 15), Mode: Out}}}
	m.submit(a)
	m.submit(b)
	if b.NPred() != 1 {
		t.Fatalf("overlapping writes must serialize, npred=%d", b.NPred())
	}
	m.runAll()
	if pos(m.order, a) > pos(m.order, b) {
		t.Fatal("WAW order violated across sections")
	}
}

func TestRegionReadersShareThenWriterWaits(t *testing.T) {
	m := newMiniExec(4, true, 3)
	base := new(int)
	w := &Task{Accesses: []Access{{Key: reg(base, 0, 100), Mode: Out}}}
	m.submit(w)
	r1 := &Task{Accesses: []Access{{Key: reg(base, 0, 50), Mode: In}}}
	r2 := &Task{Accesses: []Access{{Key: reg(base, 50, 100), Mode: In}}}
	m.submit(r1)
	m.submit(r2)
	if r1.NPred() != 1 || r2.NPred() != 1 {
		t.Fatalf("readers depend only on the covering writer: %d, %d", r1.NPred(), r2.NPred())
	}
	// A writer over [25, 75) must wait for both readers (WAR) and the
	// original writer is finished-agnostic via dedup.
	w2 := &Task{Accesses: []Access{{Key: reg(base, 25, 75), Mode: Out}}}
	m.submit(w2)
	if w2.NPred() != 3 {
		t.Fatalf("partial overwrite npred=%d, want 3 (writer + 2 readers)", w2.NPred())
	}
	m.runAll()
}

func TestRegionPartialOverwriteKeepsRest(t *testing.T) {
	m := newMiniExec(2, true, 4)
	base := new(int)
	w1 := &Task{Accesses: []Access{{Key: reg(base, 0, 100), Mode: Out}}}
	m.submit(w1)
	w2 := &Task{Accesses: []Access{{Key: reg(base, 0, 50), Mode: Out}}}
	m.submit(w2)
	// A reader of the untouched half depends on w1 only.
	r := &Task{Accesses: []Access{{Key: reg(base, 50, 100), Mode: In}}}
	m.submit(r)
	if r.NPred() != 1 {
		t.Fatalf("reader of untouched half npred=%d, want 1", r.NPred())
	}
	if len(m.g.Writers(reg(base, 0, 100))) != 2 {
		t.Fatalf("writers over whole = %d, want 2", len(m.g.Writers(reg(base, 0, 100))))
	}
	m.runAll()
	if len(m.g.Writers(reg(base, 0, 100))) != 0 {
		t.Fatal("finished writers must not be reported")
	}
}

func TestRegionDistinctBasesIndependent(t *testing.T) {
	m := newMiniExec(2, true, 5)
	b1, b2 := new(int), new(int)
	a := &Task{Accesses: []Access{{Key: reg(b1, 0, 10), Mode: Out}}}
	b := &Task{Accesses: []Access{{Key: reg(b2, 0, 10), Mode: Out}}}
	m.submit(a)
	m.submit(b)
	if b.NPred() != 0 {
		t.Fatal("different bases must not conflict")
	}
	m.runAll()
}

func TestRegionEmptySpanIgnored(t *testing.T) {
	m := newMiniExec(1, true, 6)
	base := new(int)
	a := &Task{Accesses: []Access{{Key: reg(base, 5, 5), Mode: Out}}}
	m.submit(a)
	b := &Task{Accesses: []Access{{Key: reg(base, 0, 10), Mode: Out}}}
	m.submit(b)
	if b.NPred() != 0 {
		t.Fatal("empty span must create no dependences")
	}
	m.runAll()
}

func TestWritersExactKeyCompat(t *testing.T) {
	m := newMiniExec(1, true, 7)
	x := new(int)
	a := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(a)
	if ws := m.g.Writers(x); len(ws) != 1 || ws[0] != a {
		t.Fatalf("exact-key Writers = %v", ws)
	}
	m.runAll()
}

// TestRegionElementOracleProperty is the region engine's central
// correctness property: random programs of section accesses over a small
// array must make every reader observe, per element, exactly the value its
// program-order last writer produced — checked against real slice contents.
func TestRegionElementOracleProperty(t *testing.T) {
	f := func(seed int64, nTasks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 24
		data := make([]uint32, size)    // real contents: writer ids
		version := make([]uint32, size) // program-order oracle
		base := &data[0]
		m := newMiniExec(3, rng.Intn(2) == 0, seed)
		ok := true
		nt := int(nTasks%30) + 5
		for id := uint32(1); id <= uint32(nt); id++ {
			lo := int64(rng.Intn(size))
			hi := lo + int64(rng.Intn(size-int(lo))) + 1
			mode := []Mode{In, Out, InOut}[rng.Intn(3)]
			expect := make([]uint32, hi-lo)
			if mode == In || mode == InOut {
				copy(expect, version[lo:hi])
			}
			if mode == Out || mode == InOut {
				for i := lo; i < hi; i++ {
					version[i] = id
				}
			}
			id := id
			lo2, hi2 := lo, hi
			tk := &Task{
				Accesses: []Access{{Key: reg(base, lo, hi), Mode: mode}},
				Body: func() error {
					if mode == In || mode == InOut {
						for i := lo2; i < hi2; i++ {
							if data[i] != expect[i-lo2] {
								ok = false
							}
						}
					}
					if mode == Out || mode == InOut {
						for i := lo2; i < hi2; i++ {
							data[i] = id
						}
					}
					return nil
				},
			}
			m.submit(tk)
		}
		m.runAll()
		return ok && m.g.Unfinished() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
