package core

import "sync/atomic"

// wsDeque is a Chase–Lev work-stealing deque: the owning worker pushes and
// pops at the bottom (LIFO, keeping producer→consumer chains hot), thieves
// steal the oldest task from the top. All operations are lock-free; only
// the last-element pop and every steal synchronize, through one CAS on
// `top`. Owner operations (pushBottom, popBottom) must be serialized by the
// caller — Sched guards them with a per-lane owner TryLock, shared by the
// lane's locality deque and its high-priority lane, so aliased lanes
// (several goroutines sharing the master TC) stay safe.
//
// The ring grows by doubling; thieves racing a grow keep reading the old
// ring, whose slots for in-flight indices remain valid (the GC keeps the
// retired ring alive for them).
type wsDeque struct {
	top    atomic.Int64 // next index to steal (grows upward)
	bottom atomic.Int64 // next index to push
	ring   atomic.Pointer[dequeRing]
}

type dequeRing struct {
	mask int64 // len(buf)-1; len is a power of two
	buf  []atomic.Pointer[Task]
}

func newDequeRing(size int64) *dequeRing {
	return &dequeRing{mask: size - 1, buf: make([]atomic.Pointer[Task], size)}
}

func (r *dequeRing) get(i int64) *Task    { return r.buf[i&r.mask].Load() }
func (r *dequeRing) put(i int64, t *Task) { r.buf[i&r.mask].Store(t) }
func (r *dequeRing) grow(top, bottom int64) *dequeRing {
	nr := newDequeRing((r.mask + 1) * 2)
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

func (d *wsDeque) init() { d.ring.Store(newDequeRing(32)) }

// size is a racy estimate of queued tasks; exact when the deque is quiescent
// (it is only used for idle/wait predicates and the sim's serialized checks).
func (d *wsDeque) size() int {
	b, t := d.bottom.Load(), d.top.Load()
	if b > t {
		return int(b - t)
	}
	return 0
}

// pushBottom adds t at the owner's end. Owner-serialized.
func (d *wsDeque) pushBottom(t *Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top >= int64(len(r.buf)) {
		r = r.grow(top, b)
		d.ring.Store(r)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// popBottom removes the newest task. Owner-serialized. Returns nil when the
// deque is empty or a thief won the race for the last element.
func (d *wsDeque) popBottom() *Task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical empty state.
		d.bottom.Store(t)
		return nil
	}
	task := r.get(b)
	if b > t {
		// Clear the slot so the consumed task is not pinned until the ring
		// index wraps. Safe: a thief only reads a slot whose index is below
		// a bottom value it loaded after our bottom store, so it can no
		// longer observe index b before a push overwrites it.
		r.put(b, nil)
		return task
	}
	// Last element: race thieves for it via the top CAS.
	if !d.top.CompareAndSwap(t, t+1) {
		task = nil
	} else {
		// Won the race: clearing is safe for the same reason — any thief
		// still looking at this slot will fail its top CAS and discard.
		r.put(b, nil)
	}
	d.bottom.Store(t + 1)
	return task
}

// steal removes the oldest task; safe from any thread. retry reports a lost
// CAS race (the caller may re-probe); (nil, false) means empty.
func (d *wsDeque) steal() (task *Task, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	r := d.ring.Load()
	task = r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return task, false
}
