package core

import "testing"

func TestCommutativeTasksUnorderedAmongThemselves(t *testing.T) {
	m := newMiniExec(4, true, 20)
	x := new(int)
	w := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(w)
	var comms []*Task
	for i := 0; i < 4; i++ {
		c := &Task{Accesses: []Access{{Key: x, Mode: Commutative}}}
		comms = append(comms, c)
		m.submit(c)
		if c.NPred() != 1 {
			t.Fatalf("commutative %d should depend only on the writer, npred=%d", i, c.NPred())
		}
	}
	m.runAll()
	_ = comms
}

func TestReaderAfterCommutativesWaitsForAll(t *testing.T) {
	m := newMiniExec(4, true, 21)
	x := new(int)
	m.submit(&Task{Accesses: []Access{{Key: x, Mode: Out}}})
	for i := 0; i < 3; i++ {
		m.submit(&Task{Accesses: []Access{{Key: x, Mode: Commutative}}})
	}
	r := &Task{Accesses: []Access{{Key: x, Mode: In}}}
	m.submit(r)
	// Reader depends on the 3 commutatives plus the (unfinished) writer.
	if r.NPred() != 4 {
		t.Fatalf("reader npred=%d, want 4", r.NPred())
	}
	m.runAll()
}

func TestWriterAfterCommutativesWaitsForAll(t *testing.T) {
	m := newMiniExec(4, true, 22)
	x := new(int)
	for i := 0; i < 3; i++ {
		m.submit(&Task{Accesses: []Access{{Key: x, Mode: Commutative}}})
	}
	w := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(w)
	if w.NPred() != 3 {
		t.Fatalf("writer npred=%d, want 3", w.NPred())
	}
	// After the writer, the commuter set resets: a new commutative
	// depends only on the writer.
	c := &Task{Accesses: []Access{{Key: x, Mode: Commutative}}}
	m.submit(c)
	if c.NPred() != 1 {
		t.Fatalf("post-write commutative npred=%d, want 1", c.NPred())
	}
	m.runAll()
}

func TestCommutativeAfterReadersIsWARProtected(t *testing.T) {
	m := newMiniExec(4, true, 23)
	x := new(int)
	m.submit(&Task{Accesses: []Access{{Key: x, Mode: Out}}})
	m.submit(&Task{Accesses: []Access{{Key: x, Mode: In}}})
	m.submit(&Task{Accesses: []Access{{Key: x, Mode: In}}})
	c := &Task{Accesses: []Access{{Key: x, Mode: Commutative}}}
	m.submit(c)
	// Depends on the writer and both readers (it may write).
	if c.NPred() != 3 {
		t.Fatalf("commutative npred=%d, want 3", c.NPred())
	}
	m.runAll()
}

func TestForgetDropsRecord(t *testing.T) {
	m := newMiniExec(1, true, 24)
	x := new(int)
	m.submit(&Task{Accesses: []Access{{Key: x, Mode: Out}}})
	m.g.Forget(x)
	b := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(b)
	if b.NPred() != 0 {
		t.Fatal("Forget should erase the dependence history")
	}
	m.runAll()
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		In: "in", Out: "out", InOut: "inout",
		Concurrent: "concurrent", Commutative: "commutative", Mode(99): "?",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}
