package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeOwnerLIFOStealFIFO checks the sequential contract: the owner
// pops newest-first, thieves take oldest-first.
func TestDequeOwnerLIFOStealFIFO(t *testing.T) {
	var d wsDeque
	d.init()
	ts := make([]*Task, 4)
	for i := range ts {
		ts[i] = &Task{ID: uint64(i)}
		d.pushBottom(ts[i])
	}
	if got, _ := d.steal(); got != ts[0] {
		t.Fatalf("steal got %v, want oldest (0)", got.ID)
	}
	if got := d.popBottom(); got != ts[3] {
		t.Fatalf("popBottom got %v, want newest (3)", got.ID)
	}
	if got := d.popBottom(); got != ts[2] {
		t.Fatalf("popBottom got %v, want 2", got.ID)
	}
	if got := d.popBottom(); got != ts[1] {
		t.Fatalf("popBottom got %v, want 1", got.ID)
	}
	if got := d.popBottom(); got != nil {
		t.Fatalf("popBottom on empty got %v", got.ID)
	}
	if got, retry := d.steal(); got != nil || retry {
		t.Fatal("steal on empty should report empty")
	}
}

// TestDequeGrowth pushes far past the initial ring size.
func TestDequeGrowth(t *testing.T) {
	var d wsDeque
	d.init()
	const n = 10000
	for i := 0; i < n; i++ {
		d.pushBottom(&Task{ID: uint64(i)})
	}
	if d.size() != n {
		t.Fatalf("size=%d, want %d", d.size(), n)
	}
	for i := n - 1; i >= 0; i-- {
		got := d.popBottom()
		if got == nil || got.ID != uint64(i) {
			t.Fatalf("pop %d got %v", i, got)
		}
	}
}

// TestDequeConcurrentStealExactlyOnce is the linearizability property the
// executor depends on: with one owner popping and many thieves stealing,
// every pushed task is consumed exactly once. Run under -race in CI.
func TestDequeConcurrentStealExactlyOnce(t *testing.T) {
	const (
		nTasks   = 20000
		nThieves = 4
	)
	var d wsDeque
	d.init()
	taken := make([]atomic.Int32, nTasks)
	var consumed atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nThieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk, retry := d.steal()
				if tk != nil {
					taken[tk.ID].Add(1)
					consumed.Add(1)
					continue
				}
				if !retry {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}()
	}
	// Owner: interleave pushes with occasional pops.
	for i := 0; i < nTasks; i++ {
		d.pushBottom(&Task{ID: uint64(i)})
		if i%3 == 0 {
			if tk := d.popBottom(); tk != nil {
				taken[tk.ID].Add(1)
				consumed.Add(1)
			}
		}
	}
	for consumed.Load() < nTasks {
		if tk := d.popBottom(); tk != nil {
			taken[tk.ID].Add(1)
			consumed.Add(1)
		}
	}
	close(stop)
	wg.Wait()
	for id := range taken {
		if n := taken[id].Load(); n != 1 {
			t.Fatalf("task %d consumed %d times", id, n)
		}
	}
}

// TestMPMCQueueExactlyOnce drives the global FIFO with concurrent producers
// and consumers: no task lost, none duplicated.
func TestMPMCQueueExactlyOnce(t *testing.T) {
	const (
		nProducers = 4
		nConsumers = 4
		perProd    = 5000
	)
	var q mpmcQueue
	q.init()
	total := nProducers * perProd
	taken := make([]atomic.Int32, total)
	var consumed atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < nProducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				q.enqueue(&Task{ID: uint64(p*perProd + i)})
			}
		}(p)
	}
	var cg sync.WaitGroup
	for c := 0; c < nConsumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for consumed.Load() < int64(total) {
				if tk := q.dequeue(); tk != nil {
					taken[tk.ID].Add(1)
					consumed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	for id := range taken {
		if n := taken[id].Load(); n != 1 {
			t.Fatalf("task %d consumed %d times", id, n)
		}
	}
	if q.dequeue() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestMPMCQueueFIFO checks order with a single producer/consumer.
func TestMPMCQueueFIFO(t *testing.T) {
	var q mpmcQueue
	q.init()
	for i := 0; i < 100; i++ {
		q.enqueue(&Task{ID: uint64(i)})
	}
	if q.length() != 100 {
		t.Fatalf("length=%d, want 100", q.length())
	}
	for i := 0; i < 100; i++ {
		tk := q.dequeue()
		if tk == nil || tk.ID != uint64(i) {
			t.Fatalf("dequeue %d got %v", i, tk)
		}
	}
}

// TestShardIndexConsistency: equal keys must hash to the same shard, and
// the shard must be in range, for every key kind the engine meets.
func TestShardIndexConsistency(t *testing.T) {
	x := new(int)
	y := "some-key"
	type exotic struct{ a, b int }
	keys := []any{x, 42, int64(7), uint32(9), y, 3.14, true, exotic{1, 2}, nil}
	for _, k := range keys {
		a, b := shardIndex(k), shardIndex(k)
		if a != b {
			t.Fatalf("key %v hashed inconsistently: %d vs %d", k, a, b)
		}
		if a >= numShards {
			t.Fatalf("key %v shard %d out of range", k, a)
		}
	}
	if shardIndex(x) != shardIndex(x) {
		t.Fatal("pointer key unstable")
	}
	// Distinct strings with equal content must collide (value hashing).
	s1 := "shared" + "key"
	s2 := "sharedkey"
	if shardIndex(s1) != shardIndex(s2) {
		t.Fatal("equal strings must share a shard")
	}
}
