package core

import (
	"sync"
	"sync/atomic"
)

// drec is the dependence record of one tracked object: the task that last
// (program-order) writes it, and the tasks that read it, commutatively
// updated it, or concurrently updated it since that write.
type drec struct {
	lastWriter  *Task
	readers     []*Task
	commuters   []*Task
	concurrents []*Task
	// pinned marks records interned by Register: a registered Datum holds a
	// direct pointer here, so Forget must reset the record in place instead
	// of dropping it from the shard map (a fresh map record would diverge
	// from the handle's).
	pinned bool
	// chain, when non-nil, makes the record renameable (see rename.go): the
	// accessor lists above are then unused — the chain's current version
	// carries them — and every access routes through wireChained. noRename
	// records an opt-out issued before any chain existed, so it survives
	// regardless of which handle later enables renaming.
	chain    *verChain
	noRename bool
}

// GraphStats counts dependence activity, for tests, tracing, and the
// benchmark harness.
type GraphStats struct {
	Submitted uint64
	Finished  uint64
	Edges     uint64 // dependence edges that actually delayed a task
	Inlined   uint64 // tasks executed inline (If(false) clause)
	Failed    uint64 // tasks finished with a non-nil error (incl. skipped)
	Skipped   uint64 // tasks released without running (failure policy / cancel)
	// Renaming activity (see rename.go): writes that got a fresh instance
	// instead of WAR/WAW edges, writes that stalled only because the
	// in-flight version cap was full, and instances copied back onto
	// canonical storage at chain drain.
	Renamed         uint64
	RenameFallbacks uint64
	Writebacks      uint64
}

// gshard is one shard of the dependence tracker: the datum and array-region
// records of every key hashing here, guarded by the shard mutex.
type gshard struct {
	mu      sync.Mutex
	datums  map[any]*drec
	regions map[any]*regionDatum // array-section dependences, by base
	_       [40]byte             // keep shard locks off each other's cache lines
}

// Datum is a pre-registered dependence key: the shard index and dependence
// record are resolved once at registration, so submissions using the handle
// skip the per-access interface hash and shard map lookup entirely. Obtain
// one with Graph.Register (exact keys) or Graph.RegisterRegion (array
// sections); handles are valid for the lifetime of the graph and safe for
// concurrent use. Mixing handle-based and raw-key accesses to the same key
// is safe — both resolve to the same record.
type Datum struct {
	// Key is the dependence key the handle stands for (a Region for
	// region handles); it is what traces, TaskwaitOn, and the simulated
	// memory model see.
	Key    any
	owner  *Graph // the graph whose records this handle caches
	shard  uint32
	rec    *drec        // exact-key record (nil for region handles)
	rd     *regionDatum // region record (nil for exact-key handles)
	region Region
	// chain is the handle's version chain once EnableRenaming ran (set
	// under the shard lock; also reachable through rec.chain / the region
	// record's span-chain table, which is what the submit path consults).
	chain *verChain
}

// Owner returns the graph this handle was registered on.
func (d *Datum) Owner() *Graph { return d.owner }

// Shard returns the dependence shard the handle's key hashes to (its
// affinity home, see Policy.HomeLane).
func (d *Datum) Shard() uint32 { return d.shard }

// IsRegion reports whether the handle names an array section.
func (d *Datum) IsRegion() bool { return d.rd != nil }

// Region returns the array section a region handle stands for (zero Region
// for exact-key handles).
func (d *Datum) Region() Region { return d.region }

// Graph tracks dataflow dependences between tasks. It is safe for
// concurrent use: per-datum records live in key-hashed shards with
// per-shard locks, Submit two-phase-locks the (few) shards a task's
// accesses hash to in ascending order, and Finish releases successors with
// a per-task lock plus atomic predecessor counts — never touching the
// shards. The simulator drives the same code serialized, where every lock
// is uncontended.
type Graph struct {
	shards     [numShards]gshard
	nextID     atomic.Uint64
	unfinished atomic.Int64 // submitted but not finished (all contexts)

	// Renaming policy (ConfigureRenaming): written once before the first
	// submission, read under shard locks afterwards.
	renameOn  bool
	renameCap int

	// probe, when non-nil, receives rename/writeback events (SetProbe;
	// written once before the first submission).
	probe Probe

	// tun, when non-nil, is the controller-written setpoint block
	// (SetTunables; installed once before the first submission). The rename
	// cap check reads it so the cap can adapt online.
	tun *Tunables

	stSubmitted       atomic.Uint64
	stFinished        atomic.Uint64
	stEdges           atomic.Uint64
	stInlined         atomic.Uint64
	stFailed          atomic.Uint64
	stSkipped         atomic.Uint64
	stRenamed         atomic.Uint64
	stRenameFallbacks atomic.Uint64
	stWritebacks      atomic.Uint64
}

// NewGraph returns an empty dependence graph.
func NewGraph() *Graph {
	g := &Graph{renameCap: DefaultMaxVersions}
	for i := range g.shards {
		g.shards[i].datums = make(map[any]*drec)
	}
	return g
}

// Stats returns a snapshot of the graph counters.
func (g *Graph) Stats() GraphStats {
	return GraphStats{
		Submitted:       g.stSubmitted.Load(),
		Finished:        g.stFinished.Load(),
		Edges:           g.stEdges.Load(),
		Inlined:         g.stInlined.Load(),
		Failed:          g.stFailed.Load(),
		Skipped:         g.stSkipped.Load(),
		Renamed:         g.stRenamed.Load(),
		RenameFallbacks: g.stRenameFallbacks.Load(),
		Writebacks:      g.stWritebacks.Load(),
	}
}

// Register interns key's dependence record and returns a handle that caches
// the shard index and record pointer, taking interface hashing and the map
// lookup off the submit path for every later access through the handle.
func (g *Graph) Register(key any) *Datum {
	if r, ok := key.(Region); ok {
		return g.RegisterRegion(r.Base, r.Lo, r.Hi)
	}
	si := shardIndex(key)
	sh := &g.shards[si]
	sh.mu.Lock()
	d := sh.datums[key]
	if d == nil {
		d = &drec{}
		sh.datums[key] = d
	}
	d.pinned = true
	sh.mu.Unlock()
	return &Datum{Key: key, owner: g, shard: si, rec: d}
}

// RegisterRegion interns the array-section record of base and returns a
// handle for the section [lo, hi). All sections of one base share a record;
// distinct handles over the same base still conflict only where their spans
// overlap.
func (g *Graph) RegisterRegion(base any, lo, hi int64) *Datum {
	r := Region{Base: base, Lo: lo, Hi: hi}
	si := shardIndex(base)
	sh := &g.shards[si]
	sh.mu.Lock()
	rd := sh.regions[base]
	if rd == nil {
		rd = &regionDatum{}
		if sh.regions == nil {
			sh.regions = make(map[any]*regionDatum)
		}
		sh.regions[base] = rd
	}
	rd.pinned = true
	sh.mu.Unlock()
	return &Datum{Key: r, owner: g, shard: si, rd: rd, region: r}
}

// Unfinished returns the number of in-flight tasks across all contexts.
func (g *Graph) Unfinished() int64 { return g.unfinished.Load() }

// shardFor returns the shard index a dependence key hashes to; Region keys
// shard by their base so all sections of one array share a shard.
func shardFor(key any) uint32 {
	if r, ok := key.(Region); ok {
		return shardIndex(r.Base)
	}
	return shardIndex(key)
}

// Submit registers t's accesses, wiring dependence edges from unfinished
// predecessors, and reports whether the task is immediately ready. The
// caller must enqueue ready tasks itself (scheduling is the executor's
// concern); a task whose last predecessor finishes mid-submission is
// instead returned by that predecessor's Finish. The task's parent context,
// if any, is charged one pending child.
func (g *Graph) Submit(t *Task) (ready bool) {
	g.initTask(t)

	// Two-phase locking: take every shard this task's keys hash to, in
	// ascending order. Holding them all for the whole wiring step makes
	// the submission atomic against other submitters sharing any datum,
	// so cross-datum edge direction stays consistent (no A→B on one datum
	// and B→A on another — which could deadlock the graph).
	var shardIdx [8]uint32
	shards := dedupeShards(collectShards(shardIdx[:0], t))
	for _, si := range shards {
		g.shards[si].mu.Lock()
	}
	g.wireTask(t)
	for i := len(shards) - 1; i >= 0; i-- {
		g.shards[shards[i]].mu.Unlock()
	}

	// Drop the submission guard. Whoever takes npred to zero — this
	// decrement, or a predecessor's Finish racing it — owns the release.
	if atomic.AddInt32(&t.npred, -1) == 0 {
		atomic.StoreInt32(&t.state, stateReady)
		return true
	}
	return false
}

// SubmitBatch registers a slice of tasks as one atomic submission: the union
// of every task's shards is locked once (ascending order, as in Submit) and
// the tasks are wired in slice order under that single acquisition, so
// intra-batch dependences resolve exactly as if the tasks had been submitted
// one by one, while the per-task lock/unlock cost is amortized across the
// batch. It returns the tasks that are immediately ready; the caller
// enqueues them (a task whose last predecessor finishes mid-batch is instead
// returned by that predecessor's Finish).
func (g *Graph) SubmitBatch(ts []*Task) (ready []*Task) {
	if len(ts) == 0 {
		return nil
	}
	for _, t := range ts {
		g.initTask(t)
	}
	var shardIdx [16]uint32
	shards := shardIdx[:0]
	for _, t := range ts {
		shards = collectShards(shards, t)
	}
	shards = dedupeShards(shards)
	for _, si := range shards {
		g.shards[si].mu.Lock()
	}
	for _, t := range ts {
		g.wireTask(t)
	}
	for i := len(shards) - 1; i >= 0; i-- {
		g.shards[shards[i]].mu.Unlock()
	}
	for _, t := range ts {
		if atomic.AddInt32(&t.npred, -1) == 0 {
			atomic.StoreInt32(&t.state, stateReady)
			ready = append(ready, t)
		}
	}
	return ready
}

// initTask assigns t its ID and completion channel and charges the graph and
// parent-context counters, leaving npred at 1 (the submission guard).
func (g *Graph) initTask(t *Task) {
	t.ID = g.nextID.Add(1)
	if t.done == nil {
		t.done = make(chan struct{})
	}
	atomic.StoreInt32(&t.state, stateCreated)
	// Submission guard: npred starts at 1 so concurrently finishing
	// predecessors can never release t before its edges are fully wired.
	atomic.StoreInt32(&t.npred, 1)
	g.stSubmitted.Add(1)
	g.unfinished.Add(1)
	if t.Parent != nil {
		t.Parent.add(1)
	}
}

// collectShards appends the shard index of each of t's accesses to dst.
func collectShards(dst []uint32, t *Task) []uint32 {
	for i := range t.Accesses {
		if d := t.Accesses[i].Datum; d != nil {
			dst = append(dst, d.shard)
		} else {
			dst = append(dst, shardFor(t.Accesses[i].Key))
		}
	}
	return dst
}

// dedupeShards returns the distinct shard indices in ascending order (the
// lock order), rewriting the input in place. Shard indices fit a uint64
// bitmap (see the compile-time guard), so this is one linear pass plus a
// bounded sweep — allocation-free on the submit hot path and O(n) for
// arbitrarily large batches.
func dedupeShards(shards []uint32) []uint32 {
	if len(shards) < 2 {
		return shards
	}
	var mask uint64
	for _, si := range shards {
		mask |= 1 << si
	}
	out := shards[:0]
	for si := uint32(0); si < numShards; si++ {
		if mask&(1<<si) != 0 {
			out = append(out, si)
		}
	}
	return out
}

// The bitmap in dedupeShards requires numShards <= 64.
var _ [64 - numShards]struct{}

// wireTask wires t's dependence edges from unfinished predecessors. Called
// with every shard t's accesses hash to already locked.
//
// Edges are deduplicated so a task sharing several data with one predecessor
// counts it once. The dedup set is a linear-scanned slice over a stack
// backing array: predecessor counts are small, and a per-submit map
// allocation is hot-path cost.
func (g *Graph) wireTask(t *Task) {
	var seenArr [16]*Task
	seen := seenArr[:0]
	addPred := func(p *Task) {
		if p == nil || p == t {
			return
		}
		for _, q := range seen {
			if q == p {
				return
			}
		}
		seen = append(seen, p)
		// Charge npred BEFORE publishing the edge: once t is in p.succs, a
		// concurrent Finish(p) may decrement at any moment, and the charge
		// must already be there or the decrement would eat the submission
		// guard and release t twice. The rollback can never hit zero — the
		// guard itself still holds npred above the transient charge.
		atomic.AddInt32(&t.npred, 1)
		if !p.addSucc(t) {
			atomic.AddInt32(&t.npred, -1)
			// p already finished: no edge to wait on, but its recorded
			// failure still reaches t — otherwise skip-vs-run would depend
			// on whether the predecessor finished a microsecond before or
			// after this submission. (addSucc observed the finished state
			// under p's succ lock, so p's outcome is visible here.)
			// Failures stay inside their domain: a cross-domain edge
			// orders execution but never imports the foreign error.
			if perr := p.Err(); perr != nil && sameDomain(p, t) {
				t.noteUpstream(perr)
			}
			return
		}
		t.Preds = append(t.Preds, p.ID)
		g.stEdges.Add(1)
	}

	for _, a := range t.Accesses {
		// Handle-backed accesses resolve to their pre-interned record with
		// no interface hash or map lookup — this is the Datum fast path.
		// A handle registered on a different graph (a cross-runtime mix-up)
		// must not inject that graph's records here: its cached shard index
		// is still valid (shardIndex is a pure function of the key), but
		// the record pointers are not, so it falls through to the
		// compatibility path below and resolves against this graph's maps.
		if h := a.Datum; h != nil && h.owner == g {
			if h.rd != nil {
				h.rd.submit(g, t, a, h.region, addPred)
			} else {
				g.wireRecord(h.rec, t, a.Mode, addPred)
			}
			continue
		}
		sh := &g.shards[shardFor(a.Key)]
		if r, ok := a.Key.(Region); ok {
			sh.regionRec(r.Base).submit(g, t, a, r, addPred)
			continue
		}
		d := sh.datums[a.Key]
		if d == nil {
			d = &drec{}
			sh.datums[a.Key] = d
		}
		g.wireRecord(d, t, a.Mode, addPred)
	}
}

// wireRecord wires one exact-key access: renameable records route through
// the version chain (rename.go), plain records through wireExact. Called
// with the owning shard lock held.
func (g *Graph) wireRecord(d *drec, t *Task, mode Mode, addPred func(*Task)) {
	if d.chain != nil {
		g.wireChained(d.chain, t, mode, addPred)
		return
	}
	wireExact(d, t, mode, addPred)
}

// wireExact wires the dependence edges of one exact-key access against the
// datum's record and updates it. Called with the owning shard lock held.
func wireExact(d *drec, t *Task, mode Mode, addPred func(*Task)) {
	switch mode {
	case In:
		addPred(d.lastWriter)
		for _, c := range d.commuters {
			addPred(c) // commutative updaters may write: RAW
		}
		for _, c := range d.concurrents {
			addPred(c) // concurrent updaters write: RAW
		}
		d.readers = append(d.readers, t)
	case Concurrent:
		// Concurrent tasks overlap each other, but as updaters they
		// order against every other access kind.
		addPred(d.lastWriter)
		for _, r := range d.readers {
			addPred(r) // WAR against plain readers
		}
		for _, c := range d.commuters {
			addPred(c)
		}
		d.concurrents = append(d.concurrents, t)
	case Commutative:
		addPred(d.lastWriter)
		for _, r := range d.readers {
			addPred(r) // WAR against plain readers
		}
		for _, c := range d.concurrents {
			addPred(c)
		}
		d.commuters = append(d.commuters, t)
	case Out, InOut:
		addPred(d.lastWriter)
		for _, r := range d.readers {
			addPred(r)
		}
		for _, c := range d.commuters {
			addPred(c)
		}
		for _, c := range d.concurrents {
			addPred(c)
		}
		d.lastWriter = t
		d.readers = nil
		d.commuters = nil
		d.concurrents = nil
		if mode == InOut {
			d.readers = append(d.readers, t)
		}
	}
}

// MarkRunning flags t as dispatched on the given worker.
func (g *Graph) MarkRunning(t *Task, worker int) {
	t.Worker = worker
	atomic.StoreInt32(&t.state, stateRunning)
}

// Finish completes t with the given outcome: records the error, closes the
// done channel, credits its parent context, propagates a non-nil error to
// every wired successor (first error wins — the skip-release path the
// executor's failure policy consults at dispatch), and returns the
// successors that became ready. The caller enqueues them. Safe concurrently
// with Submits wiring edges from t — the per-task succ lock decides each
// edge race, and the atomic npred decrement means exactly one finisher (or
// the submitter) releases each successor.
func (g *Graph) Finish(t *Task, err error) (newlyReady []*Task) {
	t.outcome = err
	// Release version bindings (and run any resulting writeback) BEFORE
	// successors and counters drop: a dependent released below — or a
	// taskwaiter that observes the counters — must also observe the
	// written-back canonical value. Never holds the succ lock, so the
	// shard → task lock order of Submit is preserved.
	if t.bindings != nil {
		g.releaseBindings(t, err)
	}
	succs := t.takeSuccsAndFinish()
	close(t.done)
	g.stFinished.Add(1)
	if err != nil {
		g.stFailed.Add(1)
		if t.Parent != nil {
			t.Parent.NoteErr(err)
		}
	}
	g.unfinished.Add(-1)
	if t.Parent != nil {
		t.Parent.add(-1)
	}
	if t.Domain != nil {
		t.Domain.taskFinished(err, t.Skipped())
	}
	for _, s := range succs {
		if err != nil && sameDomain(t, s) {
			// Publish the failure before dropping the predecessor count, so
			// whoever dispatches s observes it. Cross-domain edges order
			// execution but never carry failures: one session's error
			// cascade must not skip another session's tasks.
			s.noteUpstream(err)
		}
		if atomic.AddInt32(&s.npred, -1) == 0 {
			atomic.StoreInt32(&s.state, stateReady)
			newlyReady = append(newlyReady, s)
		}
	}
	return newlyReady
}

// CountInlined records a task executed inline (If(false)); it never enters
// the graph.
func (g *Graph) CountInlined() { g.stInlined.Add(1) }

// CountSkipped records a task the executor released without running its
// body (failure policy or cancellation).
func (g *Graph) CountSkipped() { g.stSkipped.Add(1) }

// LastWriter returns the unfinished task that is the current program-order
// last writer of key, or nil when the datum is untracked or its writer
// already finished. This is the `taskwait on` lookup.
func (g *Graph) LastWriter(key any) *Task {
	sh := &g.shards[shardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d := sh.datums[key]
	if d == nil {
		return nil
	}
	lw := d.lastWriter
	if d.chain != nil {
		lw = d.chain.cur.lastWriter
	}
	if lw == nil || lw.Finished() {
		return nil
	}
	return lw
}

// Forget drops the dependence records of key (both the exact-key datum and
// any array-section records based at key). Optional hygiene for
// long-running programs cycling through many distinct data objects.
// Records interned by Register stay alive (handles keep pointing at them)
// but are reset in place, so handle-based and raw-key accesses never
// diverge onto different records.
func (g *Graph) Forget(key any) {
	sh := &g.shards[shardIndex(key)]
	sh.mu.Lock()
	if d := sh.datums[key]; d != nil {
		switch {
		case d.chain != nil:
			// Chained records keep their chain (handles point at it); only
			// the accessor history is dropped. Call when the datum is idle —
			// live renamed instances are discarded without writeback.
			d.chain.collapse()
		case d.pinned:
			*d = drec{pinned: true}
		default:
			delete(sh.datums, key)
		}
	}
	if rd := sh.regions[key]; rd != nil {
		if rd.pinned {
			rd.segs = nil
		} else {
			delete(sh.regions, key)
		}
	}
	sh.mu.Unlock()
}

// Release drops a registered handle's dependence records from the graph
// entirely, map entries included, so a request-scoped arena can recycle
// wholesale at session close. Unlike Forget, the record is NOT kept alive
// for the handle: the handle — and any other handle or raw-key access over
// the same key — must not be used afterwards. Call only when every task
// that touched the key has finished; live renamed instances are discarded
// without writeback.
func (g *Graph) Release(d *Datum) {
	if d == nil || d.owner != g {
		return
	}
	sh := &g.shards[d.shard]
	sh.mu.Lock()
	if d.rd != nil {
		if cur := sh.regions[d.region.Base]; cur == d.rd {
			delete(sh.regions, d.region.Base)
		}
	} else if cur := sh.datums[d.Key]; cur == d.rec {
		if d.rec.chain != nil {
			d.rec.chain.collapse()
		}
		delete(sh.datums, d.Key)
	}
	sh.mu.Unlock()
}
