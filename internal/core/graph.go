package core

import (
	"sort"
	"sync"
	"sync/atomic"
)

// datum is the dependence record of one tracked object: the task that last
// (program-order) writes it, and the tasks that read it, commutatively
// updated it, or concurrently updated it since that write.
type datum struct {
	lastWriter  *Task
	readers     []*Task
	commuters   []*Task
	concurrents []*Task
}

// GraphStats counts dependence activity, for tests, tracing, and the
// benchmark harness.
type GraphStats struct {
	Submitted uint64
	Finished  uint64
	Edges     uint64 // dependence edges that actually delayed a task
	Inlined   uint64 // tasks executed inline (If(false) clause)
}

// gshard is one shard of the dependence tracker: the datum and array-region
// records of every key hashing here, guarded by the shard mutex.
type gshard struct {
	mu      sync.Mutex
	datums  map[any]*datum
	regions map[any]*regionDatum // array-section dependences, by base
	_       [40]byte             // keep shard locks off each other's cache lines
}

// Graph tracks dataflow dependences between tasks. It is safe for
// concurrent use: per-datum records live in key-hashed shards with
// per-shard locks, Submit two-phase-locks the (few) shards a task's
// accesses hash to in ascending order, and Finish releases successors with
// a per-task lock plus atomic predecessor counts — never touching the
// shards. The simulator drives the same code serialized, where every lock
// is uncontended.
type Graph struct {
	shards     [numShards]gshard
	nextID     atomic.Uint64
	unfinished atomic.Int64 // submitted but not finished (all contexts)

	stSubmitted atomic.Uint64
	stFinished  atomic.Uint64
	stEdges     atomic.Uint64
	stInlined   atomic.Uint64
}

// NewGraph returns an empty dependence graph.
func NewGraph() *Graph {
	g := &Graph{}
	for i := range g.shards {
		g.shards[i].datums = make(map[any]*datum)
	}
	return g
}

// Stats returns a snapshot of the graph counters.
func (g *Graph) Stats() GraphStats {
	return GraphStats{
		Submitted: g.stSubmitted.Load(),
		Finished:  g.stFinished.Load(),
		Edges:     g.stEdges.Load(),
		Inlined:   g.stInlined.Load(),
	}
}

// Unfinished returns the number of in-flight tasks across all contexts.
func (g *Graph) Unfinished() int64 { return g.unfinished.Load() }

// shardFor returns the shard index a dependence key hashes to; Region keys
// shard by their base so all sections of one array share a shard.
func shardFor(key any) uint32 {
	if r, ok := key.(Region); ok {
		return shardIndex(r.Base)
	}
	return shardIndex(key)
}

// Submit registers t's accesses, wiring dependence edges from unfinished
// predecessors, and reports whether the task is immediately ready. The
// caller must enqueue ready tasks itself (scheduling is the executor's
// concern); a task whose last predecessor finishes mid-submission is
// instead returned by that predecessor's Finish. The task's parent context,
// if any, is charged one pending child.
func (g *Graph) Submit(t *Task) (ready bool) {
	t.ID = g.nextID.Add(1)
	t.done = make(chan struct{})
	atomic.StoreInt32(&t.state, stateCreated)
	// Submission guard: npred starts at 1 so concurrently finishing
	// predecessors can never release t before its edges are fully wired.
	atomic.StoreInt32(&t.npred, 1)
	g.stSubmitted.Add(1)
	g.unfinished.Add(1)
	if t.Parent != nil {
		t.Parent.add(1)
	}

	// Two-phase locking: take every shard this task's keys hash to, in
	// ascending order. Holding them all for the whole wiring step makes
	// the submission atomic against other submitters sharing any datum,
	// so cross-datum edge direction stays consistent (no A→B on one datum
	// and B→A on another — which could deadlock the graph).
	var shardIdx [8]uint32
	shards := shardIdx[:0]
	for _, a := range t.Accesses {
		shards = append(shards, shardFor(a.Key))
	}
	if len(shards) > 1 {
		sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] })
		uniq := shards[:1]
		for _, si := range shards[1:] {
			if si != uniq[len(uniq)-1] {
				uniq = append(uniq, si)
			}
		}
		shards = uniq
	}
	for _, si := range shards {
		g.shards[si].mu.Lock()
	}

	// Wire edges from unfinished predecessors, deduplicated so a task
	// sharing several data with one predecessor counts it once.
	seen := map[*Task]struct{}{t: {}}
	addPred := func(p *Task) {
		if p == nil {
			return
		}
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		// Charge npred BEFORE publishing the edge: once t is in p.succs, a
		// concurrent Finish(p) may decrement at any moment, and the charge
		// must already be there or the decrement would eat the submission
		// guard and release t twice. The rollback can never hit zero — the
		// guard itself still holds npred above the transient charge.
		atomic.AddInt32(&t.npred, 1)
		if !p.addSucc(t) {
			atomic.AddInt32(&t.npred, -1)
			return // p already finished: no edge
		}
		t.Preds = append(t.Preds, p.ID)
		g.stEdges.Add(1)
	}

	for _, a := range t.Accesses {
		sh := &g.shards[shardFor(a.Key)]
		if r, ok := a.Key.(Region); ok {
			sh.submitRegion(t, a, r, addPred)
			continue
		}
		d := sh.datums[a.Key]
		if d == nil {
			d = &datum{}
			sh.datums[a.Key] = d
		}
		switch a.Mode {
		case In:
			addPred(d.lastWriter)
			for _, c := range d.commuters {
				addPred(c) // commutative updaters may write: RAW
			}
			for _, c := range d.concurrents {
				addPred(c) // concurrent updaters write: RAW
			}
			d.readers = append(d.readers, t)
		case Concurrent:
			// Concurrent tasks overlap each other, but as updaters they
			// order against every other access kind.
			addPred(d.lastWriter)
			for _, r := range d.readers {
				addPred(r) // WAR against plain readers
			}
			for _, c := range d.commuters {
				addPred(c)
			}
			d.concurrents = append(d.concurrents, t)
		case Commutative:
			addPred(d.lastWriter)
			for _, r := range d.readers {
				addPred(r) // WAR against plain readers
			}
			for _, c := range d.concurrents {
				addPred(c)
			}
			d.commuters = append(d.commuters, t)
		case Out, InOut:
			addPred(d.lastWriter)
			for _, r := range d.readers {
				addPred(r)
			}
			for _, c := range d.commuters {
				addPred(c)
			}
			for _, c := range d.concurrents {
				addPred(c)
			}
			d.lastWriter = t
			d.readers = nil
			d.commuters = nil
			d.concurrents = nil
			if a.Mode == InOut {
				d.readers = append(d.readers, t)
			}
		}
	}
	for i := len(shards) - 1; i >= 0; i-- {
		g.shards[shards[i]].mu.Unlock()
	}

	// Drop the submission guard. Whoever takes npred to zero — this
	// decrement, or a predecessor's Finish racing it — owns the release.
	if atomic.AddInt32(&t.npred, -1) == 0 {
		atomic.StoreInt32(&t.state, stateReady)
		return true
	}
	return false
}

// MarkRunning flags t as dispatched on the given worker.
func (g *Graph) MarkRunning(t *Task, worker int) {
	t.Worker = worker
	atomic.StoreInt32(&t.state, stateRunning)
}

// Finish completes t: closes its done channel, credits its parent context,
// and returns the successors that became ready. The caller enqueues them.
// Safe concurrently with Submits wiring edges from t — the per-task succ
// lock decides each edge race, and the atomic npred decrement means exactly
// one finisher (or the submitter) releases each successor.
func (g *Graph) Finish(t *Task) (newlyReady []*Task) {
	succs := t.takeSuccsAndFinish()
	close(t.done)
	g.stFinished.Add(1)
	g.unfinished.Add(-1)
	if t.Parent != nil {
		t.Parent.add(-1)
	}
	for _, s := range succs {
		if atomic.AddInt32(&s.npred, -1) == 0 {
			atomic.StoreInt32(&s.state, stateReady)
			newlyReady = append(newlyReady, s)
		}
	}
	return newlyReady
}

// CountInlined records a task executed inline (If(false)); it never enters
// the graph.
func (g *Graph) CountInlined() { g.stInlined.Add(1) }

// LastWriter returns the unfinished task that is the current program-order
// last writer of key, or nil when the datum is untracked or its writer
// already finished. This is the `taskwait on` lookup.
func (g *Graph) LastWriter(key any) *Task {
	sh := &g.shards[shardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d := sh.datums[key]
	if d == nil || d.lastWriter == nil || d.lastWriter.Finished() {
		return nil
	}
	return d.lastWriter
}

// Forget drops the dependence records of key (both the exact-key datum and
// any array-section records based at key). Optional hygiene for
// long-running programs cycling through many distinct data objects.
func (g *Graph) Forget(key any) {
	sh := &g.shards[shardIndex(key)]
	sh.mu.Lock()
	delete(sh.datums, key)
	delete(sh.regions, key)
	sh.mu.Unlock()
}
