package core

import "sync/atomic"

// datum is the dependence record of one tracked object: the task that last
// (program-order) writes it, the tasks that read it since that write, and
// the commutative updaters since the last write.
type datum struct {
	lastWriter *Task
	readers    []*Task
	commuters  []*Task
}

// GraphStats counts dependence activity, for tests, tracing, and the
// benchmark harness.
type GraphStats struct {
	Submitted uint64
	Finished  uint64
	Edges     uint64 // dependence edges that actually delayed a task
	Inlined   uint64 // tasks executed inline (If(false) clause)
}

// Graph tracks dataflow dependences between tasks. All methods must be
// called with the owning executor's exclusion in place (a scheduler lock
// natively; event-serialization in the simulator).
type Graph struct {
	datums     map[any]*datum
	regions    map[any]*regionDatum // array-section dependences, by base
	nextID     uint64
	unfinished int64 // atomic: submitted but not finished (all contexts)
	stats      GraphStats
}

// NewGraph returns an empty dependence graph.
func NewGraph() *Graph {
	return &Graph{datums: make(map[any]*datum)}
}

// Stats returns a copy of the graph counters.
func (g *Graph) Stats() GraphStats { return g.stats }

// Unfinished returns the number of in-flight tasks across all contexts. Safe
// without the engine lock.
func (g *Graph) Unfinished() int64 { return atomic.LoadInt64(&g.unfinished) }

// Submit registers t's accesses, wiring dependence edges from unfinished
// predecessors, and reports whether the task is immediately ready. The
// caller must enqueue ready tasks itself (scheduling is the executor's
// concern). The task's parent context, if any, is charged one pending child.
func (g *Graph) Submit(t *Task) (ready bool) {
	g.nextID++
	t.ID = g.nextID
	t.done = make(chan struct{})
	t.state = stateCreated
	g.stats.Submitted++
	atomic.AddInt64(&g.unfinished, 1)
	if t.Parent != nil {
		t.Parent.add(1)
	}

	// Wire edges from unfinished predecessors, deduplicated so a task
	// sharing several data with one predecessor counts it once.
	seen := map[*Task]struct{}{t: {}}
	addPred := func(p *Task) {
		if p == nil || p.Finished() {
			return
		}
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		p.succs = append(p.succs, t)
		t.npred++
		t.Preds = append(t.Preds, p.ID)
		g.stats.Edges++
	}

	for _, a := range t.Accesses {
		if r, ok := a.Key.(Region); ok {
			g.submitRegion(t, a, r, addPred)
			continue
		}
		d := g.datums[a.Key]
		if d == nil {
			d = &datum{}
			g.datums[a.Key] = d
		}
		switch a.Mode {
		case In, Concurrent:
			addPred(d.lastWriter)
			for _, c := range d.commuters {
				addPred(c) // commutative updaters may write: RAW
			}
			d.readers = append(d.readers, t)
		case Commutative:
			addPred(d.lastWriter)
			for _, r := range d.readers {
				addPred(r) // WAR against plain readers
			}
			d.commuters = append(d.commuters, t)
		case Out, InOut:
			addPred(d.lastWriter)
			for _, r := range d.readers {
				addPred(r)
			}
			for _, c := range d.commuters {
				addPred(c)
			}
			d.lastWriter = t
			d.readers = nil
			d.commuters = nil
			if a.Mode == InOut {
				d.readers = append(d.readers, t)
			}
		}
	}
	if t.npred == 0 {
		atomic.StoreInt32(&t.state, stateReady)
		return true
	}
	return false
}

// MarkRunning flags t as dispatched on the given worker.
func (g *Graph) MarkRunning(t *Task, worker int) {
	t.Worker = worker
	atomic.StoreInt32(&t.state, stateRunning)
}

// Finish completes t: closes its done channel, credits its parent context,
// and returns the successors that became ready. The caller enqueues them.
func (g *Graph) Finish(t *Task) (newlyReady []*Task) {
	atomic.StoreInt32(&t.state, stateFinished)
	close(t.done)
	g.stats.Finished++
	atomic.AddInt64(&g.unfinished, -1)
	if t.Parent != nil {
		t.Parent.add(-1)
	}
	for _, s := range t.succs {
		s.npred--
		if s.npred == 0 {
			atomic.StoreInt32(&s.state, stateReady)
			newlyReady = append(newlyReady, s)
		}
	}
	t.succs = nil
	return newlyReady
}

// CountInlined records a task executed inline (If(false)); it never enters
// the graph.
func (g *Graph) CountInlined() { g.stats.Inlined++ }

// LastWriter returns the unfinished task that is the current program-order
// last writer of key, or nil when the datum is untracked or its writer
// already finished. This is the `taskwait on` lookup.
func (g *Graph) LastWriter(key any) *Task {
	d := g.datums[key]
	if d == nil || d.lastWriter == nil || d.lastWriter.Finished() {
		return nil
	}
	return d.lastWriter
}

// Forget drops the dependence record of key. Optional hygiene for
// long-running programs cycling through many distinct data objects.
func (g *Graph) Forget(key any) { delete(g.datums, key) }
