package core

import (
	"errors"
	"testing"
)

// renameFixture builds a renaming-enabled graph over one int64 cell.
type renameFixture struct {
	g     *Graph
	d     *Datum
	cell  int64
	alloc int // instances allocated (pool misses)
}

func newRenameFixture(enabled bool, cap_ int) *renameFixture {
	f := &renameFixture{g: NewGraph()}
	f.g.ConfigureRenaming(Renaming{Enabled: enabled, MaxVersions: cap_})
	f.d = f.g.Register(&f.cell)
	f.d.EnableRenaming(&f.cell, func() any {
		f.alloc++
		return new(int64)
	}, func(dst, src any) { *dst.(*int64) = *src.(*int64) })
	return f
}

func (f *renameFixture) task(mode Mode) *Task {
	return &Task{Accesses: []Access{{Key: &f.cell, Mode: mode, Datum: f.d}}}
}

func (f *renameFixture) finish(t *Task, err error) []*Task { return f.g.Finish(t, err) }

func TestRenameOutSkipsWARAndWAW(t *testing.T) {
	f := newRenameFixture(true, 4)

	r1 := f.task(In)
	if !f.g.Submit(r1) {
		t.Fatal("first reader should be ready")
	}
	w1 := f.task(Out)
	if !f.g.Submit(w1) {
		t.Fatal("Out writer blocked on a reader: WAR should have been renamed away")
	}
	// WAW: a second Out writer while w1 is still unfinished.
	w2 := f.task(Out)
	if !f.g.Submit(w2) {
		t.Fatal("Out writer blocked on an unfinished writer: WAW should have been renamed away")
	}
	if got := f.g.Stats().Renamed; got != 2 {
		t.Fatalf("Renamed = %d, want 2", got)
	}
	// The reader still sees the canonical instance; each writer got its own.
	p1 := f.d.PayloadFor(w1).(*int64)
	p2 := f.d.PayloadFor(w2).(*int64)
	if p1 == &f.cell || p2 == &f.cell || p1 == p2 {
		t.Fatal("writers must have distinct private instances")
	}
	if f.d.PayloadFor(r1).(*int64) != &f.cell {
		t.Fatal("pending reader must keep the canonical instance")
	}
}

func TestRenameWritebackAndReclaim(t *testing.T) {
	f := newRenameFixture(true, 4)
	f.cell = 7

	r := f.task(In)
	f.g.Submit(r)
	w := f.task(Out)
	f.g.Submit(w)
	*f.d.PayloadFor(w).(*int64) = 42
	f.finish(w, nil)
	if f.cell != 7 {
		t.Fatalf("writeback ran while the reader was still in flight: cell = %d", f.cell)
	}
	if got := f.d.PayloadFor(r).(*int64); *got != 7 {
		t.Fatalf("reader's instance = %d, want the old value 7", *got)
	}
	f.finish(r, nil)
	if f.cell != 42 {
		t.Fatalf("after full drain cell = %d, want the written-back 42", f.cell)
	}
	if got := f.g.Stats().Writebacks; got != 1 {
		t.Fatalf("Writebacks = %d, want 1", got)
	}

	// A later round must reuse the reclaimed instance, not allocate.
	allocs := f.alloc
	r2, w2 := f.task(In), f.task(Out)
	f.g.Submit(r2)
	f.g.Submit(w2)
	if f.alloc != allocs {
		t.Fatalf("second round allocated a fresh instance (pool not reused): %d -> %d", allocs, f.alloc)
	}
	f.finish(r2, nil)
	f.finish(w2, nil)
}

func TestRenameInOutKeepsRAWBreaksWAR(t *testing.T) {
	f := newRenameFixture(true, 4)
	f.cell = 5

	w1 := f.task(Out)
	f.g.Submit(w1)
	r := f.task(In)
	if f.g.Submit(r) {
		t.Fatal("reader must still wait for the writer (RAW is true)")
	}
	// An InOut writer behind the pending reader: the WAR is renamed away,
	// but its copy-in needs w1's value, so the RAW on w1 must remain.
	u := f.task(InOut)
	if f.g.Submit(u) {
		t.Fatal("renamed InOut must keep the RAW edge on the unfinished writer")
	}
	if got := f.g.Stats().Renamed; got != 1 {
		t.Fatalf("Renamed = %d, want 1 (the InOut)", got)
	}
	*f.d.PayloadFor(w1).(*int64) = 11
	f.finish(w1, nil)
	if !u.Finished() && u.NPred() != 0 {
		t.Fatalf("InOut still has %d preds after the writer finished", u.NPred())
	}
	// Copy-in seeds the InOut's private instance with w1's output.
	p := f.d.PayloadFor(u).(*int64)
	if *p != 11 {
		t.Fatalf("InOut copy-in saw %d, want 11", *p)
	}
	*p += 100
	f.finish(u, nil)
	f.finish(r, nil)
	if f.cell != 111 {
		t.Fatalf("final cell = %d, want 111", f.cell)
	}
}

func TestRenameCapFallsBack(t *testing.T) {
	f := newRenameFixture(true, 2)

	// A pending reader per round keeps every version alive.
	var held []*Task
	for i := 0; i < 2; i++ {
		r := f.task(In)
		f.g.Submit(r)
		held = append(held, r)
		w := f.task(Out)
		if !f.g.Submit(w) {
			t.Fatalf("round %d writer should have renamed", i)
		}
		held = append(held, w)
		r2 := f.task(In)
		f.g.Submit(r2) // pins the renamed instance
		held = append(held, r2)
	}
	w3 := f.task(Out)
	if f.g.Submit(w3) {
		t.Fatal("third writer exceeded the cap and must stall on its WAR/WAW edges")
	}
	st := f.g.Stats()
	if st.Renamed != 2 || st.RenameFallbacks != 1 {
		t.Fatalf("Renamed=%d RenameFallbacks=%d, want 2 and 1", st.Renamed, st.RenameFallbacks)
	}
	for _, h := range held {
		f.finish(h, nil)
	}
	f.finish(w3, nil)
}

func TestRenameDisabledAndNoRename(t *testing.T) {
	for _, tc := range []struct {
		name string
		fix  func() *renameFixture
	}{
		{"knob-off", func() *renameFixture { return newRenameFixture(false, 4) }},
		{"no-rename", func() *renameFixture {
			f := newRenameFixture(true, 4)
			f.d.NoRename()
			return f
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.fix()
			r := f.task(In)
			f.g.Submit(r)
			w := f.task(Out)
			if f.g.Submit(w) {
				t.Fatal("writer must stall on the WAR edge")
			}
			if f.g.Stats().Renamed != 0 {
				t.Fatal("nothing should have renamed")
			}
			// In-place semantics: the writer is bound to the canonical cell.
			if f.d.PayloadFor(w).(*int64) != &f.cell {
				t.Fatal("non-renamed writer must write the canonical instance")
			}
			f.finish(r, nil)
			f.finish(w, nil)
		})
	}
}

func TestRenameFailedWriterNotWrittenBack(t *testing.T) {
	f := newRenameFixture(true, 4)
	f.cell = 9

	r := f.task(In)
	f.g.Submit(r)
	w := f.task(Out)
	f.g.Submit(w)
	*f.d.PayloadFor(w).(*int64) = 1000
	f.finish(w, errors.New("boom"))
	f.finish(r, nil)
	if f.cell != 9 {
		t.Fatalf("poisoned instance written back: cell = %d, want 9", f.cell)
	}
	if f.g.Stats().Writebacks != 0 {
		t.Fatal("no writeback expected for a poisoned instance")
	}
	// The chain must have collapsed and stayed usable.
	w2 := f.task(Out)
	f.g.Submit(w2)
	*f.d.PayloadFor(w2).(*int64) = 33
	f.finish(w2, nil)
	if f.cell != 33 {
		t.Fatalf("post-failure round: cell = %d, want 33", f.cell)
	}
}

func TestRenameWritersFlushSet(t *testing.T) {
	f := newRenameFixture(true, 4)
	r := f.task(In)
	f.g.Submit(r)
	w := f.task(Out)
	f.g.Submit(w)
	ws := f.g.Writers(&f.cell)
	if len(ws) != 2 {
		t.Fatalf("Writers over a renamed datum = %d tasks, want both live accessors", len(ws))
	}
	f.finish(r, nil)
	f.finish(w, nil)
	if got := f.g.Writers(&f.cell); len(got) != 0 {
		t.Fatalf("Writers after drain = %d, want 0", len(got))
	}
}

// Region tiles: renaming is granular to the registered span and seals on
// mixed-discipline overlap.
func TestRenameRegionTileAndSeal(t *testing.T) {
	g := NewGraph()
	g.ConfigureRenaming(Renaming{Enabled: true})
	buf := make([]int64, 2)
	tile := g.RegisterRegion(&buf[0], 0, 1)
	tile.EnableRenaming(&buf[0], func() any { return new(int64) },
		func(dst, src any) { *dst.(*int64) = *src.(*int64) })

	taskOn := func(d *Datum, mode Mode) *Task {
		return &Task{Accesses: []Access{{Key: d.Key, Mode: mode, Datum: d}}}
	}

	r := taskOn(tile, In)
	g.Submit(r)
	w := taskOn(tile, Out)
	if !g.Submit(w) {
		t.Fatal("tile writer behind a tile reader should have renamed")
	}
	*tile.PayloadFor(w).(*int64) = 5

	// A raw access overlapping the tile with a different span: must seal
	// the chain and wait for every live instance accessor.
	raw := &Task{Accesses: []Access{{Key: Region{Base: &buf[0], Lo: 0, Hi: 2}, Mode: In}}}
	if g.Submit(raw) {
		t.Fatal("overlapping raw reader must wait for the live tile instances")
	}
	if tile.Renameable() {
		t.Fatal("mixed-discipline overlap must seal the chain")
	}
	g.Finish(w, nil)
	if raw.NPred() != 1 {
		t.Fatalf("raw reader preds = %d, want 1 (the tile reader)", raw.NPred())
	}
	g.Finish(r, nil)
	if !raw.Finished() && raw.NPred() != 0 {
		t.Fatal("raw reader should be released after the chain drained")
	}
	// Writeback happened before the raw reader was released.
	if buf[0] != 5 {
		t.Fatalf("canonical tile = %d, want the written-back 5", buf[0])
	}
	g.Finish(raw, nil)

	// Sealed chain: later tile writes stall like ordinary region writes.
	r2 := taskOn(tile, In)
	g.Submit(r2)
	w2 := taskOn(tile, Out)
	if g.Submit(w2) {
		t.Fatal("sealed tile writer must stall on the WAR edge")
	}
	g.Finish(r2, nil)
	g.Finish(w2, nil)
}

// The review scenario behind prefix-writeback: a successful write must
// survive a LATER writer's failure even when the successful instance
// drains first — program order's newest good value wins, not the
// pre-chain value.
func TestRenameLastGoodValueSurvivesLaterFailure(t *testing.T) {
	f := newRenameFixture(true, 4)
	f.cell = 1

	r0 := f.task(In) // pins the canonical instance
	f.g.Submit(r0)
	w1 := f.task(Out)
	f.g.Submit(w1)
	*f.d.PayloadFor(w1).(*int64) = 42
	r1 := f.task(In) // pins w1's instance
	f.g.Submit(r1)
	w2 := f.task(Out)
	f.g.Submit(w2)
	if got := f.g.Stats().Renamed; got != 2 {
		t.Fatalf("Renamed = %d, want 2", got)
	}
	f.finish(w1, nil)
	f.finish(r1, nil) // w1's instance fully drained while w2 is still live
	f.finish(w2, errors.New("boom"))
	f.finish(r0, nil)
	if f.cell != 42 {
		t.Fatalf("canonical = %d, want 42: the last successful write must be published, not the pre-chain value", f.cell)
	}
}

// Failure-propagation semantics renaming trades away (pinned, and
// documented on WithRenaming): a renamed Out writer has no edge to the
// failed program-order predecessor and therefore no upstream error; a
// renamed InOut keeps its true RAW and inherits it.
func TestRenameFailurePropagationFollowsRemainingEdges(t *testing.T) {
	f := newRenameFixture(true, 4)
	w1 := f.task(Out)
	f.g.Submit(w1)
	r := f.task(In)
	f.g.Submit(r)
	w2 := f.task(Out) // renames: WAR and WAW both gone
	if !f.g.Submit(w2) {
		t.Fatal("renamed Out should be immediately ready")
	}
	u := f.task(InOut) // renames reader-WAR, keeps RAW on w2
	f.g.Submit(u)
	f.finish(w1, errors.New("boom"))
	if w2.Upstream() != nil {
		t.Fatal("renamed Out must not inherit a failure through the broken WAW edge")
	}
	f.finish(w2, errors.New("later boom"))
	if u.Upstream() == nil {
		t.Fatal("renamed InOut must inherit its RAW predecessor's failure")
	}
	f.finish(u, u.Upstream())
	f.finish(r, nil)
}

// NoRename must stick to the datum, not the handle: opting out through
// one handle before another handle enables renaming still disables it.
func TestRenameNoRenameSurvivesHandleAdoption(t *testing.T) {
	g := NewGraph()
	g.ConfigureRenaming(Renaming{Enabled: true})
	var cell int64
	h1 := g.Register(&cell)
	h1.NoRename()
	h2 := g.Register(&cell)
	h2.EnableRenaming(&cell, func() any { return new(int64) },
		func(dst, src any) { *dst.(*int64) = *src.(*int64) })
	if h2.Renameable() {
		t.Fatal("h1's NoRename was lost when h2 built the chain")
	}
	r := &Task{Accesses: []Access{{Key: &cell, Mode: In, Datum: h2}}}
	g.Submit(r)
	w := &Task{Accesses: []Access{{Key: &cell, Mode: Out, Datum: h2}}}
	if g.Submit(w) {
		t.Fatal("opted-out datum must stall on the WAR edge")
	}
	g.Finish(r, nil)
	g.Finish(w, nil)

	// And the reverse adoption: NoRename through a handle that did not
	// build the chain.
	var cell2 int64
	a := g.Register(&cell2).EnableRenaming(&cell2, func() any { return new(int64) },
		func(dst, src any) { *dst.(*int64) = *src.(*int64) })
	b := g.Register(&cell2)
	b.NoRename()
	if a.Renameable() {
		t.Fatal("NoRename through a sibling handle must reach the shared chain")
	}
}

func TestRenameNoConflictNoRename(t *testing.T) {
	f := newRenameFixture(true, 4)
	w := f.task(Out)
	f.g.Submit(w)
	f.finish(w, nil)
	w2 := f.task(Out)
	f.g.Submit(w2)
	f.finish(w2, nil)
	if got := f.g.Stats().Renamed; got != 0 {
		t.Fatalf("Renamed = %d, want 0: conflict-free writes must not churn instances", got)
	}
}
