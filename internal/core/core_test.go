package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// miniExec drives Graph+Sched single-threaded, popping from pseudo-random
// workers, and returns the execution order. It is the smallest legal
// executor and mirrors what ompss's executors do under their locks.
type miniExec struct {
	g       *Graph
	s       *Sched
	rng     *rand.Rand
	order   []*Task
	workers int
}

func newMiniExec(workers int, locality bool, seed int64) *miniExec {
	return &miniExec{
		g:       NewGraph(),
		s:       NewSched(workers, Policy{Locality: locality, Affinity: true}, seed),
		rng:     rand.New(rand.NewSource(seed)),
		workers: workers,
	}
}

func (m *miniExec) submit(t *Task) {
	if m.g.Submit(t) {
		m.s.PushSubmit(t)
	}
}

func (m *miniExec) runAll() {
	for m.g.Unfinished() > 0 {
		w := m.rng.Intn(m.workers)
		t := m.s.Pop(w)
		if t == nil {
			continue
		}
		m.g.MarkRunning(t, w)
		var err error
		if t.Body != nil {
			err = t.Body()
		}
		m.order = append(m.order, t)
		for _, r := range m.g.Finish(t, err) {
			m.s.PushReady(r, w)
		}
	}
}

func pos(order []*Task, t *Task) int {
	for i, o := range order {
		if o == t {
			return i
		}
	}
	return -1
}

func TestIndependentTasksAllReady(t *testing.T) {
	m := newMiniExec(4, true, 1)
	var tasks []*Task
	for i := 0; i < 10; i++ {
		x := new(int)
		tk := &Task{Accesses: []Access{{Key: x, Mode: InOut}}}
		tasks = append(tasks, tk)
		if !m.g.Submit(tk) {
			t.Fatalf("task %d on private datum should be ready", i)
		}
		m.s.PushSubmit(tk)
	}
	m.runAll()
	if len(m.order) != 10 {
		t.Fatalf("executed %d, want 10", len(m.order))
	}
	for _, tk := range tasks {
		if !tk.Finished() {
			t.Fatal("unfinished task after runAll")
		}
	}
}

func TestRAWChainSerializes(t *testing.T) {
	m := newMiniExec(4, true, 2)
	x := new(int)
	var ts []*Task
	val := 0
	for i := 0; i < 8; i++ {
		i := i
		tk := &Task{
			Label:    fmt.Sprint(i),
			Accesses: []Access{{Key: x, Mode: InOut}},
			Body: func() error {
				if val != i {
					t.Errorf("task %d saw val=%d", i, val)
				}
				val++
				return nil
			},
		}
		ts = append(ts, tk)
		m.submit(tk)
	}
	m.runAll()
	for i := 1; i < len(ts); i++ {
		if pos(m.order, ts[i-1]) > pos(m.order, ts[i]) {
			t.Fatalf("chain order violated at %d", i)
		}
	}
}

func TestReadersShareAfterWriter(t *testing.T) {
	m := newMiniExec(4, true, 3)
	x := new(int)
	w := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(w)
	var readers []*Task
	for i := 0; i < 4; i++ {
		r := &Task{Accesses: []Access{{Key: x, Mode: In}}}
		readers = append(readers, r)
		m.submit(r)
		if r.NPred() != 1 {
			t.Fatalf("reader should depend only on writer, npred=%d", r.NPred())
		}
	}
	w2 := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(w2)
	if w2.NPred() != 5 {
		t.Fatalf("second writer should wait for writer+4 readers, npred=%d", w2.NPred())
	}
	m.runAll()
	for _, r := range readers {
		if pos(m.order, r) < pos(m.order, w) || pos(m.order, r) > pos(m.order, w2) {
			t.Fatal("reader escaped its writer window")
		}
	}
}

func TestWAWOrder(t *testing.T) {
	m := newMiniExec(2, true, 4)
	x := new(int)
	a := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	b := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(a)
	m.submit(b)
	if b.NPred() != 1 {
		t.Fatalf("WAW edge missing, npred=%d", b.NPred())
	}
	m.runAll()
	if pos(m.order, a) > pos(m.order, b) {
		t.Fatal("WAW order violated")
	}
}

func TestDiamond(t *testing.T) {
	m := newMiniExec(4, true, 5)
	x, y, z := new(int), new(int), new(int)
	top := &Task{Label: "top", Accesses: []Access{{Key: x, Mode: Out}}}
	l := &Task{Label: "l", Accesses: []Access{{Key: x, Mode: In}, {Key: y, Mode: Out}}}
	r := &Task{Label: "r", Accesses: []Access{{Key: x, Mode: In}, {Key: z, Mode: Out}}}
	bot := &Task{Label: "bot", Accesses: []Access{{Key: y, Mode: In}, {Key: z, Mode: In}}}
	for _, tk := range []*Task{top, l, r, bot} {
		m.submit(tk)
	}
	if bot.NPred() != 2 {
		t.Fatalf("bottom npred=%d, want 2", bot.NPred())
	}
	m.runAll()
	if pos(m.order, top) > pos(m.order, l) || pos(m.order, top) > pos(m.order, r) ||
		pos(m.order, bot) < pos(m.order, l) || pos(m.order, bot) < pos(m.order, r) {
		t.Fatalf("diamond order violated: %v", labels(m.order))
	}
}

func labels(ts []*Task) []string {
	var out []string
	for _, t := range ts {
		out = append(out, t.Label)
	}
	return out
}

func TestConcurrentTasksOverlap(t *testing.T) {
	m := newMiniExec(4, true, 6)
	x := new(int)
	w := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(w)
	c1 := &Task{Accesses: []Access{{Key: x, Mode: Concurrent}}}
	c2 := &Task{Accesses: []Access{{Key: x, Mode: Concurrent}}}
	m.submit(c1)
	m.submit(c2)
	// Concurrent tasks depend on the writer but not on each other.
	if c1.NPred() != 1 || c2.NPred() != 1 {
		t.Fatalf("concurrent npred = %d,%d, want 1,1", c1.NPred(), c2.NPred())
	}
	w2 := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(w2)
	if w2.NPred() != 3 {
		t.Fatalf("writer after concurrents npred=%d, want 3", w2.NPred())
	}
	m.runAll()
}

func TestEdgeDeduplication(t *testing.T) {
	m := newMiniExec(2, true, 7)
	x, y := new(int), new(int)
	a := &Task{Accesses: []Access{{Key: x, Mode: Out}, {Key: y, Mode: Out}}}
	b := &Task{Accesses: []Access{{Key: x, Mode: In}, {Key: y, Mode: In}}}
	m.submit(a)
	m.submit(b)
	if b.NPred() != 1 {
		t.Fatalf("duplicate edges: npred=%d, want 1", b.NPred())
	}
	m.runAll()
}

func TestPipelineCircularBuffer(t *testing.T) {
	// The Listing-1 shape: stages linked within an iteration via
	// stage-output data, and across iterations via inout stage contexts,
	// with a circular buffer of N frames providing manual renaming.
	const N, iters, stages = 3, 9, 4
	m := newMiniExec(4, true, 8)
	stageCtx := make([]*int, stages)
	for s := range stageCtx {
		stageCtx[s] = new(int)
	}
	frames := make([]*int, N)
	for i := range frames {
		frames[i] = new(int)
	}
	exec := make([][]int, stages) // per-stage executed iteration order
	var all []*Task
	for k := 0; k < iters; k++ {
		k := k
		slot := frames[k%N]
		for s := 0; s < stages; s++ {
			s := s
			acc := []Access{{Key: stageCtx[s], Mode: InOut}}
			if s == 0 {
				acc = append(acc, Access{Key: slot, Mode: Out})
			} else {
				acc = append(acc, Access{Key: slot, Mode: InOut})
			}
			tk := &Task{
				Label: fmt.Sprintf("s%d.i%d", s, k),
				Body:  func() error { exec[s] = append(exec[s], k); return nil },
			}
			tk.Accesses = acc
			all = append(all, tk)
			m.submit(tk)
		}
	}
	m.runAll()
	if len(m.order) != len(all) {
		t.Fatalf("executed %d tasks, want %d", len(m.order), len(all))
	}
	for s := 0; s < stages; s++ {
		for i := 1; i < len(exec[s]); i++ {
			if exec[s][i] != exec[s][i-1]+1 {
				t.Fatalf("stage %d ran iterations out of order: %v", s, exec[s])
			}
		}
	}
}

func TestLastWriter(t *testing.T) {
	m := newMiniExec(1, true, 9)
	x := new(int)
	if m.g.LastWriter(x) != nil {
		t.Fatal("untracked datum should have no last writer")
	}
	a := &Task{Accesses: []Access{{Key: x, Mode: Out}}}
	m.submit(a)
	if m.g.LastWriter(x) != a {
		t.Fatal("last writer should be the pending writer")
	}
	r := &Task{Accesses: []Access{{Key: x, Mode: In}}}
	m.submit(r)
	if m.g.LastWriter(x) != a {
		t.Fatal("a reader must not become last writer")
	}
	m.runAll()
	if m.g.LastWriter(x) != nil {
		t.Fatal("finished writer should not be reported")
	}
}

func TestPriorityJumpsGlobalQueue(t *testing.T) {
	s := NewSched(1, Policy{}, 1)
	lo := &Task{Label: "lo"}
	hi := &Task{Label: "hi", Priority: 5}
	mid := &Task{Label: "mid", Priority: 2}
	s.PushSubmit(lo)
	s.PushSubmit(hi)
	s.PushSubmit(mid)
	got := []string{s.Pop(0).Label, s.Pop(0).Label, s.Pop(0).Label}
	want := []string{"hi", "mid", "lo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority pop order %v, want %v", got, want)
		}
	}
}

func TestLocalityPlacement(t *testing.T) {
	s := NewSched(2, Policy{Locality: true, Affinity: true}, 1)
	a, b := &Task{Label: "a"}, &Task{Label: "b"}
	s.PushSubmit(a)   // global
	s.PushReady(b, 1) // released on worker 1
	if got := s.Pop(1); got != b {
		t.Fatalf("worker 1 should pop its local successor first, got %v", got.Label)
	}
	if got := s.Pop(1); got != a {
		t.Fatalf("then the global task, got %v", got.Label)
	}
}

func TestNoLocalityGoesGlobal(t *testing.T) {
	s := NewSched(2, Policy{}, 1)
	a, b := &Task{Label: "a"}, &Task{Label: "b"}
	s.PushSubmit(a)
	s.PushReady(b, 1)
	// FIFO: a first even for worker 1.
	if got := s.Pop(1); got != a {
		t.Fatalf("expected FIFO a, got %s", got.Label)
	}
}

func TestStealFromVictimTail(t *testing.T) {
	s := NewSched(2, Policy{Locality: true, Affinity: true}, 1)
	a, b := &Task{Label: "hot"}, &Task{Label: "cold"}
	// Worker 0's deque: hot at head, cold at tail.
	s.PushReady(b, 0)
	s.PushReady(a, 0)
	if got := s.Pop(1); got != b {
		t.Fatalf("thief should take tail (cold), got %s", got.Label)
	}
	st := s.Stats()
	if st.Steals != 1 {
		t.Fatalf("steals=%d, want 1", st.Steals)
	}
	if got := s.Pop(0); got != a {
		t.Fatalf("owner should keep head (hot), got %s", got.Label)
	}
}

func TestContextPending(t *testing.T) {
	m := newMiniExec(1, true, 10)
	ctx := &Context{}
	x := new(int)
	for i := 0; i < 3; i++ {
		m.submit(&Task{Parent: ctx, Accesses: []Access{{Key: x, Mode: InOut}}})
	}
	if ctx.Pending() != 3 {
		t.Fatalf("pending=%d, want 3", ctx.Pending())
	}
	m.runAll()
	if ctx.Pending() != 0 {
		t.Fatalf("pending=%d after drain, want 0", ctx.Pending())
	}
}

func TestGraphStats(t *testing.T) {
	m := newMiniExec(2, true, 11)
	x := new(int)
	m.submit(&Task{Accesses: []Access{{Key: x, Mode: Out}}})
	m.submit(&Task{Accesses: []Access{{Key: x, Mode: In}}})
	m.runAll()
	st := m.g.Stats()
	if st.Submitted != 2 || st.Finished != 2 || st.Edges != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

// TestDataflowEquivalenceProperty is the central correctness property of the
// engine: for random programs over a small set of data, every reader must
// observe exactly the value produced by its program-order last writer, no
// matter how the scheduler interleaves ready tasks.
func TestDataflowEquivalenceProperty(t *testing.T) {
	type taskSpec struct {
		accesses []Access
		expect   map[int]uint64 // datum index -> expected version seen
	}
	f := func(seed int64, nTasks uint8, nData uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nt := int(nTasks%40) + 5
		nd := int(nData%5) + 1
		data := make([]*uint64, nd) // simulated datum contents: writer version
		keys := make([]any, nd)
		for i := range data {
			data[i] = new(uint64)
			keys[i] = data[i]
		}
		version := make([]uint64, nd) // program-order version counter
		m := newMiniExec(3, rng.Intn(2) == 0, seed)

		ok := true
		for i := 0; i < nt; i++ {
			spec := taskSpec{expect: map[int]uint64{}}
			nacc := rng.Intn(3) + 1
			used := map[int]bool{}
			for j := 0; j < nacc; j++ {
				di := rng.Intn(nd)
				if used[di] {
					continue
				}
				used[di] = true
				mode := []Mode{In, Out, InOut}[rng.Intn(3)]
				spec.accesses = append(spec.accesses, Access{Key: keys[di], Mode: mode})
				if mode == In || mode == InOut {
					spec.expect[di] = version[di]
				}
				if mode == Out || mode == InOut {
					version[di]++
				}
			}
			writes := map[int]uint64{}
			for di, v := range version {
				writes[di] = v
			}
			tk := &Task{}
			tk.Accesses = spec.accesses
			expected := spec.expect
			accs := spec.accesses
			tk.Body = func() error {
				for _, a := range accs {
					di := indexOf(keys, a.Key)
					if a.Reads() && a.Mode != Concurrent {
						if *data[di] != expected[di] {
							ok = false
						}
					}
				}
				for _, a := range accs {
					if a.Writes() {
						di := indexOf(keys, a.Key)
						*data[di] = writes[di]
					}
				}
				return nil
			}
			m.submit(tk)
		}
		m.runAll()
		return ok && m.g.Unfinished() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func indexOf(keys []any, k any) int {
	for i, kk := range keys {
		if kk == k {
			return i
		}
	}
	return -1
}
