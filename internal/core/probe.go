package core

// Probe receives engine-level observability callbacks — the events only
// the scheduler and dependence tracker can see (steals, rename decisions,
// writebacks). The executor layer wires a recorder (internal/obs) in here;
// a nil probe costs one predictable branch per site. Implementations must
// be safe from any goroutine, lock-free, and allocation-free: StealEvent
// fires on the steal path and RenameEvent/WritebackEvent fire under a
// dependence-shard lock.
type Probe interface {
	// StealEvent records a successful steal: thief took task (by ID) from
	// victim's queues.
	StealEvent(thief, victim int, task uint64)
	// RenameEvent records that task's write-mode access received a fresh
	// renamed instance instead of WAR/WAW edges.
	RenameEvent(task uint64)
	// WritebackEvent records a drained version chain copying its last good
	// instance back onto canonical storage; task is that instance's
	// program-order last writer (0 when unknown).
	WritebackEvent(task uint64)
}

// SetProbe installs the scheduler's observability probe. Call before the
// scheduler is driven (the executor does this at construction).
func (s *Sched) SetProbe(p Probe) { s.probe = p }

// SetProbe installs the dependence tracker's observability probe. Call
// before the first submission.
func (g *Graph) SetProbe(p Probe) { g.probe = p }
