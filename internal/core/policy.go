package core

// Policy is the scheduling-policy surface shared by the native executor and
// the simulator: both construct their Sched from one of these, so a policy
// ablation (paper §4) and a production run exercise literally the same
// placement and victim-selection code.
//
// The three knobs map onto the mechanisms the paper's §4 analysis credits:
//
//   - Locality: a successor released by a finishing task is pushed to the
//     bottom of the finisher's own deque, so producer→consumer chains run
//     back-to-back on one core while the produced data is cache-resident
//     (the ray-rot effect). Off, released tasks go to the global FIFO.
//   - Affinity: tasks carrying an affinity hint (the ompss.Affinity clause)
//     are submitted to the mailbox of their datum's home lane instead of the
//     global FIFO, so work lands where its data lives. Off, hints are
//     ignored.
//   - Domains: workers are split into contiguous steal domains (sockets, in
//     the paper's 4-socket machine). A thief probes every victim in its own
//     domain before crossing into another, so affinity-placed work is
//     preferentially drained by near workers and only crosses a domain as a
//     last resort against starvation.
type Policy struct {
	Locality bool
	Affinity bool
	// Domains is the steal-domain count; values < 2 (or >= the worker
	// count) mean flat random-victim stealing.
	Domains int
}

// DefaultPolicy matches the paper's OmpSs runtime: locality scheduling on,
// affinity hints honored, flat stealing.
func DefaultPolicy() Policy { return Policy{Locality: true, Affinity: true} }

// domainCount clamps the configured domain count to something meaningful
// for the given worker count.
func (p Policy) domainCount(workers int) int {
	d := p.Domains
	if d < 1 {
		return 1
	}
	if d > workers {
		return workers
	}
	return d
}

// DomainOf maps a worker lane to its steal domain. Lanes are split into
// contiguous blocks (lanes 0..k-1 form domain 0, and so on), mirroring how
// cores fill sockets on the simulated machine. Out-of-range lanes (the
// overflow stats lane, foreign goroutines) report domain 0.
func (p Policy) DomainOf(worker, workers int) int {
	d := p.domainCount(workers)
	if d <= 1 || worker < 0 || worker >= workers {
		return 0
	}
	// Exact inverse of domainBounds' floor partition (lanes of domain k are
	// [k*workers/d, (k+1)*workers/d)), also for uneven splits.
	return ((worker+1)*d - 1) / workers
}

// HomeLane maps a dependence shard to the worker lane that is the shard's
// home: affinity-hinted tasks are mailed there. The mapping is stable for
// the lifetime of a scheduler, so all tasks over one datum share a home.
func (p Policy) HomeLane(shard uint32, workers int) int {
	if workers <= 0 {
		return 0
	}
	return int(shard) % workers
}

// Victim returns the lane of the i-th steal probe for `worker` (or -1 once
// the order is exhausted): every same-domain victim first (rotated by rnd
// so concurrent thieves spread), then every cross-domain victim (likewise
// rotated). With a flat policy this degenerates to the classic random-start
// ring probe. Pure arithmetic — the steal hot path iterates i without
// materializing the order, so Pop stays allocation-free at any worker
// count. The caller supplies rnd from its per-lane RNG and must hold it
// constant across one probe sweep.
func (p Policy) Victim(i, worker, workers int, rnd uint64) int {
	nVictims := workers - 1
	if worker < 0 || worker >= workers {
		// Out-of-range callers (the overflow stats lane, foreign
		// goroutines) have no own lane: every worker is a victim.
		nVictims = workers
	}
	if workers < 1 || i < 0 || i >= nVictims {
		return -1
	}
	d := p.domainCount(workers)
	if d <= 1 || worker < 0 || worker >= workers {
		// Rotated ring skipping self: the i-th element of the sequence
		// (start+k)%workers with worker's own slot removed.
		start := int(rnd % uint64(workers))
		self := (worker - start + workers) % workers
		k := i
		if worker >= 0 && worker < workers && i >= self {
			k = i + 1
		}
		return (start + k) % workers
	}
	home := p.DomainOf(worker, workers)
	lo, hi := p.domainBounds(home, workers)
	n := hi - lo
	if i < n-1 {
		// Same-domain victims: the rotated ring over [lo, hi) skipping self.
		start := int(rnd % uint64(n))
		self := ((worker - lo) - start + n) % n
		k := i
		if i >= self {
			k = i + 1
		}
		return lo + (start+k)%n
	}
	// Cross-domain victims, rotated over the lanes outside [lo, hi).
	j := i - (n - 1)
	rest := workers - n
	v := (int((rnd>>32)%uint64(rest)) + j) % rest
	if v >= lo {
		v += n // map the rest-index back to a lane above the home block
	}
	return v
}

// VictimOrder appends the full steal-probe order for `worker` to dst and
// returns it — the materialized form of Victim, for tests and diagnostics.
func (p Policy) VictimOrder(dst []int, worker, workers int, rnd uint64) []int {
	for i := 0; ; i++ {
		v := p.Victim(i, worker, workers, rnd)
		if v < 0 {
			return dst
		}
		dst = append(dst, v)
	}
}

// domainBounds returns the half-open lane range [lo, hi) of one domain.
func (p Policy) domainBounds(domain, workers int) (lo, hi int) {
	d := p.domainCount(workers)
	lo = domain * workers / d
	hi = (domain + 1) * workers / d
	return lo, hi
}
