package core

import (
	"sort"
	"testing"
)

func TestDomainOfContiguousBlocks(t *testing.T) {
	p := Policy{Domains: 2}
	got := make([]int, 8)
	for w := 0; w < 8; w++ {
		got[w] = p.DomainOf(w, 8)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DomainOf over 8 workers / 2 domains = %v, want %v", got, want)
		}
	}
	// Degenerate configurations collapse to one domain.
	for _, d := range []int{0, 1} {
		p := Policy{Domains: d}
		if p.DomainOf(3, 4) != 0 {
			t.Fatalf("Domains=%d should be flat", d)
		}
	}
	// Out-of-range lanes (overflow stats lane) report domain 0.
	if p.DomainOf(-1, 8) != 0 || p.DomainOf(8, 8) != 0 {
		t.Fatal("out-of-range lanes must map to domain 0")
	}
}

func TestDomainOfMatchesDomainBounds(t *testing.T) {
	// DomainOf must be the exact inverse of the domainBounds partition for
	// every worker count and domain count, including uneven splits.
	for workers := 1; workers <= 16; workers++ {
		for domains := 1; domains <= 8; domains++ {
			p := Policy{Domains: domains}
			for w := 0; w < workers; w++ {
				dom := p.DomainOf(w, workers)
				lo, hi := p.domainBounds(dom, workers)
				if w < lo || w >= hi {
					t.Fatalf("workers=%d domains=%d: worker %d in domain %d but bounds [%d,%d)",
						workers, domains, w, dom, lo, hi)
				}
			}
		}
	}
}

func TestVictimOrderCoversEveryOtherWorker(t *testing.T) {
	for _, domains := range []int{1, 2, 3} {
		p := Policy{Domains: domains}
		for _, workers := range []int{1, 2, 5, 8, 33} {
			// In-range workers skip themselves; out-of-range callers (the
			// overflow stats lane at index `workers`, and -1) probe everyone.
			for w := -1; w <= workers; w++ {
				want := workers - 1
				if w < 0 || w >= workers {
					want = workers
				}
				for _, rnd := range []uint64{0, 1, 0xdeadbeefcafe, ^uint64(0)} {
					order := p.VictimOrder(nil, w, workers, rnd)
					if len(order) != want {
						t.Fatalf("d=%d w=%d/%d rnd=%d: %d victims, want %d",
							domains, w, workers, rnd, len(order), want)
					}
					seen := map[int]bool{}
					for _, v := range order {
						if v == w || v < 0 || v >= workers || seen[v] {
							t.Fatalf("d=%d w=%d/%d: bad victim order %v", domains, w, workers, order)
						}
						seen[v] = true
					}
				}
			}
		}
	}
}

func TestVictimOrderProbesOwnDomainFirst(t *testing.T) {
	p := Policy{Domains: 2}
	const workers = 8
	for w := 0; w < workers; w++ {
		order := p.VictimOrder(nil, w, workers, 12345)
		home := p.DomainOf(w, workers)
		// The first len(domain)-1 probes must all be same-domain victims.
		sameDomain := workers/2 - 1
		for i, v := range order {
			inHome := p.DomainOf(v, workers) == home
			if i < sameDomain && !inHome {
				t.Fatalf("w=%d: probe %d crossed domains early: %v", w, i, order)
			}
			if i >= sameDomain && inHome {
				t.Fatalf("w=%d: same-domain victim at probe %d after cross-domain ones: %v", w, i, order)
			}
		}
	}
}

func TestHomeLaneStableAndInRange(t *testing.T) {
	p := DefaultPolicy()
	for shard := uint32(0); shard < numShards; shard++ {
		l := p.HomeLane(shard, 5)
		if l < 0 || l >= 5 {
			t.Fatalf("HomeLane(%d, 5) = %d out of range", shard, l)
		}
		if l != p.HomeLane(shard, 5) {
			t.Fatal("HomeLane must be deterministic")
		}
	}
}

func TestAffinityMailboxPlacement(t *testing.T) {
	const workers = 4
	s := NewSched(workers, DefaultPolicy(), 1)
	tk := &Task{Label: "pinned"}
	tk.SetAffinity(7)
	home := s.Policy().HomeLane(7, workers)
	s.PushSubmit(tk)
	// The home lane finds it as a mailbox pop, without stealing.
	if got := s.Pop(home); got != tk {
		t.Fatalf("home lane %d did not pop the pinned task, got %v", home, got)
	}
	st := s.Stats()
	if st.AffinityPops != 1 {
		t.Fatalf("affinity pops = %d, want 1", st.AffinityPops)
	}
}

func TestAffinityOffIgnoresHint(t *testing.T) {
	s := NewSched(2, Policy{Locality: true, Affinity: false}, 1)
	tk := &Task{}
	tk.SetAffinity(3)
	s.PushSubmit(tk)
	if got := s.Pop(0); got != tk {
		t.Fatal("with AffinityOff the task should sit in the global FIFO")
	}
	if st := s.Stats(); st.AffinityPops != 0 || st.GlobalPops != 1 {
		t.Fatalf("stats = %+v, want one global pop", st)
	}
}

func TestAffinityMailboxStealable(t *testing.T) {
	// A pinned task must not starve when its home lane never polls: any
	// other lane steals it from the mailbox.
	const workers = 4
	s := NewSched(workers, DefaultPolicy(), 1)
	tk := &Task{}
	tk.SetAffinity(2)
	home := s.Policy().HomeLane(2, workers)
	s.PushSubmit(tk)
	thief := (home + 1) % workers
	if got := s.Pop(thief); got != tk {
		t.Fatalf("thief %d could not steal from mailbox of %d", thief, home)
	}
	if st := s.Stats(); st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}
}

func TestPriorityReleaseLandsOnPrioLane(t *testing.T) {
	s := NewSched(2, DefaultPolicy(), 1)
	lo := &Task{Label: "lo"}
	hi := &Task{Label: "hi", Priority: 3}
	s.PushReady(lo, 0) // locality deque
	s.PushReady(hi, 0) // priority lane
	// The priority successor is popped before the locality chain.
	if got := s.Pop(0); got != hi {
		t.Fatalf("expected priority lane first, got %q", got.Label)
	}
	if got := s.Pop(0); got != lo {
		t.Fatalf("expected locality deque second, got %q", got.Label)
	}
	st := s.Stats()
	if st.PrioPops != 1 || st.LocalPops != 1 {
		t.Fatalf("stats = %+v, want one prio pop and one local pop", st)
	}
}

func TestPrioLaneStealable(t *testing.T) {
	s := NewSched(2, DefaultPolicy(), 1)
	hi := &Task{Priority: 5}
	s.PushReady(hi, 0)
	if got := s.Pop(1); got != hi {
		t.Fatal("thief should steal from the victim's priority lane")
	}
}

func TestDomainStealsCounted(t *testing.T) {
	s := NewSched(4, Policy{Locality: true, Affinity: true, Domains: 2}, 1)
	near := &Task{Label: "near"}
	s.PushReady(near, 1) // worker 1's deque; worker 0 shares its domain
	if got := s.Pop(0); got != near {
		t.Fatal("worker 0 should steal from same-domain worker 1")
	}
	st := s.Stats()
	if st.Steals != 1 || st.DomainSteals != 1 {
		t.Fatalf("stats = %+v, want one same-domain steal", st)
	}
	far := &Task{Label: "far"}
	s.PushReady(far, 3) // other domain
	if got := s.Pop(0); got != far {
		t.Fatal("worker 0 should eventually cross domains")
	}
	st = s.Stats()
	if st.Steals != 2 || st.DomainSteals != 1 {
		t.Fatalf("stats = %+v, want the second steal to be cross-domain", st)
	}
}

// TestWideSchedStealsAllocationFree pins the steal hot path at a worker
// count beyond any stack buffer: one worker drains every other lane's work
// through domain-ordered stealing, and an idle Pop sweep (the Polling-mode
// spin state) must not allocate.
func TestWideSchedStealsAllocationFree(t *testing.T) {
	const workers = 48
	s := NewSched(workers, Policy{Locality: true, Affinity: true, Domains: 4}, 1)
	for i := 0; i < workers; i++ {
		s.PushReady(&Task{}, i)
	}
	got := 0
	for i := 0; i < workers; i++ {
		if s.Pop(7) != nil {
			got++
		}
	}
	if got != workers {
		t.Fatalf("worker 7 drained %d of %d tasks", got, workers)
	}
	if s.Pop(7) != nil {
		t.Fatal("scheduler should be empty")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if s.Pop(7) != nil {
			t.Fatal("unexpected task")
		}
	})
	if allocs > 0 {
		t.Fatalf("idle Pop allocates %.1f/op at %d workers; the steal path must be allocation-free", allocs, workers)
	}
}

func TestSubmitBatchWiresIntraBatchDeps(t *testing.T) {
	g := NewGraph()
	x, y := new(int), new(int)
	a := &Task{Label: "a", Accesses: []Access{{Key: x, Mode: Out}}}
	b := &Task{Label: "b", Accesses: []Access{{Key: x, Mode: In}, {Key: y, Mode: Out}}}
	c := &Task{Label: "c", Accesses: []Access{{Key: y, Mode: In}}}
	ready := g.SubmitBatch([]*Task{a, b, c})
	if len(ready) != 1 || ready[0] != a {
		t.Fatalf("ready = %v, want just a", labels(ready))
	}
	if b.NPred() != 1 || c.NPred() != 1 {
		t.Fatalf("npred b=%d c=%d, want 1 and 1", b.NPred(), c.NPred())
	}
	if r := g.Finish(a, nil); len(r) != 1 || r[0] != b {
		t.Fatalf("finishing a should release b, got %v", labels(r))
	}
	if r := g.Finish(b, nil); len(r) != 1 || r[0] != c {
		t.Fatalf("finishing b should release c, got %v", labels(r))
	}
	g.Finish(c, nil)
	if st := g.Stats(); st.Submitted != 3 || st.Finished != 3 || st.Edges != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitBatchMatchesSequentialSubmit(t *testing.T) {
	// The same program submitted one-by-one and as one batch must produce
	// the same edge structure.
	build := func() []*Task {
		x, y, z := new(int), new(int), new(int)
		return []*Task{
			{Accesses: []Access{{Key: x, Mode: Out}, {Key: y, Mode: Out}}},
			{Accesses: []Access{{Key: x, Mode: In}, {Key: z, Mode: Out}}},
			{Accesses: []Access{{Key: y, Mode: InOut}, {Key: z, Mode: In}}},
			{Accesses: []Access{{Key: x, Mode: InOut}, {Key: y, Mode: In}, {Key: z, Mode: In}}},
		}
	}
	seq := build()
	gs := NewGraph()
	var seqReady []*Task
	for _, t2 := range seq {
		if gs.Submit(t2) {
			seqReady = append(seqReady, t2)
		}
	}
	bat := build()
	gb := NewGraph()
	batReady := gb.SubmitBatch(bat)
	if len(seqReady) != len(batReady) {
		t.Fatalf("ready sets differ: %d vs %d", len(seqReady), len(batReady))
	}
	for i := range seq {
		sp := append([]uint64(nil), seq[i].Preds...)
		bp := append([]uint64(nil), bat[i].Preds...)
		sort.Slice(sp, func(a, b int) bool { return sp[a] < sp[b] })
		sort.Slice(bp, func(a, b int) bool { return bp[a] < bp[b] })
		if len(sp) != len(bp) {
			t.Fatalf("task %d: preds %v vs %v", i, sp, bp)
		}
		for j := range sp {
			if sp[j] != bp[j] {
				t.Fatalf("task %d: preds %v vs %v", i, sp, bp)
			}
		}
	}
}

func TestEnqueueBatchPreservesFIFO(t *testing.T) {
	var q mpmcQueue
	q.init()
	a, b, c, d := &Task{Label: "a"}, &Task{Label: "b"}, &Task{Label: "c"}, &Task{Label: "d"}
	q.enqueue(a)
	q.enqueueBatch([]*Task{b, c})
	q.enqueue(d)
	want := []*Task{a, b, c, d}
	for i, w := range want {
		if got := q.dequeue(); got != w {
			t.Fatalf("dequeue %d = %v, want %q", i, got, w.Label)
		}
	}
	if q.dequeue() != nil {
		t.Fatal("queue should be empty")
	}
	if q.length() != 0 {
		t.Fatalf("length = %d, want 0", q.length())
	}
	q.enqueueBatch(nil) // no-op
	if q.dequeue() != nil {
		t.Fatal("empty batch must enqueue nothing")
	}
}
