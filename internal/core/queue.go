package core

import "sync/atomic"

// mpmcQueue is a Michael–Scott lock-free multi-producer multi-consumer FIFO,
// used as the global spawn queue (breadth-first submission order). Nodes are
// never reused, so there is no ABA hazard; the GC reclaims consumed nodes.
type mpmcQueue struct {
	head atomic.Pointer[qnode] // dummy; head.next is the front
	tail atomic.Pointer[qnode]
	n    atomic.Int64 // racy length estimate for idle predicates
}

type qnode struct {
	t    *Task
	next atomic.Pointer[qnode]
}

func (q *mpmcQueue) init() {
	d := &qnode{}
	q.head.Store(d)
	q.tail.Store(d)
}

func (q *mpmcQueue) enqueue(t *Task) {
	n := &qnode{t: t}
	for {
		tail := q.tail.Load()
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.n.Add(1)
			return
		}
		// Tail lags; help swing it forward and retry.
		q.tail.CompareAndSwap(tail, tail.next.Load())
	}
}

// enqueueBatch appends ts in order as one pre-linked chain: the nodes are
// wired locally, then the whole chain is published with a single successful
// tail CAS, amortizing the contended part of enqueue across the batch.
func (q *mpmcQueue) enqueueBatch(ts []*Task) {
	if len(ts) == 0 {
		return
	}
	head := &qnode{t: ts[0]}
	tail := head
	for _, t := range ts[1:] {
		n := &qnode{t: t}
		tail.next.Store(n)
		tail = n
	}
	for {
		qt := q.tail.Load()
		if qt.next.CompareAndSwap(nil, head) {
			q.tail.CompareAndSwap(qt, tail)
			q.n.Add(int64(len(ts)))
			return
		}
		// Tail lags; help swing it forward and retry.
		q.tail.CompareAndSwap(qt, qt.next.Load())
	}
}

func (q *mpmcQueue) dequeue() *Task {
	for {
		head := q.head.Load()
		next := head.next.Load()
		if next == nil {
			return nil
		}
		if q.head.CompareAndSwap(head, next) {
			q.n.Add(-1)
			return next.t
		}
	}
}

// length is exact when the queue is quiescent, a close estimate under
// concurrency (transient negatives are possible mid-operation).
func (q *mpmcQueue) length() int {
	n := int(q.n.Load())
	if n < 0 {
		return 0
	}
	return n
}
