package blocks

import (
	"testing"
	"testing/quick"
)

func TestRangesCoverExactly(t *testing.T) {
	f := func(n, chunk uint16) bool {
		nn, cc := int(n%5000), int(chunk%100)
		rs := Ranges(nn, cc)
		covered := 0
		prev := 0
		for _, r := range rs {
			if r[0] != prev || r[1] <= r[0] {
				return false
			}
			covered += r[1] - r[0]
			prev = r[1]
		}
		return covered == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangesChunkBound(t *testing.T) {
	for _, r := range Ranges(103, 10) {
		if r[1]-r[0] > 10 {
			t.Fatalf("oversized chunk %v", r)
		}
	}
	if got := len(Ranges(103, 10)); got != 11 {
		t.Fatalf("chunks = %d, want 11", got)
	}
}

func TestRangesDegenerate(t *testing.T) {
	if Ranges(0, 10) != nil {
		t.Fatal("empty range should yield no chunks")
	}
	if got := len(Ranges(5, 0)); got != 5 {
		t.Fatalf("chunk<1 should clamp to 1, got %d chunks", got)
	}
}

func TestEvenPartition(t *testing.T) {
	rs := Even(10, 3)
	if len(rs) != 3 {
		t.Fatalf("parts = %d", len(rs))
	}
	covered := 0
	for i, r := range rs {
		covered += r[1] - r[0]
		if i > 0 && rs[i-1][1] != r[0] {
			t.Fatal("parts not contiguous")
		}
	}
	if covered != 10 {
		t.Fatalf("covered %d", covered)
	}
	// Near-equal: sizes differ by at most 1.
	for _, r := range rs {
		if s := r[1] - r[0]; s < 3 || s > 4 {
			t.Fatalf("uneven part %v", r)
		}
	}
}

func TestEvenMorePartsThanItems(t *testing.T) {
	rs := Even(2, 5)
	nonEmpty := 0
	for _, r := range rs {
		if r[1] > r[0] {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("non-empty parts = %d", nonEmpty)
	}
}
