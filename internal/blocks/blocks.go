// Package blocks provides the index-space partitioners shared by the
// benchmark variants: contiguous chunks for task decomposition and static
// interleaving for SPMD thread decomposition.
package blocks

// Ranges splits [0, n) into contiguous chunks of at most `chunk` elements.
func Ranges(n, chunk int) [][2]int {
	if chunk < 1 {
		chunk = 1
	}
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// Even splits [0, n) into `parts` contiguous ranges of near-equal size
// (PARSEC-style static partition). Part i of n<parts may be empty.
func Even(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	out := make([][2]int, parts)
	for i := 0; i < parts; i++ {
		out[i] = [2]int{i * n / parts, (i + 1) * n / parts}
	}
	return out
}
