// Package dist is the multi-process execution domain: a coordinator
// process runs the dependence tracker (the same internal/core graph the
// native and simulated backends drive) while N worker processes — child
// processes of the same binary, connected over Unix domain sockets —
// execute task bodies against migrated datum versions.
//
// Ownership and transfer are driven by the version chains of the renaming
// layer (internal/core/rename.go): every registered datum is a renameable
// []byte payload whose canonical storage lives in the coordinator. A task
// dispatched to worker W triggers copy-in of the version instances its
// clauses bind; a per-worker cache keyed by (datum, version) makes
// repeated readers of the same instance free; a writer produces a new
// version whose bytes ride back on the completion message; and chain drain
// writes the program-order last good instance back onto canonical storage
// exactly as it does in-process. Poisoned-writer and skip-on-error
// semantics carry over the wire unchanged: a task failure (or a worker
// crash, surfaced as WorkerLost) poisons its output version, skips its
// dependents, and leaves every other worker's tasks executing.
//
// Task bodies are closures and do not serialize, so execution is by
// registered kernel name plus opaque serialized args: both the coordinator
// and the workers run the same binary, the program registers its kernels
// at init (RegisterKernel), and MaybeWorker diverts a child process into
// the worker loop before main proper runs.
package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"ompssgo/internal/obs"
)

// MaxFrame bounds one frame's payload. The largest legitimate frame
// carries one task's copy-in set or one task's produced outputs — tens of
// megabytes for the suite's default workloads — so the cap is generous
// while still refusing absurd lengths from a corrupt or hostile stream
// before any decoding work happens.
const MaxFrame = 256 << 20

// Hello is the worker's first frame on any connection: which worker slot
// it claims, authenticated by MAC — the HMAC-SHA256 of the server's
// Challenge nonce and the slot under the run's shared secret. A listener
// refuses a Hello whose MAC does not verify. FetchAddr is the worker's
// own peer-fetch listener ("net:addr"), where other workers may dial in
// to copy cached datum versions directly (see WireRef.From).
type Hello struct {
	Worker    int
	PID       int
	MAC       []byte
	FetchAddr string
	// Now is the worker's monotonic clock reading (nanoseconds since its
	// own trace epoch) sampled while composing this Hello. The server side
	// timestamps the challenge round-trip around it, which yields an
	// NTP-style offset estimate good to half the round-trip time — the
	// clock-alignment contract merged distributed traces rely on.
	Now int64
}

// Challenge is the server's first frame on any inbound connection: a
// fresh random nonce the dialing side must MAC in its Hello. Both the
// coordinator's listener and every worker's peer-fetch listener speak it,
// so no unauthenticated peer can submit work, claim a slot, or read
// cached payloads.
type Challenge struct {
	Nonce []byte
}

// WireRef names one datum version a task observes. Bytes carries the
// content on a cache miss; nil means the worker already holds the
// (Datum, Ver) pair in its version cache (the coordinator mirrors every
// worker's cache deterministically, so it knows). A non-empty From with
// nil Bytes is a forwarding directive: the pair is resident on the peer
// worker whose fetch address From names, and the worker should copy it
// from there directly instead of having the coordinator relay the
// payload. If the peer is gone or has since dropped the pair, the worker
// falls back to a Fetch round-trip with the coordinator, which always
// holds the content.
type WireRef struct {
	Datum uint64
	Ver   uint64
	Size  int64
	Bytes []byte
	From  string
}

// WireOut names one datum version a task produces. The worker allocates
// the buffer; SeedFrom >= 0 seeds it from that index of the task's read
// set (the InOut copy-in), -1 leaves it zeroed (a pure Out overwrites by
// contract).
type WireOut struct {
	Datum    uint64
	Ver      uint64
	Size     int64
	SeedFrom int
}

// CacheKey identifies one cached payload instance.
type CacheKey struct {
	Datum uint64
	Ver   uint64
}

// TaskMsg dispatches one task. Reads is the transfer set in clause order:
// the first NIn entries are the kernel-visible In clauses (passed as in[]
// in that order), the rest are InOut read versions present only to seed
// outputs and the cache. Writes is one entry per Out/InOut clause in
// clause order (the kernel's out[]). Evict lists cache entries the worker
// must drop before inserting this task's reads — eviction is always
// coordinator-directed, which is what keeps the coordinator's mirror and
// the worker's cache in lockstep.
type TaskMsg struct {
	ID     uint64
	Kernel string
	Args   []byte
	NIn    int
	Reads  []WireRef
	Writes []WireOut
	Evict  []CacheKey
}

// ChainMsg dispatches a whole ready sub-DAG in one frame: Tasks in
// execution order, each link's sole unfinished predecessor being the link
// before it. The worker executes the links locally in order, reporting a
// DoneMsg per link; a failing link aborts the remainder (the coordinator
// resolves the unexecuted links as skipped — they depend on the failure).
// Only the first link carries an Evict list: the eviction plan is
// computed once against the whole chain's pinned set.
type ChainMsg struct {
	Tasks []*TaskMsg
}

// FetchMsg asks the receiving side for the bytes of one cached datum
// version. Worker→coordinator it is the relay fallback of a forwarding
// directive whose peer went away; worker→worker (on a peer-fetch
// connection) it is the forward itself.
type FetchMsg struct {
	Datum uint64
	Ver   uint64
}

// DataMsg answers a FetchMsg. Found is false when the responder no longer
// holds the pair (a peer that evicted it between the coordinator's plan
// and the fetch); the coordinator's relay always finds it.
type DataMsg struct {
	Datum uint64
	Ver   uint64
	Found bool
	Bytes []byte
}

// DoneMsg reports one task's completion. Outputs carries the produced
// bytes, one per TaskMsg.Writes entry, empty when Err is set (a failed
// writer's output is undefined and never leaves the worker — the wire
// form of the poisoned-writer rule). FetchedBytes and Fetches account the
// payload bytes this task's reads pulled directly from peer workers;
// FetchFallbacks counts forwarding directives that fell back to a
// coordinator relay.
type DoneMsg struct {
	ID             uint64
	Err            string
	Panic          bool
	Outputs        [][]byte
	Fetches        int
	FetchedBytes   int64
	FetchFallbacks int
	// Events piggybacks the worker-side trace batch recorded since the
	// previous Done (empty when the worker is not tracing). Timestamps are
	// on the worker's own clock; the coordinator realigns them with the
	// handshake offset at merge time. EventsDropped counts ring overflow
	// on the worker since the last drain.
	Events        []obs.Event
	EventsDropped uint64
}

// TraceMsg is the worker's final trace drain, sent right before it exits
// on Shutdown (or before a quiet EOF exit): whatever events accumulated
// after the last Done, plus the residual drop count. Slot names the
// sending worker so a coordinator can bucket it without connection state.
type TraceMsg struct {
	Slot    int
	Events  []obs.Event
	Dropped uint64
}

// Frame is the single message envelope every connection uses: exactly one
// field is set (Shutdown is the coordinator's drain order).
type Frame struct {
	Hello     *Hello
	Challenge *Challenge
	Task      *TaskMsg
	Chain     *ChainMsg
	Fetch     *FetchMsg
	Data      *DataMsg
	Done      *DoneMsg
	Trace     *TraceMsg
	Shutdown  bool
}

// WriteFrame encodes f as one length-prefixed gob frame: a 4-byte
// big-endian payload length followed by the gob bytes.
func WriteFrame(w io.Writer, f *Frame) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length backpatched below
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("dist: encode frame: %w", err)
	}
	n := buf.Len() - 4
	if n > MaxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds MaxFrame (%d)", n, MaxFrame)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	_, err := w.Write(b)
	return err
}

// ReadFrame decodes the next frame from r. It returns io.EOF untouched on
// a clean end of stream. Hostile input cannot make it panic or allocate
// past the declared (capped) length: the payload is drained with CopyN —
// so a garbage length with a short stream costs only the bytes actually
// present — and gob decoding errors are returned, not thrown. This is the
// function FuzzFrameDecode hammers.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("dist: bad frame length %d", n)
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, fmt.Errorf("dist: short frame: %w", err)
	}
	var f Frame
	if err := gob.NewDecoder(&buf).Decode(&f); err != nil {
		return nil, fmt.Errorf("dist: decode frame: %w", err)
	}
	return &f, nil
}
