package dist

import (
	"fmt"

	"ompssgo/internal/obs"
)

// Cross-process trace plumbing. Workers trace their own kernel execution
// (see worker.go) and ship event batches back piggybacked on completions
// plus one final Trace frame at shutdown. The coordinator buckets the
// batches per worker incarnation — (slot, generation) — together with the
// clock offset estimated from that incarnation's handshake round-trip,
// and folds everything into one obs.Trace at teardown (TraceSink).

// traceBucket accumulates one worker incarnation's shipped events.
type traceBucket struct {
	slot    int
	gen     int
	pid     int
	offset  int64 // coordinator-clock = worker-clock + offset
	events  []obs.Event
	dropped uint64
}

// openBucketLocked starts a fresh bucket for a (re)admitted worker. The
// offset estimate is NTP-style: the worker sampled Hello.Now somewhere
// inside the challenge round-trip, most plausibly at its midpoint, so
// mid-since-epoch minus Hello.Now aligns the two clocks to ±rtt/2.
// Callers on the initial-admission path run before any reader goroutine
// exists; the rejoin path holds rt.mu.
func (rt *RT) openBucketLocked(w *workerState, a admitted) {
	if rt.cfg.traceCap <= 0 || rt.rec == nil {
		return // offsets are relative to the recorder's epoch; no recorder, no merge
	}
	tb := &traceBucket{
		slot:   w.slot,
		gen:    w.gen,
		pid:    a.hello.PID,
		offset: a.sync.mid.Sub(rt.epoch).Nanoseconds() - a.hello.Now,
	}
	w.tb = tb
	rt.buckets = append(rt.buckets, tb)
}

// handleTrace banks a worker's final trace drain (the frame it sends
// right before exiting on Shutdown).
func (rt *RT) handleTrace(w *workerState, gen int, m *TraceMsg) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if w.gen != gen || w.tb == nil {
		return
	}
	w.tb.events = append(w.tb.events, m.Events...)
	w.tb.dropped += m.Dropped
}

// mergedTrace folds the coordinator's own stream and every banked worker
// bucket into one clock-aligned trace. Called after the readers drained,
// so the buckets are quiescent.
func (rt *RT) mergedTrace() *obs.Trace {
	base := rt.rec.Snapshot()
	rt.mu.Lock()
	buckets := rt.buckets
	rt.mu.Unlock()
	streams := make([]obs.TrackStream, len(buckets))
	for i, tb := range buckets {
		streams[i] = obs.TrackStream{
			Proc: "worker", Slot: tb.slot, Gen: tb.gen, PID: tb.pid,
			Offset: tb.offset, Events: tb.events, Dropped: tb.dropped,
		}
	}
	return obs.MergeTraces(base, streams)
}

// ReconcileTrace cross-checks a merged distributed trace against the
// run's coordinator-side Stats: every remotely executed task appears
// exactly once on a worker track, and the worker-observed transfer,
// forward, cache-hit, and chain accounting matches what the coordinator
// booked. It is exact for clean runs; a run with lost workers or failed
// tasks legitimately under-reports worker-side events (a dead worker's
// batches never arrive), so those checks are skipped. A truncated trace
// cannot be reconciled and is reported as such.
func ReconcileTrace(tr *obs.Trace, st Stats) error {
	if tr.TotalDropped() > 0 {
		return fmt.Errorf("dist: trace truncated (%d events dropped): raise the trace ring capacity to reconcile", tr.TotalDropped())
	}
	workerLane := make(map[int32]bool)
	for _, t := range tr.Tracks {
		if t.Proc == "worker" {
			workerLane[t.Lane] = true
		}
	}

	starts := make(map[uint64]int)
	ends := make(map[uint64]int)
	var xferBytes, fwdBytes int64
	var fwds, hits, chains, chainLinks int
	for i := range tr.Events {
		ev := &tr.Events[i]
		if !workerLane[ev.Worker] {
			continue
		}
		switch ev.Kind {
		case obs.EvStart:
			starts[ev.Task]++
		case obs.EvEnd:
			ends[ev.Task]++
		case obs.EvXfer:
			xferBytes += int64(ev.Arg)
		case obs.EvForward:
			fwds++
			fwdBytes += int64(ev.Arg)
		case obs.EvXferHit:
			hits++
		case obs.EvChain:
			chains++
			chainLinks += int(ev.Arg)
		}
	}

	for task, n := range starts {
		if n != 1 || ends[task] != 1 {
			return fmt.Errorf("dist: task %d recorded %d starts / %d ends on worker tracks, want exactly one of each", task, n, ends[task])
		}
	}
	clean := st.WorkersLost == 0 && st.Failed == 0
	if !clean {
		return nil // a lossy or failing run legitimately under-ships worker events
	}
	if executed := st.Tasks - st.Skipped; len(starts) != executed {
		return fmt.Errorf("dist: %d tasks executed on worker tracks, stats say %d", len(starts), executed)
	}
	if xferBytes != st.BytesToWorkers {
		return fmt.Errorf("dist: worker tracks saw %d transferred bytes, stats booked %d", xferBytes, st.BytesToWorkers)
	}
	if fwds != st.Forwards-st.ForwardFallbacks {
		return fmt.Errorf("dist: worker tracks saw %d direct forwards, stats booked %d (%d issued - %d fallbacks)",
			fwds, st.Forwards-st.ForwardFallbacks, st.Forwards, st.ForwardFallbacks)
	}
	if fwdBytes != st.BytesForwarded {
		return fmt.Errorf("dist: worker tracks saw %d forwarded bytes, stats booked %d", fwdBytes, st.BytesForwarded)
	}
	if hits != st.TransfersAvoided {
		return fmt.Errorf("dist: worker tracks saw %d cache hits, stats booked %d", hits, st.TransfersAvoided)
	}
	if chains != st.Chains {
		return fmt.Errorf("dist: worker tracks saw %d chain frames, stats booked %d", chains, st.Chains)
	}
	if chainLinks != st.Chains+st.ChainedTasks {
		return fmt.Errorf("dist: worker chain frames covered %d tasks, stats booked %d", chainLinks, st.Chains+st.ChainedTasks)
	}
	return nil
}
