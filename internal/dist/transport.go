package dist

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Child processes find their way into the worker loop through these two
// environment variables: the socket to dial and the worker slot to claim.
const (
	envSocket = "OMPSS_DIST_SOCKET"
	envWorker = "OMPSS_DIST_WORKER"
)

// handshakeTimeout bounds how long the coordinator waits for all spawned
// workers to dial back and identify themselves.
const handshakeTimeout = 30 * time.Second

// conn wraps one worker connection with a send mutex: the dispatch path
// and the shutdown path both write frames, and frames must not interleave.
type conn struct {
	net.Conn
	sendMu sync.Mutex
}

func (c *conn) send(f *Frame) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return WriteFrame(c.Conn, f)
}

// listenSocket creates the rendezvous Unix socket in a fresh temp
// directory (socket paths have a low length limit, so the directory name
// is kept short).
func listenSocket() (net.Listener, string, error) {
	dir, err := os.MkdirTemp("", "ompss-dist-")
	if err != nil {
		return nil, "", err
	}
	path := filepath.Join(dir, "coord.sock")
	l, err := net.Listen("unix", path)
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", fmt.Errorf("dist: listen %s: %w", path, err)
	}
	return l, dir, nil
}

// spawnWorker re-executes the current binary as worker `slot`. MaybeWorker
// in the child (called before main proper does anything else) sees the
// environment and diverts into the worker loop instead of running main.
func spawnWorker(socket string, slot int) (*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: locate own binary: %w", err)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(),
		envSocket+"="+socket,
		envWorker+"="+strconv.Itoa(slot),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawn worker %d: %w", slot, err)
	}
	return cmd, nil
}

// acceptWorkers collects n handshakes: each worker dials in and sends a
// Hello naming its slot. Returns the connections indexed by slot.
func acceptWorkers(l net.Listener, n int) ([]*conn, error) {
	if ul, ok := l.(*net.UnixListener); ok {
		ul.SetDeadline(time.Now().Add(handshakeTimeout))
		defer ul.SetDeadline(time.Time{})
	}
	conns := make([]*conn, n)
	for i := 0; i < n; i++ {
		c, err := l.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: handshake: %w", err)
		}
		c.SetReadDeadline(time.Now().Add(handshakeTimeout))
		f, err := ReadFrame(c)
		c.SetReadDeadline(time.Time{})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: handshake read: %w", err)
		}
		if f.Hello == nil {
			c.Close()
			return nil, fmt.Errorf("dist: handshake: first frame is not Hello")
		}
		slot := f.Hello.Worker
		if slot < 0 || slot >= n || conns[slot] != nil {
			c.Close()
			return nil, fmt.Errorf("dist: handshake: bad or duplicate worker slot %d", slot)
		}
		conns[slot] = &conn{Conn: c}
	}
	return conns, nil
}
