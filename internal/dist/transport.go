package dist

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Child processes find their way into the worker loop through these
// environment variables: the transport and address to dial, the worker
// slot to claim, and the run's shared secret (hex). The slow-exit
// variable is a test-only fault hook (see withSlowExit).
const (
	envNet      = "OMPSS_DIST_NET"
	envSocket   = "OMPSS_DIST_SOCKET"
	envWorker   = "OMPSS_DIST_WORKER"
	envSecret   = "OMPSS_DIST_SECRET"
	envSlowExit = "OMPSS_DIST_SLOW_EXIT_MS"
	envTrace    = "OMPSS_DIST_TRACE" // per-worker ring capacity; >0 turns on worker-side tracing
)

// DefaultHandshakeTimeout bounds how long the coordinator waits for all
// spawned workers to dial back and authenticate, when HandshakeTimeout is
// not given. It also seeds the default exit-kill deadline.
const DefaultHandshakeTimeout = 30 * time.Second

// conn wraps one worker connection with a send mutex: the dispatch path,
// the relay-fallback path, and the shutdown path all write frames, and
// frames must not interleave.
type conn struct {
	net.Conn
	sendMu sync.Mutex
}

func (c *conn) send(f *Frame) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return WriteFrame(c.Conn, f)
}

// newSecret draws a fresh 32-byte shared secret for one run.
func newSecret() ([]byte, error) {
	s := make([]byte, 32)
	if _, err := rand.Read(s); err != nil {
		return nil, fmt.Errorf("dist: secret: %w", err)
	}
	return s, nil
}

// computeMAC is the handshake response: HMAC-SHA256 over the challenge
// nonce and the claimed worker slot under the run's shared secret.
func computeMAC(secret, nonce []byte, slot int) []byte {
	h := hmac.New(sha256.New, secret)
	h.Write(nonce)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(slot)))
	h.Write(b[:])
	return h.Sum(nil)
}

// clockSync is the server-side clock measurement taken around one
// challenge round-trip: mid is the server's clock at the midpoint of the
// exchange (the instant the dialer most plausibly sampled Hello.Now), rtt
// the full round-trip. The NTP-style offset estimate a merge uses is
// mid-since-epoch minus Hello.Now, accurate to ±rtt/2.
type clockSync struct {
	mid time.Time
	rtt time.Duration
}

// challengeConn runs the server half of the connect handshake: send a
// fresh nonce, read the dialer's Hello within the deadline, and verify
// its MAC binds the claimed slot to this connection's nonce. The caller
// owns closing the connection on error. The returned clockSync brackets
// the round-trip for trace clock alignment.
func challengeConn(c net.Conn, secret []byte, timeout time.Duration) (*Hello, clockSync, error) {
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		return nil, clockSync{}, fmt.Errorf("nonce: %w", err)
	}
	c.SetDeadline(time.Now().Add(timeout))
	defer c.SetDeadline(time.Time{})
	t0 := time.Now()
	if err := WriteFrame(c, &Frame{Challenge: &Challenge{Nonce: nonce}}); err != nil {
		return nil, clockSync{}, fmt.Errorf("send challenge: %w", err)
	}
	f, err := ReadFrame(c)
	if err != nil {
		return nil, clockSync{}, fmt.Errorf("read hello: %w", err)
	}
	t1 := time.Now()
	if f.Hello == nil {
		return nil, clockSync{}, fmt.Errorf("first frame is not Hello")
	}
	if !hmac.Equal(f.Hello.MAC, computeMAC(secret, nonce, f.Hello.Worker)) {
		return nil, clockSync{}, fmt.Errorf("bad MAC for claimed slot %d", f.Hello.Worker)
	}
	rtt := t1.Sub(t0)
	return f.Hello, clockSync{mid: t0.Add(rtt / 2), rtt: rtt}, nil
}

// answerChallenge runs the dialer half: read the server's nonce and send
// the authenticated Hello. A non-nil clock is sampled right before the
// Hello is composed and rides in Hello.Now for the server's clock
// alignment; nil leaves Now zero (peer-fetch connections don't trace).
func answerChallenge(c net.Conn, secret []byte, slot int, fetchAddr string, clock func() int64, timeout time.Duration) error {
	c.SetDeadline(time.Now().Add(timeout))
	defer c.SetDeadline(time.Time{})
	f, err := ReadFrame(c)
	if err != nil {
		return fmt.Errorf("read challenge: %w", err)
	}
	if f.Challenge == nil {
		return fmt.Errorf("first frame is not Challenge")
	}
	var now int64
	if clock != nil {
		now = clock()
	}
	return WriteFrame(c, &Frame{Hello: &Hello{
		Worker:    slot,
		PID:       os.Getpid(),
		MAC:       computeMAC(secret, f.Challenge.Nonce, slot),
		FetchAddr: fetchAddr,
		Now:       now,
	}})
}

// listenRendezvous creates the coordinator's rendezvous listener on the
// chosen transport. For the Unix transport the socket lives in a fresh
// short-named temp directory (socket paths have a low length limit);
// cleanup removes it. For TCP it is a loopback port. addr is what workers
// dial ("net:address" form via dialAddr).
func listenRendezvous(transport string) (l net.Listener, addr string, cleanup func(), err error) {
	switch transport {
	case TransportUnix:
		dir, err := os.MkdirTemp("", "ompss-dist-")
		if err != nil {
			return nil, "", nil, err
		}
		path := filepath.Join(dir, "coord.sock")
		l, err := net.Listen("unix", path)
		if err != nil {
			os.RemoveAll(dir)
			return nil, "", nil, fmt.Errorf("dist: listen %s: %w", path, err)
		}
		return l, path, func() { os.RemoveAll(dir) }, nil
	case TransportTCP:
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", nil, fmt.Errorf("dist: listen tcp loopback: %w", err)
		}
		return l, l.Addr().String(), func() {}, nil
	}
	return nil, "", nil, fmt.Errorf("dist: unknown transport %q", transport)
}

// dialAddr splits a "net:addr" fetch/rendezvous address. A bare address
// (no prefix) is a Unix socket path for compatibility.
func dialAddr(s string) (network, addr string) {
	if rest, ok := strings.CutPrefix(s, "tcp:"); ok {
		return "tcp", rest
	}
	if rest, ok := strings.CutPrefix(s, "unix:"); ok {
		return "unix", rest
	}
	return "unix", s
}

// spawnWorker re-executes the current binary as worker `slot`. MaybeWorker
// in the child (called before main proper does anything else) sees the
// environment and diverts into the worker loop instead of running main.
func spawnWorker(transport, addr string, slot int, secret []byte, slowExit time.Duration, traceCap int) (*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: locate own binary: %w", err)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(),
		envNet+"="+transport,
		envSocket+"="+addr,
		envWorker+"="+strconv.Itoa(slot),
		envSecret+"="+hex.EncodeToString(secret),
	)
	if slowExit > 0 {
		cmd.Env = append(cmd.Env, envSlowExit+"="+strconv.Itoa(int(slowExit.Milliseconds())))
	}
	if traceCap > 0 {
		cmd.Env = append(cmd.Env, envTrace+"="+strconv.Itoa(traceCap))
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawn worker %d: %w", slot, err)
	}
	return cmd, nil
}

// admitted is one worker connection that survived the challenge, along
// with the clock measurement taken during it.
type admitted struct {
	conn  *conn
	hello *Hello
	sync  clockSync
}

// acceptLoop is the rendezvous listener's persistent accept loop: it runs
// for the whole life of the run (not just the initial handshake window),
// which is what lets a restarted worker rejoin. Each accepted connection
// is challenged on its own goroutine, so a peer that connects but never
// completes the handshake (or fails authentication) wastes only its own
// deadline and never blocks a legitimate worker behind it — it is closed
// and dropped without ever reaching the coordinator. The loop exits when
// the listener closes; stop bounds the handshake goroutines at teardown.
func acceptLoop(l net.Listener, secret []byte, hsTimeout time.Duration, admit chan<- admitted, stop <-chan struct{}) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			h, cs, err := challengeConn(c, secret, hsTimeout)
			if err != nil {
				c.Close() // a bad peer is refused, never admitted
				return
			}
			select {
			case admit <- admitted{conn: &conn{Conn: c}, hello: h, sync: cs}:
			case <-stop:
				c.Close()
			}
		}(c)
	}
}

// collectWorkers gathers the initial n authenticated handshakes from the
// accept loop within timeout, indexed by claimed slot. A duplicate or
// out-of-range slot claim is closed without consuming anything.
func collectWorkers(admit <-chan admitted, n int, timeout time.Duration) ([]admitted, error) {
	out := make([]admitted, n)
	got := 0
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for got < n {
		select {
		case a := <-admit:
			slot := a.hello.Worker
			if slot < 0 || slot >= n || out[slot].conn != nil {
				a.conn.Close()
				continue
			}
			out[slot] = a
			got++
		case <-timer.C:
			for _, a := range out {
				if a.conn != nil {
					a.conn.Close()
				}
			}
			return nil, fmt.Errorf("dist: handshake: %d of %d workers authenticated within %v",
				got, n, timeout)
		}
	}
	return out, nil
}
