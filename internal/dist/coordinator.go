package dist

import (
	"fmt"
	"os/exec"
	"sync"
	"time"

	"ompssgo/internal/core"
	"ompssgo/internal/obs"
)

// DefaultCacheBytes is the per-worker version-cache budget when CacheBytes
// is not given.
const DefaultCacheBytes int64 = 64 << 20

// DefaultChainLimit bounds how many tasks one dispatch frame may carry
// when ChainLimit is not given.
const DefaultChainLimit = 16

// Transport names for the Transport option: workers rendezvous over a
// Unix domain socket (single host, the default) or authenticated TCP
// loopback. Every transport runs the same HMAC challenge/response
// handshake; TCP is where it matters, since anything that can reach the
// port can connect.
const (
	TransportUnix = "unix"
	TransportTCP  = "tcp"
)

// config collects Run options.
type config struct {
	cacheBytes int64
	renameCap  int
	rec        *obs.Recorder
	killWorker int // slot to kill, -1 = none
	killAfter  int // kill after this many dispatches to that slot
	transport  string
	secret     []byte
	hsTimeout  time.Duration
	exitKill   time.Duration
	respawn    bool
	chainLimit int
	noForward  bool
	slowExit   time.Duration // test hook: worker sleeps this long before exiting
	traceCap   int           // per-worker trace ring capacity; >0 turns on worker-side tracing
	traceSink  func(*obs.Trace)
}

// Option configures Run.
type Option func(*config)

// CacheBytes sets the per-worker version-cache budget (a target, not a
// hard wall: one task's own working set is always allowed to exceed it).
func CacheBytes(n int64) Option { return func(c *config) { c.cacheBytes = n } }

// RenameCap bounds live renamed instances per version chain, as in the
// in-process backends.
func RenameCap(n int) Option { return func(c *config) { c.renameCap = n } }

// Observe attaches a trace recorder: the coordinator emits the standard
// task-lifecycle vocabulary plus EvXfer/EvXferHit transfer events and
// EvChain chain dispatches, with worker-process slots as lanes.
func Observe(rec *obs.Recorder) Option { return func(c *config) { c.rec = rec } }

// KillWorkerAfter kills worker `slot`'s process right after its n-th
// dispatch frame is sent — the fault-injection hook the crash-confinement
// and rejoin tests and the CI dist-smoke job use. It fires at most once,
// so a respawned worker in the same slot is not re-killed.
func KillWorkerAfter(slot, n int) Option {
	return func(c *config) { c.killWorker, c.killAfter = slot, n }
}

// Transport selects the worker rendezvous transport: TransportUnix (the
// default) or TransportTCP.
func Transport(name string) Option { return func(c *config) { c.transport = name } }

// Secret overrides the run's shared handshake secret. By default every
// run draws a fresh random 32-byte secret; override it only when workers
// must authenticate across a pre-shared boundary.
func Secret(s []byte) Option { return func(c *config) { c.secret = s } }

// HandshakeTimeout bounds how long the coordinator waits for workers to
// connect and authenticate (default DefaultHandshakeTimeout). It also
// bounds each individual challenge/response exchange.
func HandshakeTimeout(d time.Duration) Option { return func(c *config) { c.hsTimeout = d } }

// ExitKillDelay sets the teardown kill deadline: how long a worker that
// was asked to shut down may take to drain and exit before the
// coordinator kills its process. The default derives from the handshake
// timeout, so a loaded host that needed a generous handshake window also
// gets a generous drain window — the old hardcoded 10s deadline SIGKILLed
// healthy workers draining large writebacks on slow CI hosts.
func ExitKillDelay(d time.Duration) Option { return func(c *config) { c.exitKill = d } }

// RespawnLostWorkers makes the coordinator re-exec a fresh worker process
// for any slot whose worker is lost mid-run. The replacement rejoins
// through the normal authenticated rendezvous with a cold cache. Without
// this option a lost slot stays lost (but an externally restarted worker
// that dials back in is still re-admitted).
func RespawnLostWorkers() Option { return func(c *config) { c.respawn = true } }

// ChainLimit bounds how many tasks one dispatch frame may carry as a
// worker-side chain (default DefaultChainLimit). Values below 2 disable
// chaining.
func ChainLimit(n int) Option { return func(c *config) { c.chainLimit = n } }

// NoForwarding disables direct worker-to-worker datum forwarding: every
// transfer relays through the coordinator, as in the original design.
func NoForwarding() Option { return func(c *config) { c.noForward = true } }

// TraceWorkers turns on worker-side tracing: every spawned worker process
// records its own kernel-execution stream into a ring of `capacity`
// events (0 means obs.DefaultCapacity) and ships batches back on its
// completions. Use TraceSink to receive the merged cross-process trace.
func TraceWorkers(capacity int) Option {
	return func(c *config) {
		if capacity <= 0 {
			capacity = obs.DefaultCapacity
		}
		c.traceCap = capacity
	}
}

// TraceSink registers the receiver of the run's merged cross-process
// trace: the coordinator's own stream plus every worker incarnation's
// shipped events, clock-aligned via the handshake round-trip and folded
// into per-(slot, generation) tracks. Implies TraceWorkers; a recorder is
// created internally when Observe was not given. The sink runs on the
// Run goroutine after teardown, before Run returns.
func TraceSink(fn func(*obs.Trace)) Option { return func(c *config) { c.traceSink = fn } }

// withSlowExit is the test hook behind the ExitKillDelay regression
// tests: spawned workers sleep this long between finishing their drain
// and exiting, modeling a slow writeback on a loaded host.
func withSlowExit(d time.Duration) Option { return func(c *config) { c.slowExit = d } }

// WorkerStats is one worker process's slice of the accounting.
type WorkerStats struct {
	Tasks     int
	BytesIn   int64 // bytes shipped to this worker (copy-in)
	BytesOut  int64 // bytes carried back on completions
	CacheHits int
	Lost      bool
}

// Stats is what a distributed run reports.
type Stats struct {
	Workers          int
	Tasks            int
	Failed           int
	Skipped          int
	BytesToWorkers   int64
	BytesFromWorkers int64
	Transfers        int
	TransfersAvoided int
	BytesAvoided     int64
	Evictions        int64
	WorkersLost      int

	// RoundTrips counts dispatch frames the coordinator sent. Without
	// chaining it equals the tasks that reached a worker; chains push
	// several tasks per frame, so RoundTrips < Tasks measures saved
	// coordinator round-trips.
	RoundTrips   int
	Chains       int // chain frames sent
	ChainedTasks int // tasks that rode a chain as a non-first link
	ChainDepth   int // deepest chain, in tasks

	// Forwards counts worker-to-worker forwarding directives issued in
	// place of coordinator-relayed bytes; BytesForwarded is what peers
	// actually copied directly, and ForwardFallbacks counts directives
	// that fell back to a coordinator relay (those bytes land in
	// BytesToWorkers, where they in fact travelled).
	Forwards         int
	BytesForwarded   int64
	ForwardFallbacks int

	Rejoins   int // workers re-admitted after a loss (cold cache)
	ExitKills int // workers killed by the teardown drain deadline

	Graph     core.GraphStats
	PerWorker []WorkerStats
}

// Datum is a distributed datum handle: canonical storage is a
// coordinator-owned byte buffer behind a renameable core datum; workers
// only ever see migrated version instances of it.
type Datum struct {
	id  uint64
	buf []byte
	cd  *core.Datum
}

// Size returns the datum's fixed byte size.
func (d *Datum) Size() int { return len(d.buf) }

// Clause is one (datum, mode) access of a distributed task.
type Clause struct {
	d    *Datum
	mode core.Mode
}

// In declares a read of d's current version.
func In(d *Datum) Clause { return Clause{d, core.In} }

// Out declares d fully overwritten (no copy-in; the kernel's out buffer
// arrives zeroed).
func Out(d *Datum) Clause { return Clause{d, core.Out} }

// InOut declares read-modify-write: the kernel's out buffer arrives
// seeded with the read version's content.
func InOut(d *Datum) Clause { return Clause{d, core.InOut} }

// Handle follows one submitted task.
type Handle struct{ t *core.Task }

// Err blocks until the task finished and returns its outcome (nil,
// RemoteError, WorkerLost, SkipError, or ErrNoWorkers).
func (h *Handle) Err() error {
	<-h.t.Done()
	return h.t.Err()
}

// Skipped reports whether the task was released without executing.
func (h *Handle) Skipped() bool { return h.t.Skipped() }

// outBinding remembers where one dispatched write lands when its bytes
// come home: the coordinator-side payload of the version the task's
// clause bound.
type outBinding struct {
	key     CacheKey
	payload []byte
}

// inflight is one task dispatched to a worker and not yet completed. fwd
// holds the payloads of this task's forwarded reads, so the relay
// fallback can serve them if the peer fetch fails.
type inflight struct {
	t    *core.Task
	info *taskInfo
	outs []outBinding
	fwd  map[CacheKey][]byte
}

// workerState is the coordinator's view of one worker process. queue is
// the dispatched-but-uncompleted tasks in execution order — one entry for
// a plain dispatch, the links of one chain otherwise. gen increments on
// every (re)admission, so a stale reader of a previous connection cannot
// kill a rejoined worker.
type workerState struct {
	slot      int
	cmd       *exec.Cmd
	conn      *conn
	gen       int
	mir       *mirror
	queue     []*inflight
	dead      bool
	fetchAddr string
	sent      int // dispatch frames sent, for KillWorkerAfter
	wstats    WorkerStats
	tb        *traceBucket // current incarnation's shipped-trace bucket (nil unless tracing)
}

// taskInfo carries the dist-level description of a submitted task (the
// core.Task holds only the dependence shape).
type taskInfo struct {
	kernel  string
	args    []byte
	clauses []Clause
}

// send is one frame to transmit after the coordinator lock drops. kill is
// the KillWorkerAfter fault hook, decided under the lock so transmit
// touches no mutable worker state; gen guards the lost-worker path
// against a connection replaced by a rejoin.
type send struct {
	w    *workerState
	gen  int
	f    *Frame
	kill bool
}

// RT is the coordinator runtime handed to the program function: Register
// datums, submit Tasks, Taskwait, Read results back. It implements
// core.Backend as the "dist" execution domain.
type RT struct {
	g       *core.Graph
	ctx     *core.Context
	cfg     config
	workers []*workerState
	rec     *obs.Recorder
	clock   func() int64
	epoch   time.Time
	buckets []*traceBucket // every worker incarnation's bucket, admission order
	secret  []byte
	addr    string // rendezvous address workers dial, for respawn
	stopCh  chan struct{}
	readers sync.WaitGroup

	mu             sync.Mutex
	cond           *sync.Cond
	ready          []*core.Task
	info           map[*core.Task]*taskInfo
	chained        map[*core.Task]bool // speculatively dispatched chain links
	cmds           []*exec.Cmd
	pendingRejoins int
	killFired      bool
	nextID         uint64
	stats          Stats
	closed         bool
}

// DomainName identifies the backend ("dist").
func (rt *RT) DomainName() string { return "dist" }

// Deps exposes the coordinator's dependence tracker.
func (rt *RT) Deps() *core.Graph { return rt.g }

// GraphStats snapshots the tracker's counters.
func (rt *RT) GraphStats() core.GraphStats { return rt.g.Stats() }

var _ core.Backend = (*RT)(nil)

// Register creates a distributed datum holding a copy of content. The
// coordinator owns canonical storage; version instances migrate to
// workers on demand. Size is fixed for the datum's lifetime.
func (rt *RT) Register(content []byte) *Datum {
	buf := make([]byte, len(content))
	copy(buf, content)
	d := &Datum{buf: buf}
	rt.mu.Lock()
	rt.nextID++
	d.id = rt.nextID
	rt.mu.Unlock()
	d.cd = rt.g.Register(d)
	n := len(buf)
	d.cd.EnableRenaming(buf,
		func() any { return make([]byte, n) },
		func(dst, src any) { copy(dst.([]byte), src.([]byte)) })
	return d
}

// Read copies the datum's canonical content out. Call only when the datum
// is quiescent — after a Taskwait — when writeback-on-drain guarantees
// canonical holds the program-order last successful value.
func (rt *RT) Read(d *Datum) []byte {
	ref := d.cd.Canonical()
	src, _ := ref.Payload.([]byte)
	out := make([]byte, len(src))
	copy(out, src)
	return out
}

// Task submits one distributed task: kernel must be registered (in every
// process) under RegisterKernel, args is the opaque argument blob, and
// clauses declare the datum accesses in the order the kernel sees its
// in[]/out[] slices.
func (rt *RT) Task(kernel string, args []byte, clauses ...Clause) *Handle {
	t := &core.Task{
		Label:  kernel,
		Parent: rt.ctx,
	}
	for _, c := range clauses {
		t.Accesses = append(t.Accesses, core.Access{
			Key:   c.d,
			Mode:  c.mode,
			Bytes: int64(len(c.d.buf)),
			Datum: c.d.cd,
		})
	}
	info := &taskInfo{kernel: kernel, args: args, clauses: clauses}

	rt.mu.Lock()
	rt.info[t] = info
	rt.stats.Tasks++
	rt.mu.Unlock()

	// Submit outside rt.mu by lock order (shard locks nest under rt.mu
	// elsewhere, but Submit's wiring holds them across a callback-free
	// region; keeping rt.mu out of it keeps submission concurrent with
	// completions).
	ready := rt.g.Submit(t)

	rt.mu.Lock()
	if rt.rec != nil {
		rt.rec.EmitLabel(-1, obs.EvSubmit, t.ID, uint64(len(t.Preds)), kernel)
		for _, p := range t.Preds {
			rt.rec.Emit(-1, obs.EvEdge, t.ID, p)
		}
	}
	var sends []send
	if ready {
		rt.ready = append(rt.ready, t)
		sends = rt.dispatchLocked()
	}
	rt.mu.Unlock()
	rt.transmit(sends)
	return &Handle{t: t}
}

// Taskwait blocks until every submitted task finished and returns the
// first failure of the batch (clearing it, as in-process taskwait does).
func (rt *RT) Taskwait() error {
	rt.mu.Lock()
	for rt.ctx.Pending() > 0 {
		rt.cond.Wait()
	}
	rt.mu.Unlock()
	return rt.ctx.TakeErr()
}

// readKeys lists the version keys a dispatched task reads (for affinity
// scoring and cache planning); call between Submit and Finish.
func readKeys(t *core.Task, info *taskInfo) []CacheKey {
	var keys []CacheKey
	for _, c := range info.clauses {
		if c.mode == core.In || c.mode == core.InOut {
			read, _ := c.d.cd.Binding(t)
			if read.Valid() {
				keys = append(keys, CacheKey{Datum: c.d.id, Ver: read.Ver})
			}
		}
	}
	return keys
}

// dispatchLocked drains the ready queue onto idle workers and returns the
// frames to transmit once the lock drops. It also resolves tasks that
// never reach a worker: upstream-failed tasks skip, and with every worker
// lost (and no rejoin pending) the rest fail with ErrNoWorkers.
func (rt *RT) dispatchLocked() []send {
	var sends []send
	for len(rt.ready) > 0 {
		t := rt.ready[0]

		// Skip-on-error exactly as the in-process executor: a failed
		// predecessor's error reached the task along its dependence edges.
		if up := t.Upstream(); up != nil {
			rt.ready = rt.ready[1:]
			t.MarkSkipped()
			rt.g.CountSkipped()
			rt.stats.Skipped++
			if rt.rec != nil {
				rt.rec.Emit(-1, obs.EvSkip, t.ID, 0)
			}
			rt.finishLocked(t, &SkipError{Cause: up})
			continue
		}

		// Pick the idle live worker with the most of this task's read set
		// already cached (bytes, not entries — affinity follows data).
		info := rt.info[t]
		keys := readKeys(t, info)
		var best *workerState
		var bestHit int64 = -1
		anyLive := false
		for _, w := range rt.workers {
			if w.dead {
				continue
			}
			anyLive = true
			if len(w.queue) > 0 {
				continue
			}
			if hit := w.mir.hitBytes(keys); hit > bestHit {
				best, bestHit = w, hit
			}
		}
		if !anyLive {
			if rt.pendingRejoins > 0 {
				return sends // a replacement worker is on its way; hold the queue
			}
			rt.ready = rt.ready[1:]
			rt.stats.Failed++
			rt.finishLocked(t, ErrNoWorkers)
			continue
		}
		if best == nil {
			return sends // all live workers busy; done of one resumes us
		}
		rt.ready = rt.ready[1:]
		sends = append(sends, rt.assignLocked(best, t, info))
	}
	return sends
}

// assignLocked dispatches t to w, then tries to grow the dispatch into a
// chain: while the tail task has a sole-dependent successor whose reads
// are all resident on w (counting what earlier links will produce) and
// whose kernel is registered, the successor rides the same frame and the
// worker executes it locally without another coordinator round-trip.
// Links after the first are speculative — the tracker has not released
// them yet — so they are remembered in rt.chained and filtered out of
// Finish's newly-ready set when their predecessor link completes.
func (rt *RT) assignLocked(w *workerState, t *core.Task, info *taskInfo) send {
	// produced accumulates the keys earlier links will have written by the
	// time a later link runs: resident for planning, but NOT in the mirror
	// until the worker actually reports success (a failed writer's outputs
	// never enter either cache).
	produced := make(map[CacheKey]bool)
	var pinned []CacheKey
	var incoming int64

	msg, inf := rt.buildTaskLocked(w, t, info, produced, &pinned, &incoming)
	links := []*TaskMsg{msg}
	w.queue = append(w.queue, inf)
	for _, ob := range inf.outs {
		produced[ob.key] = true
	}

	cur := t
	for len(links) < rt.cfg.chainLimit {
		s, sinfo := rt.chainSuccessorLocked(w, cur, produced)
		if s == nil {
			break
		}
		smsg, sinf := rt.buildTaskLocked(w, s, sinfo, produced, &pinned, &incoming)
		links = append(links, smsg)
		w.queue = append(w.queue, sinf)
		rt.chained[s] = true
		for _, ob := range sinf.outs {
			produced[ob.key] = true
		}
		cur = s
	}

	// One eviction plan for the whole frame, pinned across every link's
	// working set, carried by the first link (the worker applies it before
	// anything else). Shipped reads are already in the mirror; incoming is
	// the outputs still to come.
	links[0].Evict = w.mir.planEvict(pinned, incoming)
	rt.stats.Evictions = 0
	for _, ws := range rt.workers {
		rt.stats.Evictions += ws.mir.evicted
	}

	rt.stats.RoundTrips++
	w.sent++
	var f *Frame
	if len(links) == 1 {
		f = &Frame{Task: links[0]}
	} else {
		f = &Frame{Chain: &ChainMsg{Tasks: links}}
		rt.stats.Chains++
		rt.stats.ChainedTasks += len(links) - 1
		if len(links) > rt.stats.ChainDepth {
			rt.stats.ChainDepth = len(links)
		}
		if rt.rec != nil {
			rt.rec.Emit(w.slot, obs.EvChain, t.ID, uint64(len(links)))
		}
	}
	kill := false
	if !rt.killFired && rt.cfg.killWorker == w.slot && w.sent >= rt.cfg.killAfter {
		kill, rt.killFired = true, true
	}
	return send{w: w, gen: w.gen, f: f, kill: kill}
}

// chainSuccessorLocked finds a successor of cur eligible to ride the same
// dispatch frame: the tracker's SoleDependents query proves cur is its
// only gate (and no finished predecessor failed), and on top of that it
// must be a dist task with a registered kernel whose every read is
// resident on w or produced by an earlier link of this frame. Chains are
// linear: the first eligible successor wins.
func (rt *RT) chainSuccessorLocked(w *workerState, cur *core.Task, produced map[CacheKey]bool) (*core.Task, *taskInfo) {
	for _, s := range rt.g.SoleDependents(cur) {
		if rt.chained[s] {
			continue
		}
		sinfo := rt.info[s]
		if sinfo == nil {
			continue
		}
		if _, ok := lookupKernel(sinfo.kernel); !ok {
			continue
		}
		resident := true
		for _, k := range readKeys(s, sinfo) {
			if !produced[k] && !w.mir.has(k) {
				resident = false
				break
			}
		}
		if !resident {
			continue
		}
		return s, sinfo
	}
	return nil, nil
}

// buildTaskLocked builds the wire message for one (worker, task) pairing,
// updating the worker's cache mirror and the transfer accounting. pinned
// and incoming accumulate across chain links for the caller's single
// eviction plan. produced marks keys earlier links of the same frame will
// have written (resident by execution time, absent from the mirror).
func (rt *RT) buildTaskLocked(w *workerState, t *core.Task, info *taskInfo,
	produced map[CacheKey]bool, pinned *[]CacheKey, incoming *int64) (*TaskMsg, *inflight) {
	msg := &TaskMsg{ID: t.ID, Kernel: info.kernel, Args: info.args}

	// Layout: kernel-visible In reads first, one entry per In clause in
	// clause order (the kernel's in[] indexes by clause, so no dedupe —
	// a repeated version costs nothing extra anyway: the first occurrence
	// ships, later ones resolve as cache hits). InOut seed reads follow;
	// writes in clause order referencing their seed.
	type pendRead struct {
		key  CacheKey
		data []byte
	}
	var reads []pendRead
	var writes []WireOut
	for _, c := range info.clauses {
		if c.mode != core.In {
			continue
		}
		read, _ := c.d.cd.Binding(t)
		reads = append(reads, pendRead{CacheKey{Datum: c.d.id, Ver: read.Ver}, read.Payload.([]byte)})
	}
	msg.NIn = len(reads)
	for _, c := range info.clauses {
		if c.mode != core.Out && c.mode != core.InOut {
			continue
		}
		read, write := c.d.cd.Binding(t)
		wo := WireOut{Datum: c.d.id, Ver: write.Ver, Size: int64(len(c.d.buf)), SeedFrom: -1}
		if c.mode == core.InOut && read.Valid() {
			reads = append(reads, pendRead{CacheKey{Datum: c.d.id, Ver: read.Ver}, read.Payload.([]byte)})
			wo.SeedFrom = len(reads) - 1
		}
		writes = append(writes, wo)
	}

	inf := &inflight{t: t, info: info, outs: make([]outBinding, 0, len(writes))}
	for _, wo := range writes {
		k := CacheKey{Datum: wo.Datum, Ver: wo.Ver}
		*pinned = append(*pinned, k)
		*incoming += wo.Size
		// Resolve the write's coordinator-side landing payload now, while
		// the binding is live.
		var payload []byte
		for _, c := range info.clauses {
			if c.d.id == wo.Datum && (c.mode == core.Out || c.mode == core.InOut) {
				_, write := c.d.cd.Binding(t)
				if write.Ver == wo.Ver {
					payload = write.Payload.([]byte)
					break
				}
			}
		}
		inf.outs = append(inf.outs, outBinding{key: k, payload: payload})
	}

	for _, r := range reads {
		*pinned = append(*pinned, r.key)
		wr := WireRef{Datum: r.key.Datum, Ver: r.key.Ver, Size: int64(len(r.data))}
		switch {
		case w.mir.has(r.key):
			w.mir.touch(r.key)
			rt.stats.TransfersAvoided++
			rt.stats.BytesAvoided += wr.Size
			w.wstats.CacheHits++
			if rt.rec != nil {
				rt.rec.Emit(w.slot, obs.EvXferHit, t.ID, uint64(wr.Size))
			}
		case produced[r.key]:
			// An earlier link of this frame writes it right here on w.
			rt.stats.TransfersAvoided++
			rt.stats.BytesAvoided += wr.Size
			w.wstats.CacheHits++
			if rt.rec != nil {
				rt.rec.Emit(w.slot, obs.EvXferHit, t.ID, uint64(wr.Size))
			}
		default:
			if p := rt.forwardSourceLocked(r.key, w); p != nil {
				// Forwarding directive: the peer holds it, so point the
				// worker there instead of relaying the bytes. Keep the
				// payload at hand for the relay fallback.
				wr.From = p.fetchAddr
				p.mir.touch(r.key)
				if inf.fwd == nil {
					inf.fwd = make(map[CacheKey][]byte)
				}
				inf.fwd[r.key] = r.data
				w.mir.insert(r.key, wr.Size)
				rt.stats.Forwards++
			} else {
				wr.Bytes = r.data
				w.mir.insert(r.key, wr.Size)
				rt.stats.Transfers++
				rt.stats.BytesToWorkers += wr.Size
				w.wstats.BytesIn += wr.Size
				if rt.rec != nil {
					rt.rec.Emit(w.slot, obs.EvXfer, t.ID, uint64(wr.Size))
				}
			}
		}
		msg.Reads = append(msg.Reads, wr)
	}
	msg.Writes = writes

	rt.g.MarkRunning(t, w.slot)
	w.wstats.Tasks++
	if rt.rec != nil {
		rt.rec.Emit(w.slot, obs.EvStart, t.ID, 0)
	}
	return msg, inf
}

// forwardSourceLocked picks the worker to forward a read from: live,
// rejoined-or-original with a fetch address, holding the key, and not the
// destination itself. Lowest slot wins for determinism.
func (rt *RT) forwardSourceLocked(k CacheKey, not *workerState) *workerState {
	if rt.cfg.noForward {
		return nil
	}
	for _, p := range rt.workers {
		if p != not && !p.dead && p.fetchAddr != "" && p.mir.has(k) {
			return p
		}
	}
	return nil
}

// transmit writes dispatched frames outside the coordinator lock; a send
// failure is a lost worker. It also trips the KillWorkerAfter fault hook.
func (rt *RT) transmit(sends []send) {
	for _, s := range sends {
		err := s.w.conn.send(s.f)
		if err != nil {
			rt.workerLost(s.w, s.gen, fmt.Errorf("send: %w", err))
			continue
		}
		if s.kill {
			s.w.cmd.Process.Kill()
		}
	}
}

// finishLocked retires a task through the dependence tracker: newly
// released dependents join the ready queue (the caller's dispatchLocked
// loop picks them up) and taskwaiters are woken. A dependent that was
// speculatively dispatched as a chain link is already on a worker, so it
// is filtered out here instead of re-queued. Held lock: rt.mu.
func (rt *RT) finishLocked(t *core.Task, err error) {
	delete(rt.info, t)
	newly := rt.g.Finish(t, err)
	for _, n := range newly {
		if rt.chained[n] {
			delete(rt.chained, n)
			continue
		}
		rt.ready = append(rt.ready, n)
	}
	rt.cond.Broadcast()
}

// reader is the per-connection receive loop (one goroutine per admitted
// worker connection). gen pins the connection generation: after a rejoin
// replaces the connection, this reader's errors are stale and ignored.
func (rt *RT) reader(w *workerState, gen int) {
	defer rt.readers.Done()
	c := w.conn
	for {
		f, err := ReadFrame(c.Conn)
		if err != nil {
			rt.workerLost(w, gen, err)
			return
		}
		switch {
		case f.Done != nil:
			rt.handleDone(w, gen, f.Done)
		case f.Fetch != nil:
			rt.handleFetch(w, gen, c, f.Fetch)
		case f.Trace != nil:
			rt.handleTrace(w, gen, f.Trace)
		default:
			rt.workerLost(w, gen, fmt.Errorf("unexpected frame from worker"))
			return
		}
	}
}

// handleFetch serves a worker's relay-fallback request from the payloads
// stashed with its in-flight tasks. The worker only asks mid-task, and
// the coordinator never dispatches to a busy worker, so the Data answer
// is the next frame the worker reads.
func (rt *RT) handleFetch(w *workerState, gen int, c *conn, m *FetchMsg) {
	k := CacheKey{Datum: m.Datum, Ver: m.Ver}
	var b []byte
	rt.mu.Lock()
	if w.gen == gen {
		var task uint64
		for _, inf := range w.queue {
			if bb, ok := inf.fwd[k]; ok {
				b = bb
				task = inf.t.ID
				break
			}
		}
		if b != nil {
			// The forward fell back to a relay: these bytes did go through
			// the coordinator after all.
			rt.stats.BytesToWorkers += int64(len(b))
			w.wstats.BytesIn += int64(len(b))
			if rt.rec != nil {
				rt.rec.Emit(w.slot, obs.EvXfer, task, uint64(len(b)))
			}
		}
	}
	rt.mu.Unlock()
	if err := c.send(&Frame{Data: &DataMsg{Datum: m.Datum, Ver: m.Ver, Found: b != nil, Bytes: b}}); err != nil {
		rt.workerLost(w, gen, err)
	}
}

// handleDone imports a completed task's outputs and retires it. For a
// chain, completions arrive in link order; a failed link means the worker
// aborted the rest of the chain, so the remaining queued links drain as
// skipped (each depends on the failure through the chain's edges).
func (rt *RT) handleDone(w *workerState, gen int, d *DoneMsg) {
	rt.mu.Lock()
	if w.gen != gen || w.dead {
		rt.mu.Unlock()
		return
	}
	if len(w.queue) == 0 || w.queue[0].t.ID != d.ID {
		rt.mu.Unlock()
		rt.workerLost(w, gen, fmt.Errorf("completion for unexpected task %d", d.ID))
		return
	}
	inf := w.queue[0]
	w.queue = w.queue[1:]
	if w.tb != nil {
		w.tb.events = append(w.tb.events, d.Events...)
		w.tb.dropped += d.EventsDropped
	}
	var err error
	if d.Err != "" {
		err = &RemoteError{Worker: w.slot, Kernel: inf.info.kernel, Msg: d.Err, Panic: d.Panic}
		rt.stats.Failed++
	} else if len(d.Outputs) != len(inf.outs) {
		err = &RemoteError{Worker: w.slot, Kernel: inf.info.kernel,
			Msg: fmt.Sprintf("got %d outputs, want %d", len(d.Outputs), len(inf.outs))}
		rt.stats.Failed++
	} else {
		// Import produced bytes onto the bound version payloads BEFORE
		// Finish: Finish releases the bindings and may immediately write
		// the version back onto canonical storage.
		for i, ob := range inf.outs {
			copy(ob.payload, d.Outputs[i])
			n := int64(len(d.Outputs[i]))
			rt.stats.BytesFromWorkers += n
			w.wstats.BytesOut += n
			w.mir.insert(ob.key, int64(len(ob.payload)))
			if rt.rec != nil {
				rt.rec.Emit(w.slot, obs.EvXfer, inf.t.ID, uint64(n))
			}
		}
		rt.stats.BytesForwarded += d.FetchedBytes
		rt.stats.ForwardFallbacks += d.FetchFallbacks
	}
	if rt.rec != nil {
		rt.rec.Emit(w.slot, obs.EvEnd, inf.t.ID, 0)
	}
	rt.finishLocked(inf.t, err)
	if err != nil && len(w.queue) > 0 {
		// Chain abort: the worker sends nothing for the links after a
		// failure. Each remaining link's upstream error was just set by its
		// predecessor's Finish, so drain them as skipped right now.
		rest := w.queue
		w.queue = nil
		for _, linf := range rest {
			linf.t.MarkSkipped()
			rt.g.CountSkipped()
			rt.stats.Skipped++
			if rt.rec != nil {
				rt.rec.Emit(w.slot, obs.EvSkip, linf.t.ID, 0)
				rt.rec.Emit(w.slot, obs.EvEnd, linf.t.ID, 0)
			}
			rt.finishLocked(linf.t, &SkipError{Cause: linf.t.Upstream()})
		}
	}
	sends := rt.dispatchLocked()
	rt.mu.Unlock()
	rt.transmit(sends)
}

// workerLost marks a worker dead, fails its in-flight tasks with
// WorkerLost, and lets everything else keep running. Crash confinement
// falls out of the core graph: the failure propagates only along the lost
// tasks' dependence edges. With RespawnLostWorkers a replacement process
// is spawned; it rejoins through the rendezvous with a cold cache.
func (rt *RT) workerLost(w *workerState, gen int, cause error) {
	rt.mu.Lock()
	if w.dead || rt.closed || w.gen != gen {
		rt.mu.Unlock()
		return
	}
	w.dead = true
	w.wstats.Lost = true
	rt.stats.WorkersLost++
	w.conn.Close()
	w.mir = newMirror(rt.cfg.cacheBytes) // its cache died with it
	w.fetchAddr = ""
	queue := w.queue
	w.queue = nil
	for _, inf := range queue {
		rt.stats.Failed++
		rt.finishLocked(inf.t, &WorkerLost{Worker: w.slot, Cause: cause})
	}
	if rt.cfg.respawn {
		if cmd, err := spawnWorker(rt.cfg.transport, rt.addr, w.slot, rt.secret, rt.cfg.slowExit, rt.cfg.traceCap); err == nil {
			w.cmd = cmd
			rt.cmds = append(rt.cmds, cmd)
			rt.pendingRejoins++
			// If the replacement never authenticates, stop holding the
			// ready queue for it: ErrNoWorkers beats a hang.
			time.AfterFunc(rt.cfg.hsTimeout, func() {
				rt.mu.Lock()
				if !rt.closed && w.dead && rt.pendingRejoins > 0 {
					rt.pendingRejoins--
					sends := rt.dispatchLocked()
					rt.mu.Unlock()
					rt.transmit(sends)
					return
				}
				rt.mu.Unlock()
			})
		}
	}
	sends := rt.dispatchLocked()
	rt.cond.Broadcast()
	rt.mu.Unlock()
	rt.transmit(sends)
}

// rejoinLoop re-admits workers for dead slots for the rest of the run:
// respawned replacements and externally restarted workers both arrive
// here through the same authenticated rendezvous as the initial set.
func (rt *RT) rejoinLoop(admitCh <-chan admitted) {
	for {
		select {
		case a := <-admitCh:
			rt.rejoin(a)
		case <-rt.stopCh:
			return
		}
	}
}

// rejoin re-admits one authenticated connection claiming a dead slot. The
// slot restarts with a cold cache: a fresh mirror (nothing assumed
// resident) and a bumped connection generation so stale readers of the
// old connection cannot touch it. Placement sees it as idle immediately.
func (rt *RT) rejoin(a admitted) {
	rt.mu.Lock()
	slot := a.hello.Worker
	if rt.closed || slot < 0 || slot >= len(rt.workers) || !rt.workers[slot].dead {
		rt.mu.Unlock()
		a.conn.Close()
		return
	}
	w := rt.workers[slot]
	w.conn = a.conn
	w.gen++
	w.dead = false
	w.mir = newMirror(rt.cfg.cacheBytes)
	w.fetchAddr = a.hello.FetchAddr
	w.queue = nil
	rt.stats.Rejoins++
	rt.openBucketLocked(w, a)
	if rt.pendingRejoins > 0 {
		rt.pendingRejoins--
	}
	rt.readers.Add(1)
	go rt.reader(w, w.gen)
	sends := rt.dispatchLocked()
	rt.mu.Unlock()
	rt.transmit(sends)
}

// Run boots a distributed execution domain with `workers` worker
// processes, runs program on the calling goroutine, waits for every task,
// and tears the domain down. The returned Stats hold the transfer and
// cache accounting; the returned error is the program's error, or the
// first task failure the final taskwait saw.
func Run(workers int, program func(*RT) error, opts ...Option) (Stats, error) {
	if workers < 1 {
		return Stats{}, fmt.Errorf("dist: need at least 1 worker, got %d", workers)
	}
	cfg := config{cacheBytes: DefaultCacheBytes, killWorker: -1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.transport == "" {
		cfg.transport = TransportUnix
	}
	if cfg.hsTimeout <= 0 {
		cfg.hsTimeout = DefaultHandshakeTimeout
	}
	if cfg.exitKill <= 0 {
		cfg.exitKill = cfg.hsTimeout
	}
	if cfg.chainLimit == 0 {
		cfg.chainLimit = DefaultChainLimit
	}
	if cfg.traceSink != nil {
		if cfg.traceCap == 0 {
			cfg.traceCap = obs.DefaultCapacity
		}
		if cfg.rec == nil {
			cfg.rec = obs.NewRecorder() // the sink needs a coordinator base stream
		}
	}
	secret := cfg.secret
	if secret == nil {
		var err error
		if secret, err = newSecret(); err != nil {
			return Stats{}, err
		}
	}

	l, addr, cleanup, err := listenRendezvous(cfg.transport)
	if err != nil {
		return Stats{}, err
	}
	defer cleanup()
	defer l.Close()

	g := core.NewGraph()
	g.ConfigureRenaming(core.Renaming{Enabled: true, MaxVersions: cfg.renameCap})
	rt := &RT{
		g:       g,
		ctx:     &core.Context{},
		cfg:     cfg,
		rec:     cfg.rec,
		secret:  secret,
		addr:    addr,
		stopCh:  make(chan struct{}),
		info:    make(map[*core.Task]*taskInfo),
		chained: make(map[*core.Task]bool),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.stats.Workers = workers

	// Reap whatever worker processes are still tracked if we bail out on
	// any path below; the normal teardown empties rt.cmds first.
	defer func() {
		rt.mu.Lock()
		leftover := rt.cmds
		rt.cmds = nil
		rt.mu.Unlock()
		for _, c := range leftover {
			c.Process.Kill()
			c.Wait()
		}
	}()

	admitCh := make(chan admitted, workers)
	go acceptLoop(l, secret, cfg.hsTimeout, admitCh, rt.stopCh)
	defer close(rt.stopCh)

	for i := 0; i < workers; i++ {
		cmd, err := spawnWorker(cfg.transport, addr, i, secret, cfg.slowExit, cfg.traceCap)
		if err != nil {
			return Stats{}, err
		}
		rt.cmds = append(rt.cmds, cmd)
	}
	adm, err := collectWorkers(admitCh, workers, cfg.hsTimeout)
	if err != nil {
		return Stats{}, err
	}

	if rt.rec != nil {
		epoch := time.Now()
		rt.epoch = epoch
		rt.clock = func() int64 { return time.Since(epoch).Nanoseconds() }
		rt.rec.Attach(workers, "dist", false, rt.clock)
		g.SetProbe(rt.rec)
	}
	rt.mu.Lock()
	cmds := rt.cmds
	rt.mu.Unlock()
	for i := 0; i < workers; i++ {
		w := &workerState{slot: i, cmd: cmds[i], conn: adm[i].conn,
			gen: 1, mir: newMirror(cfg.cacheBytes), fetchAddr: adm[i].hello.FetchAddr}
		rt.openBucketLocked(w, adm[i])
		rt.workers = append(rt.workers, w)
	}
	for _, w := range rt.workers {
		rt.readers.Add(1)
		go rt.reader(w, w.gen)
	}
	go rt.rejoinLoop(admitCh)

	progErr := program(rt)
	twErr := rt.Taskwait()

	// Graceful drain: ask live workers to exit, close connections so the
	// reader goroutines return, and reap the processes. The kill fallback
	// (so a wedged worker cannot hang the coordinator) fires after the
	// configured ExitKillDelay — generous by default, because a healthy
	// worker draining a large writeback on a loaded host is not wedged.
	rt.mu.Lock()
	rt.closed = true
	live := make([]*workerState, 0, workers)
	for _, w := range rt.workers {
		if !w.dead {
			live = append(live, w)
		}
	}
	cmds = rt.cmds
	rt.cmds = nil
	rt.mu.Unlock()
	for _, w := range live {
		w.conn.send(&Frame{Shutdown: true})
	}
	deadline := time.AfterFunc(cfg.exitKill, func() {
		rt.mu.Lock()
		for _, c := range cmds {
			if c.Process.Kill() == nil {
				rt.stats.ExitKills++
			}
		}
		rt.mu.Unlock()
	})
	for _, c := range cmds {
		c.Wait()
	}
	deadline.Stop()
	for _, w := range rt.workers {
		w.conn.Close()
	}
	rt.readers.Wait()

	if cfg.traceSink != nil && rt.rec != nil {
		cfg.traceSink(rt.mergedTrace())
	}

	rt.mu.Lock()
	rt.stats.Graph = rt.g.Stats()
	rt.stats.PerWorker = make([]WorkerStats, workers)
	for i, w := range rt.workers {
		rt.stats.PerWorker[i] = w.wstats
	}
	stats := rt.stats
	rt.mu.Unlock()

	if progErr != nil {
		return stats, progErr
	}
	return stats, twErr
}
