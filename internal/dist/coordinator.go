package dist

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"ompssgo/internal/core"
	"ompssgo/internal/obs"
)

// DefaultCacheBytes is the per-worker version-cache budget when CacheBytes
// is not given.
const DefaultCacheBytes int64 = 64 << 20

// config collects Run options.
type config struct {
	cacheBytes int64
	renameCap  int
	rec        *obs.Recorder
	killWorker int // slot to kill, -1 = none
	killAfter  int // kill after this many dispatches to that slot
}

// Option configures Run.
type Option func(*config)

// CacheBytes sets the per-worker version-cache budget (a target, not a
// hard wall: one task's own working set is always allowed to exceed it).
func CacheBytes(n int64) Option { return func(c *config) { c.cacheBytes = n } }

// RenameCap bounds live renamed instances per version chain, as in the
// in-process backends.
func RenameCap(n int) Option { return func(c *config) { c.renameCap = n } }

// Observe attaches a trace recorder: the coordinator emits the standard
// task-lifecycle vocabulary plus EvXfer/EvXferHit transfer events, with
// worker-process slots as lanes.
func Observe(rec *obs.Recorder) Option { return func(c *config) { c.rec = rec } }

// KillWorkerAfter kills worker `slot`'s process right after its n-th task
// dispatch is sent — the fault-injection hook the crash-confinement tests
// and the CI dist-smoke job use.
func KillWorkerAfter(slot, n int) Option {
	return func(c *config) { c.killWorker, c.killAfter = slot, n }
}

// WorkerStats is one worker process's slice of the accounting.
type WorkerStats struct {
	Tasks     int
	BytesIn   int64 // bytes shipped to this worker (copy-in)
	BytesOut  int64 // bytes carried back on completions
	CacheHits int
	Lost      bool
}

// Stats is what a distributed run reports.
type Stats struct {
	Workers          int
	Tasks            int
	Failed           int
	Skipped          int
	BytesToWorkers   int64
	BytesFromWorkers int64
	Transfers        int
	TransfersAvoided int
	BytesAvoided     int64
	Evictions        int64
	WorkersLost      int
	Graph            core.GraphStats
	PerWorker        []WorkerStats
}

// Datum is a distributed datum handle: canonical storage is a
// coordinator-owned byte buffer behind a renameable core datum; workers
// only ever see migrated version instances of it.
type Datum struct {
	id  uint64
	buf []byte
	cd  *core.Datum
}

// Size returns the datum's fixed byte size.
func (d *Datum) Size() int { return len(d.buf) }

// Clause is one (datum, mode) access of a distributed task.
type Clause struct {
	d    *Datum
	mode core.Mode
}

// In declares a read of d's current version.
func In(d *Datum) Clause { return Clause{d, core.In} }

// Out declares d fully overwritten (no copy-in; the kernel's out buffer
// arrives zeroed).
func Out(d *Datum) Clause { return Clause{d, core.Out} }

// InOut declares read-modify-write: the kernel's out buffer arrives
// seeded with the read version's content.
func InOut(d *Datum) Clause { return Clause{d, core.InOut} }

// Handle follows one submitted task.
type Handle struct{ t *core.Task }

// Err blocks until the task finished and returns its outcome (nil,
// RemoteError, WorkerLost, SkipError, or ErrNoWorkers).
func (h *Handle) Err() error {
	<-h.t.Done()
	return h.t.Err()
}

// Skipped reports whether the task was released without executing.
func (h *Handle) Skipped() bool { return h.t.Skipped() }

// outBinding remembers where one dispatched write lands when its bytes
// come home: the coordinator-side payload of the version the task's
// clause bound.
type outBinding struct {
	key     CacheKey
	payload []byte
}

// inflight is one task currently executing on a worker.
type inflight struct {
	t    *core.Task
	info *taskInfo
	outs []outBinding
}

// workerState is the coordinator's view of one worker process.
type workerState struct {
	slot   int
	cmd    *exec.Cmd
	conn   *conn
	mir    *mirror
	busy   *inflight
	dead   bool
	sent   int // dispatches sent, for KillWorkerAfter
	wstats WorkerStats
}

// taskInfo carries the dist-level description of a submitted task (the
// core.Task holds only the dependence shape).
type taskInfo struct {
	kernel  string
	args    []byte
	clauses []Clause
}

// send is one frame to transmit after the coordinator lock drops. kill is
// the KillWorkerAfter fault hook, decided under the lock so transmit
// touches no mutable worker state.
type send struct {
	w    *workerState
	f    *Frame
	kill bool
}

// RT is the coordinator runtime handed to the program function: Register
// datums, submit Tasks, Taskwait, Read results back. It implements
// core.Backend as the "dist" execution domain.
type RT struct {
	g       *core.Graph
	ctx     *core.Context
	cfg     config
	workers []*workerState
	rec     *obs.Recorder
	clock   func() int64

	mu     sync.Mutex
	cond   *sync.Cond
	ready  []*core.Task
	info   map[*core.Task]*taskInfo
	nextID uint64
	stats  Stats
	closed bool
}

// DomainName identifies the backend ("dist").
func (rt *RT) DomainName() string { return "dist" }

// Deps exposes the coordinator's dependence tracker.
func (rt *RT) Deps() *core.Graph { return rt.g }

// GraphStats snapshots the tracker's counters.
func (rt *RT) GraphStats() core.GraphStats { return rt.g.Stats() }

var _ core.Backend = (*RT)(nil)

// Register creates a distributed datum holding a copy of content. The
// coordinator owns canonical storage; version instances migrate to
// workers on demand. Size is fixed for the datum's lifetime.
func (rt *RT) Register(content []byte) *Datum {
	buf := make([]byte, len(content))
	copy(buf, content)
	d := &Datum{buf: buf}
	rt.mu.Lock()
	rt.nextID++
	d.id = rt.nextID
	rt.mu.Unlock()
	d.cd = rt.g.Register(d)
	n := len(buf)
	d.cd.EnableRenaming(buf,
		func() any { return make([]byte, n) },
		func(dst, src any) { copy(dst.([]byte), src.([]byte)) })
	return d
}

// Read copies the datum's canonical content out. Call only when the datum
// is quiescent — after a Taskwait — when writeback-on-drain guarantees
// canonical holds the program-order last successful value.
func (rt *RT) Read(d *Datum) []byte {
	ref := d.cd.Canonical()
	src, _ := ref.Payload.([]byte)
	out := make([]byte, len(src))
	copy(out, src)
	return out
}

// Task submits one distributed task: kernel must be registered (in every
// process) under RegisterKernel, args is the opaque argument blob, and
// clauses declare the datum accesses in the order the kernel sees its
// in[]/out[] slices.
func (rt *RT) Task(kernel string, args []byte, clauses ...Clause) *Handle {
	t := &core.Task{
		Label:  kernel,
		Parent: rt.ctx,
	}
	for _, c := range clauses {
		t.Accesses = append(t.Accesses, core.Access{
			Key:   c.d,
			Mode:  c.mode,
			Bytes: int64(len(c.d.buf)),
			Datum: c.d.cd,
		})
	}
	info := &taskInfo{kernel: kernel, args: args, clauses: clauses}

	rt.mu.Lock()
	rt.info[t] = info
	rt.stats.Tasks++
	rt.mu.Unlock()

	// Submit outside rt.mu by lock order (shard locks nest under rt.mu
	// elsewhere, but Submit's wiring holds them across a callback-free
	// region; keeping rt.mu out of it keeps submission concurrent with
	// completions).
	ready := rt.g.Submit(t)

	rt.mu.Lock()
	if rt.rec != nil {
		rt.rec.EmitLabel(-1, obs.EvSubmit, t.ID, uint64(len(t.Preds)), kernel)
		for _, p := range t.Preds {
			rt.rec.Emit(-1, obs.EvEdge, t.ID, p)
		}
	}
	var sends []send
	if ready {
		rt.ready = append(rt.ready, t)
		sends = rt.dispatchLocked()
	}
	rt.mu.Unlock()
	rt.transmit(sends)
	return &Handle{t: t}
}

// Taskwait blocks until every submitted task finished and returns the
// first failure of the batch (clearing it, as in-process taskwait does).
func (rt *RT) Taskwait() error {
	rt.mu.Lock()
	for rt.ctx.Pending() > 0 {
		rt.cond.Wait()
	}
	rt.mu.Unlock()
	return rt.ctx.TakeErr()
}

// readKeys lists the version keys a dispatched task reads (for affinity
// scoring and cache planning); call between Submit and Finish.
func readKeys(t *core.Task, info *taskInfo) []CacheKey {
	var keys []CacheKey
	for _, c := range info.clauses {
		if c.mode == core.In || c.mode == core.InOut {
			read, _ := c.d.cd.Binding(t)
			if read.Valid() {
				keys = append(keys, CacheKey{Datum: c.d.id, Ver: read.Ver})
			}
		}
	}
	return keys
}

// dispatchLocked drains the ready queue onto idle workers and returns the
// frames to transmit once the lock drops. It also resolves tasks that
// never reach a worker: upstream-failed tasks skip, and with every worker
// lost the rest fail with ErrNoWorkers.
func (rt *RT) dispatchLocked() []send {
	var sends []send
	for len(rt.ready) > 0 {
		t := rt.ready[0]

		// Skip-on-error exactly as the in-process executor: a failed
		// predecessor's error reached the task along its dependence edges.
		if up := t.Upstream(); up != nil {
			rt.ready = rt.ready[1:]
			t.MarkSkipped()
			rt.g.CountSkipped()
			rt.stats.Skipped++
			if rt.rec != nil {
				rt.rec.Emit(-1, obs.EvSkip, t.ID, 0)
			}
			rt.finishLocked(t, &SkipError{Cause: up})
			continue
		}

		// Pick the idle live worker with the most of this task's read set
		// already cached (bytes, not entries — affinity follows data).
		info := rt.info[t]
		keys := readKeys(t, info)
		var best *workerState
		var bestHit int64 = -1
		anyLive := false
		for _, w := range rt.workers {
			if w.dead {
				continue
			}
			anyLive = true
			if w.busy != nil {
				continue
			}
			if hit := w.mir.hitBytes(keys); hit > bestHit {
				best, bestHit = w, hit
			}
		}
		if !anyLive {
			rt.ready = rt.ready[1:]
			rt.stats.Failed++
			rt.finishLocked(t, ErrNoWorkers)
			continue
		}
		if best == nil {
			return sends // all live workers busy; done of one resumes us
		}
		rt.ready = rt.ready[1:]
		sends = append(sends, rt.assignLocked(best, t, info))
	}
	return sends
}

// assignLocked builds the task message for one (worker, task) pairing,
// updating the worker's cache mirror and the transfer accounting.
func (rt *RT) assignLocked(w *workerState, t *core.Task, info *taskInfo) send {
	msg := &TaskMsg{ID: t.ID, Kernel: info.kernel, Args: info.args}

	// Layout: kernel-visible In reads first, one entry per In clause in
	// clause order (the kernel's in[] indexes by clause, so no dedupe —
	// a repeated version costs nothing extra anyway: the first occurrence
	// ships, later ones resolve as cache hits). InOut seed reads follow;
	// writes in clause order referencing their seed.
	type pendRead struct {
		key  CacheKey
		data []byte
	}
	var reads []pendRead
	var writes []WireOut
	for _, c := range info.clauses {
		if c.mode != core.In {
			continue
		}
		read, _ := c.d.cd.Binding(t)
		reads = append(reads, pendRead{CacheKey{Datum: c.d.id, Ver: read.Ver}, read.Payload.([]byte)})
	}
	msg.NIn = len(reads)
	for _, c := range info.clauses {
		if c.mode != core.Out && c.mode != core.InOut {
			continue
		}
		read, write := c.d.cd.Binding(t)
		wo := WireOut{Datum: c.d.id, Ver: write.Ver, Size: int64(len(c.d.buf)), SeedFrom: -1}
		if c.mode == core.InOut && read.Valid() {
			reads = append(reads, pendRead{CacheKey{Datum: c.d.id, Ver: read.Ver}, read.Payload.([]byte)})
			wo.SeedFrom = len(reads) - 1
		}
		writes = append(writes, wo)
	}

	// Cache plan: pin everything this task touches, make room for what
	// must move, and translate misses into shipped bytes.
	pinned := make([]CacheKey, 0, len(reads)+len(writes))
	var incoming int64
	for _, r := range reads {
		pinned = append(pinned, r.key)
		if !w.mir.has(r.key) {
			incoming += int64(len(r.data))
		}
	}
	outs := make([]outBinding, 0, len(writes))
	for i, wo := range writes {
		k := CacheKey{Datum: wo.Datum, Ver: wo.Ver}
		pinned = append(pinned, k)
		incoming += wo.Size
		// Resolve the write's coordinator-side landing payload now, while
		// the binding is live.
		var payload []byte
		for _, c := range info.clauses {
			if c.d.id == wo.Datum && (c.mode == core.Out || c.mode == core.InOut) {
				_, write := c.d.cd.Binding(t)
				if write.Ver == wo.Ver {
					payload = write.Payload.([]byte)
					break
				}
			}
		}
		outs = append(outs, outBinding{key: k, payload: payload})
		writes[i] = wo
	}
	msg.Evict = w.mir.planEvict(pinned, incoming)
	rt.stats.Evictions = 0
	for _, ws := range rt.workers {
		rt.stats.Evictions += ws.mir.evicted
	}

	for _, r := range reads {
		wr := WireRef{Datum: r.key.Datum, Ver: r.key.Ver, Size: int64(len(r.data))}
		if w.mir.has(r.key) {
			w.mir.touch(r.key)
			rt.stats.TransfersAvoided++
			rt.stats.BytesAvoided += wr.Size
			w.wstats.CacheHits++
			if rt.rec != nil {
				rt.rec.Emit(w.slot, obs.EvXferHit, t.ID, uint64(wr.Size))
			}
		} else {
			wr.Bytes = r.data
			w.mir.insert(r.key, wr.Size)
			rt.stats.Transfers++
			rt.stats.BytesToWorkers += wr.Size
			w.wstats.BytesIn += wr.Size
			if rt.rec != nil {
				rt.rec.Emit(w.slot, obs.EvXfer, t.ID, uint64(wr.Size))
			}
		}
		msg.Reads = append(msg.Reads, wr)
	}
	msg.Writes = writes

	rt.g.MarkRunning(t, w.slot)
	w.busy = &inflight{t: t, info: info, outs: outs}
	w.wstats.Tasks++
	w.sent++
	if rt.rec != nil {
		rt.rec.Emit(w.slot, obs.EvStart, t.ID, 0)
	}
	kill := rt.cfg.killWorker == w.slot && w.sent >= rt.cfg.killAfter
	return send{w: w, f: &Frame{Task: msg}, kill: kill}
}

// transmit writes dispatched frames outside the coordinator lock; a send
// failure is a lost worker. It also trips the KillWorkerAfter fault hook.
func (rt *RT) transmit(sends []send) {
	for _, s := range sends {
		err := s.w.conn.send(s.f)
		if err != nil {
			rt.workerLost(s.w, fmt.Errorf("send: %w", err))
			continue
		}
		if s.kill {
			s.w.cmd.Process.Kill()
		}
	}
}

// finishLocked retires a task through the dependence tracker: newly
// released dependents join the ready queue (the caller's dispatchLocked
// loop picks them up) and taskwaiters are woken. Held lock: rt.mu.
func (rt *RT) finishLocked(t *core.Task, err error) {
	delete(rt.info, t)
	newly := rt.g.Finish(t, err)
	rt.ready = append(rt.ready, newly...)
	rt.cond.Broadcast()
}

// reader is the per-worker receive loop (one goroutine per worker).
func (rt *RT) reader(w *workerState) {
	for {
		f, err := ReadFrame(w.conn.Conn)
		if err != nil {
			rt.workerLost(w, err)
			return
		}
		if f.Done == nil {
			rt.workerLost(w, fmt.Errorf("unexpected frame from worker"))
			return
		}
		rt.handleDone(w, f.Done)
	}
}

// handleDone imports a completed task's outputs and retires it.
func (rt *RT) handleDone(w *workerState, d *DoneMsg) {
	rt.mu.Lock()
	inf := w.busy
	if inf == nil || inf.t.ID != d.ID {
		rt.mu.Unlock()
		rt.workerLost(w, fmt.Errorf("completion for unknown task %d", d.ID))
		return
	}
	w.busy = nil
	var err error
	if d.Err != "" {
		err = &RemoteError{Worker: w.slot, Kernel: inf.info.kernel, Msg: d.Err, Panic: d.Panic}
		rt.stats.Failed++
	} else if len(d.Outputs) != len(inf.outs) {
		err = &RemoteError{Worker: w.slot, Kernel: inf.info.kernel,
			Msg: fmt.Sprintf("got %d outputs, want %d", len(d.Outputs), len(inf.outs))}
		rt.stats.Failed++
	} else {
		// Import produced bytes onto the bound version payloads BEFORE
		// Finish: Finish releases the bindings and may immediately write
		// the version back onto canonical storage.
		for i, ob := range inf.outs {
			copy(ob.payload, d.Outputs[i])
			n := int64(len(d.Outputs[i]))
			rt.stats.BytesFromWorkers += n
			w.wstats.BytesOut += n
			w.mir.insert(ob.key, int64(len(ob.payload)))
			if rt.rec != nil {
				rt.rec.Emit(w.slot, obs.EvXfer, inf.t.ID, uint64(n))
			}
		}
	}
	if rt.rec != nil {
		rt.rec.Emit(w.slot, obs.EvEnd, inf.t.ID, 0)
	}
	rt.finishLocked(inf.t, err)
	sends := rt.dispatchLocked()
	rt.mu.Unlock()
	rt.transmit(sends)
}

// workerLost marks a worker dead, fails its in-flight task with
// WorkerLost, and lets everything else keep running. Crash confinement
// falls out of the core graph: the failure propagates only along the lost
// tasks' dependence edges.
func (rt *RT) workerLost(w *workerState, cause error) {
	rt.mu.Lock()
	if w.dead || rt.closed {
		rt.mu.Unlock()
		return
	}
	w.dead = true
	w.wstats.Lost = true
	rt.stats.WorkersLost++
	w.conn.Close()
	w.mir = newMirror(rt.cfg.cacheBytes) // its cache died with it
	if inf := w.busy; inf != nil {
		w.busy = nil
		rt.stats.Failed++
		rt.finishLocked(inf.t, &WorkerLost{Worker: w.slot, Cause: cause})
	}
	sends := rt.dispatchLocked()
	rt.cond.Broadcast()
	rt.mu.Unlock()
	rt.transmit(sends)
}

// Run boots a distributed execution domain with `workers` worker
// processes, runs program on the calling goroutine, waits for every task,
// and tears the domain down. The returned Stats hold the transfer and
// cache accounting; the returned error is the program's error, or the
// first task failure the final taskwait saw.
func Run(workers int, program func(*RT) error, opts ...Option) (Stats, error) {
	if workers < 1 {
		return Stats{}, fmt.Errorf("dist: need at least 1 worker, got %d", workers)
	}
	cfg := config{cacheBytes: DefaultCacheBytes, killWorker: -1}
	for _, o := range opts {
		o(&cfg)
	}

	l, dir, err := listenSocket()
	if err != nil {
		return Stats{}, err
	}
	defer os.RemoveAll(dir)
	defer l.Close()

	socket := l.Addr().String()
	cmds := make([]*exec.Cmd, 0, workers)
	defer func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	}()
	for i := 0; i < workers; i++ {
		cmd, err := spawnWorker(socket, i)
		if err != nil {
			return Stats{}, err
		}
		cmds = append(cmds, cmd)
	}
	conns, err := acceptWorkers(l, workers)
	if err != nil {
		return Stats{}, err
	}

	g := core.NewGraph()
	g.ConfigureRenaming(core.Renaming{Enabled: true, MaxVersions: cfg.renameCap})
	rt := &RT{
		g:    g,
		ctx:  &core.Context{},
		cfg:  cfg,
		rec:  cfg.rec,
		info: make(map[*core.Task]*taskInfo),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.stats.Workers = workers
	if rt.rec != nil {
		epoch := time.Now()
		rt.clock = func() int64 { return time.Since(epoch).Nanoseconds() }
		rt.rec.Attach(workers, "dist", false, rt.clock)
		g.SetProbe(rt.rec)
	}
	var readers sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := &workerState{slot: i, cmd: cmds[i], conn: conns[i], mir: newMirror(cfg.cacheBytes)}
		rt.workers = append(rt.workers, w)
	}
	for _, w := range rt.workers {
		readers.Add(1)
		go func(w *workerState) {
			defer readers.Done()
			rt.reader(w)
		}(w)
	}

	progErr := program(rt)
	twErr := rt.Taskwait()

	// Graceful drain: ask live workers to exit, close connections so the
	// reader goroutines return, and reap the processes (with a kill
	// fallback so a wedged worker cannot hang the coordinator).
	rt.mu.Lock()
	rt.closed = true
	live := make([]*workerState, 0, workers)
	for _, w := range rt.workers {
		if !w.dead {
			live = append(live, w)
		}
	}
	rt.mu.Unlock()
	for _, w := range live {
		w.conn.send(&Frame{Shutdown: true})
	}
	deadline := time.AfterFunc(10*time.Second, func() {
		for _, c := range cmds {
			c.Process.Kill()
		}
	})
	for _, c := range cmds {
		c.Wait()
	}
	deadline.Stop()
	cmds = nil // already reaped; disarm the deferred killer
	for _, w := range rt.workers {
		w.conn.Close()
	}
	readers.Wait()

	rt.mu.Lock()
	rt.stats.Graph = rt.g.Stats()
	rt.stats.PerWorker = make([]WorkerStats, workers)
	for i, w := range rt.workers {
		rt.stats.PerWorker[i] = w.wstats
	}
	stats := rt.stats
	rt.mu.Unlock()

	if progErr != nil {
		return stats, progErr
	}
	return stats, twErr
}
