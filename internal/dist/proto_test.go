package dist

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Hello: &Hello{Worker: 3, PID: 4242, MAC: []byte{0xa, 0xb}, FetchAddr: "unix:/tmp/w3.sock"}},
		{Challenge: &Challenge{Nonce: []byte{1, 2, 3, 4}}},
		{Task: &TaskMsg{
			ID:     7,
			Kernel: "rotate",
			Args:   []byte{1, 2, 3},
			NIn:    1,
			Reads:  []WireRef{{Datum: 1, Ver: 2, Size: 3, Bytes: []byte{9, 8, 7}}, {Datum: 4, Ver: 1, Size: 2}},
			Writes: []WireOut{{Datum: 4, Ver: 5, Size: 2, SeedFrom: 1}},
			Evict:  []CacheKey{{Datum: 9, Ver: 9}},
		}},
		{Chain: &ChainMsg{Tasks: []*TaskMsg{
			{ID: 10, Kernel: "a", Evict: []CacheKey{{Datum: 1, Ver: 1}}},
			{ID: 11, Kernel: "b", Reads: []WireRef{{Datum: 2, Ver: 3, Size: 1}}},
		}}},
		{Fetch: &FetchMsg{Datum: 5, Ver: 6}},
		{Data: &DataMsg{Datum: 5, Ver: 6, Found: true, Bytes: []byte{1}}},
		{Done: &DoneMsg{ID: 7, Outputs: [][]byte{{5, 5}}, Fetches: 1, FetchedBytes: 2, FetchFallbacks: 1}},
		{Done: &DoneMsg{ID: 8, Err: "kernel exploded", Panic: true}},
		{Shutdown: true},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		switch {
		case want.Hello != nil:
			g := got.Hello
			if g == nil || g.Worker != want.Hello.Worker || g.PID != want.Hello.PID ||
				!bytes.Equal(g.MAC, want.Hello.MAC) || g.FetchAddr != want.Hello.FetchAddr {
				t.Fatalf("frame %d: hello mismatch: %+v", i, got.Hello)
			}
		case want.Challenge != nil:
			if got.Challenge == nil || !bytes.Equal(got.Challenge.Nonce, want.Challenge.Nonce) {
				t.Fatalf("frame %d: challenge mismatch: %+v", i, got.Challenge)
			}
		case want.Chain != nil:
			g := got.Chain
			if g == nil || len(g.Tasks) != 2 || g.Tasks[0].ID != 10 || g.Tasks[1].ID != 11 ||
				len(g.Tasks[0].Evict) != 1 || len(g.Tasks[1].Reads) != 1 {
				t.Fatalf("frame %d: chain mismatch: %+v", i, g)
			}
		case want.Fetch != nil:
			if got.Fetch == nil || *got.Fetch != *want.Fetch {
				t.Fatalf("frame %d: fetch mismatch: %+v", i, got.Fetch)
			}
		case want.Data != nil:
			g := got.Data
			if g == nil || g.Datum != 5 || g.Ver != 6 || !g.Found || !bytes.Equal(g.Bytes, []byte{1}) {
				t.Fatalf("frame %d: data mismatch: %+v", i, g)
			}
		case want.Task != nil:
			g := got.Task
			if g == nil || g.ID != want.Task.ID || g.Kernel != want.Task.Kernel ||
				g.NIn != want.Task.NIn || len(g.Reads) != 2 || len(g.Writes) != 1 ||
				!bytes.Equal(g.Reads[0].Bytes, want.Task.Reads[0].Bytes) ||
				g.Reads[1].Bytes != nil ||
				g.Writes[0].SeedFrom != 1 || len(g.Evict) != 1 {
				t.Fatalf("frame %d: task mismatch: %+v", i, g)
			}
		case want.Done != nil:
			g := got.Done
			if g == nil || g.ID != want.Done.ID || g.Err != want.Done.Err || g.Panic != want.Done.Panic ||
				g.Fetches != want.Done.Fetches || g.FetchedBytes != want.Done.FetchedBytes ||
				g.FetchFallbacks != want.Done.FetchFallbacks {
				t.Fatalf("frame %d: done mismatch: %+v", i, g)
			}
		case want.Shutdown:
			if !got.Shutdown {
				t.Fatalf("frame %d: want shutdown", i)
			}
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want EOF after last frame, got %v", err)
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Zero length.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Oversized claimed length.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil ||
		!strings.Contains(err.Error(), "bad frame length") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
	// Large claimed length with a short stream must fail cheaply, not
	// allocate the claim.
	binary.BigEndian.PutUint32(hdr[:], MaxFrame)
	if _, err := ReadFrame(bytes.NewReader(append(hdr[:], 1, 2, 3))); err == nil ||
		!strings.Contains(err.Error(), "short frame") {
		t.Fatalf("short frame not detected: %v", err)
	}
	// Garbage payload of the declared length: decode error, not panic.
	junk := append([]byte{0, 0, 0, 4}, 0xde, 0xad, 0xbe, 0xef)
	if _, err := ReadFrame(bytes.NewReader(junk)); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

// FuzzFrameDecode throws arbitrary byte streams at the frame decoder: it
// must return errors, never panic, and on success re-encoding the decoded
// frame must itself succeed (the codec never produces unencodable values).
func FuzzFrameDecode(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, &Frame{Hello: &Hello{Worker: 1, PID: 2, MAC: []byte{3}, FetchAddr: "tcp:127.0.0.1:1"}})
	WriteFrame(&seed, &Frame{Task: &TaskMsg{ID: 1, Kernel: "k", Reads: []WireRef{{Datum: 1, Ver: 1, Size: 1, Bytes: []byte{0}}}}})
	WriteFrame(&seed, &Frame{Shutdown: true})
	f.Add(seed.Bytes())
	var seed2 bytes.Buffer
	WriteFrame(&seed2, &Frame{Challenge: &Challenge{Nonce: []byte{9, 9}}})
	WriteFrame(&seed2, &Frame{Chain: &ChainMsg{Tasks: []*TaskMsg{
		{ID: 2, Kernel: "c", Reads: []WireRef{{Datum: 1, Ver: 1, Size: 1, From: "unix:/x"}}},
		{ID: 3, Kernel: "d"},
	}}})
	WriteFrame(&seed2, &Frame{Fetch: &FetchMsg{Datum: 1, Ver: 2}})
	WriteFrame(&seed2, &Frame{Data: &DataMsg{Datum: 1, Ver: 2, Found: true, Bytes: []byte{7}}})
	WriteFrame(&seed2, &Frame{Done: &DoneMsg{ID: 2, Fetches: 1, FetchedBytes: 1, FetchFallbacks: 1}})
	f.Add(seed2.Bytes())
	f.Add([]byte{0, 0, 0, 1, 0xff})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r)
			if err != nil {
				return
			}
			if err := WriteFrame(io.Discard, fr); err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
		}
	})
}
