package dist

import (
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"ompssgo/internal/obs"
)

// KernelFunc is a distributed task body. args is the opaque argument blob
// the submitting side attached; in holds the kernel-visible In-clause
// payloads in clause order; out holds one buffer per Out/InOut clause in
// clause order, pre-seeded with the InOut copy-in (or zeroed for pure
// Out). The kernel must treat in as read-only — the slices alias the
// worker's version cache and mutating them would corrupt every later
// cache hit. A non-nil error (or a panic, which is recovered) poisons the
// task's outputs and skips its dependents, exactly as in-process.
type KernelFunc func(args []byte, in [][]byte, out [][]byte) error

var (
	kernelMu sync.RWMutex
	kernels  = make(map[string]KernelFunc)
)

// RegisterKernel installs a task body under a name. Both the coordinator
// and the workers run the same binary, so registering from init (or from
// anywhere before Run) makes the kernel visible in every process.
// Re-registering a name panics: silent replacement would mean coordinator
// and worker could disagree about what a name executes.
func RegisterKernel(name string, fn KernelFunc) {
	if fn == nil {
		panic("dist: RegisterKernel with nil kernel " + name)
	}
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := kernels[name]; dup {
		panic("dist: duplicate kernel " + name)
	}
	kernels[name] = fn
}

func lookupKernel(name string) (KernelFunc, bool) {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	fn, ok := kernels[name]
	return fn, ok
}

// MaybeWorker diverts a spawned child process into the worker loop. Call
// it first thing in main (and in TestMain for test binaries that use
// Run): in the parent it returns immediately; in a child spawned by a
// coordinator it connects back, serves tasks until shutdown, and exits
// the process.
func MaybeWorker() {
	addr := os.Getenv(envSocket)
	if addr == "" {
		return
	}
	slot, err := strconv.Atoi(os.Getenv(envWorker))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: bad %s: %v\n", envWorker, err)
		os.Exit(2)
	}
	secret, err := hex.DecodeString(os.Getenv(envSecret))
	if err != nil || len(secret) == 0 {
		fmt.Fprintf(os.Stderr, "dist worker %d: bad %s\n", slot, envSecret)
		os.Exit(2)
	}
	network := os.Getenv(envNet)
	if network == "" {
		network = TransportUnix
	}
	if err := workerMain(network, addr, slot, secret); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker %d: %v\n", slot, err)
		os.Exit(1)
	}
	if ms, _ := strconv.Atoi(os.Getenv(envSlowExit)); ms > 0 {
		time.Sleep(time.Duration(ms) * time.Millisecond) // test hook: slow drain
	}
	os.Exit(0)
}

// wproc is one worker process's state: the coordinator connection, the
// version cache, the peer-fetch server, and pooled connections to peers.
type wproc struct {
	slot   int
	secret []byte
	c      net.Conn
	cache  *wcache

	// Worker-side tracing (enabled by OMPSS_DIST_TRACE): a single-lane
	// recorder over kernel execution, cache traffic, and idle gaps, on a
	// clock epoched at worker start. Batches ride home on every DoneMsg;
	// the tail drains in a final Trace frame at shutdown.
	rec   *obs.Recorder
	epoch time.Time

	peerMu sync.Mutex
	peers  map[string]net.Conn // fetch address -> authenticated connection

	// per-task fetch accounting, reported on the next DoneMsg
	fetches        int
	fetchedBytes   int64
	fetchFallbacks int
}

// clockFn returns the recorder's epoch-relative clock, nil when not
// tracing — the same reading rides in Hello.Now for clock alignment.
func (w *wproc) clockFn() func() int64 {
	if w.rec == nil {
		return nil
	}
	return func() int64 { return time.Since(w.epoch).Nanoseconds() }
}

// emit records one worker-side trace event on the worker's single lane.
func (w *wproc) emit(k obs.Kind, task, arg uint64) {
	if w.rec != nil {
		w.rec.Emit(0, k, task, arg)
	}
}

func workerMain(network, addr string, slot int, secret []byte) error {
	w := &wproc{
		slot:   slot,
		secret: secret,
		cache:  newWCache(),
		peers:  make(map[string]net.Conn),
	}
	if cap, _ := strconv.Atoi(os.Getenv(envTrace)); cap > 0 {
		w.epoch = time.Now()
		w.rec = obs.NewRecorder(obs.Capacity(cap))
		w.rec.Attach(1, "dist-worker", false, w.clockFn())
	}

	// Peer-fetch server: other workers dial here to copy cached datum
	// versions directly instead of round-tripping through the coordinator.
	fetchAddr, stopFetch, err := w.serveFetch(network)
	if err != nil {
		return fmt.Errorf("fetch listener: %w", err)
	}
	defer stopFetch()

	c, err := net.Dial(network, addr)
	if err != nil {
		return fmt.Errorf("dial coordinator: %w", err)
	}
	defer c.Close()
	w.c = c
	if err := answerChallenge(c, secret, slot, fetchAddr, w.clockFn(), DefaultHandshakeTimeout); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}

	for {
		w.emit(obs.EvIdleEnter, 0, 0)
		f, err := ReadFrame(c)
		if err != nil {
			if err == io.EOF {
				return nil // coordinator went away: quiet exit
			}
			return fmt.Errorf("read: %w", err)
		}
		w.emit(obs.EvIdleExit, 0, 0)
		switch {
		case f.Shutdown:
			w.flushTrace()
			return nil
		case f.Task != nil:
			if err := w.execAndReport(f.Task); err != nil {
				return err
			}
		case f.Chain != nil:
			if len(f.Chain.Tasks) > 0 {
				w.emit(obs.EvChain, f.Chain.Tasks[0].ID, uint64(len(f.Chain.Tasks)))
			}
			// Execute the pushed sub-DAG locally, one Done per link. A
			// failing link aborts the remainder: every later link depends
			// on it, and the coordinator resolves them as skipped without
			// any further frames.
			for _, msg := range f.Chain.Tasks {
				failed, err := w.execAndReportOutcome(msg)
				if err != nil {
					return err
				}
				if failed {
					break
				}
			}
		default:
			return fmt.Errorf("unexpected frame from coordinator")
		}
	}
}

// flushTrace ships whatever trace tail accumulated after the last Done —
// the shutdown-ordered idle gap, at minimum — as the connection's final
// frame. Send errors are ignored: the coordinator may already be tearing
// the connection down, and a lost tail only shortens the trace.
func (w *wproc) flushTrace() {
	if w.rec == nil {
		return
	}
	evs, dropped := w.rec.Drain()
	_ = WriteFrame(w.c, &Frame{Trace: &TraceMsg{Slot: w.slot, Events: evs, Dropped: dropped}})
}

func (w *wproc) execAndReport(msg *TaskMsg) error {
	_, err := w.execAndReportOutcome(msg)
	return err
}

func (w *wproc) execAndReportOutcome(msg *TaskMsg) (failed bool, err error) {
	done := w.execTask(msg)
	if w.rec != nil {
		// Piggyback the trace batch on the completion it describes: no
		// extra frames, no worker-side buffering across tasks.
		done.Events, done.EventsDropped = w.rec.Drain()
	}
	if err := WriteFrame(w.c, &Frame{Done: done}); err != nil {
		return false, fmt.Errorf("send done: %w", err)
	}
	return done.Err != "", nil
}

// execTask runs one task message against the local cache and returns its
// completion. All failure modes — cache protocol violations, unknown
// kernels, kernel errors, kernel panics — are reported in DoneMsg.Err so
// the coordinator can poison the writer and skip dependents; only
// transport failures kill the worker.
func (w *wproc) execTask(msg *TaskMsg) *DoneMsg {
	w.emit(obs.EvStart, msg.ID, 0)
	done := w.execTaskBody(msg)
	w.emit(obs.EvEnd, msg.ID, 0)
	return done
}

func (w *wproc) execTaskBody(msg *TaskMsg) *DoneMsg {
	done := &DoneMsg{ID: msg.ID}
	w.fetches, w.fetchedBytes, w.fetchFallbacks = 0, 0, 0
	// Coordinator-directed eviction first: the Evict list was computed
	// against the cache state before this task's inserts.
	w.cache.applyEvict(msg.Evict)

	// Resolve the read set: shipped bytes enter the cache, forwarding
	// directives are fetched from the named peer (coordinator relay as
	// fallback), and plain nil-Bytes refs must already be resident (the
	// coordinator's mirror said so).
	reads := make([][]byte, len(msg.Reads))
	for i, r := range msg.Reads {
		k := CacheKey{Datum: r.Datum, Ver: r.Ver}
		switch {
		case r.Bytes != nil:
			if int64(len(r.Bytes)) != r.Size {
				done.Err = fmt.Sprintf("read %d: got %d bytes, want %d", i, len(r.Bytes), r.Size)
				return done
			}
			w.cache.put(k, r.Bytes)
			reads[i] = r.Bytes
			w.emit(obs.EvXfer, msg.ID, uint64(len(r.Bytes)))
		case r.From != "":
			b, err := w.fetchRef(r, msg.ID)
			if err != nil {
				done.Err = fmt.Sprintf("read %d: fetch (datum %d, ver %d): %v", i, r.Datum, r.Ver, err)
				return done
			}
			w.cache.put(k, b)
			reads[i] = b
		default:
			b, ok := w.cache.get(k)
			if !ok {
				done.Err = fmt.Sprintf("read %d: (datum %d, ver %d) not cached", i, r.Datum, r.Ver)
				return done
			}
			reads[i] = b
			w.emit(obs.EvXferHit, msg.ID, uint64(len(b)))
		}
	}

	// Build the output buffers, seeding InOut ones from their copy-in. A
	// seed whose length disagrees with the declared output size is a
	// protocol violation: a silent short copy would leave a zero tail in
	// the seeded buffer, so the task fails loudly instead.
	outs := make([][]byte, len(msg.Writes))
	for i, wo := range msg.Writes {
		buf := make([]byte, wo.Size)
		if wo.SeedFrom >= 0 {
			if wo.SeedFrom >= len(reads) {
				done.Err = fmt.Sprintf("write %d: seed index %d out of range", i, wo.SeedFrom)
				return done
			}
			seed := reads[wo.SeedFrom]
			if int64(len(seed)) != wo.Size {
				done.Err = fmt.Sprintf("write %d: seed is %d bytes, want %d", i, len(seed), wo.Size)
				return done
			}
			copy(buf, seed)
		}
		outs[i] = buf
	}

	fn, ok := lookupKernel(msg.Kernel)
	if !ok {
		done.Err = fmt.Sprintf("kernel %q not registered in worker", msg.Kernel)
		return done
	}
	if err := runKernel(fn, msg.Args, reads[:msg.NIn], outs, done); err != nil {
		done.Err = err.Error()
		return done
	}
	if done.Err != "" {
		return done
	}
	// Success: outputs become cached versions (the coordinator's mirror
	// inserts the same keys when it sees this Done), and ride home.
	for i, wo := range msg.Writes {
		w.cache.put(CacheKey{Datum: wo.Datum, Ver: wo.Ver}, outs[i])
	}
	done.Outputs = outs
	done.Fetches = w.fetches
	done.FetchedBytes = w.fetchedBytes
	done.FetchFallbacks = w.fetchFallbacks
	return done
}

// fetchRef resolves a forwarding directive: copy the pair from the peer
// named in the ref, falling back to a coordinator relay when the peer is
// unreachable or no longer holds it. The coordinator always holds the
// content of any version it forwards, so the fallback cannot miss.
func (w *wproc) fetchRef(r WireRef, task uint64) ([]byte, error) {
	if b, err := w.fetchFromPeer(r.From, CacheKey{Datum: r.Datum, Ver: r.Ver}); err == nil {
		if int64(len(b)) != r.Size {
			return nil, fmt.Errorf("peer sent %d bytes, want %d", len(b), r.Size)
		}
		w.fetches++
		w.fetchedBytes += r.Size
		w.emit(obs.EvForward, task, uint64(r.Size))
		return b, nil
	}
	// Relay fallback: ask the coordinator. The task loop owns the
	// connection while a task executes, and the coordinator dispatches
	// nothing to a busy worker, so the next frame is the Data answer.
	w.fetchFallbacks++
	if err := WriteFrame(w.c, &Frame{Fetch: &FetchMsg{Datum: r.Datum, Ver: r.Ver}}); err != nil {
		return nil, fmt.Errorf("relay request: %w", err)
	}
	f, err := ReadFrame(w.c)
	if err != nil {
		return nil, fmt.Errorf("relay read: %w", err)
	}
	if f.Data == nil || !f.Data.Found {
		return nil, fmt.Errorf("coordinator relay miss")
	}
	if int64(len(f.Data.Bytes)) != r.Size {
		return nil, fmt.Errorf("relay sent %d bytes, want %d", len(f.Data.Bytes), r.Size)
	}
	w.emit(obs.EvXfer, task, uint64(r.Size))
	return f.Data.Bytes, nil
}

// fetchFromPeer copies one cached pair from another worker's fetch
// server, pooling one authenticated connection per peer. Any error drops
// the pooled connection so a restarted peer gets a fresh dial.
func (w *wproc) fetchFromPeer(fetchAddr string, k CacheKey) ([]byte, error) {
	w.peerMu.Lock()
	defer w.peerMu.Unlock()
	c, ok := w.peers[fetchAddr]
	if !ok {
		network, addr := dialAddr(fetchAddr)
		var err error
		c, err = net.DialTimeout(network, addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		if err := answerChallenge(c, w.secret, w.slot, "", nil, 5*time.Second); err != nil {
			c.Close()
			return nil, err
		}
		w.peers[fetchAddr] = c
	}
	fail := func(err error) ([]byte, error) {
		c.Close()
		delete(w.peers, fetchAddr)
		return nil, err
	}
	c.SetDeadline(time.Now().Add(10 * time.Second))
	defer c.SetDeadline(time.Time{})
	if err := WriteFrame(c, &Frame{Fetch: &FetchMsg{Datum: k.Datum, Ver: k.Ver}}); err != nil {
		return fail(err)
	}
	f, err := ReadFrame(c)
	if err != nil {
		return fail(err)
	}
	if f.Data == nil {
		return fail(fmt.Errorf("peer answered with a non-Data frame"))
	}
	if !f.Data.Found {
		return nil, fmt.Errorf("peer no longer holds the pair")
	}
	return f.Data.Bytes, nil
}

// serveFetch starts the worker's peer-fetch listener: each inbound
// connection is challenged with the run secret, then served Fetch→Data
// until it closes. Returns the advertised "net:addr" and a stopper.
func (w *wproc) serveFetch(network string) (string, func(), error) {
	var l net.Listener
	var cleanup func()
	switch network {
	case TransportUnix:
		dir, err := os.MkdirTemp("", "ompss-dw-")
		if err != nil {
			return "", nil, err
		}
		path := filepath.Join(dir, "fetch.sock")
		l, err = net.Listen("unix", path)
		if err != nil {
			os.RemoveAll(dir)
			return "", nil, err
		}
		cleanup = func() { os.RemoveAll(dir) }
	default:
		var err error
		l, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		cleanup = func() {}
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go w.servePeer(c)
		}
	}()
	addr := network + ":" + fetchAddrOf(l, network)
	return addr, func() { l.Close(); cleanup() }, nil
}

func fetchAddrOf(l net.Listener, network string) string {
	return l.Addr().String()
}

// servePeer answers one peer connection: authenticate, then serve cached
// pairs. A miss answers Found=false (the peer falls back to the
// coordinator); any transport error closes the connection.
func (w *wproc) servePeer(c net.Conn) {
	defer c.Close()
	if _, _, err := challengeConn(c, w.secret, 10*time.Second); err != nil {
		return
	}
	for {
		f, err := ReadFrame(c)
		if err != nil {
			return
		}
		if f.Fetch == nil {
			return
		}
		k := CacheKey{Datum: f.Fetch.Datum, Ver: f.Fetch.Ver}
		b, ok := w.cache.get(k)
		if err := WriteFrame(c, &Frame{Data: &DataMsg{
			Datum: k.Datum, Ver: k.Ver, Found: ok, Bytes: b,
		}}); err != nil {
			return
		}
	}
}

// runKernel isolates the recover so a panicking kernel poisons the task
// instead of the worker process.
func runKernel(fn KernelFunc, args []byte, in, out [][]byte, done *DoneMsg) (err error) {
	defer func() {
		if r := recover(); r != nil {
			done.Panic = true
			err = fmt.Errorf("kernel panic: %v", r)
		}
	}()
	return fn(args, in, out)
}

// Kernels returns the registered kernel names, sorted — handy for
// diagnostics when a name mismatch skips a whole run.
func Kernels() []string {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
