package dist

import (
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
)

// KernelFunc is a distributed task body. args is the opaque argument blob
// the submitting side attached; in holds the kernel-visible In-clause
// payloads in clause order; out holds one buffer per Out/InOut clause in
// clause order, pre-seeded with the InOut copy-in (or zeroed for pure
// Out). The kernel must treat in as read-only — the slices alias the
// worker's version cache and mutating them would corrupt every later
// cache hit. A non-nil error (or a panic, which is recovered) poisons the
// task's outputs and skips its dependents, exactly as in-process.
type KernelFunc func(args []byte, in [][]byte, out [][]byte) error

var (
	kernelMu sync.RWMutex
	kernels  = make(map[string]KernelFunc)
)

// RegisterKernel installs a task body under a name. Both the coordinator
// and the workers run the same binary, so registering from init (or from
// anywhere before Run) makes the kernel visible in every process.
// Re-registering a name panics: silent replacement would mean coordinator
// and worker could disagree about what a name executes.
func RegisterKernel(name string, fn KernelFunc) {
	if fn == nil {
		panic("dist: RegisterKernel with nil kernel " + name)
	}
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := kernels[name]; dup {
		panic("dist: duplicate kernel " + name)
	}
	kernels[name] = fn
}

func lookupKernel(name string) (KernelFunc, bool) {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	fn, ok := kernels[name]
	return fn, ok
}

// MaybeWorker diverts a spawned child process into the worker loop. Call
// it first thing in main (and in TestMain for test binaries that use
// Run): in the parent it returns immediately; in a child spawned by a
// coordinator it connects back, serves tasks until shutdown, and exits
// the process.
func MaybeWorker() {
	socket := os.Getenv(envSocket)
	if socket == "" {
		return
	}
	slot, err := strconv.Atoi(os.Getenv(envWorker))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: bad %s: %v\n", envWorker, err)
		os.Exit(2)
	}
	if err := workerMain(socket, slot); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker %d: %v\n", slot, err)
		os.Exit(1)
	}
	os.Exit(0)
}

func workerMain(socket string, slot int) error {
	c, err := net.Dial("unix", socket)
	if err != nil {
		return fmt.Errorf("dial coordinator: %w", err)
	}
	defer c.Close()
	if err := WriteFrame(c, &Frame{Hello: &Hello{Worker: slot, PID: os.Getpid()}}); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	cache := newWCache()
	for {
		f, err := ReadFrame(c)
		if err != nil {
			if err == io.EOF {
				return nil // coordinator went away: quiet exit
			}
			return fmt.Errorf("read: %w", err)
		}
		switch {
		case f.Shutdown:
			return nil
		case f.Task != nil:
			done := execTask(cache, f.Task)
			if err := WriteFrame(c, &Frame{Done: done}); err != nil {
				return fmt.Errorf("send done: %w", err)
			}
		default:
			return fmt.Errorf("unexpected frame from coordinator")
		}
	}
}

// execTask runs one task message against the local cache and returns its
// completion. All failure modes — cache protocol violations, unknown
// kernels, kernel errors, kernel panics — are reported in DoneMsg.Err so
// the coordinator can poison the writer and skip dependents; only
// transport failures kill the worker.
func execTask(cache *wcache, msg *TaskMsg) *DoneMsg {
	done := &DoneMsg{ID: msg.ID}
	// Coordinator-directed eviction first: the Evict list was computed
	// against the cache state before this task's inserts.
	cache.applyEvict(msg.Evict)

	// Resolve the read set: shipped bytes enter the cache, nil Bytes must
	// already be resident (the coordinator's mirror said so).
	reads := make([][]byte, len(msg.Reads))
	for i, r := range msg.Reads {
		k := CacheKey{Datum: r.Datum, Ver: r.Ver}
		if r.Bytes != nil {
			if int64(len(r.Bytes)) != r.Size {
				done.Err = fmt.Sprintf("read %d: got %d bytes, want %d", i, len(r.Bytes), r.Size)
				return done
			}
			cache.put(k, r.Bytes)
			reads[i] = r.Bytes
		} else {
			b, ok := cache.get(k)
			if !ok {
				done.Err = fmt.Sprintf("read %d: (datum %d, ver %d) not cached", i, r.Datum, r.Ver)
				return done
			}
			reads[i] = b
		}
	}

	// Build the output buffers, seeding InOut ones from their copy-in.
	outs := make([][]byte, len(msg.Writes))
	for i, w := range msg.Writes {
		buf := make([]byte, w.Size)
		if w.SeedFrom >= 0 {
			if w.SeedFrom >= len(reads) {
				done.Err = fmt.Sprintf("write %d: seed index %d out of range", i, w.SeedFrom)
				return done
			}
			copy(buf, reads[w.SeedFrom])
		}
		outs[i] = buf
	}

	fn, ok := lookupKernel(msg.Kernel)
	if !ok {
		done.Err = fmt.Sprintf("kernel %q not registered in worker", msg.Kernel)
		return done
	}
	if err := runKernel(fn, msg.Args, reads[:msg.NIn], outs, done); err != nil {
		done.Err = err.Error()
		return done
	}
	if done.Err != "" {
		return done
	}
	// Success: outputs become cached versions (the coordinator's mirror
	// inserts the same keys when it sees this Done), and ride home.
	for i, w := range msg.Writes {
		cache.put(CacheKey{Datum: w.Datum, Ver: w.Ver}, outs[i])
	}
	done.Outputs = outs
	return done
}

// runKernel isolates the recover so a panicking kernel poisons the task
// instead of the worker process.
func runKernel(fn KernelFunc, args []byte, in, out [][]byte, done *DoneMsg) (err error) {
	defer func() {
		if r := recover(); r != nil {
			done.Panic = true
			err = fmt.Errorf("kernel panic: %v", r)
		}
	}()
	return fn(args, in, out)
}

// Kernels returns the registered kernel names, sorted — handy for
// diagnostics when a name mismatch skips a whole run.
func Kernels() []string {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
