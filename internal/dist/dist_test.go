package dist

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

// TestMain is the re-exec hook: a child process spawned by a coordinator
// sees the dist environment variables and diverts into the worker loop
// before any test runs.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// The test kernels, registered at init so coordinator and spawned worker
// processes (same binary) agree on them.
func init() {
	RegisterKernel("test.fill", func(args []byte, in, out [][]byte) error {
		for i := range out[0] {
			out[0][i] = args[0]
		}
		return nil
	})
	RegisterKernel("test.add", func(args []byte, in, out [][]byte) error {
		for i := range out[0] {
			out[0][i] = in[0][i] + in[1][i]
		}
		return nil
	})
	RegisterKernel("test.inc", func(args []byte, in, out [][]byte) error {
		// InOut: out[0] arrives seeded with the read version.
		for i := range out[0] {
			out[0][i]++
		}
		return nil
	})
	RegisterKernel("test.slow-inc", func(args []byte, in, out [][]byte) error {
		time.Sleep(300 * time.Millisecond)
		for i := range out[0] {
			out[0][i]++
		}
		return nil
	})
	RegisterKernel("test.fail", func(args []byte, in, out [][]byte) error {
		return fmt.Errorf("deliberate failure")
	})
	RegisterKernel("test.panic", func(args []byte, in, out [][]byte) error {
		panic("deliberate panic")
	})
}

func TestDistBasic(t *testing.T) {
	const n = 1 << 10
	var final []byte
	stats, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{7}, Out(d))
		rt.Task("test.inc", nil, InOut(d))
		rt.Task("test.inc", nil, InOut(d))
		if err := rt.Taskwait(); err != nil {
			return err
		}
		final = rt.Read(d)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, b := range final {
		if b != 9 {
			t.Fatalf("final[%d] = %d, want 9", i, b)
		}
	}
	if stats.Tasks != 3 || stats.Failed != 0 || stats.Skipped != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// fill produces d on the worker, so the inc chain's reads are cache
	// hits: nothing ever ships TO the worker, and all three outputs ride
	// home (producer-side caching at work).
	if stats.BytesToWorkers != 0 || stats.BytesFromWorkers != 3*n || stats.TransfersAvoided != 2 {
		t.Fatalf("transfer accounting off: %+v", stats)
	}
}

// TestDistTwoWorkersMatchesLocal is the two-process proof in miniature:
// independent chains (they can land on different workers) plus a joining
// add, with the result compared byte-for-byte against the same
// computation done locally.
func TestDistTwoWorkersMatchesLocal(t *testing.T) {
	const n = 4 << 10
	var got []byte
	stats, err := Run(2, func(rt *RT) error {
		a := rt.Register(make([]byte, n))
		b := rt.Register(make([]byte, n))
		sum := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{10}, Out(a))
		rt.Task("test.fill", []byte{20}, Out(b))
		for i := 0; i < 3; i++ {
			rt.Task("test.inc", nil, InOut(a))
			rt.Task("test.inc", nil, InOut(b))
		}
		rt.Task("test.add", nil, In(a), In(b), Out(sum))
		if err := rt.Taskwait(); err != nil {
			return err
		}
		got = rt.Read(sum)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Workers != 2 {
		t.Fatalf("workers = %d", stats.Workers)
	}
	for i, b := range got {
		if b != 36 { // (10+3) + (20+3)
			t.Fatalf("sum[%d] = %d, want 36", i, b)
		}
	}
}

// TestDistCacheHits: many readers of one version on one worker must ship
// the bytes once and hit the version cache for the rest.
func TestDistCacheHits(t *testing.T) {
	const n = 1 << 12
	const readers = 8
	stats, err := Run(1, func(rt *RT) error {
		src := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{1}, Out(src))
		for i := 0; i < readers; i++ {
			dst := rt.Register(make([]byte, n))
			rt.Task("test.add", nil, In(src), In(src), Out(dst))
		}
		return rt.Taskwait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The first In(src) of the first reader ships src's version; every
	// later occurrence (including the second In(src) of the same task)
	// resolves from the worker's version cache.
	if stats.TransfersAvoided < readers-1 {
		t.Fatalf("TransfersAvoided = %d, want >= %d (stats %+v)",
			stats.TransfersAvoided, readers-1, stats)
	}
	if stats.BytesAvoided < int64(readers-1)*n {
		t.Fatalf("BytesAvoided = %d", stats.BytesAvoided)
	}
}

// TestDistEviction: a cache budget smaller than the working set forces
// coordinator-directed evictions; correctness must be unaffected (evicted
// versions re-ship on next use).
func TestDistEviction(t *testing.T) {
	const n = 1 << 12
	var got byte
	stats, err := Run(1, func(rt *RT) error {
		a := rt.Register(make([]byte, n))
		b := rt.Register(make([]byte, n))
		c := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{3}, Out(a))
		rt.Task("test.fill", []byte{4}, Out(b))
		// Alternate readers so a and b keep displacing each other.
		for i := 0; i < 4; i++ {
			rt.Task("test.add", nil, In(a), In(b), Out(c))
		}
		if err := rt.Taskwait(); err != nil {
			return err
		}
		got = rt.Read(c)[0]
		return nil
	}, CacheBytes(2*n+n/2)) // room for ~2 of the 3+ live versions
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 7 {
		t.Fatalf("c[0] = %d, want 7", got)
	}
	if stats.Evictions == 0 {
		t.Fatalf("expected evictions under a tight budget: %+v", stats)
	}
}

func TestDistRemoteErrorSkipsDependents(t *testing.T) {
	var hFail, hDep, hOK *Handle
	_, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, 64))
		e := rt.Register(make([]byte, 64))
		hFail = rt.Task("test.fail", nil, Out(d))
		hDep = rt.Task("test.inc", nil, InOut(d))
		hOK = rt.Task("test.fill", []byte{5}, Out(e))
		rt.Taskwait() // error expected; inspected via handles below
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var re *RemoteError
	if !errors.As(hFail.Err(), &re) || re.Kernel != "test.fail" {
		t.Fatalf("failing task error = %v", hFail.Err())
	}
	var se *SkipError
	if !errors.As(hDep.Err(), &se) || !hDep.Skipped() {
		t.Fatalf("dependent error = %v, skipped = %v", hDep.Err(), hDep.Skipped())
	}
	if hOK.Err() != nil || hOK.Skipped() {
		t.Fatalf("independent task affected: %v", hOK.Err())
	}
}

func TestDistPanicBecomesRemoteError(t *testing.T) {
	var h *Handle
	_, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, 8))
		h = rt.Task("test.panic", nil, Out(d))
		rt.Taskwait()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var re *RemoteError
	if !errors.As(h.Err(), &re) || !re.Panic {
		t.Fatalf("panic not surfaced as RemoteError{Panic}: %v", h.Err())
	}
}

// TestDistWorkerKillConfinement is the crash-confinement proof: killing
// one worker mid-task fails that task with WorkerLost and skips its
// dependents, while an independent chain on the surviving worker
// completes with the right bytes.
func TestDistWorkerKillConfinement(t *testing.T) {
	const n = 1 << 10
	var hVictim, hDep *Handle
	var survivor []byte
	stats, err := Run(2, func(rt *RT) error {
		// First dispatch lands on worker 0 (all affinity scores are zero
		// and slot order breaks ties); the kill hook fires right after
		// that send, while the slow kernel is still asleep.
		dv := rt.Register(make([]byte, n))
		hVictim = rt.Task("test.slow-inc", nil, InOut(dv))
		hDep = rt.Task("test.inc", nil, InOut(dv))

		ds := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{40}, Out(ds))
		rt.Task("test.inc", nil, InOut(ds))
		rt.Task("test.inc", nil, InOut(ds))
		rt.Taskwait() // first failure is the WorkerLost; handles below
		survivor = rt.Read(ds)
		return nil
	}, KillWorkerAfter(0, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var wl *WorkerLost
	if !errors.As(hVictim.Err(), &wl) || wl.Worker != 0 {
		t.Fatalf("victim error = %v", hVictim.Err())
	}
	var se *SkipError
	if !errors.As(hDep.Err(), &se) || !errors.As(hDep.Err(), &wl) {
		t.Fatalf("dependent error = %v", hDep.Err())
	}
	for i, b := range survivor {
		if b != 42 {
			t.Fatalf("survivor[%d] = %d, want 42", i, b)
		}
	}
	if stats.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d", stats.WorkersLost)
	}
	if got := stats.PerWorker[0]; !got.Lost {
		t.Fatalf("worker 0 not marked lost: %+v", got)
	}
}

// TestDistAllWorkersLost: with every worker gone, queued tasks fail with
// ErrNoWorkers instead of hanging the program.
func TestDistAllWorkersLost(t *testing.T) {
	var hLate *Handle
	_, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, 64))
		rt.Task("test.slow-inc", nil, InOut(d))
		hLate = rt.Task("test.inc", nil, InOut(d))
		rt.Taskwait()
		return nil
	}, KillWorkerAfter(0, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The dependent either skipped behind the WorkerLost failure or — had
	// it been independent — would fail ErrNoWorkers; either way it must
	// resolve, not hang, and carry the upstream loss.
	var wl *WorkerLost
	if hLate.Err() == nil || !(errors.As(hLate.Err(), &wl) || errors.Is(hLate.Err(), ErrNoWorkers)) {
		t.Fatalf("late task error = %v", hLate.Err())
	}
}

func TestRunRejectsZeroWorkers(t *testing.T) {
	if _, err := Run(0, func(rt *RT) error { return nil }); err == nil {
		t.Fatal("Run(0) accepted")
	}
}
