package dist

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// --- worker-side task chains ---

// TestDistChains: a linear fill→slow-inc→inc→inc dependence chain must
// reach the worker in fewer dispatch frames than tasks — the slow link
// holds its frame long enough that by the time any successor dispatches,
// the rest of the chain is wired and rides along — while keeping the
// exact transfer accounting of the unchained run. (The slow head makes
// chain formation deterministic: a fast head can finish before its
// successors are even submitted, legitimately leaving nothing to chain.)
func TestDistChains(t *testing.T) {
	const n = 1 << 10
	var final []byte
	stats, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{7}, Out(d))
		rt.Task("test.slow-inc", nil, InOut(d))
		rt.Task("test.inc", nil, InOut(d))
		rt.Task("test.inc", nil, InOut(d))
		if err := rt.Taskwait(); err != nil {
			return err
		}
		final = rt.Read(d)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, b := range final {
		if b != 10 {
			t.Fatalf("final[%d] = %d, want 10", i, b)
		}
	}
	if stats.RoundTrips >= stats.Tasks {
		t.Fatalf("RoundTrips = %d, want < Tasks = %d (chaining inert)", stats.RoundTrips, stats.Tasks)
	}
	if stats.Chains < 1 || stats.ChainedTasks < 1 || stats.ChainDepth < 2 {
		t.Fatalf("chain stats off: %+v", stats)
	}
	if stats.BytesToWorkers != 0 || stats.BytesFromWorkers != 4*n || stats.TransfersAvoided != 3 {
		t.Fatalf("transfer accounting off under chaining: %+v", stats)
	}
}

// TestDistChainLimitDisables: ChainLimit below 2 must restore one frame
// per task.
func TestDistChainLimitDisables(t *testing.T) {
	stats, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, 64))
		rt.Task("test.fill", []byte{1}, Out(d))
		rt.Task("test.inc", nil, InOut(d))
		rt.Task("test.inc", nil, InOut(d))
		return rt.Taskwait()
	}, ChainLimit(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Chains != 0 || stats.RoundTrips != stats.Tasks {
		t.Fatalf("ChainLimit(1) did not disable chaining: %+v", stats)
	}
}

// TestDistChainAbort: a failing link aborts the rest of its chain on the
// worker; the coordinator resolves the unexecuted links as skipped, with
// the failure reaching them along the chain's own dependence edges.
func TestDistChainAbort(t *testing.T) {
	var hFail, hDep *Handle
	stats, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, 64))
		rt.Task("test.fill", []byte{1}, Out(d))
		// The slow link pins a frame long enough that fail+inc are wired
		// when the next dispatch happens, so a chain forms deterministically.
		rt.Task("test.slow-inc", nil, InOut(d))
		hFail = rt.Task("test.fail", nil, InOut(d))
		hDep = rt.Task("test.inc", nil, InOut(d))
		rt.Taskwait() // error expected; inspected via handles below
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Chains < 1 {
		t.Fatalf("expected the fail+inc pair to chain: %+v", stats)
	}
	var re *RemoteError
	if !errors.As(hFail.Err(), &re) || re.Kernel != "test.fail" {
		t.Fatalf("failing link error = %v", hFail.Err())
	}
	var se *SkipError
	if !errors.As(hDep.Err(), &se) || !hDep.Skipped() {
		t.Fatalf("aborted link error = %v, skipped = %v", hDep.Err(), hDep.Skipped())
	}
	if stats.Skipped != 1 || stats.Failed != 1 {
		t.Fatalf("abort accounting off: %+v", stats)
	}
}

// TestDistWorkerLostMidChain: killing a worker holding a whole chain must
// fail every queued link with WorkerLost, not just the first.
func TestDistWorkerLostMidChain(t *testing.T) {
	var h1, h2 *Handle
	_, err := Run(2, func(rt *RT) error {
		d := rt.Register(make([]byte, 64))
		// Frame 1 to worker 0 holds the lane for 300ms, so h1+h2 are both
		// wired when it completes and ride frame 2 as one chain.
		rt.Task("test.slow-inc", nil, InOut(d))
		h1 = rt.Task("test.slow-inc", nil, InOut(d))
		h2 = rt.Task("test.inc", nil, InOut(d)) // chains behind h1: frame 2
		rt.Taskwait()
		return nil
	}, KillWorkerAfter(0, 2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var wl *WorkerLost
	if !errors.As(h1.Err(), &wl) {
		t.Fatalf("first link error = %v", h1.Err())
	}
	if !errors.As(h2.Err(), &wl) {
		t.Fatalf("chained link error = %v", h2.Err())
	}
}

// --- direct worker-to-worker forwarding ---

// TestDistForwarding: with the producing worker busy, a reader placed on
// the other worker must receive a forwarding directive and copy the bytes
// peer-to-peer instead of having the coordinator relay them.
func TestDistForwarding(t *testing.T) {
	const n = 1 << 12
	var x, y []byte
	stats, err := Run(2, func(rt *RT) error {
		a := rt.Register(make([]byte, n))
		dx := rt.Register(make([]byte, n))
		dy := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{5}, Out(a))
		if err := rt.Taskwait(); err != nil { // a now resident on worker 0 only
			return err
		}
		rt.Task("test.add", nil, In(a), In(a), Out(dx)) // worker 0 (affinity)
		rt.Task("test.add", nil, In(a), In(a), Out(dy)) // worker 1: a arrives by forward
		if err := rt.Taskwait(); err != nil {
			return err
		}
		x, y = rt.Read(dx), rt.Read(dy)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range x {
		if x[i] != 10 || y[i] != 10 {
			t.Fatalf("results wrong at %d: x=%d y=%d, want 10", i, x[i], y[i])
		}
	}
	if stats.Forwards < 1 {
		t.Fatalf("no forwarding directive issued: %+v", stats)
	}
	if stats.BytesForwarded < n && stats.ForwardFallbacks == 0 {
		t.Fatalf("forwarded read neither fetched from peer nor fell back: %+v", stats)
	}
	// The forwarded read must not count as coordinator-shipped unless it
	// actually fell back to the relay. (Nothing else ships here: fill's
	// output is produced worker-side and a stays resident on worker 0.)
	if stats.ForwardFallbacks == 0 && stats.BytesToWorkers != 0 {
		t.Fatalf("BytesToWorkers = %d, want 0 — the forward must bypass the coordinator", stats.BytesToWorkers)
	}
}

// TestDistNoForwardingOption: NoForwarding must restore relay-everything.
func TestDistNoForwardingOption(t *testing.T) {
	const n = 1 << 10
	stats, err := Run(2, func(rt *RT) error {
		a := rt.Register(make([]byte, n))
		dx := rt.Register(make([]byte, n))
		dy := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{5}, Out(a))
		if err := rt.Taskwait(); err != nil {
			return err
		}
		rt.Task("test.add", nil, In(a), In(a), Out(dx))
		rt.Task("test.add", nil, In(a), In(a), Out(dy))
		return rt.Taskwait()
	}, NoForwarding())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Forwards != 0 || stats.BytesForwarded != 0 {
		t.Fatalf("NoForwarding still forwarded: %+v", stats)
	}
}

// TestDistForwardRelayFallback exercises the worker's fallback path in
// isolation: a forwarding directive naming an unreachable peer must turn
// into a Fetch round-trip with the coordinator and still succeed.
func TestDistForwardRelayFallback(t *testing.T) {
	us, them := net.Pipe()
	defer us.Close()
	defer them.Close()
	w := &wproc{slot: 0, cache: newWCache(), peers: make(map[string]net.Conn), c: us}

	payload := []byte{1, 2, 3, 4}
	go func() {
		f, err := ReadFrame(them)
		if err != nil || f.Fetch == nil {
			return
		}
		WriteFrame(them, &Frame{Data: &DataMsg{
			Datum: f.Fetch.Datum, Ver: f.Fetch.Ver, Found: true, Bytes: payload,
		}})
	}()

	done := w.execTask(&TaskMsg{
		ID: 1, Kernel: "test.inc", NIn: 0,
		Reads:  []WireRef{{Datum: 7, Ver: 1, Size: 4, From: "unix:/nonexistent/peer.sock"}},
		Writes: []WireOut{{Datum: 7, Ver: 2, Size: 4, SeedFrom: 0}},
	})
	if done.Err != "" {
		t.Fatalf("task failed: %s", done.Err)
	}
	if done.FetchFallbacks != 1 {
		t.Fatalf("FetchFallbacks = %d, want 1", done.FetchFallbacks)
	}
	want := []byte{2, 3, 4, 5}
	for i, b := range done.Outputs[0] {
		if b != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, b, want[i])
		}
	}
}

// --- TCP transport and handshake ---

// TestDistTCPTransport: the full basic program over authenticated TCP
// loopback, with the same results and the same transfer accounting as the
// Unix-socket run.
func TestDistTCPTransport(t *testing.T) {
	const n = 1 << 10
	var final []byte
	stats, err := Run(2, func(rt *RT) error {
		d := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{7}, Out(d))
		rt.Task("test.inc", nil, InOut(d))
		rt.Task("test.inc", nil, InOut(d))
		if err := rt.Taskwait(); err != nil {
			return err
		}
		final = rt.Read(d)
		return nil
	}, Transport(TransportTCP))
	if err != nil {
		t.Fatalf("Run over TCP: %v", err)
	}
	for i, b := range final {
		if b != 9 {
			t.Fatalf("final[%d] = %d, want 9", i, b)
		}
	}
	if stats.Tasks != 3 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestDistRejectsUnknownTransport: a bogus transport must fail fast, not
// hang waiting for workers.
func TestDistRejectsUnknownTransport(t *testing.T) {
	_, err := Run(1, func(rt *RT) error { return nil }, Transport("carrier-pigeon"))
	if err == nil || !strings.Contains(err.Error(), "unknown transport") {
		t.Fatalf("err = %v", err)
	}
}

// TestDistHandshakeRefusesBadSecret: a peer answering the challenge with
// the wrong secret must be closed and never admitted; a correct peer on
// the same listener still gets in.
func TestDistHandshakeRefusesBadSecret(t *testing.T) {
	secret := []byte("right-secret")
	l, addr, cleanup, err := listenRendezvous(TransportTCP)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer cleanup()
	defer l.Close()
	admit := make(chan admitted, 1)
	stop := make(chan struct{})
	defer close(stop)
	go acceptLoop(l, secret, time.Second, admit, stop)

	// Wrong secret: the server must close the connection on us.
	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := answerChallenge(bad, []byte("wrong-secret"), 0, "", nil, time.Second); err != nil {
		t.Fatalf("sending the (bad) hello should succeed locally: %v", err)
	}
	bad.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadFrame(bad); err == nil {
		t.Fatal("server sent a frame to an unauthenticated peer")
	}
	bad.Close()
	select {
	case <-admit:
		t.Fatal("unauthenticated peer was admitted")
	case <-time.After(100 * time.Millisecond):
	}

	// Right secret on the same listener: admitted.
	good, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer good.Close()
	if err := answerChallenge(good, secret, 3, "tcp:127.0.0.1:9", nil, time.Second); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	select {
	case a := <-admit:
		if a.hello.Worker != 3 || a.hello.FetchAddr != "tcp:127.0.0.1:9" {
			t.Fatalf("admitted hello = %+v", a.hello)
		}
		a.conn.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("authenticated peer not admitted")
	}
}

// TestDistHandshakeTimeoutSilentPeer: a worker that connects but never
// completes the handshake must not satisfy collectWorkers — the window
// expires with a descriptive error and the peer never consumes a slot.
func TestDistHandshakeTimeoutSilentPeer(t *testing.T) {
	l, addr, cleanup, err := listenRendezvous(TransportTCP)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer cleanup()
	defer l.Close()
	admit := make(chan admitted, 1)
	stop := make(chan struct{})
	defer close(stop)
	go acceptLoop(l, []byte("s"), 200*time.Millisecond, admit, stop)

	silent, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer silent.Close() // connects, reads nothing, says nothing

	if _, err := collectWorkers(admit, 1, 400*time.Millisecond); err == nil ||
		!strings.Contains(err.Error(), "0 of 1 workers") {
		t.Fatalf("collect err = %v", err)
	}
	// The server's challenge deadline must also have dropped the peer.
	silent.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := silent.Read(buf); err != nil {
			return // closed (or deadline): either way, never admitted
		}
	}
}

// TestDistHandshakeTimeoutNoConnect: no worker ever connecting must time
// out rather than hang.
func TestDistHandshakeTimeoutNoConnect(t *testing.T) {
	admit := make(chan admitted)
	start := time.Now()
	if _, err := collectWorkers(admit, 2, 150*time.Millisecond); err == nil ||
		!strings.Contains(err.Error(), "0 of 2 workers") {
		t.Fatalf("collect err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took far too long")
	}
}

// --- rejoinable workers ---

// TestDistRejoin: kill a worker mid-task with respawn enabled. The
// replacement must rejoin through the authenticated rendezvous with a
// cold cache — previously resident datums re-ship — and complete the rest
// of the DAG; only the in-flight task and its dependents are lost.
func TestDistRejoin(t *testing.T) {
	const n = 1 << 10
	var hVictim *Handle
	var z []byte
	stats, err := Run(1, func(rt *RT) error {
		a := rt.Register(make([]byte, n))
		x := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{4}, Out(a))
		rt.Task("test.add", nil, In(a), In(a), Out(x)) // a ships: warm cache
		if err := rt.Taskwait(); err != nil {
			return err
		}

		b := rt.Register(make([]byte, n))
		hVictim = rt.Task("test.slow-inc", nil, InOut(b)) // killed mid-sleep

		y := rt.Register(make([]byte, n))
		rt.Task("test.add", nil, In(a), In(a), Out(y)) // runs on the rejoined worker
		rt.Taskwait()                                  // first failure = the WorkerLost
		z = rt.Read(y)
		return nil
	}, KillWorkerAfter(0, 3), RespawnLostWorkers())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var wl *WorkerLost
	if !errors.As(hVictim.Err(), &wl) || wl.Worker != 0 {
		t.Fatalf("victim error = %v", hVictim.Err())
	}
	for i, v := range z {
		if v != 8 {
			t.Fatalf("z[%d] = %d, want 8", i, v)
		}
	}
	if stats.WorkersLost != 1 || stats.Rejoins != 1 {
		t.Fatalf("lost/rejoin accounting off: %+v", stats)
	}
	// Cold cache: `a` shipped before the kill and again after the rejoin.
	if stats.BytesToWorkers < 2*n {
		t.Fatalf("BytesToWorkers = %d, want >= %d (a must re-ship to the cold cache)",
			stats.BytesToWorkers, 2*n)
	}
}

// --- teardown drain deadline (the old hardcoded 10s kill) ---

// TestDistSlowDrainSurvives: a healthy worker that drains slowly must NOT
// be killed when the configured deadline is generous — this is the
// regression test for the hardcoded 10s AfterFunc that SIGKILLed slow
// drains on loaded hosts.
func TestDistSlowDrainSurvives(t *testing.T) {
	stats, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, 64))
		rt.Task("test.fill", []byte{1}, Out(d))
		return rt.Taskwait()
	}, withSlowExit(400*time.Millisecond), ExitKillDelay(30*time.Second))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.ExitKills != 0 || stats.WorkersLost != 0 {
		t.Fatalf("slow-draining worker was killed: %+v", stats)
	}
}

// TestDistExitKillDeadline: a worker exceeding the configured drain
// deadline is killed (and accounted), without failing the run — every
// task already completed.
func TestDistExitKillDeadline(t *testing.T) {
	stats, err := Run(1, func(rt *RT) error {
		d := rt.Register(make([]byte, 64))
		rt.Task("test.fill", []byte{1}, Out(d))
		return rt.Taskwait()
	}, withSlowExit(5*time.Second), ExitKillDelay(150*time.Millisecond))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.ExitKills < 1 {
		t.Fatalf("wedged worker not killed by the drain deadline: %+v", stats)
	}
	if stats.Failed != 0 || stats.WorkersLost != 0 {
		t.Fatalf("post-drain kill leaked into the run's results: %+v", stats)
	}
}

// --- hostile frames at the worker (seed validation) ---

// TestDistWorkerRejectsSeedOutOfRange: a frame whose write seeds from a
// read index that does not exist must fail the task, not the worker.
func TestDistWorkerRejectsSeedOutOfRange(t *testing.T) {
	w := &wproc{slot: 0, cache: newWCache(), peers: make(map[string]net.Conn)}
	done := w.execTask(&TaskMsg{
		ID: 1, Kernel: "test.inc",
		Writes: []WireOut{{Datum: 1, Ver: 1, Size: 8, SeedFrom: 3}},
	})
	if done.Err == "" || !strings.Contains(done.Err, "out of range") {
		t.Fatalf("done.Err = %q, want seed index rejection", done.Err)
	}
}

// TestDistWorkerRejectsSeedSizeMismatch: a seed read shorter than the
// declared output size used to silently leave a zero tail in the seeded
// buffer; it must now fail the task with a descriptive error.
func TestDistWorkerRejectsSeedSizeMismatch(t *testing.T) {
	w := &wproc{slot: 0, cache: newWCache(), peers: make(map[string]net.Conn)}
	done := w.execTask(&TaskMsg{
		ID: 2, Kernel: "test.inc",
		Reads:  []WireRef{{Datum: 1, Ver: 1, Size: 4, Bytes: []byte{1, 2, 3, 4}}},
		Writes: []WireOut{{Datum: 1, Ver: 2, Size: 8, SeedFrom: 0}},
	})
	if done.Err == "" || !strings.Contains(done.Err, "seed is 4 bytes, want 8") {
		t.Fatalf("done.Err = %q, want seed size rejection", done.Err)
	}
}

// TestDistWorkerRejectsShortRead: shipped bytes disagreeing with the
// declared size are a protocol violation, rejected before caching.
func TestDistWorkerRejectsShortRead(t *testing.T) {
	w := &wproc{slot: 0, cache: newWCache(), peers: make(map[string]net.Conn)}
	done := w.execTask(&TaskMsg{
		ID: 3, Kernel: "test.inc", NIn: 1,
		Reads:  []WireRef{{Datum: 1, Ver: 1, Size: 8, Bytes: []byte{1, 2}}},
		Writes: []WireOut{{Datum: 1, Ver: 2, Size: 8, SeedFrom: -1}},
	})
	if done.Err == "" || !strings.Contains(done.Err, "got 2 bytes, want 8") {
		t.Fatalf("done.Err = %q, want short-read rejection", done.Err)
	}
}
