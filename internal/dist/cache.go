package dist

import (
	"sort"
	"sync"
)

// centry is one mirrored cache entry: the coordinator's record that a
// worker holds the bytes of one (datum, version) pair.
type centry struct {
	size    int64
	lastUse uint64
}

// mirror is the coordinator's deterministic model of one worker's version
// cache. The worker itself never makes an eviction decision: every task
// message carries the explicit Evict list this mirror computed, and the
// worker applies it verbatim. Because each worker executes at most one
// task at a time and messages on its connection are ordered, the mirror
// and the real cache see the same operations in the same order and can
// never disagree — which is what lets the coordinator skip shipping bytes
// (WireRef.Bytes = nil) whenever the mirror says the pair is resident.
//
// Replacement is least-recently-used with the coordinator's dispatch
// counter as the clock, oldest first; entries the current task needs are
// pinned for the decision. Insertion happens in two steps matching the
// worker's behaviour: read misses insert at dispatch (the worker caches
// shipped bytes as soon as they arrive), task outputs insert only after
// the worker reports success (a failed writer's outputs never enter
// either cache).
type mirror struct {
	entries map[CacheKey]*centry
	total   int64
	budget  int64
	tick    uint64
	evicted int64 // lifetime count, for Stats
}

func newMirror(budget int64) *mirror {
	return &mirror{entries: make(map[CacheKey]*centry), budget: budget}
}

// has reports residency without touching recency.
func (m *mirror) has(k CacheKey) bool {
	_, ok := m.entries[k]
	return ok
}

// hitBytes sums the sizes of the given keys that are resident — the
// scheduler's affinity score for placing a task on this worker.
func (m *mirror) hitBytes(keys []CacheKey) int64 {
	var n int64
	for _, k := range keys {
		if e, ok := m.entries[k]; ok {
			n += e.size
		}
	}
	return n
}

// touch marks a resident key used now.
func (m *mirror) touch(k CacheKey) {
	if e, ok := m.entries[k]; ok {
		m.tick++
		e.lastUse = m.tick
	}
}

// planEvict makes room for `incoming` new bytes while keeping every key in
// `pinned` resident, and returns the eviction list in deterministic
// (lastUse, then key) order. Entries never seen by the current task are
// evicted oldest-first until the cache fits. If even evicting everything
// unpinned cannot fit the incoming bytes, the remaining overflow is
// tolerated: the task's own working set must be resident regardless, so
// the budget is a target, not a hard wall.
func (m *mirror) planEvict(pinned []CacheKey, incoming int64) []CacheKey {
	if m.total+incoming <= m.budget {
		return nil
	}
	pin := make(map[CacheKey]bool, len(pinned))
	for _, k := range pinned {
		pin[k] = true
	}
	type cand struct {
		key CacheKey
		e   *centry
	}
	var cands []cand
	for k, e := range m.entries {
		if !pin[k] {
			cands = append(cands, cand{k, e})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.e.lastUse != b.e.lastUse {
			return a.e.lastUse < b.e.lastUse
		}
		if a.key.Datum != b.key.Datum {
			return a.key.Datum < b.key.Datum
		}
		return a.key.Ver < b.key.Ver
	})
	var out []CacheKey
	for _, c := range cands {
		if m.total+incoming <= m.budget {
			break
		}
		delete(m.entries, c.key)
		m.total -= c.e.size
		m.evicted++
		out = append(out, c.key)
	}
	return out
}

// insert records a newly resident pair (idempotent on re-insert).
func (m *mirror) insert(k CacheKey, size int64) {
	if e, ok := m.entries[k]; ok {
		m.tick++
		e.lastUse = m.tick
		return
	}
	m.tick++
	m.entries[k] = &centry{size: size, lastUse: m.tick}
	m.total += size
}

// wcache is the worker-side real cache: a dumb map that applies the
// coordinator's orders. No sizes, no policy — policy lives in the mirror.
// The mutex exists for the peer-fetch server: other workers' fetch
// connections read entries concurrently with the task loop's inserts and
// evictions. Payload slices are immutable once cached (kernels receive
// them read-only), so handing them out under a read lock is safe.
type wcache struct {
	mu      sync.RWMutex
	entries map[CacheKey][]byte
}

func newWCache() *wcache { return &wcache{entries: make(map[CacheKey][]byte)} }

func (c *wcache) get(k CacheKey) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.entries[k]
	return b, ok
}

func (c *wcache) put(k CacheKey, b []byte) {
	c.mu.Lock()
	c.entries[k] = b
	c.mu.Unlock()
}

func (c *wcache) applyEvict(keys []CacheKey) {
	if len(keys) == 0 {
		return
	}
	c.mu.Lock()
	for _, k := range keys {
		delete(c.entries, k)
	}
	c.mu.Unlock()
}
