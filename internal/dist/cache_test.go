package dist

import "testing"

func TestMirrorEvictionDeterministicLRU(t *testing.T) {
	m := newMirror(100)
	m.insert(CacheKey{1, 1}, 40) // oldest
	m.insert(CacheKey{2, 1}, 40)
	m.insert(CacheKey{3, 1}, 20) // cache now full at 100

	// 60 incoming bytes with datum 3 pinned: must evict (1,1) then (2,1),
	// oldest first.
	ev := m.planEvict([]CacheKey{{3, 1}}, 60)
	if len(ev) != 2 || ev[0] != (CacheKey{1, 1}) || ev[1] != (CacheKey{2, 1}) {
		t.Fatalf("evictions = %v", ev)
	}
	if m.total != 20 || m.evicted != 2 {
		t.Fatalf("total = %d, evicted = %d", m.total, m.evicted)
	}
	if m.has(CacheKey{1, 1}) || !m.has(CacheKey{3, 1}) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestMirrorTouchChangesVictim(t *testing.T) {
	m := newMirror(100)
	m.insert(CacheKey{1, 1}, 50)
	m.insert(CacheKey{2, 1}, 50)
	m.touch(CacheKey{1, 1}) // (2,1) becomes LRU

	ev := m.planEvict(nil, 50)
	if len(ev) != 1 || ev[0] != (CacheKey{2, 1}) {
		t.Fatalf("evictions = %v, want [(2,1)]", ev)
	}
}

func TestMirrorPinnedOverflowTolerated(t *testing.T) {
	m := newMirror(10)
	m.insert(CacheKey{1, 1}, 8)
	// Everything pinned and incoming exceeds budget: nothing to evict,
	// overflow is accepted (the working set must be resident regardless).
	ev := m.planEvict([]CacheKey{{1, 1}}, 8)
	if len(ev) != 0 {
		t.Fatalf("evicted pinned entries: %v", ev)
	}
	if !m.has(CacheKey{1, 1}) {
		t.Fatal("pinned entry gone")
	}
}

func TestWorkerCacheObeysOrders(t *testing.T) {
	c := newWCache()
	c.put(CacheKey{1, 1}, []byte{1})
	c.put(CacheKey{2, 1}, []byte{2})
	c.applyEvict([]CacheKey{{1, 1}, {9, 9}}) // unknown keys ignored
	if _, ok := c.get(CacheKey{1, 1}); ok {
		t.Fatal("evicted entry still cached")
	}
	if b, ok := c.get(CacheKey{2, 1}); !ok || b[0] != 2 {
		t.Fatal("surviving entry lost")
	}
}
