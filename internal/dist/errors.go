package dist

import (
	"errors"
	"fmt"
)

// ErrNoWorkers is the outcome of tasks that became ready after every
// worker process was lost: with no execution resources left they fail
// (and their dependents skip) rather than hang the program.
var ErrNoWorkers = errors.New("dist: no live workers")

// WorkerLost is the outcome of a task that was in flight on a worker
// whose process died or whose connection broke. Only that worker's
// in-flight tasks receive it; tasks on surviving workers are unaffected,
// and dependents of the lost tasks skip with a SkipError wrapping this.
type WorkerLost struct {
	Worker int
	Cause  error
}

func (e *WorkerLost) Error() string {
	return fmt.Sprintf("dist: worker %d lost: %v", e.Worker, e.Cause)
}

func (e *WorkerLost) Unwrap() error { return e.Cause }

// RemoteError is a task failure reported by a worker: the kernel returned
// an error, panicked (Panic true), or the task message could not be
// honored. The worker survives; only the task and its dependents are
// affected.
type RemoteError struct {
	Worker int
	Kernel string
	Msg    string
	Panic  bool
}

func (e *RemoteError) Error() string {
	kind := "error"
	if e.Panic {
		kind = "panic"
	}
	return fmt.Sprintf("dist: kernel %s on worker %d: %s: %s", e.Kernel, e.Worker, kind, e.Msg)
}

// SkipError is the outcome of a task released without execution because a
// predecessor failed (skip-on-error over the wire). Unwrap exposes the
// upstream cause, so errors.As finds the originating WorkerLost or
// RemoteError through any depth of skipping.
type SkipError struct {
	Cause error
}

func (e *SkipError) Error() string { return fmt.Sprintf("dist: skipped: %v", e.Cause) }
func (e *SkipError) Unwrap() error { return e.Cause }
