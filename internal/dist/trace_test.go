package dist

import (
	"strings"
	"testing"

	"ompssgo/internal/obs"
)

// runTraced runs a two-worker workload that exercises every traced path —
// shipped transfers, cache hits, chains, and (workers permitting) peer
// forwards — and returns the merged trace with the run's stats.
func runTraced(t *testing.T, workers int, opts ...Option) (*obs.Trace, Stats) {
	t.Helper()
	const n = 1 << 10
	var tr *obs.Trace
	opts = append(opts, TraceSink(func(m *obs.Trace) { tr = m }))
	stats, err := Run(workers, func(rt *RT) error {
		a := rt.Register(make([]byte, n))
		b := rt.Register(make([]byte, n))
		sum := rt.Register(make([]byte, n))
		rt.Task("test.fill", []byte{3}, Out(a))
		rt.Task("test.fill", []byte{4}, Out(b))
		for i := 0; i < 3; i++ {
			rt.Task("test.inc", nil, InOut(a))
			rt.Task("test.inc", nil, InOut(b))
		}
		rt.Task("test.add", nil, In(a), In(b), Out(sum))
		return rt.Taskwait()
	}, opts...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr == nil {
		t.Fatalf("TraceSink never ran")
	}
	return tr, stats
}

// TestDistMergedTrace is the acceptance check of the cross-process trace:
// a two-process run yields one merged stream where every worker-executed
// task appears exactly once on its worker track and the event counts
// reconcile with the coordinator's Stats.
func TestDistMergedTrace(t *testing.T) {
	tr, stats := runTraced(t, 2)

	if err := ReconcileTrace(tr, stats); err != nil {
		t.Fatalf("ReconcileTrace: %v", err)
	}

	// Track layout: the coordinator's lanes first, then one labelled track
	// per worker incarnation.
	var coord, worker int
	for _, trk := range tr.Tracks {
		switch trk.Proc {
		case "coordinator":
			coord++
		case "worker":
			worker++
			if trk.PID == 0 {
				t.Fatalf("worker track %+v has no PID", trk)
			}
			if !strings.Contains(trk.Label, "worker slot") {
				t.Fatalf("worker track label = %q", trk.Label)
			}
		default:
			t.Fatalf("unexpected track proc %q", trk.Proc)
		}
	}
	if coord != 2 || worker != 2 {
		t.Fatalf("tracks: %d coordinator + %d worker lanes, want 2+2", coord, worker)
	}

	// The merged stream is renumbered and time-ordered.
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d after renumbering", i, ev.Seq)
		}
		if i > 0 && ev.At < tr.Events[i-1].At {
			t.Fatalf("event %d at %d precedes its predecessor at %d", i, ev.At, tr.Events[i-1].At)
		}
	}

	// The analyzer sees the remote execution: tasks landed on worker lanes,
	// transfers and chains got counted.
	a := obs.Analyze(tr)
	if a.Executed == 0 {
		t.Fatalf("analysis saw no execution: %+v", a)
	}
}

// TestDistMergedTraceNoForwarding pins the relay path: with forwarding
// off every cross-worker read relays through the coordinator, and the
// worker-side EvXfer accounting still reconciles bytes exactly.
func TestDistMergedTraceNoForwarding(t *testing.T) {
	tr, stats := runTraced(t, 2, NoForwarding())
	if stats.Forwards != 0 {
		t.Fatalf("forwards = %d with forwarding disabled", stats.Forwards)
	}
	if err := ReconcileTrace(tr, stats); err != nil {
		t.Fatalf("ReconcileTrace: %v", err)
	}
}

// TestReconcileTraceDetectsMismatch tampers with the stats a merged trace
// is checked against and expects the reconciler to object.
func TestReconcileTraceDetectsMismatch(t *testing.T) {
	tr, stats := runTraced(t, 2)
	bad := stats
	bad.BytesToWorkers += 1
	if err := ReconcileTrace(tr, bad); err == nil {
		t.Fatalf("ReconcileTrace accepted tampered BytesToWorkers")
	}
	bad = stats
	bad.Tasks += 1
	if err := ReconcileTrace(tr, bad); err == nil {
		t.Fatalf("ReconcileTrace accepted tampered task count")
	}
}
