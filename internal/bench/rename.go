package bench

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"ompssgo/ompss"
)

// The WAR-chain microbenchmark: the in-place-update pattern of the paper's
// consumer pipelines (rotate, rgbcmy, the ray-rot composition) reduced to
// its dependence skeleton. Each round, `readers` tasks read a shared datum
// and one writer overwrites it in place. Without renaming the writer's WAR
// edges serialize the rounds — the critical path is every round's reader
// phase plus every writer; with renaming each writer gets a fresh instance
// (and, being Out-only, drops its WAW too), so rounds overlap and the
// runtime keeps all workers busy. Values are verified inside the bodies
// and against the written-back canonical cell at the end, so the speedup
// cannot come from dropping a true dependence.

// renameCell is the versioned payload, padded against false sharing
// between pooled instances.
type renameCell struct {
	v int64
	_ [56]byte
}

// RenameChainResult is one measurement of the WAR-chain microbenchmark.
type RenameChainResult struct {
	Workers  int
	Readers  int
	Rounds   int
	Spin     int
	Renaming bool
	Elapsed  time.Duration
	Stats    ompss.RunStats
}

// TasksPerSec returns the sustained task throughput (readers + writers).
func (r RenameChainResult) TasksPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rounds*(r.Readers+1)) / r.Elapsed.Seconds()
}

// MeasureRenameChain drives the WAR-chain microbenchmark on a native
// runtime with `workers` lanes at GOMAXPROCS=workers, with dependence
// renaming switched by `renaming`. Each body spins for `spin` iterations;
// readers observe their bound instance and verify it carries their round's
// value, the writer publishes the next round's. Returns an error on any
// value violation — a renaming bug, not host noise.
func MeasureRenameChain(workers, readers, rounds, spin int, renaming bool, opts ...ompss.Option) (RenameChainResult, error) {
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)

	rt := ompss.New(append([]ompss.Option{ompss.Workers(workers), ompss.WithRenaming(renaming)}, opts...)...)
	defer rt.Shutdown()

	var cell renameCell
	d := rt.Register(&cell).EnableRenaming(nil,
		func() any { return new(renameCell) },
		func(dst, src any) { dst.(*renameCell).v = src.(*renameCell).v })

	var violations atomic.Int64
	start := time.Now()
	for round := 0; round < rounds; round++ {
		want := int64(round)
		for r := 0; r < readers; r++ {
			rt.Task(func(tc *ompss.TC) {
				atomic.AddInt64(&spinSink, spinWork(spin)&1)
				if tc.Data(d).(*renameCell).v != want {
					violations.Add(1)
				}
			}, ompss.In(d))
		}
		rt.Task(func(tc *ompss.TC) {
			atomic.AddInt64(&spinSink, spinWork(spin)&1)
			tc.Data(d).(*renameCell).v = want + 1
		}, ompss.Out(d))
	}
	rt.Taskwait()
	elapsed := time.Since(start)

	res := RenameChainResult{
		Workers: workers, Readers: readers, Rounds: rounds, Spin: spin,
		Renaming: renaming, Elapsed: elapsed, Stats: rt.Stats(),
	}
	if n := violations.Load(); n > 0 {
		return res, fmt.Errorf("rename chain: %d reader(s) observed a wrong instance value", n)
	}
	if cell.v != int64(rounds) {
		return res, fmt.Errorf("rename chain: canonical cell = %d after drain, want %d", cell.v, rounds)
	}
	if renaming && rt.Stats().Graph.Renamed == 0 && workers > 1 && readers > 0 {
		return res, fmt.Errorf("rename chain: renaming enabled but no write was renamed")
	}
	return res, nil
}
