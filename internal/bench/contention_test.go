package bench

import (
	"fmt"
	"testing"
)

// TestMeasureContention checks the harness end to end: no task is lost and
// every chain saw its full increment sequence.
func TestMeasureContention(t *testing.T) {
	res := MeasureContention(4, 8, 2000, 50)
	if res.Checksum != int64(res.Tasks) {
		t.Fatalf("lost updates: checksum=%d want %d", res.Checksum, res.Tasks)
	}
	g := res.Stats.Graph
	if g.Submitted != g.Finished || g.Submitted != uint64(res.Tasks) {
		t.Fatalf("graph imbalance: submitted=%d finished=%d tasks=%d",
			g.Submitted, g.Finished, res.Tasks)
	}
}

// BenchmarkContendedThroughput reports native-executor throughput for
// fine-grained dependent tasks across the paper's GOMAXPROCS sweep. The
// tasks/sec metric is the headline; steal and pop counters expose where the
// scheduler found its work.
func BenchmarkContendedThroughput(b *testing.B) {
	const (
		chains = 64
		tasks  = 20000
		spin   = 120
	)
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var last ContentionResult
			for i := 0; i < b.N; i++ {
				last = MeasureContention(w, chains, tasks, spin)
				if last.Checksum != int64(last.Tasks) {
					b.Fatalf("lost updates: %d != %d", last.Checksum, last.Tasks)
				}
			}
			b.ReportMetric(last.TasksPerSec(), "tasks/s")
			b.ReportMetric(float64(last.Stats.Sched.Steals), "steals")
			b.ReportMetric(float64(last.Stats.Sched.StealTries), "steal-tries")
			b.ReportMetric(float64(last.Stats.Sched.LocalPops), "local-pops")
			b.ReportMetric(float64(last.Stats.Sched.GlobalPops), "global-pops")
		})
	}
}
