package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"ompssgo/internal/serve"
)

// The serve-trend gate extends the bench-trend idea to the service
// runtime: CI runs a short load leg against a fresh server, then compares
// the resulting ServeReport against the committed BENCH_serve.json.
// Correctness signals (violations, zero successful requests) fail
// unconditionally; latency and throughput are host-sensitive, so their
// relative gates are hard only when the candidate ran on a host with the
// baseline's CPU count and demote to warnings otherwise — the trajectory
// still prints, it just cannot fail an incomparable host.

// LoadServeReport reads a BENCH_serve.json document.
func LoadServeReport(path string) (*serve.ServeReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep serve.ServeReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// CompareServeTrend diffs a candidate serve report against the baseline.
// tol is the relative tolerance on throughput (may fall tol below
// baseline) and latency (may rise tol above baseline).
func CompareServeTrend(baseline, candidate *serve.ServeReport, tol float64) TrendResult {
	var res TrendResult
	if baseline.Schema != candidate.Schema {
		res.Regressions = append(res.Regressions, fmt.Sprintf(
			"schema mismatch: baseline %q vs candidate %q", baseline.Schema, candidate.Schema))
		return res
	}
	// Load shape must match, or none of the numbers mean the same thing.
	if baseline.Conc != candidate.Conc || baseline.Workers != candidate.Workers {
		res.Regressions = append(res.Regressions, fmt.Sprintf(
			"load shape mismatch: baseline conc=%d workers=%d vs candidate conc=%d workers=%d — regenerate the baseline or fix the leg",
			baseline.Conc, baseline.Workers, candidate.Conc, candidate.Workers))
		return res
	}

	// Correctness gates: host-independent, always hard.
	if candidate.Violations > 0 {
		res.Regressions = append(res.Regressions, fmt.Sprintf(
			"candidate recorded %d correctness violations under load", candidate.Violations))
	}
	if candidate.OK2xx == 0 {
		res.Regressions = append(res.Regressions, "candidate served zero successful requests")
	}
	if candidate.Errors > 0 {
		res.Regressions = append(res.Regressions, fmt.Sprintf(
			"candidate saw %d unexpected errors (deliberate faults are counted separately)", candidate.Errors))
	}

	// Performance gates: hard only on a comparable host.
	comparable := baseline.NumCPU == candidate.NumCPU
	flag := func(msg string) {
		if comparable {
			res.Regressions = append(res.Regressions, msg)
		} else {
			res.Warnings = append(res.Warnings,
				msg+fmt.Sprintf(" [advisory: host has %d CPUs, baseline %d]", candidate.NumCPU, baseline.NumCPU))
		}
	}
	if baseline.RequestsPerSec > 0 {
		res.Compared++
		if candidate.RequestsPerSec < baseline.RequestsPerSec*(1-tol) {
			flag(fmt.Sprintf("throughput: %.0f req/s is >%.0f%% below baseline %.0f req/s",
				candidate.RequestsPerSec, tol*100, baseline.RequestsPerSec))
		}
	}
	lat := []struct {
		name       string
		base, cand int64
	}{
		{"p50", baseline.P50NS, candidate.P50NS},
		{"p99", baseline.P99NS, candidate.P99NS},
	}
	for _, l := range lat {
		if l.base <= 0 {
			continue
		}
		res.Compared++
		if float64(l.cand) > float64(l.base)*(1+tol) {
			flag(fmt.Sprintf("latency %s: %dns is >%.0f%% above baseline %dns", l.name, l.cand, tol*100, l.base))
		}
	}
	// Per-endpoint p99s inform but never gate: individual endpoints are
	// noisier than the aggregate on a shared runner.
	candEP := map[string]serve.EndpointLoad{}
	for _, e := range candidate.PerEndpoint {
		candEP[e.Path] = e
	}
	for _, b := range baseline.PerEndpoint {
		c, ok := candEP[b.Path]
		if !ok {
			res.Warnings = append(res.Warnings, fmt.Sprintf("endpoint %s: missing from candidate", b.Path))
			continue
		}
		if b.P99NS > 0 && float64(c.P99NS) > float64(b.P99NS)*(1+tol) {
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"endpoint %s: p99 %dns is >%.0f%% above baseline %dns", b.Path, c.P99NS, tol*100, b.P99NS))
		}
	}
	if res.Compared == 0 {
		res.Regressions = append(res.Regressions, "no comparable serve metrics between baseline and candidate")
	}
	return res
}
