package bench

import (
	"fmt"
	"io"
	"time"

	"ompssgo/internal/suite"
	sh264dec "ompssgo/internal/suite/h264dec"
	srayrot "ompssgo/internal/suite/rayrot"
	srgbcmy "ompssgo/internal/suite/rgbcmy"
	"ompssgo/machine"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// BarrierAblation reruns rgbcmy across core counts with three
// synchronization regimes: the blocking Pthreads barrier (the paper's
// baseline), the polling OmpSs taskwait (the paper's explanation for
// rgbcmy's OmpSs win), and OmpSs forced into blocking waits (isolating the
// wait-mode contribution from the rest of the task machinery).
func BarrierAblation(scale suite.Scale, cores []int, w io.Writer) error {
	wl := srgbcmy.Default()
	if scale == suite.Small {
		wl = srgbcmy.Small()
	}
	in := srgbcmy.New(wl)
	fmt.Fprintf(w, "rgbcmy barrier ablation (%d iterations of a short phase)\n", wl.Iters)
	fmt.Fprintf(w, "%-8s%16s%16s%16s\n", "cores", "pthreads-block", "ompss-poll", "ompss-block")
	for _, p := range cores {
		mc := machine.Paper(p)
		stP, err := pthread.RunSim(mc, p, func(m *pthread.Thread) { in.RunPthreads(m) })
		if err != nil {
			return err
		}
		stOP, err := ompss.RunSim(mc, func(rt *ompss.Runtime) { in.RunOmpSs(rt) })
		if err != nil {
			return err
		}
		stOB, err := ompss.RunSim(mc, func(rt *ompss.Runtime) { in.RunOmpSs(rt) },
			ompss.Wait(ompss.Blocking))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d%16v%16v%16v\n", p, stP.Makespan, stOP.Makespan, stOB.Makespan)
	}
	return nil
}

// LocalityAblation reruns ray-rot with the OmpSs locality scheduler on and
// off, quantifying the producer→consumer cache-warmth mechanism the paper
// credits for ray-rot's OmpSs lead.
func LocalityAblation(scale suite.Scale, cores []int, w io.Writer) error {
	wl := srayrot.Default()
	if scale == suite.Small {
		wl = srayrot.Small()
	}
	in := srayrot.New(wl)
	fmt.Fprintf(w, "ray-rot locality ablation (%d render→rotate chains)\n", wl.Frames)
	fmt.Fprintf(w, "%-8s%16s%16s%16s\n", "cores", "pthreads", "ompss-locality", "ompss-fifo")
	for _, p := range cores {
		mc := machine.Paper(p)
		stP, err := pthread.RunSim(mc, p, func(m *pthread.Thread) { in.RunPthreads(m) })
		if err != nil {
			return err
		}
		stOn, err := ompss.RunSim(mc, func(rt *ompss.Runtime) { in.RunOmpSs(rt) })
		if err != nil {
			return err
		}
		stOff, err := ompss.RunSim(mc, func(rt *ompss.Runtime) { in.RunOmpSs(rt) },
			ompss.Locality(false))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d%16v%16v%16v\n", p, stP.Makespan, stOn.Makespan, stOff.Makespan)
	}
	return nil
}

// GranularityAblation reruns h264dec's OmpSs variant across reconstruction
// task granularities (MB rows per task) at the given core counts — §4's
// granularity dilemma: grouping tasks cuts overhead but caps parallelism,
// which is what sinks OmpSs at 24–32 cores against line-decoding Pthreads.
func GranularityAblation(scale suite.Scale, cores []int, w io.Writer) error {
	base := sh264dec.Default()
	if scale == suite.Small {
		base = sh264dec.Small()
	}
	groups := []int{1, 2, 4, base.H / 16}
	fmt.Fprintf(w, "h264dec granularity ablation (GroupRows = MB rows per reconstruction task)\n")
	fmt.Fprintf(w, "%-8s%16s", "cores", "pthreads")
	for _, g := range groups {
		fmt.Fprintf(w, "%16s", fmt.Sprintf("ompss-g%d", g))
	}
	fmt.Fprintln(w)
	for _, p := range cores {
		mc := machine.Paper(p)
		ref := sh264dec.New(base)
		stP, err := pthread.RunSim(mc, p, func(m *pthread.Thread) { ref.RunPthreads(m) })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d%16v", p, stP.Makespan)
		for _, g := range groups {
			wl := base
			wl.GroupRows = g
			in := sh264dec.New(wl)
			st, err := ompss.RunSim(mc, func(rt *ompss.Runtime) { in.RunOmpSs(rt) })
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%16v", st.Makespan)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// OccupancyAblation quantifies §5's closing observation: a polling runtime
// keeps every enabled core loaded even when there is not enough work.
// It runs rgbcmy on 16 cores and reports utilization (useful work) versus
// occupancy (cores held) for both models and both OmpSs wait modes.
func OccupancyAblation(scale suite.Scale, w io.Writer) error {
	wl := srgbcmy.Default()
	if scale == suite.Small {
		wl = srgbcmy.Small()
	}
	in := srgbcmy.New(wl)
	mc := machine.Paper(16)
	type row struct {
		name string
		st   machine.Stats
	}
	var rows []row
	stP, err := pthread.RunSim(mc, 16, func(m *pthread.Thread) { in.RunPthreads(m) })
	if err != nil {
		return err
	}
	rows = append(rows, row{"pthreads-blocking", stP})
	stOP, err := ompss.RunSim(mc, func(rt *ompss.Runtime) { in.RunOmpSs(rt) })
	if err != nil {
		return err
	}
	rows = append(rows, row{"ompss-polling", stOP})
	stOB, err := ompss.RunSim(mc, func(rt *ompss.Runtime) { in.RunOmpSs(rt) }, ompss.Wait(ompss.Blocking))
	if err != nil {
		return err
	}
	rows = append(rows, row{"ompss-blocking", stOB})

	fmt.Fprintf(w, "rgbcmy on 16 cores: core-time accounting\n")
	fmt.Fprintf(w, "%-20s%12s%14s%14s\n", "configuration", "makespan", "utilization", "occupancy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s%12v%13.1f%%%13.1f%%\n",
			r.name, r.st.Makespan.Round(time.Microsecond),
			100*r.st.Utilization, 100*r.st.Occupancy)
	}
	return nil
}
