package bench

import (
	"testing"
)

// TestRenameChainCorrectness runs the WAR-chain microbenchmark in both
// modes at a few worker counts: MeasureRenameChain verifies every reader's
// observed instance and the written-back canonical value internally, so a
// renaming bug fails here deterministically (the speedup itself is
// recorded by the -native harness and gated by the CI bench-trend step,
// not asserted in a unit test that shares a noisy host).
func TestRenameChainCorrectness(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, renaming := range []bool{false, true} {
			res, err := MeasureRenameChain(workers, 3, 30, 500, renaming)
			if err != nil {
				t.Fatalf("w=%d renaming=%v: %v", workers, renaming, err)
			}
			if renaming && workers > 1 && res.Stats.Graph.Renamed == 0 {
				t.Errorf("w=%d: no renames fired", workers)
			}
			if !renaming && res.Stats.Graph.Renamed != 0 {
				t.Errorf("w=%d: %d renames with the knob off", workers, res.Stats.Graph.Renamed)
			}
		}
	}
}

// BenchmarkRenameChain keeps the microbenchmark compiling and runnable
// under the CI bench-smoke job (1 iteration); real numbers come from the
// -native harness.
func BenchmarkRenameChain(b *testing.B) {
	for _, mode := range []struct {
		name     string
		renaming bool
	}{{"renaming-off", false}, {"renaming-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MeasureRenameChain(2, 3, 50, 2000, mode.renaming); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
