package bench

import (
	"testing"

	"ompssgo/ompss"
)

// The submit-path microbenchmarks compare the two ways of naming a datum in
// a dependence clause:
//
//   - AnyKey*: the compatibility path — an untyped key is hashed (through
//     reflection) to its dependence shard and looked up in the shard map on
//     every submission; non-pointer keys are additionally boxed into an
//     interface, which allocates.
//   - Datum*: the registered-handle fast path — Register resolved the shard
//     and record once, so submission does neither, mirroring how the
//     OmpSs compiler resolves clause expressions at build time.
//
// Run with -benchmem (CI's bench-smoke job does): the Datum variants must
// allocate no more and run no slower per task than their AnyKey twins.

const submitKeys = 64

// benchSubmit drives b.N empty tasks through a master-only native runtime
// (no concurrent workers, so the measurement isolates the submit path).
// setup receives the runtime and returns the per-task clause chooser; the
// graph is drained periodically so it stays bounded. Extra options extend
// the runtime configuration (the tuned variant arms the controller).
func benchSubmit(b *testing.B, setup func(rt *ompss.Runtime) func(i int) ompss.Clause, opts ...ompss.Option) {
	rt := ompss.New(append([]ompss.Option{ompss.Workers(1)}, opts...)...)
	defer rt.Shutdown()
	clause := setup(rt)
	body := func(*ompss.TC) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Task(body, clause(i))
		if i%4096 == 4095 {
			rt.Taskwait()
		}
	}
	rt.Taskwait()
}

// BenchmarkSubmitAnyKeyPtr submits through raw pointer keys (the idiomatic
// OmpSs by-reference datum): hashed and map-looked-up per submission.
func BenchmarkSubmitAnyKeyPtr(b *testing.B) {
	benchSubmit(b, func(*ompss.Runtime) func(i int) ompss.Clause {
		keys := make([]*int64, submitKeys)
		for i := range keys {
			keys[i] = new(int64)
		}
		return func(i int) ompss.Clause { return ompss.InOut(keys[i%submitKeys]) }
	})
}

// BenchmarkSubmitDatumPtr submits the same pointer-keyed chains through
// registered handles, using the pre-built AsInOut clause (zero clause
// construction per task).
func BenchmarkSubmitDatumPtr(b *testing.B) {
	benchSubmit(b, func(rt *ompss.Runtime) func(i int) ompss.Clause {
		ds := make([]*ompss.Datum, submitKeys)
		for i := range ds {
			ds[i] = rt.Register(new(int64))
		}
		return func(i int) ompss.Clause { return ds[i%submitKeys].AsInOut() }
	})
}

// BenchmarkSubmitAnyKeyInt submits through plain int keys: every submission
// boxes the int into an interface (one allocation) before hashing it.
func BenchmarkSubmitAnyKeyInt(b *testing.B) {
	benchSubmit(b, func(*ompss.Runtime) func(i int) ompss.Clause {
		return func(i int) ompss.Clause { return ompss.InOut(1000 + i%submitKeys) }
	})
}

// BenchmarkSubmitDatumInt submits the same int-keyed chains through
// registered handles: no boxing, no hashing, no clause construction.
func BenchmarkSubmitDatumInt(b *testing.B) {
	benchSubmit(b, func(rt *ompss.Runtime) func(i int) ompss.Clause {
		ds := make([]*ompss.Datum, submitKeys)
		for i := range ds {
			ds[i] = rt.Register(1000 + i)
		}
		return func(i int) ompss.Clause { return ds[i%submitKeys].AsInOut() }
	})
}

// BenchmarkSubmitBatchDatum drives the same handle-keyed chains through
// Batch/Submit in groups of 64, measuring the amortized bulk-submission
// path (one shard-lock acquisition and one global-queue append per batch).
func BenchmarkSubmitBatchDatum(b *testing.B) {
	rt := ompss.New(ompss.Workers(1))
	defer rt.Shutdown()
	ds := make([]*ompss.Datum, submitKeys)
	for i := range ds {
		ds[i] = rt.Register(new(int64))
	}
	body := func(*ompss.TC) {}
	bt := rt.Batch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Task(body, ds[i%submitKeys].AsInOut())
		if bt.Len() == 64 {
			bt.Submit()
		}
		if i%4096 == 4095 {
			bt.Submit()
			rt.Taskwait()
		}
	}
	bt.Submit()
	rt.Taskwait()
}
