package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The bench-trend gate: CI regenerates a native report on the runner and
// compares it against a committed baseline, so a change that erodes the
// scheduler's or the renamer's measured advantage fails the PR instead of
// landing silently. Absolute wall-clock times are not comparable across
// hosts, so the gate compares the *relative* factors each section exists
// to demonstrate — sched-on over sched-off per benchmark cell, renaming-on
// over renaming-off per worker count — and only in the regression
// direction: a candidate may beat the baseline freely.
//
// CI runners are noisy neighbors, and a single small-workload cell can
// swing well past any honest tolerance, so the hard gate applies to each
// section's MEAN factor over the cells present in both reports; individual
// cells outside tolerance are reported as warnings. Reports taken at
// different workload scales are not comparable at all (small-instance
// factors are overhead-dominated) and are refused outright — which is why
// the repo commits BENCH_native_small.json for the CI gate alongside the
// default-scale BENCH_native.json trajectory record.

// LoadNativeReport reads a BENCH_native.json document.
func LoadNativeReport(path string) (*NativeReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep NativeReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// policyFactors extracts sched-off/sched-on best-time ratios per
// (bench, workers) cell pair.
func policyFactors(r *NativeReport) map[string]float64 {
	type key struct {
		bench   string
		workers int
	}
	on := map[key]int64{}
	off := map[key]int64{}
	for _, c := range r.Cells {
		k := key{c.Bench, c.Workers}
		switch c.Policy {
		case "sched-on":
			on[k] = c.BestNS
		case "sched-off":
			off[k] = c.BestNS
		}
	}
	out := map[string]float64{}
	for k, a := range on {
		if b, ok := off[k]; ok && a > 0 {
			out[fmt.Sprintf("policy %s w=%d", k.bench, k.workers)] = float64(b) / float64(a)
		}
	}
	return out
}

// renameFactors extracts renaming-off/renaming-on ratios per worker count.
func renameFactors(r *NativeReport) map[string]float64 {
	out := map[string]float64{}
	for _, c := range r.Rename {
		if c.OnNS > 0 && c.OffNS > 0 {
			out[fmt.Sprintf("rename-chain w=%d", c.Workers)] = float64(c.OffNS) / float64(c.OnNS)
		}
	}
	return out
}

// autotuneFactors extracts best-static/auto ratios per (bench, workers)
// grain-ablation cell. A falling factor means the grain controller's
// chunking drifted away from the best static grain.
func autotuneFactors(r *NativeReport) map[string]float64 {
	out := map[string]float64{}
	for _, c := range r.Autotune {
		if c.AutoNS > 0 && c.BestStaticNS > 0 {
			out[fmt.Sprintf("autotune %s w=%d", c.Bench, c.Workers)] = float64(c.BestStaticNS) / float64(c.AutoNS)
		}
	}
	return out
}

// TrendResult is the outcome of one baseline/candidate comparison.
type TrendResult struct {
	// Regressions fail the gate: a section's mean factor fell more than
	// the tolerance below the baseline's, a section vanished, the scales
	// differ, or nothing was comparable.
	Regressions []string
	// Warnings are individual cells outside tolerance; noisy hosts produce
	// these legitimately, so they inform without failing.
	Warnings []string
	// Compared counts the factor pairs present in both reports.
	Compared int
}

// OK reports whether the performance trajectory holds.
func (t TrendResult) OK() bool { return len(t.Regressions) == 0 }

// CompareTrend diffs a candidate report against the baseline with the
// given relative tolerance (0.30 = a mean factor may fall up to 30% below
// the baseline's before the gate fails).
func CompareTrend(baseline, candidate *NativeReport, tol float64) TrendResult {
	var res TrendResult
	if baseline.Scale != candidate.Scale {
		res.Regressions = append(res.Regressions, fmt.Sprintf(
			"scale mismatch: baseline %q vs candidate %q — factors at different workload scales are not comparable (gate against the committed report of the matching scale)",
			baseline.Scale, candidate.Scale))
		return res
	}
	sections := []struct {
		name       string
		base, cand map[string]float64
	}{
		{"policy", policyFactors(baseline), policyFactors(candidate)},
		{"rename", renameFactors(baseline), renameFactors(candidate)},
		// Pre-v3 baselines have no autotune section; the empty-base skip
		// below keeps them comparable until the baseline regenerates.
		{"autotune", autotuneFactors(baseline), autotuneFactors(candidate)},
	}
	for _, sec := range sections {
		if len(sec.base) == 0 {
			continue
		}
		if len(sec.cand) == 0 {
			res.Regressions = append(res.Regressions, fmt.Sprintf(
				"candidate has no %s factors while the baseline has %d — the measurement pipeline rotted", sec.name, len(sec.base)))
			continue
		}
		var keys, missing []string
		for k := range sec.base {
			if _, ok := sec.cand[k]; ok {
				keys = append(keys, k)
			} else {
				missing = append(missing, k)
			}
		}
		// Worker counts legitimately differ across hosts, so a few missing
		// cells are only warnings — but losing over half the baseline's
		// cells means the pipeline (not the host) changed.
		sort.Strings(missing)
		for _, k := range missing {
			res.Warnings = append(res.Warnings, fmt.Sprintf("%s: baseline cell missing from candidate", k))
		}
		if len(keys)*2 < len(sec.base) {
			res.Regressions = append(res.Regressions, fmt.Sprintf(
				"%s section: only %d of the baseline's %d cells are present in the candidate",
				sec.name, len(keys), len(sec.base)))
			continue
		}
		sort.Strings(keys)
		var baseSum, candSum float64
		for _, k := range keys {
			bf, cf := sec.base[k], sec.cand[k]
			baseSum += bf
			candSum += cf
			res.Compared++
			if cf < bf*(1-tol) {
				res.Warnings = append(res.Warnings, fmt.Sprintf(
					"%s: factor %.3f is >%.0f%% below baseline %.3f", k, cf, tol*100, bf))
			}
		}
		baseMean := baseSum / float64(len(keys))
		candMean := candSum / float64(len(keys))
		if candMean < baseMean*(1-tol) {
			res.Regressions = append(res.Regressions, fmt.Sprintf(
				"%s section: mean factor %.3f fell below %.3f (baseline mean %.3f over %d cells, tolerance %.0f%%)",
				sec.name, candMean, baseMean*(1-tol), baseMean, len(keys), tol*100))
		}
	}
	if res.Compared == 0 {
		res.Regressions = append(res.Regressions, "no comparable cells between baseline and candidate")
	}
	return res
}
