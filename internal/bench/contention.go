package bench

import (
	"runtime"
	"sync/atomic"
	"time"

	"ompssgo/ompss"
)

// ContentionResult is one measurement of the native executor under
// fine-grained contended load: many tiny tasks racing through submit, pop,
// steal, and finish at once.
type ContentionResult struct {
	Workers  int
	Tasks    int
	Elapsed  time.Duration
	Stats    ompss.RunStats
	Checksum int64 // sum of all chain counters; must equal Tasks
}

// TasksPerSec returns the sustained task throughput.
func (r ContentionResult) TasksPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Tasks) / r.Elapsed.Seconds()
}

// spinWork burns roughly n loop iterations of CPU without touching shared
// state, standing in for a fine-grained task body (the paper's §4 h264dec
// macroblock scale).
func spinWork(n int) int64 {
	var acc int64
	for i := 0; i < n; i++ {
		acc += int64(i ^ (i >> 3))
	}
	return acc
}

var spinSink int64

// MeasureContention drives `tasks` fine-grained tasks through a native
// runtime with `workers` lanes at GOMAXPROCS=workers. The tasks form
// `chains` independent InOut chains submitted round-robin from the master,
// so dependence tracking, ready release, and work stealing all contend;
// each body spins for `spin` iterations (~sub-microsecond granularity).
// The per-chain counters give an end-to-end ordering check: every chain
// must observe exactly tasks/chains increments.
//
// opts configure the runtime under test (scheduling-policy ablations:
// Locality, AffinitySched, Domains); Workers is set by the harness.
func MeasureContention(workers, chains, tasks, spin int, opts ...ompss.Option) ContentionResult {
	return measureContention(workers, chains, tasks, spin, false, opts)
}

// MeasureContentionAffinity is MeasureContention with every chain pinned to
// its counter's home lane via registered handles and Affinity clauses — the
// contended-throughput probe of affinity-aware scheduling.
func MeasureContentionAffinity(workers, chains, tasks, spin int, opts ...ompss.Option) ContentionResult {
	return measureContention(workers, chains, tasks, spin, true, opts)
}

func measureContention(workers, chains, tasks, spin int, affinity bool, opts []ompss.Option) ContentionResult {
	if chains < 1 {
		chains = 1
	}
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)

	rt := ompss.New(append([]ompss.Option{ompss.Workers(workers)}, opts...)...)
	defer rt.Shutdown()

	// One dependence key and one counter per chain, padded to distinct
	// cache lines so the measurement isolates runtime overhead, not
	// counter false sharing.
	type padded struct {
		v int64
		_ [56]byte
	}
	// Every variant — affinity or not — submits through registered handles,
	// so the ablation isolates placement policy from submit-path hashing.
	// Note this changed at PR 3: the PR-1 trajectory numbers in CHANGES.md
	// were measured through any-key clauses and are not directly comparable.
	counters := make([]padded, chains)
	ds := make([]*ompss.Datum, chains)
	var hints []ompss.Clause
	for i := range ds {
		ds[i] = rt.Register(&counters[i])
	}
	if affinity {
		hints = make([]ompss.Clause, chains)
		for i := range hints {
			hints[i] = ompss.Affinity(ds[i])
		}
	}

	start := time.Now()
	for i := 0; i < tasks; i++ {
		c := &counters[i%chains]
		d := ds[i%chains]
		body := func(*ompss.TC) {
			atomic.AddInt64(&spinSink, spinWork(spin)&1)
			c.v++ // safe: InOut chain serializes tasks on this counter
		}
		if affinity {
			rt.Task(body, d.AsInOut(), hints[i%chains])
		} else {
			rt.Task(body, d.AsInOut())
		}
	}
	rt.Taskwait()
	elapsed := time.Since(start)

	var sum int64
	for i := range counters {
		sum += counters[i].v
	}
	return ContentionResult{
		Workers:  workers,
		Tasks:    tasks,
		Elapsed:  elapsed,
		Stats:    rt.Stats(),
		Checksum: sum,
	}
}
