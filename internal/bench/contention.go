package bench

import (
	"runtime"
	"sync/atomic"
	"time"

	"ompssgo/ompss"
)

// ContentionResult is one measurement of the native executor under
// fine-grained contended load: many tiny tasks racing through submit, pop,
// steal, and finish at once.
type ContentionResult struct {
	Workers  int
	Tasks    int
	Elapsed  time.Duration
	Stats    ompss.RunStats
	Checksum int64 // sum of all chain counters; must equal Tasks
}

// TasksPerSec returns the sustained task throughput.
func (r ContentionResult) TasksPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Tasks) / r.Elapsed.Seconds()
}

// spinWork burns roughly n loop iterations of CPU without touching shared
// state, standing in for a fine-grained task body (the paper's §4 h264dec
// macroblock scale).
func spinWork(n int) int64 {
	var acc int64
	for i := 0; i < n; i++ {
		acc += int64(i ^ (i >> 3))
	}
	return acc
}

var spinSink int64

// MeasureContention drives `tasks` fine-grained tasks through a native
// runtime with `workers` lanes at GOMAXPROCS=workers. The tasks form
// `chains` independent InOut chains submitted round-robin from the master,
// so dependence tracking, ready release, and work stealing all contend;
// each body spins for `spin` iterations (~sub-microsecond granularity).
// The per-chain counters give an end-to-end ordering check: every chain
// must observe exactly tasks/chains increments.
func MeasureContention(workers, chains, tasks, spin int) ContentionResult {
	if chains < 1 {
		chains = 1
	}
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)

	rt := ompss.New(ompss.Workers(workers))
	defer rt.Shutdown()

	// One dependence key and one counter per chain, padded to distinct
	// cache lines so the measurement isolates runtime overhead, not
	// counter false sharing.
	type padded struct {
		v int64
		_ [56]byte
	}
	counters := make([]padded, chains)

	start := time.Now()
	for i := 0; i < tasks; i++ {
		c := &counters[i%chains]
		rt.Task(func(*ompss.TC) {
			atomic.AddInt64(&spinSink, spinWork(spin)&1)
			c.v++ // safe: InOut chain serializes tasks on this counter
		}, ompss.InOut(c))
	}
	rt.Taskwait()
	elapsed := time.Since(start)

	var sum int64
	for i := range counters {
		sum += counters[i].v
	}
	return ContentionResult{
		Workers:  workers,
		Tasks:    tasks,
		Elapsed:  elapsed,
		Stats:    rt.Stats(),
		Checksum: sum,
	}
}
