package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ompssgo/internal/dist"
	"ompssgo/internal/obs"
	"ompssgo/internal/suite"
	"ompssgo/internal/suite/distkern"
	"ompssgo/ompss"
)

// The distributed harness is the two-process proof the distributed
// execution domain ships with: every adapted suite workload runs at each
// worker-process count, its checksum is verified against the sequential
// reference, and the report records wall-clock times next to the transfer
// accounting (bytes moved, transfers the per-worker version caches
// avoided) that explains them. BENCH_dist.json is the committed artifact.

// DistCell is one workload × transport × worker-process-count measurement.
type DistCell struct {
	Bench     string `json:"bench"`
	Transport string `json:"transport"`
	Workers   int    `json:"workers"`
	Runs      int    `json:"runs"`
	BestNS    int64  `json:"best_ns"`
	MeanNS    int64  `json:"mean_ns"`
	// Accounting of the best repetition.
	Tasks            int   `json:"tasks"`
	BytesToWorkers   int64 `json:"bytes_to_workers"`
	BytesFromWorkers int64 `json:"bytes_from_workers"`
	TransfersAvoided int   `json:"transfers_avoided"`
	BytesAvoided     int64 `json:"bytes_avoided"`
	Evictions        int64 `json:"evictions"`
	// Chain and forwarding accounting: dispatch frames vs tasks (chains
	// collapse round-trips), and bytes that moved worker-to-worker
	// instead of relaying through the coordinator.
	RoundTrips       int   `json:"round_trips"`
	Chains           int   `json:"chains"`
	ChainedTasks     int   `json:"chained_tasks"`
	Forwards         int   `json:"forwards"`
	BytesForwarded   int64 `json:"bytes_forwarded"`
	ForwardFallbacks int   `json:"forward_fallbacks"`
}

// DistSpeedup is one workload's wall-clock factor of the largest worker
// count over one worker process.
type DistSpeedup struct {
	Bench   string  `json:"bench"`
	Workers int     `json:"workers"`
	Factor  float64 `json:"factor"`
}

// DistReport is the BENCH_dist.json document.
type DistReport struct {
	Schema    string        `json:"schema"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Scale     string        `json:"scale"`
	Cells     []DistCell    `json:"cells"`
	Speedups  []DistSpeedup `json:"speedups"`
}

// RunDist measures the adapted suite workloads on the distributed
// backend at each transport × worker-process count, verifying every run
// against the sequential reference. Spawn and handshake cost is inside
// the measured window — the domain pays it per run, so the numbers do
// too. Speedup rows compare worker counts over the first transport.
func RunDist(workers []int, iters int, scale suite.Scale, transports []string, progress io.Writer) (*DistReport, error) {
	if len(workers) == 0 {
		workers = []int{1, 2}
	}
	if iters < 1 {
		iters = 1
	}
	if len(transports) == 0 {
		transports = []string{dist.TransportUnix, dist.TransportTCP}
	}
	scaleName := "default"
	set := distkern.Default()
	if scale == suite.Small {
		scaleName = "small"
		set = distkern.Small()
	}
	rep := &DistReport{
		Schema:    "ompssgo/bench-dist/v2",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Scale:     scaleName,
	}
	for _, wl := range set {
		want := wl.Seq()
		perWorkers := map[int]int64{} // workers -> best ns on transports[0]
		for _, tr := range transports {
			// Untimed verification run with worker tracing on: the merged
			// cross-process trace must reconcile exactly with the
			// coordinator's transfer accounting (dist.ReconcileTrace), so a
			// booking bug in either plane fails the battery before any
			// number is reported.
			if err := verifyDistTrace(wl, tr, workers[len(workers)-1]); err != nil {
				return nil, fmt.Errorf("%s/%s: trace reconcile: %w", wl.Name, tr, err)
			}
			for _, w := range workers {
				cell := DistCell{Bench: wl.Name, Transport: tr, Workers: w, Runs: iters}
				var total time.Duration
				for it := 0; it < iters; it++ {
					var got uint64
					start := time.Now()
					stats, err := ompss.RunDist(w, func(rt *dist.RT) error {
						var err error
						got, err = wl.Run(rt)
						return err
					}, ompss.DistTransport(tr))
					elapsed := time.Since(start)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/w%d: %w", wl.Name, tr, w, err)
					}
					if got != want {
						return nil, fmt.Errorf("%s/%s/w%d: checksum %#x, sequential reference %#x",
							wl.Name, tr, w, got, want)
					}
					total += elapsed
					if cell.BestNS == 0 || elapsed.Nanoseconds() < cell.BestNS {
						cell.BestNS = elapsed.Nanoseconds()
						cell.Tasks = stats.Tasks
						cell.BytesToWorkers = stats.BytesToWorkers
						cell.BytesFromWorkers = stats.BytesFromWorkers
						cell.TransfersAvoided = stats.TransfersAvoided
						cell.BytesAvoided = stats.BytesAvoided
						cell.Evictions = stats.Evictions
						cell.RoundTrips = stats.RoundTrips
						cell.Chains = stats.Chains
						cell.ChainedTasks = stats.ChainedTasks
						cell.Forwards = stats.Forwards
						cell.BytesForwarded = stats.BytesForwarded
						cell.ForwardFallbacks = stats.ForwardFallbacks
					}
				}
				cell.MeanNS = total.Nanoseconds() / int64(iters)
				if tr == transports[0] {
					perWorkers[w] = cell.BestNS
				}
				rep.Cells = append(rep.Cells, cell)
				if progress != nil {
					fmt.Fprintf(progress, "# dist %-8s %-5s w=%-2d best=%-12v %dB out %dB back, %d xfers avoided, %d/%d trips, %d fwd (%dB)\n",
						wl.Name, tr, w, time.Duration(cell.BestNS), cell.BytesToWorkers,
						cell.BytesFromWorkers, cell.TransfersAvoided,
						cell.RoundTrips, cell.Tasks, cell.Forwards, cell.BytesForwarded)
				}
			}
		}
		base, top := workers[0], workers[len(workers)-1]
		if base != top && perWorkers[top] > 0 {
			rep.Speedups = append(rep.Speedups, DistSpeedup{
				Bench:   wl.Name,
				Workers: top,
				Factor:  float64(perWorkers[base]) / float64(perWorkers[top]),
			})
		}
	}
	return rep, nil
}

// verifyDistTrace runs one workload with worker-side tracing enabled and
// cross-checks the merged trace against the run's Stats: exactly-once
// task execution on worker tracks, and byte-exact transfer, forward,
// cache-hit, and chain accounting.
func verifyDistTrace(wl distkern.Workload, transport string, workers int) error {
	var merged *obs.Trace
	stats, err := ompss.RunDist(workers, func(rt *dist.RT) error {
		_, err := wl.Run(rt)
		return err
	},
		ompss.DistTransport(transport),
		ompss.DistTraceSink(func(m *obs.Trace) { merged = m }))
	if err != nil {
		return err
	}
	if merged == nil {
		return fmt.Errorf("trace sink never ran")
	}
	return dist.ReconcileTrace(merged, stats)
}

// WriteJSON serializes the report (stable field order, trailing newline).
func (r *DistReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the cells and the speedup rows.
func (r *DistReport) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-10s%-6s%8s%14s%12s%12s%10s%8s%8s%10s\n",
		"workload", "net", "workers", "best", "out", "back", "avoided", "trips", "chains", "fwdB")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-10s%-6s%8d%14v%12d%12d%10d%8d%8d%10d\n",
			c.Bench, c.Transport, c.Workers, time.Duration(c.BestNS), c.BytesToWorkers,
			c.BytesFromWorkers, c.TransfersAvoided, c.RoundTrips, c.Chains, c.BytesForwarded)
	}
	for _, s := range r.Speedups {
		fmt.Fprintf(w, "speedup %-10s %d workers: %.2fx over 1\n", s.Bench, s.Workers, s.Factor)
	}
}
