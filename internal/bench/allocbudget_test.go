package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// TestSubmitAllocBudget is the allocation regression guard for the submit
// hot path: it runs each submit microbenchmark through testing.Benchmark
// and fails when allocs/op exceeds the checked-in ceiling in
// testdata/alloc_budget.json. Allocation counts on this path are
// deterministic (no GOMAXPROCS or timing dependence at Workers(1)), so the
// ceilings are exact: a one-allocation regression fails loudly in CI's
// bench-smoke job instead of drowning in a benchmark log. When an
// optimization lowers a count, ratchet the budget file down with it.
func TestSubmitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven; skipped in -short")
	}
	raw, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatalf("read alloc budget: %v", err)
	}
	var file map[string]any
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("parse alloc budget: %v", err)
	}
	entries := map[string]int64{}
	for name, v := range file {
		if name == "_comment" {
			continue
		}
		f, ok := v.(float64)
		if !ok {
			t.Fatalf("budget %s: want a number, got %T", name, v)
		}
		entries[name] = int64(f)
	}
	benchmarks := map[string]func(*testing.B){
		"BenchmarkSubmitAnyKeyPtr":  BenchmarkSubmitAnyKeyPtr,
		"BenchmarkSubmitDatumPtr":   BenchmarkSubmitDatumPtr,
		"BenchmarkSubmitAnyKeyInt":  BenchmarkSubmitAnyKeyInt,
		"BenchmarkSubmitDatumInt":   BenchmarkSubmitDatumInt,
		"BenchmarkSubmitBatchDatum": BenchmarkSubmitBatchDatum,
		// Observability ceilings: the raw record path must stay at 0
		// allocs/op, and a recorder-attached submit must cost no more
		// allocations than a detached one (same ceiling as
		// BenchmarkSubmitDatumPtr).
		"BenchmarkObsRecord":              BenchmarkObsRecord,
		"BenchmarkSubmitDatumPtrObserved": BenchmarkSubmitDatumPtrObserved,
		// Tuning ceilings: an armed feedback controller must cost the
		// submit path nothing (same ceiling as BenchmarkSubmitDatumPtr)
		// and its per-completion feed must stay allocation-free.
		"BenchmarkSubmitDatumPtrTuned": BenchmarkSubmitDatumPtrTuned,
		"BenchmarkTuneRecord":          BenchmarkTuneRecord,
		// Metrics-plane ceilings: every live increment/observation must
		// stay allocation-free, so scraping a loaded server never perturbs
		// it. The dist frame round-trip is pinned at its current cost so
		// trace piggybacking cannot silently inflate the dispatch path.
		"BenchmarkMetricsCounterInc":       BenchmarkMetricsCounterInc,
		"BenchmarkMetricsGaugeSet":         BenchmarkMetricsGaugeSet,
		"BenchmarkMetricsHistogramObserve": BenchmarkMetricsHistogramObserve,
		"BenchmarkDistFrameRoundTrip":      BenchmarkDistFrameRoundTrip,
	}
	for name, fn := range benchmarks {
		budget, ok := entries[name]
		if !ok {
			t.Errorf("%s: no budget in testdata/alloc_budget.json — add one", name)
			continue
		}
		res := testing.Benchmark(fn)
		if got := res.AllocsPerOp(); got > budget {
			t.Errorf("%s: %d allocs/op exceeds budget %d (testdata/alloc_budget.json) — "+
				"either fix the regression or justify raising the budget",
				name, got, budget)
		} else {
			t.Logf("%s: %d allocs/op (budget %d)", name, got, budget)
		}
	}
	// Every budgeted benchmark must still exist, so a rename cannot
	// silently drop coverage.
	for name := range entries {
		if _, ok := benchmarks[name]; !ok {
			t.Errorf("budget entry %s has no matching benchmark — remove or rename it", name)
		}
	}
}
