package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ompssgo/internal/obs"
	"ompssgo/internal/suite"
	"ompssgo/ompss"
)

// The native harness is the wall-clock counterpart of the simulated Table 1
// pipeline: it runs the suite's small instances on real goroutines under
// the scheduling policy switched on and off, checks every result against
// the sequential reference, and serializes the measurements as
// BENCH_native.json — the repo's native performance trajectory. A second
// section measures the contended-throughput microbenchmark with and
// without affinity pinning, isolating the scheduler's contribution from
// benchmark-specific effects.

// NativePolicies are the runtime configurations the harness ablates. The
// "sched-off" baseline disables both placement policies, so every ready
// task funnels through the global FIFO and random stealing — the
// configuration the paper's §4 compares the locality scheduler against.
var NativePolicies = []struct {
	Name string
	Opts []ompss.Option
}{
	{"sched-on", nil}, // locality + affinity, the default
	{"locality-only", []ompss.Option{ompss.AffinitySched(false)}},
	{"affinity-only", []ompss.Option{ompss.Locality(false)}},
	{"sched-off", []ompss.Option{ompss.Locality(false), ompss.AffinitySched(false)}},
}

// NativeCell is one wall-clock measurement: a benchmark × worker count ×
// policy, aggregated over Runs repetitions.
type NativeCell struct {
	Bench   string `json:"bench"`
	Workers int    `json:"workers"`
	Policy  string `json:"policy"`
	Runs    int    `json:"runs"`
	// BestNS is the fastest repetition (the conventional wall-clock figure:
	// least-noise estimate of the achievable time); MeanNS averages all.
	BestNS int64 `json:"best_ns"`
	MeanNS int64 `json:"mean_ns"`
	// Scheduler activity of the last repetition, for diagnosing placement.
	LocalPops    uint64 `json:"local_pops"`
	PrioPops     uint64 `json:"prio_pops"`
	AffinityPops uint64 `json:"affinity_pops"`
	GlobalPops   uint64 `json:"global_pops"`
	Steals       uint64 `json:"steals"`
	DomainSteals uint64 `json:"domain_steals"`
}

// NativeRenameCell is one WAR-chain measurement pair: the microbenchmark
// run with dependence renaming on and off at one worker count (see
// MeasureRenameChain). Factor is off-time over on-time — the throughput
// the renamer buys by breaking WAR/WAW edges.
type NativeRenameCell struct {
	Workers   int     `json:"workers"`
	Readers   int     `json:"readers"`
	Rounds    int     `json:"rounds"`
	Spin      int     `json:"spin"`
	OnNS      int64   `json:"on_ns"`  // best renaming-on repetition
	OffNS     int64   `json:"off_ns"` // best renaming-off repetition
	Factor    float64 `json:"factor"`
	Renamed   uint64  `json:"renamed"`   // renames in the best on-run
	Fallbacks uint64  `json:"fallbacks"` // cap-induced stalls in the best on-run
}

// NativeContentionCell is one contended-throughput measurement.
type NativeContentionCell struct {
	Variant     string  `json:"variant"` // fifo | locality | locality+affinity
	Workers     int     `json:"workers"`
	Tasks       int     `json:"tasks"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	Steals      uint64  `json:"steals"`
	LocalPops   uint64  `json:"local_pops"`
	AffPops     uint64  `json:"affinity_pops"`
}

// NativeReport is the BENCH_native.json document.
type NativeReport struct {
	Schema     string                 `json:"schema"`
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	NumCPU     int                    `json:"num_cpu"`
	Scale      string                 `json:"scale"`
	Cells      []NativeCell           `json:"cells"`
	Rename     []NativeRenameCell     `json:"rename"`
	Contention []NativeContentionCell `json:"contention"`
	// Autotune is the grain-ablation section (auto chunking vs the best
	// static chunk; see RunAutotune), filled by the -tune harness leg.
	Autotune []AutotuneCell `json:"autotune,omitempty"`
}

// RunNative measures the named benchmarks (suite.Names() when names is
// empty) at each worker count under every policy, plus the contention
// ablation, repeating each cell iters times. Results are verified against
// the sequential reference; a mismatch aborts the run. progress, if
// non-nil, receives one line per cell.
//
// Scale note: the Small instances finish in a few milliseconds and are
// mostly useful as a smoke pipeline; policy effects only rise above host
// noise at suite.Default (tens to hundreds of ms per run — what
// EXPERIMENTS.md records).
func RunNative(names []string, workers []int, iters int, scale suite.Scale, progress io.Writer) (*NativeReport, error) {
	if len(names) == 0 {
		names = suite.Names()
	}
	if len(workers) == 0 {
		workers = defaultNativeWorkers()
	}
	if iters < 1 {
		iters = 1
	}
	scaleName := "default"
	if scale == suite.Small {
		scaleName = "small"
	}
	rep := &NativeReport{
		Schema:    "ompssgo/bench-native/v3",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Scale:     scaleName,
	}
	for _, name := range names {
		ref, err := suite.New(name, scale)
		if err != nil {
			return nil, err
		}
		want := ref.RunSeq()
		for _, w := range workers {
			// Policies are interleaved round-robin across repetitions (every
			// policy runs once per round) so slow phases of a noisy host hit
			// every configuration roughly equally, instead of one policy's
			// whole block eating a neighbor's burst.
			cells := make([]NativeCell, len(NativePolicies))
			for pi, pol := range NativePolicies {
				cells[pi] = NativeCell{Bench: name, Workers: w, Policy: pol.Name, Runs: iters}
			}
			var totals = make([]time.Duration, len(NativePolicies))
			for it := 0; it < iters; it++ {
				for pi, pol := range NativePolicies {
					elapsed, err := measureNativeOnce(name, w, pol.Opts, scale, want, &cells[pi])
					if err != nil {
						return nil, err
					}
					totals[pi] += elapsed
				}
			}
			for pi := range cells {
				cells[pi].MeanNS = totals[pi].Nanoseconds() / int64(iters)
				rep.Cells = append(rep.Cells, cells[pi])
				if progress != nil {
					fmt.Fprintf(progress, "# %-13s w=%-2d %-13s best=%-12v steals=%d local=%d aff=%d\n",
						name, w, cells[pi].Policy, time.Duration(cells[pi].BestNS),
						cells[pi].Steals, cells[pi].LocalPops, cells[pi].AffinityPops)
				}
			}
		}
	}
	var err error
	if rep.Rename, err = runNativeRename(workers, iters, scale, progress); err != nil {
		return nil, err
	}
	rep.Contention = runNativeContention(workers, iters, progress)
	return rep, nil
}

// runNativeRename measures the WAR-chain microbenchmark with renaming on
// and off at every worker count — plus GOMAXPROCS=4 even on smaller hosts
// (the renamer's acceptance bar is stated at ≥4 lanes; oversubscription
// only understates it) — interleaving the two modes round-robin across
// repetitions like the benchmark cells. The cells are milliseconds each,
// so repetitions are cheap: at least 5 run regardless of iters, since
// best-of is the noise filter for a measurement this short.
func runNativeRename(workers []int, iters int, scale suite.Scale, progress io.Writer) ([]NativeRenameCell, error) {
	hasFour := false
	for _, w := range workers {
		if w >= 4 {
			hasFour = true
		}
	}
	if !hasFour {
		workers = append(append([]int{}, workers...), 4)
	}
	if iters < 5 {
		iters = 5
	}
	// ~75µs of spin per task keeps runtime overhead a small fraction of the
	// body, so the measured factor isolates the dependence structure: with
	// 3 readers per round a 2-core host shows ~1.8x at w=2 and ~1.6x at
	// w=4 (oversubscribed), well above the ≥1.3x the renamer must deliver.
	const readers, spin = 3, 60000
	rounds := 150
	if scale == suite.Small {
		rounds = 80
	}
	var out []NativeRenameCell
	for _, w := range workers {
		cell := NativeRenameCell{Workers: w, Readers: readers, Rounds: rounds, Spin: spin}
		for it := 0; it < iters; it++ {
			for _, renaming := range []bool{true, false} {
				res, err := MeasureRenameChain(w, readers, rounds, spin, renaming)
				if err != nil {
					return nil, err
				}
				ns := res.Elapsed.Nanoseconds()
				if renaming {
					if cell.OnNS == 0 || ns < cell.OnNS {
						cell.OnNS = ns
						cell.Renamed = res.Stats.Graph.Renamed
						cell.Fallbacks = res.Stats.Graph.RenameFallbacks
					}
				} else if cell.OffNS == 0 || ns < cell.OffNS {
					cell.OffNS = ns
				}
			}
		}
		if cell.OnNS > 0 {
			cell.Factor = float64(cell.OffNS) / float64(cell.OnNS)
		}
		out = append(out, cell)
		if progress != nil {
			fmt.Fprintf(progress, "# rename-chain   w=%-2d on=%-12v off=%-12v factor=%.2f renamed=%d fallbacks=%d\n",
				w, time.Duration(cell.OnNS), time.Duration(cell.OffNS), cell.Factor,
				cell.Renamed, cell.Fallbacks)
		}
	}
	return out, nil
}

func defaultNativeWorkers() []int {
	n := runtime.NumCPU()
	ws := []int{1}
	if n >= 2 {
		ws = append(ws, 2)
	}
	if n > 2 {
		ws = append(ws, n)
	}
	return ws
}

// measureNativeOnce runs one repetition of a cell, folding the timing and
// the run's scheduler counters into cell, and returns the elapsed time.
func measureNativeOnce(name string, workers int, opts []ompss.Option, scale suite.Scale, want uint64, cell *NativeCell) (time.Duration, error) {
	// A fresh instance per repetition: warm-cache carryover between
	// repetitions would flatter whichever policy runs second.
	in, err := suite.New(name, scale)
	if err != nil {
		return 0, err
	}
	rt := ompss.New(append([]ompss.Option{ompss.Workers(workers)}, opts...)...)
	start := time.Now()
	got := in.RunOmpSs(rt)
	elapsed := time.Since(start)
	st := rt.Stats()
	rt.Shutdown()
	if got != want {
		return 0, fmt.Errorf("%s/%s/w%d: checksum %#x, sequential reference %#x",
			name, cell.Policy, workers, got, want)
	}
	if cell.BestNS == 0 || elapsed.Nanoseconds() < cell.BestNS {
		cell.BestNS = elapsed.Nanoseconds()
	}
	cell.LocalPops = st.Sched.LocalPops
	cell.PrioPops = st.Sched.PrioPops
	cell.AffinityPops = st.Sched.AffinityPops
	cell.GlobalPops = st.Sched.GlobalPops
	cell.Steals = st.Sched.Steals
	cell.DomainSteals = st.Sched.DomainSteals
	return elapsed, nil
}

// runNativeContention measures the fine-grained chained-task throughput
// probe in three configurations of increasing policy: no placement policy,
// locality chaining, and locality plus affinity pinning.
func runNativeContention(workers []int, iters int, progress io.Writer) []NativeContentionCell {
	w := workers[len(workers)-1]
	if w < 2 && runtime.NumCPU() >= 2 {
		w = 2
	}
	const spin = 200
	chains := 4 * w
	tasks := 30000
	variants := []struct {
		name     string
		affinity bool
		opts     []ompss.Option
	}{
		{"fifo", false, []ompss.Option{ompss.Locality(false), ompss.AffinitySched(false)}},
		{"locality", false, nil},
		{"locality+affinity", true, nil},
	}
	out := make([]NativeContentionCell, len(variants))
	for i, v := range variants {
		out[i] = NativeContentionCell{Variant: v.name, Workers: w, Tasks: tasks}
	}
	// Variants interleave round-robin, as in the benchmark cells, so host
	// noise spreads across all of them.
	for it := 0; it < iters; it++ {
		for i, v := range variants {
			var res ContentionResult
			if v.affinity {
				res = MeasureContentionAffinity(w, chains, tasks, spin, v.opts...)
			} else {
				res = MeasureContention(w, chains, tasks, spin, v.opts...)
			}
			if tps := res.TasksPerSec(); tps > out[i].TasksPerSec {
				out[i].TasksPerSec = tps
				out[i].Steals = res.Stats.Sched.Steals
				out[i].LocalPops = res.Stats.Sched.LocalPops
				out[i].AffPops = res.Stats.Sched.AffinityPops
			}
		}
	}
	if progress != nil {
		for _, c := range out {
			fmt.Fprintf(progress, "# contention %-18s w=%d  %.0f tasks/s  steals=%d local=%d aff=%d\n",
				c.Variant, c.Workers, c.TasksPerSec, c.Steals, c.LocalPops, c.AffPops)
		}
	}
	return out
}

// RecordNativeTrace runs one instrumented native repetition of a suite
// benchmark (default policy) with an observability recorder attached and
// returns the merged trace — the ompss-bench -trace leg. workers <= 0
// selects the largest worker count of the harness default (the same list
// RunNative measures with no -cores). The result is verified against the
// sequential reference. The instrumented run is separate from the
// measured cells, so attaching a recorder never touches the numbers in
// the report.
func RecordNativeTrace(name string, workers int, scale suite.Scale) (*obs.Trace, error) {
	if workers <= 0 {
		ws := defaultNativeWorkers()
		workers = ws[len(ws)-1]
	}
	ref, err := suite.New(name, scale)
	if err != nil {
		return nil, err
	}
	want := ref.RunSeq()
	in, err := suite.New(name, scale)
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder()
	rt := ompss.New(ompss.Workers(workers), ompss.Observe(rec))
	got := in.RunOmpSs(rt)
	rt.Shutdown()
	if got != want {
		return nil, fmt.Errorf("%s/trace/w%d: checksum %#x, sequential reference %#x",
			name, workers, got, want)
	}
	return rec.Snapshot(), nil
}

// WriteJSON serializes the report (stable field order, trailing newline).
func (r *NativeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the benchmark cells as an aligned per-policy speedup
// table (sched-on time over sched-off time per benchmark × worker count).
func (r *NativeReport) WriteTable(w io.Writer) {
	type key struct {
		bench   string
		workers int
	}
	on := map[key]NativeCell{}
	off := map[key]NativeCell{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Bench, c.Workers}
		switch c.Policy {
		case "sched-on":
			if _, seen := on[k]; !seen {
				order = append(order, k)
			}
			on[k] = c
		case "sched-off":
			off[k] = c
		}
	}
	fmt.Fprintf(w, "%-14s%8s%14s%14s%10s\n", "benchmark", "workers", "sched-on", "sched-off", "factor")
	for _, k := range order {
		a, b := on[k], off[k]
		factor := 0.0
		if a.BestNS > 0 {
			factor = float64(b.BestNS) / float64(a.BestNS)
		}
		fmt.Fprintf(w, "%-14s%8d%14v%14v%10.2f\n",
			k.bench, k.workers, time.Duration(a.BestNS), time.Duration(b.BestNS), factor)
	}
	for _, c := range r.Rename {
		fmt.Fprintf(w, "rename-chain w=%d  on=%v off=%v  %0.2fx  (%d renames, %d cap stalls)\n",
			c.Workers, time.Duration(c.OnNS), time.Duration(c.OffNS), c.Factor, c.Renamed, c.Fallbacks)
	}
	for _, c := range r.Contention {
		fmt.Fprintf(w, "contention %-18s w=%d  %12.0f tasks/s\n", c.Variant, c.Workers, c.TasksPerSec)
	}
	for _, c := range r.Autotune {
		fmt.Fprintf(w, "autotune %-8s w=%d  static(chunk=%d)=%v auto=%v  %0.2fx\n",
			c.Bench, c.Workers, c.BestStaticChunk, time.Duration(c.BestStaticNS),
			time.Duration(c.AutoNS), c.Factor)
	}
}
