package bench

import (
	"bytes"
	"testing"

	"ompssgo/internal/dist"
	"ompssgo/internal/obs/metrics"
)

// Metrics-plane overhead microbenchmarks. The live metrics plane attaches
// to a serving runtime, so its hot-path contract is the same as the
// recorder's: zero allocations per increment/observation, enforced through
// testdata/alloc_budget.json. BenchmarkDistFrameRoundTrip pins the wire
// dispatch path's per-frame allocation cost so trace piggybacking cannot
// silently inflate it.

// BenchmarkMetricsCounterInc measures one counter increment.
func BenchmarkMetricsCounterInc(b *testing.B) {
	reg := metrics.NewRegistry()
	c := reg.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatalf("count %d != %d", c.Value(), b.N)
	}
}

// BenchmarkMetricsGaugeSet measures one gauge store.
func BenchmarkMetricsGaugeSet(b *testing.B) {
	reg := metrics.NewRegistry()
	g := reg.Gauge("bench_gauge", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

// BenchmarkMetricsHistogramObserve measures one latency observation,
// cycling across bucket indexes so the bit-length bucket map is exercised.
func BenchmarkMetricsHistogramObserve(b *testing.B) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("bench_seconds", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(1000 << (i % 20)))
	}
	if h.Count() != uint64(b.N) {
		b.Fatalf("count %d != %d", h.Count(), b.N)
	}
}

// BenchmarkDistFrameRoundTrip measures one task-dispatch frame through the
// wire codec: encode a TaskMsg frame, decode it back. This is the
// coordinator's per-dispatch marshal cost; its alloc ceiling guards the
// path now that trace batches piggyback on the same frames.
func BenchmarkDistFrameRoundTrip(b *testing.B) {
	payload := make([]byte, 4096)
	f := &dist.Frame{Task: &dist.TaskMsg{
		ID:     7,
		Kernel: "bench.kernel",
		Args:   []byte{1, 2, 3, 4},
		NIn:    1,
		Reads:  []dist.WireRef{{Datum: 1, Ver: 2, Size: 4096, Bytes: payload}},
		Writes: []dist.WireOut{{Datum: 3, Ver: 1, Size: 4096, SeedFrom: -1}},
	}}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := dist.WriteFrame(&buf, f); err != nil {
			b.Fatal(err)
		}
		if _, err := dist.ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
