// Package bench is the evaluation harness: it reruns the paper's
// experiments on the simulated cc-NUMA machine and renders the same tables
// the paper reports — Table 1 (OmpSs-over-Pthreads speedup factors per
// benchmark and core count, with geometric means) and the §4/§5 mechanism
// ablations (barrier mode, locality scheduling, task granularity, core
// occupancy).
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"ompssgo/internal/suite"
	"ompssgo/machine"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// PaperCores are the core counts of the paper's Table 1.
var PaperCores = []int{1, 8, 16, 24, 32}

// PaperTable1 holds the published speedup factors, for side-by-side
// comparison in EXPERIMENTS.md.
var PaperTable1 = map[string][]float64{
	"c-ray":         {1.03, 1.11, 1.12, 1.11, 1.14},
	"rotate":        {1.06, 1.04, 1.09, 1.02, 0.86},
	"rgbcmy":        {1.02, 0.98, 1.14, 1.40, 1.53},
	"md5":           {1.00, 1.02, 1.10, 1.14, 1.05},
	"kmeans":        {0.91, 0.87, 1.30, 0.95, 0.88},
	"ray-rot":       {1.02, 1.10, 1.65, 1.46, 1.20},
	"rot-cc":        {1.00, 1.06, 1.17, 1.14, 1.04},
	"streamcluster": {0.93, 0.84, 0.91, 0.99, 0.99},
	"bodytrack":     {0.98, 0.99, 1.05, 0.97, 1.00},
	"h264dec":       {0.94, 1.07, 0.87, 0.57, 0.42},
}

// Cell is one Table 1 measurement.
type Cell struct {
	Bench    string
	Cores    int
	Pthreads time.Duration // simulated makespan, Pthreads variant
	OmpSs    time.Duration // simulated makespan, OmpSs variant
}

// Factor is the Table 1 entry: Pthreads time over OmpSs time (>1 means
// OmpSs is faster).
func (c Cell) Factor() float64 {
	if c.OmpSs == 0 {
		return 0
	}
	return float64(c.Pthreads) / float64(c.OmpSs)
}

// MeasureCell simulates both variants of one benchmark at one core count.
// Options apply to the OmpSs runtime (the Pthreads variant has no knobs).
func MeasureCell(in suite.Instance, cores int, opts ...ompss.Option) (Cell, error) {
	mc := machine.Paper(cores)
	stP, err := pthread.RunSim(mc, cores, func(m *pthread.Thread) { in.RunPthreads(m) })
	if err != nil {
		return Cell{}, fmt.Errorf("%s/pthreads/%d: %w", in.Name(), cores, err)
	}
	stO, err := ompss.RunSim(mc, func(rt *ompss.Runtime) { in.RunOmpSs(rt) }, opts...)
	if err != nil {
		return Cell{}, fmt.Errorf("%s/ompss/%d: %w", in.Name(), cores, err)
	}
	return Cell{Bench: in.Name(), Cores: cores, Pthreads: stP.Makespan, OmpSs: stO.Makespan}, nil
}

// Table1 is a full speedup-factor table.
type Table1 struct {
	Cores []int
	Rows  []string
	Cells map[string]map[int]Cell // bench -> cores -> cell
}

// RunTable1 measures every benchmark of the suite at every core count.
// progress, if non-nil, receives one line per cell as it completes.
func RunTable1(scale suite.Scale, cores []int, progress io.Writer) (*Table1, error) {
	t := &Table1{Cores: cores, Rows: suite.Names(), Cells: map[string]map[int]Cell{}}
	for _, name := range t.Rows {
		in, err := suite.New(name, scale)
		if err != nil {
			return nil, err
		}
		t.Cells[name] = map[int]Cell{}
		for _, p := range cores {
			cell, err := MeasureCell(in, p)
			if err != nil {
				return nil, err
			}
			t.Cells[name][p] = cell
			if progress != nil {
				fmt.Fprintf(progress, "# %-13s P=%-2d  pthreads=%-12v ompss=%-12v factor=%.2f\n",
					name, p, cell.Pthreads, cell.OmpSs, cell.Factor())
			}
		}
	}
	return t, nil
}

// RowMean returns the geometric mean of a benchmark's factors across core
// counts (the paper's "Mean" column).
func (t *Table1) RowMean(bench string) float64 {
	var fs []float64
	for _, p := range t.Cores {
		fs = append(fs, t.Cells[bench][p].Factor())
	}
	return geomean(fs)
}

// ColMean returns the geometric mean of all benchmarks' factors at one core
// count (the paper's bottom "Mean" row).
func (t *Table1) ColMean(cores int) float64 {
	var fs []float64
	for _, b := range t.Rows {
		fs = append(fs, t.Cells[b][cores].Factor())
	}
	return geomean(fs)
}

// OverallMean returns the geometric mean over every cell (the paper's
// headline "2% better" figure corresponds to 1.02 here).
func (t *Table1) OverallMean() float64 {
	var fs []float64
	for _, b := range t.Rows {
		for _, p := range t.Cores {
			fs = append(fs, t.Cells[b][p].Factor())
		}
	}
	return geomean(fs)
}

func geomean(fs []float64) float64 {
	if len(fs) == 0 {
		return 0
	}
	var s float64
	for _, f := range fs {
		if f <= 0 {
			return 0
		}
		s += math.Log(f)
	}
	return math.Exp(s / float64(len(fs)))
}

// Write renders the table in the paper's layout, optionally with the
// published numbers interleaved for comparison.
func (t *Table1) Write(w io.Writer, withPaper bool) {
	fmt.Fprintf(w, "%-14s", "Benchmark")
	for _, p := range t.Cores {
		fmt.Fprintf(w, "%8d", p)
	}
	fmt.Fprintf(w, "%8s\n", "Mean")
	for _, b := range t.Rows {
		fmt.Fprintf(w, "%-14s", b)
		for _, p := range t.Cores {
			fmt.Fprintf(w, "%8.2f", t.Cells[b][p].Factor())
		}
		fmt.Fprintf(w, "%8.2f\n", t.RowMean(b))
		if withPaper {
			if ref, ok := PaperTable1[b]; ok {
				fmt.Fprintf(w, "%-14s", "  (paper)")
				for i := range t.Cores {
					if i < len(ref) {
						fmt.Fprintf(w, "%8.2f", ref[i])
					}
				}
				fmt.Fprintf(w, "%8.2f\n", geomean(ref))
			}
		}
	}
	fmt.Fprintf(w, "%-14s", "Mean")
	for _, p := range t.Cores {
		fmt.Fprintf(w, "%8.2f", t.ColMean(p))
	}
	fmt.Fprintf(w, "%8.2f\n", t.OverallMean())
	if withPaper {
		fmt.Fprintf(w, "%-14s%8.2f%8.2f%8.2f%8.2f%8.2f%8.2f\n",
			"  (paper)", 0.99, 1.00, 1.12, 1.05, 0.97, 1.02)
	}
}
