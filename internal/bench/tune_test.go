package bench

import (
	"testing"

	"ompssgo/internal/core"
	"ompssgo/internal/obs"
	"ompssgo/internal/suite"
	"ompssgo/internal/tune"
	"ompssgo/machine"
	"ompssgo/ompss"
)

// BenchmarkSubmitDatumPtrTuned is BenchmarkSubmitDatumPtr with the feedback
// controller live (grain and rename-cap loops armed): the control plane
// hangs its measurement off the task-finish path and its setpoints off
// atomics, so an armed controller must cost the submit path nothing — the
// budget file holds both benchmarks to the same ceiling.
func BenchmarkSubmitDatumPtrTuned(b *testing.B) {
	benchSubmit(b, func(rt *ompss.Runtime) func(i int) ompss.Clause {
		ds := make([]*ompss.Datum, submitKeys)
		for i := range ds {
			ds[i] = rt.Register(new(int64))
		}
		return func(i int) ompss.Clause { return ds[i%submitKeys].AsInOut() }
	}, ompss.WithTuning(ompss.Tuning{Grain: ompss.Auto, RenameCap: ompss.Auto}))
}

// BenchmarkTuneRecord measures the controller's per-completion feed —
// aggregator update plus the inline control tick every TickEvery-th call —
// which must stay at 0 allocs/op after the label's first sighting, like
// the obs record path it mirrors.
func BenchmarkTuneRecord(b *testing.B) {
	tn := &core.Tunables{}
	ctl := tune.New(tune.Config{
		Workers: 2, Grain: true, Backoff: true, RenameCap: true,
		SchedStats: func() core.SchedStats { return core.SchedStats{} },
		GraphStats: func() core.GraphStats { return core.GraphStats{} },
	}, tn, obs.NewAggregator(0))
	ctl.TaskDone("bench", 1000, 4, false, false) // intern the label
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.TaskDone("bench", int64(1000+i%512), 4, i%7 == 0, i%13 == 0)
	}
}

// TestAutotuneAblation is the acceptance gate for the grain controller:
// on every loop-surfaced suite app, auto chunking must come within 30% of
// the best static chunk — natively (wall clock, best-of to damp host
// noise) and under the simulator (virtual-time makespans, deterministic).
func TestAutotuneAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-driven; skipped in -short")
	}
	const tol = 0.30

	t.Run("native", func(t *testing.T) {
		cells, err := RunAutotune([]int{2}, 5, suite.Small, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) < 3 {
			t.Fatalf("want >=3 apps in the ablation, got %d", len(cells))
		}
		for _, c := range cells {
			if c.Factor < 1-tol {
				t.Errorf("%s w=%d: auto %v is more than %.0f%% behind best static chunk %d (%v): factor %.2f",
					c.Bench, c.Workers, c.AutoNS, tol*100, c.BestStaticChunk, c.BestStaticNS, c.Factor)
			} else {
				t.Logf("%s w=%d: auto=%d static(best chunk=%d)=%d factor=%.2f",
					c.Bench, c.Workers, c.AutoNS, c.BestStaticChunk, c.BestStaticNS, c.Factor)
			}
		}
	})

	t.Run("sim", func(t *testing.T) {
		mc := machine.Config{Cores: 4, Sockets: 2}
		for _, name := range AutotuneBenches {
			ref, err := suite.New(name, suite.Small)
			if err != nil {
				t.Fatal(err)
			}
			li := ref.(suite.LoopInstance)
			want := ref.RunSeq()
			units := li.LoopUnits()

			makespan := func(chunk int, opts ...ompss.Option) int64 {
				var got uint64
				st, err := ompss.RunSim(mc, func(rt *ompss.Runtime) {
					got = li.RunOmpSsLoop(rt, chunk)
				}, opts...)
				if err != nil {
					t.Fatalf("%s chunk=%d: %v", name, chunk, err)
				}
				if got != want {
					t.Fatalf("%s chunk=%d: checksum %#x, sequential reference %#x", name, chunk, got, want)
				}
				return int64(st.Makespan)
			}

			var bestStatic int64
			bestChunk := 0
			for _, chunk := range staticChunkLadder(units, mc.Cores) {
				ns := makespan(chunk)
				if bestStatic == 0 || ns < bestStatic {
					bestStatic, bestChunk = ns, chunk
				}
			}
			// The controller needs measurements to leave its heuristic:
			// under the simulator one cold run is the whole story, so the
			// single-pass auto leg is judged against the same ±30% bar —
			// the heuristic seed must already be competitive.
			auto := makespan(ompss.Auto, ompss.WithTuning(ompss.Tuning{Grain: ompss.Auto}))
			factor := float64(bestStatic) / float64(auto)
			if factor < 1-tol {
				t.Errorf("%s (sim): auto makespan %d vs best static (chunk %d) %d: factor %.2f below %.2f",
					name, auto, bestChunk, bestStatic, factor, 1-tol)
			} else {
				t.Logf("%s (sim): auto=%d static(best chunk=%d)=%d factor=%.2f",
					name, auto, bestChunk, bestStatic, factor)
			}
		}
	})
}
