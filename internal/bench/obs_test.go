package bench

import (
	"fmt"
	"testing"

	"ompssgo/internal/obs"
	"ompssgo/ompss"
)

// Observability overhead microbenchmarks. Two contracts are enforced
// through testdata/alloc_budget.json:
//
//   - BenchmarkObsRecord: the raw record path is 0 allocs/op steady-state
//     (rings preallocated at Attach, events fixed-size, wraparound
//     included).
//   - BenchmarkSubmitDatumPtrObserved: attaching a recorder adds ZERO
//     allocations to the submit hot path — its ceiling equals
//     BenchmarkSubmitDatumPtr's.
//
// BenchmarkContendedThroughputTraced is the trace-on leg of the contended
// throughput probe: compare its tasks/s against BenchmarkContendedThroughput
// at the same worker count for the recorder-attached overhead
// (EXPERIMENTS.md records the ≤5% measurement at w=2).

// BenchmarkObsRecord measures one event emission into an attached
// recorder, ring wraparound included (capacity far below b.N).
func BenchmarkObsRecord(b *testing.B) {
	rec := obs.NewRecorder(obs.Capacity(1 << 12))
	var t int64
	rec.Attach(1, "bench", false, func() int64 { t++; return t })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Emit(0, obs.EvStart, uint64(i), 0)
	}
}

// BenchmarkSubmitDatumPtrObserved is BenchmarkSubmitDatumPtr with a
// recorder attached: the full submit-path event set (submit, edge, ready,
// start, end) rides along on every task.
func BenchmarkSubmitDatumPtrObserved(b *testing.B) {
	rec := obs.NewRecorder()
	rt := ompss.New(ompss.Workers(1), ompss.Observe(rec))
	defer rt.Shutdown()
	ds := make([]*ompss.Datum, submitKeys)
	for i := range ds {
		ds[i] = rt.Register(new(int64))
	}
	body := func(*ompss.TC) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Task(body, ds[i%submitKeys].AsInOut())
		if i%4096 == 4095 {
			rt.Taskwait()
		}
	}
	rt.Taskwait()
}

// BenchmarkContendedThroughputTraced is the recorder-attached leg of the
// contended-throughput probe (same shape as BenchmarkContendedThroughput;
// a fresh recorder per repetition, as a profiling run would attach one).
func BenchmarkContendedThroughputTraced(b *testing.B) {
	const (
		chains = 64
		tasks  = 20000
		spin   = 120
	)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var last ContentionResult
			for i := 0; i < b.N; i++ {
				rec := obs.NewRecorder()
				last = MeasureContention(w, chains, tasks, spin, ompss.Observe(rec))
				if last.Checksum != int64(last.Tasks) {
					b.Fatalf("lost updates: %d != %d", last.Checksum, last.Tasks)
				}
				tr := rec.Snapshot()
				if got := len(tr.Events) + int(tr.TotalDropped()); got < tasks {
					b.Fatalf("trace accounts for %d events, want >= %d tasks", got, tasks)
				}
			}
			b.ReportMetric(last.TasksPerSec(), "tasks/s")
		})
	}
}
