package bench

import (
	"fmt"
	"io"
	"time"

	"ompssgo/internal/suite"
	"ompssgo/ompss"
)

// The grain-ablation harness: for every loop-surfaced suite benchmark
// (suite.LoopInstance) it sweeps TaskLoop over a ladder of static chunk
// sizes, then runs the same loop with chunk == ompss.Auto under an armed
// grain controller (WithTuning(Tuning{Grain: Auto})), and reports the best
// static time against the auto time. Factor = best-static / auto, so 1.0
// means the controller matched the best hand-picked grain and the gate's
// acceptance bar (auto within 30% of best static) reads as Factor ≥ 0.70.
//
// Unlike the policy cells, each configuration here keeps ONE runtime alive
// across a warmup repetition plus all measured repetitions: the controller
// learns per-label iteration costs online, and tearing the runtime down
// per repetition would discard exactly the state being evaluated. The
// warmup repetition gives the controller its first measurements (and warms
// caches identically for the static legs), and best-of-iters filters host
// noise the same way the other native sections do.

// AutotuneBenches are the loop-surfaced benchmarks the ablation sweeps.
var AutotuneBenches = []string{"rotate", "c-ray", "md5"}

// AutotuneCell is one grain-ablation measurement: a benchmark × worker
// count, best static chunk vs the controller's auto chunking.
type AutotuneCell struct {
	Bench   string `json:"bench"`
	Workers int    `json:"workers"`
	Units   int    `json:"units"` // flat iteration-space size
	Runs    int    `json:"runs"`
	// BestStaticChunk is the fastest hand-picked chunk of the sweep;
	// BestStaticNS its best repetition; AutoNS the auto leg's best.
	BestStaticChunk int   `json:"best_static_chunk"`
	BestStaticNS    int64 `json:"best_static_ns"`
	AutoNS          int64 `json:"auto_ns"`
	// Factor is BestStaticNS/AutoNS: 1.0 = auto matched the best static
	// grain, above 1.0 = auto beat every static choice.
	Factor float64 `json:"factor"`
}

// staticChunkLadder is the swept grain axis: from fully fine (chunk 1,
// maximal scheduling freedom and maximal per-task overhead) through the
// balanced middle to fully coarse (one chunk per worker, no balancing
// slack), deduplicated and clamped to the space.
func staticChunkLadder(units, workers int) []int {
	if workers < 1 {
		workers = 1
	}
	cands := []int{1, units / (8 * workers), units / (4 * workers), units / (2 * workers), units / workers}
	var out []int
	seen := map[int]bool{}
	for _, c := range cands {
		if c < 1 {
			c = 1
		}
		if c > units {
			c = units
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// measureLoopConfig runs one (benchmark, workers, chunk-mode) configuration
// on a single persistent runtime: one unmeasured warmup repetition, then
// iters measured repetitions, returning the best time. Every repetition's
// checksum is verified against want.
func measureLoopConfig(in suite.LoopInstance, name string, workers, chunk, iters int, want uint64, opts ...ompss.Option) (int64, error) {
	rt := ompss.New(append([]ompss.Option{ompss.Workers(workers)}, opts...)...)
	defer rt.Shutdown()
	var best int64
	for it := 0; it <= iters; it++ {
		start := time.Now()
		got := in.RunOmpSsLoop(rt, chunk)
		elapsed := time.Since(start).Nanoseconds()
		if got != want {
			return 0, fmt.Errorf("%s/w%d/chunk%d: checksum %#x, sequential reference %#x",
				name, workers, chunk, got, want)
		}
		if it == 0 {
			continue // warmup: caches and (for the auto leg) the controller's EWMAs
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// RunAutotune measures the grain ablation for every AutotuneBenches entry
// at every worker count, repeating each configuration iters times
// (best-of). progress, if non-nil, receives one line per cell.
func RunAutotune(workers []int, iters int, scale suite.Scale, progress io.Writer) ([]AutotuneCell, error) {
	if len(workers) == 0 {
		workers = defaultNativeWorkers()
	}
	if iters < 1 {
		iters = 1
	}
	var out []AutotuneCell
	for _, name := range AutotuneBenches {
		ref, err := suite.New(name, scale)
		if err != nil {
			return nil, err
		}
		li, ok := ref.(suite.LoopInstance)
		if !ok {
			return nil, fmt.Errorf("autotune: %s has no loop surface", name)
		}
		want := ref.RunSeq()
		for _, w := range workers {
			cell := AutotuneCell{Bench: name, Workers: w, Units: li.LoopUnits(), Runs: iters}
			for _, chunk := range staticChunkLadder(cell.Units, w) {
				ns, err := measureLoopConfig(li, name, w, chunk, iters, want)
				if err != nil {
					return nil, err
				}
				if cell.BestStaticNS == 0 || ns < cell.BestStaticNS {
					cell.BestStaticNS = ns
					cell.BestStaticChunk = chunk
				}
			}
			auto, err := measureLoopConfig(li, name, w, ompss.Auto, iters, want,
				ompss.WithTuning(ompss.Tuning{Grain: ompss.Auto}))
			if err != nil {
				return nil, err
			}
			cell.AutoNS = auto
			if auto > 0 {
				cell.Factor = float64(cell.BestStaticNS) / float64(auto)
			}
			out = append(out, cell)
			if progress != nil {
				fmt.Fprintf(progress, "# autotune %-8s w=%-2d static(best chunk=%d)=%-12v auto=%-12v factor=%.2f\n",
					name, w, cell.BestStaticChunk, time.Duration(cell.BestStaticNS),
					time.Duration(cell.AutoNS), cell.Factor)
			}
		}
	}
	return out, nil
}
