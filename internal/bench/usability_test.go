package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestMeasureUsability(t *testing.T) {
	rows, err := MeasureUsability("../suite")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("benchmarks measured = %d, want 10", len(rows))
	}
	byName := map[string]UsabilityRow{}
	for _, r := range rows {
		byName[r.Bench] = r
		if r.Bench == "" {
			t.Fatal("missing benchmark name")
		}
		if r.Seq.Lines <= 0 || r.Pthreads.Lines <= 0 || r.OmpSs.Lines <= 0 {
			t.Fatalf("%s: empty variant metrics: %+v", r.Bench, r)
		}
		if r.OmpSs.Constructs == 0 {
			t.Fatalf("%s: OmpSs variant uses no clauses?", r.Bench)
		}
		if r.Pthreads.Constructs == 0 {
			t.Fatalf("%s: Pthreads variant uses no sync?", r.Bench)
		}
	}
	// Both parallel variants must exceed the sequential baseline — the
	// paper's point is about *which* parallel expression is cheaper.
	for name, r := range byName {
		if r.Pthreads.Lines < r.Seq.Lines {
			t.Errorf("%s: pthreads smaller than sequential?", name)
		}
	}
	// The qualitative claim of §3: the dataflow expression of the complex
	// pipelined/irregular benchmarks is substantially leaner than the
	// manual one.
	if sc := byName["streamcluster"]; sc.OmpSs.Lines >= sc.Pthreads.Lines {
		t.Errorf("streamcluster: OmpSs (%d lines) should be leaner than Pthreads (%d)",
			sc.OmpSs.Lines, sc.Pthreads.Lines)
	}
	var buf bytes.Buffer
	WriteUsability(rows, &buf)
	if !strings.Contains(buf.String(), "total") {
		t.Fatal("rendered table missing total row")
	}
}
