package bench

import (
	"strings"
	"testing"
)

func trendReport(policyOn, policyOff, renameOn, renameOff int64) *NativeReport {
	return &NativeReport{
		Schema: "ompssgo/bench-native/v2",
		Scale:  "small",
		Cells: []NativeCell{
			{Bench: "ray-rot", Workers: 2, Policy: "sched-on", BestNS: policyOn},
			{Bench: "ray-rot", Workers: 2, Policy: "sched-off", BestNS: policyOff},
		},
		Rename: []NativeRenameCell{
			{Workers: 2, OnNS: renameOn, OffNS: renameOff},
		},
	}
}

func TestCompareTrendHolds(t *testing.T) {
	base := trendReport(100, 120, 100, 180)
	// Same factors, different absolute times (a faster host): must pass.
	cand := trendReport(50, 60, 50, 90)
	res := CompareTrend(base, cand, 0.30)
	if !res.OK() {
		t.Fatalf("unexpected regressions: %v", res.Regressions)
	}
	if res.Compared != 2 {
		t.Fatalf("compared = %d, want 2", res.Compared)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", res.Warnings)
	}
}

func TestCompareTrendCatchesRegression(t *testing.T) {
	base := trendReport(100, 120, 100, 180) // rename factor 1.8
	cand := trendReport(100, 120, 100, 110) // rename factor 1.1 < 1.8*0.7
	res := CompareTrend(base, cand, 0.30)
	if res.OK() {
		t.Fatal("rename-factor collapse not flagged")
	}
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "rename section") {
		t.Fatalf("want one rename-section regression, got %v", res.Regressions)
	}
}

func TestCompareTrendSingleCellIsWarningWhenMeanHolds(t *testing.T) {
	base := trendReport(100, 120, 100, 180)
	cand := trendReport(100, 120, 100, 180)
	// One extra policy cell collapses; the section mean (over two cells)
	// stays within tolerance — warn, don't fail.
	base.Cells = append(base.Cells,
		NativeCell{Bench: "md5", Workers: 2, Policy: "sched-on", BestNS: 100},
		NativeCell{Bench: "md5", Workers: 2, Policy: "sched-off", BestNS: 110})
	cand.Cells = append(cand.Cells,
		NativeCell{Bench: "md5", Workers: 2, Policy: "sched-on", BestNS: 100},
		NativeCell{Bench: "md5", Workers: 2, Policy: "sched-off", BestNS: 70})
	res := CompareTrend(base, cand, 0.30)
	if !res.OK() {
		t.Fatalf("mean holds but gate failed: %v", res.Regressions)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "policy md5 w=2") {
		t.Fatalf("want one per-cell warning, got %v", res.Warnings)
	}
}

func TestCompareTrendImprovementPasses(t *testing.T) {
	base := trendReport(100, 110, 100, 140)
	cand := trendReport(100, 150, 100, 300) // better factors everywhere
	if res := CompareTrend(base, cand, 0.30); !res.OK() {
		t.Fatalf("improvements flagged as regressions: %v", res.Regressions)
	}
}

func TestCompareTrendMissingSection(t *testing.T) {
	base := trendReport(100, 120, 100, 180)
	cand := trendReport(100, 120, 100, 180)
	cand.Rename = nil // the measurement pipeline rotted
	res := CompareTrend(base, cand, 0.30)
	if res.OK() || !strings.Contains(res.Regressions[0], "no rename factors") {
		t.Fatalf("want a missing-section regression, got %v", res.Regressions)
	}
}

func TestCompareTrendScaleMismatchRefused(t *testing.T) {
	base := trendReport(100, 120, 100, 180)
	cand := trendReport(100, 120, 100, 180)
	cand.Scale = "default"
	res := CompareTrend(base, cand, 0.30)
	if res.OK() || !strings.Contains(res.Regressions[0], "scale mismatch") {
		t.Fatalf("cross-scale comparison must be refused, got %v", res.Regressions)
	}
}

func TestCompareTrendDisjointCells(t *testing.T) {
	base := trendReport(100, 120, 100, 180)
	cand := trendReport(100, 120, 100, 180)
	for i := range cand.Cells {
		cand.Cells[i].Workers = 16 // a host the baseline never measured
	}
	cand.Rename[0].Workers = 16
	res := CompareTrend(base, cand, 0.30)
	if res.Compared != 0 || res.OK() {
		t.Fatalf("fully disjoint reports must flag no-comparable-cells, got compared=%d regs=%v",
			res.Compared, res.Regressions)
	}
}
