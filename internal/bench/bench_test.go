package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ompssgo/internal/suite"
)

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if g := geomean([]float64{1, 1, 1}); g != 1 {
		t.Fatalf("geomean(ones) = %f", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %f", g)
	}
	if g := geomean([]float64{1, 0}); g != 0 {
		t.Fatalf("geomean with zero = %f", g)
	}
}

func TestCellFactor(t *testing.T) {
	c := Cell{Pthreads: 200, OmpSs: 100}
	if c.Factor() != 2 {
		t.Fatalf("factor = %f", c.Factor())
	}
	if (Cell{}).Factor() != 0 {
		t.Fatal("zero cell should not divide by zero")
	}
}

func TestMeasureCellSmall(t *testing.T) {
	in, err := suite.New("c-ray", suite.Small)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := MeasureCell(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Pthreads <= 0 || cell.OmpSs <= 0 {
		t.Fatalf("non-positive makespans: %+v", cell)
	}
	if f := cell.Factor(); f < 0.2 || f > 5 {
		t.Fatalf("implausible factor %f", f)
	}
}

func TestTable1SmallTwoBenchmarks(t *testing.T) {
	// A reduced Table 1 (2 benchmarks × 2 core counts) exercises the whole
	// pipeline: measurement, means, rendering.
	tb := &Table1{Cores: []int{1, 4}, Rows: []string{"c-ray", "md5"}, Cells: map[string]map[int]Cell{}}
	for _, name := range tb.Rows {
		in, err := suite.New(name, suite.Small)
		if err != nil {
			t.Fatal(err)
		}
		tb.Cells[name] = map[int]Cell{}
		for _, p := range tb.Cores {
			cell, err := MeasureCell(in, p)
			if err != nil {
				t.Fatal(err)
			}
			tb.Cells[name][p] = cell
		}
	}
	if m := tb.RowMean("c-ray"); m <= 0 {
		t.Fatalf("row mean %f", m)
	}
	if m := tb.ColMean(4); m <= 0 {
		t.Fatalf("col mean %f", m)
	}
	if m := tb.OverallMean(); m <= 0 {
		t.Fatalf("overall mean %f", m)
	}
	var buf bytes.Buffer
	tb.Write(&buf, true)
	out := buf.String()
	for _, want := range []string{"Benchmark", "c-ray", "md5", "Mean", "(paper)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestPaperTable1Reference(t *testing.T) {
	// Pin the transcription of the paper's numbers.
	if len(PaperTable1) != 10 {
		t.Fatalf("paper table rows = %d", len(PaperTable1))
	}
	for name, row := range PaperTable1 {
		if len(row) != 5 {
			t.Fatalf("%s: %d columns", name, len(row))
		}
	}
	if PaperTable1["h264dec"][4] != 0.42 || PaperTable1["rgbcmy"][4] != 1.53 {
		t.Fatal("headline cells mistranscribed")
	}
}

func TestAblationsSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := BarrierAblation(suite.Small, []int{4}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := LocalityAblation(suite.Small, []int{4}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := GranularityAblation(suite.Small, []int{4}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := OccupancyAblation(suite.Small, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"barrier ablation", "locality ablation", "granularity ablation", "occupancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}
