package bench

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The paper's §2 argues a programming model must be judged on usability as
// well as performance, and §3 studies expressiveness qualitatively. This
// file adds the quantitative side the paper alludes to: per benchmark, the
// size of each variant's parallel code and the number of model-specific
// constructs it needs (dependence clauses for OmpSs; explicit
// synchronization calls for Pthreads).

// VariantMetrics quantifies one benchmark variant's implementation.
type VariantMetrics struct {
	Lines      int // source lines of the variant's functions
	Constructs int // model-specific constructs (clauses / sync calls)
}

// UsabilityRow is one benchmark's comparison.
type UsabilityRow struct {
	Bench    string
	Seq      VariantMetrics
	Pthreads VariantMetrics
	OmpSs    VariantMetrics
}

// ompssConstructs are the OmpSs-model annotations counted for RunOmpSs.
var ompssConstructs = map[string]bool{
	"In": true, "Out": true, "InOut": true, "Concurrent": true, "Commutative": true,
	"InSized": true, "OutSized": true, "InOutSized": true,
	"InRegion": true, "OutRegion": true, "InOutRegion": true,
	"Taskwait": true, "TaskwaitOn": true, "TaskwaitCtx": true,
	"Critical": true, "CriticalCost": true,
	"Task": true, "TaskLoop": true, "Go": true,
	"Register": true, "RegisterRegion": true,
}

// pthreadConstructs are the manual-threading constructs counted for
// RunPthreads.
var pthreadConstructs = map[string]bool{
	"Lock": true, "Unlock": true, "Wait": true, "Signal": true, "Broadcast": true,
	"Barrier": true, "SpinBarrier": true, "Store": true, "Add": true, "Load": true,
	"WaitGE": true, "Parallel": true, "Spawn": true, "Join": true,
}

// MeasureUsability parses the suite sources under dir (the repository's
// internal/suite) and extracts per-variant metrics.
func MeasureUsability(dir string) ([]UsabilityRow, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("usability: %w", err)
	}
	var rows []UsabilityRow
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		row, err := measurePackage(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if row != nil {
			rows = append(rows, *row)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Bench < rows[j].Bench })
	return rows, nil
}

func measurePackage(dir string) (*UsabilityRow, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("usability: parse %s: %w", dir, err)
	}
	row := &UsabilityRow{}
	found := false
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				switch fn.Name.Name {
				case "Name":
					if lit := returnString(fn); lit != "" {
						row.Bench = lit
					}
				case "RunSeq":
					row.Seq = merge(row.Seq, measureFunc(fset, fn, nil))
					found = true
				case "RunPthreads":
					row.Pthreads = merge(row.Pthreads, measureFunc(fset, fn, pthreadConstructs))
					found = true
				case "RunOmpSs":
					row.OmpSs = merge(row.OmpSs, measureFunc(fset, fn, ompssConstructs))
					found = true
				}
			}
		}
	}
	if !found {
		return nil, nil
	}
	return row, nil
}

func merge(a, b VariantMetrics) VariantMetrics {
	return VariantMetrics{Lines: a.Lines + b.Lines, Constructs: a.Constructs + b.Constructs}
}

func measureFunc(fset *token.FileSet, fn *ast.FuncDecl, constructs map[string]bool) VariantMetrics {
	start := fset.Position(fn.Body.Lbrace).Line
	end := fset.Position(fn.Body.Rbrace).Line
	m := VariantMetrics{Lines: end - start - 1}
	if m.Lines < 0 {
		m.Lines = 0
	}
	if constructs == nil {
		return m
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && constructs[sel.Sel.Name] {
			m.Constructs++
		}
		return true
	})
	return m
}

func returnString(fn *ast.FuncDecl) string {
	for _, stmt := range fn.Body.List {
		if ret, ok := stmt.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if lit, ok := ret.Results[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				return strings.Trim(lit.Value, `"`)
			}
		}
	}
	return ""
}

// WriteUsability renders the comparison table.
func WriteUsability(rows []UsabilityRow, w io.Writer) {
	fmt.Fprintf(w, "Parallel-variant implementation effort (suite sources, go/parser)\n")
	fmt.Fprintf(w, "%-14s %10s | %10s %10s | %10s %10s\n",
		"benchmark", "seq-lines", "pth-lines", "pth-sync", "omp-lines", "omp-clauses")
	totS, totPL, totPC, totOL, totOC := 0, 0, 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10d | %10d %10d | %10d %10d\n",
			r.Bench, r.Seq.Lines, r.Pthreads.Lines, r.Pthreads.Constructs,
			r.OmpSs.Lines, r.OmpSs.Constructs)
		totS += r.Seq.Lines
		totPL += r.Pthreads.Lines
		totPC += r.Pthreads.Constructs
		totOL += r.OmpSs.Lines
		totOC += r.OmpSs.Constructs
	}
	fmt.Fprintf(w, "%-14s %10d | %10d %10d | %10d %10d\n",
		"total", totS, totPL, totPC, totOL, totOC)
}
