package ompss

import "ompssgo/internal/core"

// Batch accumulates task spawns and submits them in one atomic bulk
// operation: the dependence shards of every batched task are locked once
// for the whole group and ready tasks join the scheduler as one chain,
// amortizing the per-submit locking that dominates fine-grained spawn loops
// (see Graph.SubmitBatch). Obtain one with Runtime.Batch or TC.Batch, add
// tasks with Task/Go, and flush with Submit:
//
//	b := rt.Batch()
//	for i := range blocks {
//		b.Task(work(i), ompss.InOut(blocks[i]))
//	}
//	b.Submit()
//	rt.Taskwait()
//
// Dependences — including dependences between tasks of the same batch —
// resolve exactly as if the tasks had been spawned one by one in Task/Go
// call order; only the locking is amortized. A Batch is not safe for
// concurrent use; distinct goroutines should use distinct batches.
type Batch struct {
	tc      *TC
	tasks   []*core.Task
	handles []*Handle
}

// Batch starts an empty submission batch owned by the master thread.
func (rt *Runtime) Batch() *Batch { return rt.main.Batch() }

// Batch starts an empty submission batch owned by this task context.
func (tc *TC) Batch() *Batch { return &Batch{tc: tc} }

// SubmitBatch is the one-shot convenience form: it opens a batch, lets fill
// populate it, and flushes, returning the batched tasks' handles in spawn
// order.
func (rt *Runtime) SubmitBatch(fill func(b *Batch)) []*Handle {
	b := rt.Batch()
	fill(b)
	return b.Submit()
}

// Task adds a task to the batch (see TC.Task) and returns its Handle. The
// task does not run — and its dependences are not registered — until
// Submit flushes the batch; until then the handle reports the task as
// unfinished. If(false) and final-context tasks execute inline immediately,
// exactly as they would outside a batch.
func (b *Batch) Task(body func(*TC), clauses ...Clause) *Handle {
	return b.Go(func(c *TC) error { body(c); return nil }, clauses...)
}

// Go adds an error-returning task to the batch (see TC.Go) and returns its
// Handle. The task is submitted when Submit flushes the batch.
func (b *Batch) Go(body func(*TC) error, clauses ...Clause) *Handle {
	spec := buildSpec(clauses)
	if !spec.enabled || b.tc.final {
		return b.tc.spawnInline(&spec, body)
	}
	ct := b.tc.buildDeferred(&spec, body)
	// Pre-create the completion channel: the caller holds the future before
	// Graph.Submit (which otherwise creates it) has run.
	ct.EnsureDone()
	b.tasks = append(b.tasks, ct)
	b.handles = append(b.handles, &Handle{rt: b.tc.rt, t: ct})
	return b.handles[len(b.handles)-1]
}

// Len returns the number of tasks accumulated and not yet flushed.
func (b *Batch) Len() int { return len(b.tasks) }

// Submit flushes the batch: every accumulated task is registered in one
// atomic bulk submission and becomes eligible to run. It returns the
// flushed tasks' handles in spawn order. The batch is empty afterwards and
// may be reused.
//
// On a managed session (a request session, or any session under a global
// MaxInFlight) the whole batch passes admission at the flush: with
// BlockOnFull the flush waits for budget headroom (the batch is then
// admitted whole — budgets are soft by up to Len()−1); with RejectOnFull a
// full budget pre-fails every handle with ErrAdmission, and a flush after
// the session closed pre-fails them with ErrSessionClosed.
func (b *Batch) Submit() []*Handle {
	if len(b.tasks) == 0 {
		return nil
	}
	ts, hs := b.tasks, b.handles
	b.tasks, b.handles = nil, nil
	if s := b.tc.sess; s != nil {
		if s.managed() {
			return s.submitBatchManaged(b.tc, ts, hs)
		}
		s.dom.ChargeN(int64(len(ts)))
	}
	b.tc.rt.be.submitBatch(b.tc, ts)
	return hs
}
