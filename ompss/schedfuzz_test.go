package ompss_test

// Schedule fuzzing: seeded random task DAGs run under both backends across
// many schedules (worker counts, wait modes, policy knobs, RNG seeds),
// asserting — inside the task bodies — that the runtime established
// happens-before for every In/Out and commutative pair, and — after the
// drain — that the final state is identical across every schedule and equal
// to the sequential model.
//
// The happens-before checks are deliberately made of PLAIN (non-atomic)
// loads and stores: under `go test -race` (CI's race job runs this package)
// any dependence edge the scheduler fails to enforce surfaces as a data
// race on the value cells, in addition to the value assertions failing.
// Failures shrink: the harness re-generates the same seeded program at
// shrinking prefix lengths and reports the smallest still-failing prefix.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ompssgo/machine"
	"ompssgo/ompss"
)

// fuzz access modes.
const (
	fzIn = iota
	fzOut
	fzInOut
	fzCommutative
)

type fuzzAccess struct {
	key  int
	mode int
	// expectVal is the value the task must observe in vals[key]: the write
	// index of its program-order last writer (checked for every mode — all
	// four are ordered after the last writer).
	expectVal int64
	// expectComm is the commutative-increment count the task must observe
	// in comms[key]; -1 for commutative accesses (unordered among
	// themselves, so the intermediate count is schedule-dependent).
	expectComm int64
	// writeVal is the value a writer stores into vals[key]; 0 for readers.
	writeVal int64
}

type fuzzTask struct {
	accesses []fuzzAccess
	priority int
	affinity int // key index to pin near, or -1
}

// fuzzProg is one generated program: groups are submitted in order, each
// group either a single Task call or one batch flushed immediately, so
// program order equals generation order.
type fuzzProg struct {
	seed      int64
	nKeys     int
	groups    [][]fuzzTask
	finalVal  []int64 // model: last write index per key
	finalComm []int64 // model: commutative task count per key
	nTasks    int
}

// genProg deterministically generates the program for a seed, truncated to
// at most maxGroups groups (the shrink lever).
func genProg(seed int64, maxGroups int) *fuzzProg {
	rng := rand.New(rand.NewSource(seed))
	p := &fuzzProg{
		seed:  seed,
		nKeys: 3 + rng.Intn(5),
	}
	lastVal := make([]int64, p.nKeys)
	commCnt := make([]int64, p.nKeys)
	widx := make([]int64, p.nKeys)
	nGroups := 12 + rng.Intn(14)
	if nGroups > maxGroups {
		nGroups = maxGroups
	}
	for g := 0; g < nGroups; g++ {
		size := 1
		if rng.Intn(3) == 0 { // every third group is a batch
			size = 2 + rng.Intn(3)
		}
		var group []fuzzTask
		for i := 0; i < size; i++ {
			t := fuzzTask{affinity: -1}
			if rng.Intn(4) == 0 {
				t.priority = 1 + rng.Intn(3)
			}
			if rng.Intn(3) == 0 {
				t.affinity = rng.Intn(p.nKeys)
			}
			nAcc := 1 + rng.Intn(3)
			used := map[int]bool{}
			for a := 0; a < nAcc; a++ {
				k := rng.Intn(p.nKeys)
				if used[k] {
					continue
				}
				used[k] = true
				acc := fuzzAccess{key: k, mode: rng.Intn(4), expectVal: lastVal[k]}
				switch acc.mode {
				case fzIn:
					acc.expectComm = commCnt[k]
				case fzOut, fzInOut:
					acc.expectComm = commCnt[k]
					widx[k]++
					acc.writeVal = widx[k]
					lastVal[k] = widx[k]
				case fzCommutative:
					acc.expectComm = -1
					commCnt[k]++
				}
				t.accesses = append(t.accesses, acc)
			}
			group = append(group, t)
			p.nTasks++
		}
		p.groups = append(p.groups, group)
	}
	p.finalVal = lastVal
	p.finalComm = commCnt
	return p
}

// fuzzCells is the shared state one schedule runs against. Padding keeps
// each cell on its own cache line so the only cross-task interactions are
// the intended ones.
type fuzzCells struct {
	vals  []paddedCell
	comms []paddedCell

	mu         sync.Mutex
	violations []string
}

type paddedCell struct {
	v int64
	_ [56]byte
}

func newFuzzCells(nKeys int) *fuzzCells {
	return &fuzzCells{vals: make([]paddedCell, nKeys), comms: make([]paddedCell, nKeys)}
}

func (c *fuzzCells) violate(format string, args ...any) {
	c.mu.Lock()
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

// body builds the task body for one fuzz task: every access checks the
// happens-before expectations with plain loads, then applies its plain
// writes. taskIdx only labels violations.
func (c *fuzzCells) body(t fuzzTask, taskIdx int) func(*ompss.TC) {
	return func(*ompss.TC) {
		for _, a := range t.accesses {
			if got := c.vals[a.key].v; got != a.expectVal {
				c.violate("task %d key %d (%d): saw write %d, program order requires %d",
					taskIdx, a.key, a.mode, got, a.expectVal)
			}
			if a.expectComm >= 0 {
				if got := c.comms[a.key].v; got != a.expectComm {
					c.violate("task %d key %d (%d): saw %d commutative updates, program order requires %d",
						taskIdx, a.key, a.mode, got, a.expectComm)
				}
			}
			switch a.mode {
			case fzOut, fzInOut:
				c.vals[a.key].v = a.writeVal
			case fzCommutative:
				c.comms[a.key].v++ // mutual exclusion is the runtime's job
			}
		}
	}
}

// fuzzClauses translates one fuzz task's access list into clause form
// against a registered key set.
func fuzzClauses(t fuzzTask, keys []*ompss.Datum) []ompss.Clause {
	var cl []ompss.Clause
	for _, a := range t.accesses {
		switch a.mode {
		case fzIn:
			cl = append(cl, ompss.In(keys[a.key]))
		case fzOut:
			cl = append(cl, ompss.Out(keys[a.key]))
		case fzInOut:
			cl = append(cl, ompss.InOut(keys[a.key]))
		case fzCommutative:
			cl = append(cl, ompss.Commutative(keys[a.key]))
		}
	}
	if t.priority > 0 {
		cl = append(cl, ompss.Priority(t.priority))
	}
	if t.affinity >= 0 {
		cl = append(cl, ompss.Affinity(keys[t.affinity]))
	}
	return cl
}

// submitGroup submits one program group — a lone Task call or a batch —
// and returns the task index after the group. Factored out of run so the
// concurrent-session fuzz can interleave groups from many programs.
func (c *fuzzCells) submitGroup(group []fuzzTask, idx int, rt ompss.API, keys []*ompss.Datum) int {
	if len(group) == 1 {
		rt.Task(c.body(group[0], idx), fuzzClauses(group[0], keys)...)
		return idx + 1
	}
	b := rt.Batch()
	for _, t := range group {
		b.Task(c.body(t, idx), fuzzClauses(t, keys)...)
		idx++
	}
	b.Submit()
	return idx
}

// registerKeys registers the program's cells on the given surface.
func (c *fuzzCells) registerKeys(p *fuzzProg, rt ompss.API) []*ompss.Datum {
	keys := make([]*ompss.Datum, p.nKeys)
	for k := range keys {
		keys[k] = rt.Register(&c.vals[k])
	}
	return keys
}

// run executes the program once against an already-running spawning surface
// — the whole runtime or one session (the concurrent-session isolation fuzz
// runs one program per session) — and returns the observed violations plus
// the final cell state.
func (c *fuzzCells) run(p *fuzzProg, rt ompss.API) {
	keys := c.registerKeys(p, rt)
	idx := 0
	for _, group := range p.groups {
		idx = c.submitGroup(group, idx, rt, keys)
	}
	rt.Taskwait()
}

// checkFinal appends violations if the drained state differs from the model.
func (c *fuzzCells) checkFinal(p *fuzzProg) {
	for k := 0; k < p.nKeys; k++ {
		if c.vals[k].v != p.finalVal[k] {
			c.violate("final vals[%d] = %d, model %d", k, c.vals[k].v, p.finalVal[k])
		}
		if c.comms[k].v != p.finalComm[k] {
			c.violate("final comms[%d] = %d, model %d", k, c.comms[k].v, p.finalComm[k])
		}
	}
}

// fuzzSchedule is one schedule configuration.
type fuzzSchedule struct {
	name   string
	native bool
	cores  int // sim cores
	opts   []ompss.Option
}

// fuzzSchedules enumerates the 50-schedule battery: 40 native configurations
// sweeping workers × wait mode × locality × affinity × domains × RNG seed,
// plus 10 deterministic simulator schedules.
func fuzzSchedules() []fuzzSchedule {
	var out []fuzzSchedule
	for i := 0; i < 40; i++ {
		workers := 1 + i%4
		wait := ompss.Polling
		if i%2 == 1 {
			wait = ompss.Blocking
		}
		opts := []ompss.Option{
			ompss.Workers(workers),
			ompss.Wait(wait),
			ompss.Locality(i/2%2 == 0),
			ompss.AffinitySched(i/4%2 == 0),
			ompss.Domains(1 + i%3),
			ompss.Seed(int64(1000 + i)),
		}
		out = append(out, fuzzSchedule{
			name:   fmt.Sprintf("native/w%d-%s-loc%v-aff%v-d%d", workers, wait, i/2%2 == 0, i/4%2 == 0, 1+i%3),
			native: true,
			opts:   opts,
		})
	}
	for i := 0; i < 10; i++ {
		cores := []int{1, 2, 4, 8}[i%4]
		out = append(out, fuzzSchedule{
			name:  fmt.Sprintf("sim/c%d-seed%d", cores, i),
			cores: cores,
			opts: []ompss.Option{
				ompss.Locality(i%2 == 0),
				ompss.AffinitySched(i%3 != 0),
				ompss.Domains(1 + i%2),
				ompss.Seed(int64(77 + i)),
			},
		})
	}
	return out
}

// runSchedule executes the program under one schedule and returns any
// violations (happens-before or final-state).
func runSchedule(p *fuzzProg, sc fuzzSchedule) []string {
	cells := newFuzzCells(p.nKeys)
	if sc.native {
		rt := ompss.New(sc.opts...)
		cells.run(p, rt)
		rt.Shutdown()
	} else {
		if _, err := ompss.RunSim(machine.Paper(sc.cores), func(rt *ompss.Runtime) {
			cells.run(p, rt)
		}, sc.opts...); err != nil {
			cells.violate("sim error: %v", err)
		}
	}
	cells.checkFinal(p)
	cells.mu.Lock()
	defer cells.mu.Unlock()
	return cells.violations
}

// shrink searches for the smallest group-prefix of seed's program that still
// fails under sc, rerunning each candidate a few times to ride out
// schedule-dependent failures. Returns the prefix length and a sample
// violation.
func shrink(seed int64, sc fuzzSchedule, fullGroups int) (int, string) {
	fails := func(m int) (bool, string) {
		p := genProg(seed, m)
		for try := 0; try < 5; try++ {
			if v := runSchedule(p, sc); len(v) > 0 {
				return true, v[0]
			}
		}
		return false, ""
	}
	best, sample := fullGroups, ""
	for m := 1; m <= fullGroups; m++ {
		if bad, v := fails(m); bad {
			best, sample = m, v
			break
		}
	}
	return best, sample
}

// TestScheduleFuzz is the schedule-fuzz battery (see the file comment).
func TestScheduleFuzz(t *testing.T) {
	seeds := []int64{1, 20260726, 0x5eed}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := genProg(seed, 1<<30)
			if p.nTasks == 0 {
				t.Fatal("degenerate program")
			}
			for _, sc := range fuzzSchedules() {
				violations := runSchedule(p, sc)
				if len(violations) == 0 {
					continue
				}
				m, sample := shrink(seed, sc, len(p.groups))
				if sample == "" {
					sample = violations[0]
				}
				t.Fatalf("schedule %s: %d violations; first: %s\n"+
					"shrunk reproducer: genProg(%d, %d) under the same schedule (%s)",
					sc.name, len(violations), violations[0], seed, m, sample)
			}
		})
	}
}

// bodyVersioned is the rename-aware task body: accesses resolve their
// bound instance through tc.Data, so the same program is value-correct
// whether or not the runtime renames. Two checks are dropped relative to
// body, because renaming legitimately invalidates them: an Out writer
// starts on a fresh private instance (there is no prior value for it to
// observe), and commutative-counter expectations order across instances
// (readers of an old instance are deliberately unordered against updaters
// of a newer one). The final-state check in checkFinal — canonical values
// after writeback against the sequential model — covers both modes.
func (c *fuzzCells) bodyVersioned(t fuzzTask, taskIdx int, keys []*ompss.Datum) func(*ompss.TC) {
	return func(tc *ompss.TC) {
		for _, a := range t.accesses {
			cell := tc.Data(keys[a.key]).(*paddedCell)
			switch a.mode {
			case fzIn, fzInOut, fzCommutative:
				if got := cell.v; got != a.expectVal {
					c.violate("task %d key %d (%d): saw write %d, program order requires %d",
						taskIdx, a.key, a.mode, got, a.expectVal)
				}
			}
			switch a.mode {
			case fzOut, fzInOut:
				cell.v = a.writeVal
			case fzCommutative:
				c.comms[a.key].v++ // mutual exclusion is the runtime's job
			}
		}
	}
}

// runVersioned is run with every key registered as a renameable datum and
// the rename-aware bodies; identical programs run under WithRenaming on
// and off through this path and must drain to identical final state.
func (c *fuzzCells) runVersioned(p *fuzzProg, rt *ompss.Runtime) {
	keys := make([]*ompss.Datum, p.nKeys)
	for k := range keys {
		keys[k] = rt.Register(&c.vals[k]).EnableRenaming(nil,
			func() any { return new(paddedCell) },
			func(dst, src any) { dst.(*paddedCell).v = src.(*paddedCell).v })
	}
	idx := 0
	for _, group := range p.groups {
		if len(group) == 1 {
			rt.Task(c.bodyVersioned(group[0], idx, keys), fuzzClauses(group[0], keys)...)
			idx++
			continue
		}
		b := rt.Batch()
		for _, t := range group {
			b.Task(c.bodyVersioned(t, idx, keys), fuzzClauses(t, keys)...)
			idx++
		}
		b.Submit()
	}
	rt.Taskwait()
}

// runRenameSchedule executes the versioned program under one schedule with
// the renaming knob set, returning violations plus the drained state and
// rename activity.
func runRenameSchedule(p *fuzzProg, sc fuzzSchedule, renaming bool) (violations []string, finals []int64, renamed uint64) {
	cells := newFuzzCells(p.nKeys)
	opts := append(append([]ompss.Option{}, sc.opts...), ompss.WithRenaming(renaming))
	if sc.native {
		rt := ompss.New(opts...)
		cells.runVersioned(p, rt)
		renamed = rt.Stats().Graph.Renamed
		rt.Shutdown()
	} else {
		if _, err := ompss.RunSim(machine.Paper(sc.cores), func(rt *ompss.Runtime) {
			cells.runVersioned(p, rt)
			renamed = rt.Stats().Graph.Renamed
		}, opts...); err != nil {
			cells.violate("sim error: %v", err)
		}
	}
	cells.checkFinal(p)
	for k := 0; k < p.nKeys; k++ {
		finals = append(finals, cells.vals[k].v, cells.comms[k].v)
	}
	cells.mu.Lock()
	defer cells.mu.Unlock()
	return cells.violations, finals, renamed
}

// TestScheduleFuzzRenaming runs the fuzz DAGs through the versioned bodies
// with dependence renaming on and off and requires both to drain to the
// model's final state (hence to identical state): renaming may only break
// anti-dependences, never values. The renamed counter is checked non-zero
// across the battery so the axis cannot silently degrade to a no-op.
func TestScheduleFuzzRenaming(t *testing.T) {
	seeds := []int64{1, 0x5eed}
	if testing.Short() {
		seeds = seeds[:1]
	}
	// A subset of the battery: renaming decisions live in the shared
	// dependence tracker, so sweeping every scheduler knob again buys
	// nothing — worker counts, wait modes, and both backends do.
	var schedules []fuzzSchedule
	for _, sc := range fuzzSchedules() {
		if sc.native && sc.name[len(sc.name)-2:] == "d1" {
			schedules = append(schedules, sc)
		}
	}
	schedules = append(schedules, fuzzSchedule{name: "sim/c4", cores: 4},
		fuzzSchedule{name: "sim/c8-loc", cores: 8, opts: []ompss.Option{ompss.Locality(false)}})
	var totalRenamed uint64
	for _, seed := range seeds {
		p := genProg(seed, 1<<30)
		for _, sc := range schedules {
			vOn, fOn, renamed := runRenameSchedule(p, sc, true)
			if len(vOn) > 0 {
				t.Fatalf("seed %d schedule %s renaming=on: %d violations; first: %s",
					seed, sc.name, len(vOn), vOn[0])
			}
			vOff, fOff, _ := runRenameSchedule(p, sc, false)
			if len(vOff) > 0 {
				t.Fatalf("seed %d schedule %s renaming=off: %d violations; first: %s",
					seed, sc.name, len(vOff), vOff[0])
			}
			if fmt.Sprint(fOn) != fmt.Sprint(fOff) {
				t.Fatalf("seed %d schedule %s: final state diverges on/off: %v vs %v",
					seed, sc.name, fOn, fOff)
			}
			totalRenamed += renamed
		}
	}
	if totalRenamed == 0 {
		t.Fatal("no rename fired across the whole battery — the axis is dead")
	}
}

// runTunedSchedule executes the program under one schedule with every
// feedback loop armed, returning violations plus the number of task
// completions the controller's aggregator consumed (a liveness probe: a
// battery where the controller never sees a task proves nothing).
func runTunedSchedule(p *fuzzProg, sc fuzzSchedule) (violations []string, fed uint64) {
	cells := newFuzzCells(p.nKeys)
	opts := append(append([]ompss.Option{}, sc.opts...),
		ompss.WithTuning(ompss.Tuning{Grain: ompss.Auto, StealBackoff: ompss.Auto, RenameCap: ompss.Auto}))
	count := func(st ompss.RunStats) {
		for _, l := range st.Labels {
			fed += l.Count
		}
	}
	if sc.native {
		rt := ompss.New(opts...)
		cells.run(p, rt)
		count(rt.Stats())
		rt.Shutdown()
	} else {
		if _, err := ompss.RunSim(machine.Paper(sc.cores), func(rt *ompss.Runtime) {
			cells.run(p, rt)
			count(rt.Stats())
		}, opts...); err != nil {
			cells.violate("sim error: %v", err)
		}
	}
	cells.checkFinal(p)
	cells.mu.Lock()
	defer cells.mu.Unlock()
	return cells.violations, fed
}

// TestScheduleFuzzTuning runs the fuzz DAGs with the feedback controller
// live — grain, backoff, and rename-cap loops all armed — and requires a
// clean drain with the model's final state, identical to the
// controller-off run of the same schedule: the controller moves setpoints,
// never semantics. The battery spans both backends, every worker count,
// and both wait modes (a subset of the main battery's policy sweep — the
// controller does not interact with the locality knobs), and runs in CI's
// -race job, so a controller-introduced race on the finish path or the
// spinner surfaces here as a race report.
func TestScheduleFuzzTuning(t *testing.T) {
	seeds := []int64{1, 0x5eed}
	if testing.Short() {
		seeds = seeds[:1]
	}
	var schedules []fuzzSchedule
	for _, sc := range fuzzSchedules() {
		if sc.native && sc.name[len(sc.name)-2:] == "d1" {
			schedules = append(schedules, sc)
		}
	}
	schedules = append(schedules, fuzzSchedule{name: "sim/c4", cores: 4},
		fuzzSchedule{name: "sim/c8", cores: 8})
	var totalFed uint64
	for _, seed := range seeds {
		p := genProg(seed, 1<<30)
		for _, sc := range schedules {
			vOn, fed := runTunedSchedule(p, sc)
			if len(vOn) > 0 {
				t.Fatalf("seed %d schedule %s tuning=on: %d violations; first: %s",
					seed, sc.name, len(vOn), vOn[0])
			}
			if vOff := runSchedule(p, sc); len(vOff) > 0 {
				t.Fatalf("seed %d schedule %s tuning=off: %d violations; first: %s",
					seed, sc.name, len(vOff), vOff[0])
			}
			// Both runs drained to the model's exact final state (checkFinal
			// above), so tuned and untuned schedules are state-identical.
			totalFed += fed
		}
	}
	if totalFed == 0 {
		t.Fatal("controller consumed no completions across the battery — the feedback plane is dead")
	}
}

// TestScheduleFuzzModelSelfCheck pins the generator: the model must be a
// pure function of the seed, and a prefix of the program must carry the
// same expectations as the full program's first groups (the property the
// shrinker relies on).
func TestScheduleFuzzModelSelfCheck(t *testing.T) {
	a := genProg(42, 1<<30)
	b := genProg(42, 1<<30)
	if fmt.Sprintf("%+v", a.groups) != fmt.Sprintf("%+v", b.groups) {
		t.Fatal("generator is not deterministic per seed")
	}
	pre := genProg(42, 3)
	if len(pre.groups) != 3 {
		t.Fatalf("prefix has %d groups, want 3", len(pre.groups))
	}
	for g := range pre.groups {
		if fmt.Sprintf("%+v", pre.groups[g]) != fmt.Sprintf("%+v", a.groups[g]) {
			t.Fatalf("group %d differs between prefix and full program", g)
		}
	}
}
