package ompss_test

// Observability-under-execution tests: the exact-numbers contract of the
// analyzer on a hand-built DAG timed by the simulator's virtual clock, and
// the recorder attached to the schedule-fuzz battery and the native stress
// loads (CI's race job runs this file, so the record path's slot-latch
// discipline is -race-verified under real contention, wraparound included).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ompssgo/internal/obs"
	"ompssgo/machine"
	"ompssgo/ompss"
)

// simDiamond runs the four-task diamond with known Cost clauses on the
// simulated machine and returns the recorded trace. Virtual time makes
// every duration deterministic; the left branch (5ms) dominates the right
// (1ms) by far more than any runtime overhead, so the critical path is
// known a priori.
func simDiamond(t *testing.T) *obs.Trace {
	t.Helper()
	rec := obs.NewRecorder()
	x, y, z := new(int), new(int), new(int)
	_, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
		dx, dy, dz := rt.Register(x), rt.Register(y), rt.Register(z)
		rt.Task(func(*ompss.TC) { *x = 1 }, ompss.Out(dx),
			ompss.Cost(time.Millisecond), ompss.Label("top"))
		rt.Task(func(*ompss.TC) { *y = *x + 1 }, ompss.In(dx), ompss.Out(dy),
			ompss.Cost(5*time.Millisecond), ompss.Label("left"))
		rt.Task(func(*ompss.TC) { *z = *x + 2 }, ompss.In(dx), ompss.Out(dz),
			ompss.Cost(time.Millisecond), ompss.Label("right"))
		rt.Task(func(*ompss.TC) { *x = *y + *z }, ompss.In(dy), ompss.In(dz),
			ompss.Cost(2*time.Millisecond), ompss.Label("bottom"))
		rt.Taskwait()
	}, ompss.Observe(rec))
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	if *x != 5 {
		t.Fatalf("diamond computed %d, want 5", *x)
	}
	return rec.Snapshot()
}

// TestObserveSimCriticalPathExact asserts the analyzer's critical-path and
// parallelism numbers exactly on the hand-built diamond under virtual
// time: the chain is top→left→bottom, its length is exactly the sum of
// those three tasks' recorded execution times, the off-path task's slack
// is exact, and the parallelism profile integrates exactly to the span.
func TestObserveSimCriticalPathExact(t *testing.T) {
	tr := simDiamond(t)
	if tr.TotalDropped() != 0 {
		t.Fatalf("diamond overflowed the rings: %d dropped", tr.TotalDropped())
	}
	a := obs.Analyze(tr)
	if a.Submitted != 4 || a.Executed != 4 || a.Edges != 4 {
		t.Fatalf("counts: submitted=%d executed=%d edges=%d, want 4/4/4", a.Submitted, a.Executed, a.Edges)
	}
	byLabel := map[string]*obs.TaskInfo{}
	for _, ti := range a.Tasks {
		byLabel[ti.Label] = ti
	}
	for _, l := range []string{"top", "left", "bottom", "right"} {
		if byLabel[l] == nil {
			t.Fatalf("task %q missing from trace", l)
		}
	}
	// Declared costs are a lower bound on the virtual execution times.
	if got := byLabel["left"].Exec; got < int64(5*time.Millisecond) {
		t.Fatalf("left exec %v < its declared 5ms cost", time.Duration(got))
	}
	// Critical path: exactly the top→left→bottom chain...
	var chain []string
	for _, ct := range a.CPTasks {
		chain = append(chain, ct.Label)
	}
	if fmt.Sprint(chain) != "[top left bottom]" {
		t.Fatalf("critical-path chain %v, want [top left bottom]", chain)
	}
	// ... with exactly the sum of those tasks' execution times.
	wantCP := byLabel["top"].Exec + byLabel["left"].Exec + byLabel["bottom"].Exec
	if a.CPLen != wantCP {
		t.Fatalf("critical path %d ns, want exactly %d", a.CPLen, wantCP)
	}
	// Off-path slack is exact: the right branch can grow by the length
	// difference between the two inner branches.
	wantSlack := byLabel["left"].Exec - byLabel["right"].Exec
	if got := byLabel["right"].Slack; got != wantSlack {
		t.Fatalf("right slack %d, want exactly %d", got, wantSlack)
	}
	for _, l := range []string{"top", "left", "bottom"} {
		if s := byLabel[l].Slack; s != 0 {
			t.Fatalf("%s is on the critical path but has slack %d", l, s)
		}
	}
	// Parallelism: the two branches overlap and nothing else can.
	if a.MaxParallelism != 2 {
		t.Fatalf("max parallelism %d, want 2", a.MaxParallelism)
	}
	var wantTotal int64
	for _, ti := range byLabel {
		wantTotal += ti.Exec
	}
	if a.TotalExec != wantTotal {
		t.Fatalf("total exec %d, want %d", a.TotalExec, wantTotal)
	}
	// The profile is a partition of the span: levels × times integrate to
	// the span and the exec-weighted sum to the total execution time.
	var span, exec int64
	for l, ns := range a.Profile {
		span += ns
		exec += int64(l) * ns
	}
	if span != a.Span {
		t.Fatalf("profile integrates to %d, span is %d", span, a.Span)
	}
	if exec != a.TotalExec {
		t.Fatalf("exec-weighted profile %d, total exec %d", exec, a.TotalExec)
	}
}

// TestObserveSimDeterministic pins virtual-time determinism end to end:
// two identical simulated runs produce identical analyses.
func TestObserveSimDeterministic(t *testing.T) {
	a1 := obs.Analyze(simDiamond(t))
	a2 := obs.Analyze(simDiamond(t))
	if a1.CPLen != a2.CPLen || a1.Span != a2.Span || a1.TotalExec != a2.TotalExec {
		t.Fatalf("simulated traces differ across identical runs: cp %d/%d span %d/%d exec %d/%d",
			a1.CPLen, a2.CPLen, a1.Span, a2.Span, a1.TotalExec, a2.TotalExec)
	}
}

// TestScheduleFuzzObserved re-runs the schedule-fuzz programs with a
// recorder attached, across native polling/blocking and the simulator:
// the recorder must not perturb correctness (same happens-before and
// final-state checks as the main battery), and the trace must account for
// every task — submits, executions, and edge events matching the engine's
// own counters exactly when nothing was dropped.
func TestScheduleFuzzObserved(t *testing.T) {
	seeds := []int64{1, 20260726}
	if testing.Short() {
		seeds = seeds[:1]
	}
	configs := []struct {
		name   string
		native bool
		opts   []ompss.Option
	}{
		{"native/w4-polling", true, []ompss.Option{ompss.Workers(4)}},
		{"native/w3-blocking", true, []ompss.Option{ompss.Workers(3), ompss.Wait(ompss.Blocking)}},
		{"sim/c4", false, []ompss.Option{ompss.Seed(7)}},
	}
	for _, seed := range seeds {
		p := genProg(seed, 1<<30)
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("seed%d/%s", seed, cfg.name), func(t *testing.T) {
				rec := obs.NewRecorder()
				cells := newFuzzCells(p.nKeys)
				var st ompss.RunStats
				if cfg.native {
					rt := ompss.New(append([]ompss.Option{ompss.Observe(rec)}, cfg.opts...)...)
					cells.run(p, rt)
					st = rt.Stats()
					rt.Shutdown()
				} else {
					if _, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
						cells.run(p, rt)
						st = rt.Stats()
					}, append([]ompss.Option{ompss.Observe(rec)}, cfg.opts...)...); err != nil {
						t.Fatalf("sim error: %v", err)
					}
				}
				cells.checkFinal(p)
				cells.mu.Lock()
				violations := cells.violations
				cells.mu.Unlock()
				if len(violations) > 0 {
					t.Fatalf("recorder-attached schedule violated dependences: %s", violations[0])
				}
				tr := rec.Snapshot()
				if tr.TotalDropped() != 0 {
					t.Fatalf("fuzz program overflowed default rings: %d dropped", tr.TotalDropped())
				}
				a := obs.Analyze(tr)
				if a.Submitted != p.nTasks || a.Executed != p.nTasks {
					t.Fatalf("trace lost tasks: submitted=%d executed=%d, program has %d",
						a.Submitted, a.Executed, p.nTasks)
				}
				if uint64(a.Edges) != st.Graph.Edges {
					t.Fatalf("trace has %d edges, engine wired %d", a.Edges, st.Graph.Edges)
				}
				if int(st.Sched.Steals) != a.Steals {
					t.Fatalf("trace has %d steals, scheduler counted %d", a.Steals, st.Sched.Steals)
				}
			})
		}
	}
}

// TestObserveNativeStressWraparound drives far more events than the rings
// hold from concurrently submitting goroutines — the contended wraparound
// path, -race-checked — and verifies the analyzer reports the truncation
// instead of presenting partial data as complete.
func TestObserveNativeStressWraparound(t *testing.T) {
	const (
		submitters = 4
		perG       = 400
		capacity   = 128
	)
	rec := obs.NewRecorder(obs.Capacity(capacity))
	rt := ompss.New(ompss.Workers(4), ompss.Observe(rec))
	var counters [submitters]struct {
		v int64
		_ [56]byte
	}
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := rt.Register(&counters[g])
			for i := 0; i < perG; i++ {
				rt.Task(func(*ompss.TC) { counters[g].v++ }, ompss.InOut(d))
			}
		}()
	}
	wg.Wait()
	rt.Taskwait()
	st := rt.Stats()
	rt.Shutdown()
	for g := range counters {
		if counters[g].v != perG {
			t.Fatalf("chain %d: %d increments, want %d", g, counters[g].v, perG)
		}
	}
	if st.Graph.Finished != submitters*perG {
		t.Fatalf("finished %d tasks, want %d", st.Graph.Finished, submitters*perG)
	}
	tr := rec.Snapshot()
	if tr.TotalDropped() == 0 {
		t.Fatalf("expected ring wraparound at capacity %d with %d tasks", capacity, submitters*perG)
	}
	a := obs.Analyze(tr)
	if !a.Truncated || a.DroppedEvents != tr.TotalDropped() {
		t.Fatalf("truncation not reported: truncated=%v dropped=%d/%d",
			a.Truncated, a.DroppedEvents, tr.TotalDropped())
	}
	// The surviving stream still analyzes cleanly: whatever executed
	// completely is within the run's bounds.
	if a.Executed == 0 || a.Span <= 0 {
		t.Fatalf("truncated trace unusable: executed=%d span=%d", a.Executed, a.Span)
	}
}

// TestObserveBlockingTaskwaitEvents checks the taskwait and idle spans
// recorded by the blocking-mode native backend pair up (analyzer sees
// non-negative spans and a consistent task count).
func TestObserveBlockingTaskwaitEvents(t *testing.T) {
	rec := obs.NewRecorder()
	rt := ompss.New(ompss.Workers(2), ompss.Wait(ompss.Blocking), ompss.Observe(rec))
	d := rt.Register(new(int))
	for i := 0; i < 50; i++ {
		rt.Task(func(*ompss.TC) { time.Sleep(50 * time.Microsecond) }, ompss.InOut(d))
	}
	rt.Taskwait()
	rt.Shutdown()
	a := obs.Analyze(rec.Snapshot())
	if a.Executed != 50 {
		t.Fatalf("executed %d, want 50", a.Executed)
	}
	for i, ws := range a.ByWorker {
		if ws.Idle < 0 || ws.Taskwait < 0 {
			t.Fatalf("lane %d: negative span idle=%d taskwait=%d", i, ws.Idle, ws.Taskwait)
		}
	}
	// The master (lane 1) spent essentially the whole serialized chain
	// inside its taskwait.
	if a.ByWorker[1].Taskwait == 0 {
		t.Fatal("master recorded no taskwait span")
	}
}

// TestZeroValueTracer pins that a zero-value Tracer (not built with
// NewTracer) still records and reports — the pre-obs Tracer allowed it.
func TestZeroValueTracer(t *testing.T) {
	var tr ompss.Tracer
	rt := ompss.New(ompss.Workers(2), ompss.Trace(&tr))
	d := rt.Register(new(int))
	for i := 0; i < 10; i++ {
		rt.Task(func(*ompss.TC) {}, ompss.InOut(d))
	}
	rt.Taskwait()
	rt.Shutdown()
	if s := tr.Summary(); s.Tasks != 10 || s.Edges != 9 {
		t.Fatalf("zero-value tracer summary: tasks=%d edges=%d, want 10/9", s.Tasks, s.Edges)
	}
}

// TestObserveRenameEvents checks that rename and writeback engine events
// reach the stream through the graph probe.
func TestObserveRenameEvents(t *testing.T) {
	rec := obs.NewRecorder()
	rt := ompss.New(ompss.Workers(2), ompss.WithRenaming(true), ompss.Observe(rec))
	buf := new([4]int64)
	d := rt.Register(buf)
	d.EnableRenaming(buf, func() any { return new([4]int64) },
		func(dst, src any) { *dst.(*[4]int64) = *src.(*[4]int64) })
	for round := 0; round < 8; round++ {
		round := round
		for r := 0; r < 3; r++ {
			rt.Task(func(tc *ompss.TC) { _ = tc.Data(d).(*[4]int64)[0] }, ompss.In(d))
		}
		rt.Task(func(tc *ompss.TC) { tc.Data(d).(*[4]int64)[0] = int64(round) }, ompss.Out(d))
	}
	rt.Taskwait()
	st := rt.Stats()
	rt.Shutdown()
	a := obs.Analyze(rec.Snapshot())
	if a.Renames != int(st.Graph.Renamed) {
		t.Fatalf("trace has %d renames, engine performed %d", a.Renames, st.Graph.Renamed)
	}
	if a.Writebacks != int(st.Graph.Writebacks) {
		t.Fatalf("trace has %d writebacks, engine performed %d", a.Writebacks, st.Graph.Writebacks)
	}
	if st.Graph.Renamed == 0 {
		t.Skip("schedule produced no renames (all readers drained before each writer)")
	}
}
