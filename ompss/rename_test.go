package ompss_test

import (
	"errors"
	"fmt"
	"testing"

	"ompssgo/machine"
	"ompssgo/ompss"
)

// tile is the payload the renaming tests version: big enough that a missed
// copy or a torn writeback shows up in the checksum, padded so instances
// on the pool do not false-share.
type tile struct {
	v [8]int64
	_ [64]byte
}

func tileAlloc() any        { return new(tile) }
func tileCopy(dst, src any) { dst.(*tile).v = src.(*tile).v }
func (t *tile) fill(base int64) {
	for i := range t.v {
		t.v[i] = base + int64(i)
	}
}
func (t *tile) sum() int64 {
	var s int64
	for _, x := range t.v {
		s += x
	}
	return s
}

// runWARPipeline runs `rounds` of (readers observe the previous round's
// value, then an Out writer publishes the next) against one renameable
// datum and returns the violations. With renaming the rounds overlap; with
// it off they serialize — the observed values must be identical either way.
func runWARPipeline(rt *ompss.Runtime, readers, rounds int) []string {
	var cell tile
	cell.fill(0)
	d := rt.Register(&cell).EnableRenaming(nil, tileAlloc, tileCopy)

	var mu struct{ violations []string } // guarded by runtime: appended under task errors only
	violate := make(chan string, readers*rounds+rounds+2)
	for round := 0; round < rounds; round++ {
		round := round
		for r := 0; r < readers; r++ {
			rt.Task(func(tc *ompss.TC) {
				got := tc.Data(d).(*tile)
				if want := int64(round) * 8; got.sum() != want+28 { // base*8 + 0..7
					violate <- fmt.Sprintf("round %d reader saw sum %d, want %d", round, got.sum(), want+28)
				}
			}, ompss.In(d))
		}
		rt.Task(func(tc *ompss.TC) {
			tc.Data(d).(*tile).fill(int64(round) + 1)
		}, ompss.Out(d))
	}
	rt.Taskwait()
	if got, want := cell.sum(), int64(rounds)*8+28; got != want {
		violate <- fmt.Sprintf("final canonical sum %d, want %d (writeback missing or stale)", got, want)
	}
	close(violate)
	for v := range violate {
		mu.violations = append(mu.violations, v)
	}
	return mu.violations
}

func TestRenameWARPipelineNative(t *testing.T) {
	for _, renaming := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("renaming=%v/w%d", renaming, workers), func(t *testing.T) {
				rt := ompss.New(ompss.Workers(workers), ompss.WithRenaming(renaming))
				defer rt.Shutdown()
				if vs := runWARPipeline(rt, 3, 25); len(vs) > 0 {
					t.Fatalf("%d violations; first: %s", len(vs), vs[0])
				}
				st := rt.Stats()
				if renaming && workers > 1 && st.Graph.Renamed == 0 {
					t.Error("expected at least one rename in the WAR pipeline")
				}
				if !renaming && st.Graph.Renamed != 0 {
					t.Errorf("renaming off but Renamed = %d", st.Graph.Renamed)
				}
			})
		}
	}
}

func TestRenameWARPipelineSim(t *testing.T) {
	for _, renaming := range []bool{false, true} {
		t.Run(fmt.Sprintf("renaming=%v", renaming), func(t *testing.T) {
			var vs []string
			_, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
				vs = runWARPipeline(rt, 3, 25)
			}, ompss.WithRenaming(renaming))
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) > 0 {
				t.Fatalf("%d violations; first: %s", len(vs), vs[0])
			}
		})
	}
}

// Renamed InOut: the accumulator chain must see every predecessor's value
// (copy-in) while readers of older instances keep observing them.
func TestRenameInOutAccumulates(t *testing.T) {
	rt := ompss.New(ompss.Workers(4), ompss.WithRenaming(true))
	defer rt.Shutdown()
	var cell tile
	d := rt.Register(&cell).EnableRenaming(nil, tileAlloc, tileCopy)

	const rounds = 30
	for i := 0; i < rounds; i++ {
		i := i
		rt.Task(func(tc *ompss.TC) {
			got := tc.Data(d).(*tile)
			if got.v[0] != int64(i) {
				t.Errorf("round %d reader saw %d", i, got.v[0])
			}
		}, ompss.In(d))
		rt.Task(func(tc *ompss.TC) {
			tc.Data(d).(*tile).v[0]++
		}, ompss.InOut(d))
	}
	rt.Taskwait()
	if cell.v[0] != rounds {
		t.Fatalf("accumulator = %d, want %d", cell.v[0], rounds)
	}
}

// A failed renamed writer must not publish its instance; the canonical
// value stays at the last successful round, and dependents skip.
func TestRenameFailedWriterSkipsWriteback(t *testing.T) {
	rt := ompss.New(ompss.Workers(2), ompss.WithRenaming(true))
	defer rt.Shutdown()
	var cell tile
	cell.fill(1)
	d := rt.Register(&cell).EnableRenaming(nil, tileAlloc, tileCopy)
	boom := errors.New("boom")

	// The gate holds the reader in flight until the writer has submitted,
	// so the writer is guaranteed to see the WAR conflict and rename —
	// without it a fast reader lets the writer (correctly) take the
	// in-place path and this test would assert the wrong semantics.
	gate := make(chan struct{})
	rt.Task(func(tc *ompss.TC) {
		<-gate
		_ = tc.Data(d).(*tile).sum()
	}, ompss.In(d))
	h := rt.Go(func(tc *ompss.TC) error {
		tc.Data(d).(*tile).fill(99)
		return boom
	}, ompss.Out(d))
	dep := rt.Go(func(tc *ompss.TC) error { return nil }, ompss.In(d))
	close(gate)
	rt.Taskwait()
	if got := rt.Stats().Graph.Renamed; got != 1 {
		t.Fatalf("Renamed = %d, want 1 (the gated reader forces the conflict)", got)
	}
	if !errors.Is(h.Err(), boom) {
		t.Fatalf("writer outcome = %v", h.Err())
	}
	if !errors.Is(dep.Err(), ompss.ErrSkipped) {
		t.Fatalf("dependent outcome = %v, want skip", dep.Err())
	}
	if got := cell.sum(); got != 8+28 {
		t.Fatalf("canonical sum = %d: a poisoned instance leaked into the writeback", got)
	}
	_ = rt.Err()
}

// TaskwaitOn over a renamed datum is a flush: on return the canonical
// storage holds the latest instance.
func TestRenameTaskwaitOnFlushes(t *testing.T) {
	rt := ompss.New(ompss.Workers(4), ompss.WithRenaming(true))
	defer rt.Shutdown()
	var cell tile
	d := rt.Register(&cell).EnableRenaming(nil, tileAlloc, tileCopy)
	for i := 0; i < 10; i++ {
		rt.Task(func(tc *ompss.TC) { _ = tc.Data(d).(*tile).sum() }, ompss.In(d))
		i := i
		rt.Task(func(tc *ompss.TC) { tc.Data(d).(*tile).fill(int64(i)) }, ompss.Out(d))
	}
	rt.TaskwaitOn(d)
	if cell.v[0] != 9 {
		t.Fatalf("after TaskwaitOn canonical = %d, want 9 (flush incomplete)", cell.v[0])
	}
	rt.Taskwait()
}

// Region tiles rename per registered span; disjoint tiles pipeline
// independently and write back into their own slice of the backing array.
func TestRenameRegionTilesNative(t *testing.T) {
	rt := ompss.New(ompss.Workers(4), ompss.WithRenaming(true))
	defer rt.Shutdown()
	const tiles, rounds = 4, 12
	buf := make([]int64, tiles)
	ds := make([]*ompss.Datum, tiles)
	for i := range ds {
		i := i
		ds[i] = rt.RegisterRegion(&buf[0], int64(i), int64(i+1)).
			EnableRenaming(&buf[i],
				func() any { return new(int64) },
				func(dst, src any) { *dst.(*int64) = *src.(*int64) })
	}
	for round := 0; round < rounds; round++ {
		round := round
		for i := 0; i < tiles; i++ {
			d := ds[i]
			rt.Task(func(tc *ompss.TC) {
				if got := *tc.Data(d).(*int64); got != int64(round) {
					t.Errorf("tile reader saw %d, want %d", got, round)
				}
			}, ompss.In(d))
			rt.Task(func(tc *ompss.TC) {
				*tc.Data(d).(*int64) = int64(round) + 1
			}, ompss.Out(d))
		}
	}
	rt.Taskwait()
	for i, v := range buf {
		if v != rounds {
			t.Fatalf("tile %d canonical = %d, want %d", i, v, rounds)
		}
	}
}

// tc.Data degrades to the registered key on datums that never enabled
// renaming, so bodies can use it unconditionally.
func TestDataDegradesToKey(t *testing.T) {
	rt := ompss.New(ompss.Workers(1))
	defer rt.Shutdown()
	x := new(int64)
	d := rt.Register(x)
	rt.Task(func(tc *ompss.TC) {
		if tc.Data(d).(*int64) != x {
			t.Error("Data on an unchained datum must return the key")
		}
	}, ompss.InOut(d))
	rt.Taskwait()
}
