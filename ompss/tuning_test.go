package ompss

import (
	"sync/atomic"
	"testing"
	"time"

	"ompssgo/internal/core"
	"ompssgo/machine"
)

func TestSettingEncoding(t *testing.T) {
	var unset Setting
	if unset.IsSet() || unset.IsAuto() {
		t.Errorf("zero Setting must be unset and not Auto")
	}
	if Setting(Auto) != settingAuto || !Setting(Auto).IsAuto() || !Setting(Auto).IsSet() {
		t.Errorf("Auto must convert to the auto Setting")
	}
	if v, ok := Fixed(0).Value(); !ok || v != 0 {
		t.Errorf("Fixed(0).Value() = (%d, %v), want (0, true) — distinguishable from unset", v, ok)
	}
	if v, ok := Fixed(7).Value(); !ok || v != 7 {
		t.Errorf("Fixed(7).Value() = (%d, %v), want (7, true)", v, ok)
	}
	if _, ok := unset.Value(); ok {
		t.Errorf("unset Value() must report not-set")
	}
	if _, ok := Setting(Auto).Value(); ok {
		t.Errorf("Auto Value() must report not-pinned")
	}
	if Off != Fixed(0) || On != Fixed(1) {
		t.Errorf("On/Off must alias Fixed(1)/Fixed(0)")
	}
	if Off.boolOr(true) || !On.boolOr(false) {
		t.Errorf("On/Off boolOr must pin the truth value")
	}
	if !unset.boolOr(true) || unset.boolOr(false) {
		t.Errorf("unset boolOr must return the default")
	}
}

// TestLegacyOptionsAreTuningWrappers pins the API redesign's compatibility
// contract: every legacy single-knob option must resolve to exactly the
// same configuration as its Tuning profile field, and later options must
// override earlier ones field by field in both spellings.
func TestLegacyOptionsAreTuningWrappers(t *testing.T) {
	cases := []struct {
		name    string
		legacy  Option
		profile Tuning
		same    func(a, b config) bool
	}{
		{"Locality(false)", Locality(false), Tuning{Locality: Off},
			func(a, b config) bool { return a.localityOn() == b.localityOn() && !a.localityOn() }},
		{"AffinitySched(false)", AffinitySched(false), Tuning{Affinity: Off},
			func(a, b config) bool { return a.affinityOn() == b.affinityOn() && !a.affinityOn() }},
		{"Domains(4)", Domains(4), Tuning{Domains: Fixed(4)},
			func(a, b config) bool { return a.domainsN() == b.domainsN() && a.domainsN() == 4 }},
		{"WithRenaming(true)", WithRenaming(true), Tuning{Renaming: On},
			func(a, b config) bool { return a.renamingOn() == b.renamingOn() && a.renamingOn() }},
		{"RenameCap(7)", RenameCap(7), Tuning{RenameCap: Fixed(7)},
			func(a, b config) bool { return a.renameCapN() == b.renameCapN() && a.renameCapN() == 7 }},
	}
	for _, tc := range cases {
		a := buildConfig([]Option{tc.legacy})
		b := buildConfig([]Option{WithTuning(tc.profile)})
		if !tc.same(a, b) {
			t.Errorf("%s and WithTuning(%+v) resolve differently", tc.name, tc.profile)
		}
		if a.tun != b.tun {
			t.Errorf("%s: profile %+v, want %+v — the wrapper must write the profile field itself", tc.name, a.tun, b.tun)
		}
	}

	// Order matters in both directions: the last writer of a field wins,
	// whether it is a wrapper or a profile.
	c := buildConfig([]Option{WithTuning(Tuning{RenameCap: Fixed(3)}), RenameCap(9)})
	if c.renameCapN() != 9 {
		t.Errorf("legacy-after-profile renameCap = %d, want 9", c.renameCapN())
	}
	c = buildConfig([]Option{RenameCap(9), WithTuning(Tuning{RenameCap: Fixed(3)})})
	if c.renameCapN() != 3 {
		t.Errorf("profile-after-legacy renameCap = %d, want 3", c.renameCapN())
	}
	// Unset profile fields inherit: a profile that only pins Domains must
	// not disturb an earlier Locality choice.
	c = buildConfig([]Option{Locality(false), WithTuning(Tuning{Domains: Fixed(2)})})
	if c.localityOn() || c.domainsN() != 2 {
		t.Errorf("merge: locality=%v domains=%d, want false/2", c.localityOn(), c.domainsN())
	}
}

// TestTaskLoopAutoChunk pins the Auto sentinel's semantics on the native
// runtime: exactly Auto engages chunk selection (heuristic without a
// controller, controller with one); any other non-positive chunk keeps the
// historical clamp-to-1.
func TestTaskLoopAutoChunk(t *testing.T) {
	const n, workers = 256, 4

	run := func(rt *Runtime, chunk int) uint64 {
		var hit [n]int32
		rt.TaskLoop(n, chunk, func(_ *TC, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
		}, Label("auto-loop"))
		rt.Taskwait()
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("chunk=%d: iteration %d executed %d times", chunk, i, h)
			}
		}
		return rt.Stats().Graph.Finished
	}

	// Untuned runtime, chunk=Auto: the workers-derived heuristic
	// n/(4·workers) = 16 → 16 chunk tasks.
	rt := New(Workers(workers))
	if got := run(rt, Auto); got != 16 {
		t.Errorf("untuned Auto: %d chunk tasks, want 16 (heuristic n/4w)", got)
	}
	rt.Shutdown()

	// Any other non-positive chunk clamps to 1: n tasks, not heuristic.
	rt = New(Workers(workers))
	if got := run(rt, -2); got != n {
		t.Errorf("chunk=-2: %d tasks, want %d (clamp-to-1, Auto is exactly %d)", got, n, Auto)
	}
	rt.Shutdown()

	// Tuned runtime: before any measurement the controller answers with the
	// same heuristic; after the first loop its per-iteration EWMA takes
	// over. Either way the space is covered exactly once per pass.
	rt = New(Workers(workers), WithTuning(Tuning{Grain: Auto}))
	prev := uint64(0)
	for pass := 0; pass < 3; pass++ {
		total := run(rt, Auto)
		if total-prev < 1 {
			t.Fatalf("pass %d spawned no chunk tasks", pass)
		}
		prev = total
	}
	ls := rt.LabelStats()
	found := false
	for _, l := range ls {
		if l.Label == "auto-loop" {
			found = true
			if l.Count == 0 || l.Iters != 3*n {
				t.Errorf("label stats = %+v, want Count>0 and Iters=%d", l, 3*n)
			}
		}
	}
	if !found {
		t.Errorf("LabelStats() lacks auto-loop: %+v", ls)
	}
	rt.Shutdown()

	// Grain pinned via the profile: Auto call sites use the fixed chunk.
	rt = New(Workers(workers), WithTuning(Tuning{Grain: Fixed(64)}))
	if got := run(rt, Auto); got != n/64 {
		t.Errorf("Grain Fixed(64): %d chunk tasks, want %d", got, n/64)
	}
	rt.Shutdown()
}

// TestTaskLoopAutoSimDeterministic pins controller determinism under the
// simulator: virtual-time measurements drive the grain loop, so two
// identical runs must produce identical makespans and task counts.
func TestTaskLoopAutoSimDeterministic(t *testing.T) {
	mc := machine.Config{Cores: 4, Sockets: 2}
	once := func() (time.Duration, uint64) {
		var tasks uint64
		st, err := RunSim(mc, func(rt *Runtime) {
			for pass := 0; pass < 4; pass++ {
				rt.TaskLoop(128, Auto, func(tc *TC, lo, hi int) {
					tc.Compute(time.Duration(hi-lo) * 40 * time.Microsecond)
				}, Label("simloop"))
				rt.Taskwait()
			}
			tasks = rt.Stats().Graph.Finished
		}, WithTuning(Tuning{Grain: Auto}))
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan, tasks
	}
	m1, t1 := once()
	m2, t2 := once()
	if m1 != m2 || t1 != t2 {
		t.Fatalf("tuned sim runs diverged: makespan %v/%v, tasks %d/%d", m1, m2, t1, t2)
	}
	if t1 <= 4 {
		t.Fatalf("suspiciously few chunk tasks: %d", t1)
	}
}

// TestSessionTuningPins pins session-profile precedence: a session Tuning
// can pin renaming knobs over the runtime's profile (the PR 6 field-by-field
// rules), and the session surface reports the runtime's label aggregates.
func TestSessionTuningPins(t *testing.T) {
	rt := New(Workers(2), WithTuning(Tuning{Grain: Auto}))
	defer rt.Shutdown()

	s := rt.NewSession(WithTuning(Tuning{Renaming: On, RenameCap: Fixed(2)}))
	if s.dom.Rename != core.RenameForceOn {
		t.Errorf("session rename override = %v, want force-on", s.dom.Rename)
	}
	if s.dom.RenameCap != 2 {
		t.Errorf("session rename cap = %d, want 2", s.dom.RenameCap)
	}
	done := make(chan struct{})
	s.Task(func(*TC) { close(done) }, Label("sess-task"))
	s.Taskwait()
	<-done
	st := s.Stats()
	if st.Finished != 1 {
		t.Fatalf("session finished = %d, want 1", st.Finished)
	}
	found := false
	for _, l := range st.Labels {
		if l.Label == "sess-task" && l.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("session Stats().Labels lacks sess-task: %+v", st.Labels)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}

	// Equivalent legacy spelling still works at NewSession.
	s2 := rt.NewSession(WithRenaming(true), RenameCap(2))
	if s2.dom.Rename != core.RenameForceOn || s2.dom.RenameCap != 2 {
		t.Errorf("legacy session overrides = (%v, %d), want (force-on, 2)", s2.dom.Rename, s2.dom.RenameCap)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}
}

// TestStealBackoffSetpointsReachSpinner pins the Tunables plumbing: a
// pinned StealBackoff creates the setpoint block without a controller, and
// an Auto StealBackoff arms the controller with the static defaults seeded.
func TestStealBackoffSetpointsReachSpinner(t *testing.T) {
	rt := New(Workers(2), WithTuning(Tuning{StealBackoff: Fixed(250)}))
	nb := rt.be.(*nativeBackend)
	if nb.tn == nil {
		t.Fatalf("pinned StealBackoff did not create the Tunables block")
	}
	if nb.ctl != nil {
		t.Errorf("pinned StealBackoff must not arm the controller")
	}
	if got := nb.tn.SleepCapNS.Load(); got != 250_000 {
		t.Errorf("pinned sleep cap = %dns, want 250µs", got)
	}
	rt.Shutdown()

	rt = New(Workers(2), WithTuning(Tuning{StealBackoff: Auto}))
	nb = rt.be.(*nativeBackend)
	if nb.ctl == nil || nb.tn == nil {
		t.Fatalf("Auto StealBackoff must arm the controller")
	}
	if got := nb.tn.SpinYields.Load(); got == 0 {
		t.Errorf("controller did not seed SpinYields")
	}
	var ran atomic.Bool
	rt.Task(func(*TC) { ran.Store(true) })
	rt.Taskwait()
	if !ran.Load() {
		t.Fatalf("task did not run under adaptive backoff")
	}
	rt.Shutdown()
}
