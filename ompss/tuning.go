package ompss

// Auto is the "let the runtime decide" sentinel, usable in two places:
//
//   - as the chunk argument of TaskLoop (rt.TaskLoop(n, ompss.Auto, ...)):
//     the chunk size is chosen by the grain controller when one is active
//     (WithTuning(Tuning{Grain: Auto})), or by a workers-derived heuristic
//     otherwise. Only exactly Auto means controller-chosen; any other
//     non-positive chunk keeps the historical clamp-to-1 behavior.
//   - as a Tuning profile field (Tuning{Grain: Auto, ...}): the matching
//     feedback loop runs online (see Tuning).
//
// It is an untyped constant so it converts to both int and Setting.
const Auto = -1

// Setting is one knob of a Tuning profile. The zero value means "unset —
// inherit" (the runtime default at New, the runtime's profile at
// NewSession), Auto hands the knob to the feedback controller, and
// Fixed(v) pins it. For boolean knobs use On / Off (aliases of Fixed(1) /
// Fixed(0)).
type Setting int

const (
	// settingAuto is Auto converted to Setting (kept unexported: the
	// public spelling is the untyped Auto).
	settingAuto Setting = -1
	// Off pins a boolean knob false (= Fixed(0)).
	Off Setting = 1
	// On pins a boolean knob true (= Fixed(1)).
	On Setting = 2
)

// Fixed pins a knob to a static value v (v ≥ 0). Values are stored shifted
// by one so that Fixed(0) is distinguishable from the unset zero Setting.
func Fixed(v int) Setting {
	if v < 0 {
		v = 0
	}
	return Setting(v + 1)
}

// IsSet reports whether the knob was set at all (Auto or Fixed).
func (s Setting) IsSet() bool { return s != 0 }

// IsAuto reports whether the knob is controller-managed.
func (s Setting) IsAuto() bool { return s == settingAuto }

// Value returns the pinned value and true for a Fixed setting; (0, false)
// for unset or Auto.
func (s Setting) Value() (int, bool) {
	if s <= 0 {
		return 0, false
	}
	return int(s) - 1, true
}

// boolOr resolves a boolean knob: the pinned truth value when set (any
// Fixed value > 0 counts as on), def when unset or Auto.
func (s Setting) boolOr(def bool) bool {
	if v, ok := s.Value(); ok {
		return v != 0
	}
	return def
}

// Tuning is the runtime's coherent knob profile — the one structured
// surface behind what used to be scattered options (Locality,
// AffinitySched, Domains, WithRenaming, RenameCap) plus the feedback
// controller's switches. Accepted uniformly at New and NewSession via
// WithTuning; unset (zero) fields inherit — the built-in default at New,
// the runtime's resolved profile at NewSession — exactly the session
// precedence rules sessions already follow field by field.
//
// Setting any field to Auto arms the corresponding feedback loop
// (internal/tune): the runtime then consumes its own telemetry — per-label
// execution-time EWMAs, the steal matrix, rename-fallback counters — and
// adapts the knob online. Auto is only meaningful at New (the controller
// is per-runtime); a session profile can pin values but not arm loops.
type Tuning struct {
	// Grain governs TaskLoop chunk sizing for chunk == Auto call sites.
	// Auto: chunks are sized online so one chunk's body runs for about the
	// controller's target window, from the label's measured per-iteration
	// cost. Fixed(v): Auto call sites use chunk v. Unset: a workers-derived
	// heuristic.
	Grain Setting
	// StealBackoff governs the polling idle throttle. Auto: the spin-yield
	// budget and sleep cap adapt to the measured steal-failure rate
	// (native runtimes only — the simulator's idle waiting is event-driven
	// and this knob is a documented no-op there). Fixed(v): the idle sleep
	// cap is pinned to v microseconds. Unset: the static default throttle.
	StealBackoff Setting
	// RenameCap bounds live renamed instances per datum (the RenameCap
	// option's knob). Fixed(v): cap v. Auto: the cap widens under
	// sustained rename fallbacks and decays back when they stop. Unset:
	// core.DefaultMaxVersions.
	RenameCap Setting
	// Renaming toggles dependence renaming (the WithRenaming option's
	// knob): On / Off; unset inherits (default off).
	Renaming Setting
	// Locality toggles locality-aware successor placement (the Locality
	// option's knob): On / Off; unset inherits (default on).
	Locality Setting
	// Affinity toggles honoring Affinity clause hints (the AffinitySched
	// option's knob): On / Off; unset inherits (default on).
	Affinity Setting
	// Domains splits workers into Fixed(n) contiguous steal domains (the
	// Domains option's knob); unset or n < 2 means flat stealing.
	Domains Setting
}

// merge overlays src's set fields onto dst (unset src fields inherit).
func (dst *Tuning) merge(src Tuning) {
	if src.Grain.IsSet() {
		dst.Grain = src.Grain
	}
	if src.StealBackoff.IsSet() {
		dst.StealBackoff = src.StealBackoff
	}
	if src.RenameCap.IsSet() {
		dst.RenameCap = src.RenameCap
	}
	if src.Renaming.IsSet() {
		dst.Renaming = src.Renaming
	}
	if src.Locality.IsSet() {
		dst.Locality = src.Locality
	}
	if src.Affinity.IsSet() {
		dst.Affinity = src.Affinity
	}
	if src.Domains.IsSet() {
		dst.Domains = src.Domains
	}
}

// anyAuto reports whether any field arms a feedback loop.
func (t Tuning) anyAuto() bool {
	return t.Grain.IsAuto() || t.StealBackoff.IsAuto() || t.RenameCap.IsAuto()
}

// WithTuning applies a Tuning profile: set fields override the current
// configuration, unset fields inherit. Valid at New and NewSession; later
// options (including the legacy single-knob wrappers, which write single
// profile fields) continue to override field by field in order.
func WithTuning(t Tuning) Option {
	return func(c *config) { c.tun.merge(t) }
}

// Resolved accessors: the single place profile fields become engine
// configuration, including the pre-profile defaults for unset knobs.

// localityOn resolves the locality knob (default on).
func (c config) localityOn() bool { return c.tun.Locality.boolOr(true) }

// affinityOn resolves the affinity knob (default on).
func (c config) affinityOn() bool { return c.tun.Affinity.boolOr(true) }

// domainsN resolves the steal-domain count (0 = flat).
func (c config) domainsN() int {
	v, _ := c.tun.Domains.Value()
	return v
}

// renamingOn resolves the renaming toggle (default off).
func (c config) renamingOn() bool { return c.tun.Renaming.boolOr(false) }

// renameCapN resolves the pinned version cap (0 = engine default; an Auto
// cap also starts from the engine default and adapts from there).
func (c config) renameCapN() int {
	v, _ := c.tun.RenameCap.Value()
	return v
}

// tuningActive reports whether this configuration arms the feedback
// controller.
func (c config) tuningActive() bool { return c.tun.anyAuto() }
