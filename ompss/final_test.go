package ompss

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"ompssgo/machine"
)

func TestFinalCutsOffNesting(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	var leaves int32
	rt.Task(func(tc *TC) {
		if !tc.InFinal() {
			t.Error("final task should report InFinal")
		}
		// Nested spawns inside a final task run inline, immediately.
		for i := 0; i < 4; i++ {
			tc.Task(func(tc2 *TC) {
				if !tc2.InFinal() {
					t.Error("final must be transitive")
				}
				atomic.AddInt32(&leaves, 1)
			})
		}
		if atomic.LoadInt32(&leaves) != 4 {
			t.Error("nested tasks in a final context must execute undeferred")
		}
	}, Final(true))
	rt.Taskwait()
	st := rt.Stats()
	// Only the outer task entered the graph.
	if st.Graph.Submitted != 1 {
		t.Fatalf("graph tasks = %d, want 1", st.Graph.Submitted)
	}
}

func TestFinalFalseIsInert(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	rt.Task(func(tc *TC) {
		if tc.InFinal() {
			t.Error("Final(false) should not mark the task final")
		}
	}, Final(false))
	rt.Taskwait()
}

func TestFinalCostsChargedInSim(t *testing.T) {
	st, err := RunSim(machine.Paper(4), func(rt *Runtime) {
		rt.Task(func(tc *TC) {
			for i := 0; i < 4; i++ {
				tc.Task(func(*TC) {}, Cost(500*time.Microsecond))
			}
		}, Final(true), Cost(100*time.Microsecond))
		rt.Taskwait()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100µs + 4×500µs inline on one worker ≥ 2.1ms serial.
	if st.Makespan < 2100*time.Microsecond {
		t.Fatalf("final-inlined costs not charged: %v", st.Makespan)
	}
	if st.Tasks != 1 {
		t.Fatalf("graph tasks = %d, want 1", st.Tasks)
	}
}

// TestSimNativeEquivalenceProperty is the dual-backend contract on random
// programs: the same dataflow program must compute identical results
// natively and on the simulated machine.
func TestSimNativeEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		seed := int64(trial*7 + 1)
		rng := rand.New(rand.NewSource(seed))
		const nvars = 5
		type op struct{ dst, src, k int }
		ops := make([]op, rng.Intn(40)+10)
		for i := range ops {
			ops[i] = op{rng.Intn(nvars), rng.Intn(nvars), rng.Intn(5)}
		}
		program := func(rt *Runtime) [nvars]int {
			var vars [nvars]int
			for i := range vars {
				vars[i] = i + 1
			}
			for _, o := range ops {
				o := o
				rt.Task(func(*TC) { vars[o.dst] += vars[o.src]*o.k + 1 },
					In(&vars[o.src]), InOut(&vars[o.dst]), Cost(10*time.Microsecond))
			}
			rt.Taskwait()
			return vars
		}
		rt := New(Workers(3), Seed(seed))
		native := program(rt)
		rt.Shutdown()
		var sim [nvars]int
		if _, err := RunSim(machine.Paper(8), func(rt *Runtime) { sim = program(rt) }); err != nil {
			t.Fatal(err)
		}
		if native != sim {
			t.Fatalf("trial %d: native %v != sim %v", trial, native, sim)
		}
	}
}
