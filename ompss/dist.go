package ompss

import (
	"time"

	"ompssgo/internal/dist"
	"ompssgo/internal/obs"
)

// RunDist executes program on the distributed backend: a coordinator in
// this process drives the dependence tracker with renaming enabled, and
// `workers` freshly spawned worker processes (children of the current
// binary, rendezvousing over a Unix domain socket) execute the task
// bodies against migrated datum versions. It is the multi-process sibling
// of Run and RunSim — same dataflow semantics, shared-nothing execution.
//
// Unlike the in-process entry points the program receives a *DistRT, not
// a *Runtime: distributed task bodies are registered kernels addressed by
// name (RegisterKernel) rather than closures, and datums are
// coordinator-owned byte buffers (rt.Register / rt.Read). main (and
// TestMain, for test binaries) must call MaybeWorker() first thing so
// spawned children divert into the worker loop.
//
// The implementation lives in internal/dist; this file is the public
// veneer — aliases, not wrappers, so in-repo code using the dist package
// directly and external consumers using these names handle the same types
// (errors.As against DistWorkerLost matches a dist.WorkerLost, etc).
func RunDist(workers int, program func(*DistRT) error, opts ...DistOption) (DistStats, error) {
	return dist.Run(workers, program, opts...)
}

// RegisterKernel publishes a named task body for distributed execution.
// Register in an init function (or otherwise before MaybeWorker) so the
// kernel exists in the coordinator and every re-exec'd worker alike.
func RegisterKernel(name string, fn DistKernelFunc) { dist.RegisterKernel(name, fn) }

// MaybeWorker diverts a spawned worker child into its serve loop (never
// returning) and is a no-op in ordinary processes. Any binary that calls
// RunDist must invoke it first thing in main.
func MaybeWorker() { dist.MaybeWorker() }

// The distributed runtime surface, re-exported for consumers outside this
// module (internal/dist is not importable there).
type (
	// DistRT is the coordinator-side runtime handed to a RunDist program.
	DistRT = dist.RT
	// DistStats is RunDist's accounting: tasks, failures, bytes migrated
	// in each direction, transfers the version caches avoided, evictions,
	// workers lost, and per-worker breakdowns.
	DistStats = dist.Stats
	// DistOption configures RunDist (DistCacheBytes, DistRenameCap, ...).
	DistOption = dist.Option
	// DistDatum is a coordinator-owned byte buffer under dependence
	// tracking, created by DistRT.Register.
	DistDatum = dist.Datum
	// DistClause binds a datum to a task with an access mode.
	DistClause = dist.Clause
	// DistHandle is a distributed task future (Err, Skipped).
	DistHandle = dist.Handle
	// DistKernelFunc is a registered task body: args is the task's opaque
	// argument blob; in holds one read-only buffer per In clause in clause
	// order; out holds one writable buffer per Out/InOut clause in clause
	// order (InOut buffers arrive seeded with the current version).
	DistKernelFunc = dist.KernelFunc

	// DistWorkerLost reports a worker process that died mid-task; tasks
	// in flight on it fail with this error and their dependents skip.
	DistWorkerLost = dist.WorkerLost
	// DistRemoteError reports a kernel that returned an error (or
	// panicked) on a worker.
	DistRemoteError = dist.RemoteError
	// DistSkipError marks a task skipped because an upstream dependence
	// failed; Unwrap yields the upstream cause.
	DistSkipError = dist.SkipError
)

// DistIn declares a read of d.
func DistIn(d *DistDatum) DistClause { return dist.In(d) }

// DistOut declares a write of d (contents replaced).
func DistOut(d *DistDatum) DistClause { return dist.Out(d) }

// DistInOut declares a read-modify-write of d.
func DistInOut(d *DistDatum) DistClause { return dist.InOut(d) }

// DistCacheBytes caps each worker's version cache (default 64 MiB).
func DistCacheBytes(n int64) DistOption { return dist.CacheBytes(n) }

// DistRenameCap bounds live versions per datum (the engine's RenameCap).
func DistRenameCap(n int) DistOption { return dist.RenameCap(n) }

// Worker rendezvous transports for DistTransport.
const (
	DistTransportUnix = dist.TransportUnix
	DistTransportTCP  = dist.TransportTCP
)

// DistTransport selects the worker rendezvous transport: Unix domain
// sockets (the default) or TCP loopback. Both run the same HMAC
// challenge/response handshake; unauthenticated peers are refused.
func DistTransport(name string) DistOption { return dist.Transport(name) }

// DistSecret overrides the run's shared handshake secret (by default a
// fresh random secret per run).
func DistSecret(s []byte) DistOption { return dist.Secret(s) }

// DistHandshakeTimeout bounds worker connect-and-authenticate.
func DistHandshakeTimeout(d time.Duration) DistOption { return dist.HandshakeTimeout(d) }

// DistExitKillDelay sets how long a shut-down worker may drain before its
// process is killed (default derives from the handshake timeout).
func DistExitKillDelay(d time.Duration) DistOption { return dist.ExitKillDelay(d) }

// DistRespawnWorkers re-execs a replacement worker for any slot lost
// mid-run; the replacement rejoins with a cold cache.
func DistRespawnWorkers() DistOption { return dist.RespawnLostWorkers() }

// DistChainLimit bounds tasks per chained dispatch frame (values below 2
// disable worker-side task chains).
func DistChainLimit(n int) DistOption { return dist.ChainLimit(n) }

// DistNoForwarding disables direct worker-to-worker datum forwarding;
// every transfer relays through the coordinator.
func DistNoForwarding() DistOption { return dist.NoForwarding() }

// DistObserve attaches an observability recorder to the coordinator side
// of a distributed run: dispatch lifecycle, transfers, cache hits, and
// chain frames land on per-slot lanes, as ompss.Observe does in-process.
func DistObserve(rec *obs.Recorder) DistOption { return dist.Observe(rec) }

// DistTraceWorkers additionally traces inside every worker process:
// kernel execution, wire arrivals, cache hits, peer forwards, and idle
// gaps, recorded into a per-worker ring of `capacity` events (0 for the
// default) and shipped back piggybacked on completions.
func DistTraceWorkers(capacity int) DistOption { return dist.TraceWorkers(capacity) }

// DistTraceSink receives the run's merged cross-process trace — the
// coordinator stream plus every worker incarnation's events, aligned onto
// one clock and labelled with per-(slot, generation) tracks — right
// before RunDist returns. It implies worker tracing.
func DistTraceSink(fn func(*obs.Trace)) DistOption { return dist.TraceSink(fn) }

// DistReconcileTrace cross-checks a merged distributed trace against the
// run's Stats: exactly-once remote execution and matching transfer,
// forward, cache-hit, and chain accounting (exact on clean runs).
func DistReconcileTrace(tr *obs.Trace, st DistStats) error { return dist.ReconcileTrace(tr, st) }

// ErrNoDistWorkers is returned for tasks that cannot run because every
// worker process has been lost.
var ErrNoDistWorkers = dist.ErrNoWorkers
