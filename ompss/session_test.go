package ompss_test

// Session-scoped runtime API tests: lifecycle, admission control, tenant
// priority, per-session option overrides, cross-session isolation, and the
// stability of sealed handles after Close. CI's race job runs this package
// under -race, so the Close/spawn/Err interleavings here double as race
// probes of the session arena.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ompssgo/internal/obs"
	"ompssgo/machine"
	"ompssgo/ompss"
)

// TestSessionLifecycle runs a small DAG in a request session and checks the
// accounting, the result, and that Close is an idempotent nil.
func TestSessionLifecycle(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	s := rt.NewSession()
	if s.ID() < 2 {
		t.Fatalf("session ID %d, want >= 2 (1 is the default session)", s.ID())
	}
	var x int
	d := s.Register(&x)
	for i := 0; i < 10; i++ {
		s.Task(func(*ompss.TC) { x++ }, ompss.InOut(d))
	}
	s.Taskwait()
	if x != 10 {
		t.Fatalf("x = %d, want 10", x)
	}
	st := s.Stats()
	if st.Submitted != 10 || st.Finished != 10 || st.Failed != 0 || st.Skipped != 0 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want 10 submitted/finished and nothing else", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

// TestSessionCloseSkipsPending closes a session while a dependence chain is
// still queued behind a blocked head: the head finishes, the rest are
// skipped with ErrSessionClosed, and every sealed Handle answers stably
// afterwards — from many goroutines at once, which is the -race leg of the
// handle-after-close fix.
func TestSessionCloseSkipsPending(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	s := rt.NewSession()
	var x int
	release := make(chan struct{})
	started := make(chan struct{})
	head := s.Task(func(*ompss.TC) { close(started); <-release }, ompss.InOut(&x))
	var deps []*ompss.Handle
	for i := 0; i < 8; i++ {
		deps = append(deps, s.Task(func(*ompss.TC) { x++ }, ompss.InOut(&x)))
	}
	// The head must be RUNNING when Close cancels, so it finishes cleanly
	// and only the queued chain is skipped.
	<-started

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	// Close is draining: it cancelled the pending chain and is waiting for
	// the head. Release it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-closed; !errors.Is(err, ompss.ErrSessionClosed) {
		t.Fatalf("Close = %v, want ErrSessionClosed cause (skipped children)", err)
	}

	if err := head.Err(); err != nil {
		t.Fatalf("head.Err = %v, want nil (it ran)", err)
	}
	// Sealed outcomes are stable and data-race-free after Close.
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, h := range deps {
				err := h.Err()
				if !errors.Is(err, ompss.ErrSessionClosed) {
					t.Errorf("dep.Err = %v, want ErrSessionClosed", err)
				}
				if !errors.Is(err, ompss.ErrSkipped) {
					t.Errorf("dep.Err = %v, want ErrSkipped match", err)
				}
				select {
				case <-h.Done():
				default:
					t.Error("sealed handle's Done not closed")
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Skipped != 8 {
		t.Fatalf("skipped = %d, want 8", st.Skipped)
	}
}

// TestSessionSpawnAfterClose checks that spawns and batch flushes after
// Close return pre-failed handles instead of touching the recycled arena.
func TestSessionSpawnAfterClose(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	s := rt.NewSession()
	var x int
	s.Task(func(*ompss.TC) { x = 1 }, ompss.Out(&x))
	s.Taskwait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	h := s.Task(func(*ompss.TC) { x = 2 }, ompss.Out(&x))
	if err := h.Err(); !errors.Is(err, ompss.ErrSessionClosed) {
		t.Fatalf("post-close Task err = %v, want ErrSessionClosed", err)
	}
	b := s.Batch()
	bh := b.Task(func(*ompss.TC) { x = 3 })
	b.Submit()
	if err := bh.Err(); !errors.Is(err, ompss.ErrSessionClosed) {
		t.Fatalf("post-close batch err = %v, want ErrSessionClosed", err)
	}
	if x != 1 {
		t.Fatalf("x = %d: a post-close body ran", x)
	}
}

// TestSessionAdmissionBlock checks the BlockOnFull budget: with
// MaxInFlight(2), the session's in-flight count never exceeds 2 even with
// an eager spawner.
func TestSessionAdmissionBlock(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	s := rt.NewSession(ompss.MaxInFlight(2))
	var over atomic.Int64
	for i := 0; i < 40; i++ {
		s.Task(func(*ompss.TC) {
			if in := s.Stats().InFlight; in > 2 {
				over.Store(in)
			}
		})
	}
	s.Taskwait()
	if n := over.Load(); n != 0 {
		t.Fatalf("observed %d tasks in flight, budget 2", n)
	}
	if st := s.Stats(); st.Finished != 40 {
		t.Fatalf("finished = %d, want 40", st.Finished)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestSessionAdmissionReject checks RejectOnFull: a spawn over budget
// returns a pre-failed ErrAdmission handle without submitting, and the
// budget frees on finish.
func TestSessionAdmissionReject(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	s := rt.NewSession(ompss.MaxInFlight(1), ompss.Admission(ompss.RejectOnFull))
	release := make(chan struct{})
	ran := make(chan struct{})
	s.Task(func(*ompss.TC) { close(ran); <-release })
	<-ran
	rejected := s.Task(func(*ompss.TC) {})
	if err := rejected.Err(); !errors.Is(err, ompss.ErrAdmission) {
		t.Fatalf("over-budget spawn err = %v, want ErrAdmission", err)
	}
	close(release)
	s.Taskwait()
	// Budget freed: the next spawn is admitted.
	ok := s.Task(func(*ompss.TC) {})
	s.Taskwait()
	if err := ok.Err(); err != nil {
		t.Fatalf("post-drain spawn err = %v, want nil", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestGlobalAdmission checks the runtime-wide limiter: with the global
// budget held by one session's running task, another session's RejectOnFull
// spawn is refused.
func TestGlobalAdmission(t *testing.T) {
	rt := ompss.New(ompss.Workers(2), ompss.MaxInFlight(1))
	defer rt.Shutdown()

	a := rt.NewSession()
	b := rt.NewSession(ompss.Admission(ompss.RejectOnFull))
	release := make(chan struct{})
	ran := make(chan struct{})
	a.Task(func(*ompss.TC) { close(ran); <-release })
	<-ran
	h := b.Task(func(*ompss.TC) {})
	if err := h.Err(); !errors.Is(err, ompss.ErrAdmission) {
		t.Fatalf("cross-session over-budget spawn err = %v, want ErrAdmission", err)
	}
	close(release)
	a.Taskwait()
	if err := a.Close(); err != nil {
		t.Fatalf("Close a: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close b: %v", err)
	}
}

// TestTenantPriority checks that a higher tenant class outranks a lower one
// at dispatch: with the lone worker busy, a gold-session task submitted
// after a bronze-session task still runs first.
func TestTenantPriority(t *testing.T) {
	rt := ompss.New(ompss.Workers(2)) // one dedicated worker + master
	defer rt.Shutdown()

	bronze := rt.NewSession() // class 0
	gold := rt.NewSession(ompss.Tenant(2))

	var order []string
	var mu sync.Mutex
	note := func(s string) func(*ompss.TC) {
		return func(*ompss.TC) {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	gate := make(chan struct{})
	started := make(chan struct{})
	busy := bronze.Task(func(*ompss.TC) { close(started); <-gate })
	<-started
	// Both queue behind the busy worker; priority decides the pop order.
	lo := bronze.Task(note("bronze"))
	hi := gold.Task(note("gold"))
	close(gate)
	// Wait on handles without helping (helping would let this thread pop in
	// arbitrary order and confound the worker's priority dispatch).
	<-busy.Done()
	<-lo.Done()
	<-hi.Done()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "gold" {
		t.Fatalf("dispatch order %v, want gold first", order)
	}
	bronze.Close()
	gold.Close()
}

// TestCrossSessionErrorIsolation wires a dependence edge across sessions —
// session B's task depends on shared data session A's failing task wrote —
// and checks the edge orders execution but does not carry the failure: B's
// task runs.
func TestCrossSessionErrorIsolation(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	var shared int
	a := rt.NewSession()
	b := rt.NewSession()

	release := make(chan struct{})
	a.Go(func(*ompss.TC) error {
		<-release
		return fmt.Errorf("session A failure")
	}, ompss.InOut(&shared))
	// A's own dependent must skip (same domain)...
	aDep := a.Task(func(*ompss.TC) {}, ompss.InOut(&shared))
	// ...but B's dependent, wired to the same failing writer, must run.
	bRan := false
	bDep := b.Task(func(*ompss.TC) { bRan = true }, ompss.InOut(&shared))
	close(release)
	b.Taskwait()

	// Close drains session A and reports its round's failure (no Taskwait
	// first — that would consume the round and leave Close nothing).
	if err := a.Close(); err == nil {
		t.Fatal("Close a = nil, want the session's failure")
	}
	if err := aDep.Err(); !errors.Is(err, ompss.ErrSkipped) {
		t.Fatalf("same-session dependent err = %v, want skip", err)
	}
	if err := bDep.Err(); err != nil {
		t.Fatalf("cross-session dependent err = %v, want nil", err)
	}
	if !bRan {
		t.Fatal("cross-session dependent did not run")
	}
	if st := b.Stats(); st.Skipped != 0 || st.Failed != 0 {
		t.Fatalf("session B stats %+v: foreign failure leaked in", st)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close b: %v", err)
	}
}

// TestSessionCancelIsolation cancels one session mid-flight and checks the
// second session's concurrent work is untouched.
func TestSessionCancelIsolation(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	victim := rt.NewSession()
	bystander := rt.NewSession()

	var v, w int
	release := make(chan struct{})
	started := make(chan struct{})
	victim.Task(func(*ompss.TC) { close(started); <-release }, ompss.InOut(&v))
	for i := 0; i < 6; i++ {
		victim.Task(func(*ompss.TC) { v++ }, ompss.InOut(&v))
	}
	<-started // head is running on the worker: only the chain is skipped
	victim.Cancel(context.DeadlineExceeded)
	close(release)
	victim.Taskwait()

	for i := 0; i < 6; i++ {
		bystander.Task(func(*ompss.TC) { w++ }, ompss.InOut(&w))
	}
	bystander.Taskwait()

	if st := victim.Stats(); st.Skipped != 6 {
		t.Fatalf("victim skipped = %d, want 6", st.Skipped)
	}
	if w != 6 {
		t.Fatalf("bystander result %d, want 6", w)
	}
	if st := bystander.Stats(); st.Skipped != 0 {
		t.Fatalf("bystander skipped = %d, want 0", st.Skipped)
	}
	victim.Close()
	bystander.Close()
}

// TestSessionTaskwaitCtx checks that a session-level TaskwaitCtx timeout
// cancels that session only.
func TestSessionTaskwaitCtx(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	slow := rt.NewSession()
	other := rt.NewSession()
	var y int
	release := make(chan struct{})
	started := make(chan struct{})
	// The head runs on the dedicated worker (started proves it) and the
	// chain queues behind its InOut — so the master's help-first TaskwaitCtx
	// finds nothing runnable and can only watch the context expire.
	slow.Task(func(*ompss.TC) { close(started); <-release }, ompss.InOut(&y))
	for i := 0; i < 4; i++ {
		slow.Task(func(*ompss.TC) { y++ }, ompss.InOut(&y))
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// TaskwaitCtx never abandons a running child: it cancels the pending
	// chain but still waits for the head. Release the head once the context
	// has expired so the wait can complete and report the cancellation.
	go func() { <-ctx.Done(); close(release) }()
	if err := slow.TaskwaitCtx(ctx); err == nil {
		t.Fatal("TaskwaitCtx = nil, want cancellation")
	}

	ran := false
	other.Task(func(*ompss.TC) { ran = true })
	other.Taskwait()
	if !ran {
		t.Fatal("other session's task skipped after foreign TaskwaitCtx cancellation")
	}
	other.Close()
}

// TestSessionOnErrorOverride checks per-session failure-policy override in
// both directions against the runtime default.
func TestSessionOnErrorOverride(t *testing.T) {
	rt := ompss.New(ompss.Workers(2)) // default SkipDependents
	defer rt.Shutdown()

	run := rt.NewSession(ompss.OnError(ompss.RunThrough))
	var x int
	ran := false
	run.Go(func(*ompss.TC) error { return fmt.Errorf("boom") }, ompss.InOut(&x))
	run.Task(func(*ompss.TC) { ran = true }, ompss.InOut(&x))
	run.Taskwait()
	if !ran {
		t.Fatal("RunThrough session skipped the dependent")
	}
	run.Close()

	skip := rt.NewSession() // inherits SkipDependents
	ran = false
	skip.Go(func(*ompss.TC) error { return fmt.Errorf("boom") }, ompss.InOut(&x))
	h := skip.Task(func(*ompss.TC) { ran = true }, ompss.InOut(&x))
	skip.Taskwait()
	if ran || !errors.Is(h.Err(), ompss.ErrSkipped) {
		t.Fatalf("inherited SkipDependents did not skip (ran=%v err=%v)", ran, h.Err())
	}
	skip.Close()
}

// TestSessionRenamingOverride checks the per-session renaming override: a
// WithRenaming(true) session renames on a renaming-off runtime, and a
// WithRenaming(false) session pins a renaming-on runtime's chain in place.
func TestSessionRenamingOverride(t *testing.T) {
	warChain := func(t *testing.T, api ompss.API) {
		t.Helper()
		var cell int64
		d := api.Register(&cell).EnableRenaming(nil,
			func() any { return new(int64) },
			func(dst, src any) { *dst.(*int64) = *src.(*int64) })
		for round := 0; round < 6; round++ {
			api.Go(func(tc *ompss.TC) error {
				*tc.Data(d).(*int64)++
				return nil
			}, ompss.InOut(d))
			for r := 0; r < 2; r++ {
				api.Go(func(tc *ompss.TC) error {
					_ = *tc.Data(d).(*int64)
					return nil
				}, ompss.In(d))
			}
		}
		api.Taskwait()
		if cell != 6 {
			t.Fatalf("final cell %d, want 6", cell)
		}
	}

	t.Run("force-on", func(t *testing.T) {
		rt := ompss.New(ompss.Workers(2)) // renaming off by default
		defer rt.Shutdown()
		s := rt.NewSession(ompss.WithRenaming(true))
		warChain(t, s)
		if n := rt.Stats().Graph.Renamed; n == 0 {
			t.Fatal("force-on session renamed nothing")
		}
		s.Close()
	})
	t.Run("force-off", func(t *testing.T) {
		rt := ompss.New(ompss.Workers(2), ompss.WithRenaming(true))
		defer rt.Shutdown()
		s := rt.NewSession(ompss.WithRenaming(false))
		warChain(t, s)
		if n := rt.Stats().Graph.Renamed; n != 0 {
			t.Fatalf("force-off session renamed %d times", n)
		}
		s.Close()
	})
}

// TestDefaultSessionDelegation checks that the Runtime surface and its
// DefaultSession are one session: same ID, shared taskwait scope.
func TestDefaultSessionDelegation(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	def := rt.DefaultSession()
	if def == nil || def.ID() != 1 {
		t.Fatalf("DefaultSession ID = %v, want 1", def.ID())
	}
	if err := def.Close(); err != nil {
		t.Fatalf("default-session Close must be a no-op, got %v", err)
	}
	var a, b int
	rt.Task(func(*ompss.TC) { a = 1 })
	def.Task(func(*ompss.TC) { b = 1 })
	rt.Taskwait() // one scope: waits for both
	if a != 1 || b != 1 {
		t.Fatalf("a=%d b=%d after shared taskwait, want 1 1", a, b)
	}
	st := def.Stats()
	if st.Submitted < 2 {
		t.Fatalf("default session submitted = %d, want >= 2", st.Submitted)
	}
}

// TestSessionBatchAdmission checks batch flush semantics on a full budget:
// RejectOnFull pre-fails the whole batch with ErrAdmission, and a flush
// after Close pre-fails with ErrSessionClosed (covered in
// TestSessionSpawnAfterClose).
func TestSessionBatchAdmission(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	s := rt.NewSession(ompss.MaxInFlight(1), ompss.Admission(ompss.RejectOnFull))
	release := make(chan struct{})
	ran := make(chan struct{})
	s.Task(func(*ompss.TC) { close(ran); <-release })
	<-ran
	hs := s.SubmitBatch(func(b *ompss.Batch) {
		for i := 0; i < 3; i++ {
			b.Task(func(*ompss.TC) {})
		}
	})
	for i, h := range hs {
		if err := h.Err(); !errors.Is(err, ompss.ErrAdmission) {
			t.Fatalf("batch handle %d err = %v, want ErrAdmission", i, err)
		}
	}
	close(release)
	s.Taskwait()
	// With headroom, a batch larger than the remaining budget is still
	// admitted whole (soft by len-1).
	hs = s.SubmitBatch(func(b *ompss.Batch) {
		for i := 0; i < 3; i++ {
			b.Task(func(*ompss.TC) {})
		}
	})
	s.Taskwait()
	for i, h := range hs {
		if err := h.Err(); err != nil {
			t.Fatalf("admitted batch handle %d err = %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestSessionObserveMute checks Observe(nil) muting: a muted session's
// tasks appear nowhere in the runtime trace while a loud session's do.
func TestSessionObserveMute(t *testing.T) {
	rec := obs.NewRecorder()
	rt := ompss.New(ompss.Workers(2), ompss.Observe(rec))
	defer rt.Shutdown()

	loud := rt.NewSession()
	muted := rt.NewSession(ompss.Observe(nil))
	for i := 0; i < 5; i++ {
		loud.Task(func(*ompss.TC) {})
		muted.Task(func(*ompss.TC) {})
	}
	loud.Taskwait()
	muted.Taskwait()
	loudID, mutedID := loud.ID(), muted.ID()
	loud.Close()
	muted.Close()

	tr := rec.Snapshot()
	ids, counts := tr.Sessions()
	seen := map[uint64]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[loudID] || counts[loudID] != 5 {
		t.Fatalf("loud session %d: %d tasks in trace, want 5 (sessions %v)", loudID, counts[loudID], ids)
	}
	if seen[mutedID] {
		t.Fatalf("muted session %d leaked events into the trace", mutedID)
	}
	sub := tr.FilterSession(loudID)
	if got := len(sub.Events); got == 0 {
		t.Fatal("FilterSession dropped everything")
	}
}

// TestSessionsSim runs sessions on the simulated backend: two interleaved
// healthy sessions plus a poisoned one, single-threaded on the master
// virtual thread, with full isolation accounting.
func TestSessionsSim(t *testing.T) {
	var aGot, bGot int
	var aStats, bStats, pStats ompss.SessionStats
	_, err := ompss.RunSim(machine.Paper(4), func(rt *ompss.Runtime) {
		a := rt.NewSession()
		b := rt.NewSession(ompss.Tenant(1))
		p := rt.NewSession()
		var av, bv, pv int
		var ph []*ompss.Handle
		ph = append(ph, p.Go(func(*ompss.TC) error {
			return fmt.Errorf("poison")
		}, ompss.InOut(&pv)))
		for i := 0; i < 8; i++ {
			a.Task(func(*ompss.TC) { av++ }, ompss.InOut(&av))
			b.Task(func(*ompss.TC) { bv++ }, ompss.InOut(&bv))
			ph = append(ph, p.Task(func(*ompss.TC) { pv++ }, ompss.InOut(&pv)))
		}
		a.Taskwait()
		b.Taskwait()
		aGot, bGot = av, bv
		aStats, bStats = a.Stats(), b.Stats()
		if err := a.Close(); err != nil {
			t.Errorf("Close a: %v", err)
		}
		if err := b.Close(); err != nil {
			t.Errorf("Close b: %v", err)
		}
		// TaskwaitCtx drains the poison session — the head is guaranteed to
		// run and fail, cascading skips through the chain — and reports the
		// round's failure (plain Taskwait would consume the round silently).
		if err := p.TaskwaitCtx(context.Background()); err == nil {
			t.Error("poison session drained without reporting its failure")
		}
		pStats = p.Stats()
		if err := p.Close(); err != nil {
			t.Errorf("Close p after consumed round = %v, want nil", err)
		}
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if aGot != 8 || bGot != 8 {
		t.Fatalf("a=%d b=%d, want 8 8", aGot, bGot)
	}
	if aStats.Skipped != 0 || bStats.Skipped != 0 {
		t.Fatalf("healthy sessions skipped a=%d b=%d, want 0", aStats.Skipped, bStats.Skipped)
	}
	if pStats.Skipped != 8 {
		t.Fatalf("poison session skipped = %d, want 8", pStats.Skipped)
	}
}

// TestConcurrentSessionChurn opens, runs, and closes many sessions from
// concurrent goroutines against one runtime — the server's steady state —
// checking every session's private result and accounting. Run under -race
// this exercises the arena recycling against concurrent spawns.
func TestConcurrentSessionChurn(t *testing.T) {
	rt := ompss.New(ompss.Workers(4))
	defer rt.Shutdown()

	const goroutines = 8
	const rounds = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s := rt.NewSession(ompss.MaxInFlight(8))
				var x int
				d := s.Register(&x)
				for i := 0; i < 12; i++ {
					s.Task(func(*ompss.TC) { x++ }, ompss.InOut(d))
				}
				s.Taskwait()
				if x != 12 {
					t.Errorf("session result %d, want 12", x)
				}
				if st := s.Stats(); st.Skipped != 0 || st.Failed != 0 {
					t.Errorf("healthy churn session stats %+v", st)
				}
				if err := s.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}
