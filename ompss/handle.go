package ompss

import (
	"errors"
	"fmt"
	"sync"

	"ompssgo/internal/core"
)

// Datum is a pre-registered data handle: the clause-expression analogue of
// the paper's compiler-resolved dependence expressions. Registering a key
// once (Runtime.Register / Runtime.RegisterRegion) resolves its dependence
// shard and record up front, so every later In/Out/InOut/Concurrent/
// Commutative clause built from the handle skips interface hashing and the
// shard map lookup on the submit hot path. Pass a *Datum anywhere a
// dependence key is accepted — the clause constructors and TaskwaitOn
// recognize it. Raw any-key clauses remain supported as a compatibility
// layer and resolve to the same records, so handle-based and key-based
// accesses to one datum stay mutually ordered.
type Datum struct {
	c *core.Datum
	// Cached clause closures: one closure and one access value per mode,
	// built at registration, so d.AsIn() etc. add zero allocations to a
	// submission (the package-level In(d) constructors allocate a variadic
	// slice and a fresh closure per call).
	asIn, asOut, asInOut Clause
}

// Key returns the underlying dependence key (a region key — see RegionKey —
// for region handles).
func (d *Datum) Key() any { return d.c.Key }

// IsRegion reports whether the handle names an array section.
func (d *Datum) IsRegion() bool { return d.c.IsRegion() }

// AsIn returns the handle's pre-built In clause (see In). The clause is
// constructed once at registration: using it adds no per-submit work.
func (d *Datum) AsIn() Clause { return d.asIn }

// AsOut returns the handle's pre-built Out clause (see Out).
func (d *Datum) AsOut() Clause { return d.asOut }

// AsInOut returns the handle's pre-built InOut clause (see InOut).
func (d *Datum) AsInOut() Clause { return d.asInOut }

// newDatum wraps a core handle and pre-builds its clause closures.
func newDatum(c *core.Datum) *Datum {
	d := &Datum{c: c}
	var bytes int64
	if c.IsRegion() {
		bytes = c.Region().Len()
	}
	accIn := core.Access{Key: c.Key, Mode: core.In, Bytes: bytes, Datum: c}
	accOut := core.Access{Key: c.Key, Mode: core.Out, Bytes: bytes, Datum: c}
	accInOut := core.Access{Key: c.Key, Mode: core.InOut, Bytes: bytes, Datum: c}
	d.asIn = func(s *taskSpec) { s.accesses = append(s.accesses, accIn) }
	d.asOut = func(s *taskSpec) { s.accesses = append(s.accesses, accOut) }
	d.asInOut = func(s *taskSpec) { s.accesses = append(s.accesses, accInOut) }
	return d
}

// Register interns key's dependence record and returns a reusable handle.
// Handles are bound to this runtime, valid for its lifetime, and safe for
// concurrent use from any task. Registering an existing handle is the
// identity on its own runtime; a handle from another runtime is
// re-registered here by its underlying key (clauses likewise treat a
// foreign handle as its key, so cross-runtime handle use degrades to the
// compatibility path instead of corrupting records).
func (rt *Runtime) Register(key any) *Datum {
	if d, ok := key.(*Datum); ok {
		if d.c.Owner() == rt.be.deps() {
			return d
		}
		key = d.c.Key
	}
	return newDatum(rt.be.deps().Register(key))
}

// RegisterRegion interns an array-section handle for [lo, hi) of the array
// identified by base (the handle equivalent of InRegion and friends).
// Distinct handles over one base conflict only where their spans overlap.
func (rt *Runtime) RegisterRegion(base any, lo, hi int64) *Datum {
	return newDatum(rt.be.deps().RegisterRegion(base, lo, hi))
}

// EnableRenaming makes the datum renameable (see the WithRenaming option):
// canonical is the storage behind the registered key (nil defaults to the
// key itself — the usual pointer-keyed case), alloc produces a fresh
// private instance, and cp copies one instance's value onto another
// (renamed-InOut copy-in and the final writeback use it). Task bodies must
// then access the datum through TC.Data. Call before submitting tasks that
// use the handle; returns d for chaining:
//
//	d := rt.Register(&tile).EnableRenaming(nil,
//		func() any { return new(Tile) },
//		func(dst, src any) { *dst.(*Tile) = *src.(*Tile) })
//
// For a region handle the chain is granular to the handle's exact span (a
// tile): renaming stays active only while every access overlapping the
// span uses exactly that span; a raw-key or foreign-span overlap seals the
// chain and the tracker falls back to ordinary conservative edges.
func (d *Datum) EnableRenaming(canonical any, alloc func() any, cp func(dst, src any)) *Datum {
	d.c.EnableRenaming(canonical, alloc, cp)
	return d
}

// NoRename opts this datum out of renaming even when the runtime enables
// it (WithRenaming): writes stall on their WAR/WAW edges and update the
// current instance in place, as without renaming. Idempotent, usable
// before or after EnableRenaming; returns d for chaining.
func (d *Datum) NoRename() *Datum {
	d.c.NoRename()
	return d
}

// Renameable reports whether the datum currently has an active (enabled
// and not opted-out or sealed) version chain.
func (d *Datum) Renameable() bool { return d.c.Renameable() }

// Handle is the future returned by Task, Go, and TaskLoop: a first-class
// completion and outcome token for one spawned task.
//
// Done is closed when the task finishes — successfully, with an error, or
// skipped. Err is nil until then; afterwards it reports the task's outcome:
// nil on success, the body's returned error, a *TaskPanic if the body
// panicked, or a *SkipError if the runtime released the task without
// running it (failure policy, cancellation, session close, or admission
// rejection).
//
// Handles of a request session outlive the session: Close seals each one —
// the outcome observed at that instant (a *SkipError wrapping
// ErrSessionClosed for tasks the close cancelled) becomes the handle's
// stable answer forever, detached from the recycled task record, so Err
// after Close never races the arena.
type Handle struct {
	rt *Runtime
	mu sync.Mutex
	t  *core.Task // nil for undeferred (inline) tasks and after sealing
	id uint64     // TaskID captured at seal
	// inline outcome of an undeferred task (If(false)/final — the task
	// already ran synchronously when the Handle was returned), or the
	// sealed outcome once t is detached.
	inlineErr error
}

// closedChan is the pre-closed Done channel of inline-executed tasks.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Done returns a channel closed when the task has finished (for inline and
// sealed tasks it is closed already). Select on it together with a
// context's Done for per-task timeouts.
func (h *Handle) Done() <-chan struct{} {
	h.mu.Lock()
	t := h.t
	h.mu.Unlock()
	if t == nil {
		return closedChan
	}
	return t.Done()
}

// Err returns the task's outcome: nil while the task is still in flight or
// when it succeeded; otherwise the error described on Handle. Calling Err
// counts as observing the runtime's failures (see Shutdown).
func (h *Handle) Err() error {
	if h.rt != nil {
		h.rt.observed.Store(true)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.t == nil {
		return h.inlineErr
	}
	return h.t.Err()
}

// Task returns the handle's graph task ID (0 for inline tasks), for
// correlating with traces and DOT exports.
func (h *Handle) TaskID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.t == nil {
		return h.id
	}
	return h.t.ID
}

// seal detaches the handle from its task record, capturing the task's ID
// and outcome as the handle's permanent answer. Called by Session.Close
// after the drain (every task finished), strictly before the records
// recycle.
func (h *Handle) seal() {
	h.mu.Lock()
	if h.t != nil {
		h.id = h.t.ID
		h.inlineErr = h.t.Err()
		h.t = nil
	}
	h.mu.Unlock()
}

// fail seals the handle with a refusal outcome (a batch the session would
// not admit, or a flush after Close): the tasks never ran.
func (h *Handle) fail(err error) {
	h.mu.Lock()
	h.t = nil
	h.inlineErr = err
	h.mu.Unlock()
}

// ErrorPolicy selects what happens to the dependents of a failed task.
type ErrorPolicy int

const (
	// SkipDependents (the default) releases the dependents of a failed
	// task without running their bodies: each finishes with a *SkipError
	// wrapping the upstream failure, and the error keeps propagating along
	// dependence edges until the graph drains.
	SkipDependents ErrorPolicy = iota
	// RunThrough runs dependents of failed tasks anyway: a task that
	// succeeds stops the propagation. Use it when tasks can tolerate — or
	// want to observe — missing predecessor results.
	RunThrough
)

func (p ErrorPolicy) String() string {
	if p == RunThrough {
		return "run-through"
	}
	return "skip-dependents"
}

// OnError selects the failure-propagation policy (default SkipDependents).
func OnError(p ErrorPolicy) Option { return func(c *config) { c.policy = p } }

// ErrSkipped is the sentinel matched (via errors.Is) by every *SkipError.
var ErrSkipped = errors.New("ompss: task skipped")

// SkipError is the outcome of a task the runtime released without running:
// its cause is the upstream task failure (SkipDependents policy) or the
// cancellation error (TaskwaitCtx / RunSimCtx). Causes chain, so the root
// failure of a skipped subgraph is reachable through errors.As/Unwrap.
type SkipError struct {
	Label string // the skipped task's Label clause, if any
	Cause error  // the upstream failure or cancellation that induced the skip
}

func (e *SkipError) Error() string {
	if e.Label != "" {
		return fmt.Sprintf("ompss: task %q skipped: %v", e.Label, e.Cause)
	}
	return fmt.Sprintf("ompss: task skipped: %v", e.Cause)
}

// Unwrap exposes the inducing failure.
func (e *SkipError) Unwrap() error { return e.Cause }

// Is matches ErrSkipped.
func (e *SkipError) Is(target error) bool { return target == ErrSkipped }
